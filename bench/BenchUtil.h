//===- bench/BenchUtil.h - Benchmark harness helpers ----------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the table-regeneration benchmarks: environment
/// overrides and cell formatting. Every bench binary prints one paper
/// table (or ablation) and exits; see EXPERIMENTS.md for the mapping.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_BENCH_BENCHUTIL_H
#define FLIX_BENCH_BENCHUTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace flix::bench {

/// Reads a double from the environment, with a default.
inline double envDouble(const char *Name, double Default) {
  const char *V = std::getenv(Name);
  return V ? std::atof(V) : Default;
}

/// Reads an integer from the environment, with a default.
inline long envInt(const char *Name, long Default) {
  const char *V = std::getenv(Name);
  return V ? std::atol(V) : Default;
}

/// Formats a time cell: seconds with sensible precision, "timeout", or
/// "-" (not run).
inline std::string timeCell(double Seconds, bool TimedOut, bool Skipped) {
  if (Skipped)
    return "-";
  if (TimedOut)
    return "timeout";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), Seconds < 10 ? "%.2f" : "%.1f", Seconds);
  return Buf;
}

/// Formats a memory cell in MB.
inline std::string memCell(size_t Bytes, bool Valid) {
  if (!Valid)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.0f",
                static_cast<double>(Bytes) / (1024.0 * 1024.0));
  return Buf;
}

/// Accumulates flat records and renders them as a JSON array of objects,
/// one record per solver run (`--json <file>`). Keys and string values
/// must be plain ASCII without quotes or backslashes, which holds for
/// everything the benches emit.
class JsonReport {
public:
  void begin() { Fields.clear(); }
  JsonReport &str(const std::string &K, const std::string &V) {
    Fields.push_back("\"" + K + "\": \"" + V + "\"");
    return *this;
  }
  JsonReport &num(const std::string &K, double V) {
    char Buf[48];
    std::snprintf(Buf, sizeof(Buf), "%.6g", V);
    Fields.push_back("\"" + K + "\": " + Buf);
    return *this;
  }
  JsonReport &integer(const std::string &K, long long V) {
    Fields.push_back("\"" + K + "\": " + std::to_string(V));
    return *this;
  }
  JsonReport &boolean(const std::string &K, bool V) {
    Fields.push_back("\"" + K + "\": " + (V ? "true" : "false"));
    return *this;
  }
  void end() {
    std::string Row = "  {";
    for (size_t I = 0; I < Fields.size(); ++I) {
      if (I)
        Row += ", ";
      Row += Fields[I];
    }
    Row += "}";
    Rows.push_back(Row);
  }
  bool write(const std::string &Path) const {
    std::FILE *Out = std::fopen(Path.c_str(), "w");
    if (!Out)
      return false;
    std::fprintf(Out, "[\n");
    for (size_t I = 0; I < Rows.size(); ++I)
      std::fprintf(Out, "%s%s\n", Rows[I].c_str(),
                   I + 1 < Rows.size() ? "," : "");
    std::fprintf(Out, "]\n");
    std::fclose(Out);
    return true;
  }

private:
  std::vector<std::string> Fields, Rows;
};

/// Parses a comma-separated list of non-negative integers ("0,1,8").
/// Returns false on malformed input.
inline bool parseThreadList(const std::string &S,
                            std::vector<unsigned> &Out) {
  size_t Start = 0;
  while (Start <= S.size()) {
    size_t Comma = S.find(',', Start);
    std::string Part = S.substr(Start, Comma - Start);
    if (Part.empty())
      return false;
    char *End = nullptr;
    long V = std::strtol(Part.c_str(), &End, 10);
    if (End == Part.c_str() || *End != '\0' || V < 0)
      return false;
    Out.push_back(static_cast<unsigned>(V));
    if (Comma == std::string::npos)
      break;
    Start = Comma + 1;
  }
  return !Out.empty();
}

} // namespace flix::bench

#endif // FLIX_BENCH_BENCHUTIL_H
