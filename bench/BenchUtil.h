//===- bench/BenchUtil.h - Benchmark harness helpers ----------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the table-regeneration benchmarks: environment
/// overrides and cell formatting. Every bench binary prints one paper
/// table (or ablation) and exits; see EXPERIMENTS.md for the mapping.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_BENCH_BENCHUTIL_H
#define FLIX_BENCH_BENCHUTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace flix::bench {

/// Reads a double from the environment, with a default.
inline double envDouble(const char *Name, double Default) {
  const char *V = std::getenv(Name);
  return V ? std::atof(V) : Default;
}

/// Reads an integer from the environment, with a default.
inline long envInt(const char *Name, long Default) {
  const char *V = std::getenv(Name);
  return V ? std::atol(V) : Default;
}

/// Formats a time cell: seconds with sensible precision, "timeout", or
/// "-" (not run).
inline std::string timeCell(double Seconds, bool TimedOut, bool Skipped) {
  if (Skipped)
    return "-";
  if (TimedOut)
    return "timeout";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), Seconds < 10 ? "%.2f" : "%.1f", Seconds);
  return Buf;
}

/// Formats a memory cell in MB.
inline std::string memCell(size_t Bytes, bool Valid) {
  if (!Valid)
    return "-";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.0f",
                static_cast<double>(Bytes) / (1024.0 * 1024.0));
  return Buf;
}

} // namespace flix::bench

#endif // FLIX_BENCH_BENCHUTIL_H
