//===- bench/ablation_indexing.cpp - index selection (§4.5) ----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Ablation A2: the paper lists index selection and cost-based query
// planning among the Datalog-solver optimizations FLIX inherits/needs
// (§1, §4.5). This bench measures, on a join-heavy program,
//
//   indexed    — automatic hash indexes from bound-variable patterns
//                (the default),
//   no-index   — full scans for partially bound atoms,
//   reordered  — greedy bound-variables-first body reordering on a rule
//                written in a deliberately bad order (the paper evaluates
//                left-to-right "instead of using a cost-plan").
//
// Expected shape: indexes dominate on selective joins; reordering rescues
// badly written rules without touching well written ones.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "fixpoint/Solver.h"

#include <cstdio>
#include <random>

using namespace flix;
using namespace flix::bench;

namespace {

/// Triangle-ish join: R(x, z) :- A(x, y), B(y, z), C(z, x)… written well
/// (chain order) or badly (C first, nothing bound).
double runJoin(int N, bool GoodOrder, SolverOptions Opts,
               uint64_t &Firings) {
  ValueFactory F;
  Program P(F);
  PredId A = P.relation("A", 2);
  PredId B = P.relation("B", 2);
  PredId C = P.relation("C", 2);
  PredId R = P.relation("R", 2);
  if (GoodOrder) {
    RuleBuilder()
        .head(R, {"x", "z"})
        .atom(A, {"x", "y"})
        .atom(B, {"y", "z"})
        .atom(C, {"z", "x"})
        .addTo(P);
  } else {
    RuleBuilder()
        .head(R, {"x", "z"})
        .atom(C, {"z", "x"})
        .atom(A, {"x", "y"})
        .atom(B, {"y", "z"})
        .addTo(P);
  }
  std::mt19937_64 Rng(7);
  for (int I = 0; I < N; ++I) {
    P.addFact(A, {F.integer(static_cast<int64_t>(Rng() % N)),
                  F.integer(static_cast<int64_t>(Rng() % N))});
    P.addFact(B, {F.integer(static_cast<int64_t>(Rng() % N)),
                  F.integer(static_cast<int64_t>(Rng() % N))});
    P.addFact(C, {F.integer(static_cast<int64_t>(Rng() % N)),
                  F.integer(static_cast<int64_t>(Rng() % N))});
  }
  Solver S(P, Opts);
  SolveStats St = S.solve();
  Firings = St.RuleFirings;
  return St.Seconds;
}

} // namespace

int main() {
  std::printf("Ablation A2: automatic indexes and body reordering "
              "(§4.5)\n\n");
  std::printf("%7s | %11s %11s %11s %11s\n", "facts",
              "indexed(s)", "no-index(s)", "bad-order(s)", "reorder(s)");
  std::printf("%.*s\n", 62,
              "------------------------------------------------------------"
              "--");
  for (int N : {2000, 4000, 8000, 16000}) {
    SolverOptions Default;
    SolverOptions NoIndex;
    NoIndex.UseIndexes = false;
    SolverOptions Reorder;
    Reorder.ReorderBody = true;

    uint64_t Fi = 0;
    double Indexed = runJoin(N, /*GoodOrder=*/true, Default, Fi);
    double NoIx = runJoin(N, true, NoIndex, Fi);
    double Bad = runJoin(N, /*GoodOrder=*/false, Default, Fi);
    double Fixed = runJoin(N, false, Reorder, Fi);
    std::printf("%7d | %11.3f %11.3f %11.3f %11.3f\n", 3 * N, Indexed,
                NoIx, Bad, Fixed);
    std::fflush(stdout);
  }
  std::printf("\n(indexed vs no-index shows the value of automatic index "
              "selection; bad-order vs reorder\nshows greedy reordering "
              "recovering a badly written rule)\n");
  return 0;
}
