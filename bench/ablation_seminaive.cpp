//===- bench/ablation_seminaive.cpp - naive vs semi-naive (§3.7) -----------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Ablation A1: the paper motivates semi-naive evaluation as the efficient
// strategy (§3.7); this bench quantifies the gap on two program families:
//
//   * transitive closure on a chain (pure Datalog), where naive
//     re-derives the whole Path relation every round, and
//   * the Strong Update analysis (lattices + filters + negation).
//
// Expected shape: semi-naive wins by a factor that grows with input size
// (asymptotically, one round's work vs all rounds' work).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analyses/StrongUpdate.h"
#include "fixpoint/Solver.h"
#include "workload/PointerWorkload.h"

#include <cstdio>

using namespace flix;
using namespace flix::bench;

static double runTc(int N, Strategy Strat, uint64_t &Firings) {
  ValueFactory F;
  Program P(F);
  PredId Edge = P.relation("Edge", 2);
  PredId Path = P.relation("Path", 2);
  RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
  RuleBuilder()
      .head(Path, {"x", "z"})
      .atom(Path, {"x", "y"})
      .atom(Edge, {"y", "z"})
      .addTo(P);
  for (int I = 0; I + 1 < N; ++I)
    P.addFact(Edge, {F.integer(I), F.integer(I + 1)});
  SolverOptions Opts;
  Opts.Strat = Strat;
  Solver S(P, Opts);
  SolveStats St = S.solve();
  Firings = St.RuleFirings;
  return St.Seconds;
}

int main() {
  std::printf("Ablation A1: naive vs semi-naive evaluation (§3.7)\n\n");

  std::printf("Transitive closure on a chain of n nodes:\n");
  std::printf("%6s | %10s %12s | %10s %12s | %8s\n", "n", "naive(s)",
              "firings", "semi(s)", "firings", "speedup");
  std::printf("%.*s\n", 70,
              "------------------------------------------------------------"
              "------------");
  for (int N : {50, 100, 200, 400}) {
    uint64_t NaiveFirings = 0, SemiFirings = 0;
    double NaiveT = runTc(N, Strategy::Naive, NaiveFirings);
    double SemiT = runTc(N, Strategy::SemiNaive, SemiFirings);
    std::printf("%6d | %10.3f %12llu | %10.3f %12llu | %7.1fx\n", N, NaiveT,
                static_cast<unsigned long long>(NaiveFirings), SemiT,
                static_cast<unsigned long long>(SemiFirings),
                NaiveT / std::max(SemiT, 1e-9));
    std::fflush(stdout);
  }

  std::printf("\nStrong Update analysis (lattices + filters + negation):\n");
  std::printf("%8s | %10s %10s | %8s\n", "facts", "naive(s)", "semi(s)",
              "speedup");
  std::printf("%.*s\n", 46,
              "--------------------------------------------------");
  for (size_t Facts : {500, 1000, 2000, 4000}) {
    PointerProgram P = generatePointerProgram(2016, Facts);
    StrongUpdateResult Naive =
        runStrongUpdateFlix(P, /*TimeLimitSeconds=*/120, Strategy::Naive);
    StrongUpdateResult Semi =
        runStrongUpdateFlix(P, 120, Strategy::SemiNaive);
    if (!Naive.samePointsTo(Semi))
      std::printf("WARNING: strategies disagree!\n");
    std::printf("%8zu | %10.3f %10.3f | %7.1fx\n", P.factCount(),
                Naive.Seconds, Semi.Seconds,
                Naive.Seconds / std::max(Semi.Seconds, 1e-9));
    std::fflush(stdout);
  }
  return 0;
}
