//===- bench/incremental.cpp - Incremental-vs-scratch update cost ----------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Measures the incremental evaluation subsystem (DESIGN.md §12) against a
// from-scratch solve on two workloads:
//
//   * graph   — single-source shortest paths over MinCostLattice on the
//               seeded random digraphs (GraphWorkload); each delta
//               retracts K random edges and inserts K fresh ones, hitting
//               both DRed over-delete/re-derive and insertion resumption.
//   * icfg    — gen/kill reachability over a generated interprocedural
//               CFG (IcfgWorkload); deltas rewire Cfg edges. Kill is
//               negated in the program but never mutated, so the updates
//               stay on the incremental path.
//
// Two sweeps per workload:
//
//   * delta sweep — fixed database, delta sizes 1..64: update cost should
//     track the delta (and the cone it touches), not the database.
//   * db sweep    — fixed delta (4 pairs), database scaled 4x-16x: the
//     incremental/scratch gap should *widen* with database size.
//
// Every measured update is differentially checked: a from-scratch
// sequential solve of the final fact set must be per-cell lattice-equal
// to the incremental solver's tables (the JSON records carry model_ok).
//
// Options:
//   --json <file>   write one machine-readable record per measured update
//
// Environment overrides:
//   FLIX_INC_REPS         updates measured per configuration (default 5)
//   FLIX_INC_GRAPH_NODES  graph nodes for the delta sweep (default 1500)
//   FLIX_INC_ICFG_PROCS   ICFG procedures for the delta sweep (default 24)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "incremental/IncrementalSolver.h"
#include "runtime/Lattices.h"
#include "workload/GraphWorkload.h"
#include "workload/IcfgWorkload.h"

#include <chrono>
#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

using namespace flix;
using namespace flix::bench;

namespace {

double now() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

/// Per-predicate key -> lattice value of live rows; both solvers share a
/// ValueFactory so handles compare directly.
using Model = std::vector<std::unordered_map<Value, Value>>;

template <typename SolverT> Model modelOf(const Program &P, const SolverT &S) {
  Model M(P.predicates().size());
  for (PredId Pr = 0; Pr < P.predicates().size(); ++Pr) {
    const Table &T = S.table(Pr);
    for (const Table::Row &R : T.rows())
      if (!(R.Lat == T.botValue()))
        M[Pr].emplace(R.Key, R.Lat);
  }
  return M;
}

bool sameModel(const Model &A, const Model &B) {
  if (A.size() != B.size())
    return false;
  for (size_t Pr = 0; Pr < A.size(); ++Pr) {
    if (A[Pr].size() != B[Pr].size())
      return false;
    for (const auto &[K, V] : A[Pr]) {
      auto It = B[Pr].find(K);
      if (It == B[Pr].end() || !(It->second == V))
        return false;
    }
  }
  return true;
}

/// One measured update: staged mutations already applied to the case's
/// fact set, incremental update() timed, then a from-scratch solve of the
/// same final fact set timed and compared.
struct Sample {
  UpdateStats U;
  double ScratchSeconds = 0;
  size_t DbFacts = 0;
  bool ModelOk = false;
};

//===----------------------------------------------------------------------===//
// Workload: shortest paths (lattice)
//===----------------------------------------------------------------------===//

struct GraphCase {
  ValueFactory F;
  MinCostLattice L{F};
  PredId Edge = 0, Dist = 0;
  FnId Add = 0;
  std::set<std::array<int, 3>> Edges;
  int NumNodes = 0;

  Program build() {
    Program P(F);
    Edge = P.relation("Edge", 3);
    Dist = P.lattice("Dist", 2, &L);
    Add = P.function("addCost", 2, FnRole::Transfer,
                     [this](std::span<const Value> A) {
                       return L.addCost(A[0], A[1].asInt());
                     });
    RuleBuilder()
        .headFn(Dist, {rv("y")}, Add, {rv("d"), rv("c")})
        .atom(Dist, {"x", "d"})
        .atom(Edge, {"x", "y", "c"})
        .addTo(P);
    P.addLatFact(Dist, {F.integer(0)}, L.cost(0));
    for (auto [A, B, W] : Edges)
      P.addFact(Edge, {F.integer(A), F.integer(B), F.integer(W)});
    return P;
  }

  void seed(uint64_t Seed, int Nodes) {
    NumNodes = Nodes;
    WeightedGraph G = generateGraph(Seed, Nodes, 4.0, 9);
    Edges.clear();
    for (auto [A, B, W] : G.Edges)
      Edges.insert({A, B, W});
  }

  /// Stages a balanced delta: K retracts of random present edges and K
  /// inserts of fresh ones, mirrored into Edges.
  void stageDelta(IncrementalSolver &IS, std::mt19937_64 &Rng, int K) {
    for (int I = 0; I < K && !Edges.empty(); ++I) {
      auto It = Edges.begin();
      std::advance(It, Rng() % Edges.size());
      IS.retractFact(Edge, {F.integer((*It)[0]), F.integer((*It)[1]),
                            F.integer((*It)[2])});
      Edges.erase(It);
    }
    for (int I = 0; I < K; ++I) {
      std::array<int, 3> E = {int(Rng() % NumNodes), int(Rng() % NumNodes),
                              int(1 + Rng() % 9)};
      if (!Edges.insert(E).second)
        continue;
      IS.addFact(Edge, {F.integer(E[0]), F.integer(E[1]), F.integer(E[2])});
    }
  }
};

//===----------------------------------------------------------------------===//
// Workload: ICFG gen/kill reachability (relational, negation present)
//===----------------------------------------------------------------------===//

struct IcfgCase {
  ValueFactory F;
  PredId Cfg = 0, Gen = 0, Kill = 0, Reach = 0;
  std::set<std::pair<int, int>> CfgE, GenE, KillE;
  int NumNodes = 0, NumFacts = 0;

  Program build() {
    Program P(F);
    Cfg = P.relation("Cfg", 2);
    Gen = P.relation("Gen", 2);
    Kill = P.relation("Kill", 2);
    Reach = P.relation("Reach", 2);
    RuleBuilder().head(Reach, {"n", "d"}).atom(Gen, {"n", "d"}).addTo(P);
    RuleBuilder()
        .head(Reach, {"m", "d"})
        .atom(Reach, {"n", "d"})
        .atom(Cfg, {"n", "m"})
        .negated(Kill, {"m", "d"})
        .addTo(P);
    for (auto [A, B] : CfgE)
      P.addFact(Cfg, {F.integer(A), F.integer(B)});
    for (auto [N, D] : GenE)
      P.addFact(Gen, {F.integer(N), F.integer(D)});
    for (auto [N, D] : KillE)
      P.addFact(Kill, {F.integer(N), F.integer(D)});
    return P;
  }

  void seed(uint64_t Seed, int Procs) {
    IcfgProgram I = generateIcfg(Seed, Procs, 14, 2 * Procs, 3);
    NumNodes = I.NumNodes;
    NumFacts = I.NumFacts;
    CfgE.clear();
    GenE.clear();
    KillE.clear();
    for (auto [A, B] : I.CfgEdges)
      CfgE.insert({A, B});
    for (int N = 0; N < I.NumNodes; ++N) {
      for (int D : I.Flows[N].Gen)
        GenE.insert({N, D});
      for (int D : I.Flows[N].Kill)
        KillE.insert({N, D});
    }
  }

  void stageDelta(IncrementalSolver &IS, std::mt19937_64 &Rng, int K) {
    for (int I = 0; I < K && !CfgE.empty(); ++I) {
      auto It = CfgE.begin();
      std::advance(It, Rng() % CfgE.size());
      IS.retractFact(Cfg, {F.integer(It->first), F.integer(It->second)});
      CfgE.erase(It);
    }
    for (int I = 0; I < K; ++I) {
      std::pair<int, int> E = {int(Rng() % NumNodes), int(Rng() % NumNodes)};
      if (!CfgE.insert(E).second)
        continue;
      IS.addFact(Cfg, {F.integer(E.first), F.integer(E.second)});
    }
  }
};

/// Runs Reps measured updates of size Delta against the case, returning
/// averaged seconds (incremental and scratch) plus the summed counters.
template <typename Case>
Sample measure(Case &C, IncrementalSolver &IS, std::mt19937_64 &Rng,
               int Delta, long Reps) {
  Sample Avg;
  for (long R = 0; R < Reps; ++R) {
    C.stageDelta(IS, Rng, Delta);
    UpdateStats U = IS.update();
    if (!U.ok()) {
      std::fprintf(stderr, "update failed: %s\n", U.Error.c_str());
      std::exit(1);
    }
    Avg.U.Seconds += U.Seconds;
    Avg.U.FactsAdded += U.FactsAdded;
    Avg.U.FactsRetracted += U.FactsRetracted;
    Avg.U.CellsDeleted += U.CellsDeleted;
    Avg.U.CellsRederived += U.CellsRederived;
    Avg.U.FactsDerived += U.FactsDerived;
    Avg.U.RuleFirings += U.RuleFirings;
    Avg.U.FullResolve = Avg.U.FullResolve || U.FullResolve;
  }
  // One from-scratch solve of the final fact set, timed and compared.
  Program SP = C.build();
  Avg.DbFacts = SP.facts().size();
  Solver SS(SP);
  double T0 = now();
  SolveStats St = SS.solve();
  Avg.ScratchSeconds = now() - T0;
  if (!St.ok()) {
    std::fprintf(stderr, "scratch solve failed: %s\n", St.Error.c_str());
    std::exit(1);
  }
  Avg.ModelOk = sameModel(modelOf(SP, IS), modelOf(SP, SS));
  Avg.U.Seconds /= static_cast<double>(Reps);
  return Avg;
}

void printRow(const char *Workload, const char *Sweep, size_t DbFacts,
              int Delta, const Sample &S) {
  double Speedup =
      S.U.Seconds > 0 ? S.ScratchSeconds / S.U.Seconds : 0.0;
  std::printf("%-6s %-6s %8zu %6d %12.6f %12.6f %8.1fx %8llu %8llu %s\n",
              Workload, Sweep, DbFacts, Delta, S.U.Seconds,
              S.ScratchSeconds, Speedup,
              static_cast<unsigned long long>(S.U.CellsDeleted),
              static_cast<unsigned long long>(S.U.CellsRederived),
              S.ModelOk ? "ok" : "MISMATCH");
}

void record(JsonReport &Json, const char *Workload, const char *Sweep,
            size_t DbFacts, int Delta, const Sample &S) {
  Json.begin();
  Json.str("workload", Workload)
      .str("sweep", Sweep)
      .integer("db_facts", static_cast<long long>(DbFacts))
      .integer("delta_size", Delta)
      .num("incremental_seconds", S.U.Seconds)
      .num("scratch_seconds", S.ScratchSeconds)
      .num("speedup",
           S.U.Seconds > 0 ? S.ScratchSeconds / S.U.Seconds : 0.0)
      .integer("cells_deleted", static_cast<long long>(S.U.CellsDeleted))
      .integer("cells_rederived",
               static_cast<long long>(S.U.CellsRederived))
      .integer("facts_derived", static_cast<long long>(S.U.FactsDerived))
      .integer("rule_firings", static_cast<long long>(S.U.RuleFirings))
      .boolean("full_resolve", S.U.FullResolve)
      .boolean("model_ok", S.ModelOk);
  Json.end();
}

} // namespace

int main(int Argc, char **Argv) {
  long Reps = envInt("FLIX_INC_REPS", 5);
  int GraphNodes = static_cast<int>(envInt("FLIX_INC_GRAPH_NODES", 1500));
  int IcfgProcs = static_cast<int>(envInt("FLIX_INC_ICFG_PROCS", 24));

  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: incremental [--json <file>]\n");
      return 2;
    }
  }

  JsonReport Json;
  bool AllOk = true;
  std::printf("incremental update vs from-scratch solve (avg of %ld "
              "updates per row)\n",
              Reps);
  std::printf("%-6s %-6s %8s %6s %12s %12s %9s %8s %8s %s\n", "wkld",
              "sweep", "facts", "delta", "inc-s", "scratch-s", "speedup",
              "deleted", "rederiv", "check");

  const int DeltaSweep[] = {1, 4, 16, 64};

  // Graph: delta sweep at a fixed database.
  {
    GraphCase C;
    C.seed(0x5eed, GraphNodes);
    Program P = C.build();
    IncrementalSolver IS(P);
    if (!IS.update().ok())
      return 1;
    std::mt19937_64 Rng(7);
    for (int Delta : DeltaSweep) {
      Sample S = measure(C, IS, Rng, Delta, Reps);
      printRow("graph", "delta", S.DbFacts, Delta, S);
      record(Json, "graph", "delta", S.DbFacts, Delta, S);
      AllOk = AllOk && S.ModelOk;
    }
  }

  // Graph: database sweep at a fixed delta.
  for (int Nodes : {GraphNodes / 4, GraphNodes / 2, GraphNodes,
                    GraphNodes * 2}) {
    GraphCase C;
    C.seed(0xabcd + static_cast<uint64_t>(Nodes), Nodes);
    Program P = C.build();
    IncrementalSolver IS(P);
    if (!IS.update().ok())
      return 1;
    std::mt19937_64 Rng(11);
    Sample S = measure(C, IS, Rng, 4, Reps);
    printRow("graph", "db", S.DbFacts, 4, S);
    record(Json, "graph", "db", S.DbFacts, 4, S);
    AllOk = AllOk && S.ModelOk;
  }

  // ICFG: delta sweep at a fixed database.
  {
    IcfgCase C;
    C.seed(0x1cf6, IcfgProcs);
    Program P = C.build();
    IncrementalSolver IS(P);
    if (!IS.update().ok())
      return 1;
    std::mt19937_64 Rng(17);
    for (int Delta : DeltaSweep) {
      Sample S = measure(C, IS, Rng, Delta, Reps);
      printRow("icfg", "delta", S.DbFacts, Delta, S);
      record(Json, "icfg", "delta", S.DbFacts, Delta, S);
      AllOk = AllOk && S.ModelOk;
    }
  }

  // ICFG: database sweep at a fixed delta.
  for (int Procs :
       {IcfgProcs / 4, IcfgProcs / 2, IcfgProcs, IcfgProcs * 2}) {
    IcfgCase C;
    C.seed(0x2cf6 + static_cast<uint64_t>(Procs), Procs);
    Program P = C.build();
    IncrementalSolver IS(P);
    if (!IS.update().ok())
      return 1;
    std::mt19937_64 Rng(19);
    Sample S = measure(C, IS, Rng, 4, Reps);
    printRow("icfg", "db", S.DbFacts, 4, S);
    record(Json, "icfg", "db", S.DbFacts, 4, S);
    AllOk = AllOk && S.ModelOk;
  }

  if (!JsonPath.empty() && !Json.write(JsonPath))
    std::fprintf(stderr, "failed to write %s\n", JsonPath.c_str());
  if (!AllOk) {
    std::fprintf(stderr, "differential check FAILED\n");
    return 1;
  }
  return 0;
}
