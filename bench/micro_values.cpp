//===- bench/micro_values.cpp - value/lattice micro-benchmarks -------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Ablation A3 (google-benchmark): the paper attributes much of its
// constant-factor overhead to boxed values and AST-interpreted lattice
// operations (§4.5, §7 "Performance"). These micro-benchmarks measure the
// engine's answers: hash-consed value interning, O(1) equality, native
// vs interpreted lattice operations, and table joins.
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Table.h"
#include "lang/Compiler.h"
#include "runtime/Lattices.h"

#include <benchmark/benchmark.h>

using namespace flix;

static void BM_TupleInternHit(benchmark::State &State) {
  ValueFactory F;
  std::vector<Value> Tuples;
  for (int I = 0; I < 1024; ++I)
    F.tuple({F.integer(I), F.integer(I * 7)});
  int I = 0;
  for (auto _ : State) {
    Value V = F.tuple({F.integer(I & 1023), F.integer((I & 1023) * 7)});
    benchmark::DoNotOptimize(V);
    ++I;
  }
}
BENCHMARK(BM_TupleInternHit);

static void BM_TupleInternMiss(benchmark::State &State) {
  ValueFactory F;
  int64_t I = 0;
  for (auto _ : State) {
    Value V = F.tuple({F.integer(I), F.integer(I * 31 + 1)});
    benchmark::DoNotOptimize(V);
    ++I;
  }
}
BENCHMARK(BM_TupleInternMiss);

static void BM_ValueEquality(benchmark::State &State) {
  ValueFactory F;
  Value A = F.tuple({F.string("a long-ish string"), F.integer(1)});
  Value B = F.tuple({F.string("a long-ish string"), F.integer(1)});
  for (auto _ : State) {
    bool Eq = A == B; // O(1): hash-consed handles
    benchmark::DoNotOptimize(Eq);
  }
}
BENCHMARK(BM_ValueEquality);

static void BM_ParityLubNative(benchmark::State &State) {
  ValueFactory F;
  ParityLattice L(F);
  Value X = L.odd(), Y = L.even();
  for (auto _ : State) {
    Value V = L.lub(X, Y);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ParityLubNative);

static const char *ParitySrc = R"flix(
enum Parity { case Top, case Even, case Odd, case Bot }
def leq(e1: Parity, e2: Parity): Bool = match (e1, e2) with {
  case (Parity.Bot, _) => true
  case (Parity.Even, Parity.Even) => true
  case (Parity.Odd, Parity.Odd) => true
  case (_, Parity.Top) => true
  case _ => false
}
def lub(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Bot, x) => x
  case (x, Parity.Bot) => x
  case (Parity.Even, Parity.Even) => Parity.Even
  case (Parity.Odd, Parity.Odd) => Parity.Odd
  case _ => Parity.Top
}
def glb(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Top, x) => x
  case (x, Parity.Top) => x
  case (Parity.Even, Parity.Even) => Parity.Even
  case (Parity.Odd, Parity.Odd) => Parity.Odd
  case _ => Parity.Bot
}
let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);
)flix";

static void BM_ParityLubInterpreted(benchmark::State &State) {
  ValueFactory F;
  FlixCompiler C(F);
  if (!C.compile(ParitySrc))
    State.SkipWithError("compile failed");
  Value Args[2] = {F.tag("Parity.Odd"), F.tag("Parity.Even")};
  for (auto _ : State) {
    Value V = C.interp().call("lub", Args);
    benchmark::DoNotOptimize(V);
  }
}
BENCHMARK(BM_ParityLubInterpreted);

static void BM_TableJoinInsert(benchmark::State &State) {
  ValueFactory F;
  BoolLattice L(F);
  int64_t I = 0;
  Table T(2, L, F);
  for (auto _ : State) {
    Value Key = F.tuple({F.integer(I % 65536), F.integer(I / 65536)});
    benchmark::DoNotOptimize(T.join(Key, F.boolean(true)));
    ++I;
  }
}
BENCHMARK(BM_TableJoinInsert);

static void BM_TableLatticeJoin(benchmark::State &State) {
  ValueFactory F;
  ParityLattice L(F);
  Table T(1, L, F);
  Value Vals[2] = {L.odd(), L.even()};
  int64_t I = 0;
  for (auto _ : State) {
    Value Key = F.tuple({F.integer(I % 4096)});
    benchmark::DoNotOptimize(T.join(Key, Vals[I & 1]));
    ++I;
  }
}
BENCHMARK(BM_TableLatticeJoin);

static void BM_TableProbe(benchmark::State &State) {
  ValueFactory F;
  BoolLattice L(F);
  Table T(2, L, F);
  for (int64_t I = 0; I < 10000; ++I)
    T.join(F.tuple({F.integer(I % 100), F.integer(I)}), F.boolean(true));
  int64_t I = 0;
  for (auto _ : State) {
    Value Proj = F.tuple({F.integer(I % 100)});
    benchmark::DoNotOptimize(T.probe(0b01, Proj));
    ++I;
  }
}
BENCHMARK(BM_TableProbe);

BENCHMARK_MAIN();
