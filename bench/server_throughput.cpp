//===- bench/server_throughput.cpp - flixd sustained-load benchmark -------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Measures the server subsystem (DESIGN.md S14) end to end: an in-process
// flixd Server on an ephemeral loopback port, driven by the same
// concurrent load driver flixbench_client uses. Each record is one
// client-count regime over the incremental shortest-paths workload
// (add/retract Edge batches interleaved with snapshot Dist queries) and
// carries sustained throughput plus p50/p99 request latency — the
// acceptance numbers for the write-coalescing and snapshot-isolation
// design.
//
// Options:
//   --json PATH    write the records as a JSON array (default stdout table)
//   --seconds S    drive duration per regime (default 3; CI smoke uses 0.5)
//   --clients A,B  comma list of client counts (default 1,4,8)
//   --rows N       fact rows per mutation request (default 16)
//   --keyspace N   graph node bound (default 512)
//
// Environment overrides (CI knobs): FLIX_SERVER_BENCH_SECONDS,
// FLIX_SERVER_BENCH_CLIENTS.
//
//===----------------------------------------------------------------------===//

#include "server/LoadDriver.h"
#include "server/Server.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace flix;
using namespace flix::server;

namespace {

std::vector<unsigned> parseClientList(const std::string &Spec) {
  std::vector<unsigned> Out;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t Comma = Spec.find(',', Pos);
    if (Comma == std::string::npos)
      Comma = Spec.size();
    int N = std::atoi(Spec.substr(Pos, Comma - Pos).c_str());
    if (N > 0)
      Out.push_back(unsigned(N));
    Pos = Comma + 1;
  }
  return Out;
}

} // namespace

int main(int argc, char **argv) {
  std::string JsonPath;
  double Seconds = 3.0;
  std::vector<unsigned> ClientCounts = {1, 4, 8};
  unsigned Rows = 16;
  unsigned KeySpace = 512;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    auto needValue = [&]() -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "server_throughput: %s needs a value\n",
                     A.c_str());
        std::exit(2);
      }
      return argv[++I];
    };
    if (A == "--json")
      JsonPath = needValue();
    else if (A == "--seconds")
      Seconds = std::atof(needValue());
    else if (A == "--clients")
      ClientCounts = parseClientList(needValue());
    else if (A == "--rows")
      Rows = unsigned(std::atoi(needValue()));
    else if (A == "--keyspace")
      KeySpace = unsigned(std::atoi(needValue()));
    else {
      std::fprintf(stderr, "server_throughput: unknown option '%s'\n",
                   A.c_str());
      return 2;
    }
  }
  if (const char *S = std::getenv("FLIX_SERVER_BENCH_SECONDS"))
    Seconds = std::atof(S);
  if (const char *S = std::getenv("FLIX_SERVER_BENCH_CLIENTS"))
    ClientCounts = parseClientList(S);
  if (ClientCounts.empty() || Seconds <= 0) {
    std::fprintf(stderr, "server_throughput: degenerate options\n");
    return 2;
  }

  Json Records = Json::array();
  bool AllOk = true;

  for (unsigned Clients : ClientCounts) {
    // A fresh server per regime so counters and the database start
    // clean; ephemeral port, loopback only.
    ServerOptions SO;
    SO.Port = 0;
    Server Srv(SO);
    std::string Err;
    if (!Srv.start(Err)) {
      std::fprintf(stderr, "server_throughput: start failed: %s\n",
                   Err.c_str());
      return 1;
    }

    LoadOptions LO;
    LO.Port = Srv.port();
    LO.Clients = Clients;
    LO.Seconds = Seconds;
    LO.RowsPerRequest = Rows;
    LO.KeySpace = KeySpace;
    LO.Seed = 1;
    LoadReport Rep = runLoad(LO);
    Srv.stop();
    Srv.wait();

    AllOk = AllOk && Rep.Ok;
    Json R = Rep.toJson();
    // Prepend the bench identity fields the schema check keys on.
    Json Rec = Json::object();
    Rec.set("bench", Json::str("server_throughput"));
    Rec.set("transport", Json::str("tcp-loopback"));
    Rec.set("rows_per_request", Json::integer(int64_t(Rows)));
    Rec.set("keyspace", Json::integer(int64_t(KeySpace)));
    for (auto &[Name, Val] : R.Obj)
      Rec.set(Name, std::move(Val));
    Records.Arr.push_back(std::move(Rec));

    std::fprintf(stderr,
                 "clients %2u: %7.0f mut/s %7.0f rows/s %7.0f qry/s  "
                 "mut p50/p99 %6.2f/%6.2f ms  qry p50/p99 %6.3f/%6.3f ms"
                 "  batches %llu (coalesced %llu)%s\n",
                 Clients, Rep.MutationsPerSec, Rep.RowsPerSec,
                 Rep.QueriesPerSec, Rep.MutationP50Ms, Rep.MutationP99Ms,
                 Rep.QueryP50Ms, Rep.QueryP99Ms,
                 (unsigned long long)Rep.UpdateBatches,
                 (unsigned long long)Rep.CoalescedRequests,
                 Rep.Ok ? "" : "  ERROR");
    if (!Rep.Ok)
      std::fprintf(stderr, "  first error: %s\n", Rep.Error.c_str());
  }

  std::string Out = writeJson(Records);
  if (JsonPath.empty()) {
    std::printf("%s\n", Out.c_str());
  } else {
    std::FILE *F = std::fopen(JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "server_throughput: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    std::fprintf(F, "%s\n", Out.c_str());
    std::fclose(F);
  }
  return AllOk ? 0 : 1;
}
