//===- bench/shortest_paths.cpp - §4.4 shortest paths ----------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// §4.4: FLIX as a general fixed-point language. Single-source shortest
// paths with the one-rule program vs Dijkstra and Bellman-Ford, across
// graph sizes. The declarative rule pays the generic-engine overhead;
// Bellman-Ford is structurally the "naive evaluation" of the same rule
// and Dijkstra the specialized algorithm.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analyses/ShortestPaths.h"
#include "workload/GraphWorkload.h"

#include <cstdio>

using namespace flix;
using namespace flix::bench;

int main() {
  std::printf("Shortest paths (§4.4): FLIX rule vs Dijkstra vs "
              "Bellman-Ford\n\n");
  std::printf("%8s %9s | %10s %12s %14s | %6s\n", "Nodes", "Edges",
              "Flix(s)", "Dijkstra(s)", "BellmanFord(s)", "Agree");
  std::printf("%.*s\n", 70,
              "------------------------------------------------------------"
              "------------");

  for (int Nodes : {500, 1000, 2000, 4000, 8000, 16000}) {
    WeightedGraph G = generateGraph(/*Seed=*/2016, Nodes, 4.0, 100);
    SsspResult Flix = runShortestPathsFlix(G, 0);
    SsspResult Dij = runDijkstra(G, 0);
    SsspResult BF = runBellmanFord(G, 0);
    bool Agree = Flix.Ok && Flix.sameDistances(Dij) && Dij.sameDistances(BF);
    std::printf("%8d %9zu | %10.3f %12.4f %14.4f | %6s\n", Nodes,
                G.Edges.size(), Flix.Seconds, Dij.Seconds, BF.Seconds,
                Agree ? "yes" : "NO!");
    std::fflush(stdout);
  }
  return 0;
}
