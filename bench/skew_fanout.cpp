//===- bench/skew_fanout.cpp - Intra-rule join-parallelism ablation --------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Measures the intra-rule spill path (DESIGN.md §11) on a deliberately
// skewed workload: transitive closure over a star graph whose hub node
// owns almost every edge, so each delta round funnels through one hot
// index bucket. Driver-row chunking alone cannot split that bucket — the
// spill threshold can. The bench sweeps worker counts and spill
// thresholds (0 disables spilling) and reports wall time plus the new
// SolveStats counters; every run is checked against the sequential
// solver's model size.
//
// Options:
//   --threads <csv>   worker counts to sweep (default 1,2,4,8)
//   --spill <csv>     spill thresholds to sweep (default 0,1024)
//   --json <file>     write one machine-readable record per run
//
// Environment overrides:
//   FLIX_SKEW_FANOUT   hub out-degree             (default 5000)
//   FLIX_SKEW_FEEDERS  nodes with an edge to the hub (default 32)
//   FLIX_SKEW_REPS     repetitions, median reported  (default 1)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "parallel/ParallelSolver.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace flix;
using namespace flix::bench;

namespace {

struct SkewProgram {
  ValueFactory F;
  Program P{F};
  PredId Edge, Path;

  SkewProgram(int Fanout, int Feeders) {
    Edge = P.relation("Edge", 2);
    Path = P.relation("Path", 2);
    RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
    RuleBuilder()
        .head(Path, {"x", "z"})
        .atom(Path, {"x", "y"})
        .atom(Edge, {"y", "z"})
        .addTo(P);
    for (int I = 1; I <= Fanout; ++I)
      P.addFact(Edge, {F.integer(0), F.integer(I)});
    for (int I = 0; I < Feeders; ++I)
      P.addFact(Edge, {F.integer(1000000 + I), F.integer(0)});
  }
};

double median(long Reps, const std::function<double()> &Run) {
  std::vector<double> Times;
  for (long R = 0; R < Reps; ++R)
    Times.push_back(Run());
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

} // namespace

int main(int Argc, char **Argv) {
  int Fanout = static_cast<int>(envInt("FLIX_SKEW_FANOUT", 5000));
  int Feeders = static_cast<int>(envInt("FLIX_SKEW_FEEDERS", 32));
  long Reps = envInt("FLIX_SKEW_REPS", 1);

  std::string JsonPath;
  std::vector<unsigned> Threads{1, 2, 4, 8};
  std::vector<unsigned> Spills{0, 1024};
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (Arg == "--threads" && I + 1 < Argc) {
      Threads.clear();
      if (!parseThreadList(Argv[++I], Threads)) {
        std::fprintf(stderr, "error: --threads wants e.g. 1,2,8\n");
        return 1;
      }
    } else if (Arg == "--spill" && I + 1 < Argc) {
      Spills.clear();
      if (!parseThreadList(Argv[++I], Spills)) {
        std::fprintf(stderr, "error: --spill wants e.g. 0,256,1024\n");
        return 1;
      }
    } else {
      std::fprintf(stderr, "usage: skew_fanout [--threads <csv>] "
                           "[--spill <csv>] [--json <file>]\n");
      return 1;
    }
  }

  JsonReport Json;
  JsonReport *JsonP = JsonPath.empty() ? nullptr : &Json;

  std::printf("Skewed fan-out: transitive closure, hub out-degree %d, "
              "%d feeders (median of %ld run(s))\n\n",
              Fanout, Feeders, Reps);

  // Sequential baseline fixes the expected model size.
  size_t ExpectedPaths;
  double SeqTime;
  {
    SkewProgram W(Fanout, Feeders);
    Solver Seq(W.P);
    SolveStats St = Seq.solve();
    if (!St.ok()) {
      std::fprintf(stderr, "error: sequential baseline failed: %s\n",
                   St.Error.c_str());
      return 1;
    }
    SeqTime = St.Seconds;
    ExpectedPaths = Seq.table(W.Path).size();
  }
  std::printf("sequential: %.3fs, %zu Path rows\n\n", SeqTime,
              ExpectedPaths);

  std::printf("%8s %8s | %9s %8s %10s %8s %8s\n", "threads", "spill",
              "time(s)", "speedup", "subtasks", "fanout", "steals");
  std::printf("--------------------------------------------------------"
              "-------------\n");

  bool AllOk = true;
  for (unsigned T : Threads) {
    for (unsigned Spill : Spills) {
      SolveStats St;
      bool Ok = true;
      double Time = median(Reps, [&] {
        SkewProgram W(Fanout, Feeders);
        SolverOptions Opts;
        Opts.NumThreads = T;
        Opts.SpillThreshold = Spill;
        ParallelSolver S(W.P, Opts);
        St = S.solve();
        Ok = St.ok() && S.table(W.Path).size() == ExpectedPaths;
        return St.Seconds;
      });
      if (!Ok) {
        std::printf("WARNING: run disagrees with sequential baseline "
                    "(threads=%u spill=%u)!\n", T, Spill);
        AllOk = false;
      }
      std::printf("%8u %8u | %9.3f %7.2fx %10llu %8llu %8llu\n", T, Spill,
                  Time, SeqTime / std::max(Time, 1e-9),
                  static_cast<unsigned long long>(St.SpawnedSubtasks),
                  static_cast<unsigned long long>(St.MaxFanout),
                  static_cast<unsigned long long>(St.ParallelSteals));
      std::fflush(stdout);
      if (JsonP) {
        Json.begin();
        Json.str("bench", "skew_fanout")
            .integer("fanout", Fanout)
            .integer("feeders", Feeders)
            .integer("threads", T)
            .integer("spill_threshold", Spill)
            .num("seconds", Time)
            .num("speedup", SeqTime / std::max(Time, 1e-9))
            .integer("spawned_subtasks",
                     static_cast<long long>(St.SpawnedSubtasks))
            .integer("max_fanout", static_cast<long long>(St.MaxFanout))
            .integer("index_build_tasks",
                     static_cast<long long>(St.IndexBuildTasks))
            .integer("parallel_steals",
                     static_cast<long long>(St.ParallelSteals))
            .boolean("ok", Ok);
        Json.end();
      }
    }
  }
  std::printf("\nspill=0 disables intra-rule splitting; nonzero thresholds "
              "split the hub bucket\ninto stealable sub-tasks "
              "(SolveStats::SpawnedSubtasks / MaxFanout).\n");

  if (JsonP && !Json.write(JsonPath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
    return 1;
  }
  return AllOk ? 0 : 2;
}
