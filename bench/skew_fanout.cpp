//===- bench/skew_fanout.cpp - Intra-rule join-parallelism ablation --------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Measures the intra-rule spill path (DESIGN.md §11) on a deliberately
// skewed workload: transitive closure over a star graph whose hub node
// owns almost every edge, so each delta round funnels through one hot
// index bucket. Driver-row chunking alone cannot split that bucket — the
// spill threshold can. The bench sweeps worker counts and spill
// thresholds (0 disables spilling) and reports wall time plus the new
// SolveStats counters; every run is checked against the sequential
// solver's model size.
//
// A second section ablates the cost-based join planner (DESIGN.md §16):
// transitive closure plus a deliberately misordered three-atom join
// (`Hit(x,w) :- Path(x,y), Fan(z,w), Mid(y,z)` — the unbound Fan scan
// sits before the Mid atom that would bind z). The frozen textual order
// pays |Path| x |Fan| per round; the cost model hoists Mid. Each mode
// (greedy / cost / adaptive) runs on a skewed star graph (Path outgrows
// Edge, forcing mid-solve re-plans) and a uniform matching graph (stable
// shapes, re-plans must stay at zero).
//
// Options:
//   --threads <csv>        worker counts to sweep (default 1,2,4,8)
//   --spill <csv>          spill thresholds to sweep (default 0,1024)
//   --json <file>          write one machine-readable record per run
//   --planner-json <file>  write the planner-ablation records (BENCH_planner)
//   --planner-only         skip the spill sweep, run only the ablation
//
// Environment overrides:
//   FLIX_SKEW_FANOUT       hub out-degree             (default 5000)
//   FLIX_SKEW_FEEDERS      nodes with an edge to the hub (default 32)
//   FLIX_SKEW_REPS         repetitions, median reported  (default 1)
//   FLIX_PLANNER_FANOUT    ablation hub out-degree       (default 100)
//   FLIX_PLANNER_FEEDERS   ablation feeder count         (default 10)
//   FLIX_PLANNER_FAN       Fan relation rows             (default 3500)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "parallel/ParallelSolver.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace flix;
using namespace flix::bench;

namespace {

struct SkewProgram {
  ValueFactory F;
  Program P{F};
  PredId Edge, Path;

  SkewProgram(int Fanout, int Feeders) {
    Edge = P.relation("Edge", 2);
    Path = P.relation("Path", 2);
    RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
    RuleBuilder()
        .head(Path, {"x", "z"})
        .atom(Path, {"x", "y"})
        .atom(Edge, {"y", "z"})
        .addTo(P);
    for (int I = 1; I <= Fanout; ++I)
      P.addFact(Edge, {F.integer(0), F.integer(I)});
    for (int I = 0; I < Feeders; ++I)
      P.addFact(Edge, {F.integer(1000000 + I), F.integer(0)});
  }
};

double median(long Reps, const std::function<double()> &Run) {
  std::vector<double> Times;
  for (long R = 0; R < Reps; ++R)
    Times.push_back(Run());
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// Planner-ablation workload: TC over Edge plus a misordered join whose
/// textual order scans the large Fan relation once per Path row. Skewed
/// facts form the hub star (Path explodes past Edge mid-solve); uniform
/// facts form a disjoint matching (Path == Edge, shapes never drift).
struct PlannerProgram {
  ValueFactory F;
  Program P{F};
  PredId Edge, Path, Mid, Fan, Hit;

  PlannerProgram(bool Skewed, int Fanout, int Feeders, int FanRows) {
    Edge = P.relation("Edge", 2);
    Path = P.relation("Path", 2);
    Mid = P.relation("Mid", 2);
    Fan = P.relation("Fan", 2);
    Hit = P.relation("Hit", 2);
    RuleBuilder().head(Path, {"x", "y"}).atom(Edge, {"x", "y"}).addTo(P);
    RuleBuilder()
        .head(Path, {"x", "z"})
        .atom(Path, {"x", "y"})
        .atom(Edge, {"y", "z"})
        .addTo(P);
    // Misordered on purpose: Fan(z, w) is unbound until Mid binds z.
    RuleBuilder()
        .head(Hit, {"x", "w"})
        .atom(Path, {"x", "y"})
        .atom(Fan, {"z", "w"})
        .atom(Mid, {"y", "z"})
        .addTo(P);
    if (Skewed) {
      for (int I = 1; I <= Fanout; ++I)
        P.addFact(Edge, {F.integer(0), F.integer(I)});
      for (int J = 0; J < Feeders; ++J)
        P.addFact(Edge, {F.integer(1000000 + J), F.integer(0)});
    } else {
      for (int I = 1; I <= Fanout; ++I)
        P.addFact(Edge, {F.integer(I), F.integer(1000000 + I)});
    }
    // Small per-key Fan buckets keep |Hit| bounded; the trap is the scan,
    // not the output size.
    int Keys = std::max(1, FanRows / 8);
    for (int I = 0; I <= Fanout; ++I)
      P.addFact(Mid, {F.integer(Skewed ? I : 1000000 + I),
                      F.integer(I % Keys)});
    for (int R = 0; R < FanRows; ++R)
      P.addFact(Fan, {F.integer(R % Keys), F.integer(R)});
  }
};

struct PlannerMode {
  const char *Name;
  bool CostBased;
  double ReplanThreshold;
};

constexpr PlannerMode PlannerModes[] = {
    {"greedy", false, 0.0},
    {"cost", true, 0.0},
    {"adaptive", true, 2.0},
};

} // namespace

int main(int Argc, char **Argv) {
  int Fanout = static_cast<int>(envInt("FLIX_SKEW_FANOUT", 5000));
  int Feeders = static_cast<int>(envInt("FLIX_SKEW_FEEDERS", 32));
  long Reps = envInt("FLIX_SKEW_REPS", 1);

  int PFanout = static_cast<int>(envInt("FLIX_PLANNER_FANOUT", 100));
  int PFeeders = static_cast<int>(envInt("FLIX_PLANNER_FEEDERS", 10));
  int PFan = static_cast<int>(envInt("FLIX_PLANNER_FAN", 3500));

  std::string JsonPath, PlannerJsonPath;
  bool PlannerOnly = false;
  std::vector<unsigned> Threads{1, 2, 4, 8};
  std::vector<unsigned> Spills{0, 1024};
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (Arg == "--planner-json" && I + 1 < Argc) {
      PlannerJsonPath = Argv[++I];
    } else if (Arg == "--planner-only") {
      PlannerOnly = true;
    } else if (Arg == "--threads" && I + 1 < Argc) {
      Threads.clear();
      if (!parseThreadList(Argv[++I], Threads)) {
        std::fprintf(stderr, "error: --threads wants e.g. 1,2,8\n");
        return 1;
      }
    } else if (Arg == "--spill" && I + 1 < Argc) {
      Spills.clear();
      if (!parseThreadList(Argv[++I], Spills)) {
        std::fprintf(stderr, "error: --spill wants e.g. 0,256,1024\n");
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: skew_fanout [--threads <csv>] [--spill <csv>] "
                   "[--json <file>] [--planner-json <file>] "
                   "[--planner-only]\n");
      return 1;
    }
  }

  bool AllOk = true;

  // --- Planner ablation: greedy vs cost vs adaptive join orders. -------
  {
    JsonReport PJson;
    std::printf("Join-planner ablation: TC + misordered 3-atom join, "
                "hub out-degree %d, %d feeders, %d Fan rows "
                "(median of %ld run(s), sequential engine)\n\n",
                PFanout, PFeeders, PFan, Reps);
    for (bool Skewed : {true, false}) {
      const char *Workload = Skewed ? "skewed" : "uniform";
      double GreedyTime = 0;
      size_t ExpPath = 0, ExpHit = 0;
      for (const PlannerMode &M : PlannerModes) {
        SolveStats St;
        size_t PathRows = 0, HitRows = 0;
        double Time = median(Reps, [&] {
          PlannerProgram W(Skewed, PFanout, PFeeders, PFan);
          SolverOptions Opts;
          Opts.CostBasedPlans = M.CostBased;
          Opts.ReplanThreshold = M.ReplanThreshold;
          Solver S(W.P, Opts);
          St = S.solve();
          PathRows = S.table(W.Path).size();
          HitRows = S.table(W.Hit).size();
          return St.Seconds;
        });
        // Every mode must reach the identical minimal model (the greedy
        // run fixes the expected sizes).
        if (&M == &PlannerModes[0]) {
          GreedyTime = Time;
          ExpPath = PathRows;
          ExpHit = HitRows;
        }
        bool Ok = St.ok() && PathRows == ExpPath && HitRows == ExpHit;
        if (!Ok) {
          std::printf("WARNING: planner run disagrees with greedy "
                      "baseline (workload=%s mode=%s)!\n", Workload,
                      M.Name);
          AllOk = false;
        }
        double NsPerFiring =
            Time * 1e9 / static_cast<double>(std::max<uint64_t>(
                             St.RuleFirings, 1));
        double Speedup = GreedyTime / std::max(Time, 1e-9);
        std::printf("planner %-7s %-8s: %8.3fs, %9llu firings, "
                    "%10.1f ns/firing, speedup_vs_greedy=%.2fx, "
                    "replan_events=%llu, cost_based_orders=%llu, "
                    "row_drift=%llu\n",
                    Workload, M.Name, Time,
                    static_cast<unsigned long long>(St.RuleFirings),
                    NsPerFiring, Speedup,
                    static_cast<unsigned long long>(St.ReplanEvents),
                    static_cast<unsigned long long>(St.CostBasedPlans),
                    static_cast<unsigned long long>(
                        St.EstimatedVsActualRows));
        std::fflush(stdout);
        if (!PlannerJsonPath.empty()) {
          PJson.begin();
          PJson.str("bench", "planner")
              .str("workload", Workload)
              .str("mode", M.Name)
              .integer("fanout", PFanout)
              .integer("feeders", PFeeders)
              .integer("fan_rows", PFan)
              .num("replan_threshold", M.ReplanThreshold)
              .num("seconds", Time)
              .integer("rule_firings",
                       static_cast<long long>(St.RuleFirings))
              .num("ns_per_firing", NsPerFiring)
              .num("speedup_vs_greedy", Speedup)
              .integer("replan_events",
                       static_cast<long long>(St.ReplanEvents))
              .integer("cost_based_plans",
                       static_cast<long long>(St.CostBasedPlans))
              .integer("estimated_vs_actual_rows",
                       static_cast<long long>(St.EstimatedVsActualRows))
              .boolean("ok", Ok);
          PJson.end();
        }
      }
      std::printf("\n");
    }
    std::printf("greedy freezes the textual body order; cost picks orders "
                "once from table\nstatistics; adaptive re-plans between "
                "rounds when shapes drift past the\nhysteresis "
                "threshold.\n\n");
    if (!PlannerJsonPath.empty() && !PJson.write(PlannerJsonPath)) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   PlannerJsonPath.c_str());
      return 1;
    }
  }
  if (PlannerOnly)
    return AllOk ? 0 : 2;

  JsonReport Json;
  JsonReport *JsonP = JsonPath.empty() ? nullptr : &Json;

  std::printf("Skewed fan-out: transitive closure, hub out-degree %d, "
              "%d feeders (median of %ld run(s))\n\n",
              Fanout, Feeders, Reps);

  // Sequential baseline fixes the expected model size.
  size_t ExpectedPaths;
  double SeqTime;
  {
    SkewProgram W(Fanout, Feeders);
    Solver Seq(W.P);
    SolveStats St = Seq.solve();
    if (!St.ok()) {
      std::fprintf(stderr, "error: sequential baseline failed: %s\n",
                   St.Error.c_str());
      return 1;
    }
    SeqTime = St.Seconds;
    ExpectedPaths = Seq.table(W.Path).size();
  }
  std::printf("sequential: %.3fs, %zu Path rows\n\n", SeqTime,
              ExpectedPaths);

  std::printf("%8s %8s | %9s %8s %10s %8s %8s\n", "threads", "spill",
              "time(s)", "speedup", "subtasks", "fanout", "steals");
  std::printf("--------------------------------------------------------"
              "-------------\n");

  for (unsigned T : Threads) {
    for (unsigned Spill : Spills) {
      SolveStats St;
      bool Ok = true;
      double Time = median(Reps, [&] {
        SkewProgram W(Fanout, Feeders);
        SolverOptions Opts;
        Opts.NumThreads = T;
        Opts.SpillThreshold = Spill;
        ParallelSolver S(W.P, Opts);
        St = S.solve();
        Ok = St.ok() && S.table(W.Path).size() == ExpectedPaths;
        return St.Seconds;
      });
      if (!Ok) {
        std::printf("WARNING: run disagrees with sequential baseline "
                    "(threads=%u spill=%u)!\n", T, Spill);
        AllOk = false;
      }
      std::printf("%8u %8u | %9.3f %7.2fx %10llu %8llu %8llu\n", T, Spill,
                  Time, SeqTime / std::max(Time, 1e-9),
                  static_cast<unsigned long long>(St.SpawnedSubtasks),
                  static_cast<unsigned long long>(St.MaxFanout),
                  static_cast<unsigned long long>(St.ParallelSteals));
      std::fflush(stdout);
      if (JsonP) {
        Json.begin();
        Json.str("bench", "skew_fanout")
            .integer("fanout", Fanout)
            .integer("feeders", Feeders)
            .integer("threads", T)
            .integer("spill_threshold", Spill)
            .num("seconds", Time)
            .num("speedup", SeqTime / std::max(Time, 1e-9))
            .integer("spawned_subtasks",
                     static_cast<long long>(St.SpawnedSubtasks))
            .integer("max_fanout", static_cast<long long>(St.MaxFanout))
            .integer("index_build_tasks",
                     static_cast<long long>(St.IndexBuildTasks))
            .integer("parallel_steals",
                     static_cast<long long>(St.ParallelSteals))
            .boolean("ok", Ok);
        Json.end();
      }
    }
  }
  std::printf("\nspill=0 disables intra-rule splitting; nonzero thresholds "
              "split the hub bucket\ninto stealable sub-tasks "
              "(SolveStats::SpawnedSubtasks / MaxFanout).\n");

  if (JsonP && !Json.write(JsonPath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
    return 1;
  }
  return AllOk ? 0 : 2;
}
