//===- bench/streaming_negation.cpp - Sustained churn across negation -----===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Streams a long sequence of small mixed batches — Cfg rewires, Gen
// inserts, and (crucially) Kill inserts AND retracts — through the
// incremental engine on the gen/kill reachability workload, where Kill
// is under stratified negation:
//
//   Reach(n, d) :- Gen(n, d).
//   Reach(m, d) :- Reach(n, d), Cfg(n, m), !Kill(m, d).
//
// Before stratum-local DRed (DESIGN.md S12) every such batch forced a
// full re-solve, so the sustainable update rate was the scratch-solve
// rate. This bench reports the streaming rate the incremental path
// sustains now: updates/sec plus p50/p99/max per-update latency, per
// thread count. The negation-fallback counter must be zero and every
// periodic (and the final) differential check against a from-scratch
// solve must match — either failure exits nonzero.
//
// Options:
//   --json <file>   write one machine-readable record per thread count
//
// Environment overrides:
//   FLIX_STREAM_UPDATES      measured updates per thread count (default 200)
//   FLIX_STREAM_PROCS        ICFG procedures (default 16)
//   FLIX_STREAM_BATCH        Cfg ops per batch (default 4)
//   FLIX_STREAM_CHECK_EVERY  differential check period (default 50)
//   FLIX_STREAM_THREADS      comma list of thread counts (default "0,8")
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "incremental/IncrementalSolver.h"
#include "workload/IcfgWorkload.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

using namespace flix;
using namespace flix::bench;

namespace {

double now() {
  using Clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(Clock::now().time_since_epoch())
      .count();
}

using Model = std::vector<std::unordered_map<Value, Value>>;

template <typename SolverT> Model modelOf(const Program &P, const SolverT &S) {
  Model M(P.predicates().size());
  for (PredId Pr = 0; Pr < P.predicates().size(); ++Pr) {
    const Table &T = S.table(Pr);
    for (const Table::Row &R : T.rows())
      if (!(R.Lat == T.botValue()))
        M[Pr].emplace(R.Key, R.Lat);
  }
  return M;
}

bool sameModel(const Model &A, const Model &B) {
  if (A.size() != B.size())
    return false;
  for (size_t Pr = 0; Pr < A.size(); ++Pr) {
    if (A[Pr].size() != B[Pr].size())
      return false;
    for (const auto &[K, V] : A[Pr]) {
      auto It = B[Pr].find(K);
      if (It == B[Pr].end() || !(It->second == V))
        return false;
    }
  }
  return true;
}

struct IcfgCase {
  ValueFactory F;
  PredId Cfg = 0, Gen = 0, Kill = 0, Reach = 0;
  std::set<std::pair<int, int>> CfgE, GenE, KillE;
  int NumNodes = 0, NumFacts = 0;

  Program build() {
    Program P(F);
    Cfg = P.relation("Cfg", 2);
    Gen = P.relation("Gen", 2);
    Kill = P.relation("Kill", 2);
    Reach = P.relation("Reach", 2);
    RuleBuilder().head(Reach, {"n", "d"}).atom(Gen, {"n", "d"}).addTo(P);
    RuleBuilder()
        .head(Reach, {"m", "d"})
        .atom(Reach, {"n", "d"})
        .atom(Cfg, {"n", "m"})
        .negated(Kill, {"m", "d"})
        .addTo(P);
    for (auto [A, B] : CfgE)
      P.addFact(Cfg, {F.integer(A), F.integer(B)});
    for (auto [N, D] : GenE)
      P.addFact(Gen, {F.integer(N), F.integer(D)});
    for (auto [N, D] : KillE)
      P.addFact(Kill, {F.integer(N), F.integer(D)});
    return P;
  }

  void seed(uint64_t Seed, int Procs) {
    IcfgProgram I = generateIcfg(Seed, Procs, 14, 2 * Procs, 3);
    NumNodes = I.NumNodes;
    NumFacts = I.NumFacts;
    CfgE.clear();
    GenE.clear();
    KillE.clear();
    for (auto [A, B] : I.CfgEdges)
      CfgE.insert({A, B});
    for (int N = 0; N < I.NumNodes; ++N) {
      for (int D : I.Flows[N].Gen)
        GenE.insert({N, D});
      for (int D : I.Flows[N].Kill)
        KillE.insert({N, D});
    }
  }

  /// One streaming batch: K/2 Cfg retracts + K/2 Cfg inserts, one Gen
  /// insert, and one Kill op alternating retract/insert so the negated
  /// predicate churns in both directions every other update.
  void stageBatch(IncrementalSolver &IS, std::mt19937_64 &Rng, int K,
                  long UpdateNo) {
    for (int I = 0; I < K / 2 && !CfgE.empty(); ++I) {
      auto It = CfgE.begin();
      std::advance(It, Rng() % CfgE.size());
      IS.retractFact(Cfg, {F.integer(It->first), F.integer(It->second)});
      CfgE.erase(It);
    }
    for (int I = 0; I < K / 2; ++I) {
      std::pair<int, int> E = {int(Rng() % NumNodes), int(Rng() % NumNodes)};
      if (CfgE.insert(E).second)
        IS.addFact(Cfg, {F.integer(E.first), F.integer(E.second)});
    }
    std::pair<int, int> G = {int(Rng() % NumNodes), int(Rng() % NumFacts)};
    if (GenE.insert(G).second)
      IS.addFact(Gen, {F.integer(G.first), F.integer(G.second)});

    if (UpdateNo % 2 == 0 && !KillE.empty()) {
      auto It = KillE.begin();
      std::advance(It, Rng() % KillE.size());
      IS.retractFact(Kill, {F.integer(It->first), F.integer(It->second)});
      KillE.erase(It);
    } else {
      std::pair<int, int> KM = {int(Rng() % NumNodes),
                                int(Rng() % NumFacts)};
      if (KillE.insert(KM).second)
        IS.addFact(Kill, {F.integer(KM.first), F.integer(KM.second)});
    }
  }
};

bool checkModel(IcfgCase &C, const IncrementalSolver &IS) {
  Program SP = C.build();
  Solver SS(SP);
  if (!SS.solve().ok())
    return false;
  return sameModel(modelOf(SP, IS), modelOf(SP, SS));
}

double percentile(std::vector<double> Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  size_t I = size_t(P * double(Sorted.size() - 1) + 0.5);
  return Sorted[std::min(I, Sorted.size() - 1)];
}

} // namespace

int main(int Argc, char **Argv) {
  long Updates = envInt("FLIX_STREAM_UPDATES", 200);
  int Procs = static_cast<int>(envInt("FLIX_STREAM_PROCS", 16));
  int Batch = static_cast<int>(envInt("FLIX_STREAM_BATCH", 4));
  long CheckEvery = envInt("FLIX_STREAM_CHECK_EVERY", 50);
  const char *ThreadsEnv = std::getenv("FLIX_STREAM_THREADS");
  std::vector<unsigned> Threads;
  if (!parseThreadList(ThreadsEnv ? ThreadsEnv : "0,8", Threads)) {
    std::fprintf(stderr, "bad FLIX_STREAM_THREADS\n");
    return 2;
  }

  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: streaming_negation [--json <file>]\n");
      return 2;
    }
  }

  JsonReport Json;
  bool AllOk = true;

  std::printf("streaming negation churn: %ld updates of ~%d ops "
              "(Cfg/Gen/Kill) on an ICFG of %d procedures\n",
              Updates, Batch + 2, Procs);
  std::printf("%7s %9s %12s %10s %10s %10s %9s %6s\n", "threads", "updates",
              "updates/s", "p50-ms", "p99-ms", "max-ms", "neg-fallb",
              "check");

  for (unsigned T : Threads) {
    IcfgCase C;
    C.seed(0x57e4, Procs);
    Program P = C.build();
    SolverOptions Opts;
    Opts.NumThreads = T;
    IncrementalSolver IS(P, Opts);
    if (!IS.update().ok())
      return 1;

    std::mt19937_64 Rng(23);
    std::vector<double> LatMs;
    LatMs.reserve(size_t(Updates));
    bool Ok = true;
    uint64_t FullResolves = 0;
    double T0 = now();
    for (long U = 0; U < Updates; ++U) {
      C.stageBatch(IS, Rng, Batch, U);
      double B0 = now();
      UpdateStats St = IS.update();
      LatMs.push_back((now() - B0) * 1e3);
      if (!St.ok()) {
        std::fprintf(stderr, "update failed: %s\n", St.Error.c_str());
        return 1;
      }
      FullResolves += St.FullResolve ? 1 : 0;
      if (CheckEvery > 0 && (U + 1) % CheckEvery == 0)
        Ok = Ok && checkModel(C, IS);
    }
    double Wall = now() - T0;
    Ok = Ok && checkModel(C, IS);

    std::vector<double> Sorted = LatMs;
    std::sort(Sorted.begin(), Sorted.end());
    double P50 = percentile(Sorted, 0.50);
    double P99 = percentile(Sorted, 0.99);
    double Max = Sorted.empty() ? 0.0 : Sorted.back();
    double Rate = Wall > 0 ? double(Updates) / Wall : 0.0;
    uint64_t NegFallbacks = IS.negationFallbacks();
    bool NoFallbacks = NegFallbacks == 0;

    std::printf("%7u %9ld %12.1f %10.3f %10.3f %10.3f %9llu %6s\n", T,
                Updates, Rate, P50, P99, Max,
                (unsigned long long)NegFallbacks,
                Ok && NoFallbacks ? "ok" : "FAIL");

    Json.begin();
    Json.str("workload", "icfg_stream")
        .integer("threads", T)
        .integer("updates", Updates)
        .integer("batch_ops", Batch + 2)
        .integer("icfg_procs", Procs)
        .num("wall_seconds", Wall)
        .num("updates_per_sec", Rate)
        .num("p50_ms", P50)
        .num("p99_ms", P99)
        .num("max_ms", Max)
        .integer("negation_fallbacks", (long long)NegFallbacks)
        .integer("degraded_recoveries", (long long)IS.degradedRecoveries())
        .integer("full_resolves", (long long)FullResolves)
        .boolean("model_ok", Ok);
    Json.end();

    AllOk = AllOk && Ok && NoFallbacks;
  }

  if (!JsonPath.empty() && !Json.write(JsonPath))
    std::fprintf(stderr, "failed to write %s\n", JsonPath.c_str());
  if (!AllOk) {
    std::fprintf(stderr,
                 "differential or negation-fallback check FAILED\n");
    return 1;
  }
  return 0;
}
