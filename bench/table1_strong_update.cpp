//===- bench/table1_strong_update.cpp - Table 1 reproduction ---------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: the Strong Update analysis on SPEC-shaped synthetic
// pointer programs (see DESIGN.md §3 for the substitution), comparing
//
//   Datalog  — the §1 powerset embedding on the relational engine
//              (the paper's DLV column),
//   Flix     — the Figure 4 program as FLIX *source* through the full
//              pipeline with interpreted lattice operations (the paper's
//              Flix column),
//   Flix(n)  — the same rules through the C++ API with native lattice
//              operations (extra column: what compiling the lattice ops
//              buys, the paper's §7 "Performance" direction),
//   C++      — the hand-coded imperative analyzer (the paper's C++
//              column).
//
// Expected shape (not absolute numbers): Datalog is an order of magnitude
// slower than Flix and stops scaling first; the hand-coded C++ analyzer
// is 1-2 orders faster than Flix; memory follows the same ordering.
//
// Options:
//   --threads <n>      run both Flix columns through the parallel engine
//                      with <n> workers (0 = sequential, the default)
//   --json <file>      write one machine-readable record per solver run
//
// Environment overrides:
//   FLIX_TABLE1_TIMEOUT  per-run timeout in seconds   (default 20)
//   FLIX_TABLE1_ROWS     number of benchmark rows     (default 14; the
//                        last two rows only exercise the C++ column and
//                        take minutes — set 16 for the full table)
//   FLIX_TABLE1_SCALE    input-fact scale factor      (default 1.0)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analyses/StrongUpdate.h"
#include "workload/PointerWorkload.h"

#include <cstdio>
#include <string>
#include <vector>

using namespace flix;
using namespace flix::bench;

int main(int Argc, char **Argv) {
  std::string JsonPath;
  unsigned Threads = 0;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (Arg == "--threads" && I + 1 < Argc) {
      long N = std::atol(Argv[++I]);
      if (N < 0) {
        std::fprintf(stderr, "error: --threads needs a value >= 0\n");
        return 1;
      }
      Threads = static_cast<unsigned>(N);
    } else {
      std::fprintf(stderr, "usage: table1_strong_update [--threads <n>] "
                           "[--json <file>]\n");
      return 1;
    }
  }
  JsonReport Json;

  double Timeout = envDouble("FLIX_TABLE1_TIMEOUT", 20.0);
  double Scale = envDouble("FLIX_TABLE1_SCALE", 1.0);
  std::vector<SpecPreset> Presets = spec2006Presets();
  size_t Rows = static_cast<size_t>(envInt("FLIX_TABLE1_ROWS", 14));
  if (Rows < Presets.size())
    Presets.resize(Rows);

  SolverOptions FlixOpts;
  FlixOpts.TimeLimitSeconds = Timeout;
  FlixOpts.NumThreads = Threads;

  std::printf("Table 1: Strong Update analysis — Datalog embedding vs "
              "FLIX vs hand-coded C++\n");
  std::string EngineDesc =
      Threads == 0 ? "the sequential engine"
                   : "the parallel engine, " + std::to_string(Threads) +
                         " worker(s)";
  std::printf("(synthetic SPEC-shaped inputs; timeout %.0f s; Flix "
              "columns on %s; see EXPERIMENTS.md)\n\n", Timeout,
              EngineDesc.c_str());
  std::printf("%-16s %6s %8s | %9s %8s | %9s %8s | %9s %8s | %9s\n",
              "Benchmark", "kSLOC", "Facts", "DatalogMB", "Time(s)",
              "FlixMB", "Time(s)", "Flix(n)MB", "Time(s)", "C++(s)");
  std::printf("%.*s\n", 118,
              "------------------------------------------------------------"
              "------------------------------------------------------------");

  // Like the paper, a column that has timed out twice in a row is not run
  // on larger inputs (shown as "-").
  int DatalogTO = 0, FlixTO = 0, NativeTO = 0;

  for (const SpecPreset &Preset : Presets) {
    size_t Facts = static_cast<size_t>(Preset.InputFacts * Scale);
    PointerProgram P = generatePointerProgram(/*Seed=*/2016, Facts);

    bool SkipDatalog = DatalogTO >= 2;
    bool SkipFlix = FlixTO >= 2;
    bool SkipNative = NativeTO >= 2;

    StrongUpdateResult Datalog, Flix, Native;
    if (!SkipDatalog) {
      Datalog = runStrongUpdateDatalog(P, Timeout);
      DatalogTO = Datalog.St == StrongUpdateResult::Status::Timeout
                      ? DatalogTO + 1
                      : 0;
    }
    if (!SkipFlix) {
      Flix = runStrongUpdateFlixSource(P, FlixOpts);
      FlixTO =
          Flix.St == StrongUpdateResult::Status::Timeout ? FlixTO + 1 : 0;
    }
    if (!SkipNative) {
      Native = runStrongUpdateFlix(P, FlixOpts);
      NativeTO = Native.St == StrongUpdateResult::Status::Timeout
                     ? NativeTO + 1
                     : 0;
    }
    StrongUpdateResult Cpp = runStrongUpdateImperative(P);

    // Sanity: completed engines must agree (cross-validated in the test
    // suite; double-checked here).
    if (!SkipNative && Native.ok() && !Cpp.samePointsTo(Native))
      std::printf("WARNING: C++ and Flix(n) disagree on %s!\n",
                  Preset.Name.c_str());

    auto row = [&](const StrongUpdateResult &R, bool Skipped) {
      bool TO = R.St == StrongUpdateResult::Status::Timeout;
      return std::make_pair(memCell(R.MemoryBytes, !Skipped && R.ok()),
                            timeCell(R.Seconds, TO, Skipped));
    };
    auto [DMem, DTime] = row(Datalog, SkipDatalog);
    auto [FMem, FTime] = row(Flix, SkipFlix);
    auto [NMem, NTime] = row(Native, SkipNative);

    std::printf("%-16s %6.1f %8zu | %9s %8s | %9s %8s | %9s %8s | %9.2f\n",
                Preset.Name.c_str(), Preset.KSloc, P.factCount(),
                DMem.c_str(), DTime.c_str(), FMem.c_str(), FTime.c_str(),
                NMem.c_str(), NTime.c_str(), Cpp.Seconds);
    std::fflush(stdout);

    if (!JsonPath.empty()) {
      auto record = [&](const char *Column, const StrongUpdateResult &R,
                        bool Skipped, unsigned ColThreads) {
        Json.begin();
        Json.str("bench", "table1_strong_update")
            .str("benchmark", Preset.Name)
            .integer("facts", static_cast<long long>(P.factCount()))
            .str("column", Column)
            .integer("threads", ColThreads)
            .str("status",
                 Skipped ? "skipped"
                 : R.St == StrongUpdateResult::Status::Timeout
                     ? "timeout"
                 : R.ok() ? "ok"
                          : "error")
            .num("seconds", Skipped ? -1 : R.Seconds)
            .num("memory_mb", Skipped ? -1
                                      : static_cast<double>(R.MemoryBytes) /
                                            (1024.0 * 1024.0));
        Json.end();
      };
      record("datalog", Datalog, SkipDatalog, 0);
      record("flix_source", Flix, SkipFlix, Threads);
      record("flix_native", Native, SkipNative, Threads);
      record("cpp", Cpp, false, 0);
    }
  }

  std::printf("\nColumns: Datalog = powerset embedding (DLV proxy); "
              "Flix = FLIX source, interpreted lattice ops;\n"
              "Flix(n) = C++ API, native lattice ops; C++ = hand-coded "
              "imperative analyzer.\n");
  if (!JsonPath.empty() && !Json.write(JsonPath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
    return 1;
  }
  return 0;
}
