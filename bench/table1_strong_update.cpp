//===- bench/table1_strong_update.cpp - Table 1 reproduction ---------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: the Strong Update analysis on SPEC-shaped synthetic
// pointer programs (see DESIGN.md §3 for the substitution), comparing
//
//   Datalog  — the §1 powerset embedding on the relational engine
//              (the paper's DLV column),
//   Flix     — the Figure 4 program as FLIX *source* through the full
//              pipeline with interpreted lattice operations (the paper's
//              Flix column),
//   Flix(n)  — the same rules through the C++ API with native lattice
//              operations (extra column: what compiling the lattice ops
//              buys, the paper's §7 "Performance" direction),
//   C++      — the hand-coded imperative analyzer (the paper's C++
//              column).
//
// Expected shape (not absolute numbers): Datalog is an order of magnitude
// slower than Flix and stops scaling first; the hand-coded C++ analyzer
// is 1-2 orders faster than Flix; memory follows the same ordering.
//
// Environment overrides:
//   FLIX_TABLE1_TIMEOUT  per-run timeout in seconds   (default 20)
//   FLIX_TABLE1_ROWS     number of benchmark rows     (default 14; the
//                        last two rows only exercise the C++ column and
//                        take minutes — set 16 for the full table)
//   FLIX_TABLE1_SCALE    input-fact scale factor      (default 1.0)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analyses/StrongUpdate.h"
#include "workload/PointerWorkload.h"

#include <cstdio>
#include <vector>

using namespace flix;
using namespace flix::bench;

int main() {
  double Timeout = envDouble("FLIX_TABLE1_TIMEOUT", 20.0);
  double Scale = envDouble("FLIX_TABLE1_SCALE", 1.0);
  std::vector<SpecPreset> Presets = spec2006Presets();
  size_t Rows = static_cast<size_t>(envInt("FLIX_TABLE1_ROWS", 14));
  if (Rows < Presets.size())
    Presets.resize(Rows);

  std::printf("Table 1: Strong Update analysis — Datalog embedding vs "
              "FLIX vs hand-coded C++\n");
  std::printf("(synthetic SPEC-shaped inputs; timeout %.0f s; see "
              "EXPERIMENTS.md)\n\n", Timeout);
  std::printf("%-16s %6s %8s | %9s %8s | %9s %8s | %9s %8s | %9s\n",
              "Benchmark", "kSLOC", "Facts", "DatalogMB", "Time(s)",
              "FlixMB", "Time(s)", "Flix(n)MB", "Time(s)", "C++(s)");
  std::printf("%.*s\n", 118,
              "------------------------------------------------------------"
              "------------------------------------------------------------");

  // Like the paper, a column that has timed out twice in a row is not run
  // on larger inputs (shown as "-").
  int DatalogTO = 0, FlixTO = 0, NativeTO = 0;

  for (const SpecPreset &Preset : Presets) {
    size_t Facts = static_cast<size_t>(Preset.InputFacts * Scale);
    PointerProgram P = generatePointerProgram(/*Seed=*/2016, Facts);

    bool SkipDatalog = DatalogTO >= 2;
    bool SkipFlix = FlixTO >= 2;
    bool SkipNative = NativeTO >= 2;

    StrongUpdateResult Datalog, Flix, Native;
    if (!SkipDatalog) {
      Datalog = runStrongUpdateDatalog(P, Timeout);
      DatalogTO = Datalog.St == StrongUpdateResult::Status::Timeout
                      ? DatalogTO + 1
                      : 0;
    }
    if (!SkipFlix) {
      Flix = runStrongUpdateFlixSource(P, Timeout);
      FlixTO =
          Flix.St == StrongUpdateResult::Status::Timeout ? FlixTO + 1 : 0;
    }
    if (!SkipNative) {
      Native = runStrongUpdateFlix(P, Timeout);
      NativeTO = Native.St == StrongUpdateResult::Status::Timeout
                     ? NativeTO + 1
                     : 0;
    }
    StrongUpdateResult Cpp = runStrongUpdateImperative(P);

    // Sanity: completed engines must agree (cross-validated in the test
    // suite; double-checked here).
    if (!SkipNative && Native.ok() && !Cpp.samePointsTo(Native))
      std::printf("WARNING: C++ and Flix(n) disagree on %s!\n",
                  Preset.Name.c_str());

    auto row = [&](const StrongUpdateResult &R, bool Skipped) {
      bool TO = R.St == StrongUpdateResult::Status::Timeout;
      return std::make_pair(memCell(R.MemoryBytes, !Skipped && R.ok()),
                            timeCell(R.Seconds, TO, Skipped));
    };
    auto [DMem, DTime] = row(Datalog, SkipDatalog);
    auto [FMem, FTime] = row(Flix, SkipFlix);
    auto [NMem, NTime] = row(Native, SkipNative);

    std::printf("%-16s %6.1f %8zu | %9s %8s | %9s %8s | %9s %8s | %9.2f\n",
                Preset.Name.c_str(), Preset.KSloc, P.factCount(),
                DMem.c_str(), DTime.c_str(), FMem.c_str(), FTime.c_str(),
                NMem.c_str(), NTime.c_str(), Cpp.Seconds);
    std::fflush(stdout);
  }

  std::printf("\nColumns: Datalog = powerset embedding (DLV proxy); "
              "Flix = FLIX source, interpreted lattice ops;\n"
              "Flix(n) = C++ API, native lattice ops; C++ = hand-coded "
              "imperative analyzer.\n");
  return 0;
}
