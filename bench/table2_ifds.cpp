//===- bench/table2_ifds.cpp - Table 2 reproduction ------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2: the IFDS framework on DaCapo-shaped synthetic
// interprocedural CFGs (see DESIGN.md §3), comparing the hand-coded
// imperative tabulation solver (the paper's "Scala" column) with the
// declarative Figure 5 formulation on the fixpoint engine (the paper's
// "Flix" column). Both call the same flow-function implementations, as in
// the paper's evaluation (§4.5).
//
// Two regimes are reported:
//   * realistic flow functions (default, like the paper): both solvers
//     call the same nontrivial transfer-function code, whose cost
//     dominates — the paper reports a 2.5-3.1x slowdown in this regime;
//   * trivial flow functions (engine-bound): isolates the pure overhead
//     of the generic engine over the bare worklist algorithm.
//
// Environment overrides:
//   FLIX_TABLE2_REPS   repetitions per row, median reported (default 1)
//   FLIX_TABLE2_WORK   transfer-function busy-work iterations
//                      (default 2500 ≈ 5 µs; 0 = trivial regime only)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analyses/Ifds.h"
#include "workload/IcfgWorkload.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace flix;
using namespace flix::bench;

namespace {

void runRegime(const char *Title, int TransferWork, long Reps,
               bool CheckAgainstPaper) {
  // The paper's slowdowns, for side-by-side display.
  static const double PaperSlowdown[] = {2.7, 2.5, 2.5, 2.9, 2.7, 3.1};
  int RowIdx = 0;
  std::printf("%s\n", Title);
  std::printf("%-10s %8s %8s | %12s %10s %10s%s\n", "Program", "Nodes",
              "Facts", "Imperative(s)", "Flix(s)", "Slowdown",
              CheckAgainstPaper ? "    Paper" : "");
  std::printf("%.*s\n", CheckAgainstPaper ? 76 : 66,
              "------------------------------------------------------------"
              "--------------------");

  for (const DacapoPreset &Preset : dacapoPresets()) {
    IcfgProgram G = generateIcfg(/*Seed=*/2016, Preset.NumProcs,
                                 Preset.NodesPerProc, Preset.FactsTotal,
                                 Preset.CallsPerProc);
    G.TransferWork = TransferWork;
    IfdsProblem Prob = G.toIfdsProblem();

    auto median = [&](auto Run) {
      std::vector<double> Times;
      for (long R = 0; R < Reps; ++R)
        Times.push_back(Run());
      std::sort(Times.begin(), Times.end());
      return Times[Times.size() / 2];
    };

    IfdsResult Imp, Flix;
    double ImpTime = median([&] {
      Imp = runIfdsImperative(Prob);
      return Imp.Seconds;
    });
    double FlixTime = median([&] {
      Flix = runIfdsFlix(Prob);
      return Flix.Seconds;
    });

    if (!Flix.Ok || !Flix.sameResult(Imp))
      std::printf("WARNING: solvers disagree on %s!\n",
                  Preset.Name.c_str());

    std::printf("%-10s %8d %8zu | %12.3f %10.3f %9.1fx",
                Preset.Name.c_str(), G.NumNodes, Flix.Result.size(),
                ImpTime, FlixTime, FlixTime / std::max(ImpTime, 1e-9));
    if (CheckAgainstPaper)
      std::printf("%8.1fx", PaperSlowdown[RowIdx]);
    std::printf("\n");
    ++RowIdx;
    std::fflush(stdout);
  }
  std::printf("\n");
}

} // namespace

int main() {
  long Reps = envInt("FLIX_TABLE2_REPS", 1);
  int Work = static_cast<int>(envInt("FLIX_TABLE2_WORK", 6000));

  std::printf("Table 2: IFDS — imperative solver vs declarative FLIX "
              "formulation\n");
  std::printf("(synthetic DaCapo-shaped ICFGs; median of %ld run(s); see "
              "EXPERIMENTS.md)\n\n", Reps);

  if (Work > 0)
    runRegime("Realistic flow functions (shared nontrivial transfer "
              "code, as in the paper):",
              Work, Reps, /*CheckAgainstPaper=*/true);
  runRegime("Trivial flow functions (pure engine overhead):", 0, Reps,
            false);

  std::printf("Both solvers run the same flow-function code; the Flix "
              "column pays for the generic engine\n(tables, indexes, "
              "delta bookkeeping), the imperative column for nothing but "
              "the algorithm.\nWith realistic transfer functions the "
              "shared cost dominates, as in the paper's setup.\n");
  return 0;
}
