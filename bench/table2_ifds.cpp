//===- bench/table2_ifds.cpp - Table 2 reproduction ------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2: the IFDS framework on DaCapo-shaped synthetic
// interprocedural CFGs (see DESIGN.md §3), comparing the hand-coded
// imperative tabulation solver (the paper's "Scala" column) with the
// declarative Figure 5 formulation on the fixpoint engine (the paper's
// "Flix" column). Both call the same flow-function implementations, as in
// the paper's evaluation (§4.5).
//
// Two regimes are reported:
//   * realistic flow functions (default, like the paper): both solvers
//     call the same nontrivial transfer-function code, whose cost
//     dominates — the paper reports a 2.5-3.1x slowdown in this regime;
//   * trivial flow functions (engine-bound): isolates the pure overhead
//     of the generic engine over the bare worklist algorithm.
//
// A plan/memo ablation section then re-runs the declarative solver in
// the four {CompilePlans, EnableMemo} configurations and reports ns per
// rule firing (firings are identical across regimes, so this normalizes
// out workload size); the JSON records carry regime "plan_memo".
//
// A VM-engine ablation section follows (regime "vm_engine",
// BENCH_vm.json): IFDS registers its flow functions as native C++
// externs, which the execution engine cannot speed up, so this section
// solves a FLIX-*source* gen/kill reachability program over the same
// ICFGs — the lattice operations and the transfer function are FLIX
// defs, putting the interp-vs-bytecode-VM choice on the solve hot path.
//
// Options:
//   --threads <csv>    also run the declarative solver through the
//                      parallel engine at each listed worker count
//                      (0 = the sequential solver) and report a scaling
//                      section; results are cross-checked against the
//                      imperative solver at every thread count
//   --json <file>      write one machine-readable record per solver run
//
// Environment overrides:
//   FLIX_TABLE2_REPS        repetitions per row, median reported
//                           (default 1)
//   FLIX_TABLE2_WORK        transfer-function busy-work iterations
//                           (default 2500 ≈ 5 µs; 0 = trivial regime
//                           only)
//   FLIX_TABLE2_VM_PRESETS  DaCapo presets covered by the VM-engine
//                           ablation, smallest first (default 3; the
//                           interp lane is the bottleneck)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analyses/Ifds.h"
#include "lang/Compiler.h"
#include "parallel/Dispatch.h"
#include "workload/IcfgWorkload.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

using namespace flix;
using namespace flix::bench;

namespace {

double median(long Reps, const std::function<double()> &Run) {
  std::vector<double> Times;
  for (long R = 0; R < Reps; ++R)
    Times.push_back(Run());
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

void runRegime(const char *Title, const char *RegimeKey, int TransferWork,
               long Reps, bool CheckAgainstPaper, JsonReport *Json) {
  // The paper's slowdowns, for side-by-side display.
  static const double PaperSlowdown[] = {2.7, 2.5, 2.5, 2.9, 2.7, 3.1};
  int RowIdx = 0;
  std::printf("%s\n", Title);
  std::printf("%-10s %8s %8s | %12s %10s %10s%s\n", "Program", "Nodes",
              "Facts", "Imperative(s)", "Flix(s)", "Slowdown",
              CheckAgainstPaper ? "    Paper" : "");
  std::printf("%.*s\n", CheckAgainstPaper ? 76 : 66,
              "------------------------------------------------------------"
              "--------------------");

  for (const DacapoPreset &Preset : dacapoPresets()) {
    IcfgProgram G = generateIcfg(/*Seed=*/2016, Preset.NumProcs,
                                 Preset.NodesPerProc, Preset.FactsTotal,
                                 Preset.CallsPerProc);
    G.TransferWork = TransferWork;
    IfdsProblem Prob = G.toIfdsProblem();

    IfdsResult Imp, Flix;
    double ImpTime = median(Reps, [&] {
      Imp = runIfdsImperative(Prob);
      return Imp.Seconds;
    });
    double FlixTime = median(Reps, [&] {
      Flix = runIfdsFlix(Prob);
      return Flix.Seconds;
    });

    if (!Flix.Ok || !Flix.sameResult(Imp))
      std::printf("WARNING: solvers disagree on %s!\n",
                  Preset.Name.c_str());

    std::printf("%-10s %8d %8zu | %12.3f %10.3f %9.1fx",
                Preset.Name.c_str(), G.NumNodes, Flix.Result.size(),
                ImpTime, FlixTime, FlixTime / std::max(ImpTime, 1e-9));
    if (CheckAgainstPaper)
      std::printf("%8.1fx", PaperSlowdown[RowIdx]);
    std::printf("\n");
    ++RowIdx;
    std::fflush(stdout);

    if (Json) {
      Json->begin();
      Json->str("bench", "table2_ifds")
          .str("regime", RegimeKey)
          .str("program", Preset.Name)
          .integer("nodes", G.NumNodes)
          .str("solver", "imperative")
          .integer("threads", 0)
          .num("seconds", ImpTime)
          .boolean("ok", Imp.Ok);
      Json->end();
      Json->begin();
      Json->str("bench", "table2_ifds")
          .str("regime", RegimeKey)
          .str("program", Preset.Name)
          .integer("nodes", G.NumNodes)
          .str("solver", "flix")
          .integer("threads", 0)
          .num("seconds", FlixTime)
          .boolean("ok", Flix.Ok && Flix.sameResult(Imp));
      Json->end();
    }
  }
  std::printf("\n");
}

void runScaling(const std::vector<unsigned> &Threads, int TransferWork,
                long Reps, JsonReport *Json) {
  std::printf("Parallel scaling (declarative solver; 0 = sequential "
              "engine):\n");
  std::printf("%-10s", "Program");
  for (unsigned T : Threads)
    std::printf(" %8s", ("T=" + std::to_string(T)).c_str());
  std::printf("  speedup (T=%u vs T=0)\n", Threads.back());
  std::printf("%.*s\n",
              static_cast<int>(12 + 9 * Threads.size() + 24),
              "------------------------------------------------------------"
              "--------------------");

  for (const DacapoPreset &Preset : dacapoPresets()) {
    IcfgProgram G = generateIcfg(/*Seed=*/2016, Preset.NumProcs,
                                 Preset.NodesPerProc, Preset.FactsTotal,
                                 Preset.CallsPerProc);
    G.TransferWork = TransferWork;
    IfdsProblem Prob = G.toIfdsProblem();
    IfdsResult Reference = runIfdsImperative(Prob);

    std::printf("%-10s", Preset.Name.c_str());
    double Base = -1, Last = -1;
    for (unsigned T : Threads) {
      SolverOptions Opts;
      Opts.NumThreads = T;
      IfdsResult R;
      double Time = median(Reps, [&] {
        R = runIfdsFlix(Prob, Opts);
        return R.Seconds;
      });
      if (!R.Ok || !R.sameResult(Reference))
        std::printf("\nWARNING: parallel solver (%u threads) disagrees "
                    "with imperative on %s!\n",
                    T, Preset.Name.c_str());
      if (T == 0 || Base < 0)
        Base = Time;
      Last = Time;
      std::printf(" %8.3f", Time);
      if (Json) {
        Json->begin();
        Json->str("bench", "table2_ifds")
            .str("regime", "scaling")
            .str("program", Preset.Name)
            .integer("nodes", G.NumNodes)
            .str("solver", T == 0 ? "flix" : "flix_parallel")
            .integer("threads", T)
            .num("seconds", Time)
            .num("speedup", Base / std::max(Time, 1e-9))
            .integer("spawned_subtasks",
                     static_cast<long long>(R.Stats.SpawnedSubtasks))
            .integer("max_fanout", static_cast<long long>(R.Stats.MaxFanout))
            .integer("index_build_tasks",
                     static_cast<long long>(R.Stats.IndexBuildTasks))
            .integer("parallel_steals",
                     static_cast<long long>(R.Stats.ParallelSteals))
            .boolean("ok", R.Ok && R.sameResult(Reference));
        Json->end();
      }
    }
    std::printf("  %6.2fx\n", Base / std::max(Last, 1e-9));
    std::fflush(stdout);
  }
  std::printf("\n");
}

/// The four plan/memo configurations, legacy first.
struct AblationRegime {
  const char *Name;
  bool Plans, Memo;
};
constexpr AblationRegime PlanMemoRegimes[] = {
    {"legacy", false, false},
    {"plans", true, false},
    {"memo", false, true},
    {"plans+memo", true, true},
};

/// Plan/memo ablation on the declarative solver (sequential engine).
/// Reports ns per rule firing — the normalization the acceptance check
/// uses, since firings are identical across regimes on the same input.
void runPlanMemoAblation(int TransferWork, long Reps, JsonReport *Json) {
  std::printf("Plan/memo ablation (sequential declarative solver; ns per "
              "rule firing):\n");
  std::printf("%-10s", "Program");
  for (const AblationRegime &Reg : PlanMemoRegimes)
    std::printf(" %12s", Reg.Name);
  std::printf("\n");
  std::printf("%.*s\n", 62,
              "------------------------------------------------------------"
              "--------------------");

  for (const DacapoPreset &Preset : dacapoPresets()) {
    IcfgProgram G = generateIcfg(/*Seed=*/2016, Preset.NumProcs,
                                 Preset.NodesPerProc, Preset.FactsTotal,
                                 Preset.CallsPerProc);
    G.TransferWork = TransferWork;
    IfdsProblem Prob = G.toIfdsProblem();
    IfdsResult Reference = runIfdsImperative(Prob);

    std::printf("%-10s", Preset.Name.c_str());
    for (const AblationRegime &Reg : PlanMemoRegimes) {
      SolverOptions Opts;
      Opts.CompilePlans = Reg.Plans;
      Opts.EnableMemo = Reg.Memo;
      IfdsResult R;
      double Time = median(Reps, [&] {
        R = runIfdsFlix(Prob, Opts);
        return R.Seconds;
      });
      bool Ok = R.Ok && R.sameResult(Reference);
      if (!Ok)
        std::printf("\nWARNING: %s regime disagrees with imperative on "
                    "%s!\n",
                    Reg.Name, Preset.Name.c_str());
      double NsPerFiring =
          Time * 1e9 / std::max<uint64_t>(R.Stats.RuleFirings, 1);
      std::printf(" %12.1f", NsPerFiring);
      if (Json) {
        Json->begin();
        Json->str("bench", "table2_ifds")
            .str("regime", "plan_memo")
            .str("config", Reg.Name)
            .str("program", Preset.Name)
            .boolean("plans", Reg.Plans)
            .boolean("memo", Reg.Memo)
            .integer("threads", 0)
            .num("seconds", Time)
            .integer("rule_firings",
                     static_cast<long long>(R.Stats.RuleFirings))
            .num("ns_per_firing", NsPerFiring)
            .integer("plan_steps",
                     static_cast<long long>(R.Stats.PlanSteps))
            .integer("memo_hits", static_cast<long long>(R.Stats.MemoHits))
            .integer("memo_misses",
                     static_cast<long long>(R.Stats.MemoMisses))
            .boolean("ok", Ok);
        Json->end();
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n");
}

//===--------------------------------------------------------------------===//
// VM-engine ablation (regime "vm_engine", BENCH_vm.json)
//===--------------------------------------------------------------------===//

/// Gen/kill reachability over the ICFG supergraph with the lattice
/// operations and the edge transfer written in FLIX source. Every join
/// firing calls `step` and every lattice insert calls `lub`/`leq`
/// through the chosen engine, so the interp-vs-VM difference is on the
/// hot path (unlike IFDS above, whose flow functions are native C++
/// externs either way).
const char *VmAblationSrc = R"flix(
enum R { case Bot, case Reach }

def leq(a: R, b: R): Bool = match (a, b) with {
  case (R.Bot, _) => true
  case (R.Reach, R.Reach) => true
  case _ => false
}
def lub(a: R, b: R): R = match (a, b) with {
  case (R.Bot, x) => x
  case (x, R.Bot) => x
  case _ => R.Reach
}
def glb(a: R, b: R): R = match (a, b) with {
  case (R.Reach, x) => x
  case (x, R.Reach) => x
  case _ => R.Bot
}
let R<> = (R.Bot, R.Reach, leq, lub, glb);

def step(t: R): R = match t with {
  case R.Reach => R.Reach
  case R.Bot => R.Bot
}

rel Edge(n: Int, m: Int);
rel Gen(n: Int, d: Int);
rel Kill(n: Int, d: Int);
lat Out(n: Int, d: Int, R<>);

Out(n, d, R.Reach) :- Gen(n, d).
Out(m, d, step(t)) :- Out(n, d, t), Edge(n, m), !Kill(m, d).
)flix";

/// One solved configuration of the FLIX-source reachability program.
struct VmRunOutcome {
  double Seconds = 0;
  uint64_t RuleFirings = 0;
  uint64_t VmCalls = 0;
  uint64_t IcHits = 0;
  uint64_t Fallbacks = 0;
  bool Ok = false;
  /// Rendered (n, d, value) rows for cross-engine identity checking —
  /// handles are per-run, so rows are compared as strings.
  std::set<std::string> Model;
};

VmRunOutcome runVmEngineConfig(const IcfgProgram &G, bool UseVm,
                               bool Memo) {
  ValueFactory F;
  FlixCompiler C(F);
  C.setUseVm(UseVm);
  VmRunOutcome Out;
  if (!C.compile(VmAblationSrc, "vm-ablation.flix")) {
    std::fprintf(stderr, "vm-ablation compile failed:\n%s",
                 C.diagnostics().c_str());
    return Out;
  }

  auto fact2 = [&](const char *P, int A, int B) {
    Value T[2] = {F.integer(A), F.integer(B)};
    C.addFact(P, T);
  };
  for (auto [N, M] : G.CfgEdges)
    fact2("Edge", N, M);
  for (auto [N, M] : G.CallEdges)
    fact2("Edge", N, M);
  for (int N = 0; N < G.NumNodes; ++N) {
    for (int D : G.Flows[N].Gen)
      fact2("Gen", N, D);
    for (int D : G.Flows[N].Kill)
      fact2("Kill", N, D);
  }

  SolverOptions Opts;
  Opts.UseVm = UseVm;
  Opts.EnableMemo = Memo;
  return solveWith(C.program(), Opts,
                   [&](const auto &S, const SolveStats &St) {
    Out.Seconds = St.Seconds;
    Out.RuleFirings = St.RuleFirings;
    Out.VmCalls = St.VmCalls;
    Out.IcHits = St.VmInlineCacheHits;
    Out.Fallbacks = St.InterpFallbacks;
    Out.Ok = St.St == SolveStats::Status::Fixpoint &&
             !C.interp().hasError();
    if (Out.Ok)
      for (const auto &Row : S.tuples(*C.predicate("Out")))
        Out.Model.insert(std::to_string(Row[0].asInt()) + "," +
                         std::to_string(Row[1].asInt()) + "," +
                         F.toString(Row[2]));
    return Out;
  });
}

/// The four engine configurations, interpreter first (the baseline).
constexpr AblationRegime VmEngineRegimes[] = {
    {"interp", false, false},
    {"interp+memo", false, true},
    {"vm", true, false},
    {"vm+memo", true, true},
};

void runVmEngineAblation(long Reps, JsonReport *Json) {
  long MaxPresets = envInt("FLIX_TABLE2_VM_PRESETS", 3);
  std::printf("VM-engine ablation (FLIX-source gen/kill reachability, "
              "sequential solver; ns per rule firing):\n");
  std::printf("%-10s", "Program");
  for (const AblationRegime &Reg : VmEngineRegimes)
    std::printf(" %12s", Reg.Name);
  std::printf("   vm-spdup\n");
  std::printf("%.*s\n", 73,
              "------------------------------------------------------------"
              "--------------------");

  long Done = 0;
  for (const DacapoPreset &Preset : dacapoPresets()) {
    if (Done++ >= MaxPresets)
      break;
    IcfgProgram G = generateIcfg(/*Seed=*/2016, Preset.NumProcs,
                                 Preset.NodesPerProc, Preset.FactsTotal,
                                 Preset.CallsPerProc);

    std::printf("%-10s", Preset.Name.c_str());
    VmRunOutcome Baseline;
    double InterpNs = 0, VmNs = 0;
    for (const AblationRegime &Reg : VmEngineRegimes) {
      // Reg.Plans doubles as the UseVm flag here (same struct shape).
      bool UseVm = Reg.Plans, Memo = Reg.Memo;
      VmRunOutcome R;
      double Time = median(Reps, [&] {
        R = runVmEngineConfig(G, UseVm, Memo);
        return R.Seconds;
      });
      bool Ok = R.Ok;
      if (Reg.Plans == false && Reg.Memo == false)
        Baseline = R;
      else if (Ok && R.Model != Baseline.Model) {
        Ok = false;
        std::printf("\nWARNING: %s engine disagrees with the interpreter "
                    "on %s!\n",
                    Reg.Name, Preset.Name.c_str());
      }
      if (UseVm && R.Fallbacks != 0) {
        Ok = false;
        std::printf("\nWARNING: %s took %llu interpreter fallbacks on "
                    "%s!\n",
                    Reg.Name,
                    static_cast<unsigned long long>(R.Fallbacks),
                    Preset.Name.c_str());
      }
      double NsPerFiring =
          Time * 1e9 / std::max<uint64_t>(R.RuleFirings, 1);
      if (!UseVm && !Memo)
        InterpNs = NsPerFiring;
      if (UseVm && !Memo)
        VmNs = NsPerFiring;
      std::printf(" %12.1f", NsPerFiring);
      if (Json) {
        Json->begin();
        Json->str("bench", "table2_ifds")
            .str("regime", "vm_engine")
            .str("config", Reg.Name)
            .str("program", Preset.Name)
            .boolean("vm", UseVm)
            .boolean("memo", Memo)
            .integer("threads", 0)
            .num("seconds", Time)
            .integer("rule_firings",
                     static_cast<long long>(R.RuleFirings))
            .num("ns_per_firing", NsPerFiring)
            .integer("vm_calls", static_cast<long long>(R.VmCalls))
            .integer("vm_inline_cache_hits",
                     static_cast<long long>(R.IcHits))
            .integer("interp_fallbacks",
                     static_cast<long long>(R.Fallbacks))
            .boolean("ok", Ok);
        Json->end();
      }
    }
    std::printf("   %6.2fx\n", InterpNs / std::max(VmNs, 1e-9));
    std::fflush(stdout);
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  long Reps = envInt("FLIX_TABLE2_REPS", 1);
  int Work = static_cast<int>(envInt("FLIX_TABLE2_WORK", 6000));

  std::string JsonPath;
  std::vector<unsigned> Threads;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else if (Arg == "--threads" && I + 1 < Argc) {
      if (!parseThreadList(Argv[++I], Threads)) {
        std::fprintf(stderr, "error: --threads wants a comma-separated "
                             "list of worker counts, e.g. 0,1,2,8\n");
        return 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: table2_ifds [--threads <csv>] [--json <file>]\n");
      return 1;
    }
  }

  JsonReport Json;
  JsonReport *JsonP = JsonPath.empty() ? nullptr : &Json;

  std::printf("Table 2: IFDS — imperative solver vs declarative FLIX "
              "formulation\n");
  std::printf("(synthetic DaCapo-shaped ICFGs; median of %ld run(s); see "
              "EXPERIMENTS.md)\n\n", Reps);

  if (Work > 0)
    runRegime("Realistic flow functions (shared nontrivial transfer "
              "code, as in the paper):",
              "realistic", Work, Reps, /*CheckAgainstPaper=*/true, JsonP);
  runRegime("Trivial flow functions (pure engine overhead):", "trivial", 0,
            Reps, false, JsonP);
  runPlanMemoAblation(Work, Reps, JsonP);
  runVmEngineAblation(Reps, JsonP);
  if (!Threads.empty())
    runScaling(Threads, Work, Reps, JsonP);

  std::printf("Both solvers run the same flow-function code; the Flix "
              "column pays for the generic engine\n(tables, indexes, "
              "delta bookkeeping), the imperative column for nothing but "
              "the algorithm.\nWith realistic transfer functions the "
              "shared cost dominates, as in the paper's setup.\n");

  if (JsonP && !Json.write(JsonPath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
    return 1;
  }
  return 0;
}
