//===- bench/table3_ide.cpp - IDE vs IFDS (§4.3 extension) -----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// The paper presents IDE (Figure 6) as a direct extension of IFDS
// (Figure 5): the same edges, each decorated with a micro-function. This
// bench quantifies the decoration cost: the declarative IFDS run vs the
// declarative IDE run (linear-constant-propagation micro-functions) on
// the same ICFGs, checking that both reach the same (node, fact) pairs.
//
// Expected shape: IDE is a small constant factor slower than IFDS — the
// rules are the same shape, each carrying one extra lattice column.
//
// A plan/memo ablation section then re-runs the IDE solver in the four
// {CompilePlans, EnableMemo} configurations. IDE composes and joins
// micro-functions through externs on every firing, so the memo cache
// sees heavy traffic here; ns per rule firing normalizes out workload
// size. `--json <file>` writes one record per solver run; ablation
// records carry regime "plan_memo".
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analyses/Ide.h"
#include "analyses/Ifds.h"
#include "workload/IcfgWorkload.h"

#include <algorithm>
#include <cstdio>
#include <string>

using namespace flix;
using namespace flix::bench;

namespace {

/// Moderately smaller instances than Table 2 (IDE carries a lattice
/// column everywhere) so the bench stays quick.
IcfgProgram presetIcfg(const DacapoPreset &Preset) {
  IcfgProgram G = generateIcfg(/*Seed=*/2016, Preset.NumProcs / 2 + 1,
                               Preset.NodesPerProc,
                               Preset.FactsTotal / 2 + 1,
                               Preset.CallsPerProc);
  return G;
}

void runComparison(JsonReport *Json) {
  std::printf("%-10s %8s | %10s %10s %10s | %8s\n", "Program", "Nodes",
              "IFDS(s)", "IDE(s)", "Overhead", "SameEdges");
  std::printf("%.*s\n", 66,
              "------------------------------------------------------------"
              "--------");

  for (const DacapoPreset &Preset : dacapoPresets()) {
    IcfgProgram G = presetIcfg(Preset);
    IfdsResult Ifds = runIfdsFlix(G.toIfdsProblem());
    IdeResult Ide = runIdeFlix(G.toIdeProblem());
    bool Same = Ifds.Ok && Ide.Ok && Ide.Reachable == Ifds.Result;
    std::printf("%-10s %8d | %10.3f %10.3f %9.1fx | %8s\n",
                Preset.Name.c_str(), G.NumNodes, Ifds.Seconds, Ide.Seconds,
                Ide.Seconds / std::max(Ifds.Seconds, 1e-9),
                Same ? "yes" : "NO!");
    std::fflush(stdout);
    if (Json) {
      Json->begin();
      Json->str("bench", "table3_ide")
          .str("regime", "comparison")
          .str("program", Preset.Name)
          .integer("nodes", G.NumNodes)
          .str("solver", "ifds")
          .integer("threads", 0)
          .num("seconds", Ifds.Seconds)
          .boolean("ok", Same);
      Json->end();
      Json->begin();
      Json->str("bench", "table3_ide")
          .str("regime", "comparison")
          .str("program", Preset.Name)
          .integer("nodes", G.NumNodes)
          .str("solver", "ide")
          .integer("threads", 0)
          .num("seconds", Ide.Seconds)
          .boolean("ok", Same);
      Json->end();
    }
  }
  std::printf("\n");
}

void runPlanMemoAblation(JsonReport *Json) {
  struct AblationRegime {
    const char *Name;
    bool Plans, Memo;
  };
  constexpr AblationRegime Regimes[] = {
      {"legacy", false, false},
      {"plans", true, false},
      {"memo", false, true},
      {"plans+memo", true, true},
  };

  std::printf("Plan/memo ablation (IDE solver, sequential; ns per rule "
              "firing):\n");
  std::printf("%-10s", "Program");
  for (const AblationRegime &Reg : Regimes)
    std::printf(" %12s", Reg.Name);
  std::printf("\n");
  std::printf("%.*s\n", 62,
              "------------------------------------------------------------"
              "--------------------");

  for (const DacapoPreset &Preset : dacapoPresets()) {
    IcfgProgram G = presetIcfg(Preset);
    IdeProblem Prob = G.toIdeProblem();
    IdeResult Reference = runIdeFlix(Prob);

    std::printf("%-10s", Preset.Name.c_str());
    for (const AblationRegime &Reg : Regimes) {
      SolverOptions Opts;
      Opts.CompilePlans = Reg.Plans;
      Opts.EnableMemo = Reg.Memo;
      IdeResult R = runIdeFlix(Prob, Opts);
      bool Ok = R.Ok && Reference.Ok && R.Values == Reference.Values &&
                R.Reachable == Reference.Reachable;
      if (!Ok)
        std::printf("\nWARNING: %s regime disagrees on %s!\n", Reg.Name,
                    Preset.Name.c_str());
      double NsPerFiring =
          R.Seconds * 1e9 / std::max<uint64_t>(R.Stats.RuleFirings, 1);
      std::printf(" %12.1f", NsPerFiring);
      if (Json) {
        Json->begin();
        Json->str("bench", "table3_ide")
            .str("regime", "plan_memo")
            .str("config", Reg.Name)
            .str("program", Preset.Name)
            .boolean("plans", Reg.Plans)
            .boolean("memo", Reg.Memo)
            .integer("threads", 0)
            .num("seconds", R.Seconds)
            .integer("rule_firings",
                     static_cast<long long>(R.Stats.RuleFirings))
            .num("ns_per_firing", NsPerFiring)
            .integer("plan_steps",
                     static_cast<long long>(R.Stats.PlanSteps))
            .integer("memo_hits", static_cast<long long>(R.Stats.MemoHits))
            .integer("memo_misses",
                     static_cast<long long>(R.Stats.MemoMisses))
            .boolean("ok", Ok);
        Json->end();
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n");
}

} // namespace

int main(int Argc, char **Argv) {
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: table3_ide [--json <file>]\n");
      return 1;
    }
  }
  JsonReport Json;
  JsonReport *JsonP = JsonPath.empty() ? nullptr : &Json;

  std::printf("IDE vs IFDS: the cost of micro-function decoration "
              "(Figures 5 vs 6)\n\n");
  runComparison(JsonP);
  runPlanMemoAblation(JsonP);

  if (JsonP && !Json.write(JsonPath)) {
    std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
    return 1;
  }
  return 0;
}
