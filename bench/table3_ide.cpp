//===- bench/table3_ide.cpp - IDE vs IFDS (§4.3 extension) -----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// The paper presents IDE (Figure 6) as a direct extension of IFDS
// (Figure 5): the same edges, each decorated with a micro-function. This
// bench quantifies the decoration cost: the declarative IFDS run vs the
// declarative IDE run (linear-constant-propagation micro-functions) on
// the same ICFGs, checking that both reach the same (node, fact) pairs.
//
// Expected shape: IDE is a small constant factor slower than IFDS — the
// rules are the same shape, each carrying one extra lattice column.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analyses/Ide.h"
#include "analyses/Ifds.h"
#include "workload/IcfgWorkload.h"

#include <cstdio>

using namespace flix;
using namespace flix::bench;

int main() {
  std::printf("IDE vs IFDS: the cost of micro-function decoration "
              "(Figures 5 vs 6)\n\n");
  std::printf("%-10s %8s | %10s %10s %10s | %8s\n", "Program", "Nodes",
              "IFDS(s)", "IDE(s)", "Overhead", "SameEdges");
  std::printf("%.*s\n", 66,
              "------------------------------------------------------------"
              "--------");

  for (const DacapoPreset &Preset : dacapoPresets()) {
    // IDE carries a lattice column everywhere; use moderately smaller
    // instances than Table 2 so the bench stays quick.
    IcfgProgram G = generateIcfg(/*Seed=*/2016, Preset.NumProcs / 2 + 1,
                                 Preset.NodesPerProc,
                                 Preset.FactsTotal / 2 + 1,
                                 Preset.CallsPerProc);
    IfdsResult Ifds = runIfdsFlix(G.toIfdsProblem());
    IdeResult Ide = runIdeFlix(G.toIdeProblem());
    bool Same = Ifds.Ok && Ide.Ok && Ide.Reachable == Ifds.Result;
    std::printf("%-10s %8d | %10.3f %10.3f %9.1fx | %8s\n",
                Preset.Name.c_str(), G.NumNodes, Ifds.Seconds, Ide.Seconds,
                Ide.Seconds / std::max(Ifds.Seconds, 1e-9),
                Same ? "yes" : "NO!");
    std::fflush(stdout);
  }
  return 0;
}
