//===- bench/vm_dispatch.cpp - interp vs bytecode VM ns/call --------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Measures the per-call cost of the FLIX functional sub-language on its
// three execution paths (EXPERIMENTS.md A7):
//
//   * interp    — the tree-walking AST interpreter, called cold every
//                 time (the pre-VM default, what EXPERIMENTS.md A3
//                 measured at ~360x a native call);
//   * vm        — the register bytecode VM (DESIGN.md S15), inline
//                 caches warm;
//   * memo-hit  — the extern memo cache returning the cached value
//                 (what a repeated pure call costs on the join hot path
//                 once plans+memo are on).
//
// Five representative functions: the paper's parity lub (tag dispatch),
// the parity transfer function sum (nested match + equality), a deep
// arithmetic/let/if expression, recursive fib(12) (call-frame traffic),
// and poly2 (a non-recursive cross-call, the bytecode inliner's
// showcase). Values are cross-checked between engines on every lane.
//
// Every (function x pipeline level {0, 2}) pair gets its own row and
// JSON record, tagged with the dispatch strategy this binary was built
// with ("threaded" computed-goto vs. the portable "switch" loop,
// -DFLIX_VM_THREADED) — BENCH_vm.json is regenerated from both builds.
//
// Options:
//   --json <file>             one record per (function, opt level)
//
// Environment overrides:
//   FLIX_VM_DISPATCH_ITERS    timed iterations per lane (default 200000;
//                             fib uses 1/50 of this)
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "fixpoint/Plan.h"
#include "lang/Compiler.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>

using namespace flix;
using namespace flix::bench;

namespace {

const char *ModuleSrc = R"flix(
enum Parity { case Top, case Even, case Odd, case Bot }
def leq(e1: Parity, e2: Parity): Bool = match (e1, e2) with {
  case (Parity.Bot, _) => true
  case (Parity.Even, Parity.Even) => true
  case (Parity.Odd, Parity.Odd) => true
  case (_, Parity.Top) => true
  case _ => false
}
def lub(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Bot, x) => x
  case (x, Parity.Bot) => x
  case (Parity.Even, Parity.Even) => Parity.Even
  case (Parity.Odd, Parity.Odd) => Parity.Odd
  case _ => Parity.Top
}
def glb(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Top, x) => x
  case (x, Parity.Top) => x
  case (Parity.Even, Parity.Even) => Parity.Even
  case (Parity.Odd, Parity.Odd) => Parity.Odd
  case _ => Parity.Bot
}
let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);

def sum(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Bot, _) => Parity.Bot
  case (_, Parity.Bot) => Parity.Bot
  case (Parity.Top, _) => Parity.Top
  case (_, Parity.Top) => Parity.Top
  case (x, y) => if (x == y) Parity.Even else Parity.Odd
}

def poly(x: Int, y: Int): Int =
  let a = x * x + 3 * y;
  let b = if (a % 7 == 0) a / 7 else a - y;
  let c = match b % 3 with { case 0 => b case 1 => b + x case _ => b - x };
  c * 2 + y % 5

def fib(n: Int): Int = if (n < 2) n else fib(n - 1) + fib(n - 2)

def poly2(x: Int, y: Int): Int = poly(x, y) + poly(y, x)
)flix";

uint64_t Sink = 0;

/// ns per call over \p Iters timed iterations (after warmup).
double nsPerCall(long Iters, const std::function<Value()> &Call) {
  for (long I = 0; I < Iters / 10 + 1; ++I)
    Sink ^= Call().rawBits();
  auto T0 = std::chrono::steady_clock::now();
  for (long I = 0; I < Iters; ++I)
    Sink ^= Call().rawBits();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(T1 - T0).count() /
         static_cast<double>(Iters);
}

} // namespace

int main(int Argc, char **Argv) {
  long Iters = envInt("FLIX_VM_DISPATCH_ITERS", 200000);
  std::string JsonPath;
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--json" && I + 1 < Argc) {
      JsonPath = Argv[++I];
    } else {
      std::fprintf(stderr, "usage: vm_dispatch [--json <file>]\n");
      return 1;
    }
  }

  const char *Dispatch =
      vm::Vm::threadedDispatch() ? "threaded" : "switch";

  ValueFactory F;
  struct Case {
    const char *Name;
    std::vector<Value> Args;
    long Iters;
  };
  Value Odd = F.tag("Parity.Odd"), Even = F.tag("Parity.Even");
  const Case Cases[] = {
      {"lub", {Odd, Even}, Iters},
      {"sum", {Odd, Even}, Iters},
      {"poly", {F.integer(7), F.integer(9)}, Iters},
      {"fib", {F.integer(12)}, std::max<long>(Iters / 50, 1)},
      {"poly2", {F.integer(7), F.integer(9)}, Iters},
  };

  std::printf("VM dispatch microbenchmark (ns per call, %ld iterations, "
              "%s dispatch; EXPERIMENTS.md A7/A9)\n\n",
              Iters, Dispatch);
  std::printf("%-8s %5s %12s %12s %12s %10s %10s\n", "Function", "opt",
              "interp", "vm", "memo-hit", "vm-spdup", "memo-spdup");
  std::printf("%.*s\n", 76,
              "------------------------------------------------------------"
              "--------------------");

  JsonReport Json;
  bool AllOk = true;
  for (int OptLevel : {0, 2}) {
    FlixCompiler C(F);
    C.setVmOptLevel(OptLevel);
    if (!C.compile(ModuleSrc, "vm-dispatch.flix")) {
      std::fprintf(stderr, "compile failed:\n%s", C.diagnostics().c_str());
      return 1;
    }
    const auto &Pipe = C.program().vmPipelineCounters();

    for (const Case &K : Cases) {
      Interp &I = C.interp();
      std::optional<uint32_t> Ix = C.vmFunctionIndex(K.Name);
      if (!Ix) {
        std::fprintf(stderr, "error: %s has no VM body\n", K.Name);
        return 1;
      }
      std::span<const Value> Args(K.Args);

      Value FromInterp = I.call(K.Name, Args);
      Value FromVm = C.vm()->call(*Ix, Args);
      bool Ok = FromInterp == FromVm && !I.hasError();
      AllOk &= Ok;

      double NsInterp =
          nsPerCall(K.Iters, [&] { return I.call(K.Name, Args); });
      double NsVm =
          nsPerCall(K.Iters, [&] { return C.vm()->call(*Ix, Args); });
      // A warm extern-memo hit on the same pure call, keyed the way the
      // solver keys it.
      plan::ExternMemo Memo;
      double NsMemo = nsPerCall(K.Iters, [&] {
        return Memo.call(0, Args, [&] { return C.vm()->call(*Ix, Args); });
      });

      double VmSpeedup = NsInterp / std::max(NsVm, 1e-9);
      double MemoSpeedup = NsInterp / std::max(NsMemo, 1e-9);
      std::printf("%-8s %5d %12.1f %12.1f %12.1f %9.1fx %9.1fx%s\n", K.Name,
                  OptLevel, NsInterp, NsVm, NsMemo, VmSpeedup, MemoSpeedup,
                  Ok ? "" : "  ENGINES DISAGREE");
      std::fflush(stdout);

      if (!JsonPath.empty()) {
        Json.begin();
        Json.str("bench", "vm_dispatch")
            .str("fn", K.Name)
            .str("dispatch", Dispatch)
            .integer("vm_opt_level", OptLevel)
            .integer("iters", K.Iters)
            .num("ns_interp", NsInterp)
            .num("ns_vm", NsVm)
            .num("ns_memo_hit", NsMemo)
            .num("speedup_vm", VmSpeedup)
            .num("speedup_memo", MemoSpeedup)
            .integer("vm_inlined_calls",
                     static_cast<long long>(Pipe.InlinedCalls))
            .integer("vm_superword_hits",
                     static_cast<long long>(Pipe.SuperwordHits))
            .integer("vm_passes_removed_insns",
                     static_cast<long long>(Pipe.RemovedInsns))
            .boolean("ok", Ok);
        Json.end();
      }
    }
    std::printf("  [opt %d: %llu calls inlined, %llu superwords fused, "
                "%llu instructions removed]\n",
                OptLevel,
                static_cast<unsigned long long>(Pipe.InlinedCalls),
                static_cast<unsigned long long>(Pipe.SuperwordHits),
                static_cast<unsigned long long>(Pipe.RemovedInsns));
  }
  std::printf("\n");

  if (!JsonPath.empty() && !Json.write(JsonPath)) {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  if (Sink == 0x6b63696c73ull) // keep the sink observable
    std::printf("%llu\n", static_cast<unsigned long long>(Sink));
  return AllOk ? 0 : 1;
}
