//===- examples/dataflow_parity.cpp - Figure 2 end to end ------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 2: a subset-based, field-sensitive points-to analysis
// combined with a parity dataflow analysis, used by a division-by-zero
// client. The combination is the paper's point — the IntVar lattice flows
// through the heap (IntField) using points-to facts, which pure Datalog
// cannot express.
//
// Scenario analyzed (pseudo-Java):
//   x = 3; y = 5;            // odd constants
//   s = x + y;               // even => may be zero
//   o = new Obj; o.g = s;    // store even value into the heap
//   t = o.g;                 // load it back
//   q1 = a / t;              // (!) possible division by zero
//   q2 = a / x;              // safe: x is odd
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"
#include "lang/Compiler.h"

#include <cstdio>

using namespace flix;

static const char *ProgramSource = R"flix(
// ----- the parity lattice (Figure 2, lines 5-29) -----
enum Parity { case Top, case Even, case Odd, case Bot }

def leq(e1: Parity, e2: Parity): Bool = match (e1, e2) with {
  case (Parity.Bot, _) => true
  case (Parity.Even, Parity.Even) => true
  case (Parity.Odd, Parity.Odd) => true
  case (_, Parity.Top) => true
  case _ => false
}
def lub(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Bot, x) => x
  case (x, Parity.Bot) => x
  case (Parity.Even, Parity.Even) => Parity.Even
  case (Parity.Odd, Parity.Odd) => Parity.Odd
  case _ => Parity.Top
}
def glb(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Top, x) => x
  case (x, Parity.Top) => x
  case (Parity.Even, Parity.Even) => Parity.Even
  case (Parity.Odd, Parity.Odd) => Parity.Odd
  case _ => Parity.Bot
}
let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);

// ----- monotone filter and transfer functions (lines 31-33) -----
def isMaybeZero(e: Parity): Bool = match e with {
  case Parity.Even => true
  case Parity.Top => true
  case _ => false
}
def sum(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Bot, _) => Parity.Bot
  case (_, Parity.Bot) => Parity.Bot
  case (Parity.Top, _) => Parity.Top
  case (_, Parity.Top) => Parity.Top
  case (x, y) => if (x == y) Parity.Even else Parity.Odd
}

// ----- relations (lines 35-38) -----
rel New(v: Str, h: Str);
rel Assign(to: Str, from: Str);
rel Load(var: Str, base: Str, field: Str);
rel Store(base: Str, field: Str, from: Str);
rel AddExp(r: Str, v1: Str, v2: Str);
rel DivExp(r: Str, v1: Str, v2: Str);
rel VarPointsTo(var: Str, obj: Str);
rel HeapPointsTo(h1: Str, f: Str, h2: Str);
rel ArithmeticError(r: Str);

// ----- lattices (lines 40-43) -----
lat IntVar(var: Str, Parity<>);
lat IntField(obj: Str, field: Str, Parity<>);

// ----- VarPointsTo and HeapPointsTo rules (Figure 1) -----
VarPointsTo(v, h) :- New(v, h).
VarPointsTo(v, h) :- Assign(v, v2), VarPointsTo(v2, h).
VarPointsTo(v, h2) :- Load(v, v2, f), VarPointsTo(v2, h1),
                      HeapPointsTo(h1, f, h2).
HeapPointsTo(h1, f, h2) :- Store(v1, f, v2), VarPointsTo(v1, h1),
                           VarPointsTo(v2, h2).

// ----- dataflow rules (lines 49-56) -----
IntVar(v, i) :- Assign(v, v2), IntVar(v2, i).
IntVar(v, i) :- Load(v, v2, f), VarPointsTo(v2, h), IntField(h, f, i).
IntField(h, f, i) :- Store(v1, f, v2), VarPointsTo(v1, h), IntVar(v2, i).

// ----- abstract addition (lines 58-61) -----
IntVar(r, sum(i1, i2)) :- AddExp(r, v1, v2), IntVar(v1, i1), IntVar(v2, i2).

// ----- division-by-zero client (lines 63-66) -----
ArithmeticError(r) :- DivExp(r, v1, v2), IntVar(v2, i2), isMaybeZero(i2).

// ----- the scenario -----
IntVar("x", Parity.Odd).
IntVar("y", Parity.Odd).
AddExp("s", "x", "y").
New("o", "Obj").
Store("o", "g", "s").
Load("t", "o", "g").
DivExp("q1", "a", "t").
DivExp("q2", "a", "x").
)flix";

int main() {
  ValueFactory F;
  FlixCompiler C(F);
  if (!C.compile(ProgramSource, "dataflow_parity.flix")) {
    std::printf("%s", C.diagnostics().c_str());
    return 1;
  }
  Solver S(C.program());
  SolveStats St = S.solve();
  if (!St.ok()) {
    std::printf("solver error: %s\n", St.Error.c_str());
    return 1;
  }

  std::printf("abstract values:\n");
  for (const auto &Row : S.tuples(*C.predicate("IntVar")))
    std::printf("  IntVar(%-3s) = %s\n",
                F.strings().text(Row[0].asStr()).c_str(),
                F.toString(Row[1]).c_str());
  for (const auto &Row : S.tuples(*C.predicate("IntField")))
    std::printf("  IntField(%s.%s) = %s\n",
                F.strings().text(Row[0].asStr()).c_str(),
                F.strings().text(Row[1].asStr()).c_str(),
                F.toString(Row[2]).c_str());

  std::printf("division-by-zero warnings:\n");
  size_t Count = 0;
  for (const auto &Row : S.tuples(*C.predicate("ArithmeticError"))) {
    std::printf("  (!) possible division by zero at %s\n",
                F.strings().text(Row[0].asStr()).c_str());
    ++Count;
  }
  // Exactly one: q1 divides by the even value t; q2 divides by odd x.
  return Count == 1 ? 0 : 1;
}
