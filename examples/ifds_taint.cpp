//===- examples/ifds_taint.cpp - IFDS and IDE walkthrough ------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// An interprocedural taint analysis as an IFDS instance (Figure 5) and
// the same program as an IDE linear-constant-propagation instance
// (Figures 6-7), demonstrating that IDE computes the same reachable edges
// as IFDS plus a value per edge (§4.3).
//
// The analyzed program:
//
//   main:  n0: x = source()        (x tainted / x = 7)
//          n1: y = f(x)            (call)
//          n2: (return site)
//          n3: sink(y)             (report if y tainted / print value)
//   f(a):  n4: (start)
//          n5: b = a * 2 + 1
//          n6: return b
//
//===----------------------------------------------------------------------===//

#include "analyses/Ide.h"
#include "analyses/Ifds.h"

#include <cstdio>

using namespace flix;

// Facts: 0 = Λ, 1 = x, 2 = y (main); 3 = a, 4 = b (f).
static const char *FactNames[] = {"Λ", "x", "y", "a", "b"};

static void structure(auto &P) {
  P.NumNodes = 7;
  P.NumProcs = 2;
  P.NumFacts = 5;
  P.CfgEdges = {{0, 1}, {1, 2}, {2, 3}, {4, 5}, {5, 6}};
  P.CallEdges = {{1, 1}};
  P.StartNodes = {0, 4};
  P.EndNodes = {3, 6};
}

int main() {
  // ---------------- IFDS: taint reachability ----------------
  IfdsProblem Taint;
  structure(Taint);
  Taint.Seeds = {{0, 0}};
  Taint.EshIntra = [](int N, int D, std::vector<int> &Out) {
    if (D == 0) {
      Out.push_back(0);
      if (N == 0)
        Out.push_back(1); // x = source()
      return;
    }
    if (N == 5 && D == 3)
      Out.push_back(4); // b = a * 2 + 1 taints b from a
    Out.push_back(D);
  };
  Taint.EshCallStart = [](int, int D, int, std::vector<int> &Out) {
    if (D == 0)
      Out.push_back(0);
    if (D == 1)
      Out.push_back(3); // parameter x -> a
  };
  Taint.EshEndReturn = [](int, int D, int, std::vector<int> &Out) {
    if (D == 0)
      Out.push_back(0);
    if (D == 4)
      Out.push_back(2); // return b -> y
  };

  IfdsResult Flix = runIfdsFlix(Taint);
  IfdsResult Imp = runIfdsImperative(Taint);
  if (!Flix.Ok) {
    std::printf("IFDS error: %s\n", Flix.Error.c_str());
    return 1;
  }
  std::printf("IFDS taint analysis (declarative, Figure 5):\n");
  for (const auto &[Node, Fact] : Flix.Result)
    if (Fact != 0)
      std::printf("  node n%d: %s is tainted\n", Node, FactNames[Fact]);
  std::printf("declarative and imperative solvers agree: %s\n",
              Flix.sameResult(Imp) ? "yes" : "NO (bug!)");
  bool SinkTainted = Flix.Result.count({3, 2}) != 0;
  std::printf("sink(y) at n3 receives tainted data: %s\n\n",
              SinkTainted ? "yes (report!)" : "no");

  // ---------------- IDE: linear constant propagation ----------------
  IdeProblem Cp;
  structure(Cp);
  Cp.MainProc = 0;
  Cp.MainFacts = {0};
  Cp.Seeds = {{0, 0, IdeProblem::Seed::Kind::Top, 0}};
  Cp.EshIntra = [](int N, int D, const TransformerLattice &T,
                   IdeProblem::Out &Out) {
    if (D == 0) {
      Out.push_back({0, T.identity()});
      if (N == 0)
        Out.push_back({1, T.nonBot(0, 7, T.constants().bot())}); // x := 7
      return;
    }
    if (N == 5 && D == 3)
      Out.push_back({4, T.nonBot(2, 1, T.constants().bot())}); // b := 2a+1
    Out.push_back({D, T.identity()});
  };
  Cp.EshCallStart = [](int, int D, int, const TransformerLattice &T,
                       IdeProblem::Out &Out) {
    if (D == 0)
      Out.push_back({0, T.identity()});
    if (D == 1)
      Out.push_back({3, T.identity()});
  };
  Cp.EshEndReturn = [](int, int D, int, const TransformerLattice &T,
                       IdeProblem::Out &Out) {
    if (D == 0)
      Out.push_back({0, T.identity()});
    if (D == 4)
      Out.push_back({2, T.identity()});
  };

  IdeResult Ide = runIdeFlix(Cp);
  if (!Ide.Ok) {
    std::printf("IDE error: %s\n", Ide.Error.c_str());
    return 1;
  }
  std::printf("IDE linear constant propagation (Figures 6-7):\n");
  for (const auto &[Key, Val] : Ide.Values)
    if (Key.second != 0)
      std::printf("  node n%d: %s = %s\n", Key.first,
                  FactNames[Key.second], Val.c_str());

  // IDE must reach exactly the IFDS edges (§4.3).
  bool SameEdges = Ide.Reachable == Flix.Result;
  std::printf("IDE reachable edges == IFDS result: %s\n",
              SameEdges ? "yes" : "NO (bug!)");
  // y = 2*7+1 = 15 at the sink.
  bool YIs15 = Ide.Values.count({3, 2}) && Ide.Values[{3, 2}] == "15";
  std::printf("value of y at sink: %s (expected 15)\n",
              Ide.Values.count({3, 2}) ? Ide.Values[{3, 2}].c_str() : "?");
  return (SinkTainted && SameEdges && YIs15 && Flix.sameResult(Imp)) ? 0
                                                                     : 1;
}
