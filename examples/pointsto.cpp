//===- examples/pointsto.cpp - §2.1 points-to walkthrough ------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// The paper's motivating example (§2.1): the five-line Java fragment
//
//   ClassA o1 = new ClassA()   // object A
//   ClassB o2 = new ClassB()   // object B
//   ClassB o3 = o2;
//   o2.f = o1;
//   Object r = o3.f;           // Q: what is r?
//
// analyzed with the Figure 1 Datalog rules. Answer: r may point to A.
//
//===----------------------------------------------------------------------===//

#include "analyses/PointsTo.h"

#include <cstdio>

using namespace flix;

int main() {
  PointsToInput In;
  In.News = {{"o1", "A"}, {"o2", "B"}};
  In.Assigns = {{"o3", "o2"}};
  In.Stores = {{"o2", "f", "o1"}};
  In.Loads = {{"r", "o3", "f"}};

  PointsToResult R = runPointsTo(In);
  if (!R.Stats.ok()) {
    std::printf("error: %s\n", R.Stats.Error.c_str());
    return 1;
  }

  std::printf("VarPointsTo (%zu tuples):\n", R.VarPointsTo.size());
  for (const auto &[Var, Obj] : R.VarPointsTo)
    std::printf("  %-4s -> %s\n", Var.c_str(), Obj.c_str());

  std::printf("HeapPointsTo (%zu tuples):\n", R.HeapPointsTo.size());
  for (const auto &T : R.HeapPointsTo)
    std::printf("  %s.%s -> %s\n", T[0].c_str(), T[1].c_str(),
                T[2].c_str());

  std::printf("\nQ: what can r point to?  A: %s\n",
              R.varPointsTo("r", "A") ? "object A (as the paper derives)"
                                      : "nothing (unexpected!)");
  return R.varPointsTo("r", "A") ? 0 : 1;
}
