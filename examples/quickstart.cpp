//===- examples/quickstart.cpp - flix-cpp in five minutes ------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// Quickstart: both ways to use the library.
//
//  1. Compile FLIX source (the paper's language) and solve it.
//  2. Build the same fixpoint program through the C++ API.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"
#include "lang/Compiler.h"
#include "runtime/Lattices.h"

#include <cstdio>

using namespace flix;

/// Way 1: FLIX source. A tiny reachability analysis with a lattice: each
/// node carries the parity of the number of steps from the source.
static void fromSource() {
  std::printf("== from FLIX source ==\n");

  const char *Source = R"flix(
enum Parity { case Top, case Even, case Odd, case Bot }

def leq(e1: Parity, e2: Parity): Bool = match (e1, e2) with {
  case (Parity.Bot, _) => true
  case (Parity.Even, Parity.Even) => true
  case (Parity.Odd, Parity.Odd) => true
  case (_, Parity.Top) => true
  case _ => false
}
def lub(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Bot, x) => x
  case (x, Parity.Bot) => x
  case (Parity.Even, Parity.Even) => Parity.Even
  case (Parity.Odd, Parity.Odd) => Parity.Odd
  case _ => Parity.Top
}
def glb(e1: Parity, e2: Parity): Parity = match (e1, e2) with {
  case (Parity.Top, x) => x
  case (x, Parity.Top) => x
  case (Parity.Even, Parity.Even) => Parity.Even
  case (Parity.Odd, Parity.Odd) => Parity.Odd
  case _ => Parity.Bot
}
let Parity<> = (Parity.Bot, Parity.Top, leq, lub, glb);

def flip(p: Parity): Parity = match p with {
  case Parity.Odd => Parity.Even
  case Parity.Even => Parity.Odd
  case x => x
}

rel Edge(x: Str, y: Str);
lat Steps(x: Str, Parity<>);

Edge("a", "b"). Edge("b", "c"). Edge("c", "d"). Edge("b", "d").

Steps("a", Parity.Even).
Steps(y, flip(p)) :- Edge(x, y), Steps(x, p).
)flix";

  ValueFactory F;
  FlixCompiler C(F);
  if (!C.compile(Source, "quickstart.flix")) {
    std::printf("%s", C.diagnostics().c_str());
    return;
  }
  Solver S(C.program());
  SolveStats St = S.solve();
  std::printf("solved in %.3f ms (%llu facts derived)\n", St.Seconds * 1e3,
              static_cast<unsigned long long>(St.FactsDerived));

  PredId Steps = *C.predicate("Steps");
  for (const auto &Row : S.tuples(Steps))
    std::printf("  Steps(%s) = %s\n",
                F.strings().text(Row[0].asStr()).c_str(),
                F.toString(Row[1]).c_str());
}

/// Way 2: the C++ fixpoint API. All-sources shortest hops on the same
/// graph, over the MinCost lattice of §4.4.
static void fromApi() {
  std::printf("== from the C++ API ==\n");

  ValueFactory F;
  MinCostLattice L(F);
  Program P(F);

  PredId Edge = P.relation("Edge", 2);
  PredId Dist = P.lattice("Dist", 2, &L);
  FnId Inc = P.function("inc", 1, FnRole::Transfer,
                        [&L](std::span<const Value> A) {
                          return L.addCost(A[0], 1);
                        });

  // Dist(y, d + 1) :- Dist(x, d), Edge(x, y).
  RuleBuilder()
      .headFn(Dist, {"y"}, Inc, {"d"})
      .atom(Dist, {"x", "d"})
      .atom(Edge, {"x", "y"})
      .addTo(P);

  auto Str = [&](const char *T) { return F.string(T); };
  P.addFact(Edge, {Str("a"), Str("b")});
  P.addFact(Edge, {Str("b"), Str("c")});
  P.addFact(Edge, {Str("c"), Str("d")});
  P.addFact(Edge, {Str("b"), Str("d")});
  P.addLatFact(Dist, {Str("a")}, L.cost(0));

  Solver S(P);
  if (!S.solve().ok())
    return;
  for (const auto &Row : S.tuples(Dist))
    std::printf("  Dist(%s) = %s\n",
                F.strings().text(Row[0].asStr()).c_str(),
                F.toString(Row[1]).c_str());
}

int main() {
  fromSource();
  fromApi();
  return 0;
}
