//===- examples/shortest_paths.cpp - §4.4 beyond static analysis -----------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// §4.4: FLIX is applicable to fixed-point problems beyond static
// analysis. Single-source shortest paths over the lattice
// (N, ∞, 0, ≥, min, max) with the one rule
//
//   Dist(y, d + c) :- Dist(x, d), Edge(x, y, c).
//
// validated against Dijkstra on a random graph.
//
//===----------------------------------------------------------------------===//

#include "analyses/ShortestPaths.h"
#include "workload/GraphWorkload.h"

#include <cstdio>

using namespace flix;

int main() {
  WeightedGraph G = generateGraph(/*Seed=*/2016, /*NumNodes=*/500,
                                  /*AvgDegree=*/3.0, /*MaxWeight=*/50);
  std::printf("random graph: %d nodes, %zu edges\n", G.NumNodes,
              G.Edges.size());

  SsspResult Flix = runShortestPathsFlix(G, /*Source=*/0);
  SsspResult Dij = runDijkstra(G, 0);
  SsspResult BF = runBellmanFord(G, 0);
  if (!Flix.Ok) {
    std::printf("solver failed\n");
    return 1;
  }

  std::printf("%-14s %10s\n", "method", "time (ms)");
  std::printf("%-14s %10.3f\n", "FLIX rule", Flix.Seconds * 1e3);
  std::printf("%-14s %10.3f\n", "Dijkstra", Dij.Seconds * 1e3);
  std::printf("%-14s %10.3f\n", "Bellman-Ford", BF.Seconds * 1e3);

  bool Match = Flix.sameDistances(Dij) && Dij.sameDistances(BF);
  std::printf("all three agree on all %d distances: %s\n", G.NumNodes,
              Match ? "yes" : "NO (bug!)");
  std::printf("sample: dist(0 -> %d) = %lld\n", G.NumNodes - 1,
              static_cast<long long>(Flix.Dist[G.NumNodes - 1]));
  return Match ? 0 : 1;
}
