//===- examples/strong_update.cpp - Figure 4 walkthrough -------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// The Strong Update analysis (§4.1, Figure 4) on a small C-like program,
// showing the precision a flow-sensitive lattice analysis gains over the
// weak-update baseline:
//
//   int a, b, c; int *p = &a; int *q = &b; int *r = &c;
//   l0: *p = q;       // a points to b
//   l1: *p = r;       // strong update: a now points to c only
//   l2: x = *p;       // x = {c} with strong updates, {b, c} without
//
// All four implementations (FLIX C++ API, FLIX source, Datalog powerset
// embedding, hand-coded imperative) are run and compared.
//
//===----------------------------------------------------------------------===//

#include "analyses/StrongUpdate.h"

#include <cstdio>

using namespace flix;

static void printPt(const char *Name, const StrongUpdateResult &R) {
  static const char *Vars[] = {"p", "q", "r", "x"};
  static const char *Objs[] = {"a", "b", "c"};
  std::printf("%-22s x -> {", Name);
  bool First = true;
  for (int Obj : R.Pt[3]) {
    std::printf("%s%s", First ? "" : ", ", Objs[Obj]);
    First = false;
  }
  std::printf("}   (%.2f ms)\n", R.Seconds * 1e3);
  (void)Vars;
}

int main() {
  PointerProgram P;
  P.NumVars = 4;   // p, q, r, x
  P.NumObjs = 3;   // a, b, c
  P.NumLabels = 3; // l0, l1, l2
  P.AddrOf = {{0, 0}, {1, 1}, {2, 2}};
  P.Store = {{0, 0, 1}, {1, 0, 2}};
  P.Load = {{2, 3, 0}};
  P.Cfg = {{0, 1}, {1, 2}};
  P.Kill = {{0, 0}, {1, 0}}; // p is unaliased: stores kill a's old value

  std::printf("with strong updates (Kill facts):\n");
  StrongUpdateResult A = runStrongUpdateFlix(P);
  StrongUpdateResult B = runStrongUpdateFlixSource(P);
  StrongUpdateResult C = runStrongUpdateDatalog(P);
  StrongUpdateResult D = runStrongUpdateImperative(P);
  printPt("  flix (C++ API)", A);
  printPt("  flix (source)", B);
  printPt("  datalog embedding", C);
  printPt("  imperative C++", D);
  bool Agree = A.samePointsTo(B) && A.samePointsTo(C) && A.samePointsTo(D);
  std::printf("  all agree: %s\n\n", Agree ? "yes" : "NO (bug!)");

  P.Kill.clear();
  std::printf("without strong updates (weak stores only):\n");
  StrongUpdateResult W = runStrongUpdateFlix(P);
  printPt("  flix (C++ API)", W);

  bool Precise = A.Pt[3] == std::set<int>{2} &&
                 W.Pt[3] == std::set<int>{1, 2};
  std::printf("\nstrong updates removed the stale target: %s\n",
              Precise ? "yes" : "NO (bug!)");
  return (Agree && Precise) ? 0 : 1;
}
