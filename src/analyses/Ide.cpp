//===- analyses/Ide.cpp - IDE framework (§4.3, Figure 6) -------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "analyses/Ide.h"

#include "parallel/Dispatch.h"

using namespace flix;

IdeResult flix::runIdeFlix(const IdeProblem &In, SolverOptions Opts) {
  ValueFactory F;
  ConstantLattice CL(F);
  TransformerLattice TL(F, CL);
  Program P(F);

  PredId Cfg = P.relation("CFG", 2);
  PredId CallGraph = P.relation("CallGraph", 2);
  PredId StartNode = P.relation("StartNode", 2);
  PredId EndNode = P.relation("EndNode", 2);
  PredId InProc = P.relation("InProc", 2);
  PredId JumpFn = P.lattice("JumpFn", 4, &TL);
  PredId SummaryFn = P.lattice("SummaryFn", 4, &TL);
  PredId EshCS = P.lattice("EshCallStart", 5, &TL);
  PredId Result = P.lattice("Result", 3, &CL);
  PredId ResultProc = P.lattice("ResultProc", 3, &CL);

  // Micro-function combinators (Figure 7).
  FnId Comp = P.function("comp", 2, FnRole::Transfer,
                         [&TL](std::span<const Value> A) {
                           return TL.comp(A[0], A[1]);
                         });
  FnId Comp3 = P.function("comp3", 3, FnRole::Transfer,
                          [&TL](std::span<const Value> A) {
                            return TL.comp(TL.comp(A[0], A[1]), A[2]);
                          });
  FnId Identity = P.function("identity", 0, FnRole::Transfer,
                             [&TL](std::span<const Value>) {
                               return TL.identity();
                             });
  FnId Apply = P.function("apply", 2, FnRole::Transfer,
                          [&TL](std::span<const Value> A) {
                            return TL.apply(A[0], A[1]);
                          });

  // Set-valued flow functions returning (fact, micro-function) pairs.
  auto makeEsh = [&](const char *Name, auto Callback, unsigned Arity) {
    return P.function(Name, Arity, FnRole::Binder, std::move(Callback));
  };
  FnId EshIntraFn = makeEsh(
      "eshIntra",
      [&](std::span<const Value> A) {
        IdeProblem::Out Tmp;
        In.EshIntra(static_cast<int>(A[0].asInt()),
                    static_cast<int>(A[1].asInt()), TL, Tmp);
        std::vector<Value> Out;
        for (auto &[D, Fn] : Tmp)
          Out.push_back(F.tuple({F.integer(D), Fn}));
        return F.set(std::move(Out));
      },
      2);
  FnId EshCallStartFn = makeEsh(
      "eshCallStart",
      [&](std::span<const Value> A) {
        IdeProblem::Out Tmp;
        In.EshCallStart(static_cast<int>(A[0].asInt()),
                        static_cast<int>(A[1].asInt()),
                        static_cast<int>(A[2].asInt()), TL, Tmp);
        std::vector<Value> Out;
        for (auto &[D, Fn] : Tmp)
          Out.push_back(F.tuple({F.integer(D), Fn}));
        return F.set(std::move(Out));
      },
      3);
  FnId EshEndReturnFn = makeEsh(
      "eshEndReturn",
      [&](std::span<const Value> A) {
        IdeProblem::Out Tmp;
        In.EshEndReturn(static_cast<int>(A[0].asInt()),
                        static_cast<int>(A[1].asInt()),
                        static_cast<int>(A[2].asInt()), TL, Tmp);
        std::vector<Value> Out;
        for (auto &[D, Fn] : Tmp)
          Out.push_back(F.tuple({F.integer(D), Fn}));
        return F.set(std::move(Out));
      },
      3);

  // JumpFn(d1, m, d3, comp(long, short)) :- CFG(n, m),
  //     JumpFn(d1, n, d2, long), (d3, short) <- eshIntra(n, d2).
  RuleBuilder()
      .headFn(JumpFn, {"d1", "m", "d3"}, Comp, {"long", "short"})
      .atom(Cfg, {"n", "m"})
      .atom(JumpFn, {"d1", "n", "d2", "long"})
      .bind({"d3", "short"}, EshIntraFn, {"n", "d2"})
      .addTo(P);
  // JumpFn(d1, m, d3, comp(caller, summary)) :- CFG(n, m),
  //     JumpFn(d1, n, d2, caller), SummaryFn(n, d2, d3, summary).
  RuleBuilder()
      .headFn(JumpFn, {"d1", "m", "d3"}, Comp, {"caller", "summary"})
      .atom(Cfg, {"n", "m"})
      .atom(JumpFn, {"d1", "n", "d2", "caller"})
      .atom(SummaryFn, {"n", "d2", "d3", "summary"})
      .addTo(P);
  // JumpFn(d3, start, d3, identity()) :- JumpFn(d1, call, d2, _),
  //     CallGraph(call, target), EshCallStart(call, d2, target, d3, _),
  //     StartNode(target, start).
  RuleBuilder()
      .headFn(JumpFn, {"d3", "start", "d3"}, Identity, {})
      .atom(JumpFn, {"d1", "call", "d2", "_"})
      .atom(CallGraph, {"call", "target"})
      .atom(EshCS, {"call", "d2", "target", "d3", "_"})
      .atom(StartNode, {"target", "start"})
      .addTo(P);
  // SummaryFn(call, d4, d5, comp(comp(cs, se), er)) :-
  //     CallGraph(call, target), StartNode(target, start),
  //     EndNode(target, end), EshCallStart(call, d4, target, d1, cs),
  //     JumpFn(d1, end, d2, se), (d5, er) <- eshEndReturn(target, d2, call).
  RuleBuilder()
      .headFn(SummaryFn, {"call", "d4", "d5"}, Comp3, {"cs", "se", "er"})
      .atom(CallGraph, {"call", "target"})
      .atom(StartNode, {"target", "start"})
      .atom(EndNode, {"target", "end"})
      .atom(EshCS, {"call", "d4", "target", "d1", "cs"})
      .atom(JumpFn, {"d1", "end", "d2", "se"})
      .bind({"d5", "er"}, EshEndReturnFn, {"target", "d2", "call"})
      .addTo(P);
  // EshCallStart(call, d, target, d2, cs) :- JumpFn(_, call, d, _),
  //     CallGraph(call, target), (d2, cs) <- eshCallStart(call, d, target).
  RuleBuilder()
      .head(EshCS, {"call", "d", "target", "d2", "cs"})
      .atom(JumpFn, {"_", "call", "d", "_"})
      .atom(CallGraph, {"call", "target"})
      .bind({"d2", "cs"}, EshCallStartFn, {"call", "d", "target"})
      .addTo(P);
  // InProc(p, start) :- StartNode(p, start).
  RuleBuilder()
      .head(InProc, {"p", "start"})
      .atom(StartNode, {"p", "start"})
      .addTo(P);
  // InProc(p, m) :- InProc(p, n), CFG(n, m).
  RuleBuilder()
      .head(InProc, {"p", "m"})
      .atom(InProc, {"p", "n"})
      .atom(Cfg, {"n", "m"})
      .addTo(P);
  // Result(n, d, apply(fn, vp)) :- ResultProc(proc, dp, vp),
  //     InProc(proc, n), JumpFn(dp, n, d, fn).
  RuleBuilder()
      .headFn(Result, {"n", "d"}, Apply, {"fn", "vp"})
      .atom(ResultProc, {"proc", "dp", "vp"})
      .atom(InProc, {"proc", "n"})
      .atom(JumpFn, {"dp", "n", "d", "fn"})
      .addTo(P);
  // ResultProc(proc, dp, apply(cs, v)) :- Result(call, d, v),
  //     EshCallStart(call, d, proc, dp, cs).
  RuleBuilder()
      .headFn(ResultProc, {"proc", "dp"}, Apply, {"cs", "v"})
      .atom(Result, {"call", "d", "v"})
      .atom(EshCS, {"call", "d", "proc", "dp", "cs"})
      .addTo(P);

  auto N = [&](int I) { return F.integer(I); };
  for (auto [A, B] : In.CfgEdges)
    P.addFact(Cfg, {N(A), N(B)});
  for (auto [A, B] : In.CallEdges)
    P.addFact(CallGraph, {N(A), N(B)});
  for (int Proc = 0; Proc < In.NumProcs; ++Proc) {
    P.addFact(StartNode, {N(Proc), N(In.StartNodes[Proc])});
    P.addFact(EndNode, {N(Proc), N(In.EndNodes[Proc])});
  }
  for (int D : In.MainFacts)
    P.addLatFact(JumpFn, {N(D), N(In.StartNodes[In.MainProc]), N(D)},
                 TL.identity());
  for (const auto &Seed : In.Seeds) {
    Value V = CL.top();
    if (Seed.K == IdeProblem::Seed::Kind::Bot)
      V = CL.bot();
    else if (Seed.K == IdeProblem::Seed::Kind::Cst)
      V = CL.constant(Seed.Cst);
    P.addLatFact(ResultProc, {N(Seed.Proc), N(Seed.Fact)}, V);
  }

  return solveWith(P, Opts, [&](const auto &S, const SolveStats &St) {
    IdeResult R;
    R.Seconds = St.Seconds;
    R.Stats = St;
    if (!St.ok()) {
      R.Error = St.Error.empty() ? "solver did not reach a fixpoint"
                                 : St.Error;
      return R;
    }
    R.Ok = true;
    R.NumJumpFns = S.table(JumpFn).size();
    R.NumSummaries = S.table(SummaryFn).size();
    for (const auto &Row : S.tuples(JumpFn)) {
      if (Row[3] == TL.bot())
        continue;
      R.Reachable.insert({static_cast<int>(Row[1].asInt()),
                          static_cast<int>(Row[2].asInt())});
    }
    for (const auto &Row : S.tuples(Result)) {
      Value V = Row[2];
      std::string Rendered;
      if (V == CL.bot())
        Rendered = "Bot";
      else if (V == CL.top())
        Rendered = "Top";
      else
        Rendered = std::to_string(CL.constantValue(V));
      R.Values[{static_cast<int>(Row[0].asInt()),
                static_cast<int>(Row[1].asInt())}] = Rendered;
    }
    return R;
  });
}
