//===- analyses/Ide.h - IDE framework (§4.3, Figure 6) --------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IDE framework of Sagiv, Reps & Horwitz (TCS'96), in the
/// declarative formulation of Figure 6. IDE computes the same edges as
/// IFDS, but each edge carries a micro-function from the Transformer
/// lattice (Figure 7); the environment values are elements of the
/// Constant lattice, as in the linear-constant-propagation instance both
/// papers use.
///
/// The structural inputs are shared with IfdsProblem; the flow functions
/// additionally return the micro-function decorating each exploded edge.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_ANALYSES_IDE_H
#define FLIX_ANALYSES_IDE_H

#include "analyses/Ifds.h"
#include "runtime/Lattices.h"

#include <map>

namespace flix {

/// An IDE problem: the supergraph plus micro-function-decorated flow
/// functions. Micro functions are TransformerLattice values built with
/// the lattice passed to the flow callbacks.
struct IdeProblem {
  int NumNodes = 0;
  int NumProcs = 0;
  int NumFacts = 0;

  std::vector<std::pair<int, int>> CfgEdges;
  std::vector<std::pair<int, int>> CallEdges;
  std::vector<int> StartNodes;
  std::vector<int> EndNodes;

  /// Initial environment entries: ResultProc(proc, fact, value) seeds.
  /// Values are specified abstractly (the solver owns the ValueFactory).
  struct Seed {
    int Proc;
    int Fact;
    enum class Kind { Bot, Cst, Top } K = Kind::Top;
    int64_t Cst = 0;
  };
  std::vector<Seed> Seeds;
  /// The procedure whose start node receives the initial JumpFn identity
  /// edges (typically main).
  int MainProc = 0;
  std::vector<int> MainFacts; ///< facts seeded at main's start

  /// Flow functions: append (fact, micro-function) pairs.
  using Out = std::vector<std::pair<int, Value>>;
  std::function<void(int N, int D, const TransformerLattice &T, Out &)>
      EshIntra;
  std::function<void(int Call, int D, int Target,
                     const TransformerLattice &T, Out &)>
      EshCallStart;
  std::function<void(int Target, int D, int Call,
                     const TransformerLattice &T, Out &)>
      EshEndReturn;
};

struct IdeResult {
  bool Ok = false;
  std::string Error;
  /// Result(n, d) -> Constant-lattice value, rendered as strings
  /// ("Bot"/"Top"/decimal) so results are factory independent.
  std::map<std::pair<int, int>, std::string> Values;
  size_t NumJumpFns = 0;
  size_t NumSummaries = 0;
  double Seconds = 0;
  /// Full engine counters of the declarative run — benchmarks report
  /// RuleFirings, PlanSteps, MemoHits/Misses etc.
  SolveStats Stats;

  /// Reachable (node, fact) pairs — JumpFn edges with non-⊥ functions,
  /// for comparison against an IFDS run (§4.3: IDE computes the same
  /// edges as IFDS).
  std::set<std::pair<int, int>> Reachable;
};

/// Runs the declarative Figure 6 program.
IdeResult runIdeFlix(const IdeProblem &P,
                     SolverOptions Opts = SolverOptions());

} // namespace flix

#endif // FLIX_ANALYSES_IDE_H
