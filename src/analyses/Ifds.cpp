//===- analyses/Ifds.cpp - IFDS framework (§4.2, Figure 5) -----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "analyses/Ifds.h"

#include "parallel/Dispatch.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace flix;

//===----------------------------------------------------------------------===//
// Declarative solver (Figure 5, verbatim)
//===----------------------------------------------------------------------===//

IfdsResult flix::runIfdsFlix(const IfdsProblem &In, SolverOptions Opts) {
  ValueFactory F;
  Program P(F);

  PredId Cfg = P.relation("CFG", 2);
  PredId CallGraph = P.relation("CallGraph", 2);
  PredId StartNode = P.relation("StartNode", 2);
  PredId EndNode = P.relation("EndNode", 2);
  PredId PathEdge = P.relation("PathEdge", 3);
  PredId SummaryEdge = P.relation("SummaryEdge", 3);
  PredId EshCallStart = P.relation("EshCallStart", 4);
  PredId Result = P.relation("Result", 2);

  // The three flow functions enter the program as set-valued binders —
  // "it is essential that the transfer functions be specified as
  // functions; they cannot be tabulated" (§4.2).
  FnId EshIntraFn = P.function(
      "eshIntra", 2, FnRole::Binder, [&](std::span<const Value> A) {
        std::vector<int> Tmp;
        In.EshIntra(static_cast<int>(A[0].asInt()),
                    static_cast<int>(A[1].asInt()), Tmp);
        std::vector<Value> Out;
        Out.reserve(Tmp.size());
        for (int D : Tmp)
          Out.push_back(F.integer(D));
        return F.set(std::move(Out));
      });
  FnId EshCallStartFn = P.function(
      "eshCallStart", 3, FnRole::Binder, [&](std::span<const Value> A) {
        std::vector<int> Tmp;
        In.EshCallStart(static_cast<int>(A[0].asInt()),
                        static_cast<int>(A[1].asInt()),
                        static_cast<int>(A[2].asInt()), Tmp);
        std::vector<Value> Out;
        Out.reserve(Tmp.size());
        for (int D : Tmp)
          Out.push_back(F.integer(D));
        return F.set(std::move(Out));
      });
  FnId EshEndReturnFn = P.function(
      "eshEndReturn", 3, FnRole::Binder, [&](std::span<const Value> A) {
        std::vector<int> Tmp;
        In.EshEndReturn(static_cast<int>(A[0].asInt()),
                        static_cast<int>(A[1].asInt()),
                        static_cast<int>(A[2].asInt()), Tmp);
        std::vector<Value> Out;
        Out.reserve(Tmp.size());
        for (int D : Tmp)
          Out.push_back(F.integer(D));
        return F.set(std::move(Out));
      });

  // PathEdge(d1, m, d3) :- CFG(n, m), PathEdge(d1, n, d2),
  //                        d3 <- eshIntra(n, d2).
  RuleBuilder()
      .head(PathEdge, {"d1", "m", "d3"})
      .atom(Cfg, {"n", "m"})
      .atom(PathEdge, {"d1", "n", "d2"})
      .bind({"d3"}, EshIntraFn, {"n", "d2"})
      .addTo(P);
  // PathEdge(d1, m, d3) :- CFG(n, m), PathEdge(d1, n, d2),
  //                        SummaryEdge(n, d2, d3).
  RuleBuilder()
      .head(PathEdge, {"d1", "m", "d3"})
      .atom(Cfg, {"n", "m"})
      .atom(PathEdge, {"d1", "n", "d2"})
      .atom(SummaryEdge, {"n", "d2", "d3"})
      .addTo(P);
  // PathEdge(d3, start, d3) :- PathEdge(d1, call, d2),
  //     CallGraph(call, target), EshCallStart(call, d2, target, d3),
  //     StartNode(target, start).
  RuleBuilder()
      .head(PathEdge, {"d3", "start", "d3"})
      .atom(PathEdge, {"d1", "call", "d2"})
      .atom(CallGraph, {"call", "target"})
      .atom(EshCallStart, {"call", "d2", "target", "d3"})
      .atom(StartNode, {"target", "start"})
      .addTo(P);
  // SummaryEdge(call, d4, d5) :- CallGraph(call, target),
  //     StartNode(target, start), EndNode(target, end),
  //     EshCallStart(call, d4, target, d1), PathEdge(d1, end, d2),
  //     d5 <- eshEndReturn(target, d2, call).
  RuleBuilder()
      .head(SummaryEdge, {"call", "d4", "d5"})
      .atom(CallGraph, {"call", "target"})
      .atom(StartNode, {"target", "start"})
      .atom(EndNode, {"target", "end"})
      .atom(EshCallStart, {"call", "d4", "target", "d1"})
      .atom(PathEdge, {"d1", "end", "d2"})
      .bind({"d5"}, EshEndReturnFn, {"target", "d2", "call"})
      .addTo(P);
  // EshCallStart(call, d, target, d2) :- PathEdge(_, call, d),
  //     CallGraph(call, target), d2 <- eshCallStart(call, d, target).
  RuleBuilder()
      .head(EshCallStart, {"call", "d", "target", "d2"})
      .atom(PathEdge, {"_", "call", "d"})
      .atom(CallGraph, {"call", "target"})
      .bind({"d2"}, EshCallStartFn, {"call", "d", "target"})
      .addTo(P);
  // Result(n, d2) :- PathEdge(_, n, d2).
  RuleBuilder()
      .head(Result, {"n", "d2"})
      .atom(PathEdge, {"_", "n", "d2"})
      .addTo(P);

  auto N = [&](int I) { return F.integer(I); };
  for (auto [A, B] : In.CfgEdges)
    P.addFact(Cfg, {N(A), N(B)});
  for (auto [A, B] : In.CallEdges)
    P.addFact(CallGraph, {N(A), N(B)});
  for (int Proc = 0; Proc < In.NumProcs; ++Proc) {
    P.addFact(StartNode, {N(Proc), N(In.StartNodes[Proc])});
    P.addFact(EndNode, {N(Proc), N(In.EndNodes[Proc])});
  }
  for (auto [Node, D] : In.Seeds)
    P.addFact(PathEdge, {N(D), N(Node), N(D)});

  return solveWith(P, Opts, [&](const auto &S, const SolveStats &St) {
    IfdsResult R;
    R.Seconds = St.Seconds;
    R.Stats = St;
    if (!St.ok()) {
      R.Error = St.Error.empty() ? "solver did not reach a fixpoint"
                                 : St.Error;
      return R;
    }
    R.Ok = true;
    R.NumPathEdges = S.table(PathEdge).size();
    R.NumSummaries = S.table(SummaryEdge).size();
    for (const auto &Row : S.tuples(Result))
      R.Result.insert({static_cast<int>(Row[0].asInt()),
                       static_cast<int>(Row[1].asInt())});
    return R;
  });
}

//===----------------------------------------------------------------------===//
// Imperative tabulation solver (the Table 2 baseline)
//===----------------------------------------------------------------------===//

namespace {

struct PairHash {
  size_t operator()(const std::pair<int, int> &P) const {
    return std::hash<int64_t>()((static_cast<int64_t>(P.first) << 32) ^
                                static_cast<uint32_t>(P.second));
  }
};

struct TripleHash {
  size_t operator()(const std::array<int, 3> &T) const {
    return std::hash<int64_t>()((static_cast<int64_t>(T[0]) << 40) ^
                                (static_cast<int64_t>(T[1]) << 20) ^
                                static_cast<uint32_t>(T[2]));
  }
};

} // namespace

IfdsResult flix::runIfdsImperative(const IfdsProblem &In) {
  auto Start = std::chrono::steady_clock::now();

  // Indexes over the supergraph.
  std::vector<std::vector<int>> Succs(In.NumNodes);
  for (auto [A, B] : In.CfgEdges)
    Succs[A].push_back(B);
  std::vector<std::vector<int>> CalleesOf(In.NumNodes);
  for (auto [Call, Target] : In.CallEdges)
    CalleesOf[Call].push_back(Target);
  std::vector<int> ProcOfEnd(In.NumNodes, -1);
  for (int Proc = 0; Proc < In.NumProcs; ++Proc)
    ProcOfEnd[In.EndNodes[Proc]] = Proc;

  // PathEdge set: (d1, n, d3). Worklist of the same triples.
  std::unordered_set<std::array<int, 3>, TripleHash> PathEdges;
  std::deque<std::array<int, 3>> Work;
  auto propagate = [&](int D1, int Node, int D3) {
    std::array<int, 3> E = {D1, Node, D3};
    if (PathEdges.insert(E).second)
      Work.push_back(E);
  };

  // SummaryEdge[(call, d4)] -> {d5}.
  std::unordered_map<std::pair<int, int>, std::vector<int>, PairHash>
      Summaries;
  // Tabulated eshCallStart and its inverse (the §4.2 discussion): for a
  // (call, target) pair, which call-site facts d4 map to callee-entry
  // fact d1.
  std::unordered_map<std::pair<int, int>,
                     std::unordered_map<int, std::vector<int>>, PairHash>
      CallFactsInverse;
  // Guard so each (call, d, target) is expanded once.
  std::unordered_set<std::array<int, 3>, TripleHash> CallSeen;
  // PathEdges seen at a call, keyed by (call, d2), for re-propagation
  // when a later summary appears.
  std::unordered_map<std::pair<int, int>, std::vector<int>, PairHash>
      IncomingAt;
  // Facts observed at procedure ends: EndFacts[proc][d1] -> {d2}.
  std::vector<std::unordered_map<int, std::vector<int>>> EndFacts(
      In.NumProcs);

  for (auto [Node, D] : In.Seeds)
    propagate(D, Node, D);

  std::vector<int> Tmp;

  // Installs summary (Call, D4 -> D5) and re-propagates through it.
  auto addSummary = [&](int Call, int D4, int D5) {
    std::vector<int> &Sum = Summaries[{Call, D4}];
    if (std::find(Sum.begin(), Sum.end(), D5) != Sum.end())
      return;
    Sum.push_back(D5);
    auto IncIt = IncomingAt.find({Call, D4});
    if (IncIt == IncomingAt.end())
      return;
    for (int D0 : IncIt->second)
      for (int M : Succs[Call])
        propagate(D0, M, D5);
  };

  while (!Work.empty()) {
    auto [D1, Node, D2] = Work.front();
    Work.pop_front();

    // Record for summary re-propagation at call sites.
    if (!CalleesOf[Node].empty())
      IncomingAt[{Node, D2}].push_back(D1);

    // Intraprocedural flow and already-known summaries, over CFG edges.
    for (int M : Succs[Node]) {
      Tmp.clear();
      In.EshIntra(Node, D2, Tmp);
      for (int D3 : Tmp)
        propagate(D1, M, D3);
      auto SIt = Summaries.find({Node, D2});
      if (SIt != Summaries.end())
        for (int D3 : SIt->second)
          propagate(D1, M, D3);
    }

    // Calls: enter the callee, remember the fact mapping, and connect to
    // any already-computed callee end facts.
    for (int Target : CalleesOf[Node]) {
      if (!CallSeen.insert({Node, D2, Target}).second)
        continue;
      Tmp.clear();
      In.EshCallStart(Node, D2, Target, Tmp);
      std::vector<int> Entry = Tmp;
      for (int D3 : Entry) {
        CallFactsInverse[{Node, Target}][D3].push_back(D2);
        propagate(D3, In.StartNodes[Target], D3);
        // The callee may already have end facts for D3 (computed while
        // serving another call site); connect them now.
        auto EFIt = EndFacts[Target].find(D3);
        if (EFIt == EndFacts[Target].end())
          continue;
        for (int DEnd : EFIt->second) {
          Tmp.clear();
          In.EshEndReturn(Target, DEnd, Node, Tmp);
          for (int D5 : Tmp)
            addSummary(Node, D2, D5);
        }
      }
    }

    // Procedure end: record the end fact and build summaries for every
    // call site already known to enter with D1.
    int Proc = ProcOfEnd[Node];
    if (Proc >= 0) {
      std::vector<int> &Known = EndFacts[Proc][D1];
      if (std::find(Known.begin(), Known.end(), D2) == Known.end()) {
        Known.push_back(D2);
        for (auto &[CallTarget, Inverse] : CallFactsInverse) {
          if (CallTarget.second != Proc)
            continue;
          auto InvIt = Inverse.find(D1);
          if (InvIt == Inverse.end())
            continue;
          int Call = CallTarget.first;
          Tmp.clear();
          In.EshEndReturn(Proc, D2, Call, Tmp);
          for (int D5 : Tmp)
            for (int D4 : InvIt->second)
              addSummary(Call, D4, D5);
        }
      }
    }
  }

  IfdsResult R;
  R.Ok = true;
  R.NumPathEdges = PathEdges.size();
  for (const auto &[Key, Ds] : Summaries)
    R.NumSummaries += Ds.size();
  for (const auto &E : PathEdges)
    R.Result.insert({E[1], E[2]});
  R.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  return R;
}
