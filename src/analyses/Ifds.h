//===- analyses/Ifds.h - IFDS framework (§4.2, Figure 5) ------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The IFDS framework of Reps, Horwitz & Sagiv (POPL'95) in the two forms
/// Table 2 compares:
///
///   * runIfdsFlix       — the declarative formulation of Figure 5: rules
///     over PathEdge / SummaryEdge / EshCallStart, with the analysis's
///     distributive flow functions supplied as native set-valued binder
///     functions (`d3 <- eshIntra(n, d2)`), exactly the paper's
///     JVM-interop arrangement (§4.5);
///   * runIfdsImperative — a hand-coded worklist tabulation solver (the
///     paper's baseline "Scala" column).
///
/// Both compute the same Result set: the reachable (node, fact) pairs.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_ANALYSES_IFDS_H
#define FLIX_ANALYSES_IFDS_H

#include "fixpoint/Solver.h"

#include <functional>
#include <set>
#include <vector>

namespace flix {

/// An IFDS problem instance: the exploded-supergraph structure plus the
/// three distributive flow functions. Nodes, procedures and flow facts
/// are dense integer ids; fact 0 is conventionally the Λ (zero) fact.
///
/// CFG edges must include the call-to-return-site edges: Figure 5's rules
/// move both intraprocedural flow (eshIntra) and summaries over CFG(n, m).
struct IfdsProblem {
  int NumNodes = 0;
  int NumProcs = 0;
  int NumFacts = 0;

  std::vector<std::pair<int, int>> CfgEdges;  ///< (n, m)
  std::vector<std::pair<int, int>> CallEdges; ///< (call node, target proc)
  std::vector<int> StartNodes;                ///< per procedure
  std::vector<int> EndNodes;                  ///< per procedure
  std::vector<std::pair<int, int>> Seeds;     ///< initial (node, fact)

  /// Flow functions append results to Out (may contain duplicates).
  std::function<void(int N, int D, std::vector<int> &Out)> EshIntra;
  std::function<void(int Call, int D, int Target, std::vector<int> &Out)>
      EshCallStart;
  std::function<void(int Target, int D, int Call, std::vector<int> &Out)>
      EshEndReturn;
};

struct IfdsResult {
  bool Ok = false;
  std::string Error;
  /// The reachable (node, fact) pairs — Figure 5's Result relation.
  std::set<std::pair<int, int>> Result;
  size_t NumPathEdges = 0;
  size_t NumSummaries = 0;
  double Seconds = 0;
  /// Full engine counters of the declarative run (default-constructed for
  /// the imperative solver) — benchmarks report SpawnedSubtasks etc.
  SolveStats Stats;

  bool sameResult(const IfdsResult &O) const { return Result == O.Result; }
};

/// The declarative Figure 5 solver on the fixpoint engine.
IfdsResult runIfdsFlix(const IfdsProblem &P,
                       SolverOptions Opts = SolverOptions());

/// The hand-coded tabulation solver.
IfdsResult runIfdsImperative(const IfdsProblem &P);

} // namespace flix

#endif // FLIX_ANALYSES_IFDS_H
