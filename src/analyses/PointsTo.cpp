//===- analyses/PointsTo.cpp - Andersen points-to (Figure 1) ---------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "analyses/PointsTo.h"

#include "parallel/Dispatch.h"

#include <array>

using namespace flix;

bool PointsToResult::varPointsTo(const std::string &Var,
                                 const std::string &Obj) const {
  for (const auto &[V, O] : VarPointsTo)
    if (V == Var && O == Obj)
      return true;
  return false;
}

PointsToPredicates flix::addPointsToRules(Program &P) {
  PointsToPredicates Ids;
  Ids.New = P.relation("New", 2);
  Ids.Assign = P.relation("Assign", 2);
  Ids.Load = P.relation("Load", 3);
  Ids.Store = P.relation("Store", 3);
  Ids.VarPointsTo = P.relation("VarPointsTo", 2);
  Ids.HeapPointsTo = P.relation("HeapPointsTo", 3);

  // VarPointsTo(v1, h1) :- New(v1, h1).
  RuleBuilder()
      .head(Ids.VarPointsTo, {"v1", "h1"})
      .atom(Ids.New, {"v1", "h1"})
      .addTo(P);
  // VarPointsTo(v1, h2) :- Assign(v1, v2), VarPointsTo(v2, h2).
  RuleBuilder()
      .head(Ids.VarPointsTo, {"v1", "h2"})
      .atom(Ids.Assign, {"v1", "v2"})
      .atom(Ids.VarPointsTo, {"v2", "h2"})
      .addTo(P);
  // VarPointsTo(v1, h2) :- Load(v1, v2, f), VarPointsTo(v2, h1),
  //                        HeapPointsTo(h1, f, h2).
  RuleBuilder()
      .head(Ids.VarPointsTo, {"v1", "h2"})
      .atom(Ids.Load, {"v1", "v2", "f"})
      .atom(Ids.VarPointsTo, {"v2", "h1"})
      .atom(Ids.HeapPointsTo, {"h1", "f", "h2"})
      .addTo(P);
  // HeapPointsTo(h1, f, h2) :- Store(v1, f, v2), VarPointsTo(v1, h1),
  //                            VarPointsTo(v2, h2).
  RuleBuilder()
      .head(Ids.HeapPointsTo, {"h1", "f", "h2"})
      .atom(Ids.Store, {"v1", "f", "v2"})
      .atom(Ids.VarPointsTo, {"v1", "h1"})
      .atom(Ids.VarPointsTo, {"v2", "h2"})
      .addTo(P);
  return Ids;
}

PointsToResult flix::runPointsTo(const PointsToInput &In,
                                 SolverOptions Opts) {
  ValueFactory F;
  Program P(F);
  PointsToPredicates Ids = addPointsToRules(P);

  for (const auto &N : In.News)
    P.addFact(Ids.New, {F.string(N.Var), F.string(N.Obj)});
  for (const auto &A : In.Assigns)
    P.addFact(Ids.Assign, {F.string(A.To), F.string(A.From)});
  for (const auto &L : In.Loads)
    P.addFact(Ids.Load, {F.string(L.To), F.string(L.Base), F.string(L.Field)});
  for (const auto &S : In.Stores)
    P.addFact(Ids.Store,
              {F.string(S.Base), F.string(S.Field), F.string(S.From)});

  return solveWith(P, Opts, [&](const auto &S, const SolveStats &St) {
    PointsToResult R;
    R.Stats = St;
    if (!R.Stats.ok())
      return R;

    for (const auto &Row : S.tuples(Ids.VarPointsTo))
      R.VarPointsTo.emplace_back(F.strings().text(Row[0].asStr()),
                                 F.strings().text(Row[1].asStr()));
    for (const auto &Row : S.tuples(Ids.HeapPointsTo))
      R.HeapPointsTo.push_back({F.strings().text(Row[0].asStr()),
                                F.strings().text(Row[1].asStr()),
                                F.strings().text(Row[2].asStr())});
    return R;
  });
}
