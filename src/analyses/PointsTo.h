//===- analyses/PointsTo.h - Andersen points-to (Figure 1) ----*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The field-sensitive subset-based points-to analysis of Figure 1, built
/// through the fixpoint C++ API. Inputs are the four base relations (New,
/// Assign, Load, Store); outputs are VarPointsTo and HeapPointsTo.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_ANALYSES_POINTSTO_H
#define FLIX_ANALYSES_POINTSTO_H

#include "fixpoint/Solver.h"

#include <string>
#include <vector>

namespace flix {

/// Input facts for the points-to analysis: a minimal object-oriented
/// program in the style of §2.1.
struct PointsToInput {
  struct NewFact {
    std::string Var, Obj;
  };
  struct AssignFact {
    std::string To, From;
  };
  struct LoadFact {
    std::string To, Base, Field;
  };
  struct StoreFact {
    std::string Base, Field, From;
  };

  std::vector<NewFact> News;
  std::vector<AssignFact> Assigns;
  std::vector<LoadFact> Loads;
  std::vector<StoreFact> Stores;
};

/// Results: the two derived relations.
struct PointsToResult {
  /// (var, obj) pairs.
  std::vector<std::pair<std::string, std::string>> VarPointsTo;
  /// (obj, field, obj) triples.
  std::vector<std::array<std::string, 3>> HeapPointsTo;
  SolveStats Stats;

  bool varPointsTo(const std::string &Var, const std::string &Obj) const;
};

/// Builds the Figure 1 program on \p P (with a fresh set of predicates)
/// and returns the predicate ids, so clients can compose it with other
/// analyses (§3.4 compositionality).
struct PointsToPredicates {
  PredId New, Assign, Load, Store, VarPointsTo, HeapPointsTo;
};
PointsToPredicates addPointsToRules(Program &P);

/// Runs the analysis end to end with the given solver options.
PointsToResult runPointsTo(const PointsToInput &In,
                           SolverOptions Opts = SolverOptions());

} // namespace flix

#endif // FLIX_ANALYSES_POINTSTO_H
