//===- analyses/ShortestPaths.cpp - Shortest paths (§4.4) ------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "analyses/ShortestPaths.h"

#include "parallel/Dispatch.h"
#include "runtime/Lattices.h"

#include <chrono>
#include <queue>

using namespace flix;

SsspResult flix::runShortestPathsFlix(const WeightedGraph &G, int Source,
                                      SolverOptions Opts) {
  ValueFactory F;
  MinCostLattice L(F);
  Program P(F);

  PredId Edge = P.relation("Edge", 3);
  PredId Dist = P.lattice("Dist", 2, &L);
  FnId Add = P.function("addCost", 2, FnRole::Transfer,
                        [&L](std::span<const Value> A) {
                          if (L.isInfinity(A[0]))
                            return L.infinity();
                          return L.addCost(A[0], A[1].asInt());
                        });

  // Dist(y, d + c) :- Dist(x, d), Edge(x, y, c).
  RuleBuilder()
      .headFn(Dist, {"y"}, Add, {"d", "c"})
      .atom(Dist, {"x", "d"})
      .atom(Edge, {"x", "y", "c"})
      .addTo(P);

  auto N = [&](int I) { return F.integer(I); };
  for (const auto &E : G.Edges)
    P.addFact(Edge, {N(E[0]), N(E[1]), N(E[2])});
  P.addLatFact(Dist, {N(Source)}, L.cost(0));

  return solveWith(P, Opts, [&](const auto &S, const SolveStats &St) {
    SsspResult R;
    R.Seconds = St.Seconds;
    R.FactsDerived = St.FactsDerived;
    if (!St.ok())
      return R;
    R.Ok = true;
    R.Dist.assign(G.NumNodes, -1);
    for (const auto &Row : S.tuples(Dist)) {
      Value V = Row[1];
      if (!L.isInfinity(V))
        R.Dist[Row[0].asInt()] = V.asInt();
    }
    return R;
  });
}

SsspResult flix::runDijkstra(const WeightedGraph &G, int Source) {
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::vector<std::pair<int, int>>> Adj(G.NumNodes);
  for (const auto &E : G.Edges)
    Adj[E[0]].push_back({E[1], E[2]});

  SsspResult R;
  R.Dist.assign(G.NumNodes, -1);
  using QE = std::pair<int64_t, int>;
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> Q;
  Q.push({0, Source});
  while (!Q.empty()) {
    auto [D, V] = Q.top();
    Q.pop();
    if (R.Dist[V] != -1)
      continue;
    R.Dist[V] = D;
    for (auto [W, C] : Adj[V])
      if (R.Dist[W] == -1)
        Q.push({D + C, W});
  }
  R.Ok = true;
  R.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  return R;
}

SsspResult flix::runBellmanFord(const WeightedGraph &G, int Source) {
  auto Start = std::chrono::steady_clock::now();
  constexpr int64_t Inf = INT64_MAX / 4;
  std::vector<int64_t> D(G.NumNodes, Inf);
  D[Source] = 0;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const auto &E : G.Edges) {
      if (D[E[0]] == Inf)
        continue;
      int64_t Cand = D[E[0]] + E[2];
      if (Cand < D[E[1]]) {
        D[E[1]] = Cand;
        Changed = true;
      }
    }
  }
  SsspResult R;
  R.Ok = true;
  R.Dist.assign(G.NumNodes, -1);
  for (int V = 0; V < G.NumNodes; ++V)
    if (D[V] != Inf)
      R.Dist[V] = D[V];
  R.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  return R;
}

std::vector<int64_t> flix::runAllPairsFlix(const WeightedGraph &G,
                                           SolverOptions Opts) {
  ValueFactory F;
  MinCostLattice L(F);
  Program P(F);

  PredId Edge = P.relation("Edge", 3);
  PredId Node = P.relation("Node", 1);
  PredId Dist = P.lattice("Dist", 3, &L);
  FnId Add = P.function("addCost", 2, FnRole::Transfer,
                        [&L](std::span<const Value> A) {
                          if (L.isInfinity(A[0]))
                            return L.infinity();
                          return L.addCost(A[0], A[1].asInt());
                        });

  // Dist(s, s, 0) :- Node(s).
  RuleBuilder()
      .head(Dist, {"s", "s", RuleBuilder::Spec(L.cost(0))})
      .atom(Node, {"s"})
      .addTo(P);
  // Dist(s, z, d + c) :- Dist(s, y, d), Edge(y, z, c).
  RuleBuilder()
      .headFn(Dist, {"s", "z"}, Add, {"d", "c"})
      .atom(Dist, {"s", "y", "d"})
      .atom(Edge, {"y", "z", "c"})
      .addTo(P);

  auto N = [&](int I) { return F.integer(I); };
  for (int V = 0; V < G.NumNodes; ++V)
    P.addFact(Node, {N(V)});
  for (const auto &E : G.Edges)
    P.addFact(Edge, {N(E[0]), N(E[1]), N(E[2])});

  std::vector<int64_t> Out(static_cast<size_t>(G.NumNodes) * G.NumNodes,
                           -1);
  return solveWith(P, Opts, [&](const auto &S, const SolveStats &St) {
    if (!St.ok())
      return Out;
    for (const auto &Row : S.tuples(Dist)) {
      Value V = Row[2];
      if (!L.isInfinity(V))
        Out[Row[0].asInt() * G.NumNodes + Row[1].asInt()] = V.asInt();
    }
    return Out;
  });
}
