//===- analyses/ShortestPaths.h - Shortest paths (§4.4) -------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shortest paths as a FLIX fixpoint over the (N, ∞, 0, ≥, min, max)
/// lattice (§4.4), plus Dijkstra and Bellman–Ford baselines used to
/// validate the results and to benchmark against.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_ANALYSES_SHORTESTPATHS_H
#define FLIX_ANALYSES_SHORTESTPATHS_H

#include "fixpoint/Solver.h"

#include <cstdint>
#include <vector>

namespace flix {

/// A directed graph with non-negative integer edge weights.
struct WeightedGraph {
  int NumNodes = 0;
  /// (from, to, weight), weight >= 0.
  std::vector<std::array<int, 3>> Edges;
};

struct SsspResult {
  bool Ok = false;
  /// Dist[v]; -1 encodes unreachable (∞).
  std::vector<int64_t> Dist;
  double Seconds = 0;
  uint64_t FactsDerived = 0;

  bool sameDistances(const SsspResult &O) const { return Dist == O.Dist; }
};

/// Single-source shortest paths via the §4.4 FLIX program:
///   Dist(y, d + c) :- Dist(x, d), Edge(x, y, c).
SsspResult runShortestPathsFlix(const WeightedGraph &G, int Source,
                                SolverOptions Opts = SolverOptions());

/// Binary-heap Dijkstra baseline.
SsspResult runDijkstra(const WeightedGraph &G, int Source);

/// Bellman–Ford baseline (edge relaxation rounds — structurally the
/// "naive evaluation" of the Dist rule).
SsspResult runBellmanFord(const WeightedGraph &G, int Source);

/// All-pairs variant on the engine: Dist(x, y, d) seeded with Dist(x,x,0).
/// Returns the distance matrix flattened row-major; -1 = unreachable.
std::vector<int64_t> runAllPairsFlix(const WeightedGraph &G,
                                     SolverOptions Opts = SolverOptions());

} // namespace flix

#endif // FLIX_ANALYSES_SHORTESTPATHS_H
