//===- analyses/StrongUpdate.h - Strong Update analysis (§4.1) -*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Strong Update points-to analysis of Lhoták & Chung (POPL'11), as
/// reproduced in Figure 4 of the FLIX paper, in the three implementations
/// that Table 1 compares:
///
///   * runStrongUpdateFlix        — Figure 4 rules over the SULattice,
///                                  built through the C++ fixpoint API
///                                  (native lattice operations);
///   * runStrongUpdateFlixSource  — the same program as FLIX source text
///                                  through the full compiler pipeline
///                                  (AST-interpreted lattice operations,
///                                  like the paper's Scala implementation);
///   * runStrongUpdateDatalog     — the pure-Datalog powerset embedding
///                                  described in §1 (the "DLV" column):
///                                  singleton sets as element facts, a
///                                  designated ⊤ marker, and a rule adding
///                                  ⊤ to every 2+ element set;
///   * runStrongUpdateImperative  — a hand-coded worklist analyzer (the
///                                  "C++" column) with sparse per-label
///                                  states.
///
/// All four compute the same Pt relation on the same input facts, which
/// the tests cross-validate.
///
/// One transformation relative to Figure 4: the input carries the (small)
/// Kill relation and the rules use stratified negation `!Kill(l, a)`
/// instead of materializing its complement Preserve — Figure 4's caption
/// itself defines Preserve as the complement of the Kill set, which would
/// be quadratic to materialize.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_ANALYSES_STRONGUPDATE_H
#define FLIX_ANALYSES_STRONGUPDATE_H

#include "fixpoint/Solver.h"

#include <set>
#include <vector>

namespace flix {

/// A C-like pointer program in the Strong Update input format. Variables,
/// abstract objects and labels are dense integer ids.
struct PointerProgram {
  int NumVars = 0;
  int NumObjs = 0;
  int NumLabels = 0;

  /// p = &a (address-of).
  std::vector<std::pair<int, int>> AddrOf;
  /// p = q (copy).
  std::vector<std::pair<int, int>> Copy;
  /// at label l: p = *q (load).
  std::vector<std::array<int, 3>> Load;
  /// at label l: *p = q (store).
  std::vector<std::array<int, 3>> Store;
  /// control-flow edges between labels.
  std::vector<std::pair<int, int>> Cfg;
  /// (l, a): the store at l definitely overwrites a (strong update).
  std::vector<std::pair<int, int>> Kill;
  /// (l, a): at label l, object a starts with unknown contents (⊤); used
  /// to seed function entries.
  std::vector<std::pair<int, int>> InitTop;

  /// Total number of input facts (the paper's Table 1 second column).
  size_t factCount() const {
    return AddrOf.size() + Copy.size() + Load.size() + Store.size() +
           Cfg.size() + Kill.size() + InitTop.size();
  }
};

/// Common result: the flow-insensitive-with-strong-updates points-to sets
/// and, where applicable, the solver statistics.
struct StrongUpdateResult {
  enum class Status { Ok, Timeout, Error };
  Status St = Status::Ok;
  std::string Error;

  /// Pt[p] = set of objects pointer variable p may point to.
  std::vector<std::set<int>> Pt;
  /// PtH[a] = set of objects the heap cell a may point to.
  std::vector<std::set<int>> PtH;

  double Seconds = 0;
  size_t MemoryBytes = 0;
  uint64_t FactsDerived = 0;
  /// Full solver statistics (engine counters included), for the
  /// differential tests' engine assertions.
  SolveStats Stats;

  bool ok() const { return St == Status::Ok; }
  bool samePointsTo(const StrongUpdateResult &O) const {
    return Pt == O.Pt && PtH == O.PtH;
  }
};

/// Figure 4 over the native SULattice through the C++ API. The full
/// SolverOptions overload honors NumThreads (dispatching to the parallel
/// engine); the convenience overload keeps the historical signature.
StrongUpdateResult runStrongUpdateFlix(const PointerProgram &In,
                                       const SolverOptions &Opts);
StrongUpdateResult runStrongUpdateFlix(const PointerProgram &In,
                                       double TimeLimitSeconds = 0,
                                       Strategy Strat = Strategy::SemiNaive);

/// Figure 4 as FLIX source through the full pipeline (lexer → parser →
/// type checker → interpreted lattice ops → semi-naive solver). With
/// Opts.NumThreads > 0 the interpreter is switched to thread-safe mode
/// and the parallel engine is used.
StrongUpdateResult runStrongUpdateFlixSource(const PointerProgram &In,
                                             const SolverOptions &Opts);
StrongUpdateResult
runStrongUpdateFlixSource(const PointerProgram &In,
                          double TimeLimitSeconds = 0);

/// The §1 powerset embedding on the relational engine (the DLV proxy).
StrongUpdateResult runStrongUpdateDatalog(const PointerProgram &In,
                                          double TimeLimitSeconds = 0);

/// Hand-coded imperative analyzer (the "C++" column of Table 1).
StrongUpdateResult runStrongUpdateImperative(const PointerProgram &In);

/// Returns the Figure 4 program as FLIX source text (without facts); used
/// by runStrongUpdateFlixSource, the flixc examples and the tests.
std::string strongUpdateFlixSource();

} // namespace flix

#endif // FLIX_ANALYSES_STRONGUPDATE_H
