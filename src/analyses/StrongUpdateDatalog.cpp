//===- analyses/StrongUpdateDatalog.cpp - §1 powerset embedding ------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// The pure-Datalog embedding of the SULattice described in the paper's
/// introduction (the "DLV" column of Table 1): ⊥ is the empty set, each
/// Single(p) is the singleton element fact, and ⊤ is a designated marker
/// added to every set with two or more elements. Crucially — and this is
/// the inefficiency the paper calls out — nothing stops the element facts
/// from continuing to flow once a cell is ⊤, so the engine does the work
/// of the arbitrary-sets-of-objects lattice while delivering only
/// SULattice precision.
///
//===----------------------------------------------------------------------===//

#include "analyses/StrongUpdate.h"

using namespace flix;

StrongUpdateResult flix::runStrongUpdateDatalog(const PointerProgram &In,
                                                double TimeLimitSeconds) {
  ValueFactory F;
  Program P(F);

  PredId AddrOf = P.relation("AddrOf", 2);
  PredId Copy = P.relation("Copy", 2);
  PredId Load = P.relation("Load", 3);
  PredId Store = P.relation("Store", 3);
  PredId Cfg = P.relation("CFG", 2);
  PredId Kill = P.relation("Kill", 2);
  PredId Pt = P.relation("Pt", 2);
  PredId PtH = P.relation("PtH", 2);
  PredId PtSU = P.relation("PtSU", 3);
  // The embedding: SU{Before,After}E(l, a, p) is "p ∈ su[l](a)";
  // SU{Before,After}Top(l, a) is "⊤ ∈ su[l](a)".
  PredId SUBeforeE = P.relation("SUBeforeE", 3);
  PredId SUBeforeTop = P.relation("SUBeforeTop", 2);
  PredId SUAfterE = P.relation("SUAfterE", 3);
  PredId SUAfterTop = P.relation("SUAfterTop", 2);

  FnId Neq = P.function("neq", 2, FnRole::Filter,
                        [&F](std::span<const Value> A) {
                          return F.boolean(A[0] != A[1]);
                        });

  // Base points-to rules, as in Figure 4.
  RuleBuilder().head(Pt, {"p", "a"}).atom(AddrOf, {"p", "a"}).addTo(P);
  RuleBuilder()
      .head(Pt, {"p", "a"})
      .atom(Copy, {"p", "q"})
      .atom(Pt, {"q", "a"})
      .addTo(P);
  RuleBuilder()
      .head(Pt, {"p", "b"})
      .atom(Load, {"l", "p", "q"})
      .atom(Pt, {"q", "a"})
      .atom(PtSU, {"l", "a", "b"})
      .addTo(P);
  RuleBuilder()
      .head(PtH, {"a", "b"})
      .atom(Store, {"l", "p", "q"})
      .atom(Pt, {"p", "a"})
      .atom(Pt, {"q", "b"})
      .addTo(P);

  // CFG propagation, element-wise and for the ⊤ marker.
  RuleBuilder()
      .head(SUBeforeE, {"l2", "a", "p"})
      .atom(Cfg, {"l1", "l2"})
      .atom(SUAfterE, {"l1", "a", "p"})
      .addTo(P);
  RuleBuilder()
      .head(SUBeforeTop, {"l2", "a"})
      .atom(Cfg, {"l1", "l2"})
      .atom(SUAfterTop, {"l1", "a"})
      .addTo(P);

  // Preserve (complement of Kill).
  RuleBuilder()
      .head(SUAfterE, {"l", "a", "p"})
      .atom(SUBeforeE, {"l", "a", "p"})
      .negated(Kill, {"l", "a"})
      .addTo(P);
  RuleBuilder()
      .head(SUAfterTop, {"l", "a"})
      .atom(SUBeforeTop, {"l", "a"})
      .negated(Kill, {"l", "a"})
      .addTo(P);

  // Store generation: su[l](a) gains the element b.
  RuleBuilder()
      .head(SUAfterE, {"l", "a", "b"})
      .atom(Store, {"l", "p", "q"})
      .atom(Pt, {"p", "a"})
      .atom(Pt, {"q", "b"})
      .addTo(P);

  // The ⊤ rule of the embedding: any set with two distinct elements gains
  // the designated ⊤ marker. Needed on both Before and After so that the
  // filter sees ⊤ exactly when the true lattice would be ⊤.
  RuleBuilder()
      .head(SUAfterTop, {"l", "a"})
      .atom(SUAfterE, {"l", "a", "p1"})
      .atom(SUAfterE, {"l", "a", "p2"})
      .filter(Neq, {"p1", "p2"})
      .addTo(P);
  RuleBuilder()
      .head(SUBeforeTop, {"l", "a"})
      .atom(SUBeforeE, {"l", "a", "p1"})
      .atom(SUBeforeE, {"l", "a", "p2"})
      .filter(Neq, {"p1", "p2"})
      .addTo(P);

  // The filter of Figure 4, unfolded over the embedding:
  //   ⊤ ∈ su[l](a)          => every b ∈ PtH(a) passes;
  //   b ∈ su[l](a) (element) => b passes.
  RuleBuilder()
      .head(PtSU, {"l", "a", "b"})
      .atom(PtH, {"a", "b"})
      .atom(SUBeforeTop, {"l", "a"})
      .addTo(P);
  RuleBuilder()
      .head(PtSU, {"l", "a", "b"})
      .atom(PtH, {"a", "b"})
      .atom(SUBeforeE, {"l", "a", "b"})
      .addTo(P);

  auto N = [&](int I) { return F.integer(I); };
  for (auto [A, B] : In.AddrOf)
    P.addFact(AddrOf, {N(A), N(B)});
  for (auto [A, B] : In.Copy)
    P.addFact(Copy, {N(A), N(B)});
  for (const auto &T : In.Load)
    P.addFact(Load, {N(T[0]), N(T[1]), N(T[2])});
  for (const auto &T : In.Store)
    P.addFact(Store, {N(T[0]), N(T[1]), N(T[2])});
  for (auto [A, B] : In.Cfg)
    P.addFact(Cfg, {N(A), N(B)});
  for (auto [A, B] : In.Kill)
    P.addFact(Kill, {N(A), N(B)});
  for (auto [L, A] : In.InitTop)
    P.addFact(SUAfterTop, {N(L), N(A)});

  SolverOptions Opts;
  Opts.TimeLimitSeconds = TimeLimitSeconds;
  Solver S(P, Opts);
  SolveStats St = S.solve();

  StrongUpdateResult R;
  R.Seconds = St.Seconds;
  R.MemoryBytes = St.MemoryBytes;
  R.FactsDerived = St.FactsDerived;
  switch (St.St) {
  case SolveStats::Status::Fixpoint:
    break;
  case SolveStats::Status::Timeout:
    R.St = StrongUpdateResult::Status::Timeout;
    return R;
  default:
    R.St = StrongUpdateResult::Status::Error;
    R.Error = St.Error;
    return R;
  }

  R.Pt.assign(In.NumVars, {});
  R.PtH.assign(In.NumObjs, {});
  for (const auto &Row : S.tuples(Pt))
    R.Pt[Row[0].asInt()].insert(static_cast<int>(Row[1].asInt()));
  for (const auto &Row : S.tuples(PtH))
    R.PtH[Row[0].asInt()].insert(static_cast<int>(Row[1].asInt()));
  return R;
}
