//===- analyses/StrongUpdateFlix.cpp - Figure 4 on the fixpoint engine -----===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "analyses/StrongUpdate.h"

#include "lang/Compiler.h"
#include "parallel/Dispatch.h"
#include "runtime/Lattices.h"

using namespace flix;

namespace {

/// Converts a solver status into the result status.
void fillStatus(StrongUpdateResult &R, const SolveStats &St) {
  R.Stats = St;
  R.Seconds = St.Seconds;
  R.MemoryBytes = St.MemoryBytes;
  R.FactsDerived = St.FactsDerived;
  switch (St.St) {
  case SolveStats::Status::Fixpoint:
    R.St = StrongUpdateResult::Status::Ok;
    break;
  case SolveStats::Status::Timeout:
    R.St = StrongUpdateResult::Status::Timeout;
    break;
  default:
    R.St = StrongUpdateResult::Status::Error;
    R.Error = St.Error;
    break;
  }
}

/// Reads Pt/PtH relations (Int columns) back into result sets. Generic
/// over the sequential and parallel solvers.
template <typename SolverT>
void extractPointsTo(StrongUpdateResult &R, const SolverT &S, PredId Pt,
                     PredId PtH, const PointerProgram &In) {
  R.Pt.assign(In.NumVars, {});
  R.PtH.assign(In.NumObjs, {});
  for (const auto &Row : S.tuples(Pt))
    R.Pt[Row[0].asInt()].insert(static_cast<int>(Row[1].asInt()));
  for (const auto &Row : S.tuples(PtH))
    R.PtH[Row[0].asInt()].insert(static_cast<int>(Row[1].asInt()));
}

} // namespace

StrongUpdateResult flix::runStrongUpdateFlix(const PointerProgram &In,
                                             double TimeLimitSeconds,
                                             Strategy Strat) {
  SolverOptions Opts;
  Opts.Strat = Strat;
  Opts.TimeLimitSeconds = TimeLimitSeconds;
  return runStrongUpdateFlix(In, Opts);
}

StrongUpdateResult flix::runStrongUpdateFlix(const PointerProgram &In,
                                             const SolverOptions &Opts) {
  ValueFactory F;
  SULattice SU(F);
  Program P(F);

  PredId AddrOf = P.relation("AddrOf", 2);
  PredId Copy = P.relation("Copy", 2);
  PredId Load = P.relation("Load", 3);
  PredId Store = P.relation("Store", 3);
  PredId Cfg = P.relation("CFG", 2);
  PredId Kill = P.relation("Kill", 2);
  PredId Pt = P.relation("Pt", 2);
  PredId PtH = P.relation("PtH", 2);
  PredId PtSU = P.relation("PtSU", 3);
  PredId SUBefore = P.lattice("SUBefore", 3, &SU);
  PredId SUAfter = P.lattice("SUAfter", 3, &SU);

  FnId Single = P.function("single", 1, FnRole::Transfer,
                           [&SU](std::span<const Value> A) {
                             return SU.single(A[0]);
                           });
  FnId Filter = P.function("filter", 2, FnRole::Filter,
                           [&F, &SU](std::span<const Value> A) {
                             return F.boolean(SU.filter(A[0], A[1]));
                           });

  // Pt(p, a) :- AddrOf(p, a).
  RuleBuilder().head(Pt, {"p", "a"}).atom(AddrOf, {"p", "a"}).addTo(P);
  // Pt(p, a) :- Copy(p, q), Pt(q, a).
  RuleBuilder()
      .head(Pt, {"p", "a"})
      .atom(Copy, {"p", "q"})
      .atom(Pt, {"q", "a"})
      .addTo(P);
  // Pt(p, b) :- Load(l, p, q), Pt(q, a), PtSU(l, a, b).
  RuleBuilder()
      .head(Pt, {"p", "b"})
      .atom(Load, {"l", "p", "q"})
      .atom(Pt, {"q", "a"})
      .atom(PtSU, {"l", "a", "b"})
      .addTo(P);
  // PtH(a, b) :- Store(l, p, q), Pt(p, a), Pt(q, b).
  RuleBuilder()
      .head(PtH, {"a", "b"})
      .atom(Store, {"l", "p", "q"})
      .atom(Pt, {"p", "a"})
      .atom(Pt, {"q", "b"})
      .addTo(P);
  // SUBefore(l2, a, t) :- CFG(l1, l2), SUAfter(l1, a, t).
  RuleBuilder()
      .head(SUBefore, {"l2", "a", "t"})
      .atom(Cfg, {"l1", "l2"})
      .atom(SUAfter, {"l1", "a", "t"})
      .addTo(P);
  // SUAfter(l, a, t) :- SUBefore(l, a, t), !Kill(l, a).  (Preserve)
  RuleBuilder()
      .head(SUAfter, {"l", "a", "t"})
      .atom(SUBefore, {"l", "a", "t"})
      .negated(Kill, {"l", "a"})
      .addTo(P);
  // SUAfter(l, a, Single(b)) :- Store(l, p, q), Pt(p, a), Pt(q, b).
  RuleBuilder()
      .headFn(SUAfter, {"l", "a"}, Single, {"b"})
      .atom(Store, {"l", "p", "q"})
      .atom(Pt, {"p", "a"})
      .atom(Pt, {"q", "b"})
      .addTo(P);
  // PtSU(l, a, b) :- PtH(a, b), SUBefore(l, a, t), filter(t, b).
  RuleBuilder()
      .head(PtSU, {"l", "a", "b"})
      .atom(PtH, {"a", "b"})
      .atom(SUBefore, {"l", "a", "t"})
      .filter(Filter, {"t", "b"})
      .addTo(P);

  auto N = [&](int I) { return F.integer(I); };
  for (auto [A, B] : In.AddrOf)
    P.addFact(AddrOf, {N(A), N(B)});
  for (auto [A, B] : In.Copy)
    P.addFact(Copy, {N(A), N(B)});
  for (const auto &T : In.Load)
    P.addFact(Load, {N(T[0]), N(T[1]), N(T[2])});
  for (const auto &T : In.Store)
    P.addFact(Store, {N(T[0]), N(T[1]), N(T[2])});
  for (auto [A, B] : In.Cfg)
    P.addFact(Cfg, {N(A), N(B)});
  for (auto [A, B] : In.Kill)
    P.addFact(Kill, {N(A), N(B)});
  for (auto [L, A] : In.InitTop)
    P.addLatFact(SUAfter, {N(L), N(A)}, SU.top());

  return solveWith(P, Opts, [&](const auto &S, const SolveStats &St) {
    StrongUpdateResult R;
    fillStatus(R, St);
    if (R.ok())
      extractPointsTo(R, S, Pt, PtH, In);
    return R;
  });
}

std::string flix::strongUpdateFlixSource() {
  return R"flix(
// The Strong Update analysis of Figure 4, over integer ids.

enum SULattice {
  case Top,
  case Single(Int),
  case Bottom
}

def leq(e1: SULattice, e2: SULattice): Bool = match (e1, e2) with {
  case (SULattice.Bottom, _) => true
  case (_, SULattice.Top) => true
  case (SULattice.Single(a), SULattice.Single(b)) => a == b
  case _ => false
}

def lub(e1: SULattice, e2: SULattice): SULattice = match (e1, e2) with {
  case (SULattice.Bottom, x) => x
  case (x, SULattice.Bottom) => x
  case (SULattice.Single(a), SULattice.Single(b)) =>
    if (a == b) SULattice.Single(a) else SULattice.Top
  case _ => SULattice.Top
}

def glb(e1: SULattice, e2: SULattice): SULattice = match (e1, e2) with {
  case (SULattice.Top, x) => x
  case (x, SULattice.Top) => x
  case (SULattice.Single(a), SULattice.Single(b)) =>
    if (a == b) SULattice.Single(a) else SULattice.Bottom
  case _ => SULattice.Bottom
}

let SULattice<> = (SULattice.Bottom, SULattice.Top, leq, lub, glb);

def filter(t: SULattice, b: Int): Bool = match t with {
  case SULattice.Bottom => false
  case SULattice.Single(p) => b == p
  case SULattice.Top => true
}

rel AddrOf(p: Int, a: Int);
rel Copy(p: Int, q: Int);
rel Load(l: Int, p: Int, q: Int);
rel Store(l: Int, p: Int, q: Int);
rel CFG(l1: Int, l2: Int);
rel Kill(l: Int, a: Int);
rel Pt(p: Int, a: Int);
rel PtH(a: Int, b: Int);
rel PtSU(l: Int, a: Int, b: Int);
lat SUBefore(l: Int, a: Int, SULattice<>);
lat SUAfter(l: Int, a: Int, SULattice<>);

Pt(p, a) :- AddrOf(p, a).
Pt(p, a) :- Copy(p, q), Pt(q, a).
Pt(p, b) :- Load(l, p, q), Pt(q, a), PtSU(l, a, b).
PtH(a, b) :- Store(l, p, q), Pt(p, a), Pt(q, b).

SUBefore(l2, a, t) :- CFG(l1, l2), SUAfter(l1, a, t).
SUAfter(l, a, t) :- SUBefore(l, a, t), !Kill(l, a).
SUAfter(l, a, SULattice.Single(b)) :- Store(l, p, q), Pt(p, a), Pt(q, b).

PtSU(l, a, b) :- PtH(a, b), SUBefore(l, a, t), filter(t, b).
)flix";
}

StrongUpdateResult
flix::runStrongUpdateFlixSource(const PointerProgram &In,
                                double TimeLimitSeconds) {
  SolverOptions Opts;
  Opts.TimeLimitSeconds = TimeLimitSeconds;
  return runStrongUpdateFlixSource(In, Opts);
}

StrongUpdateResult
flix::runStrongUpdateFlixSource(const PointerProgram &In,
                                const SolverOptions &Opts) {
  ValueFactory F;
  FlixCompiler C(F);
  // Honor the engine choice end to end: with UseVm off the whole run is a
  // pure-interpreter oracle (no VM is even constructed).
  C.setUseVm(Opts.UseVm);
  C.setVmOptLevel(Opts.VmOptLevel);
  StrongUpdateResult R;
  if (!C.compile(strongUpdateFlixSource(), "strong-update.flix")) {
    R.St = StrongUpdateResult::Status::Error;
    R.Error = C.diagnostics();
    return R;
  }

  auto N = [&](int I) { return F.integer(I); };
  auto fact2 = [&](const char *P, int A, int B) {
    Value T[2] = {N(A), N(B)};
    C.addFact(P, T);
  };
  auto fact3 = [&](const char *P, int A, int B, int D) {
    Value T[3] = {N(A), N(B), N(D)};
    C.addFact(P, T);
  };
  for (auto [A, B] : In.AddrOf)
    fact2("AddrOf", A, B);
  for (auto [A, B] : In.Copy)
    fact2("Copy", A, B);
  for (const auto &T : In.Load)
    fact3("Load", T[0], T[1], T[2]);
  for (const auto &T : In.Store)
    fact3("Store", T[0], T[1], T[2]);
  for (auto [A, B] : In.Cfg)
    fact2("CFG", A, B);
  for (auto [A, B] : In.Kill)
    fact2("Kill", A, B);
  Value Top = F.tag("SULattice.Top");
  for (auto [L, A] : In.InitTop) {
    Value Key[2] = {N(L), N(A)};
    C.addLatFact("SUAfter", Key, Top);
  }

  // All lattice operations and externals of a compiled program run
  // through the interpreter, which is intrinsically thread-safe (Interp.h)
  // — the parallel solver's workers call into it with no outer lock.
  return solveWith(C.program(), Opts,
                   [&](const auto &S, const SolveStats &St) {
    fillStatus(R, St);
    if (C.interp().hasError()) {
      R.St = StrongUpdateResult::Status::Error;
      R.Error = C.interp().error();
      return R;
    }
    if (R.ok())
      extractPointsTo(R, S, *C.predicate("Pt"), *C.predicate("PtH"), In);
    return R;
  });
}
