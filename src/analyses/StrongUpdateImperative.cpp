//===- analyses/StrongUpdateImperative.cpp - hand-coded analyzer -----------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// A hand-coded worklist implementation of the Strong Update analysis —
/// the stand-in for the original paper's C++/LLVM implementation in
/// Table 1. Per-label states use the sparse representation the paper
/// credits for its speed: a label stores only the objects whose value is
/// Single(p) plus a set of known-⊤ objects; ⊥ (unreached / no
/// information) is implicit absence.
///
/// The analysis alternates an Andersen-style pointer worklist (using the
/// current strong-update information for loads) with a CFG dataflow pass,
/// until a global fixed point — computing exactly the minimal model of
/// the Figure 4 rules, which the tests cross-validate against the
/// declarative implementations.
///
//===----------------------------------------------------------------------===//

#include "analyses/StrongUpdate.h"

#include <algorithm>
#include <chrono>
#include <deque>
#include <unordered_map>
#include <unordered_set>

using namespace flix;

namespace {

/// Sparse per-(label, object) strong-update value.
struct SUState {
  // Objects currently Single(p): obj -> p.
  std::unordered_map<int, int> Single;
  // Objects currently ⊤.
  std::unordered_set<int> Top;

  enum class Kind { Bot, Single, Top };

  Kind kindOf(int Obj, int &P) const {
    if (Top.count(Obj))
      return Kind::Top;
    auto It = Single.find(Obj);
    if (It == Single.end())
      return Kind::Bot;
    P = It->second;
    return Kind::Single;
  }

  /// Joins Single(p) into this state for Obj; returns true on change.
  bool joinSingle(int Obj, int P) {
    if (Top.count(Obj))
      return false;
    auto It = Single.find(Obj);
    if (It == Single.end()) {
      Single.emplace(Obj, P);
      return true;
    }
    if (It->second == P)
      return false;
    Single.erase(It);
    Top.insert(Obj);
    return true;
  }

  bool joinTop(int Obj) {
    if (Top.count(Obj))
      return false;
    Single.erase(Obj);
    Top.insert(Obj);
    return true;
  }

  /// Joins another full state into this one (CFG merge); returns true on
  /// change.
  bool joinFrom(const SUState &O) {
    bool Changed = false;
    for (int Obj : O.Top)
      Changed |= joinTop(Obj);
    for (auto [Obj, P] : O.Single)
      Changed |= joinSingle(Obj, P);
    return Changed;
  }
};

} // namespace

StrongUpdateResult
flix::runStrongUpdateImperative(const PointerProgram &In) {
  auto Start = std::chrono::steady_clock::now();
  StrongUpdateResult R;
  R.Pt.assign(In.NumVars, {});
  R.PtH.assign(In.NumObjs, {});

  // Index the program.
  std::vector<std::vector<int>> CopyTo(In.NumVars);   // q -> [p: p = q]
  for (auto [P, Q] : In.Copy)
    CopyTo[Q].push_back(P);
  std::vector<std::vector<int>> Succs(In.NumLabels);
  std::vector<std::vector<int>> Preds(In.NumLabels);
  for (auto [L1, L2] : In.Cfg) {
    Succs[L1].push_back(L2);
    Preds[L2].push_back(L1);
  }
  std::unordered_set<int64_t> Killed; // (l << 32) | a
  auto killKey = [](int L, int A) {
    return (static_cast<int64_t>(L) << 32) | static_cast<uint32_t>(A);
  };
  for (auto [L, A] : In.Kill)
    Killed.insert(killKey(L, A));
  // Stores and loads grouped by label (a label holds at most one in the
  // generated programs, but the analysis does not rely on that).
  std::vector<std::vector<std::pair<int, int>>> StoresAt(In.NumLabels);
  for (const auto &T : In.Store)
    StoresAt[T[0]].push_back({T[1], T[2]});
  std::vector<std::vector<std::pair<int, int>>> LoadsAt(In.NumLabels);
  for (const auto &T : In.Load)
    LoadsAt[T[0]].push_back({T[1], T[2]});

  std::vector<SUState> Before(In.NumLabels), After(In.NumLabels);
  for (auto [L, A] : In.InitTop)
    After[L].joinTop(A);

  // ptsu[l](a) under the current Before state and PtH.
  auto ptsu = [&](int L, int A, std::vector<int> &Out) {
    Out.clear();
    int P = -1;
    switch (Before[L].kindOf(A, P)) {
    case SUState::Kind::Bot:
      return;
    case SUState::Kind::Single:
      if (R.PtH[A].count(P))
        Out.push_back(P);
      return;
    case SUState::Kind::Top:
      Out.assign(R.PtH[A].begin(), R.PtH[A].end());
      return;
    }
  };

  // One Andersen pass to fixpoint under the current SU information.
  auto andersenPass = [&]() -> bool {
    bool AnyChange = false;
    std::deque<int> Work; // variables whose pt set grew
    std::vector<char> InWork(In.NumVars, 0);
    auto push = [&](int V) {
      if (!InWork[V]) {
        InWork[V] = 1;
        Work.push_back(V);
      }
    };
    auto addPt = [&](int P, int A) {
      if (R.Pt[P].insert(A).second) {
        AnyChange = true;
        push(P);
      }
    };
    for (auto [P, A] : In.AddrOf)
      addPt(P, A);
    // Re-run load/store/copy constraints until stable.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      while (!Work.empty()) {
        int Q = Work.front();
        Work.pop_front();
        InWork[Q] = 0;
        for (int P : CopyTo[Q])
          for (int A : R.Pt[Q])
            addPt(P, A);
      }
      // Stores feed PtH; loads read through ptsu.
      for (const auto &T : In.Store) {
        for (int A : R.Pt[T[1]])
          for (int B : R.Pt[T[2]])
            if (R.PtH[A].insert(B).second) {
              AnyChange = true;
              Changed = true;
            }
      }
      std::vector<int> Objs;
      for (const auto &T : In.Load) {
        int L = T[0], P = T[1], Q = T[2];
        for (int A : R.Pt[Q]) {
          ptsu(L, A, Objs);
          for (int B : Objs)
            if (R.Pt[P].insert(B).second) {
              AnyChange = true;
              Changed = true;
              push(P);
            }
        }
      }
    }
    return AnyChange;
  };

  // One CFG dataflow pass to fixpoint under the current points-to sets.
  auto dataflowPass = [&]() -> bool {
    bool AnyChange = false;
    std::deque<int> Work;
    std::vector<char> InWork(In.NumLabels, 0);
    auto push = [&](int L) {
      if (L >= 0 && L < In.NumLabels && !InWork[L]) {
        InWork[L] = 1;
        Work.push_back(L);
      }
    };
    for (int L = 0; L < In.NumLabels; ++L)
      push(L);
    while (!Work.empty()) {
      int L = Work.front();
      Work.pop_front();
      InWork[L] = 0;
      // Before[L] = join of predecessors' After.
      bool BeforeChanged = false;
      for (int Pr : Preds[L])
        BeforeChanged |= Before[L].joinFrom(After[Pr]);
      // After[L] = preserved Before plus store generation.
      bool AfterChanged = false;
      // Preserve: everything not killed at L.
      {
        SUState Preserved;
        for (int Obj : Before[L].Top)
          if (!Killed.count(killKey(L, Obj)))
            Preserved.joinTop(Obj);
        for (auto [Obj, P] : Before[L].Single)
          if (!Killed.count(killKey(L, Obj)))
            Preserved.joinSingle(Obj, P);
        AfterChanged |= After[L].joinFrom(Preserved);
      }
      for (auto [P, Q] : StoresAt[L])
        for (int A : R.Pt[P])
          for (int B : R.Pt[Q])
            AfterChanged |= After[L].joinSingle(A, B);
      if (AfterChanged) {
        AnyChange = true;
        for (int S : Succs[L])
          push(S);
      }
      if (BeforeChanged)
        AnyChange = true;
    }
    return AnyChange;
  };

  // Alternate to a global fixed point.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    Changed |= andersenPass();
    Changed |= dataflowPass();
  }

  R.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  // Rough memory accounting, for the Table 1 memory column.
  size_t Bytes = 0;
  for (const auto &S : R.Pt)
    Bytes += S.size() * sizeof(int) + 48;
  for (const auto &S : R.PtH)
    Bytes += S.size() * sizeof(int) + 48;
  for (int L = 0; L < In.NumLabels; ++L)
    Bytes += (Before[L].Single.size() + After[L].Single.size()) * 16 +
             (Before[L].Top.size() + After[L].Top.size()) * 8 + 64;
  R.MemoryBytes = Bytes;
  return R;
}
