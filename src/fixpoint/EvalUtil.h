//===- fixpoint/EvalUtil.h - Shared rule-evaluation helpers ---*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small helpers shared by the three rule-evaluation engines — the
/// sequential Solver, the parallel solver's workers, and the incremental
/// engine's delta-round workers — which all walk rule bodies with the same
/// driver-first order and the same binding undo log. Keeping them here
/// guarantees the engines agree on the evaluation Order contract (the
/// parallel solver's static index analysis and sub-task continuations both
/// rely on Order being a pure function of (rule, driver)).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_FIXPOINT_EVALUTIL_H
#define FLIX_FIXPOINT_EVALUTIL_H

#include "fixpoint/Program.h"
#include "support/SmallVector.h"

#include <utility>
#include <vector>

namespace flix::eval {

/// Undo log for variable bindings within one body-element match.
struct BindTrail {
  SmallVector<std::pair<VarId, std::pair<bool, Value>>, 4> Saved;

  void save(VarId V, bool WasBound, Value Old) {
    Saved.push_back({V, {WasBound, Old}});
  }
  void undo(std::vector<Value> &Env, std::vector<uint8_t> &Bound) {
    for (size_t I = Saved.size(); I-- > 0;) {
      Env[Saved[I].first] = Saved[I].second.second;
      Bound[Saved[I].first] = Saved[I].second.first;
    }
    Saved.clear();
  }
};

/// The driver-first evaluation Order for rule \p R: position 0 is the
/// driver body element (when Driver >= 0), the remaining elements keep
/// their body order. Every engine and the parallel solver's
/// computeWantedIndexes() simulation must build orders through this one
/// function so they stay in lockstep.
inline void buildOrder(const Rule &R, int Driver,
                       SmallVector<const BodyElem *, 8> &Order) {
  if (Driver >= 0)
    Order.push_back(&R.Body[Driver]);
  for (size_t I = 0; I < R.Body.size(); ++I)
    if (static_cast<int>(I) != Driver)
      Order.push_back(&R.Body[I]);
}

} // namespace flix::eval

#endif // FLIX_FIXPOINT_EVALUTIL_H
