//===- fixpoint/ModelTheory.cpp - §3.2 semantics, executable --------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/ModelTheory.h"

#include <algorithm>
#include <cassert>

using namespace flix;

/// True if the two ground atoms are in the same cell (§3.2 step 3): same
/// predicate and equal key columns.
static bool sameCell(const Program &P, const GroundAtom &A,
                     const GroundAtom &B) {
  if (A.Pred != B.Pred)
    return false;
  unsigned KA = P.predicate(A.Pred).keyArity();
  for (unsigned I = 0; I < KA; ++I)
    if (A.Args[I] != B.Args[I])
      return false;
  return true;
}

/// A ⊑S B for two atoms of the same cell.
static bool atomLeq(const Program &P, const GroundAtom &A,
                    const GroundAtom &B) {
  const PredicateDecl &D = P.predicate(A.Pred);
  if (D.isRelational())
    return true; // same cell == same tuple for relations
  return D.Lat->leq(A.Args[D.keyArity()], B.Args[D.keyArity()]);
}

bool flix::isAtomTrue(const Program &P, const Interpretation &I,
                      const GroundAtom &A) {
  for (const GroundAtom &B : I)
    if (sameCell(P, A, B) && atomLeq(P, A, B))
      return true;
  return false;
}

bool flix::isCompact(const Program &P, const Interpretation &I) {
  for (size_t X = 0; X < I.size(); ++X)
    for (size_t Y = X + 1; Y < I.size(); ++Y)
      if (sameCell(P, I[X], I[Y]) && !(I[X] == I[Y]))
        return false;
  return true;
}

bool flix::modelLeq(const Program &P, const Interpretation &M1,
                    const Interpretation &M2) {
  for (const GroundAtom &A1 : M1) {
    bool Found = false;
    for (const GroundAtom &A2 : M2)
      if (sameCell(P, A1, A2) && atomLeq(P, A1, A2)) {
        Found = true;
        break;
      }
    if (!Found)
      return false;
  }
  return true;
}

namespace {

/// Enumerates all substitutions of a rule's variables over the universe
/// and checks rule truth.
class GroundRuleChecker {
public:
  GroundRuleChecker(const Program &P, const HerbrandSpec &H,
                    const Interpretation &I)
      : P(P), I(I) {
    Universe = H.Terms;
    for (const auto &[L, Elems] : H.LatticeElems)
      Universe.insert(Universe.end(), Elems.begin(), Elems.end());
    std::sort(Universe.begin(), Universe.end());
    Universe.erase(std::unique(Universe.begin(), Universe.end()),
                   Universe.end());
  }

  /// True iff every ground instance of \p R is true in I.
  bool allInstancesTrue(const Rule &R) {
    std::vector<Value> Subst(R.NumVars);
    return enumerate(R, Subst, 0);
  }

private:
  bool enumerate(const Rule &R, std::vector<Value> &Subst, uint32_t Var) {
    if (Var == R.NumVars)
      return instanceTrue(R, Subst);
    for (const Value &V : Universe) {
      Subst[Var] = V;
      if (!enumerate(R, Subst, Var + 1))
        return false;
    }
    return true;
  }

  Value apply(const Term &T, const std::vector<Value> &Subst) const {
    return T.isVar() ? Subst[T.Variable] : T.Constant;
  }

  bool instanceTrue(const Rule &R, const std::vector<Value> &Subst) {
    // Body conjunction.
    for (const BodyElem &E : R.Body) {
      const auto *A = std::get_if<BodyAtom>(&E);
      assert(A && !A->Negated &&
             "ModelTheory covers the §3.2 core fragment only");
      GroundAtom GA;
      GA.Pred = A->Pred;
      for (const Term &T : A->Terms)
        GA.Args.push_back(apply(T, Subst));
      if (!isAtomTrue(P, I, GA))
        return true; // body false => rule instance true
    }
    // Head.
    assert(!R.Head.LastFn &&
           "ModelTheory covers the §3.2 core fragment only");
    GroundAtom GH;
    GH.Pred = R.Head.Pred;
    for (const Term &T : R.Head.KeyTerms)
      GH.Args.push_back(apply(T, Subst));
    GH.Args.push_back(apply(R.Head.LastTerm, Subst));
    // ⊥-free reading: a ⊥-valued head imposes no obligation (the ⊥ cell
    // is identified with an absent cell).
    const PredicateDecl &HD = P.predicate(R.Head.Pred);
    if (!HD.isRelational() && GH.Args.back() == HD.Lat->bot())
      return true;
    return isAtomTrue(P, I, GH);
  }

  const Program &P;
  const Interpretation &I;
  std::vector<Value> Universe;
};

} // namespace

bool flix::isModel(const Program &P, const HerbrandSpec &H,
                   const Interpretation &I) {
  // Facts are rules with empty bodies. ⊥-valued lattice facts are
  // trivially satisfied (⊥-free reading).
  for (const Fact &Fa : P.facts()) {
    const PredicateDecl &D = P.predicate(Fa.Pred);
    if (!D.isRelational() && Fa.LatValue == D.Lat->bot())
      continue;
    GroundAtom GA;
    GA.Pred = Fa.Pred;
    GA.Args.assign(Fa.Key.begin(), Fa.Key.end());
    if (!D.isRelational())
      GA.Args.push_back(Fa.LatValue);
    if (!isAtomTrue(P, I, GA))
      return false;
  }
  GroundRuleChecker C(P, H, I);
  for (const Rule &R : P.rules())
    if (!C.allInstancesTrue(R))
      return false;
  return true;
}

std::optional<Interpretation>
flix::bruteForceMinimalModel(const Program &P, const HerbrandSpec &H) {
  // Enumerate the cells: every predicate with every key tuple over T.
  struct Cell {
    PredId Pred;
    std::vector<Value> Key;
    std::vector<Value> Choices; ///< possible atoms' last value; index 0 is
                                ///< the synthetic "absent" marker
  };
  std::vector<Cell> Cells;
  for (PredId Pred = 0; Pred < P.predicates().size(); ++Pred) {
    const PredicateDecl &D = P.predicate(Pred);
    unsigned KA = D.keyArity();
    // Enumerate T^KA.
    std::vector<std::vector<Value>> Keys;
    Keys.emplace_back();
    for (unsigned I = 0; I < KA; ++I) {
      std::vector<std::vector<Value>> Next;
      for (const auto &K : Keys)
        for (const Value &T : H.Terms) {
          std::vector<Value> K2 = K;
          K2.push_back(T);
          Next.push_back(std::move(K2));
        }
      Keys = std::move(Next);
    }
    for (auto &K : Keys) {
      Cell C;
      C.Pred = Pred;
      C.Key = std::move(K);
      if (D.isRelational()) {
        C.Choices = {Value()}; // present, with no extra column
      } else {
        auto It = H.LatticeElems.find(D.Lat);
        assert(It != H.LatticeElems.end() &&
               "HerbrandSpec missing lattice element enumeration");
        // ⊥ is identified with absence (⊥-free reading); enumerating it
        // separately would only duplicate interpretations.
        for (const Value &E : It->second)
          if (E != D.Lat->bot())
            C.Choices.push_back(E);
      }
      Cells.push_back(std::move(C));
    }
  }

  // Odometer over (absent + choices) per cell.
  std::vector<size_t> Pick(Cells.size(), 0); // 0 = absent, i+1 = Choices[i]
  std::vector<Interpretation> Models;
  for (;;) {
    Interpretation I;
    for (size_t CI = 0; CI < Cells.size(); ++CI) {
      if (Pick[CI] == 0)
        continue;
      GroundAtom GA;
      GA.Pred = Cells[CI].Pred;
      GA.Args = Cells[CI].Key;
      Value Choice = Cells[CI].Choices[Pick[CI] - 1];
      if (!P.predicate(GA.Pred).isRelational())
        GA.Args.push_back(Choice);
      I.push_back(std::move(GA));
    }
    if (isModel(P, H, I))
      Models.push_back(std::move(I));

    // Advance the odometer.
    size_t CI = 0;
    while (CI < Cells.size()) {
      if (++Pick[CI] <= Cells[CI].Choices.size())
        break;
      Pick[CI] = 0;
      ++CI;
    }
    if (CI == Cells.size())
      break;
  }

  // All enumerated interpretations are compact by construction. Find the
  // minimal one(s).
  std::vector<Interpretation> Minimal;
  for (size_t X = 0; X < Models.size(); ++X) {
    bool IsMin = true;
    for (size_t Y = 0; Y < Models.size() && IsMin; ++Y) {
      if (X == Y)
        continue;
      if (modelLeq(P, Models[Y], Models[X]) &&
          !modelLeq(P, Models[X], Models[Y]))
        IsMin = false;
    }
    if (IsMin)
      Minimal.push_back(Models[X]);
  }
  if (Minimal.empty())
    return std::nullopt;
  assert(Minimal.size() == 1 && "minimal compact model not unique");
  Interpretation Out = Minimal.front();
  std::sort(Out.begin(), Out.end());
  return Out;
}

Interpretation flix::solverModel(const Program &P, const Solver &S) {
  Interpretation I;
  for (PredId Pred = 0; Pred < P.predicates().size(); ++Pred) {
    for (const std::vector<Value> &Tup : S.tuples(Pred)) {
      GroundAtom GA;
      GA.Pred = Pred;
      GA.Args = Tup;
      I.push_back(std::move(GA));
    }
  }
  std::sort(I.begin(), I.end());
  return I;
}

Interpretation flix::dropBottomAtoms(const Program &P, Interpretation I) {
  I.erase(std::remove_if(I.begin(), I.end(),
                         [&](const GroundAtom &A) {
                           const PredicateDecl &D = P.predicate(A.Pred);
                           if (D.isRelational())
                             return false;
                           return A.Args[D.keyArity()] == D.Lat->bot();
                         }),
          I.end());
  return I;
}
