//===- fixpoint/ModelTheory.h - §3.2 semantics, executable ----*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable version of the paper's model-theoretic semantics (§3.2),
/// by brute-force enumeration over an explicit Herbrand universe. This is
/// deliberately exponential: it exists to *define* the right answer on
/// small programs so the production solvers can be property-tested against
/// it (tests/ModelTheoryTest.cpp, tests/DifferentialTest.cpp).
///
/// Scope: programs whose rules contain only positive atoms (no functions,
/// binders or negation) — exactly the §3.2 core calculus.
///
/// Two readings from the paper are made explicit here:
///  * Minimality quantifies over *compact* models (the paper's worked
///    example declares I6 minimal even though the non-compact model I4
///    lies strictly below it).
///  * We adopt the ⊥-free reading that the engine (and the real Flix
///    implementation) computes: a ⊥-valued cell is identified with an
///    absent cell. Concretely, a ground rule instance whose head carries
///    the lattice value ⊥ imposes no obligation, and interpretations never
///    contain ⊥ atoms. The paper's literal §3.2 definition instead makes a
///    ⊥-valued head force its cell to be present (some atom must witness
///    it), which in turn can make body atoms of other rules true; on
///    programs with ⊥-valued facts the two readings produce different
///    minimal models. On ⊥-free programs — including all of the paper's
///    worked examples — they coincide.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_FIXPOINT_MODELTHEORY_H
#define FLIX_FIXPOINT_MODELTHEORY_H

#include "fixpoint/Program.h"
#include "fixpoint/Solver.h"

#include <map>
#include <optional>
#include <vector>

namespace flix {

/// A ground atom p(v1, ..., vn); for lattice predicates the last value is
/// the lattice element.
struct GroundAtom {
  PredId Pred = 0;
  std::vector<Value> Args;

  bool operator==(const GroundAtom &O) const {
    return Pred == O.Pred && Args == O.Args;
  }
  bool operator<(const GroundAtom &O) const {
    if (Pred != O.Pred)
      return Pred < O.Pred;
    return Args < O.Args;
  }
};

/// An interpretation: a finite subset of the Herbrand base.
using Interpretation = std::vector<GroundAtom>;

/// The explicit Herbrand universe: the ground terms T (key positions) and
/// the element enumeration of every lattice used by the program.
struct HerbrandSpec {
  std::vector<Value> Terms;
  std::map<const Lattice *, std::vector<Value>> LatticeElems;
};

/// Truth of a ground atom (§3.2 step 5): true iff some atom of the same
/// cell in \p I lies above \p A.
bool isAtomTrue(const Program &P, const Interpretation &I,
                const GroundAtom &A);

/// True iff \p I makes every ground instance of every rule (and fact) of
/// \p P true. Requires the §3.2 core fragment (asserts otherwise).
bool isModel(const Program &P, const HerbrandSpec &H,
             const Interpretation &I);

/// Compactness (§3.2 step 4): no two atoms of \p I share a cell.
bool isCompact(const Program &P, const Interpretation &I);

/// The partial order on models (§3.2 step 6).
bool modelLeq(const Program &P, const Interpretation &M1,
              const Interpretation &M2);

/// Enumerates all compact interpretations and returns the minimal model,
/// or nullopt if no compact model exists in the enumerated space. Checks
/// uniqueness: asserts exactly one minimal compact model.
std::optional<Interpretation>
bruteForceMinimalModel(const Program &P, const HerbrandSpec &H);

/// Extracts the solver's computed model as an Interpretation (sorted).
Interpretation solverModel(const Program &P, const Solver &S);

/// Drops ⊥-valued lattice atoms, for comparisons against the engine,
/// which never materializes ⊥ cells.
Interpretation dropBottomAtoms(const Program &P, Interpretation I);

} // namespace flix

#endif // FLIX_FIXPOINT_MODELTHEORY_H
