//===- fixpoint/Plan.cpp - Rule plan compilation --------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Plan.h"

#include <cassert>

using namespace flix;
using namespace flix::plan;

namespace {

Operand operandOf(const Term &T) {
  Operand O;
  O.IsConst = !T.isVar();
  if (O.IsConst)
    O.Const = T.Constant;
  else
    O.Var = T.Variable;
  return O;
}

/// Compiles one (rule, driver) plan. \p PreBound marks variables bound
/// before the body starts (the rederive family's head-key variables).
/// \p DriverIsDelta selects a StepKind::Driver opening step (delta rounds)
/// vs a normal access path for the fronted atom (rederive).
///
/// Boundness is simulated exactly as the legacy recursive walk (and the
/// parallel/incremental index analyses) evolve it: positive atoms bind all
/// their variable terms including the lattice column, binder patterns
/// bind, negated atoms and filters bind nothing. Along a fixed order that
/// simulation is exact, so every runtime Bound[] check of the legacy walk
/// becomes a compile-time ColOp/LatOp choice.
RulePlan compilePlan(const Program &P, const Rule &R, uint32_t RuleIdx,
                     int Driver, const std::vector<bool> &PreBound,
                     bool DriverIsDelta, bool UseIndexes) {
  RulePlan Pl;
  Pl.RuleIdx = RuleIdx;
  Pl.Driver = Driver;
  Pl.NumVars = R.NumVars;
  Pl.Valid = true;

  std::vector<bool> BoundVar = PreBound;
  BoundVar.resize(R.NumVars, false);

  SmallVector<const BodyElem *, 8> Order;
  eval::buildOrder(R, Driver, Order);

  for (size_t Pos = 0; Pos < Order.size(); ++Pos) {
    const BodyElem &E = *Order[Pos];

    if (const auto *Fl = std::get_if<BodyFilter>(&E)) {
      // Fuse onto the preceding step: it runs at the same point of the
      // search tree (after that step's candidate matched), and validation
      // guarantees its arguments are bound there. A leading filter gets a
      // one-shot step of its own.
      Guard G;
      G.Fn = Fl->Fn;
      for (const Term &T : Fl->Args)
        G.Args.push_back(operandOf(T));
      if (Pl.Steps.empty()) {
        Step S;
        S.Kind = StepKind::Filter;
        S.Guards.push_back(std::move(G));
        Pl.Steps.push_back(std::move(S));
      } else {
        Pl.Steps.back().Guards.push_back(std::move(G));
      }
      continue;
    }

    if (const auto *B = std::get_if<BodyBinder>(&E)) {
      Step S;
      S.Kind = StepKind::Binder;
      S.Fn = B->Fn;
      for (const Term &T : B->Args)
        S.Args.push_back(operandOf(T));
      for (size_t I = 0; I < B->Pattern.size(); ++I) {
        VarId V = B->Pattern[I];
        ColTest Ct;
        Ct.Col = static_cast<uint8_t>(I);
        Ct.Var = V;
        if (BoundVar[V]) {
          Ct.Op = ColOp::CheckVar;
        } else {
          Ct.Op = ColOp::Bind;
          BoundVar[V] = true; // later duplicate slots become checks
        }
        S.Pattern.push_back(Ct);
      }
      Pl.Steps.push_back(std::move(S));
      continue;
    }

    const auto &A = std::get<BodyAtom>(E);
    const PredicateDecl &D = P.predicate(A.Pred);
    unsigned KA = D.keyArity();

    if (A.Negated) {
      // Ground by validation; binds nothing (lockstep with the analyses).
      Step S;
      S.Kind = StepKind::Negation;
      S.Pred = A.Pred;
      for (unsigned I = 0; I < KA; ++I)
        S.ProjOps.push_back(operandOf(A.Terms[I]));
      Pl.Steps.push_back(std::move(S));
      continue;
    }

    Step S;
    S.Pred = A.Pred;
    S.Lat = D.isRelational() ? nullptr : D.Lat;

    // Full column tests with sequential in-atom boundness: the first
    // occurrence of a variable binds, later occurrences (in this atom)
    // check — exactly the legacy matchAtomRow behavior.
    {
      std::vector<bool> InAtom = BoundVar;
      for (unsigned I = 0; I < KA; ++I) {
        const Term &Tm = A.Terms[I];
        ColTest Ct;
        Ct.Col = static_cast<uint8_t>(I);
        if (!Tm.isVar()) {
          Ct.Op = ColOp::CheckConst;
          Ct.Const = Tm.Constant;
        } else if (InAtom[Tm.Variable]) {
          Ct.Op = ColOp::CheckVar;
          Ct.Var = Tm.Variable;
        } else {
          Ct.Op = ColOp::Bind;
          Ct.Var = Tm.Variable;
          InAtom[Tm.Variable] = true;
        }
        S.Cols.push_back(Ct);
      }
      if (!D.isRelational()) {
        // The lattice column sees the key columns' binds (legacy order).
        const Term &Lt = A.Terms[KA];
        if (!Lt.isVar()) {
          S.LOp = LatOp::CheckConstLeq;
          S.LatConst = Lt.Constant;
        } else if (InAtom[Lt.Variable]) {
          S.LOp = LatOp::GlbRebind;
          S.LatVar = Lt.Variable;
        } else {
          S.LOp = LatOp::BindVar;
          S.LatVar = Lt.Variable;
        }
      }
    }

    if (Pos == 0 && Driver >= 0 && DriverIsDelta) {
      S.Kind = StepKind::Driver;
    } else {
      // Access-path mask from pre-atom boundness — identical to the
      // legacy evalAtom mask and the static index analyses.
      uint64_t Mask = 0;
      for (unsigned I = 0; I < KA; ++I) {
        const Term &Tm = A.Terms[I];
        if (!Tm.isVar() || BoundVar[Tm.Variable]) {
          Mask |= uint64_t(1) << I;
          S.ProjOps.push_back(operandOf(Tm));
        }
      }
      uint64_t Full = KA == 0 ? 0 : (uint64_t(1) << KA) - 1;
      S.Mask = Mask;
      if (Mask == Full) {
        S.Kind = StepKind::Lookup; // exact key: no residual column tests
      } else if (Mask != 0 && UseIndexes) {
        S.Kind = StepKind::Probe;
        // Bucket rows match the masked columns exactly (the projection
        // tuple is hash-consed), so the probe path only runs the tests of
        // unmasked columns.
        for (const ColTest &Ct : S.Cols)
          if (!(Mask & (uint64_t(1) << Ct.Col)))
            S.Binds.push_back(Ct);
      } else {
        S.Kind = StepKind::Scan;
        S.Mask = 0;
        S.ProjOps.clear();
      }
    }
    Pl.Steps.push_back(std::move(S));

    // After the atom, all its variable terms (including the lattice
    // column) are bound.
    for (const Term &Tm : A.Terms)
      if (Tm.isVar())
        BoundVar[Tm.Variable] = true;
  }

  const HeadAtom &H = R.Head;
  Pl.Head.Pred = H.Pred;
  Pl.Head.Relational = P.predicate(H.Pred).isRelational();
  for (const Term &T : H.KeyTerms)
    Pl.Head.KeyOps.push_back(operandOf(T));
  if (H.LastFn) {
    Pl.Head.HasFn = true;
    Pl.Head.Fn = *H.LastFn;
    for (const Term &T : H.FnArgs)
      Pl.Head.FnArgs.push_back(operandOf(T));
  } else {
    Pl.Head.LastOp = operandOf(H.LastTerm);
  }
  return Pl;
}

} // namespace

PlanLibrary::PlanLibrary(const Program &P, const std::vector<Rule> &Prepared,
                         bool UseIndexes) {
  Normal.resize(Prepared.size());
  HeadBound.resize(Prepared.size());
  for (uint32_t RI = 0; RI < Prepared.size(); ++RI) {
    const Rule &R = Prepared[RI];
    Normal[RI].resize(R.Body.size() + 1);
    HeadBound[RI].resize(R.Body.size() + 1);

    // The rederive family's pre-bound set: variables the head key tuple
    // grounds. For relational heads the key includes the last column
    // (unless it is function-computed, which cannot be inverted).
    std::vector<bool> NoBound;
    std::vector<bool> HeadVars(R.NumVars, false);
    for (const Term &T : R.Head.KeyTerms)
      if (T.isVar())
        HeadVars[T.Variable] = true;
    if (P.predicate(R.Head.Pred).isRelational() && !R.Head.LastFn &&
        R.Head.LastTerm.isVar())
      HeadVars[R.Head.LastTerm.Variable] = true;

    for (int Driver = -1; Driver < static_cast<int>(R.Body.size());
         ++Driver) {
      if (Driver >= 0) {
        const auto *A = std::get_if<BodyAtom>(&R.Body[Driver]);
        if (!A || A->Negated)
          continue; // only positive atoms drive
      }
      RulePlan &N = Normal[RI][static_cast<size_t>(Driver + 1)];
      RulePlan &HB = HeadBound[RI][static_cast<size_t>(Driver + 1)];
      N = compilePlan(P, R, RI, Driver, NoBound,
                      /*DriverIsDelta=*/Driver >= 0, UseIndexes);
      HB = compilePlan(P, R, RI, Driver, HeadVars,
                       /*DriverIsDelta=*/false, UseIndexes);
      TotalSteps += N.Steps.size() + HB.Steps.size();
    }
  }
}
