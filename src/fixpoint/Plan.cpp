//===- fixpoint/Plan.cpp - Rule plan compilation and cost model -----------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Plan.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace flix;
using namespace flix::plan;

namespace {

Operand operandOf(const Term &T) {
  Operand O;
  O.IsConst = !T.isVar();
  if (O.IsConst)
    O.Const = T.Constant;
  else
    O.Var = T.Variable;
  return O;
}

/// The frozen driver-first order (eval::buildOrder) as body indices.
SmallVector<uint32_t, 8> defaultOrder(const Rule &R, int Driver) {
  SmallVector<uint32_t, 8> O;
  if (Driver >= 0)
    O.push_back(static_cast<uint32_t>(Driver));
  for (uint32_t I = 0; I < R.Body.size(); ++I)
    if (static_cast<int>(I) != Driver)
      O.push_back(I);
  return O;
}

bool sameOrder(std::span<const uint32_t> A, std::span<const uint32_t> B) {
  return A.size() == B.size() && std::equal(A.begin(), A.end(), B.begin());
}

//===----------------------------------------------------------------------===//
// Cost-model helpers: order validity, boundness evolution, per-element
// estimates. The boundness rules are the same ones the compiler simulates
// (positive atoms bind all their variable terms including the lattice
// column, binder patterns bind, filters and negations bind nothing), so an
// order the chooser accepts is exactly an order the compiler can compile.
//===----------------------------------------------------------------------===//

/// True if \p E can run once the variables in \p BoundVar are bound:
/// filters and binders need their arguments ground, negated atoms their
/// key terms; positive atoms can always run (via scan at worst). The
/// original body order is always a valid placement witness (validation
/// checked groundness along it), so a chooser that always considers the
/// earliest unplaced element can never wedge.
bool placeableElem(const BodyElem &E, const std::vector<bool> &BoundVar) {
  auto ArgsBound = [&](const auto &Terms) {
    for (const Term &T : Terms)
      if (T.isVar() && !BoundVar[T.Variable])
        return false;
    return true;
  };
  if (const auto *Fl = std::get_if<BodyFilter>(&E))
    return ArgsBound(Fl->Args);
  if (const auto *B = std::get_if<BodyBinder>(&E))
    return ArgsBound(B->Args);
  const auto &A = std::get<BodyAtom>(E);
  if (A.Negated)
    return ArgsBound(A.Terms);
  return true;
}

/// Marks the variables \p E binds.
void bindElem(const BodyElem &E, std::vector<bool> &BoundVar) {
  if (std::get_if<BodyFilter>(&E))
    return;
  if (const auto *B = std::get_if<BodyBinder>(&E)) {
    for (VarId V : B->Pattern)
      BoundVar[V] = true;
    return;
  }
  const auto &A = std::get<BodyAtom>(E);
  if (A.Negated)
    return;
  for (const Term &T : A.Terms)
    if (T.isVar())
      BoundVar[T.Variable] = true;
}

/// Cost/fanout of one body element under \p BoundVar. Driver openings are
/// handled by the caller (their fanout — the delta size — scales every
/// candidate order of the same (rule, driver) equally, so it cancels).
AccessEstimate elemEstimate(const Program &P, const BodyElem &E,
                            const std::vector<bool> &BoundVar,
                            const StatsVec &Stats, bool UseIndexes) {
  if (std::get_if<BodyFilter>(&E))
    return {0.5, 1.0}; // one extern call; only ever prunes
  if (std::get_if<BodyBinder>(&E))
    return {4.0, 4.0}; // returned set size is unknowable: small constant
  const auto &A = std::get<BodyAtom>(E);
  if (A.Negated)
    return {1.0, 1.0}; // one primary lookup; passes or fails
  unsigned KA = P.predicate(A.Pred).keyArity();
  uint64_t Mask = 0;
  for (unsigned I = 0; I < KA; ++I) {
    const Term &Tm = A.Terms[I];
    if (!Tm.isVar() || BoundVar[Tm.Variable])
      Mask |= uint64_t(1) << I;
  }
  uint64_t Full = KA == 0 ? 0 : (uint64_t(1) << KA) - 1;
  static const PredStats Empty;
  const PredStats &St = A.Pred < Stats.size() ? Stats[A.Pred] : Empty;
  return estimateAccess(St, Mask, Full, UseIndexes);
}

/// Cost and expected full-match rows of one complete order (Cost = total
/// step cost, Fanout = product of fanouts = estimated matches).
AccessEstimate orderEstimate(const Program &P, const Rule &R, int Driver,
                             bool DriverIsDelta,
                             std::span<const uint32_t> BodyOrder,
                             const StatsVec &Stats, bool UseIndexes,
                             const std::vector<bool> &PreBound) {
  std::vector<bool> BoundVar = PreBound;
  BoundVar.resize(R.NumVars, false);
  double Cost = 0, Mult = 1;
  for (size_t Pos = 0; Pos < BodyOrder.size(); ++Pos) {
    const BodyElem &E = R.Body[BodyOrder[Pos]];
    if (Pos == 0 && Driver >= 0 && DriverIsDelta) {
      bindElem(E, BoundVar); // delta driver: normalized to fanout 1
      continue;
    }
    AccessEstimate A = elemEstimate(P, E, BoundVar, Stats, UseIndexes);
    Cost += Mult * A.Cost;
    Mult *= A.Fanout;
    bindElem(E, BoundVar);
  }
  return {Cost, Mult};
}

} // namespace

//===----------------------------------------------------------------------===//
// Cost model (public surface; unit-tested by PlannerTest on hand-built
// statistics)
//===----------------------------------------------------------------------===//

AccessEstimate flix::plan::estimateAccess(const PredStats &St, uint64_t Mask,
                                          uint64_t Full, bool UseIndexes) {
  // Optimistic one-row floor: derived predicates are planned before they
  // hold anything, and a hard zero would zero out every downstream term,
  // making all orders tie exactly when the initial choose runs.
  double N = std::max(1.0, St.LiveRows);
  if (Mask == Full)
    return {1.0, 1.0}; // primary lookup (covers key arity 0)
  if (Mask == 0 || !UseIndexes)
    return {N, N}; // full scan: every row is a candidate
  if (const Table::IndexStats *IS = St.forMask(Mask)) {
    // Average bucket size of the existing index: distinct projected keys
    // are exactly the bucket count the table maintains.
    double Avg = N / static_cast<double>(std::max<size_t>(IS->Buckets, 1));
    return {std::max(1.0, Avg), Avg};
  }
  // No index (yet) for this mask: assume each bound column cuts the
  // candidate set by ~sqrt(N). Selective enough that probing a large
  // relation on a bound key beats scanning it (the old fixed 10% guess
  // made a 20k-row probe look like a 2k-row fanout, drowning real
  // wins), pessimistic enough that a measured index beats the guess.
  double Est = N;
  for (uint64_t M = Mask; M; M &= M - 1)
    Est /= std::sqrt(N);
  return {std::max(1.0, Est), Est};
}

void flix::plan::gatherStats(std::span<const std::unique_ptr<Table>> Tables,
                             StatsVec &Out) {
  Out.clear();
  Out.resize(Tables.size());
  for (size_t I = 0; I < Tables.size(); ++I) {
    if (!Tables[I])
      continue;
    Out[I].LiveRows = static_cast<double>(Tables[I]->liveSize());
    std::vector<Table::IndexStats> Idx;
    Tables[I]->collectIndexStats(Idx);
    for (const Table::IndexStats &S : Idx)
      Out[I].Indexes.push_back(S);
  }
}

double flix::plan::orderCost(const Program &P, const Rule &R, int Driver,
                             bool DriverIsDelta,
                             std::span<const uint32_t> BodyOrder,
                             const StatsVec &Stats, bool UseIndexes,
                             const std::vector<bool> &PreBound) {
  return orderEstimate(P, R, Driver, DriverIsDelta, BodyOrder, Stats,
                       UseIndexes, PreBound)
      .Cost;
}

SmallVector<uint32_t, 8> flix::plan::chooseOrder(
    const Program &P, const Rule &R, int Driver, bool DriverIsDelta,
    const StatsVec &Stats, bool UseIndexes,
    const std::vector<bool> &PreBound) {
  SmallVector<uint32_t, 8> Free;
  for (uint32_t I = 0; I < R.Body.size(); ++I)
    if (static_cast<int>(I) != Driver)
      Free.push_back(I);

  std::vector<bool> BoundVar = PreBound;
  BoundVar.resize(R.NumVars, false);

  SmallVector<uint32_t, 8> Order;
  double Cost0 = 0, Mult0 = 1;
  if (Driver >= 0) {
    Order.push_back(static_cast<uint32_t>(Driver));
    if (!DriverIsDelta) {
      // Rederive family: the fronted atom opens with a real access path.
      AccessEstimate A =
          elemEstimate(P, R.Body[Driver], BoundVar, Stats, UseIndexes);
      Cost0 = A.Cost;
      Mult0 = A.Fanout;
    }
    bindElem(R.Body[Driver], BoundVar);
  }

  if (Free.size() > 6) {
    // Large body: greedy min-fanout (smallest intermediate result first),
    // cost then body index as tie-breaks. Strict < keeps the lowest body
    // index on equal statistics, so the choice is deterministic.
    std::vector<bool> Used(Free.size(), false);
    for (size_t Left = Free.size(); Left > 0; --Left) {
      size_t BestI = SIZE_MAX;
      AccessEstimate BestA{0, 0};
      for (size_t I = 0; I < Free.size(); ++I) {
        if (Used[I])
          continue;
        const BodyElem &E = R.Body[Free[I]];
        if (!placeableElem(E, BoundVar))
          continue;
        AccessEstimate A = elemEstimate(P, E, BoundVar, Stats, UseIndexes);
        if (BestI == SIZE_MAX || A.Fanout < BestA.Fanout ||
            (A.Fanout == BestA.Fanout && A.Cost < BestA.Cost)) {
          BestI = I;
          BestA = A;
        }
      }
      assert(BestI != SIZE_MAX && "no placeable element; validation missed "
                                  "an unbound filter/binder/negation");
      Used[BestI] = true;
      Order.push_back(Free[BestI]);
      bindElem(R.Body[Free[BestI]], BoundVar);
    }
    return Order;
  }

  // Small body: branch-and-bound over every valid interleaving. DFS visits
  // candidates in ascending body index and only strict improvements
  // replace the incumbent, so among cost-ties the lexicographically
  // smallest order wins — deterministic for equal statistics.
  SmallVector<uint32_t, 8> Best;
  double BestCost = std::numeric_limits<double>::infinity();
  SmallVector<uint32_t, 8> Cur = Order;
  std::vector<bool> Used(Free.size(), false);
  auto Rec = [&](auto &&Self, double Cost, double Mult,
                 std::vector<bool> &BV, size_t Placed) -> void {
    if (Cost >= BestCost)
      return; // cost only grows along a prefix
    if (Placed == Free.size()) {
      BestCost = Cost;
      Best = Cur;
      return;
    }
    for (size_t I = 0; I < Free.size(); ++I) {
      if (Used[I])
        continue;
      const BodyElem &E = R.Body[Free[I]];
      if (!placeableElem(E, BV))
        continue;
      AccessEstimate A = elemEstimate(P, E, BV, Stats, UseIndexes);
      std::vector<bool> BV2 = BV;
      bindElem(E, BV2);
      Used[I] = true;
      Cur.push_back(Free[I]);
      Self(Self, Cost + Mult * A.Cost, Mult * A.Fanout, BV2, Placed + 1);
      Cur.pop_back();
      Used[I] = false;
    }
  };
  Rec(Rec, Cost0, Mult0, BoundVar, 0);
  assert(Best.size() == R.Body.size() && "no valid order found");
  return Best;
}

namespace {

/// Compiles one (rule, driver) plan along \p OrderIdx (body indices; the
/// driver element first when Driver >= 0). \p PreBound marks variables
/// bound before the body starts (the rederive family's head-key
/// variables). \p DriverIsDelta selects a StepKind::Driver opening step
/// (delta rounds) vs a normal access path for the fronted atom (rederive).
///
/// Boundness is simulated exactly as the legacy recursive walk (and the
/// static index analyses) evolve it: positive atoms bind all their
/// variable terms including the lattice column, binder patterns bind,
/// negated atoms and filters bind nothing. Along a fixed order that
/// simulation is exact, so every runtime Bound[] check of the legacy walk
/// becomes a compile-time ColOp/LatOp choice. Any order in which filters,
/// binders and negations run only after their arguments are bound
/// compiles to an equivalent plan: ⊔-confluence (§3.7) makes the fixpoint
/// independent of join order, which is what the plan-equivalence harness
/// (PlanDifferentialTest) checks end to end.
RulePlan compilePlan(const Program &P, const Rule &R, uint32_t RuleIdx,
                     int Driver, const std::vector<bool> &PreBound,
                     bool DriverIsDelta, bool UseIndexes,
                     std::span<const uint32_t> OrderIdx) {
  RulePlan Pl;
  Pl.RuleIdx = RuleIdx;
  Pl.Driver = Driver;
  Pl.NumVars = R.NumVars;
  Pl.Valid = true;

  std::vector<bool> BoundVar = PreBound;
  BoundVar.resize(R.NumVars, false);

  assert(OrderIdx.size() == R.Body.size() && "order must cover the body");
  assert((!(Driver >= 0) || OrderIdx[0] == static_cast<uint32_t>(Driver)) &&
         "driver element must open the order");
  SmallVector<const BodyElem *, 8> Order;
  for (uint32_t BI : OrderIdx) {
    Order.push_back(&R.Body[BI]);
    Pl.BodyOrder.push_back(BI);
  }

  for (size_t Pos = 0; Pos < Order.size(); ++Pos) {
    const BodyElem &E = *Order[Pos];

    if (const auto *Fl = std::get_if<BodyFilter>(&E)) {
      // Fuse onto the preceding step: it runs at the same point of the
      // search tree (after that step's candidate matched), and placement
      // guarantees its arguments are bound there. A leading filter gets a
      // one-shot step of its own.
      Guard G;
      G.Fn = Fl->Fn;
      for (const Term &T : Fl->Args)
        G.Args.push_back(operandOf(T));
      if (Pl.Steps.empty()) {
        Step S;
        S.Kind = StepKind::Filter;
        S.Guards.push_back(std::move(G));
        Pl.Steps.push_back(std::move(S));
      } else {
        Pl.Steps.back().Guards.push_back(std::move(G));
      }
      continue;
    }

    if (const auto *B = std::get_if<BodyBinder>(&E)) {
      Step S;
      S.Kind = StepKind::Binder;
      S.Fn = B->Fn;
      for (const Term &T : B->Args)
        S.Args.push_back(operandOf(T));
      for (size_t I = 0; I < B->Pattern.size(); ++I) {
        VarId V = B->Pattern[I];
        ColTest Ct;
        Ct.Col = static_cast<uint8_t>(I);
        Ct.Var = V;
        if (BoundVar[V]) {
          Ct.Op = ColOp::CheckVar;
        } else {
          Ct.Op = ColOp::Bind;
          BoundVar[V] = true; // later duplicate slots become checks
        }
        S.Pattern.push_back(Ct);
      }
      Pl.Steps.push_back(std::move(S));
      continue;
    }

    const auto &A = std::get<BodyAtom>(E);
    const PredicateDecl &D = P.predicate(A.Pred);
    unsigned KA = D.keyArity();

    if (A.Negated) {
      // Ground by placement; binds nothing (lockstep with the analyses).
      Step S;
      S.Kind = StepKind::Negation;
      S.Pred = A.Pred;
      for (unsigned I = 0; I < KA; ++I)
        S.ProjOps.push_back(operandOf(A.Terms[I]));
      Pl.Steps.push_back(std::move(S));
      continue;
    }

    Step S;
    S.Pred = A.Pred;
    S.Lat = D.isRelational() ? nullptr : D.Lat;

    // Full column tests with sequential in-atom boundness: the first
    // occurrence of a variable binds, later occurrences (in this atom)
    // check — exactly the legacy matchAtomRow behavior.
    {
      std::vector<bool> InAtom = BoundVar;
      for (unsigned I = 0; I < KA; ++I) {
        const Term &Tm = A.Terms[I];
        ColTest Ct;
        Ct.Col = static_cast<uint8_t>(I);
        if (!Tm.isVar()) {
          Ct.Op = ColOp::CheckConst;
          Ct.Const = Tm.Constant;
        } else if (InAtom[Tm.Variable]) {
          Ct.Op = ColOp::CheckVar;
          Ct.Var = Tm.Variable;
        } else {
          Ct.Op = ColOp::Bind;
          Ct.Var = Tm.Variable;
          InAtom[Tm.Variable] = true;
        }
        S.Cols.push_back(Ct);
      }
      if (!D.isRelational()) {
        // The lattice column sees the key columns' binds (legacy order).
        const Term &Lt = A.Terms[KA];
        if (!Lt.isVar()) {
          S.LOp = LatOp::CheckConstLeq;
          S.LatConst = Lt.Constant;
        } else if (InAtom[Lt.Variable]) {
          S.LOp = LatOp::GlbRebind;
          S.LatVar = Lt.Variable;
        } else {
          S.LOp = LatOp::BindVar;
          S.LatVar = Lt.Variable;
        }
      }
    }

    if (Pos == 0 && Driver >= 0 && DriverIsDelta) {
      S.Kind = StepKind::Driver;
    } else {
      // Access-path mask from pre-atom boundness — identical to the
      // legacy evalAtom mask and the static index analyses.
      uint64_t Mask = 0;
      for (unsigned I = 0; I < KA; ++I) {
        const Term &Tm = A.Terms[I];
        if (!Tm.isVar() || BoundVar[Tm.Variable]) {
          Mask |= uint64_t(1) << I;
          S.ProjOps.push_back(operandOf(Tm));
        }
      }
      uint64_t Full = KA == 0 ? 0 : (uint64_t(1) << KA) - 1;
      S.Mask = Mask;
      if (Mask == Full) {
        S.Kind = StepKind::Lookup; // exact key: no residual column tests
      } else if (Mask != 0 && UseIndexes) {
        S.Kind = StepKind::Probe;
        // Bucket rows match the masked columns exactly (the projection
        // tuple is hash-consed), so the probe path only runs the tests of
        // unmasked columns.
        for (const ColTest &Ct : S.Cols)
          if (!(Mask & (uint64_t(1) << Ct.Col)))
            S.Binds.push_back(Ct);
      } else {
        S.Kind = StepKind::Scan;
        S.Mask = 0;
        S.ProjOps.clear();
      }
    }
    Pl.Steps.push_back(std::move(S));

    // After the atom, all its variable terms (including the lattice
    // column) are bound.
    for (const Term &Tm : A.Terms)
      if (Tm.isVar())
        BoundVar[Tm.Variable] = true;
  }

  const HeadAtom &H = R.Head;
  Pl.Head.Pred = H.Pred;
  Pl.Head.Relational = P.predicate(H.Pred).isRelational();
  for (const Term &T : H.KeyTerms)
    Pl.Head.KeyOps.push_back(operandOf(T));
  if (H.LastFn) {
    Pl.Head.HasFn = true;
    Pl.Head.Fn = *H.LastFn;
    for (const Term &T : H.FnArgs)
      Pl.Head.FnArgs.push_back(operandOf(T));
  } else {
    Pl.Head.LastOp = operandOf(H.LastTerm);
  }
  return Pl;
}

/// One (rule, driver, family) replan decision: recompiles \p Pl with the
/// chosen order when its current cost exceeds Threshold × the best
/// candidate's. Refreshes the stored estimates either way, so the next
/// check compares against this snapshot.
bool replanOne(const Program &P, bool UseIndexes, RulePlan &Pl,
               const Rule &R, uint32_t RuleIdx, int Driver,
               bool DriverIsDelta, const std::vector<bool> &PreBound,
               const StatsVec &Stats, double Threshold) {
  SmallVector<uint32_t, 8> Best = chooseOrder(
      P, R, Driver, DriverIsDelta, Stats, UseIndexes, PreBound);
  std::span<const uint32_t> BestView(Best.data(), Best.size());
  std::span<const uint32_t> CurView(Pl.BodyOrder.data(),
                                    Pl.BodyOrder.size());
  AccessEstimate CurE = orderEstimate(P, R, Driver, DriverIsDelta, CurView,
                                      Stats, UseIndexes, PreBound);
  if (sameOrder(BestView, CurView)) {
    Pl.EstCost = CurE.Cost;
    Pl.EstRows = CurE.Fanout;
    return false;
  }
  AccessEstimate BestE = orderEstimate(P, R, Driver, DriverIsDelta,
                                       BestView, Stats, UseIndexes, PreBound);
  // Hysteresis: keep the current plan unless it is Threshold× worse than
  // the best candidate (1e-9 guards float ties).
  if (CurE.Cost <= Threshold * BestE.Cost + 1e-9) {
    Pl.EstCost = CurE.Cost;
    Pl.EstRows = CurE.Fanout;
    return false;
  }
  Pl = compilePlan(P, R, RuleIdx, Driver, PreBound, DriverIsDelta,
                   UseIndexes, BestView);
  Pl.EstCost = BestE.Cost;
  Pl.EstRows = BestE.Fanout;
  return true;
}

} // namespace

PlanLibrary::PlanLibrary(const Program &P, const std::vector<Rule> &Prepared,
                         bool UseIndexes)
    : Prog(&P), Rules(&Prepared), UseIndexes(UseIndexes) {
  Normal.resize(Prepared.size());
  HeadBound.resize(Prepared.size());
  HeadVarsByRule.resize(Prepared.size());
  for (uint32_t RI = 0; RI < Prepared.size(); ++RI) {
    const Rule &R = Prepared[RI];
    Normal[RI].resize(R.Body.size() + 1);
    HeadBound[RI].resize(R.Body.size() + 1);

    // The rederive family's pre-bound set: variables the head key tuple
    // grounds. For relational heads the key includes the last column
    // (unless it is function-computed, which cannot be inverted).
    std::vector<bool> NoBound;
    std::vector<bool> &HeadVars = HeadVarsByRule[RI];
    HeadVars.assign(R.NumVars, false);
    for (const Term &T : R.Head.KeyTerms)
      if (T.isVar())
        HeadVars[T.Variable] = true;
    if (P.predicate(R.Head.Pred).isRelational() && !R.Head.LastFn &&
        R.Head.LastTerm.isVar())
      HeadVars[R.Head.LastTerm.Variable] = true;

    for (int Driver = -1; Driver < static_cast<int>(R.Body.size());
         ++Driver) {
      if (Driver >= 0) {
        const auto *A = std::get_if<BodyAtom>(&R.Body[Driver]);
        if (!A || A->Negated)
          continue; // only positive atoms drive
      }
      RulePlan &N = Normal[RI][static_cast<size_t>(Driver + 1)];
      RulePlan &HB = HeadBound[RI][static_cast<size_t>(Driver + 1)];
      SmallVector<uint32_t, 8> Def = defaultOrder(R, Driver);
      std::span<const uint32_t> DefView(Def.data(), Def.size());
      N = compilePlan(P, R, RI, Driver, NoBound,
                      /*DriverIsDelta=*/Driver >= 0, UseIndexes, DefView);
      HB = compilePlan(P, R, RI, Driver, HeadVars,
                       /*DriverIsDelta=*/false, UseIndexes, DefView);
      TotalSteps += N.Steps.size() + HB.Steps.size();
    }
  }
}

PlanLibrary::ReplanResult
PlanLibrary::replanFromStats(const StatsVec &Stats, double Threshold) {
  ReplanResult Res;
  // Drift between this snapshot and the previous one: how far the shapes
  // the current plans were estimated against have moved
  // (SolveStats::EstimatedVsActualRows).
  double Div = 0;
  for (size_t I = 0; I < Stats.size(); ++I) {
    double Prev = I < LastStats.size() ? LastStats[I].LiveRows : 0.0;
    Div += std::fabs(Stats[I].LiveRows - Prev);
  }
  Res.RowsDivergence = static_cast<uint64_t>(Div);
  LastStats = Stats;

  static const std::vector<bool> NoBound;
  for (uint32_t RI = 0; RI < Rules->size(); ++RI) {
    const Rule &R = (*Rules)[RI];
    for (int Driver = -1; Driver < static_cast<int>(R.Body.size());
         ++Driver) {
      RulePlan &N = Normal[RI][static_cast<size_t>(Driver + 1)];
      if (!N.Valid)
        continue;
      RulePlan &HB = HeadBound[RI][static_cast<size_t>(Driver + 1)];
      bool Changed =
          replanOne(*Prog, UseIndexes, N, R, RI, Driver,
                    /*DriverIsDelta=*/Driver >= 0, NoBound, Stats, Threshold);
      Changed |= replanOne(*Prog, UseIndexes, HB, R, RI, Driver,
                           /*DriverIsDelta=*/false, HeadVarsByRule[RI],
                           Stats, Threshold);
      Res.Replanned += Changed;
    }
  }
  if (Res.Replanned)
    recountDerived();
  return Res;
}

void PlanLibrary::recountDerived() {
  TotalSteps = 0;
  CostBased = 0;
  for (uint32_t RI = 0; RI < Normal.size(); ++RI) {
    const Rule &R = (*Rules)[RI];
    for (size_t D = 0; D < Normal[RI].size(); ++D) {
      const RulePlan &N = Normal[RI][D];
      if (!N.Valid)
        continue;
      const RulePlan &HB = HeadBound[RI][D];
      TotalSteps += N.Steps.size() + HB.Steps.size();
      SmallVector<uint32_t, 8> Def =
          defaultOrder(R, static_cast<int>(D) - 1);
      std::span<const uint32_t> DefView(Def.data(), Def.size());
      if (!sameOrder({N.BodyOrder.data(), N.BodyOrder.size()}, DefView) ||
          !sameOrder({HB.BodyOrder.data(), HB.BodyOrder.size()}, DefView))
        ++CostBased;
    }
  }
}

void PlanLibrary::wantedIndexes(
    std::vector<std::vector<uint64_t>> &MasksByPred) const {
  auto Collect = [&](const std::vector<std::vector<RulePlan>> &Family) {
    for (const std::vector<RulePlan> &PerRule : Family)
      for (const RulePlan &Pl : PerRule) {
        if (!Pl.Valid)
          continue;
        for (const Step &S : Pl.Steps)
          if (S.Kind == StepKind::Probe)
            MasksByPred[S.Pred].push_back(S.Mask);
      }
  };
  Collect(Normal);
  Collect(HeadBound);
  for (std::vector<uint64_t> &Masks : MasksByPred) {
    std::sort(Masks.begin(), Masks.end());
    Masks.erase(std::unique(Masks.begin(), Masks.end()), Masks.end());
  }
}
