//===- fixpoint/Plan.h - Compiled rule join plans -------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ahead-of-time compilation of rule bodies into flat, array-based join
/// plans, plus a memo cache for pure external functions. Together they
/// attack the two §4.5 hot spots that remain after hash-consing: the
/// per-row interpretive dispatch of the recursive
/// evalElems/evalAtom/matchAtomRow walk, and repeated re-evaluation of
/// pure transfer/filter functions.
///
/// A RulePlan is compiled once per (prepared rule, driver position) after
/// body reordering. Each Step pre-resolves everything the recursive walk
/// recomputed per row: the access path (primary lookup, indexed probe with
/// its bound-column mask, or full scan), per-column operations (constant
/// test, bound-variable test, or first-occurrence bind), the lattice-
/// column operation (ground ⊑ test, bind, or ⊓-rebind), and filter guards
/// fused onto the step after which their arguments are bound. Boundness is
/// *static* along an evaluation order — the same simulation the parallel
/// solver's index analysis runs — so every per-row branch of the legacy
/// walk becomes a precomputed opcode.
///
/// PlanExecutor runs a plan with an explicit cursor stack instead of
/// recursion. It is templated over a small engine policy so the sequential
/// Solver (in-place joins), the parallel workers (buffered derivations,
/// sub-task spilling) and the incremental workers (premise capture)
/// share one executor; see the engine concept below.
///
/// ExternMemo caches pure external-function results keyed on hash-consed
/// Value handles. Soundness: the paper requires transfer and filter
/// functions to be pure (§2.3 "compositions of monotone and pure
/// functions"), so f(args) is uniquely determined by the argument handles
/// and caching cannot change the least fixed point. The cache is
/// lock-sharded; a racing miss may compute the same result twice, which is
/// benign for a pure function.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_FIXPOINT_PLAN_H
#define FLIX_FIXPOINT_PLAN_H

#include "fixpoint/EvalUtil.h"
#include "fixpoint/Program.h"
#include "fixpoint/Table.h"

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace flix::plan {

/// Per-key-column operation of one step, decided at compile time from the
/// static boundness of the column's term.
enum class ColOp : uint8_t {
  CheckConst, ///< row column must equal Const
  CheckVar,   ///< row column must equal Env[Var]
  Bind,       ///< first occurrence: bind Env[Var] to the row column
};

struct ColTest {
  ColOp Op;
  uint8_t Col; ///< key column index
  VarId Var = 0;
  Value Const;
};

/// Lattice-column operation (non-relational atoms only).
enum class LatOp : uint8_t {
  None,          ///< relational atom: no lattice column
  CheckConstLeq, ///< ground term c: require c ⊑ row value (§3.2 truth)
  BindVar,       ///< statically unbound var: bind to the row value
  GlbRebind,     ///< statically bound var: rebind to Env[v] ⊓ row value
};

/// A pre-resolved argument: a constant or an environment slot.
struct Operand {
  bool IsConst;
  VarId Var = 0;
  Value Const;
};

/// A filter application fused onto the step after which its arguments are
/// all bound (its position in the evaluation order).
struct Guard {
  FnId Fn;
  SmallVector<Operand, 4> Args;
};

enum class StepKind : uint8_t {
  Driver,   ///< rows supplied by the engine (ΔP scan); full column tests
  Lookup,   ///< all key columns bound: one primary lookup
  Probe,    ///< partial mask: indexed probe, full-scan fallback
  Scan,     ///< nothing usable bound (or indexes disabled): full scan
  /// Ground negated atom: succeed once iff the cell is absent. Negation
  /// steps always probe the *current* table — correct even during the
  /// incremental engine's stratum-local DRed, because strata are
  /// processed in order and every negated predicate lives strictly below
  /// the rules that negate it, so its table is final (all net inserts
  /// and retracts applied) before any Negation step of this update reads
  /// it. This is why neither a "pre-batch view" nor a negated-driver
  /// plan family exists: insertion deltas for `not P` are driven through
  /// Solver::evalNegationDriven on the legacy recursive path instead.
  Negation,
  Binder,   ///< `pat <- f(args)`: iterate the returned set
  Filter,   ///< leading filter with no preceding step to fuse onto
};

struct Step {
  StepKind Kind;
  PredId Pred = 0;
  /// Bound-column mask for Lookup/Probe (the same mask the static index
  /// analyses register, so probes always hit pre-built indexes).
  uint64_t Mask = 0;
  /// Lattice of the atom's value column; nullptr for relational atoms.
  const Lattice *Lat = nullptr;
  /// Full per-column tests, used on paths that see arbitrary rows: driver
  /// rows, full scans, and the probe fallback.
  SmallVector<ColTest, 4> Cols;
  /// Reduced tests for the indexed-probe path: bucket rows match the
  /// masked columns exactly (the projection tuple is hash-consed), so only
  /// unmasked columns need work. Empty for Lookup — the row was found by
  /// its exact key.
  SmallVector<ColTest, 4> Binds;
  LatOp LOp = LatOp::None;
  VarId LatVar = 0;
  Value LatConst;
  /// Operands of the probe projection / lookup key / negation key, in
  /// column order.
  SmallVector<Operand, 4> ProjOps;
  /// Binder payload: Fn(Args) returning a set destructured into Pattern
  /// (ColOp::Bind / CheckVar per slot; Col is the tuple element index).
  FnId Fn = 0;
  SmallVector<Operand, 4> Args;
  SmallVector<ColTest, 2> Pattern;
  /// Filters to run after this step matches (in body order).
  SmallVector<Guard, 1> Guards;
};

/// Precomputed head derivation: key/argument slots resolved to operands.
struct HeadPlan {
  PredId Pred = 0;
  bool Relational = false;
  SmallVector<Operand, 4> KeyOps;
  bool HasFn = false;
  FnId Fn = 0;
  SmallVector<Operand, 4> FnArgs;
  Operand LastOp{};
};

/// One compiled (rule, driver) evaluation: the flat step array replacing
/// the recursive body walk, plus the head recipe.
struct RulePlan {
  uint32_t RuleIdx = 0;
  int32_t Driver = -1;
  bool Valid = false; ///< false for driver slots that are not positive atoms
  uint32_t NumVars = 0;
  SmallVector<Step, 8> Steps;
  HeadPlan Head;
  /// Body-element evaluation order this plan was compiled with, as body
  /// indices (the driver element first when Driver >= 0). The frozen
  /// driver-first order at construction; replanFromStats may replace it.
  SmallVector<uint32_t, 8> BodyOrder;
  /// Cost-model estimates recorded at the last (re)plan: total step cost
  /// and expected full-match rows. Fed back into SolveStats as
  /// EstimatedVsActualRows drift at the next adaptive check.
  double EstCost = 0;
  double EstRows = 0;
};

//===----------------------------------------------------------------------===//
// Cost model
//===----------------------------------------------------------------------===//

/// Per-predicate statistics snapshot the cost model plans against: the
/// live row count plus the cheap per-index statistics the tables maintain
/// (bucket counts ≈ distinct projected keys, max bucket size). Gathered at
/// solve start and between semi-naive rounds; never during an eval phase.
struct PredStats {
  double LiveRows = 0;
  SmallVector<Table::IndexStats, 4> Indexes;
  const Table::IndexStats *forMask(uint64_t Mask) const {
    for (const Table::IndexStats &S : Indexes)
      if (S.Mask == Mask)
        return &S;
    return nullptr;
  }
};
using StatsVec = std::vector<PredStats>;

/// Snapshots \p Tables (indexed by PredId) into \p Out.
void gatherStats(std::span<const std::unique_ptr<Table>> Tables,
                 StatsVec &Out);

/// Cost/cardinality estimate of one table access: \p Cost is rows touched
/// to produce the matches, \p Fanout the expected number of matches (the
/// multiplier applied to every later step).
struct AccessEstimate {
  double Cost;
  double Fanout;
};

/// Estimates accessing a predicate with \p Mask of its \p Full key columns
/// bound. Fully bound => primary lookup (cost 1, ≤1 row). Partially bound
/// with an existing index => average bucket size (LiveRows / buckets).
/// Partially bound without statistics => each bound column is assumed
/// ~10× selective. Unbound (or indexes disabled) => full scan.
AccessEstimate estimateAccess(const PredStats &St, uint64_t Mask,
                              uint64_t Full, bool UseIndexes);

/// Total estimated cost of evaluating \p R's body in \p BodyOrder (body
/// indices): Σ over steps of (product of preceding fanouts) × step cost.
/// When \p Driver >= 0 and \p DriverIsDelta, the fronted driver element
/// contributes fanout 1 — delta size scales all candidate orders of the
/// same (rule, driver) equally, so it cancels in comparisons. \p PreBound
/// marks variables bound before the body starts (rederive plans).
double orderCost(const Program &P, const Rule &R, int Driver,
                 bool DriverIsDelta, std::span<const uint32_t> BodyOrder,
                 const StatsVec &Stats, bool UseIndexes,
                 const std::vector<bool> &PreBound);

/// Chooses a minimal-cost valid evaluation order for (\p R, \p Driver):
/// branch-and-bound over all valid interleavings for small bodies,
/// greedy min-fanout otherwise. The driver element is always first;
/// filters/binders/negations are only placed once their arguments are
/// bound. Deterministic: ties break toward the lowest body index, so
/// equal statistics always reproduce the same order.
SmallVector<uint32_t, 8> chooseOrder(const Program &P, const Rule &R,
                                     int Driver, bool DriverIsDelta,
                                     const StatsVec &Stats, bool UseIndexes,
                                     const std::vector<bool> &PreBound);

/// Compiles and owns the plans of one prepared rule set. Two families:
///
///   * plan(RuleIdx, Driver): the normal delta-driven family. Driver == -1
///     is plain first-to-last evaluation (round 0 / naive); Driver >= 0
///     makes that body atom a StepKind::Driver step fed by the engine.
///   * headBoundPlan(RuleIdx, Driver): the incremental engine's rederive
///     family, compiled with every head-key variable pre-bound; Driver
///     >= 0 moves that atom first but opens with a normal access path
///     (lookup/probe/scan), not a Driver step.
///
/// The compiler runs the same boundness simulation as the parallel
/// solver's computeWantedIndexes / the incremental solver's
/// prepareWorkerIndexes (negated atoms bind nothing, positive atoms bind
/// every variable term including the lattice column, binder patterns bind,
/// filters bind nothing), so the probe masks of the compiled steps are
/// exactly the masks those analyses pre-build.
class PlanLibrary {
public:
  PlanLibrary(const Program &P, const std::vector<Rule> &Prepared,
              bool UseIndexes);

  const RulePlan &plan(uint32_t RuleIdx, int Driver) const {
    const RulePlan &Pl = Normal[RuleIdx][static_cast<size_t>(Driver + 1)];
    assert(Pl.Valid && "no plan for this driver position");
    return Pl;
  }
  const RulePlan &headBoundPlan(uint32_t RuleIdx, int Driver) const {
    const RulePlan &Pl = HeadBound[RuleIdx][static_cast<size_t>(Driver + 1)];
    assert(Pl.Valid && "no head-bound plan for this driver position");
    return Pl;
  }

  /// Total compiled steps over all valid plans of both families
  /// (SolveStats::PlanSteps).
  uint64_t totalSteps() const { return TotalSteps; }

  /// Outcome of one replanFromStats call: (rule, driver) pairs whose plans
  /// were recompiled, and the total live-row drift between this statistics
  /// snapshot and the previous one (SolveStats::EstimatedVsActualRows).
  struct ReplanResult {
    unsigned Replanned = 0;
    uint64_t RowsDivergence = 0;
  };

  /// Re-evaluates every (rule, driver) pair of both families against
  /// \p Stats: a pair is recompiled with the cost model's chosen order
  /// when its current order's estimated cost exceeds \p Threshold × the
  /// best candidate's (so Threshold 1.0 adopts any strict improvement —
  /// the initial cost-based choose — and larger thresholds add hysteresis
  /// for the adaptive between-round checks). Single-threaded callers only:
  /// plans are replaced in place at round boundaries, never during an eval
  /// phase.
  ReplanResult replanFromStats(const StatsVec &Stats, double Threshold);

  /// (rule, driver) pairs whose current order differs from the frozen
  /// driver-first order (SolveStats::CostBasedPlans).
  unsigned costBasedPlans() const { return CostBased; }

  /// Appends, per predicate, the bound-column masks of every Probe step in
  /// any compiled plan of either family (sorted, deduplicated). Because it
  /// reads the *compiled* plans rather than re-simulating an assumed
  /// order, it stays correct for any cost-chosen order — the static index
  /// analyses build exactly these masks, so StrictIndexCoverage cannot
  /// trip on a reordered plan. \p MasksByPred must be sized to the
  /// program's predicate count.
  void wantedIndexes(std::vector<std::vector<uint64_t>> &MasksByPred) const;

private:
  void recountDerived();

  const Program *Prog = nullptr;
  const std::vector<Rule> *Rules = nullptr;
  bool UseIndexes = true;
  std::vector<std::vector<RulePlan>> Normal;
  std::vector<std::vector<RulePlan>> HeadBound;
  /// Per-rule pre-bound variable sets of the rederive family.
  std::vector<std::vector<bool>> HeadVarsByRule;
  /// Statistics snapshot of the last replanFromStats call (divergence
  /// baseline).
  StatsVec LastStats;
  uint64_t TotalSteps = 0;
  unsigned CostBased = 0;
};

//===----------------------------------------------------------------------===//
// ExternMemo
//===----------------------------------------------------------------------===//

/// Lock-sharded memo cache for pure external functions, keyed on the
/// hash-consed argument handles (see file comment for the soundness
/// argument). One instance per solver run; shared by all workers.
class ExternMemo {
public:
  /// Returns the cached result of Fn(Args), computing it via \p Compute on
  /// a miss. Compute runs outside the shard lock: a racing thread may
  /// compute the same pure call twice, but never blocks on it.
  template <typename ComputeFn>
  Value call(FnId Fn, std::span<const Value> Args, ComputeFn Compute) {
    uint64_t H = hashKey(Fn, Args);
    Shard &Sh = Shards[H % NumShards];
    {
      std::lock_guard<std::mutex> Lock(Sh.Mu);
      auto It = Sh.Map.find(Key{Fn, H, {Args.begin(), Args.end()}});
      if (It != Sh.Map.end()) {
        Hits.fetch_add(1, std::memory_order_relaxed);
        return It->second;
      }
    }
    Misses.fetch_add(1, std::memory_order_relaxed);
    Value Res = Compute();
    std::lock_guard<std::mutex> Lock(Sh.Mu);
    auto [It, Inserted] =
        Sh.Map.try_emplace(Key{Fn, H, {Args.begin(), Args.end()}}, Res);
    if (Inserted)
      Sh.Bytes += entryBytes(Args.size());
    return It->second;
  }

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

  /// Approximate heap footprint (SolveStats::MemoryBytes accounting).
  size_t memoryBytes() const {
    size_t Total = 0;
    for (const Shard &Sh : Shards) {
      std::lock_guard<std::mutex> Lock(Sh.Mu);
      Total += Sh.Bytes + Sh.Map.bucket_count() * sizeof(void *);
    }
    return Total;
  }

private:
  struct Key {
    FnId Fn;
    uint64_t Hash;
    SmallVector<Value, 4> Args;
    bool operator==(const Key &O) const {
      if (Fn != O.Fn || Args.size() != O.Args.size())
        return false;
      for (size_t I = 0; I < Args.size(); ++I)
        if (Args[I] != O.Args[I])
          return false;
      return true;
    }
  };
  struct KeyHash {
    size_t operator()(const Key &K) const { return K.Hash; }
  };

  static uint64_t hashKey(FnId Fn, std::span<const Value> Args) {
    uint64_t H = hashValues(static_cast<uint64_t>(Fn), Args.size());
    for (const Value &V : Args)
      H = hashCombine(H, V.hash());
    return H;
  }
  static size_t entryBytes(size_t NumArgs) {
    size_t B = sizeof(Key) + sizeof(Value) + 2 * sizeof(void *);
    if (NumArgs > 4) // SmallVector<Value, 4> spilled to the heap
      B += NumArgs * sizeof(Value);
    return B;
  }

  static constexpr size_t NumShards = 64;
  struct Shard {
    mutable std::mutex Mu;
    std::unordered_map<Key, Value, KeyHash> Map;
    size_t Bytes = 0;
  };
  std::array<Shard, NumShards> Shards;
  std::atomic<uint64_t> Hits{0}, Misses{0};
};

//===----------------------------------------------------------------------===//
// PlanExecutor
//===----------------------------------------------------------------------===//

/// Resolves an operand against the engine's environment.
template <typename EngineT>
inline Value opValue(EngineT &E, const Operand &O) {
  return O.IsConst ? O.Const : E.env()[O.Var];
}

/// Computes the head cell of a full match and hands (KeyT, LatVal) to the
/// engine (relational heads fold the last column into the key, §3.2).
template <typename EngineT>
inline void deriveWithPlan(EngineT &E, ValueFactory &F, const RulePlan &Pl) {
  const HeadPlan &H = Pl.Head;
  SmallVector<Value, 4> Key;
  for (const Operand &O : H.KeyOps)
    Key.push_back(opValue(E, O));
  Value LatVal;
  if (H.HasFn) {
    SmallVector<Value, 4> Args;
    for (const Operand &O : H.FnArgs)
      Args.push_back(opValue(E, O));
    LatVal = E.callExtern(H.Fn,
                          std::span<const Value>(Args.data(), Args.size()));
  } else {
    LatVal = opValue(E, H.LastOp);
  }
  if (H.Relational) {
    Key.push_back(LatVal);
    LatVal = F.boolean(true);
  }
  Value KeyT = F.tuple(std::span<const Value>(Key.data(), Key.size()));
  E.onDerived(Pl, KeyT, LatVal);
}

/// Non-recursive plan executor. \p EngineT supplies the per-engine policy:
///
///   std::vector<Value> &env();            // variable environment
///   std::vector<uint8_t> &bound();        // runtime bound flags (undo log)
///   ValueFactory &factory();
///   Table &table(PredId);
///   bool checkRow();                      // true => abort the evaluation
///   Value callExtern(FnId, std::span<const Value>);
///   // Indexed probe; returns nullptr to request the full-scan fallback
///   // (counting/asserting per engine policy). CopyStorage is scratch the
///   // sequential engine copies its (mutable) bucket into.
///   const std::vector<uint32_t> *probeBucket(const Step &, Value ProjT,
///                                            std::vector<uint32_t> &Copy);
///   // Intra-rule spilling hook (parallel workers): may capture
///   // [Begin, End) of Rows (nullptr = raw row-id range) as sub-tasks and
///   // return the new Begin. Others return Begin unchanged.
///   uint32_t maybeSpill(const RulePlan &, uint32_t StepIdx,
///                       const std::vector<uint32_t> *Rows,
///                       uint32_t Begin, uint32_t End);
///   void onRow(PredId, uint32_t RowId);   // positive-atom premise push
///   void popRow();                        //   ... and pop (incremental)
///   void onDerived(const RulePlan &, Value KeyT, Value LatVal);
///   // Driver rows of the current task (StepKind::Driver).
///   const std::vector<uint32_t> *driverRows(uint32_t &Begin, uint32_t &End);
template <typename EngineT> class PlanExecutor {
public:
  explicit PlanExecutor(EngineT &E) : E(E) {}

  /// Evaluates \p Pl from step 0 over an empty environment prefix (the
  /// caller has already sized env/bound, and pre-bound any head-bound
  /// variables for rederive plans).
  void run(const RulePlan &Pl) {
    if (Pl.Steps.empty()) {
      deriveWithPlan(E, E.factory(), Pl);
      return;
    }
    prepare(Pl);
    exec(Pl, /*Base=*/0, /*SeedEntering=*/true);
  }

  /// Resumes \p Pl at \p StepIdx over rows [\p Begin, \p End) of \p Rows
  /// (nullptr = raw row ids) — the parallel sub-task continuation. The
  /// caller restored env/bound to the captured prefix. Rows-vs-nullptr
  /// selects the reduced-bind (index bucket) vs full-column (scan) tests,
  /// matching what the spilling step was iterating.
  void runFrom(const RulePlan &Pl, uint32_t StepIdx,
               const std::vector<uint32_t> *Rows, uint32_t Begin,
               uint32_t End) {
    prepare(Pl);
    Cursor &C = Cursors[StepIdx];
    C = Cursor();
    const Step &S = Pl.Steps[StepIdx];
    Begin = E.maybeSpill(Pl, StepIdx, Rows, Begin, End);
    C.RowList = Rows;
    C.Idx = Begin;
    C.End = End;
    // A resumed index bucket needs only the reduced tests; raw row-id
    // ranges (scans, probe fallbacks) and driver rows need the full ones.
    C.UseFullCols = Rows == nullptr || S.Kind == StepKind::Driver;
    exec(Pl, /*Base=*/StepIdx, /*SeedEntering=*/false);
  }

private:
  struct Cursor {
    const std::vector<uint32_t> *RowList = nullptr; ///< null: raw id range
    uint32_t Idx = 0, End = 0;
    std::vector<uint32_t> Copy; ///< sequential engine's bucket snapshot
    std::span<const Value> SetElems;
    uint32_t SIdx = 0;
    bool Done = false;        ///< one-shot steps (Filter, Negation)
    bool UseFullCols = false; ///< probe fell back to a full scan
    bool HasPremise = false;
    eval::BindTrail Trail;
  };

  void prepare(const RulePlan &Pl) {
    if (Cursors.size() < Pl.Steps.size())
      Cursors.resize(Pl.Steps.size());
  }

  /// The backtracking loop. Cursors[Base..Pos] hold the active prefix;
  /// entering a step initializes its cursor, advancing yields its next
  /// match (undoing the previous candidate's bindings first).
  void exec(const RulePlan &Pl, size_t Base, bool SeedEntering) {
    const size_t N = Pl.Steps.size();
    size_t Pos = Base;
    bool Entering = SeedEntering;
    for (;;) {
      Cursor &C = Cursors[Pos];
      if (Entering)
        initCursor(Pl, Pl.Steps[Pos], C, static_cast<uint32_t>(Pos));
      if (!advance(Pl.Steps[Pos], C)) {
        if (Pos == Base)
          return;
        --Pos;
        Entering = false;
        continue;
      }
      if (Pos + 1 == N) {
        deriveWithPlan(E, E.factory(), Pl);
        Entering = false; // stay: next candidate of the last step
        continue;
      }
      ++Pos;
      Entering = true;
    }
  }

  void initCursor(const RulePlan &Pl, const Step &S, Cursor &C,
                  uint32_t StepIdx) {
    if (C.HasPremise) { // stale from an aborted deeper pass
      C.HasPremise = false;
    }
    C.Trail.Saved.clear();
    C.RowList = nullptr;
    C.Idx = C.End = 0;
    C.SIdx = 0;
    C.SetElems = {};
    C.Done = false;
    C.UseFullCols = false;

    switch (S.Kind) {
    case StepKind::Driver: {
      C.RowList = E.driverRows(C.Idx, C.End);
      C.UseFullCols = true;
      return;
    }
    case StepKind::Lookup: {
      Value KeyT = projTuple(S);
      uint32_t Id = E.table(S.Pred).lookupRow(KeyT);
      if (Id != Table::NoRow) {
        C.Idx = Id;
        C.End = Id + 1;
      }
      return;
    }
    case StepKind::Probe: {
      Value ProjT = projTuple(S);
      if (const std::vector<uint32_t> *Bucket =
              E.probeBucket(S, ProjT, C.Copy)) {
        uint32_t Begin = E.maybeSpill(
            Pl, StepIdx, Bucket, 0, static_cast<uint32_t>(Bucket->size()));
        C.RowList = Bucket;
        C.Idx = Begin;
        C.End = static_cast<uint32_t>(Bucket->size());
        return;
      }
      // No index for this mask: full scan with the full column tests.
      C.UseFullCols = true;
      uint32_t End = static_cast<uint32_t>(E.table(S.Pred).size());
      C.Idx = E.maybeSpill(Pl, StepIdx, nullptr, 0, End);
      C.End = End;
      return;
    }
    case StepKind::Scan: {
      C.UseFullCols = true;
      uint32_t End = static_cast<uint32_t>(E.table(S.Pred).size());
      C.Idx = E.maybeSpill(Pl, StepIdx, nullptr, 0, End);
      C.End = End;
      return;
    }
    case StepKind::Binder: {
      SmallVector<Value, 4> Args;
      for (const Operand &O : S.Args)
        Args.push_back(opValue(E, O));
      Value Res = E.callExtern(
          S.Fn, std::span<const Value>(Args.data(), Args.size()));
      assert(Res.isSet() && "binder function must return a Set");
      C.SetElems = E.factory().setElems(Res);
      return;
    }
    case StepKind::Negation:
    case StepKind::Filter:
      return; // one-shot; Done gates advance()
    }
  }

  /// Yields the step's next candidate match into env/bound, or false when
  /// exhausted (or aborting). Always undoes the previous candidate first.
  bool advance(const Step &S, Cursor &C) {
    if (C.HasPremise) {
      E.popRow();
      C.HasPremise = false;
    }
    C.Trail.undo(E.env(), E.bound());

    switch (S.Kind) {
    case StepKind::Driver:
    case StepKind::Lookup:
    case StepKind::Probe:
    case StepKind::Scan: {
      Table &T = E.table(S.Pred);
      while (C.Idx < C.End) {
        if (E.checkRow())
          return false;
        uint32_t RowId = C.RowList ? (*C.RowList)[C.Idx] : C.Idx;
        ++C.Idx;
        if (T.isTombstone(RowId))
          continue;
        if (!matchRow(S, C, T, RowId)) {
          C.Trail.undo(E.env(), E.bound());
          continue;
        }
        E.onRow(S.Pred, RowId);
        C.HasPremise = true;
        return true;
      }
      return false;
    }
    case StepKind::Binder: {
      while (C.SIdx < C.SetElems.size()) {
        if (E.checkRow())
          return false;
        Value Elem = C.SetElems[C.SIdx++];
        if (!bindPattern(S, C, Elem)) {
          C.Trail.undo(E.env(), E.bound());
          continue;
        }
        if (!runGuards(S)) {
          C.Trail.undo(E.env(), E.bound());
          continue;
        }
        return true;
      }
      return false;
    }
    case StepKind::Negation: {
      if (C.Done)
        return false;
      C.Done = true;
      Value KeyT = projTuple(S);
      if (E.table(S.Pred).lookup(KeyT))
        return false;
      return runGuards(S);
    }
    case StepKind::Filter: {
      if (C.Done)
        return false;
      C.Done = true;
      return runGuards(S);
    }
    }
    return false; // unreachable
  }

  /// Row tests of one atom candidate: column ops, the lattice op, then the
  /// fused guards. Bindings go through the cursor's trail.
  bool matchRow(const Step &S, Cursor &C, Table &T, uint32_t RowId) {
    std::vector<Value> &Env = E.env();
    std::vector<uint8_t> &Bound = E.bound();
    const auto &Tests = C.UseFullCols ? S.Cols : S.Binds;
    if (!Tests.empty()) {
      std::span<const Value> KeyElems = T.rowKey(RowId);
      for (const ColTest &Ct : Tests) {
        Value RowV = KeyElems[Ct.Col];
        switch (Ct.Op) {
        case ColOp::CheckConst:
          if (!(Ct.Const == RowV))
            return false;
          break;
        case ColOp::CheckVar:
          if (!(Env[Ct.Var] == RowV))
            return false;
          break;
        case ColOp::Bind:
          C.Trail.save(Ct.Var, false, Env[Ct.Var]);
          Env[Ct.Var] = RowV;
          Bound[Ct.Var] = 1;
          break;
        }
      }
    }
    if (S.LOp != LatOp::None) {
      Value RowVal = T.row(RowId).Lat;
      switch (S.LOp) {
      case LatOp::CheckConstLeq:
        if (!S.Lat->leq(S.LatConst, RowVal))
          return false;
        break;
      case LatOp::BindVar:
        C.Trail.save(S.LatVar, false, Env[S.LatVar]);
        Env[S.LatVar] = RowVal;
        Bound[S.LatVar] = 1;
        break;
      case LatOp::GlbRebind: {
        Value G = S.Lat->glb(Env[S.LatVar], RowVal);
        C.Trail.save(S.LatVar, true, Env[S.LatVar]);
        Env[S.LatVar] = G;
        break;
      }
      case LatOp::None:
        break;
      }
    }
    return runGuards(S);
  }

  bool bindPattern(const Step &S, Cursor &C, Value Elem) {
    std::vector<Value> &Env = E.env();
    std::vector<uint8_t> &Bound = E.bound();
    if (S.Pattern.size() == 1) {
      const ColTest &Ct = S.Pattern[0];
      if (Ct.Op == ColOp::CheckVar)
        return Env[Ct.Var] == Elem;
      C.Trail.save(Ct.Var, false, Env[Ct.Var]);
      Env[Ct.Var] = Elem;
      Bound[Ct.Var] = 1;
      return true;
    }
    ValueFactory &F = E.factory();
    if (!Elem.isTuple() || F.tupleElems(Elem).size() != S.Pattern.size())
      return false;
    std::span<const Value> Elems = F.tupleElems(Elem);
    for (const ColTest &Ct : S.Pattern) {
      Value V = Elems[Ct.Col];
      if (Ct.Op == ColOp::CheckVar) {
        if (!(Env[Ct.Var] == V))
          return false;
        continue;
      }
      C.Trail.save(Ct.Var, false, Env[Ct.Var]);
      Env[Ct.Var] = V;
      Bound[Ct.Var] = 1;
    }
    return true;
  }

  bool runGuards(const Step &S) {
    for (const Guard &G : S.Guards) {
      SmallVector<Value, 4> Args;
      for (const Operand &O : G.Args)
        Args.push_back(opValue(E, O));
      Value Res = E.callExtern(
          G.Fn, std::span<const Value>(Args.data(), Args.size()));
      assert(Res.isBool() && "filter function must return Bool");
      if (!Res.asBool())
        return false;
    }
    return true;
  }

  Value projTuple(const Step &S) {
    SmallVector<Value, 4> Proj;
    for (const Operand &O : S.ProjOps)
      Proj.push_back(opValue(E, O));
    return E.factory().tuple(
        std::span<const Value>(Proj.data(), Proj.size()));
  }

  EngineT &E;
  std::vector<Cursor> Cursors;
};

} // namespace flix::plan

#endif // FLIX_FIXPOINT_PLAN_H
