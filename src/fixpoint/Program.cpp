//===- fixpoint/Program.cpp - FLIX fixpoint program IR --------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Program.h"

#include <cassert>
#include <sstream>
#include <unordered_map>

using namespace flix;

//===----------------------------------------------------------------------===//
// Program
//===----------------------------------------------------------------------===//

PredId Program::relation(std::string Name, unsigned Arity) {
  assert(Arity >= 1 && "relations need at least one column");
  Preds.push_back({std::move(Name), Arity, nullptr});
  return static_cast<PredId>(Preds.size() - 1);
}

PredId Program::lattice(std::string Name, unsigned Arity, const Lattice *L) {
  assert(Arity >= 1 && "lattice predicates need at least one column");
  assert(L && "lattice predicate without a lattice");
  Preds.push_back({std::move(Name), Arity, L});
  return static_cast<PredId>(Preds.size() - 1);
}

FnId Program::function(std::string Name, unsigned Arity, FnRole Role,
                       ExternImpl Impl) {
  Fns.push_back({std::move(Name), Arity, Role, std::move(Impl)});
  return static_cast<FnId>(Fns.size() - 1);
}

void Program::addRule(Rule R) {
  assert(R.Head.Pred < Preds.size() && "head predicate out of range");
  assert(R.Head.KeyTerms.size() + 1 == Preds[R.Head.Pred].Arity &&
         "head arity mismatch");
  Rules.push_back(std::move(R));
}

void Program::addFact(PredId P, std::span<const Value> Tuple) {
  const PredicateDecl &D = Preds[P];
  assert(D.isRelational() && "use addLatFact for lattice predicates");
  assert(Tuple.size() == D.Arity && "fact arity mismatch");
  (void)D;
  Fact F;
  F.Pred = P;
  F.Key.append(Tuple.begin(), Tuple.end());
  F.LatValue = Factory.boolean(true);
  Facts.push_back(std::move(F));
}

void Program::addLatFact(PredId P, std::span<const Value> Key, Value LatVal) {
  const PredicateDecl &D = Preds[P];
  assert(!D.isRelational() && "use addFact for relational predicates");
  assert(Key.size() + 1 == D.Arity && "fact arity mismatch");
  (void)D;
  Fact F;
  F.Pred = P;
  F.Key.append(Key.begin(), Key.end());
  F.LatValue = LatVal;
  Facts.push_back(std::move(F));
}

void Program::addIndexHint(PredId P, uint64_t Mask) {
  assert(P < Preds.size() && "index hint on unknown predicate");
  assert(Mask != 0 && "index hint needs at least one column");
  IndexHints.push_back({P, Mask});
}

std::optional<PredId> Program::findPredicate(std::string_view Name) const {
  for (PredId P = 0; P < Preds.size(); ++P)
    if (Preds[P].Name == Name)
      return P;
  return std::nullopt;
}

namespace {

/// Tracks which rule variables are bound while walking a body
/// left-to-right.
class BoundSet {
public:
  explicit BoundSet(uint32_t NumVars) : Bound(NumVars, false) {}

  void bind(const Term &T) {
    if (T.isVar())
      Bound[T.Variable] = true;
  }
  void bind(VarId V) { Bound[V] = true; }

  bool isBound(const Term &T) const {
    return !T.isVar() || Bound[T.Variable];
  }

private:
  std::vector<bool> Bound;
};

} // namespace

std::optional<std::string> Program::validate() const {
  // Bound-column patterns are 64-bit masks, so a key arity above 63 would
  // make `uint64_t(1) << KeyArity` undefined in both solvers and in
  // Table::probe. Reject such predicates up front with a diagnostic
  // instead of invoking UB at evaluation time.
  for (const PredicateDecl &D : Preds)
    if (D.keyArity() > 63)
      return "predicate " + D.Name + " has key arity " +
             std::to_string(D.keyArity()) +
             ", but at most 63 key columns are supported (bound-column "
             "masks are 64-bit)";

  for (size_t RI = 0; RI < Rules.size(); ++RI) {
    const Rule &R = Rules[RI];
    auto err = [&](const std::string &Msg) {
      return "rule #" + std::to_string(RI) + " (head " +
             Preds[R.Head.Pred].Name + "): " + Msg;
    };

    BoundSet Bound(R.NumVars);

    for (const BodyElem &E : R.Body) {
      if (const auto *A = std::get_if<BodyAtom>(&E)) {
        const PredicateDecl &D = Preds[A->Pred];
        if (A->Terms.size() != D.Arity)
          return err("atom " + D.Name + " has " +
                     std::to_string(A->Terms.size()) + " terms, expected " +
                     std::to_string(D.Arity));
        if (A->Negated) {
          if (!D.isRelational())
            return err("negated atom on lattice predicate " + D.Name);
          // Negated atoms must be fully bound by earlier elements.
          for (const Term &T : A->Terms)
            if (!Bound.isBound(T))
              return err("unbound variable in negated atom " + D.Name);
        } else {
          for (const Term &T : A->Terms)
            Bound.bind(T);
        }
        continue;
      }
      if (const auto *Fl = std::get_if<BodyFilter>(&E)) {
        const ExternFn &Fn = Fns[Fl->Fn];
        if (Fn.Role != FnRole::Filter)
          return err("function " + Fn.Name + " used as a filter but not "
                     "declared Filter");
        if (Fl->Args.size() != Fn.Arity)
          return err("filter " + Fn.Name + " arity mismatch");
        for (const Term &T : Fl->Args)
          if (!Bound.isBound(T))
            return err("unbound variable in filter " + Fn.Name);
        continue;
      }
      const auto &B = std::get<BodyBinder>(E);
      const ExternFn &Fn = Fns[B.Fn];
      if (Fn.Role != FnRole::Binder)
        return err("function " + Fn.Name + " used as a binder but not "
                   "declared Binder");
      if (B.Args.size() != Fn.Arity)
        return err("binder " + Fn.Name + " arity mismatch");
      for (const Term &T : B.Args)
        if (!Bound.isBound(T))
          return err("unbound variable in binder argument of " + Fn.Name);
      for (VarId V : B.Pattern)
        Bound.bind(V);
    }

    // Head: all variables must be bound by the body.
    const PredicateDecl &HD = Preds[R.Head.Pred];
    for (const Term &T : R.Head.KeyTerms)
      if (!Bound.isBound(T))
        return err("unbound variable in head key of " + HD.Name);
    if (R.Head.LastFn) {
      const ExternFn &Fn = Fns[*R.Head.LastFn];
      if (Fn.Role != FnRole::Transfer)
        return err("function " + Fn.Name + " used in head but not declared "
                   "Transfer");
      if (R.Head.FnArgs.size() != Fn.Arity)
        return err("head transfer " + Fn.Name + " arity mismatch");
      for (const Term &T : R.Head.FnArgs)
        if (!Bound.isBound(T))
          return err("unbound variable in head transfer args of " + HD.Name);
    } else if (!Bound.isBound(R.Head.LastTerm)) {
      return err("unbound variable in head last term of " + HD.Name);
    }
  }
  return std::nullopt;
}

static void dumpTerm(std::ostringstream &OS, const Rule &R, const Term &T,
                     const ValueFactory &F) {
  if (T.isVar()) {
    if (T.Variable < R.VarNames.size() && !R.VarNames[T.Variable].empty())
      OS << R.VarNames[T.Variable];
    else
      OS << "_v" << T.Variable;
    return;
  }
  OS << F.toString(T.Constant);
}

std::string Program::dump() const {
  std::ostringstream OS;
  for (const PredicateDecl &D : Preds) {
    OS << (D.isRelational() ? "rel " : "lat ") << D.Name << "/" << D.Arity;
    if (D.Lat)
      OS << " <" << D.Lat->name() << ">";
    OS << ";\n";
  }
  for (const Fact &Fa : Facts) {
    OS << Preds[Fa.Pred].Name << "(";
    for (size_t I = 0; I < Fa.Key.size(); ++I) {
      if (I)
        OS << ", ";
      OS << Factory.toString(Fa.Key[I]);
    }
    if (!Preds[Fa.Pred].isRelational()) {
      if (!Fa.Key.empty())
        OS << "; ";
      OS << Factory.toString(Fa.LatValue);
    }
    OS << ").\n";
  }
  for (const Rule &R : Rules) {
    OS << Preds[R.Head.Pred].Name << "(";
    for (size_t I = 0; I < R.Head.KeyTerms.size(); ++I) {
      if (I)
        OS << ", ";
      dumpTerm(OS, R, R.Head.KeyTerms[I], Factory);
    }
    if (!R.Head.KeyTerms.empty())
      OS << ", ";
    if (R.Head.LastFn) {
      OS << Fns[*R.Head.LastFn].Name << "(";
      for (size_t I = 0; I < R.Head.FnArgs.size(); ++I) {
        if (I)
          OS << ", ";
        dumpTerm(OS, R, R.Head.FnArgs[I], Factory);
      }
      OS << ")";
    } else {
      dumpTerm(OS, R, R.Head.LastTerm, Factory);
    }
    OS << ") :- ";
    bool First = true;
    for (const BodyElem &E : R.Body) {
      if (!First)
        OS << ", ";
      First = false;
      if (const auto *A = std::get_if<BodyAtom>(&E)) {
        if (A->Negated)
          OS << "!";
        OS << Preds[A->Pred].Name << "(";
        for (size_t I = 0; I < A->Terms.size(); ++I) {
          if (I)
            OS << ", ";
          dumpTerm(OS, R, A->Terms[I], Factory);
        }
        OS << ")";
      } else if (const auto *Fl = std::get_if<BodyFilter>(&E)) {
        OS << Fns[Fl->Fn].Name << "(";
        for (size_t I = 0; I < Fl->Args.size(); ++I) {
          if (I)
            OS << ", ";
          dumpTerm(OS, R, Fl->Args[I], Factory);
        }
        OS << ")";
      } else {
        const auto &B = std::get<BodyBinder>(E);
        if (B.Pattern.size() > 1)
          OS << "(";
        for (size_t I = 0; I < B.Pattern.size(); ++I) {
          if (I)
            OS << ", ";
          OS << (B.Pattern[I] < R.VarNames.size()
                     ? R.VarNames[B.Pattern[I]]
                     : "_v" + std::to_string(B.Pattern[I]));
        }
        if (B.Pattern.size() > 1)
          OS << ")";
        OS << " <- " << Fns[B.Fn].Name << "(";
        for (size_t I = 0; I < B.Args.size(); ++I) {
          if (I)
            OS << ", ";
          dumpTerm(OS, R, B.Args[I], Factory);
        }
        OS << ")";
      }
    }
    OS << ".\n";
  }
  return OS.str();
}

//===----------------------------------------------------------------------===//
// RuleBuilder
//===----------------------------------------------------------------------===//

VarId RuleBuilder::resolveVar(const std::string &Name) {
  for (size_t I = 0; I < VarNames.size(); ++I)
    if (VarNames[I] == Name)
      return static_cast<VarId>(I);
  VarNames.push_back(Name);
  return static_cast<VarId>(VarNames.size() - 1);
}

Term RuleBuilder::resolve(const Spec &S) {
  if (!S.IsVar)
    return Term::constant(S.Constant);
  // "_" is an anonymous variable: each occurrence is fresh.
  if (S.Name == "_") {
    VarNames.push_back("_");
    return Term::var(static_cast<VarId>(VarNames.size() - 1));
  }
  return Term::var(resolveVar(S.Name));
}

RuleBuilder &RuleBuilder::head(PredId P, std::vector<Spec> Terms) {
  assert(!Terms.empty() && "head needs at least one term");
  R.Head.Pred = P;
  for (size_t I = 0; I + 1 < Terms.size(); ++I)
    R.Head.KeyTerms.push_back(resolve(Terms[I]));
  R.Head.LastTerm = resolve(Terms.back());
  R.Head.LastFn.reset();
  return *this;
}

RuleBuilder &RuleBuilder::headFn(PredId P, std::vector<Spec> KeyTerms, FnId Fn,
                                 std::vector<Spec> FnArgs) {
  R.Head.Pred = P;
  for (const Spec &S : KeyTerms)
    R.Head.KeyTerms.push_back(resolve(S));
  R.Head.LastFn = Fn;
  for (const Spec &S : FnArgs)
    R.Head.FnArgs.push_back(resolve(S));
  return *this;
}

RuleBuilder &RuleBuilder::atom(PredId P, std::vector<Spec> Terms) {
  BodyAtom A;
  A.Pred = P;
  for (const Spec &S : Terms)
    A.Terms.push_back(resolve(S));
  R.Body.emplace_back(std::move(A));
  return *this;
}

RuleBuilder &RuleBuilder::negated(PredId P, std::vector<Spec> Terms) {
  BodyAtom A;
  A.Pred = P;
  A.Negated = true;
  for (const Spec &S : Terms)
    A.Terms.push_back(resolve(S));
  R.Body.emplace_back(std::move(A));
  return *this;
}

RuleBuilder &RuleBuilder::filter(FnId Fn, std::vector<Spec> Args) {
  BodyFilter Fl;
  Fl.Fn = Fn;
  for (const Spec &S : Args)
    Fl.Args.push_back(resolve(S));
  R.Body.emplace_back(std::move(Fl));
  return *this;
}

RuleBuilder &RuleBuilder::bind(std::vector<std::string> Pattern, FnId Fn,
                               std::vector<Spec> Args) {
  BodyBinder B;
  for (const std::string &Name : Pattern)
    B.Pattern.push_back(resolveVar(Name));
  B.Fn = Fn;
  for (const Spec &S : Args)
    B.Args.push_back(resolve(S));
  R.Body.emplace_back(std::move(B));
  return *this;
}

Rule RuleBuilder::build() {
  R.NumVars = static_cast<uint32_t>(VarNames.size());
  R.VarNames = VarNames;
  return std::move(R);
}

void RuleBuilder::addTo(Program &P) { P.addRule(build()); }
