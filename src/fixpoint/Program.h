//===- fixpoint/Program.h - FLIX fixpoint program IR ----------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The solver-facing intermediate representation of a FLIX program: a set
/// of predicate declarations (relations and lattice predicates), external
/// functions (monotone transfer functions, filter functions and
/// set-producing binder functions), rules and facts.
///
/// Programs are built either directly through ProgramBuilder (the C++ API
/// used by the analyses in src/analyses) or by lowering FLIX source
/// (src/lang/Lowering.*). The IR corresponds to the abstract syntax of
/// §3.1–§3.3 of the paper, with two extensions: stratified negation on
/// relational atoms (§7 future work) and set-binder body elements — the
/// `x <- f(...)` arrow syntax used by the IFDS/IDE rules (Figures 5–6).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_FIXPOINT_PROGRAM_H
#define FLIX_FIXPOINT_PROGRAM_H

#include "runtime/Lattice.h"
#include "support/SmallVector.h"
#include "support/SourceManager.h"

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace flix {

using PredId = uint32_t;
using FnId = uint32_t;
using VarId = uint32_t;

/// A declared predicate. A `rel` is a predicate where every column is a
/// key column; a `lat` additionally carries a lattice element in its last
/// column, and rows with equal keys are joined with ⊔ (§3.2 cells).
struct PredicateDecl {
  std::string Name;
  unsigned Arity = 0;          ///< total number of columns
  const Lattice *Lat = nullptr; ///< lattice of the last column (lat only)

  bool isRelational() const { return Lat == nullptr; }
  /// Number of key columns (all of them for rel, all but last for lat).
  unsigned keyArity() const { return isRelational() ? Arity : Arity - 1; }
};

/// Signature of an external function: called with the argument values, must
/// be pure. Transfer functions return a lattice element; filters return a
/// Bool value; binders return a Set value.
using ExternImpl = std::function<Value(std::span<const Value>)>;

/// Role of an external function, used for validation and (optionally) for
/// monotonicity checking.
enum class FnRole {
  Transfer, ///< monotone, strict; allowed only in the head's last term
  Filter,   ///< monotone into Bool; allowed in rule bodies
  Binder,   ///< returns a Set whose elements are bound by `<-`
};

struct ExternFn {
  std::string Name;
  unsigned Arity = 0;
  FnRole Role = FnRole::Transfer;
  ExternImpl Impl;
  /// Bytecode-VM implementation of the same pure function (src/vm),
  /// attached by the FLIX compiler when lowering succeeded. Engines
  /// dispatch to it when SolverOptions::UseVm is set and it is present;
  /// Impl stays authoritative (and is the differential oracle).
  ExternImpl VmImpl;
  /// True for interpreted FLIX functions whose bytecode compilation
  /// failed: dispatching them with UseVm on counts as an
  /// InterpFallback in SolveStats. Native (C++) externs leave this
  /// false — falling back to them is not a fallback at all.
  bool InterpOnly = false;
};

/// A term: a rule-local variable or a constant value.
struct Term {
  enum KindTy : uint8_t { Var, Const } Kind = Const;
  VarId Variable = 0;
  Value Constant;

  static Term var(VarId V) {
    Term T;
    T.Kind = Var;
    T.Variable = V;
    return T;
  }
  static Term constant(Value V) {
    Term T;
    T.Kind = Const;
    T.Constant = V;
    return T;
  }
  bool isVar() const { return Kind == Var; }
};

/// A body atom `p(t1, ..., tn)`, possibly negated (relational atoms only).
struct BodyAtom {
  PredId Pred = 0;
  SmallVector<Term, 4> Terms;
  bool Negated = false;
};

/// A filter application `f(t1, ..., tn)` in a rule body. The function must
/// be monotone over the booleans (§3.3).
struct BodyFilter {
  FnId Fn = 0;
  SmallVector<Term, 4> Args;
};

/// A binder `pat <- f(t1, ..., tn)` in a rule body (the arrow syntax of
/// Figure 5). The function returns a set; for each element, the pattern
/// variables are bound (a single variable binds the element itself; k > 1
/// variables destructure a k-tuple element).
struct BodyBinder {
  SmallVector<VarId, 2> Pattern;
  FnId Fn = 0;
  SmallVector<Term, 4> Args;
};

using BodyElem = std::variant<BodyAtom, BodyFilter, BodyBinder>;

/// The head of a rule: `p(t1, ..., t(n-1), last)` where `last` is either a
/// plain term or a transfer-function application `f(args...)` (§3.3 allows
/// function applications only in the last term of the head). The split is
/// uniform for rel and lat predicates: KeyTerms holds the first Arity-1
/// terms and LastTerm/LastFn the final column.
struct HeadAtom {
  PredId Pred = 0;
  SmallVector<Term, 4> KeyTerms; ///< the first Arity-1 terms
  /// Last column: either LastTerm (when LastFn is empty) or LastFn(FnArgs).
  std::optional<FnId> LastFn;
  Term LastTerm;
  SmallVector<Term, 4> FnArgs;
};

/// One rule `H :- B1, ..., Bn.`; variables are rule-local, numbered
/// 0..NumVars-1.
struct Rule {
  HeadAtom Head;
  std::vector<BodyElem> Body;
  uint32_t NumVars = 0;
  std::vector<std::string> VarNames; ///< for diagnostics; index = VarId
  SourceLoc Loc;
};

/// A ground fact: key values plus lattice value (Bool true for relations).
struct Fact {
  PredId Pred = 0;
  SmallVector<Value, 4> Key;
  Value LatValue;
};

/// A complete fixpoint program: declarations, functions, rules and facts.
/// Tied to the ValueFactory that produced its constant Values.
class Program {
public:
  explicit Program(ValueFactory &Factory) : Factory(Factory) {}
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;
  Program(Program &&) = default;

  /// Declares a relation (powerset predicate) of the given arity.
  PredId relation(std::string Name, unsigned Arity);

  /// Declares a lattice predicate; the last of \p Arity columns holds an
  /// element of \p L.
  PredId lattice(std::string Name, unsigned Arity, const Lattice *L);

  /// Registers an external function.
  FnId function(std::string Name, unsigned Arity, FnRole Role,
                ExternImpl Impl);

  /// Attaches the bytecode-VM implementation of function \p Fn; a null
  /// \p Impl instead marks the function interpreter-only (its VM
  /// compilation failed), which UseVm runs report as InterpFallbacks.
  void setVmImpl(FnId Fn, ExternImpl Impl) {
    if (Impl) {
      Fns[Fn].VmImpl = std::move(Impl);
      Fns[Fn].InterpOnly = false;
    } else {
      Fns[Fn].InterpOnly = true;
    }
  }

  /// Installs the provider of the VM's cumulative inline-cache hit
  /// count. Solvers snapshot it around a run to report the per-solve
  /// delta in SolveStats::VmInlineCacheHits.
  void setVmIcHitCounter(std::function<uint64_t()> Fn) {
    VmIcHits = std::move(Fn);
  }
  /// Cumulative VM inline-cache hits, or 0 when no VM is attached.
  uint64_t vmIcHits() const { return VmIcHits ? VmIcHits() : 0; }

  /// Static counters from the VM's bytecode optimization pipeline
  /// (vm/Passes.h), fixed at compile time: calls inlined, compare+branch
  /// pairs fused into superwords, and instructions removed by the
  /// passes. All zero when no VM is attached or the pipeline is off.
  struct VmPipelineCounters {
    uint64_t InlinedCalls = 0;
    uint64_t SuperwordHits = 0;
    uint64_t RemovedInsns = 0;
  };
  void setVmPipelineCounters(VmPipelineCounters C) { VmPipeline = C; }
  const VmPipelineCounters &vmPipelineCounters() const { return VmPipeline; }

  /// Adds a finished rule. Asserts basic well-formedness (arities, var
  /// ranges); full validation happens in validate().
  void addRule(Rule R);

  /// Adds a relational fact p(v1, ..., vn).
  void addFact(PredId P, std::span<const Value> Tuple);
  void addFact(PredId P, std::initializer_list<Value> Tuple) {
    addFact(P, std::span<const Value>(Tuple.begin(), Tuple.size()));
  }

  /// Adds a lattice fact p(v1, ..., v(n-1), LatVal).
  void addLatFact(PredId P, std::span<const Value> Key, Value LatVal);

  /// Registers an index hint: build the secondary index over the key
  /// columns in \p Mask (bit i = key column i) eagerly at solver start.
  void addIndexHint(PredId P, uint64_t Mask);
  void addLatFact(PredId P, std::initializer_list<Value> Key, Value LatVal) {
    addLatFact(P, std::span<const Value>(Key.begin(), Key.size()), LatVal);
  }

  /// Checks rule well-formedness: arity agreement, left-to-right
  /// boundedness of filter/binder arguments and of head variables, negated
  /// atoms only on relations, transfer/filter/binder role agreement.
  /// Returns an error description, or nullopt if the program is valid.
  std::optional<std::string> validate() const;

  const std::vector<PredicateDecl> &predicates() const { return Preds; }
  const PredicateDecl &predicate(PredId P) const { return Preds[P]; }
  const std::vector<ExternFn> &functions() const { return Fns; }
  const ExternFn &functionDecl(FnId F) const { return Fns[F]; }
  const std::vector<Rule> &rules() const { return Rules; }
  const std::vector<Fact> &facts() const { return Facts; }
  const std::vector<std::pair<PredId, uint64_t>> &indexHints() const {
    return IndexHints;
  }
  ValueFactory &factory() const { return Factory; }

  /// Looks up a predicate by name; returns nullopt if absent.
  std::optional<PredId> findPredicate(std::string_view Name) const;

  /// Renders the program as FLIX-like source, for debugging and tests.
  std::string dump() const;

private:
  ValueFactory &Factory;
  std::vector<PredicateDecl> Preds;
  std::vector<ExternFn> Fns;
  std::vector<Rule> Rules;
  std::vector<Fact> Facts;
  std::vector<std::pair<PredId, uint64_t>> IndexHints;
  std::function<uint64_t()> VmIcHits;
  VmPipelineCounters VmPipeline;
};

/// Convenience builder for rules in the C++ API. Variables are referred to
/// by name and mapped to dense VarIds when the rule is finished.
///
/// \code
///   RuleBuilder(B).head(VPT, {rv("v"), rv("h")})
///       .atom(New, {rv("v"), rv("h")})
///       .addTo(Prog);
/// \endcode
class RuleBuilder {
public:
  /// A named variable or a constant, as written in the builder API.
  struct Spec {
    // Implicit conversions make rule literals read naturally.
    Spec(Value V) : IsVar(false), Constant(V) {}
    Spec(std::string VarName) : IsVar(true), Name(std::move(VarName)) {}
    Spec(const char *VarName) : IsVar(true), Name(VarName) {}

    bool IsVar;
    std::string Name;
    Value Constant;
  };

  RuleBuilder() = default;

  /// Sets the head `P(keys..., last)` with a plain last term.
  RuleBuilder &head(PredId P, std::vector<Spec> Terms);

  /// Sets the head `P(keys..., Fn(args...))` with a transfer function
  /// computing the last column.
  RuleBuilder &headFn(PredId P, std::vector<Spec> KeyTerms, FnId Fn,
                      std::vector<Spec> FnArgs);

  /// Appends a positive body atom.
  RuleBuilder &atom(PredId P, std::vector<Spec> Terms);

  /// Appends a negated body atom (relational predicates only).
  RuleBuilder &negated(PredId P, std::vector<Spec> Terms);

  /// Appends a filter `Fn(args...)`.
  RuleBuilder &filter(FnId Fn, std::vector<Spec> Args);

  /// Appends a binder `(pattern...) <- Fn(args...)`.
  RuleBuilder &bind(std::vector<std::string> Pattern, FnId Fn,
                    std::vector<Spec> Args);

  /// Finishes the rule and adds it to \p P.
  void addTo(Program &P);

  /// Finishes and returns the rule without adding it.
  Rule build();

private:
  Term resolve(const Spec &S);
  VarId resolveVar(const std::string &Name);

  Rule R;
  std::vector<std::string> VarNames;
};

/// Shorthand for a rule variable in builder literals, to disambiguate from
/// string constants: `rv("x")` is the variable x, `F.string("x")` the
/// constant "x".
inline RuleBuilder::Spec rv(std::string Name) {
  return RuleBuilder::Spec(std::move(Name));
}

} // namespace flix

#endif // FLIX_FIXPOINT_PROGRAM_H
