//===- fixpoint/Solver.cpp - Naive and semi-naive solvers -----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Solver.h"

#include "fixpoint/EvalUtil.h"
#include "fixpoint/Plan.h"

#include <algorithm>
#include <cassert>

using namespace flix;
using flix::eval::BindTrail;

/// The sequential Solver's policy for the shared plan executor: in-place
/// joins with immediate delta updates, bucket snapshots (recursive
/// derivations grow buckets mid-iteration), no spilling, no premise
/// capture. See the engine concept in fixpoint/Plan.h.
struct Solver::PlanEngine {
  Solver &S;
  explicit PlanEngine(Solver &S) : S(S) {}

  std::vector<Value> &env() { return S.Env; }
  std::vector<uint8_t> &bound() { return S.Bound; }
  ValueFactory &factory() { return S.F; }
  Table &table(PredId P) { return *S.Tables[P]; }
  bool checkRow() { return S.checkDeadline(); }
  Value callExtern(FnId Fn, std::span<const Value> Args) {
    return S.callExtern(Fn, Args);
  }
  const std::vector<uint32_t> *probeBucket(const plan::Step &St, Value ProjT,
                                           std::vector<uint32_t> &Copy) {
    // Snapshot the bucket: derivations made while iterating may join new
    // rows into this table and grow the bucket (in-place update).
    const std::vector<uint32_t> &B =
        S.Tables[St.Pred]->probe(St.Mask, ProjT);
    Copy.assign(B.begin(), B.end());
    return &Copy;
  }
  uint32_t maybeSpill(const plan::RulePlan &, uint32_t,
                      const std::vector<uint32_t> *, uint32_t Begin,
                      uint32_t) {
    return Begin;
  }
  void onRow(PredId, uint32_t) {}
  void popRow() {}
  void onDerived(const plan::RulePlan &Pl, Value KeyT, Value LatVal) {
    ++S.Stats.RuleFirings;
    Table::JoinResult JR = S.Tables[Pl.Head.Pred]->join(KeyT, LatVal);
    if (JR.Changed) {
      ++S.Stats.FactsDerived;
      S.NextDelta[Pl.Head.Pred].insert(JR.RowId);
      const Rule &R = S.Prepared[Pl.RuleIdx];
      if (S.Opts.TrackProvenance)
        S.recordProvenance(R, Pl.Head.Pred, JR.RowId);
      if (S.Opts.TrackSupport)
        S.recordSupport(R, Pl.Head.Pred, JR.RowId);
    }
  }
  const std::vector<uint32_t> *driverRows(uint32_t &Begin, uint32_t &End) {
    Begin = 0;
    End = static_cast<uint32_t>(S.CurDriverRows->size());
    return S.CurDriverRows;
  }
};

Solver::Solver(const Program &P, SolverOptions Opts)
    : P(P), Opts(Opts), F(P.factory()),
      RelLattice(std::make_unique<BoolLattice>(F)) {
  Tables.reserve(P.predicates().size());
  for (const PredicateDecl &D : P.predicates()) {
    // Key arity > 63 is rejected by Program::validate() at solve() start
    // (a diagnostic, not an assert), so constructing the table is fine.
    const Lattice &L = D.isRelational() ? *RelLattice : *D.Lat;
    Tables.push_back(std::make_unique<Table>(D.keyArity(), L, F));
  }
  Prepared.reserve(P.rules().size());
  for (const Rule &R : P.rules())
    Prepared.push_back(Opts.ReorderBody ? reorderRule(R) : R);
  if (Opts.CompilePlans)
    Plans = std::make_unique<plan::PlanLibrary>(P, Prepared,
                                                Opts.UseIndexes);
  if (Opts.EnableMemo)
    Memo = std::make_unique<plan::ExternMemo>();
  Delta.resize(P.predicates().size());
  NextDelta.resize(P.predicates().size());
  if (Opts.TrackProvenance)
    Provenance.resize(P.predicates().size());
  if (Opts.TrackSupport) {
    Dependents.resize(P.predicates().size());
    NegDependents.resize(P.predicates().size());
  }
  RulesByHead.resize(P.predicates().size());
  for (uint32_t RI = 0; RI < Prepared.size(); ++RI)
    RulesByHead[Prepared[RI].Head.Pred].push_back(RI);
  for (auto [Pred, Mask] : P.indexHints())
    if (Opts.UseIndexes)
      Tables[Pred]->prepareIndex(Mask);
}

Solver::~Solver() = default;

Value Solver::callExtern(FnId Fn, std::span<const Value> Args) {
  const ExternFn &D = P.functionDecl(Fn);
  const ExternImpl *Impl = &D.Impl;
  bool ViaVm = false;
  if (Opts.UseVm) {
    if (D.VmImpl) {
      Impl = &D.VmImpl;
      ViaVm = true;
    } else if (D.InterpOnly) {
      ++Stats.InterpFallbacks;
    }
  }
  auto Compute = [&] {
    Stats.VmCalls += ViaVm;
    return (*Impl)(Args);
  };
  if (Memo)
    return Memo->call(Fn, Args, Compute);
  return Compute();
}

//===----------------------------------------------------------------------===//
// Body reordering (ablation of the paper's left-to-right strategy, §4.5)
//===----------------------------------------------------------------------===//

Rule Solver::reorderRule(const Rule &R) const { return reorderRuleGreedy(R); }

Rule flix::reorderRuleGreedy(const Rule &R) {
  Rule Out = R;
  std::vector<bool> BoundVar(R.NumVars, false);
  std::vector<bool> Used(R.Body.size(), false);
  std::vector<BodyElem> NewBody;

  auto isTermBound = [&](const Term &T) {
    return !T.isVar() || BoundVar[T.Variable];
  };
  auto argsBound = [&](std::span<const Term> Args) {
    for (const Term &T : Args)
      if (!isTermBound(T))
        return false;
    return true;
  };

  while (NewBody.size() < R.Body.size()) {
    int Best = -1;
    double BestScore = -1;
    for (size_t I = 0; I < R.Body.size(); ++I) {
      if (Used[I])
        continue;
      const BodyElem &E = R.Body[I];
      double Score;
      if (const auto *Fl = std::get_if<BodyFilter>(&E)) {
        if (!argsBound(std::span<const Term>(Fl->Args.data(),
                                             Fl->Args.size())))
          continue;
        Score = 10; // run filters as early as possible
      } else if (const auto *B = std::get_if<BodyBinder>(&E)) {
        if (!argsBound(std::span<const Term>(B->Args.data(),
                                             B->Args.size())))
          continue;
        Score = 5;
      } else {
        const auto &A = std::get<BodyAtom>(E);
        if (A.Negated) {
          if (!argsBound(std::span<const Term>(A.Terms.data(),
                                               A.Terms.size())))
            continue;
          Score = 9;
        } else {
          unsigned NumBound = 0;
          for (const Term &T : A.Terms)
            NumBound += isTermBound(T);
          Score = static_cast<double>(NumBound) / A.Terms.size();
        }
      }
      if (Score > BestScore) {
        BestScore = Score;
        Best = static_cast<int>(I);
      }
    }
    assert(Best >= 0 && "reordering stuck; rule should have failed "
                        "validation");
    Used[Best] = true;
    const BodyElem &E = R.Body[Best];
    if (const auto *A = std::get_if<BodyAtom>(&E)) {
      if (!A->Negated)
        for (const Term &T : A->Terms)
          if (T.isVar())
            BoundVar[T.Variable] = true;
    } else if (const auto *B = std::get_if<BodyBinder>(&E)) {
      for (VarId V : B->Pattern)
        BoundVar[V] = true;
    }
    NewBody.push_back(E);
  }
  Out.Body = std::move(NewBody);
  return Out;
}

//===----------------------------------------------------------------------===//
// Rule evaluation
//===----------------------------------------------------------------------===//

bool Solver::checkDeadline() {
  // Checked once per driver/scan row (not sampled every 4096 ops as it
  // used to be): a single huge join can no longer overshoot the time
  // limit by more than one row's worth of work. See support/Deadline.h.
  if (Aborted)
    return true;
  if (DL.expired()) {
    Aborted = true;
    Stats.St = SolveStats::Status::Timeout;
  }
  return Aborted;
}

void Solver::evalRule(const Rule &R, int Driver,
                      const std::vector<uint32_t> &DriverRows) {
  Env.assign(R.NumVars, Value());
  Bound.assign(R.NumVars, 0);

  CurDriverRows = Driver >= 0 ? &DriverRows : nullptr;
  if (Plans) {
    PlanEngine Eng(*this);
    plan::PlanExecutor<PlanEngine> Ex(Eng);
    Ex.run(Plans->plan(CurRuleIndex, Driver));
  } else {
    SmallVector<const BodyElem *, 8> Order;
    eval::buildOrder(R, Driver, Order);
    evalElems(R,
              std::span<const BodyElem *const>(Order.data(), Order.size()),
              0);
  }
  CurDriverRows = nullptr;
}

void Solver::evalElems(const Rule &R,
                       std::span<const BodyElem *const> Order, size_t Pos) {
  if (Aborted)
    return;
  if (Pos == Order.size()) {
    deriveHead(R);
    return;
  }
  const BodyElem &E = *Order[Pos];

  auto termValue = [&](const Term &T) -> Value {
    if (!T.isVar())
      return T.Constant;
    assert(Bound[T.Variable] && "unbound variable; validation missed it");
    return Env[T.Variable];
  };

  if (const auto *Fl = std::get_if<BodyFilter>(&E)) {
    SmallVector<Value, 4> Args;
    for (const Term &T : Fl->Args)
      Args.push_back(termValue(T));
    Value Res = callExtern(
        Fl->Fn, std::span<const Value>(Args.data(), Args.size()));
    assert(Res.isBool() && "filter function must return Bool");
    if (Res.asBool())
      evalElems(R, Order, Pos + 1);
    return;
  }

  if (const auto *B = std::get_if<BodyBinder>(&E)) {
    SmallVector<Value, 4> Args;
    for (const Term &T : B->Args)
      Args.push_back(termValue(T));
    Value Res = callExtern(
        B->Fn, std::span<const Value>(Args.data(), Args.size()));
    assert(Res.isSet() && "binder function must return a Set");
    for (Value Elem : F.setElems(Res)) {
      if (checkDeadline())
        return;
      BindTrail Trail;
      bool Ok = true;
      auto bindOne = [&](VarId V, Value Val) {
        if (Bound[V]) {
          Ok = Env[V] == Val;
          return;
        }
        Trail.save(V, false, Env[V]);
        Env[V] = Val;
        Bound[V] = 1;
      };
      if (B->Pattern.size() == 1) {
        bindOne(B->Pattern[0], Elem);
      } else {
        if (!Elem.isTuple() ||
            F.tupleElems(Elem).size() != B->Pattern.size()) {
          Ok = false;
        } else {
          std::span<const Value> Elems = F.tupleElems(Elem);
          for (size_t I = 0; I < B->Pattern.size() && Ok; ++I)
            bindOne(B->Pattern[I], Elems[I]);
        }
      }
      if (Ok)
        evalElems(R, Order, Pos + 1);
      Trail.undo(Env, Bound);
    }
    return;
  }

  evalAtom(R, std::get<BodyAtom>(E), Order, Pos);
}

void Solver::evalAtom(const Rule &R, const BodyAtom &A,
                      std::span<const BodyElem *const> Order, size_t Pos) {
  const PredicateDecl &D = P.predicate(A.Pred);
  Table &T = *Tables[A.Pred];
  unsigned KA = D.keyArity();

  auto termValue = [&](const Term &Tm) -> Value {
    if (!Tm.isVar())
      return Tm.Constant;
    assert(Bound[Tm.Variable] && "unbound variable in ground context");
    return Env[Tm.Variable];
  };

  if (A.Negated) {
    SmallVector<Value, 4> Key;
    for (unsigned I = 0; I < KA; ++I)
      Key.push_back(termValue(A.Terms[I]));
    Value KeyT = F.tuple(std::span<const Value>(Key.data(), Key.size()));
    if (!T.lookup(KeyT))
      evalElems(R, Order, Pos + 1);
    return;
  }

  // Delta-driven atom: scan the incremental relation ΔP (§3.7).
  if (Pos == 0 && CurDriverRows) {
    for (uint32_t Id : *CurDriverRows) {
      if (checkDeadline())
        return;
      matchAtomRow(R, A, Id, Order, Pos);
    }
    return;
  }

  // Compute the bound-column pattern to pick an access path.
  uint64_t Mask = 0;
  SmallVector<Value, 4> Proj;
  for (unsigned I = 0; I < KA; ++I) {
    const Term &Tm = A.Terms[I];
    if (!Tm.isVar()) {
      Mask |= uint64_t(1) << I;
      Proj.push_back(Tm.Constant);
    } else if (Bound[Tm.Variable]) {
      Mask |= uint64_t(1) << I;
      Proj.push_back(Env[Tm.Variable]);
    }
  }
  uint64_t Full = KA == 0 ? 0 : (uint64_t(1) << KA) - 1;

  if (Mask == Full) {
    // All key columns bound: single primary lookup.
    Value KeyT = F.tuple(std::span<const Value>(Proj.data(), Proj.size()));
    uint32_t Id = T.lookupRow(KeyT);
    if (Id != Table::NoRow)
      matchAtomRow(R, A, Id, Order, Pos);
    return;
  }

  if (Mask != 0 && Opts.UseIndexes) {
    Value ProjT = F.tuple(std::span<const Value>(Proj.data(), Proj.size()));
    // Copy the bucket: recursive derivations may join new rows into this
    // table and grow the bucket we would otherwise be iterating.
    const std::vector<uint32_t> &Bucket = T.probe(Mask, ProjT);
    SmallVector<uint32_t, 16> Ids(Bucket.begin(), Bucket.end());
    for (uint32_t Id : Ids) {
      if (checkDeadline())
        return;
      matchAtomRow(R, A, Id, Order, Pos);
    }
    return;
  }

  // Full scan. Note: iterate by index, not iterator — recursive calls can
  // grow the table (in-place immediate update), which may reallocate.
  for (uint32_t Id = 0, E = static_cast<uint32_t>(T.size()); Id != E; ++Id) {
    if (checkDeadline())
      return;
    matchAtomRow(R, A, Id, Order, Pos);
  }
}

void Solver::matchAtomRow(const Rule &R, const BodyAtom &A, uint32_t RowId,
                          std::span<const BodyElem *const> Order,
                          size_t Pos) {
  const PredicateDecl &D = P.predicate(A.Pred);
  Table &T = *Tables[A.Pred];
  unsigned KA = D.keyArity();

  // Tombstoned rows (reset to ⊥ by the incremental over-delete) are
  // logically absent; they are still reachable through indexes and full
  // scans, so every row-match path must skip them.
  if (T.isTombstone(RowId))
    return;

  BindTrail Trail;
  bool Ok = true;
  {
    std::span<const Value> KeyElems = T.rowKey(RowId);
    for (unsigned I = 0; I < KA && Ok; ++I) {
      const Term &Tm = A.Terms[I];
      if (!Tm.isVar()) {
        Ok = Tm.Constant == KeyElems[I];
        continue;
      }
      if (Bound[Tm.Variable]) {
        Ok = Env[Tm.Variable] == KeyElems[I];
        continue;
      }
      Trail.save(Tm.Variable, false, Env[Tm.Variable]);
      Env[Tm.Variable] = KeyElems[I];
      Bound[Tm.Variable] = 1;
    }
  }

  if (Ok && !D.isRelational()) {
    const Term &Lt = A.Terms[KA];
    Value RowVal = T.row(RowId).Lat;
    if (!Lt.isVar()) {
      // Ground lattice term: true iff c ⊑ cell value (§3.2 truth).
      Ok = D.Lat->leq(Lt.Constant, RowVal);
    } else if (!Bound[Lt.Variable]) {
      Trail.save(Lt.Variable, false, Env[Lt.Variable]);
      Env[Lt.Variable] = RowVal;
      Bound[Lt.Variable] = 1;
    } else {
      // The variable already carries a lattice element from an earlier
      // atom; the strongest consistent instantiation is the greatest
      // lower bound (the paper's "Least Upper and Greatest Lower Bounds"
      // example: R(x) :- A(x), B(x) derives R(Odd ⊓ Even) = R(⊥)).
      Value G = D.Lat->glb(Env[Lt.Variable], RowVal);
      Trail.save(Lt.Variable, true, Env[Lt.Variable]);
      Env[Lt.Variable] = G;
    }
  }

  if (Ok)
    evalElems(R, Order, Pos + 1);
  Trail.undo(Env, Bound);
}

void Solver::deriveHead(const Rule &R) {
  const HeadAtom &H = R.Head;
  const PredicateDecl &D = P.predicate(H.Pred);
  Table &T = *Tables[H.Pred];

  auto termValue = [&](const Term &Tm) -> Value {
    if (!Tm.isVar())
      return Tm.Constant;
    assert(Bound[Tm.Variable] && "unbound head variable");
    return Env[Tm.Variable];
  };

  SmallVector<Value, 4> Key;
  for (const Term &Tm : H.KeyTerms)
    Key.push_back(termValue(Tm));

  Value LatVal;
  if (H.LastFn) {
    SmallVector<Value, 4> Args;
    for (const Term &Tm : H.FnArgs)
      Args.push_back(termValue(Tm));
    LatVal = callExtern(
        *H.LastFn, std::span<const Value>(Args.data(), Args.size()));
  } else {
    LatVal = termValue(H.LastTerm);
  }

  if (D.isRelational()) {
    Key.push_back(LatVal);
    LatVal = F.boolean(true);
  }

  ++Stats.RuleFirings;
  Value KeyT = F.tuple(std::span<const Value>(Key.data(), Key.size()));
  Table::JoinResult JR = T.join(KeyT, LatVal);
  if (JR.Changed) {
    ++Stats.FactsDerived;
    NextDelta[H.Pred].insert(JR.RowId);
    if (Opts.TrackProvenance)
      recordProvenance(R, H.Pred, JR.RowId);
    if (Opts.TrackSupport)
      recordSupport(R, H.Pred, JR.RowId);
  }
}

void Solver::recordSupport(const Rule &R, PredId HeadPred, uint32_t RowId) {
  // One support edge per positive body premise of this (changed) join:
  // premise row -> head cell. The head cell's value is the lub of its
  // recorded derivations' contributions, so retracting any premise of any
  // recorded derivation must (and does) over-delete the cell.
  CellRef Head{HeadPred, RowId};
  for (const BodyElem &E : R.Body) {
    const auto *A = std::get_if<BodyAtom>(&E);
    if (!A || A->Negated)
      continue;
    unsigned KA = P.predicate(A->Pred).keyArity();
    SmallVector<Value, 4> Key;
    for (unsigned I = 0; I < KA; ++I) {
      const Term &Tm = A->Terms[I];
      Key.push_back(Tm.isVar() ? Env[Tm.Variable] : Tm.Constant);
    }
    Value KeyT = F.tuple(std::span<const Value>(Key.data(), Key.size()));
    uint32_t Prem = Tables[A->Pred]->lookupRow(KeyT);
    if (Prem == Table::NoRow)
      continue;
    auto &Rows = Dependents[A->Pred];
    if (Rows.size() <= Prem)
      Rows.resize(Prem + 1);
    auto &Out = Rows[Prem];
    // Keep each premise's edge list sorted and unique: long update
    // streams re-fire the same (premise, head) pairs every cycle, and
    // without full dedup the lists grow without bound. Lists are tiny
    // (median 1-2 edges), so ordered insertion beats a hash set.
    auto It = std::lower_bound(Out.begin(), Out.end(), Head);
    if (It != Out.end() && *It == Head)
      continue;
    size_t Idx = static_cast<size_t>(It - Out.begin());
    Out.push_back(Head); // may reallocate; reposition via the index
    std::rotate(Out.begin() + Idx, Out.end() - 1, Out.end());
  }
  // Negated premises: the derivation also depends on `!P(key)` holding,
  // so record key -> head in the negation index. If that key later
  // (re)enters P's table the incremental engine over-deletes the head.
  for (const BodyElem &E : R.Body) {
    const auto *A = std::get_if<BodyAtom>(&E);
    if (!A || !A->Negated)
      continue;
    unsigned KA = P.predicate(A->Pred).keyArity();
    SmallVector<Value, 4> Key;
    for (unsigned I = 0; I < KA; ++I) {
      const Term &Tm = A->Terms[I];
      Key.push_back(Tm.isVar() ? Env[Tm.Variable] : Tm.Constant);
    }
    Value KeyT = F.tuple(std::span<const Value>(Key.data(), Key.size()));
    auto &Out = NegDependents[A->Pred][KeyT];
    auto It = std::lower_bound(Out.begin(), Out.end(), Head);
    if (It != Out.end() && *It == Head)
      continue;
    size_t Idx = static_cast<size_t>(It - Out.begin());
    Out.push_back(Head);
    std::rotate(Out.begin() + Idx, Out.end() - 1, Out.end());
  }
}

size_t Solver::supportEdgeCount() const {
  size_t Count = 0;
  for (const auto &Rows : Dependents)
    for (const auto &Out : Rows)
      Count += Out.size();
  return Count;
}

size_t Solver::negSupportEdgeCount() const {
  size_t Count = 0;
  for (const auto &Keys : NegDependents)
    for (const auto &[KeyT, Out] : Keys)
      Count += Out.size();
  return Count;
}

void Solver::rederive(PredId Pred, Value KeyTuple) {
  std::span<const Value> KeyElems = F.tupleElems(KeyTuple);
  const PredicateDecl &D = P.predicate(Pred);
  for (uint32_t RI : RulesByHead[Pred]) {
    const Rule &R = Prepared[RI];
    CurRuleIndex = RI;
    Env.assign(R.NumVars, Value());
    Bound.assign(R.NumVars, 0);
    bool Ok = true;
    auto bindKey = [&](const Term &Tm, Value V) {
      if (!Tm.isVar()) {
        Ok &= Tm.Constant == V;
        return;
      }
      if (Bound[Tm.Variable]) {
        Ok &= Env[Tm.Variable] == V;
        return;
      }
      Env[Tm.Variable] = V;
      Bound[Tm.Variable] = 1;
    };
    for (size_t I = 0; I < R.Head.KeyTerms.size() && Ok; ++I)
      bindKey(R.Head.KeyTerms[I], KeyElems[I]);
    // For relational heads the key tuple includes the last column; a
    // function-valued last column can't be inverted, so it stays free and
    // the rule may re-derive sibling cells too (idempotent, harmless).
    if (Ok && D.isRelational() && !R.Head.LastFn)
      bindKey(R.Head.LastTerm, KeyElems.back());
    if (!Ok)
      continue;
    // Evaluate the most-bound positive atom first (the head-key bindings
    // usually ground part of it), so the opening access is an indexed
    // probe instead of a full scan — rederive runs once per deleted cell,
    // and a leading scan would make retraction cost O(deleted * table).
    // Moving one atom to the front is the same shape delta rounds use, so
    // downstream filters/binders still see their inputs bound in order.
    int BestAtom = -1;
    size_t BestBound = 0, BestSize = 0;
    for (size_t BI = 0; BI < R.Body.size(); ++BI) {
      const auto *A = std::get_if<BodyAtom>(&R.Body[BI]);
      if (!A || A->Negated)
        continue;
      size_t NumBound = 0;
      for (const Term &Tm : A->Terms)
        if (!Tm.isVar() || Bound[Tm.Variable])
          ++NumBound;
      size_t Size = Tables[A->Pred]->size();
      if (BestAtom < 0 || NumBound > BestBound ||
          (NumBound == BestBound && Size < BestSize)) {
        BestAtom = static_cast<int>(BI);
        BestBound = NumBound;
        BestSize = Size;
      }
    }
    CurDriverRows = nullptr;
    if (Plans) {
      // The head-bound plan family is compiled with exactly the variables
      // bindKey just bound; the fronted atom opens with a normal access
      // path (lookup/probe/scan), not a driver step.
      PlanEngine Eng(*this);
      plan::PlanExecutor<PlanEngine> Ex(Eng);
      Ex.run(Plans->headBoundPlan(RI, BestAtom));
    } else {
      SmallVector<const BodyElem *, 8> Order;
      eval::buildOrder(R, BestAtom, Order);
      evalElems(
          R, std::span<const BodyElem *const>(Order.data(), Order.size()),
          0);
    }
  }
}

void Solver::evalNegationDriven(uint32_t RI, PredId NegPred,
                                Value KeyTuple) {
  const Rule &R = Prepared[RI];
  std::span<const Value> Key = F.tupleElems(KeyTuple);
  unsigned KA = P.predicate(NegPred).keyArity();
  // A rule may negate NegPred in several atoms; each is a distinct driver
  // position (the others are probed as ordinary ground negations — the
  // probe re-checks the now-true negation, which is merely redundant).
  for (size_t BI = 0; BI < R.Body.size(); ++BI) {
    const auto *A = std::get_if<BodyAtom>(&R.Body[BI]);
    if (!A || !A->Negated || A->Pred != NegPred)
      continue;
    CurRuleIndex = RI;
    Env.assign(R.NumVars, Value());
    Bound.assign(R.NumVars, 0);
    bool Ok = true;
    for (unsigned I = 0; I < KA && Ok; ++I) {
      const Term &Tm = A->Terms[I];
      if (!Tm.isVar()) {
        Ok = Tm.Constant == Key[I];
        continue;
      }
      if (Bound[Tm.Variable]) {
        Ok = Env[Tm.Variable] == Key[I];
        continue;
      }
      Env[Tm.Variable] = Key[I];
      Bound[Tm.Variable] = 1;
    }
    if (!Ok)
      continue;
    // Legacy recursive walk with the negated atom fronted: the plan
    // library has no negated-driver family (see fixpoint/Plan.h), and
    // this path runs once per retired key, off the per-row hot loop.
    CurDriverRows = nullptr;
    SmallVector<const BodyElem *, 8> Order;
    eval::buildOrder(R, static_cast<int>(BI), Order);
    evalElems(R,
              std::span<const BodyElem *const>(Order.data(), Order.size()),
              0);
  }
}

void Solver::recordProvenance(const Rule &R, PredId HeadPred,
                              uint32_t RowId) {
  std::vector<Derivation> &Rows = Provenance[HeadPred];
  if (Rows.size() <= RowId)
    Rows.resize(RowId + 1);
  Derivation D;
  D.RuleIndex = CurRuleIndex;
  for (const BodyElem &E : R.Body) {
    const auto *A = std::get_if<BodyAtom>(&E);
    if (!A || A->Negated)
      continue;
    const PredicateDecl &AD = P.predicate(A->Pred);
    unsigned KA = AD.keyArity();
    SmallVector<Value, 4> Key;
    for (unsigned I = 0; I < KA; ++I) {
      const Term &Tm = A->Terms[I];
      Key.push_back(Tm.isVar() ? Env[Tm.Variable] : Tm.Constant);
    }
    Derivation::Premise Pr;
    Pr.Pred = A->Pred;
    Pr.Key = F.tuple(std::span<const Value>(Key.data(), Key.size()));
    if (AD.isRelational()) {
      Pr.LatValue = F.boolean(true);
    } else {
      const Term &Lt = A->Terms[KA];
      Pr.LatValue = Lt.isVar() ? Env[Lt.Variable] : Lt.Constant;
    }
    D.Premises.push_back(std::move(Pr));
  }
  Rows[RowId] = std::move(D);
}

//===----------------------------------------------------------------------===//
// Driver loops
//===----------------------------------------------------------------------===//

size_t Solver::memoryFootprint() const {
  size_t Bytes = F.memoryBytes();
  for (const auto &T : Tables)
    Bytes += T->memoryBytes();
  // Provenance: one Derivation per recorded row, plus premise vectors
  // that spilled their inline storage (SmallVector<Premise, 4>).
  for (const auto &Rows : Provenance) {
    Bytes += Rows.capacity() * sizeof(Derivation);
    for (const Derivation &D : Rows)
      if (D.Premises.capacity() > 4)
        Bytes += D.Premises.capacity() * sizeof(Derivation::Premise);
  }
  // Support index: per-premise edge lists (SmallVector<CellRef, 2>).
  for (const auto &Rows : Dependents) {
    Bytes += Rows.capacity() * sizeof(SmallVector<CellRef, 2>);
    for (const auto &Out : Rows)
      if (Out.capacity() > 2)
        Bytes += Out.capacity() * sizeof(CellRef);
  }
  // Negation support index: hash map entries (key + edge list + node
  // overhead estimate) plus spilled edge storage.
  for (const auto &Keys : NegDependents) {
    Bytes += Keys.size() *
             (sizeof(Value) + sizeof(SmallVector<CellRef, 2>) + 16);
    for (const auto &[KeyT, Out] : Keys)
      if (Out.capacity() > 2)
        Bytes += Out.capacity() * sizeof(CellRef);
  }
  if (Memo)
    Bytes += Memo->memoryBytes();
  return Bytes;
}

bool Solver::replanPlans(double Threshold, bool CountEvents) {
  if (!Plans || !Opts.CostBasedPlans)
    return false;
  plan::StatsVec St;
  plan::gatherStats({Tables.data(), Tables.size()}, St);
  plan::PlanLibrary::ReplanResult R = Plans->replanFromStats(St, Threshold);
  if (CountEvents) {
    Stats.ReplanEvents += R.Replanned;
    Stats.EstimatedVsActualRows += R.RowsDivergence;
  }
  Stats.CostBasedPlans = Plans->costBasedPlans();
  return R.Replanned != 0;
}

void Solver::loadFacts() {
  const std::vector<Fact> &Facts = FactsOverride ? *FactsOverride
                                                 : P.facts();
  for (const Fact &Fa : Facts) {
    Value KeyT = F.tuple(std::span<const Value>(Fa.Key.data(),
                                                Fa.Key.size()));
    Tables[Fa.Pred]->join(KeyT, Fa.LatValue);
  }
}

SolveStats Solver::solve() {
  assert(!Solved && "solve() may be called once");
  Solved = true;

  auto Start = std::chrono::steady_clock::now();
  DL = Deadline::after(Opts.TimeLimitSeconds);
  uint64_t IcHitsAtStart = P.vmIcHits();

  auto finish = [&]() {
    Stats.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    Stats.MemoryBytes = memoryFootprint();
    if (Plans)
      Stats.PlanSteps = Plans->totalSteps();
    if (Memo) {
      Stats.MemoHits = Memo->hits();
      Stats.MemoMisses = Memo->misses();
    }
    Stats.VmInlineCacheHits = P.vmIcHits() - IcHitsAtStart;
    Stats.VmInlinedCalls = P.vmPipelineCounters().InlinedCalls;
    Stats.VmSuperwordHits = P.vmPipelineCounters().SuperwordHits;
    Stats.VmPassesRemovedInsns = P.vmPipelineCounters().RemovedInsns;
    return Stats;
  };

  if (std::optional<std::string> Err = P.validate()) {
    Stats.St = SolveStats::Status::Error;
    Stats.Error = *Err;
    return finish();
  }

  StratifyResult SR = stratify(P);
  if (!SR.ok()) {
    Stats.St = SolveStats::Status::Error;
    Stats.Error = SR.Error;
    return finish();
  }
  Strata = std::move(SR.Strat);
  const Stratification &St = *Strata;

  loadFacts();
  // Initial cost-based order choice: plans were compiled against empty
  // tables, so the first useful statistics exist only now. Threshold 1.0
  // adopts any strict improvement; not counted as an adaptive replan.
  replanPlans(1.0, /*CountEvents=*/false);

  for (uint32_t S = 0; S < St.numStrata() && !Aborted; ++S) {
    const std::vector<uint32_t> &RuleIds = St.RulesByStratum[S];
    if (RuleIds.empty())
      continue;

    if (Opts.Strat == Strategy::Naive) {
      // Re-evaluate every rule until a full pass derives nothing new.
      uint64_t Before;
      do {
        Before = Stats.FactsDerived;
        for (uint32_t RI : RuleIds) {
          if (Aborted)
            break;
          CurRuleIndex = RI;
          evalRule(Prepared[RI], -1, {});
        }
        ++Stats.Iterations;
        if (Opts.MaxIterations && Stats.Iterations >= Opts.MaxIterations) {
          if (Before != Stats.FactsDerived) {
            Stats.St = SolveStats::Status::IterationLimit;
            return finish();
          }
          break;
        }
      } while (Before != Stats.FactsDerived && !Aborted);
      for (auto &ND : NextDelta)
        ND.clear();
      continue;
    }

    // Semi-naive. Round 0 is a full evaluation of the stratum's rules;
    // subsequent rounds instantiate one body atom at a time from ΔP.
    for (auto &ND : NextDelta)
      ND.clear();
    for (uint32_t RI : RuleIds) {
      if (Aborted)
        break;
      CurRuleIndex = RI;
      evalRule(Prepared[RI], -1, {});
    }
    ++Stats.Iterations;

    while (!Aborted) {
      bool AnyDelta = false;
      for (size_t PI = 0; PI < NextDelta.size(); ++PI) {
        Delta[PI].assign(NextDelta[PI].begin(), NextDelta[PI].end());
        // Deterministic iteration order for reproducible runs.
        std::sort(Delta[PI].begin(), Delta[PI].end());
        NextDelta[PI].clear();
        AnyDelta |= !Delta[PI].empty();
      }
      if (!AnyDelta)
        break;
      if (Opts.MaxIterations && Stats.Iterations >= Opts.MaxIterations) {
        Stats.St = SolveStats::Status::IterationLimit;
        return finish();
      }
      // Adaptive re-plan at the round boundary: single-threaded here, and
      // no evaluation is in flight, so swapping plans is safe. The
      // sequential engine probes via Table::probe (lazy index build), so a
      // new mask needs no pre-building.
      if (Opts.ReplanThreshold > 0)
        replanPlans(Opts.ReplanThreshold, /*CountEvents=*/true);
      for (uint32_t RI : RuleIds) {
        const Rule &R = Prepared[RI];
        CurRuleIndex = RI;
        for (size_t BI = 0; BI < R.Body.size() && !Aborted; ++BI) {
          const auto *A = std::get_if<BodyAtom>(&R.Body[BI]);
          if (!A || A->Negated)
            continue;
          if (Delta[A->Pred].empty())
            continue;
          evalRule(R, static_cast<int>(BI), Delta[A->Pred]);
        }
      }
      ++Stats.Iterations;
    }
  }

  return finish();
}

//===----------------------------------------------------------------------===//
// Query API
//===----------------------------------------------------------------------===//

bool Solver::contains(PredId Pred, std::span<const Value> Tuple) const {
  assert(P.predicate(Pred).isRelational() && "contains() is for relations");
  Value KeyT = F.tuple(Tuple);
  return Tables[Pred]->lookup(KeyT) != nullptr;
}

Value Solver::latValue(PredId Pred, std::span<const Value> Key) const {
  const PredicateDecl &D = P.predicate(Pred);
  assert(!D.isRelational() && "latValue() is for lattice predicates");
  Value KeyT = F.tuple(Key);
  const Value *V = Tables[Pred]->lookup(KeyT);
  return V ? *V : D.Lat->bot();
}

const Derivation *Solver::explain(PredId Pred,
                                  std::span<const Value> Key) const {
  if (!Opts.TrackProvenance)
    return nullptr;
  Value KeyT = F.tuple(Key);
  uint32_t Row = Tables[Pred]->lookupRow(KeyT);
  if (Row == Table::NoRow)
    return nullptr;
  // Rows no rule ever increased came straight from the input facts.
  static const Derivation FactDerivation;
  if (Row >= Provenance[Pred].size())
    return &FactDerivation;
  return &Provenance[Pred][Row];
}

void Solver::renderExplanation(std::string &Out, PredId Pred,
                               Value KeyTuple, unsigned Depth,
                               unsigned Indent) const {
  const PredicateDecl &D = P.predicate(Pred);
  Out.append(Indent, ' ');
  Out += D.Name;
  Out += '(';
  std::span<const Value> Key = F.tupleElems(KeyTuple);
  for (size_t I = 0; I < Key.size(); ++I) {
    if (I)
      Out += ", ";
    Out += F.toString(Key[I]);
  }
  Out += ')';
  uint32_t Row = Tables[Pred]->lookupRow(KeyTuple);
  if (Row == Table::NoRow) {
    Out += " [absent]\n";
    return;
  }
  if (!D.isRelational()) {
    Out += " = ";
    Out += F.toString(Tables[Pred]->row(Row).Lat);
  }
  const Derivation *Der = Row < Provenance[Pred].size()
                              ? &Provenance[Pred][Row]
                              : nullptr;
  if (!Der || Der->RuleIndex == Derivation::FromFact) {
    Out += "   <- fact\n";
    return;
  }
  Out += "   <- rule #" + std::to_string(Der->RuleIndex) + "\n";
  if (Depth == 0) {
    if (!Der->Premises.empty()) {
      Out.append(Indent + 2, ' ');
      Out += "...\n";
    }
    return;
  }
  for (const Derivation::Premise &Pr : Der->Premises)
    renderExplanation(Out, Pr.Pred, Pr.Key, Depth - 1, Indent + 2);
}

std::string Solver::explainString(PredId Pred, std::span<const Value> Key,
                                  unsigned Depth) const {
  if (!Opts.TrackProvenance)
    return "(provenance not tracked; set "
           "SolverOptions::TrackProvenance)\n";
  std::string Out;
  renderExplanation(Out, Pred, F.tuple(Key), Depth, 0);
  return Out;
}

std::vector<std::vector<Value>> Solver::tuples(PredId Pred) const {
  const PredicateDecl &D = P.predicate(Pred);
  std::vector<std::vector<Value>> Out;
  const Table &T = *Tables[Pred];
  Out.reserve(T.liveSize());
  for (const Table::Row &R : T.rows()) {
    if (R.Lat == T.botValue())
      continue; // tombstoned (logically absent)
    std::span<const Value> Key = F.tupleElems(R.Key);
    std::vector<Value> Tup(Key.begin(), Key.end());
    if (!D.isRelational())
      Tup.push_back(R.Lat);
    Out.push_back(std::move(Tup));
  }
  return Out;
}
