//===- fixpoint/Solver.h - Naive and semi-naive solvers -------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fixed-point solver: computes the minimal model of a fixpoint
/// Program by bottom-up evaluation. Two strategies are provided:
///
///   * Naive — repeatedly re-evaluates every rule until nothing changes;
///     the direct reading of the immediate-consequence operator (§3.1).
///   * SemiNaive — the paper's adaptation of semi-naive evaluation to
///     lattices (§3.7): the incremental relation ΔP contains every cell
///     whose lattice value *strictly increased*, and each rule is
///     re-evaluated once per body atom with that atom instantiated from
///     ΔP and the rest from the full tables.
///
/// Both strategies evaluate rule bodies left-to-right with automatic hash
/// indexes on the bound-column patterns (§4.5); an optional greedy
/// reordering of body atoms is available as an ablation.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_FIXPOINT_SOLVER_H
#define FLIX_FIXPOINT_SOLVER_H

#include "fixpoint/Program.h"
#include "fixpoint/Stratify.h"
#include "fixpoint/Table.h"
#include "support/Deadline.h"

#include <memory>
#include <unordered_map>
#include <unordered_set>

namespace flix {

namespace plan {
class PlanLibrary;
class ExternMemo;
} // namespace plan

/// Evaluation strategy (see file comment).
enum class Strategy { Naive, SemiNaive };

/// Tunables for one solver run.
struct SolverOptions {
  Strategy Strat = Strategy::SemiNaive;
  /// Use lazily created secondary hash indexes for partially bound atoms;
  /// when false, every partially bound atom falls back to a full scan.
  bool UseIndexes = true;
  /// Greedily reorder body elements to maximize bound columns (ablation
  /// for the paper's left-to-right evaluation, §4.5).
  bool ReorderBody = false;
  /// Abort with Status::Timeout after this many seconds (0 = unlimited).
  double TimeLimitSeconds = 0;
  /// Abort after this many delta iterations (0 = unlimited).
  uint64_t MaxIterations = 0;
  /// Record, for every cell, the rule instantiation that last increased
  /// it, enabling explain() after solving. Costs time and memory; off by
  /// default.
  bool TrackProvenance = false;
  /// Maintain the support index (per body row, the head cells it helped
  /// increase) that the incremental engine's Delete/Re-derive pass walks
  /// on retraction. Unlike TrackProvenance (which keeps only the *last*
  /// increasing derivation), the support index keeps an edge for *every*
  /// changed join, so over-deletion is sound. Set by IncrementalSolver;
  /// off by default.
  bool TrackSupport = false;
  /// Worker threads for the ParallelSolver (src/parallel). 0 selects the
  /// sequential legacy path (this class); the sequential Solver itself
  /// ignores the field. Callers that accept SolverOptions dispatch on it.
  unsigned NumThreads = 0;
  /// Serialize every external-function call behind one mutex in the
  /// parallel solver. Required when the externals are not thread-safe —
  /// e.g. the AST interpreter backing compiled FLIX source; native
  /// analyses whose externals only touch the (lock-sharded) ValueFactory
  /// leave this off.
  bool SerializeExternals = false;
  /// Intra-rule join parallelism (parallel solver only): when one atom's
  /// index bucket or full scan has more than this many remaining rows,
  /// the worker splits the tail into sub-tasks pushed onto its
  /// work-stealing deque (capturing the bound-env prefix), so a single
  /// hot driver row no longer serializes a round. 0 disables splitting.
  /// The default balances sub-task overhead (~1 env copy + deque push)
  /// against steal granularity; see DESIGN.md S11.
  uint32_t SpillThreshold = 1024;
  /// Debug check (parallel solver only): assert that every (pred, mask)
  /// access path the workers take via Table::probeExisting was pre-built
  /// by the static index analysis instead of silently falling back to a
  /// full scan. Fallbacks are always counted in
  /// SolveStats::IndexFallbacks; with this flag set they also trip an
  /// assert in debug builds. Meaningful only with UseIndexes.
  bool StrictIndexCoverage = false;
  /// Compile each (rule, driver) into a flat join plan executed by a
  /// non-recursive loop (src/fixpoint/Plan.h) instead of the recursive
  /// evalElems/evalAtom walk. Same minimal model either way; off is the
  /// legacy-recursion ablation.
  bool CompilePlans = true;
  /// Memoize external-function calls on their hash-consed argument
  /// handles. Sound because the paper requires transfer/filter functions
  /// to be pure (§2.3); turn off to ablate, or if an extern violates the
  /// purity contract.
  bool EnableMemo = true;
  /// Dispatch extern calls to their bytecode-VM implementation
  /// (ExternFn::VmImpl) when one is attached, instead of the
  /// tree-walking interpreter closure. The two are value-identical
  /// (differentially tested); off is the interpreter ablation
  /// (flixc --no-vm).
  bool UseVm = true;
  /// Bytecode optimization pipeline level the VM compiled under
  /// (flixc/flixd --vm-opt-level): 0 = off, 1 = local passes,
  /// 2 = inlining + local passes. Informational at the solver layer —
  /// the pipeline runs at compile time (FlixCompiler::setVmOptLevel);
  /// tools carry the flag here so every consumer sees one source of
  /// truth.
  int VmOptLevel = 2;
  /// Choose join orders with the statistics-driven cost model
  /// (plan::chooseOrder) once facts are loaded, instead of freezing the
  /// driver-first order at compile time. Identical minimal model either
  /// way (⊔-confluence, checked by PlanDifferentialTest); off is the
  /// frozen-greedy ablation (flixc --no-cost-plans). Only meaningful with
  /// CompilePlans.
  bool CostBasedPlans = true;
  /// Adaptive re-planning (CostBasedPlans only): between semi-naive
  /// rounds, re-plan any (rule, driver) whose current order's estimated
  /// cost exceeds this factor × the best candidate's under fresh table
  /// statistics. <= 0 disables the between-round checks (initial
  /// cost-based choice only). The default keeps enough hysteresis that
  /// uniform workloads never flip plans mid-solve.
  double ReplanThreshold = 4.0;
};

/// A cell addressed as (predicate, row id) — the node type of the
/// incremental engine's support index. Row ids are stable across
/// tombstoning (Table::resetRow) and revival, so CellRefs stay valid for
/// the lifetime of a solver.
struct CellRef {
  PredId Pred;
  uint32_t Row;
  bool operator==(const CellRef &O) const {
    return Pred == O.Pred && Row == O.Row;
  }
  bool operator<(const CellRef &O) const {
    return Pred != O.Pred ? Pred < O.Pred : Row < O.Row;
  }
};

/// Why a cell holds its value: the rule that last increased it and the
/// ground body atoms of that rule instance (facts have no premises).
struct Derivation {
  static constexpr uint32_t FromFact = UINT32_MAX;
  uint32_t RuleIndex = FromFact;
  struct Premise {
    PredId Pred;
    Value Key;      ///< interned key tuple of the matched row
    Value LatValue; ///< the lattice value observed at match time
  };
  SmallVector<Premise, 4> Premises;
};

/// Outcome and counters of a solver run.
struct SolveStats {
  enum class Status { Fixpoint, Timeout, IterationLimit, Error };
  Status St = Status::Fixpoint;
  std::string Error;

  uint64_t Iterations = 0;   ///< delta rounds (or naive passes)
  uint64_t RuleFirings = 0;  ///< successful full body matches
  uint64_t FactsDerived = 0; ///< joins that strictly increased a cell
  double Seconds = 0;
  /// Tables + indexes + value arena + provenance + support index + memo
  /// cache — everything the solver keeps alive.
  size_t MemoryBytes = 0;

  // Plan/memo counters (SolverOptions::CompilePlans / EnableMemo).
  uint64_t PlanSteps = 0;  ///< compiled plan steps over all (rule, driver)
                           ///< plans (0 when plans are disabled)
  // Cost-based planner counters (SolverOptions::CostBasedPlans).
  uint64_t CostBasedPlans = 0; ///< (rule, driver) pairs whose current
                               ///< order differs from the frozen
                               ///< driver-first order
  uint64_t ReplanEvents = 0;   ///< (rule, driver) pairs re-planned by the
                               ///< adaptive between-round checks (the
                               ///< initial cost-based choice not counted)
  /// Cumulative live-row drift between consecutive planner statistics
  /// snapshots (Σ per-predicate |rows now − rows at last plan|): how far
  /// the observed delta shapes moved from what the current plans were
  /// estimated against. Large values with ReplanEvents == 0 mean the
  /// hysteresis threshold absorbed the drift.
  uint64_t EstimatedVsActualRows = 0;
  /// Incremental-engine escape hatches taken so far: update() batches
  /// that fell back to a from-scratch solve. Always the sum of the two
  /// reason counters below; kept as the headline total operators already
  /// watch (flixc --stats / --json, the daemon's `stats` reply). Always 0
  /// for a plain one-shot Solver run. Cumulative over the
  /// IncrementalSolver's lifetime.
  uint64_t FallbackSolves = 0;
  /// Fallbacks taken because a staged fact reached a negated predicate.
  /// This escape hatch was retired — negation-touching batches now run
  /// stratum-local DRed incrementally — so the counter is an operator-
  /// visible invariant: it must stay 0 (tests assert it).
  uint64_t NegationFallbacks = 0;
  /// Recovery solves after a degraded update (deadline / iteration limit
  /// hit mid-batch left the tables a sound under-approximation, not a
  /// fixpoint; the next update() rebuilds from the fact store).
  uint64_t DegradedRecoveries = 0;
  uint64_t MemoHits = 0;   ///< extern calls answered from the memo cache
  uint64_t MemoMisses = 0; ///< extern calls computed then cached

  // Bytecode-VM counters (SolverOptions::UseVm).
  uint64_t VmCalls = 0; ///< extern dispatches executed by the VM (memo
                        ///< hits excluded — only actual executions)
  uint64_t VmInlineCacheHits = 0; ///< tag-dispatch + tuple-check inline
                                  ///< cache hits during this run
  /// Extern dispatches that wanted the VM (UseVm on, interpreted FLIX
  /// function) but had no compiled body and fell back to the
  /// interpreter. The standard suites assert this stays 0 — the VM
  /// compiler covers the whole functional sub-language.
  uint64_t InterpFallbacks = 0;
  // Static pipeline counters (vm/Passes.h), fixed when the module
  // compiled — identical across runs of the same program, reported so
  // tools can show what the optimizer did without a recompile.
  uint64_t VmInlinedCalls = 0;     ///< CallFn sites spliced inline
  uint64_t VmSuperwordHits = 0;    ///< compare+branch pairs fused
  uint64_t VmPassesRemovedInsns = 0; ///< instructions removed by passes

  // Parallel-engine counters (zero for the sequential solver).
  uint64_t ParallelTasks = 0;   ///< (rule, driver, chunk) tasks executed
  uint64_t ParallelSteals = 0;  ///< tasks obtained by work stealing
  uint64_t MergeCollisions = 0; ///< ⊔-compactions of same-key derivations
  uint64_t SpawnedSubtasks = 0; ///< intra-rule sub-tasks split off by
                                ///< workers (SolverOptions::SpillThreshold)
  uint64_t MaxFanout = 0;       ///< largest number of sub-tasks one split
                                ///< produced (hot-row fan-out indicator)
  uint64_t IndexBuildTasks = 0; ///< pool tasks used to pre-build static
                                ///< indexes (partial scans + merges)
  uint64_t IndexFallbacks = 0;  ///< probeExisting misses that fell back to
                                ///< a full scan (0 when the static index
                                ///< analysis covers every access path)

  bool ok() const { return St == Status::Fixpoint; }
};

/// Greedily reorders a rule's body to maximize bound columns at each
/// step (ablation for the paper's left-to-right evaluation, §4.5).
/// Shared by the sequential Solver and the parallel solver
/// (src/parallel/ParallelSolver.h), both of which apply it when
/// SolverOptions::ReorderBody is set.
Rule reorderRuleGreedy(const Rule &R);

/// Solves one Program. The solver owns the predicate tables; query them
/// through the accessors after solve() returns.
class Solver {
public:
  explicit Solver(const Program &P, SolverOptions Opts = SolverOptions());
  Solver(const Solver &) = delete;
  Solver &operator=(const Solver &) = delete;
  ~Solver();

  /// Runs to fixpoint (or to a limit). May be called once.
  SolveStats solve();

  /// The table of predicate \p P (valid after solve()).
  const Table &table(PredId P) const { return *Tables[P]; }

  /// True if the relational tuple is in the minimal model.
  bool contains(PredId P, std::span<const Value> Tuple) const;
  bool contains(PredId P, std::initializer_list<Value> Tuple) const {
    return contains(P, std::span<const Value>(Tuple.begin(), Tuple.size()));
  }

  /// The lattice element of cell (P, Key); ⊥ if the cell is absent.
  Value latValue(PredId P, std::span<const Value> Key) const;
  Value latValue(PredId P, std::initializer_list<Value> Key) const {
    return latValue(P, std::span<const Value>(Key.begin(), Key.size()));
  }

  /// Materializes all rows of \p P as (key..., latValue) tuples, in
  /// insertion order. For relational predicates the Bool value is omitted.
  std::vector<std::vector<Value>> tuples(PredId P) const;

  /// The derivation that last increased cell (P, Key), or nullptr if the
  /// cell is absent or provenance was not tracked. For relational
  /// predicates the key is the full tuple.
  const Derivation *explain(PredId P, std::span<const Value> Key) const;

  /// Renders a human-readable derivation tree for cell (P, Key) down to
  /// \p Depth levels of premises.
  std::string explainString(PredId P, std::span<const Value> Key,
                            unsigned Depth = 3) const;

  /// Total edges currently stored in the support index (0 unless
  /// TrackSupport); exposed so tests can bound edge growth over long
  /// update streams.
  size_t supportEdgeCount() const;

  /// Total edges in the negation support index (NegDependents): one per
  /// (negated key, head cell) pair currently recorded. Same purpose as
  /// supportEdgeCount() — bounding index growth in tests.
  size_t negSupportEdgeCount() const;

private:
  friend class IncrementalSolver;
  struct Frame;
  struct PlanEngine;

  void loadFacts();
  void evalRule(const Rule &R, int Driver,
                const std::vector<uint32_t> &DriverRows);
  void evalElems(const Rule &R,
                 std::span<const BodyElem *const> Order, size_t Pos);
  void matchAtomRow(const Rule &R, const BodyAtom &A, uint32_t RowId,
                    std::span<const BodyElem *const> Order, size_t Pos);
  void evalAtom(const Rule &R, const BodyAtom &A,
                std::span<const BodyElem *const> Order, size_t Pos);
  void deriveHead(const Rule &R);
  bool checkDeadline();
  /// External-function dispatch: through the memo cache when EnableMemo,
  /// else straight to the implementation. Both the legacy recursive walk
  /// and the plan executor call externs through here.
  Value callExtern(FnId Fn, std::span<const Value> Args);
  Rule reorderRule(const Rule &R) const;
  void recordProvenance(const Rule &R, PredId HeadPred, uint32_t RowId);
  void recordSupport(const Rule &R, PredId HeadPred, uint32_t RowId);
  /// Head-bound re-derivation (the incremental engine's "Re-derive"): for
  /// every rule whose head predicate is \p Pred, pre-binds the head key
  /// terms against \p KeyTuple's elements and evaluates the body over the
  /// current database, re-joining whatever the surviving derivations
  /// yield for exactly that cell. Changed joins land in NextDelta as
  /// usual.
  void rederive(PredId Pred, Value KeyTuple);
  /// Negation-driven evaluation (the incremental engine's insert-delta
  /// for `not P`): for every negated atom on \p NegPred in rule \p RI,
  /// pre-binds that atom's key terms against \p KeyTuple — a key whose
  /// row just left \p NegPred's table, making the ground negation true —
  /// and evaluates the rest of the body over the current database with
  /// the negated atom fronted as the driver. Always takes the legacy
  /// recursive path (the plan library compiles no negated-driver family);
  /// derivations land in NextDelta as usual. Sound because the engine
  /// calls this only after NegPred's stratum has settled, when its table
  /// is final for the update.
  void evalNegationDriven(uint32_t RI, PredId NegPred, Value KeyTuple);
  void renderExplanation(std::string &Out, PredId P, Value KeyTuple,
                         unsigned Depth, unsigned Indent) const;
  /// Everything SolveStats::MemoryBytes accounts for: value arena, tables
  /// + indexes, provenance, the support index, and the memo cache. Also
  /// used by the incremental engine's per-update stats.
  size_t memoryFootprint() const;
  /// Cost-based (re)planning: snapshots table statistics and re-plans via
  /// PlanLibrary::replanFromStats. \p Threshold 1.0 adopts any strict
  /// improvement (the initial post-loadFacts choice); larger values are
  /// the adaptive between-round hysteresis. \p CountEvents selects
  /// whether replans land in SolveStats::ReplanEvents (adaptive checks
  /// only). No-op unless plans are compiled and CostBasedPlans is set.
  /// Called only at single-threaded points (solve start, round
  /// boundaries) — also by the incremental engine between delta rounds.
  /// Returns true if any plan changed (the incremental engine then
  /// refreshes its workers' pre-built indexes).
  bool replanPlans(double Threshold, bool CountEvents);

  const Program &P;
  SolverOptions Opts;
  ValueFactory &F;
  std::unique_ptr<BoolLattice> RelLattice;
  std::vector<std::unique_ptr<Table>> Tables;
  std::vector<Rule> Prepared; ///< rules, possibly reordered

  /// Compiled join plans (when CompilePlans) and the extern memo cache
  /// (when EnableMemo); see src/fixpoint/Plan.h.
  std::unique_ptr<plan::PlanLibrary> Plans;
  std::unique_ptr<plan::ExternMemo> Memo;

  // Per-rule-evaluation state.
  std::vector<Value> Env;
  std::vector<uint8_t> Bound;
  const std::vector<uint32_t> *CurDriverRows = nullptr;
  uint32_t CurRuleIndex = 0; ///< index into Prepared, for provenance

  /// Provenance (when tracked): per predicate, per row id, the last
  /// increasing derivation.
  std::vector<std::vector<Derivation>> Provenance;

  /// Support index (when TrackSupport): per predicate, per row id, the
  /// head cells whose value a join through this row strictly increased.
  /// Over-approximates true support (edges are never removed when a
  /// premise's contribution is superseded), which only causes extra —
  /// sound — over-deletion in the incremental engine.
  std::vector<std::vector<SmallVector<CellRef, 2>>> Dependents;

  /// Negation support index (when TrackSupport): per negated predicate,
  /// key tuple → the head cells derived through `!P(key)` succeeding
  /// while that key was absent. Keyed by tuple, not row id, because the
  /// negated key typically has no row at all. When a key (re)enters the
  /// table, the incremental engine over-deletes exactly these cells and
  /// consumes (erases) the entry; re-derivation re-records whichever
  /// edges still hold. Same over-approximation discipline as Dependents.
  std::vector<std::unordered_map<Value, SmallVector<CellRef, 2>>>
      NegDependents;

  /// When non-null, loadFacts() reads this fact set instead of
  /// P.facts() — the incremental engine's materialized fact store.
  const std::vector<Fact> *FactsOverride = nullptr;

  /// Rule indexes (into Prepared) grouped by head predicate, for
  /// rederive().
  std::vector<std::vector<uint32_t>> RulesByHead;

  // Delta bookkeeping (SemiNaive).
  std::vector<std::vector<uint32_t>> Delta;
  std::vector<std::unordered_set<uint32_t>> NextDelta;

  /// The stratification computed by solve(), kept for the incremental
  /// engine's per-stratum update rounds.
  std::optional<Stratification> Strata;

  // Run state.
  SolveStats Stats;
  bool Solved = false;
  bool Aborted = false;
  Deadline DL;
};

} // namespace flix

#endif // FLIX_FIXPOINT_SOLVER_H
