//===- fixpoint/Stratify.cpp - Stratified negation ------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Stratify.h"

using namespace flix;

StratifyResult flix::stratify(const Program &P) {
  const size_t NumPreds = P.predicates().size();
  std::vector<uint32_t> Stratum(NumPreds, 0);

  // Iteratively relax stratum constraints:
  //   positive dependency: stratum(head) >= stratum(body)
  //   negative dependency: stratum(head) >  stratum(body)
  // A stratum exceeding the number of predicates proves a negative cycle.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (const Rule &R : P.rules()) {
      uint32_t &Head = Stratum[R.Head.Pred];
      for (const BodyElem &E : R.Body) {
        const auto *A = std::get_if<BodyAtom>(&E);
        if (!A)
          continue;
        uint32_t Required = Stratum[A->Pred] + (A->Negated ? 1 : 0);
        if (Head < Required) {
          Head = Required;
          Changed = true;
          if (Head > NumPreds) {
            StratifyResult Res;
            Res.Error = "program is not stratifiable: cycle through "
                        "negation involving predicate " +
                        P.predicate(R.Head.Pred).Name;
            return Res;
          }
        }
      }
    }
  }

  uint32_t MaxStratum = 0;
  for (uint32_t S : Stratum)
    MaxStratum = std::max(MaxStratum, S);

  Stratification St;
  St.PredStratum = std::move(Stratum);
  St.RulesByStratum.resize(MaxStratum + 1);
  St.NegUsesByStratum.resize(MaxStratum + 1);
  St.PredNegated.assign(NumPreds, 0);
  for (uint32_t RI = 0; RI < P.rules().size(); ++RI) {
    const Rule &R = P.rules()[RI];
    uint32_t Str = St.PredStratum[R.Head.Pred];
    St.RulesByStratum[Str].push_back(RI);
    // Negation edges, deduped per (rule, predicate). Body order is
    // irrelevant here — consumers locate the actual atoms in the
    // (possibly reordered) prepared rule themselves.
    for (const BodyElem &E : R.Body) {
      const auto *A = std::get_if<BodyAtom>(&E);
      if (!A || !A->Negated)
        continue;
      St.PredNegated[A->Pred] = 1;
      auto &Uses = St.NegUsesByStratum[Str];
      bool Dup = false;
      for (const NegUse &U : Uses)
        if (U.RuleIdx == RI && U.Pred == A->Pred) {
          Dup = true;
          break;
        }
      if (!Dup)
        Uses.push_back({RI, A->Pred});
    }
  }

  StratifyResult Res;
  Res.Strat = std::move(St);
  return Res;
}
