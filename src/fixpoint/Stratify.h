//===- fixpoint/Stratify.h - Stratified negation --------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stratification for programs with negated body atoms. The paper lists
/// negation as future work (§7); we implement the classic stratified
/// semantics (Apt, Blair & Walker): a predicate may only be negated if it
/// is fully computed in a strictly lower stratum, which rules out negative
/// cycles like `A(x) :- !B(x). B(x) :- !A(x).`
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_FIXPOINT_STRATIFY_H
#define FLIX_FIXPOINT_STRATIFY_H

#include "fixpoint/Program.h"

#include <optional>
#include <string>
#include <vector>

namespace flix {

/// One use of a negated predicate by a rule: rule \p RuleIdx has at least
/// one negated body atom on \p Pred. Deduplicated per (rule, predicate) —
/// a rule negating the same predicate in two atoms yields one entry; the
/// consumer re-scans the rule body for every matching atom.
struct NegUse {
  uint32_t RuleIdx;
  PredId Pred;
};

/// Assignment of predicates and rules to evaluation strata. Strata are
/// evaluated in increasing order; each stratum is solved to fixpoint
/// before the next begins.
///
/// The negation-edge views (NegUsesByStratum, PredNegated) exist for the
/// incremental engine's stratum-local DRed: when a batch changes a
/// negated predicate, the engine converts the net presence changes of
/// that predicate — computed once its own stratum has settled — into
/// deletion seeds and re-derivation drivers for exactly the higher-
/// stratum rules that negate it. Stratification guarantees every rule
/// negating P sits in a stratum strictly above P's, so by the time those
/// rules run, P's table is final for this update.
struct Stratification {
  std::vector<uint32_t> PredStratum;               ///< per PredId
  std::vector<std::vector<uint32_t>> RulesByStratum; ///< rule indices
  /// Per stratum: the (rule, negated predicate) pairs of that stratum's
  /// rules. Entry order follows rule order; pairs are unique.
  std::vector<std::vector<NegUse>> NegUsesByStratum;
  /// Per PredId: true iff some rule negates it. Always a strictly lower
  /// stratum than every negating rule's head.
  std::vector<uint8_t> PredNegated;
  uint32_t numStrata() const {
    return static_cast<uint32_t>(RulesByStratum.size());
  }
};

/// Computes a stratification of \p P. Returns an error message if the
/// program has a cycle through negation (and is thus not stratifiable).
struct StratifyResult {
  std::optional<Stratification> Strat;
  std::string Error;
  bool ok() const { return Strat.has_value(); }
};

StratifyResult stratify(const Program &P);

} // namespace flix

#endif // FLIX_FIXPOINT_STRATIFY_H
