//===- fixpoint/Stratify.h - Stratified negation --------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Stratification for programs with negated body atoms. The paper lists
/// negation as future work (§7); we implement the classic stratified
/// semantics (Apt, Blair & Walker): a predicate may only be negated if it
/// is fully computed in a strictly lower stratum, which rules out negative
/// cycles like `A(x) :- !B(x). B(x) :- !A(x).`
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_FIXPOINT_STRATIFY_H
#define FLIX_FIXPOINT_STRATIFY_H

#include "fixpoint/Program.h"

#include <optional>
#include <string>
#include <vector>

namespace flix {

/// Assignment of predicates and rules to evaluation strata. Strata are
/// evaluated in increasing order; each stratum is solved to fixpoint
/// before the next begins.
struct Stratification {
  std::vector<uint32_t> PredStratum;               ///< per PredId
  std::vector<std::vector<uint32_t>> RulesByStratum; ///< rule indices
  uint32_t numStrata() const {
    return static_cast<uint32_t>(RulesByStratum.size());
  }
};

/// Computes a stratification of \p P. Returns an error message if the
/// program has a cycle through negation (and is thus not stratifiable).
struct StratifyResult {
  std::optional<Stratification> Strat;
  std::string Error;
  bool ok() const { return Strat.has_value(); }
};

StratifyResult stratify(const Program &P);

} // namespace flix

#endif // FLIX_FIXPOINT_STRATIFY_H
