//===- fixpoint/Table.cpp - Lattice-aware indexed tables ------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Table.h"

#include "support/SmallVector.h"

#include <algorithm>
#include <cassert>

using namespace flix;

const std::vector<uint32_t> Table::EmptyBucket;

// Estimated heap bytes of one map node of a bucket map (hash-map node
// header + key + vector object). Bucket *payload* is charged separately
// from vector capacity, so this only covers the fixed per-bucket part.
static constexpr size_t BucketNodeBytes =
    sizeof(Value) + sizeof(std::vector<uint32_t>) + 16;

void Table::Index::add(Value Proj, uint32_t Id) {
  auto [It, Inserted] = Buckets.try_emplace(Proj);
  if (Inserted)
    Bytes += BucketNodeBytes;
  std::vector<uint32_t> &B = It->second;
  size_t OldCap = B.capacity();
  B.push_back(Id);
  if (B.capacity() != OldCap)
    Bytes += (B.capacity() - OldCap) * sizeof(uint32_t);
  MaxBucket = std::max(MaxBucket, B.size());
}

Table::JoinResult Table::join(Value KeyTuple, Value LatVal) {
  auto It = Primary.find(KeyTuple);
  if (It != Primary.end()) {
    Row &R = Rows[It->second];
    Value Joined = Lat.lub(R.Lat, LatVal);
    assert(Lat.leq(R.Lat, Joined) && Lat.leq(LatVal, Joined) &&
           "lub not an upper bound; malformed lattice");
    if (Joined == R.Lat)
      return {It->second, false};
    if (R.Lat == Bot)
      --NumTombstones; // tombstoned row revived in place
    R.Lat = Joined;
    return {It->second, true};
  }
  // New cell. ⊥ cells are not materialized.
  if (LatVal == Bot)
    return {NoRow, false};
  uint32_t Id = static_cast<uint32_t>(Rows.size());
  Rows.push_back({KeyTuple, LatVal});
  Primary.emplace(KeyTuple, Id);
  // Keep existing secondary indexes in sync.
  std::span<const Value> KeyElems = F.tupleElems(KeyTuple);
  for (Index &Ix : Indexes)
    Ix.add(projectKey(KeyElems, Ix.Mask), Id);
  return {Id, true};
}

void Table::resetRow(uint32_t Id) {
  assert(Id < Rows.size());
  Row &R = Rows[Id];
  if (R.Lat == Bot)
    return;
  R.Lat = Bot;
  ++NumTombstones;
}

const Value *Table::lookup(Value KeyTuple) const {
  auto It = Primary.find(KeyTuple);
  if (It == Primary.end() || Rows[It->second].Lat == Bot)
    return nullptr;
  return &Rows[It->second].Lat;
}

uint32_t Table::lookupRow(Value KeyTuple) const {
  auto It = Primary.find(KeyTuple);
  if (It == Primary.end() || Rows[It->second].Lat == Bot)
    return NoRow;
  return It->second;
}

Value Table::projectKey(std::span<const Value> KeyElems,
                        uint64_t Mask) const {
  SmallVector<Value, 4> Proj;
  for (unsigned I = 0; I < KeyArity; ++I)
    if (Mask & (uint64_t(1) << I))
      Proj.push_back(KeyElems[I]);
  return F.tuple(std::span<const Value>(Proj.data(), Proj.size()));
}

Table::Index *Table::findIndex(uint64_t Mask) {
  for (Index &Ix : Indexes)
    if (Ix.Mask == Mask)
      return &Ix;
  return nullptr;
}

Table::Index &Table::ensureIndex(uint64_t Mask) {
  if (Index *Ix = findIndex(Mask))
    return *Ix;
  Indexes.push_back(Index{Mask, {}, 0});
  Index &Ix = Indexes.back();
  for (uint32_t Id = 0; Id < Rows.size(); ++Id)
    Ix.add(projectKey(F.tupleElems(Rows[Id].Key), Mask), Id);
  return Ix;
}

void Table::buildPartialIndex(uint64_t Mask, uint32_t Begin, uint32_t End,
                              PartialIndex &Out) const {
  assert(End <= Rows.size());
  for (uint32_t Id = Begin; Id < End; ++Id)
    Out[projectKey(F.tupleElems(Rows[Id].Key), Mask)].push_back(Id);
}

void Table::reserveIndexSlots(std::span<const uint64_t> Masks) {
  for (uint64_t Mask : Masks)
    if (!findIndex(Mask))
      Indexes.push_back(Index{Mask, {}, 0});
}

void Table::buildIndexFromPartials(uint64_t Mask,
                                   std::span<PartialIndex> Parts) {
  Index *Ix = findIndex(Mask);
  assert(Ix && "slot must be pre-created with reserveIndexSlots");
  assert(Ix->Buckets.empty() && "index already built");
  // Size the bucket map once: the union's bucket count is at most the sum
  // of the partials' (and usually close to the largest partial's).
  size_t KeyEstimate = 0;
  for (const PartialIndex &P : Parts)
    KeyEstimate += P.size();
  Ix->Buckets.reserve(KeyEstimate);
  // Partials are ordered by row range and each partial's buckets hold
  // ascending ids, so appending in partial order keeps every merged
  // bucket ascending — the same layout ensureIndex produces.
  for (PartialIndex &P : Parts) {
    for (auto &[Proj, Ids] : P) {
      auto [It, Inserted] = Ix->Buckets.try_emplace(Proj);
      if (Inserted)
        Ix->Bytes += BucketNodeBytes;
      std::vector<uint32_t> &B = It->second;
      size_t OldCap = B.capacity();
      B.insert(B.end(), Ids.begin(), Ids.end());
      if (B.capacity() != OldCap)
        Ix->Bytes += (B.capacity() - OldCap) * sizeof(uint32_t);
      Ix->MaxBucket = std::max(Ix->MaxBucket, B.size());
    }
  }
}

bool Table::hasIndex(uint64_t Mask) const {
  for (const Index &Ix : Indexes)
    if (Ix.Mask == Mask)
      return true;
  return false;
}

bool Table::indexStats(uint64_t Mask, IndexStats &Out) const {
  for (const Index &Ix : Indexes) {
    if (Ix.Mask != Mask)
      continue;
    Out = {Ix.Mask, Ix.Buckets.size(), Ix.MaxBucket};
    return true;
  }
  return false;
}

void Table::collectIndexStats(std::vector<IndexStats> &Out) const {
  for (const Index &Ix : Indexes)
    Out.push_back({Ix.Mask, Ix.Buckets.size(), Ix.MaxBucket});
}

const std::vector<uint32_t> &Table::probe(uint64_t BoundMask,
                                          Value ProjTuple) {
  assert(BoundMask != 0 && "use a full scan for unbound probes");
  // Mirrors the solvers' Full computation; KeyArity > 63 never reaches a
  // probe (rejected by Program::validate), so the shift is defined.
  assert(KeyArity <= 63 && "unindexable key arity must be rejected earlier");
  assert(BoundMask != (KeyArity == 0 ? 0 : (uint64_t(1) << KeyArity) - 1) &&
         "use the primary map for fully bound probes");
  Index &Ix = ensureIndex(BoundMask);
  auto It = Ix.Buckets.find(ProjTuple);
  return It == Ix.Buckets.end() ? EmptyBucket : It->second;
}

const std::vector<uint32_t> *Table::probeExisting(uint64_t BoundMask,
                                                  Value ProjTuple) const {
  for (const Index &Ix : Indexes) {
    if (Ix.Mask != BoundMask)
      continue;
    auto It = Ix.Buckets.find(ProjTuple);
    return It == Ix.Buckets.end() ? &EmptyBucket : &It->second;
  }
  return nullptr;
}

size_t Table::memoryBytes() const {
  size_t Bytes = Rows.capacity() * sizeof(Row);
  Bytes += Primary.size() * (sizeof(Value) + sizeof(uint32_t) + 16);
  for (const Index &Ix : Indexes) {
    Bytes += Ix.Bytes;
    // Hash-table array of the bucket map itself.
    Bytes += Ix.Buckets.bucket_count() * sizeof(void *);
  }
  return Bytes;
}
