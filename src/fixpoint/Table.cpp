//===- fixpoint/Table.cpp - Lattice-aware indexed tables ------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "fixpoint/Table.h"

#include "support/SmallVector.h"

#include <cassert>

using namespace flix;

const std::vector<uint32_t> Table::EmptyBucket;

Table::JoinResult Table::join(Value KeyTuple, Value LatVal) {
  auto It = Primary.find(KeyTuple);
  if (It != Primary.end()) {
    Row &R = Rows[It->second];
    Value Joined = Lat.lub(R.Lat, LatVal);
    assert(Lat.leq(R.Lat, Joined) && Lat.leq(LatVal, Joined) &&
           "lub not an upper bound; malformed lattice");
    if (Joined == R.Lat)
      return {It->second, false};
    R.Lat = Joined;
    return {It->second, true};
  }
  // New cell. ⊥ cells are not materialized.
  if (LatVal == Lat.bot())
    return {NoRow, false};
  uint32_t Id = static_cast<uint32_t>(Rows.size());
  Rows.push_back({KeyTuple, LatVal});
  Primary.emplace(KeyTuple, Id);
  // Keep existing secondary indexes in sync.
  std::span<const Value> KeyElems = F.tupleElems(KeyTuple);
  for (Index &Ix : Indexes) {
    Ix.Buckets[projectKey(KeyElems, Ix.Mask)].push_back(Id);
    IndexBytes += sizeof(uint32_t) + 8;
  }
  return {Id, true};
}

const Value *Table::lookup(Value KeyTuple) const {
  auto It = Primary.find(KeyTuple);
  return It == Primary.end() ? nullptr : &Rows[It->second].Lat;
}

uint32_t Table::lookupRow(Value KeyTuple) const {
  auto It = Primary.find(KeyTuple);
  return It == Primary.end() ? NoRow : It->second;
}

Value Table::projectKey(std::span<const Value> KeyElems,
                        uint64_t Mask) const {
  SmallVector<Value, 4> Proj;
  for (unsigned I = 0; I < KeyArity; ++I)
    if (Mask & (uint64_t(1) << I))
      Proj.push_back(KeyElems[I]);
  return F.tuple(std::span<const Value>(Proj.data(), Proj.size()));
}

Table::Index &Table::ensureIndex(uint64_t Mask) {
  for (Index &Ix : Indexes)
    if (Ix.Mask == Mask)
      return Ix;
  Indexes.push_back(Index{Mask, {}});
  Index &Ix = Indexes.back();
  for (uint32_t Id = 0; Id < Rows.size(); ++Id) {
    Ix.Buckets[projectKey(F.tupleElems(Rows[Id].Key), Mask)].push_back(Id);
    IndexBytes += sizeof(uint32_t) + 8;
  }
  return Ix;
}

const std::vector<uint32_t> &Table::probe(uint64_t BoundMask,
                                          Value ProjTuple) {
  assert(BoundMask != 0 && "use a full scan for unbound probes");
  assert(BoundMask != (KeyArity >= 64 ? ~uint64_t(0)
                                      : (uint64_t(1) << KeyArity) - 1) &&
         "use the primary map for fully bound probes");
  Index &Ix = ensureIndex(BoundMask);
  auto It = Ix.Buckets.find(ProjTuple);
  return It == Ix.Buckets.end() ? EmptyBucket : It->second;
}

const std::vector<uint32_t> *Table::probeExisting(uint64_t BoundMask,
                                                  Value ProjTuple) const {
  for (const Index &Ix : Indexes) {
    if (Ix.Mask != BoundMask)
      continue;
    auto It = Ix.Buckets.find(ProjTuple);
    return It == Ix.Buckets.end() ? &EmptyBucket : &It->second;
  }
  return nullptr;
}

size_t Table::memoryBytes() const {
  size_t Bytes = Rows.capacity() * sizeof(Row);
  Bytes += Primary.size() * (sizeof(Value) + sizeof(uint32_t) + 16);
  Bytes += IndexBytes;
  for (const Index &Ix : Indexes)
    Bytes += Ix.Buckets.size() * (sizeof(Value) + 16);
  return Bytes;
}
