//===- fixpoint/Table.h - Lattice-aware indexed tables --------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The indexed database backing the solver. A Table stores the compact
/// interpretation of one predicate: one row per §3.2 *cell* (key tuple),
/// carrying the cell's current lattice element. Joining a derived fact
/// into the table computes the per-cell least upper bound, maintaining
/// compactness; ⊥-valued cells are never materialized (see DESIGN.md).
///
/// Key tuples are interned in the ValueFactory, so the primary map and all
/// secondary indexes are Value → row maps with O(1) handle hashing.
/// Secondary indexes over subsets of the key columns are created lazily
/// from the bound-variable patterns the solver encounters — the paper's
/// automatic index selection (§4.5).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_FIXPOINT_TABLE_H
#define FLIX_FIXPOINT_TABLE_H

#include "runtime/Lattice.h"

#include <unordered_map>
#include <vector>

namespace flix {

/// One predicate's rows: compact map from key tuple to lattice element.
class Table {
public:
  struct Row {
    Value Key; ///< interned Tuple of the key columns
    Value Lat; ///< current lattice element of this cell
  };

  /// \p KeyArity key columns; \p Lat is the lattice of the value column
  /// (the BoolLattice for relational predicates).
  Table(unsigned KeyArity, const Lattice &Lat, ValueFactory &F)
      : KeyArity(KeyArity), Lat(Lat), F(F) {}

  unsigned keyArity() const { return KeyArity; }
  const Lattice &lattice() const { return Lat; }

  size_t size() const { return Rows.size(); }
  const Row &row(uint32_t Id) const { return Rows[Id]; }
  const std::vector<Row> &rows() const { return Rows; }

  /// Key columns of row \p Id.
  std::span<const Value> rowKey(uint32_t Id) const {
    return F.tupleElems(Rows[Id].Key);
  }

  /// Result of a join: the row id and whether the cell's value strictly
  /// increased (i.e. the row belongs in the next delta, §3.7).
  struct JoinResult {
    uint32_t RowId;
    bool Changed;
  };
  static constexpr uint32_t NoRow = UINT32_MAX;

  /// Joins (\p KeyTuple, \p LatVal) into the table: new cells are inserted,
  /// existing cells are updated to old ⊔ new. ⊥ values into absent cells
  /// are dropped (RowId == NoRow, Changed == false).
  JoinResult join(Value KeyTuple, Value LatVal);

  /// Returns the lattice value of the cell \p KeyTuple, or nullptr if the
  /// cell is absent (i.e. implicitly ⊥).
  const Value *lookup(Value KeyTuple) const;

  /// Returns the row id of cell \p KeyTuple, or NoRow if absent.
  uint32_t lookupRow(Value KeyTuple) const;

  /// Probes the secondary index for \p BoundMask (bit i set = key column i
  /// bound), returning ids of rows whose bound columns equal \p ProjTuple
  /// (the interned tuple of the bound columns, in column order). Builds the
  /// index on first use. \p BoundMask must be neither empty nor full.
  const std::vector<uint32_t> &probe(uint64_t BoundMask, Value ProjTuple);

  /// Read-only probe for concurrent readers (the parallel solver's
  /// workers): returns the bucket for \p BoundMask/\p ProjTuple, an empty
  /// bucket if the index exists but has no such key, or nullptr if the
  /// index itself does not exist (callers fall back to a full scan).
  /// Never builds an index, so it is safe while other threads read the
  /// table — indexes must be prepared up front with prepareIndex().
  const std::vector<uint32_t> *probeExisting(uint64_t BoundMask,
                                             Value ProjTuple) const;

  /// Eagerly creates the secondary index for \p BoundMask (a no-op if it
  /// already exists); used by index hints.
  void prepareIndex(uint64_t BoundMask) { ensureIndex(BoundMask); }

  /// Number of secondary indexes created so far (for stats/tests).
  size_t numIndexes() const { return Indexes.size(); }

  /// Approximate heap bytes used by rows and indexes.
  size_t memoryBytes() const;

private:
  struct Index {
    uint64_t Mask;
    std::unordered_map<Value, std::vector<uint32_t>> Buckets;
  };

  Value projectKey(std::span<const Value> KeyElems, uint64_t Mask) const;
  Index &ensureIndex(uint64_t Mask);

  /// Incrementally maintained index-entry byte estimate, so memoryBytes()
  /// is O(1) instead of walking every bucket.
  size_t IndexBytes = 0;

  unsigned KeyArity;
  const Lattice &Lat;
  ValueFactory &F;

  std::vector<Row> Rows;
  std::unordered_map<Value, uint32_t> Primary;
  std::vector<Index> Indexes;
  static const std::vector<uint32_t> EmptyBucket;
};

} // namespace flix

#endif // FLIX_FIXPOINT_TABLE_H
