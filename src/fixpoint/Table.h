//===- fixpoint/Table.h - Lattice-aware indexed tables --------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The indexed database backing the solver. A Table stores the compact
/// interpretation of one predicate: one row per §3.2 *cell* (key tuple),
/// carrying the cell's current lattice element. Joining a derived fact
/// into the table computes the per-cell least upper bound, maintaining
/// compactness; ⊥-valued cells are never materialized (see DESIGN.md).
///
/// Key tuples are interned in the ValueFactory, so the primary map and all
/// secondary indexes are Value → row maps with O(1) handle hashing.
/// Secondary indexes over subsets of the key columns are created lazily
/// from the bound-variable patterns the solver encounters — the paper's
/// automatic index selection (§4.5).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_FIXPOINT_TABLE_H
#define FLIX_FIXPOINT_TABLE_H

#include "runtime/Lattice.h"

#include <unordered_map>
#include <vector>

namespace flix {

/// One predicate's rows: compact map from key tuple to lattice element.
class Table {
public:
  struct Row {
    Value Key; ///< interned Tuple of the key columns
    Value Lat; ///< current lattice element of this cell
  };

  /// \p KeyArity key columns; \p Lat is the lattice of the value column
  /// (the BoolLattice for relational predicates). Key arities above 63
  /// cannot be indexed (bound-column masks are 64-bit); Program::validate
  /// rejects such predicates before any solver evaluates them, so a Table
  /// with KeyArity > 63 may be constructed but never probed or joined.
  Table(unsigned KeyArity, const Lattice &Lat, ValueFactory &F)
      : KeyArity(KeyArity), Lat(Lat), F(F), Bot(Lat.bot()) {}

  unsigned keyArity() const { return KeyArity; }
  const Lattice &lattice() const { return Lat; }

  size_t size() const { return Rows.size(); }
  const Row &row(uint32_t Id) const { return Rows[Id]; }
  const std::vector<Row> &rows() const { return Rows; }

  /// The lattice's ⊥ element (cached; handle comparison against it is how
  /// tombstoned rows are recognized — hash-consing makes that exact).
  Value botValue() const { return Bot; }

  /// True if row \p Id has been reset to ⊥ by the incremental engine's
  /// over-delete pass. Tombstoned rows keep their id and stay in every
  /// index so they can be revived in place, but all lookups and the
  /// solvers' scan/probe paths treat them as absent.
  bool isTombstone(uint32_t Id) const { return Rows[Id].Lat == Bot; }

  /// Rows whose cell is currently present (size() minus tombstones).
  size_t liveSize() const { return Rows.size() - NumTombstones; }

  /// Resets row \p Id to ⊥ (the incremental over-delete). The row id stays
  /// valid and indexed; a later join() on its key revives it in place.
  void resetRow(uint32_t Id);

  /// Key columns of row \p Id.
  std::span<const Value> rowKey(uint32_t Id) const {
    return F.tupleElems(Rows[Id].Key);
  }

  /// Result of a join: the row id and whether the cell's value strictly
  /// increased (i.e. the row belongs in the next delta, §3.7).
  struct JoinResult {
    uint32_t RowId;
    bool Changed;
  };
  static constexpr uint32_t NoRow = UINT32_MAX;

  /// Joins (\p KeyTuple, \p LatVal) into the table: new cells are inserted,
  /// existing cells are updated to old ⊔ new. ⊥ values into absent cells
  /// are dropped (RowId == NoRow, Changed == false).
  JoinResult join(Value KeyTuple, Value LatVal);

  /// Returns the lattice value of the cell \p KeyTuple, or nullptr if the
  /// cell is absent (i.e. implicitly ⊥, including tombstoned rows).
  const Value *lookup(Value KeyTuple) const;

  /// Returns the row id of cell \p KeyTuple, or NoRow if absent (including
  /// tombstoned rows, which are logically ⊥).
  uint32_t lookupRow(Value KeyTuple) const;

  /// Probes the secondary index for \p BoundMask (bit i set = key column i
  /// bound), returning ids of rows whose bound columns equal \p ProjTuple
  /// (the interned tuple of the bound columns, in column order). Builds the
  /// index on first use. \p BoundMask must be neither empty nor full.
  const std::vector<uint32_t> &probe(uint64_t BoundMask, Value ProjTuple);

  /// Read-only probe for concurrent readers (the parallel solver's
  /// workers): returns the bucket for \p BoundMask/\p ProjTuple, an empty
  /// bucket if the index exists but has no such key, or nullptr if the
  /// index itself does not exist (callers fall back to a full scan).
  /// Never builds an index, so it is safe while other threads read the
  /// table — indexes must be prepared up front with prepareIndex().
  const std::vector<uint32_t> *probeExisting(uint64_t BoundMask,
                                             Value ProjTuple) const;

  /// Eagerly creates the secondary index for \p BoundMask (a no-op if it
  /// already exists); used by index hints.
  void prepareIndex(uint64_t BoundMask) { ensureIndex(BoundMask); }

  /// One worker's partial secondary index over a contiguous row range:
  /// projected bound-column tuple → ids of the range's matching rows, in
  /// ascending order.
  using PartialIndex = std::unordered_map<Value, std::vector<uint32_t>>;

  /// Scans rows [\p Begin, \p End) and appends each row id to the bucket
  /// of its \p Mask projection in \p Out. Read-only on the table, so any
  /// number of threads may build partials of the same table concurrently
  /// (with a concurrent-mode ValueFactory for the projection tuples).
  void buildPartialIndex(uint64_t Mask, uint32_t Begin, uint32_t End,
                         PartialIndex &Out) const;

  /// Pre-creates empty index slots for \p Masks (skipping ones that
  /// already exist) WITHOUT scanning any rows, so that one concurrent
  /// buildIndexFromPartials call per mask can later fill them while only
  /// touching its own Index object.
  void reserveIndexSlots(std::span<const uint64_t> Masks);

  /// Installs the secondary index for \p Mask by concatenating per-range
  /// partial buckets (\p Parts ordered by row range, as produced by
  /// buildPartialIndex over a partition of [0, size())). The slot must
  /// have been created by reserveIndexSlots and still be empty. Calls for
  /// distinct masks of the same table may run concurrently: each touches
  /// only its own pre-created Index object.
  void buildIndexFromPartials(uint64_t Mask, std::span<PartialIndex> Parts);

  /// Number of secondary indexes created so far (for stats/tests).
  size_t numIndexes() const { return Indexes.size(); }

  /// Whether a secondary index (possibly a still-empty reserved slot) on
  /// \p Mask exists. Used after a re-plan to build only missing indexes.
  bool hasIndex(uint64_t Mask) const;

  /// Cheap maintained statistics of one secondary index, read by the
  /// cost-based planner (Plan.cpp): the number of distinct projected keys
  /// and the largest bucket's row count. Both are maintained by add() and
  /// the partial-merge builder, so reading them costs nothing.
  struct IndexStats {
    uint64_t Mask;
    size_t Buckets;   ///< distinct projected keys (bucket count)
    size_t MaxBucket; ///< rows in the largest bucket
  };

  /// Statistics for the index on \p Mask, or false if no such index
  /// exists yet (the planner then falls back to an arity-based guess).
  bool indexStats(uint64_t Mask, IndexStats &Out) const;

  /// Appends statistics for every existing secondary index to \p Out.
  void collectIndexStats(std::vector<IndexStats> &Out) const;

  /// Approximate heap bytes used by rows and indexes. Index cost is
  /// tracked at bucket-vector granularity including unused capacity from
  /// growth, so the estimate no longer drifts low as buckets grow.
  size_t memoryBytes() const;

private:
  struct Index {
    uint64_t Mask;
    std::unordered_map<Value, std::vector<uint32_t>> Buckets;
    /// Capacity-aware byte estimate of this index's buckets (vector
    /// capacity + per-bucket map-node overhead), maintained by add().
    size_t Bytes = 0;
    /// Rows in the largest bucket, maintained by add() and the
    /// partial-merge builder; read by indexStats() for the cost model.
    size_t MaxBucket = 0;

    /// Appends \p Id to the bucket of \p Proj, keeping Bytes in sync with
    /// actual vector capacity growth.
    void add(Value Proj, uint32_t Id);
  };

  Value projectKey(std::span<const Value> KeyElems, uint64_t Mask) const;
  Index &ensureIndex(uint64_t Mask);
  Index *findIndex(uint64_t Mask);

  unsigned KeyArity;
  const Lattice &Lat;
  ValueFactory &F;
  Value Bot;
  size_t NumTombstones = 0;

  std::vector<Row> Rows;
  std::unordered_map<Value, uint32_t> Primary;
  std::vector<Index> Indexes;
  static const std::vector<uint32_t> EmptyBucket;
};

} // namespace flix

#endif // FLIX_FIXPOINT_TABLE_H
