//===- incremental/IncrementalSolver.cpp - Batch fact updates -------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "incremental/IncrementalSolver.h"

#include "fixpoint/EvalUtil.h"
#include "fixpoint/Plan.h"
#include "parallel/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <set>

using namespace flix;
using flix::eval::BindTrail;

//===----------------------------------------------------------------------===//
// Parallel round machinery
//===----------------------------------------------------------------------===//

/// One (rule, driver, delta-chunk) evaluation task of a parallel round.
struct IncrementalSolver::Task {
  uint32_t RuleIdx;
  int32_t Driver;
  uint32_t Begin, End;
  const std::vector<uint32_t> *Rows;
};

/// Per-worker evaluation state for parallel delta rounds. Mirrors the
/// sequential Solver's rule evaluation with two differences: tables are
/// read through const paths only (probeExisting, never probe), and
/// instead of joining derivations in place the worker buffers them —
/// together with the row ids of the matched positive premises, captured
/// on a match stack — for the coordinator to join (and record support /
/// provenance for) single-threaded after the phase barrier. That keeps
/// every table, support-index and provenance write outside the pool
/// phases, so the path is race-free by construction.
struct IncrementalSolver::WorkerCtx {
  /// One buffered derivation: head cell content plus the premise rows
  /// that produced it, and — for rules with negated atoms — the
  /// (predicate, key tuple) pairs the match went through `!P(key)` on,
  /// so the coordinator can record negation support edges.
  struct Deriv {
    PredId Pred;
    Value Key;
    Value Lat;
    uint32_t RuleIdx;
    SmallVector<CellRef, 4> Premises;
    SmallVector<std::pair<PredId, Value>, 2> NegKeys;
  };

  IncrementalSolver &IS;
  Solver *Sol = nullptr; ///< refreshed per task (fullSolve replaces it)
  std::vector<Value> Env;
  std::vector<uint8_t> Bound;
  SmallVector<CellRef, 8> PremStack; ///< premises of the open match frames
  std::vector<Deriv> Buffer;
  const Task *Cur = nullptr;
  uint32_t CurRuleIdx = 0;
  uint64_t RuleFirings = 0;
  uint64_t IndexFallbacks = 0;
  uint64_t VmCalls = 0;
  uint64_t InterpFallbacks = 0;

  explicit WorkerCtx(IncrementalSolver &IS) : IS(IS) {}

  Value callExtern(FnId Fn, std::span<const Value> Args) {
    const ExternFn &FD = IS.P.functionDecl(Fn);
    const ExternImpl *Impl = &FD.Impl;
    bool ViaVm = false;
    if (IS.Opts.UseVm) {
      if (FD.VmImpl) {
        Impl = &FD.VmImpl;
        ViaVm = true;
      } else if (FD.InterpOnly) {
        ++InterpFallbacks;
      }
    }
    auto Compute = [&]() -> Value {
      VmCalls += ViaVm;
      if (!IS.Opts.SerializeExternals)
        return (*Impl)(Args);
      std::lock_guard<std::mutex> G(IS.ExternMu);
      return (*Impl)(Args);
    };
    // Route through the inner solver's memo so incremental rounds share
    // the cache its full solves populated.
    if (Sol && Sol->Memo)
      return Sol->Memo->call(Fn, Args, Compute);
    return Compute();
  }

  //===--------------------------------------------------------------------===//
  // PlanExecutor engine policy (Plan.h): snapshot reads, buffered
  // derivations with premise rows captured through onRow/popRow.
  //===--------------------------------------------------------------------===//

  std::vector<Value> &env() { return Env; }
  std::vector<uint8_t> &bound() { return Bound; }
  ValueFactory &factory() { return IS.F; }
  Table &table(PredId P) { return *Sol->Tables[P]; }
  bool checkRow() { return false; } // updates have no deadline

  const std::vector<uint32_t> *probeBucket(const plan::Step &St, Value ProjT,
                                           std::vector<uint32_t> &) {
    if (const std::vector<uint32_t> *Bucket =
            Sol->Tables[St.Pred]->probeExisting(St.Mask, ProjT))
      return Bucket;
    ++IndexFallbacks;
    assert(!IS.Opts.StrictIndexCoverage &&
           "probeExisting miss: plan mask not pre-built by "
           "prepareWorkerIndexes");
    return nullptr;
  }

  uint32_t maybeSpill(const plan::RulePlan &, uint32_t,
                      const std::vector<uint32_t> *, uint32_t Begin,
                      uint32_t) {
    return Begin; // incremental workers never spill sub-tasks
  }

  void onRow(PredId Pred, uint32_t RowId) {
    PremStack.push_back({Pred, RowId});
  }
  void popRow() { PremStack.pop_back(); }

  void onDerived(const plan::RulePlan &Pl, Value KeyT, Value LatVal) {
    ++RuleFirings;
    // ⊥ derivations can never change a cell; drop them before the merge.
    if (!Pl.Head.Relational &&
        LatVal == IS.P.predicate(Pl.Head.Pred).Lat->bot())
      return;
    Deriv Dv;
    Dv.Pred = Pl.Head.Pred;
    Dv.Key = KeyT;
    Dv.Lat = LatVal;
    Dv.RuleIdx = CurRuleIdx;
    for (CellRef C : PremStack)
      Dv.Premises.push_back(C);
    captureNegKeys(Dv);
    Buffer.push_back(std::move(Dv));
  }

  /// Captures the negated keys a full match went through, read from the
  /// (fully bound at derivation time) environment. Interning the key
  /// tuple from a worker is safe: parallel mode switches the factory to
  /// concurrent interning before the first round.
  void captureNegKeys(Deriv &Dv) {
    if (!IS.RuleHasNeg[CurRuleIdx])
      return;
    const Rule &R = Sol->Prepared[CurRuleIdx];
    for (const BodyElem &E : R.Body) {
      const auto *A = std::get_if<BodyAtom>(&E);
      if (!A || !A->Negated)
        continue;
      unsigned KA = IS.P.predicate(A->Pred).keyArity();
      SmallVector<Value, 4> Key;
      for (unsigned I = 0; I < KA; ++I) {
        const Term &Tm = A->Terms[I];
        Key.push_back(Tm.isVar() ? Env[Tm.Variable] : Tm.Constant);
      }
      Dv.NegKeys.push_back(
          {A->Pred,
           IS.F.tuple(std::span<const Value>(Key.data(), Key.size()))});
    }
  }

  const std::vector<uint32_t> *driverRows(uint32_t &Begin, uint32_t &End) {
    Begin = Cur->Begin;
    End = Cur->End;
    return Cur->Rows;
  }

  /// Persistent plan executor (cursor storage reused across tasks).
  plan::PlanExecutor<WorkerCtx> Exec{*this};

  void runTask(const Task &T);
  void evalElems(const Rule &R, std::span<const BodyElem *const> Order,
                 size_t Pos);
  void evalAtom(const Rule &R, const BodyAtom &A,
                std::span<const BodyElem *const> Order, size_t Pos);
  void matchAtomRow(const Rule &R, const BodyAtom &A, uint32_t RowId,
                    std::span<const BodyElem *const> Order, size_t Pos);
  void deriveHead(const Rule &R);
};

void IncrementalSolver::WorkerCtx::runTask(const Task &T) {
  Sol = IS.S.get();
  const Rule &R = Sol->Prepared[T.RuleIdx];
  Env.assign(R.NumVars, Value());
  Bound.assign(R.NumVars, 0);
  PremStack.clear();

  Cur = &T;
  CurRuleIdx = T.RuleIdx;
  if (Sol->Plans) {
    Exec.run(Sol->Plans->plan(T.RuleIdx, T.Driver));
    Cur = nullptr;
    return;
  }

  SmallVector<const BodyElem *, 8> Order;
  eval::buildOrder(R, T.Driver, Order);
  evalElems(R, std::span<const BodyElem *const>(Order.data(), Order.size()),
            0);
  Cur = nullptr;
}

void IncrementalSolver::WorkerCtx::evalElems(
    const Rule &R, std::span<const BodyElem *const> Order, size_t Pos) {
  if (Pos == Order.size()) {
    deriveHead(R);
    return;
  }
  const BodyElem &E = *Order[Pos];

  auto termValue = [&](const Term &T) -> Value {
    if (!T.isVar())
      return T.Constant;
    assert(Bound[T.Variable] && "unbound variable; validation missed it");
    return Env[T.Variable];
  };

  if (const auto *Fl = std::get_if<BodyFilter>(&E)) {
    SmallVector<Value, 4> Args;
    for (const Term &T : Fl->Args)
      Args.push_back(termValue(T));
    Value Res =
        callExtern(Fl->Fn, std::span<const Value>(Args.data(), Args.size()));
    assert(Res.isBool() && "filter function must return Bool");
    if (Res.asBool())
      evalElems(R, Order, Pos + 1);
    return;
  }

  if (const auto *B = std::get_if<BodyBinder>(&E)) {
    SmallVector<Value, 4> Args;
    for (const Term &T : B->Args)
      Args.push_back(termValue(T));
    Value Res =
        callExtern(B->Fn, std::span<const Value>(Args.data(), Args.size()));
    assert(Res.isSet() && "binder function must return a Set");
    for (Value Elem : IS.F.setElems(Res)) {
      BindTrail Trail;
      bool Ok = true;
      auto bindOne = [&](VarId V, Value Val) {
        if (Bound[V]) {
          Ok = Env[V] == Val;
          return;
        }
        Trail.save(V, false, Env[V]);
        Env[V] = Val;
        Bound[V] = 1;
      };
      if (B->Pattern.size() == 1) {
        bindOne(B->Pattern[0], Elem);
      } else {
        if (!Elem.isTuple() ||
            IS.F.tupleElems(Elem).size() != B->Pattern.size()) {
          Ok = false;
        } else {
          std::span<const Value> Elems = IS.F.tupleElems(Elem);
          for (size_t I = 0; I < B->Pattern.size() && Ok; ++I)
            bindOne(B->Pattern[I], Elems[I]);
        }
      }
      if (Ok)
        evalElems(R, Order, Pos + 1);
      Trail.undo(Env, Bound);
    }
    return;
  }

  evalAtom(R, std::get<BodyAtom>(E), Order, Pos);
}

void IncrementalSolver::WorkerCtx::evalAtom(
    const Rule &R, const BodyAtom &A, std::span<const BodyElem *const> Order,
    size_t Pos) {
  const PredicateDecl &D = IS.P.predicate(A.Pred);
  const Table &T = *Sol->Tables[A.Pred];
  unsigned KA = D.keyArity();

  auto termValue = [&](const Term &Tm) -> Value {
    if (!Tm.isVar())
      return Tm.Constant;
    assert(Bound[Tm.Variable] && "unbound variable in ground context");
    return Env[Tm.Variable];
  };

  if (A.Negated) {
    SmallVector<Value, 4> Key;
    for (unsigned I = 0; I < KA; ++I)
      Key.push_back(termValue(A.Terms[I]));
    Value KeyT = IS.F.tuple(std::span<const Value>(Key.data(), Key.size()));
    if (!T.lookup(KeyT))
      evalElems(R, Order, Pos + 1);
    return;
  }

  // Driver atom: iterate this task's chunk of the delta rows.
  if (Pos == 0 && Cur && Cur->Driver >= 0) {
    const std::vector<uint32_t> &Rows = *Cur->Rows;
    for (uint32_t I = Cur->Begin; I != Cur->End; ++I)
      matchAtomRow(R, A, Rows[I], Order, Pos);
    return;
  }

  uint64_t Mask = 0;
  SmallVector<Value, 4> Proj;
  for (unsigned I = 0; I < KA; ++I) {
    const Term &Tm = A.Terms[I];
    if (!Tm.isVar()) {
      Mask |= uint64_t(1) << I;
      Proj.push_back(Tm.Constant);
    } else if (Bound[Tm.Variable]) {
      Mask |= uint64_t(1) << I;
      Proj.push_back(Env[Tm.Variable]);
    }
  }
  uint64_t Full = KA == 0 ? 0 : (uint64_t(1) << KA) - 1;

  if (Mask == Full) {
    Value KeyT = IS.F.tuple(std::span<const Value>(Proj.data(), Proj.size()));
    uint32_t Id = T.lookupRow(KeyT);
    if (Id != Table::NoRow)
      matchAtomRow(R, A, Id, Order, Pos);
    return;
  }

  if (Mask != 0 && IS.Opts.UseIndexes) {
    Value ProjT = IS.F.tuple(std::span<const Value>(Proj.data(), Proj.size()));
    // Tables are immutable during an eval phase, so the bucket cannot
    // grow under us; no copy needed (unlike the sequential solver).
    if (const std::vector<uint32_t> *Bucket = T.probeExisting(Mask, ProjT)) {
      for (uint32_t Id : *Bucket)
        matchAtomRow(R, A, Id, Order, Pos);
      return;
    }
    ++IndexFallbacks;
    assert(!IS.Opts.StrictIndexCoverage &&
           "probeExisting miss: (pred, mask) not pre-built by "
           "prepareWorkerIndexes");
  }

  for (uint32_t Id = 0, E = static_cast<uint32_t>(T.size()); Id != E; ++Id)
    matchAtomRow(R, A, Id, Order, Pos);
}

void IncrementalSolver::WorkerCtx::matchAtomRow(
    const Rule &R, const BodyAtom &A, uint32_t RowId,
    std::span<const BodyElem *const> Order, size_t Pos) {
  const PredicateDecl &D = IS.P.predicate(A.Pred);
  const Table &T = *Sol->Tables[A.Pred];
  unsigned KA = D.keyArity();

  // Tombstoned rows are logically absent (see Solver::matchAtomRow).
  if (T.isTombstone(RowId))
    return;

  BindTrail Trail;
  bool Ok = true;
  {
    std::span<const Value> KeyElems = T.rowKey(RowId);
    for (unsigned I = 0; I < KA && Ok; ++I) {
      const Term &Tm = A.Terms[I];
      if (!Tm.isVar()) {
        Ok = Tm.Constant == KeyElems[I];
        continue;
      }
      if (Bound[Tm.Variable]) {
        Ok = Env[Tm.Variable] == KeyElems[I];
        continue;
      }
      Trail.save(Tm.Variable, false, Env[Tm.Variable]);
      Env[Tm.Variable] = KeyElems[I];
      Bound[Tm.Variable] = 1;
    }
  }

  if (Ok && !D.isRelational()) {
    const Term &Lt = A.Terms[KA];
    Value RowVal = T.row(RowId).Lat;
    if (!Lt.isVar()) {
      Ok = D.Lat->leq(Lt.Constant, RowVal);
    } else if (!Bound[Lt.Variable]) {
      Trail.save(Lt.Variable, false, Env[Lt.Variable]);
      Env[Lt.Variable] = RowVal;
      Bound[Lt.Variable] = 1;
    } else {
      Value G = D.Lat->glb(Env[Lt.Variable], RowVal);
      Trail.save(Lt.Variable, true, Env[Lt.Variable]);
      Env[Lt.Variable] = G;
    }
  }

  if (Ok) {
    PremStack.push_back({A.Pred, RowId});
    evalElems(R, Order, Pos + 1);
    PremStack.pop_back();
  }
  Trail.undo(Env, Bound);
}

void IncrementalSolver::WorkerCtx::deriveHead(const Rule &R) {
  const HeadAtom &H = R.Head;
  const PredicateDecl &D = IS.P.predicate(H.Pred);

  auto termValue = [&](const Term &Tm) -> Value {
    if (!Tm.isVar())
      return Tm.Constant;
    assert(Bound[Tm.Variable] && "unbound head variable");
    return Env[Tm.Variable];
  };

  SmallVector<Value, 4> Key;
  for (const Term &Tm : H.KeyTerms)
    Key.push_back(termValue(Tm));

  Value LatVal;
  if (H.LastFn) {
    SmallVector<Value, 4> Args;
    for (const Term &Tm : H.FnArgs)
      Args.push_back(termValue(Tm));
    LatVal = callExtern(*H.LastFn,
                        std::span<const Value>(Args.data(), Args.size()));
  } else {
    LatVal = termValue(H.LastTerm);
  }

  if (D.isRelational()) {
    Key.push_back(LatVal);
    LatVal = IS.F.boolean(true);
  }

  ++RuleFirings;
  // ⊥ derivations can never change a cell; drop them before the merge.
  if (!D.isRelational() && LatVal == D.Lat->bot())
    return;
  Value KeyT = IS.F.tuple(std::span<const Value>(Key.data(), Key.size()));
  Deriv Dv;
  Dv.Pred = H.Pred;
  Dv.Key = KeyT;
  Dv.Lat = LatVal;
  Dv.RuleIdx = CurRuleIdx;
  for (CellRef C : PremStack)
    Dv.Premises.push_back(C);
  captureNegKeys(Dv);
  Buffer.push_back(std::move(Dv));
}

//===----------------------------------------------------------------------===//
// Construction and staging
//===----------------------------------------------------------------------===//

IncrementalSolver::IncrementalSolver(const Program &P, SolverOptions Opts)
    : P(P), Opts(Opts), F(P.factory()) {
  size_t NumPreds = P.predicates().size();
  FactStore.resize(NumPreds);
  UpdateChanged.resize(NumPreds);
  NegTombstones.resize(NumPreds);

  // Seed the fact store from the program's facts.
  for (const Fact &Fa : P.facts()) {
    Value KeyT = keyTupleOf(Fa);
    auto &Vals = FactStore[Fa.Pred][KeyT];
    bool Dup = false;
    for (Value V : Vals)
      if (V == Fa.LatValue) {
        Dup = true;
        break;
      }
    if (!Dup)
      Vals.push_back(Fa.LatValue);
  }

  // Body reordering never adds or removes atoms, so rule indexes into
  // P.rules() and the inner solver's Prepared agree on this flag.
  RuleHasNeg.assign(P.rules().size(), 0);
  for (uint32_t RI = 0; RI < P.rules().size(); ++RI)
    for (const BodyElem &E : P.rules()[RI].Body)
      if (const auto *A = std::get_if<BodyAtom>(&E); A && A->Negated) {
        RuleHasNeg[RI] = 1;
        break;
      }
}

IncrementalSolver::~IncrementalSolver() = default;

Value IncrementalSolver::keyTupleOf(const Fact &Fa) const {
  return F.tuple(std::span<const Value>(Fa.Key.data(), Fa.Key.size()));
}

void IncrementalSolver::addFact(PredId Pred, std::span<const Value> Tuple) {
  assert(P.predicate(Pred).isRelational() &&
         "addFact() is for relational predicates; use addLatFact()");
  Fact Fa;
  Fa.Pred = Pred;
  for (Value V : Tuple)
    Fa.Key.push_back(V);
  Fa.LatValue = F.boolean(true);
  PendingAdds.push_back(std::move(Fa));
}

void IncrementalSolver::addLatFact(PredId Pred, std::span<const Value> Key,
                                   Value LatVal) {
  assert(!P.predicate(Pred).isRelational() &&
         "addLatFact() is for lattice predicates; use addFact()");
  Fact Fa;
  Fa.Pred = Pred;
  for (Value V : Key)
    Fa.Key.push_back(V);
  Fa.LatValue = LatVal;
  PendingAdds.push_back(std::move(Fa));
}

void IncrementalSolver::retractFact(PredId Pred,
                                    std::span<const Value> Tuple) {
  assert(P.predicate(Pred).isRelational() &&
         "retractFact() is for relational predicates");
  Fact Fa;
  Fa.Pred = Pred;
  for (Value V : Tuple)
    Fa.Key.push_back(V);
  Fa.LatValue = F.boolean(true);
  PendingRetracts.push_back(std::move(Fa));
}

void IncrementalSolver::retractLatFact(PredId Pred,
                                       std::span<const Value> Key,
                                       Value LatVal) {
  assert(!P.predicate(Pred).isRelational() &&
         "retractLatFact() is for lattice predicates");
  Fact Fa;
  Fa.Pred = Pred;
  for (Value V : Key)
    Fa.Key.push_back(V);
  Fa.LatValue = LatVal;
  PendingRetracts.push_back(std::move(Fa));
}

void IncrementalSolver::addFacts(PredId Pred,
                                 std::span<const std::vector<Value>> Rows) {
  bool Rel = P.predicate(Pred).isRelational();
  for (const std::vector<Value> &Row : Rows) {
    if (Rel) {
      addFact(Pred, std::span<const Value>(Row.data(), Row.size()));
    } else {
      assert(!Row.empty() && "lattice fact row needs key columns + value");
      addLatFact(Pred, std::span<const Value>(Row.data(), Row.size() - 1),
                 Row.back());
    }
  }
}

void IncrementalSolver::retractFacts(
    PredId Pred, std::span<const std::vector<Value>> Rows) {
  bool Rel = P.predicate(Pred).isRelational();
  for (const std::vector<Value> &Row : Rows) {
    if (Rel) {
      retractFact(Pred, std::span<const Value>(Row.data(), Row.size()));
    } else {
      assert(!Row.empty() && "lattice fact row needs key columns + value");
      retractLatFact(Pred,
                     std::span<const Value>(Row.data(), Row.size() - 1),
                     Row.back());
    }
  }
}

std::vector<Fact> IncrementalSolver::currentFacts() const {
  std::vector<Fact> Out;
  for (PredId Pr = 0; Pr < FactStore.size(); ++Pr) {
    for (const auto &[KeyT, Vals] : FactStore[Pr]) {
      for (Value LV : Vals) {
        Fact Fa;
        Fa.Pred = Pr;
        for (Value K : F.tupleElems(KeyT))
          Fa.Key.push_back(K);
        Fa.LatValue = LV;
        Out.push_back(std::move(Fa));
      }
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// update()
//===----------------------------------------------------------------------===//

void IncrementalSolver::noteChanged(PredId Pred, uint32_t Row) {
  S->NextDelta[Pred].insert(Row);
  UpdateChanged[Pred].insert(Row);
}

void IncrementalSolver::recordSupportEdge(CellRef Prem, CellRef Head) {
  auto &Rows = S->Dependents[Prem.Pred];
  if (Rows.size() <= Prem.Row)
    Rows.resize(Prem.Row + 1);
  auto &Out = Rows[Prem.Row];
  // Sorted-unique insertion, matching Solver::recordSupport — both write
  // the same Dependents structure, so the invariant must hold across
  // writers. Dedup bounds the index at one edge per (premise row, head
  // cell) no matter how many times the pair co-occurs across updates.
  auto It = std::lower_bound(Out.begin(), Out.end(), Head);
  if (It != Out.end() && *It == Head)
    return;
  size_t Idx = static_cast<size_t>(It - Out.begin());
  Out.push_back(Head);
  std::rotate(Out.begin() + Idx, Out.end() - 1, Out.end());
}

void IncrementalSolver::recordNegSupportEdge(PredId Pred, Value KeyT,
                                             CellRef Head) {
  // Sorted-unique insertion, matching Solver::recordSupport's negated
  // branch — both write Solver::NegDependents.
  auto &Out = S->NegDependents[Pred][KeyT];
  auto It = std::lower_bound(Out.begin(), Out.end(), Head);
  if (It != Out.end() && *It == Head)
    return;
  size_t Idx = static_cast<size_t>(It - Out.begin());
  Out.push_back(Head);
  std::rotate(Out.begin() + Idx, Out.end() - 1, Out.end());
}

void IncrementalSolver::fullSolve(UpdateStats &U, Deadline DL) {
  // Apply staged mutations to the store only: a fresh solve reads the
  // materialized store. Retractions first, then additions — a batch that
  // both retracts and adds the same fact leaves it present.
  for (const Fact &Fa : PendingRetracts) {
    Value KeyT = keyTupleOf(Fa);
    auto It = FactStore[Fa.Pred].find(KeyT);
    if (It == FactStore[Fa.Pred].end())
      continue;
    auto &Vals = It->second;
    for (size_t I = 0; I < Vals.size(); ++I) {
      if (Vals[I] == Fa.LatValue) {
        Vals[I] = Vals.back();
        Vals.pop_back();
        ++U.FactsRetracted;
        break;
      }
    }
    if (Vals.empty())
      FactStore[Fa.Pred].erase(It);
  }
  PendingRetracts.clear();
  for (const Fact &Fa : PendingAdds) {
    Value KeyT = keyTupleOf(Fa);
    auto &Vals = FactStore[Fa.Pred][KeyT];
    bool Dup = false;
    for (Value V : Vals)
      if (V == Fa.LatValue) {
        Dup = true;
        break;
      }
    if (Dup)
      continue;
    Vals.push_back(Fa.LatValue);
    ++U.FactsAdded;
  }
  PendingAdds.clear();

  OverrideFacts = currentFacts();
  SolverOptions SO = Opts;
  SO.TrackSupport = true;
  SO.NumThreads = 0; // the inner Solver is sequential
  // A request deadline tighter than the configured time limit wins: the
  // remaining budget becomes this solve's limit.
  if (DL.active()) {
    double Remaining = DL.remainingSeconds();
    if (SO.TimeLimitSeconds <= 0 || Remaining < SO.TimeLimitSeconds)
      SO.TimeLimitSeconds = Remaining > 0 ? Remaining : 1e-9;
  }
  S = std::make_unique<Solver>(P, SO);
  S->FactsOverride = &OverrideFacts;
  // The replaced solver's tables are rebuilt tombstone-free, so the
  // persistent pre-batch presence record must start empty too — this is
  // what keeps degraded recovery consistent after an aborted update.
  for (auto &Tomb : NegTombstones)
    Tomb.clear();
  SolveStats St = S->solve();
  static_cast<SolveStats &>(U) = St;
  // Every predicate's table was rebuilt from nothing.
  U.ChangedPreds.clear();
  for (PredId Pr = 0; Pr < P.predicates().size(); ++Pr)
    U.ChangedPreds.push_back(Pr);
  // A replaced solver has fresh tables: re-prepare the worker indexes if
  // parallel rounds are in use.
  if (ParallelReady && Opts.UseIndexes)
    prepareWorkerIndexes();
}

// Pre-builds every (pred, mask) secondary index the workers' delta-driven
// evaluation orders can probe, so read-only probeExisting never misses.
// With compiled plans the masks come straight off the plans' Probe steps
// (both families), which stays correct under any body order the
// cost-based planner picks — including after a mid-update re-plan. The
// legacy boundness simulation below covers only the plan-free path
// (rederive runs sequentially and may build indexes lazily through
// Table::probe).
void IncrementalSolver::prepareWorkerIndexes() {
  if (S->Plans) {
    std::vector<std::vector<uint64_t>> MasksByPred(S->Tables.size());
    S->Plans->wantedIndexes(MasksByPred);
    for (PredId Pred = 0; Pred < MasksByPred.size(); ++Pred)
      for (uint64_t Mask : MasksByPred[Pred])
        S->Tables[Pred]->prepareIndex(Mask);
    return;
  }
  std::set<std::pair<PredId, uint64_t>> Wanted;
  for (const Rule &R : S->Prepared) {
    SmallVector<int, 8> Drivers;
    for (size_t I = 0; I < R.Body.size(); ++I)
      if (const auto *A = std::get_if<BodyAtom>(&R.Body[I]);
          A && !A->Negated)
        Drivers.push_back(static_cast<int>(I));

    for (int Driver : Drivers) {
      std::vector<uint8_t> BoundVar(R.NumVars, 0);
      SmallVector<const BodyElem *, 8> Order;
      eval::buildOrder(R, Driver, Order);

      for (size_t Pos = 0; Pos < Order.size(); ++Pos) {
        const BodyElem &E = *Order[Pos];
        if (const auto *A = std::get_if<BodyAtom>(&E)) {
          if (A->Negated)
            continue; // negated atoms use the primary map
          unsigned KA = P.predicate(A->Pred).keyArity();
          if (Pos != 0) {
            uint64_t Mask = 0;
            for (unsigned I = 0; I < KA; ++I) {
              const Term &Tm = A->Terms[I];
              if (!Tm.isVar() || BoundVar[Tm.Variable])
                Mask |= uint64_t(1) << I;
            }
            uint64_t Full = KA == 0 ? 0 : (uint64_t(1) << KA) - 1;
            if (Mask != 0 && Mask != Full)
              Wanted.insert({A->Pred, Mask});
          }
          for (const Term &Tm : A->Terms)
            if (Tm.isVar())
              BoundVar[Tm.Variable] = 1;
        } else if (const auto *B = std::get_if<BodyBinder>(&E)) {
          for (VarId V : B->Pattern)
            BoundVar[V] = 1;
        }
        // Filters bind nothing.
      }
    }
  }
  for (auto [Pred, Mask] : Wanted)
    S->Tables[Pred]->prepareIndex(Mask);
}

void IncrementalSolver::ensureParallel() {
  if (ParallelReady)
    return;
  ParallelReady = true;
  unsigned NumWorkers = std::max(1u, Opts.NumThreads);
  F.enableConcurrentInterning();
  Pool = std::make_unique<ThreadPool>(NumWorkers);
  Workers.reserve(NumWorkers);
  for (unsigned W = 0; W < NumWorkers; ++W)
    Workers.push_back(std::make_unique<WorkerCtx>(*this));
  if (Opts.UseIndexes)
    prepareWorkerIndexes();
}

void IncrementalSolver::runParallelRound(
    const std::vector<uint32_t> &RuleIds) {
  Solver &Sol = *S;
  unsigned NumWorkers = Pool->numWorkers();
  Tasks.clear();
  for (uint32_t RI : RuleIds) {
    const Rule &R = Sol.Prepared[RI];
    for (size_t BI = 0; BI < R.Body.size(); ++BI) {
      const auto *A = std::get_if<BodyAtom>(&R.Body[BI]);
      if (!A || A->Negated)
        continue;
      const std::vector<uint32_t> &Rows = Sol.Delta[A->Pred];
      if (Rows.empty())
        continue;
      uint32_t N = static_cast<uint32_t>(Rows.size());
      uint32_t Chunk = static_cast<uint32_t>(std::max<size_t>(
          16, (N + NumWorkers * 8 - 1) / (NumWorkers * 8)));
      for (uint32_t B = 0; B < N; B += Chunk)
        Tasks.push_back({RI, static_cast<int32_t>(BI), B,
                         std::min(N, B + Chunk), &Rows});
    }
  }
  if (Tasks.empty())
    return;
  Sol.Stats.ParallelTasks += Tasks.size();
  Pool->run(Tasks.size(), [this](size_t TI, unsigned W) {
    Workers[W]->runTask(Tasks[TI]);
  });
  mergeWorkerDerivs();
}

void IncrementalSolver::mergeWorkerDerivs() {
  Solver &Sol = *S;
  for (const std::unique_ptr<WorkerCtx> &W : Workers) {
    for (const WorkerCtx::Deriv &D : W->Buffer) {
      Table &T = *Sol.Tables[D.Pred];
      Table::JoinResult JR = T.join(D.Key, D.Lat);
      if (!JR.Changed)
        continue;
      ++Sol.Stats.FactsDerived;
      noteChanged(D.Pred, JR.RowId);
      CellRef Head{D.Pred, JR.RowId};
      for (CellRef Prem : D.Premises)
        recordSupportEdge(Prem, Head);
      for (const auto &[NegPred, NegKey] : D.NegKeys)
        recordNegSupportEdge(NegPred, NegKey, Head);
      if (Opts.TrackProvenance) {
        Derivation Der;
        Der.RuleIndex = D.RuleIdx;
        for (CellRef Prem : D.Premises) {
          const Table &PT = *Sol.Tables[Prem.Pred];
          Derivation::Premise Pr;
          Pr.Pred = Prem.Pred;
          Pr.Key = PT.row(Prem.Row).Key;
          // The premise's current value (its value at match time or a lub
          // above it — the derivation stays valid since rules are
          // monotone). Premises appear in evaluation order, not body
          // order.
          Pr.LatValue = PT.row(Prem.Row).Lat;
          Der.Premises.push_back(std::move(Pr));
        }
        std::vector<Derivation> &Rows = Sol.Provenance[D.Pred];
        if (Rows.size() <= JR.RowId)
          Rows.resize(JR.RowId + 1);
        Rows[JR.RowId] = std::move(Der);
      }
    }
    Sol.Stats.RuleFirings += W->RuleFirings;
    Sol.Stats.IndexFallbacks += W->IndexFallbacks;
    Sol.Stats.VmCalls += W->VmCalls;
    Sol.Stats.InterpFallbacks += W->InterpFallbacks;
    W->RuleFirings = 0;
    W->IndexFallbacks = 0;
    W->VmCalls = 0;
    W->InterpFallbacks = 0;
    W->Buffer.clear();
  }
}

void IncrementalSolver::incrementalUpdate(UpdateStats &U, Deadline DL) {
  Solver &Sol = *S;
  SolveStats Before = Sol.Stats;
  uint64_t IcHitsAtUpdateStart = P.vmIcHits();
  size_t NumPreds = P.predicates().size();

  // The inner solver's run state must be clean for re-entry; incremental
  // updates are not subject to TimeLimitSeconds/MaxIterations, but they
  // do honor a caller-supplied cancellation deadline: the sequential
  // eval paths (rederive and delta rounds) check it per matched row and
  // abort with Status::Timeout, after which update() marks the state
  // Degraded so the next batch recovers via a full solve. Parallel
  // worker rounds do not observe it (WorkerCtx::checkRow).
  Sol.Aborted = false;
  Sol.DL = DL;
  Sol.Stats.St = SolveStats::Status::Fixpoint;
  for (auto &Ch : UpdateChanged)
    Ch.clear();
  for (auto &ND : Sol.NextDelta)
    ND.clear();

  assert(Sol.Strata && "inner solver solved, stratification available");
  const Stratification &St = *Sol.Strata;

  // Pre-batch table sizes of the negated predicates: a touched row is
  // present "before" iff it existed below this watermark and was not
  // tombstoned at the end of the last update (NegTombstones).
  std::vector<uint32_t> PreSize(NumPreds, 0);
  for (PredId Pr = 0; Pr < NumPreds; ++Pr)
    if (Pr < St.PredNegated.size() && St.PredNegated[Pr])
      PreSize[Pr] = static_cast<uint32_t>(Sol.Tables[Pr]->size());

  //--- Phase R: retractions + over-delete closure -----------------------
  std::vector<std::vector<uint8_t>> DeletedMark(NumPreds);
  auto markDeleted = [&](PredId Pr, uint32_t Row) -> bool {
    std::vector<uint8_t> &M = DeletedMark[Pr];
    if (M.size() <= Row)
      M.resize(Sol.Tables[Pr]->size(), 0);
    if (M[Row])
      return false;
    M[Row] = 1;
    return true;
  };

  std::vector<std::vector<uint32_t>> DeletedByPred(NumPreds);

  // Over-delete one seed set: everything transitively supported by a
  // seed cell through the support index, which over-approximates true
  // support — sound, since re-derivation restores every cell still
  // derivable. Resets every closure cell to ⊥ first (a later reset must
  // not clobber an earlier re-join), then re-joins the surviving
  // input-fact contributions of exactly those cells — O(deleted), not
  // O(facts). Runs once for the retraction seeds and once per stratum
  // boundary for negation-invalidated heads; cells land in DeletedByPred
  // so the re-derive pass of their own (later) stratum picks them up.
  auto overDeleteBatch = [&](std::vector<CellRef> &Work) {
    std::vector<CellRef> Batch;
    while (!Work.empty()) {
      CellRef C = Work.back();
      Work.pop_back();
      Batch.push_back(C);
      DeletedByPred[C.Pred].push_back(C.Row);
      auto &Dep = Sol.Dependents[C.Pred];
      if (C.Row < Dep.size()) {
        for (CellRef D : Dep[C.Row])
          // Rows already tombstoned are logically absent — the edge is
          // stale (left from before their deletion); deleting them again
          // would only inflate the batch with no-op resets.
          if (!Sol.Tables[D.Pred]->isTombstone(D.Row) &&
              markDeleted(D.Pred, D.Row))
            Work.push_back(D);
        // Out-edges of a deleted cell are stale; re-derivation re-records
        // the ones that still hold.
        Dep[C.Row].clear();
      }
    }
    for (CellRef C : Batch) {
      Sol.Tables[C.Pred]->resetRow(C.Row);
      ++U.CellsDeleted;
      if (Opts.TrackProvenance && C.Row < Sol.Provenance[C.Pred].size())
        Sol.Provenance[C.Pred][C.Row] = Derivation(); // back to FromFact
    }
    for (CellRef C : Batch) {
      Value KeyT = Sol.Tables[C.Pred]->row(C.Row).Key;
      auto It = FactStore[C.Pred].find(KeyT);
      if (It == FactStore[C.Pred].end())
        continue;
      for (Value LV : It->second) {
        Table::JoinResult JR = Sol.Tables[C.Pred]->join(KeyT, LV);
        if (JR.Changed)
          noteChanged(C.Pred, JR.RowId);
      }
    }
  };

  std::vector<CellRef> Work;
  for (const Fact &Fa : PendingRetracts) {
    Value KeyT = keyTupleOf(Fa);
    auto It = FactStore[Fa.Pred].find(KeyT);
    if (It == FactStore[Fa.Pred].end())
      continue;
    auto &Vals = It->second;
    bool Removed = false;
    for (size_t I = 0; I < Vals.size(); ++I) {
      if (Vals[I] == Fa.LatValue) {
        Vals[I] = Vals.back();
        Vals.pop_back();
        Removed = true;
        break;
      }
    }
    if (Vals.empty())
      FactStore[Fa.Pred].erase(It);
    if (!Removed)
      continue;
    ++U.FactsRetracted;
    // Seed the closure with the fact's cell (if materialized): its value
    // may depend on the retracted contribution.
    uint32_t Row = Sol.Tables[Fa.Pred]->lookupRow(KeyT);
    if (Row != Table::NoRow && markDeleted(Fa.Pred, Row))
      Work.push_back({Fa.Pred, Row});
  }
  PendingRetracts.clear();
  overDeleteBatch(Work);

  //--- Phase A: additions ----------------------------------------------
  for (const Fact &Fa : PendingAdds) {
    Value KeyT = keyTupleOf(Fa);
    auto &Vals = FactStore[Fa.Pred][KeyT];
    bool Dup = false;
    for (Value V : Vals)
      if (V == Fa.LatValue) {
        Dup = true;
        break;
      }
    if (Dup)
      continue;
    Vals.push_back(Fa.LatValue);
    ++U.FactsAdded;
    Table::JoinResult JR = Sol.Tables[Fa.Pred]->join(KeyT, Fa.LatValue);
    if (JR.Changed) {
      noteChanged(Fa.Pred, JR.RowId);
      if (Opts.TrackProvenance) {
        std::vector<Derivation> &Rows = Sol.Provenance[Fa.Pred];
        if (Rows.size() <= JR.RowId)
          Rows.resize(JR.RowId + 1);
        Rows[JR.RowId] = Derivation(); // the last increase is the fact
      }
    }
  }
  PendingAdds.clear();

  //--- Phase D: re-derive + delta rounds, stratum by stratum ------------
  bool Parallel = Opts.NumThreads > 0;
  if (Parallel)
    ensureParallel();

  // Adaptive re-plan against the batch-mutated tables before derivation
  // starts: an update stream can drift table shapes far from what the
  // initial solve planned for. Runs between rounds (no evaluation in
  // flight); a changed plan may probe new masks, so the workers' indexes
  // must be refreshed before any parallel round.
  if (Opts.ReplanThreshold > 0 &&
      Sol.replanPlans(Opts.ReplanThreshold, /*CountEvents=*/true) &&
      Parallel && Opts.UseIndexes)
    prepareWorkerIndexes();

  // Keys that net-left a negated predicate's table this update, filled
  // at that predicate's stratum boundary (d) and consumed as insertion
  // deltas for `not P` by every higher stratum's rules (b'). Kept for
  // the whole update — several strata may negate the same predicate.
  std::vector<std::vector<Value>> NegDeleted(NumPreds);

  for (uint32_t Str = 0; Str < St.numStrata() && !Sol.Aborted; ++Str) {
    // (a) Head-bound re-derivation of this stratum's deleted cells over
    // the surviving database. Order within the stratum is irrelevant: a
    // derivation missed because another deleted cell is still ⊥ is
    // re-fired by the delta rounds once that cell comes back.
    for (PredId Pr = 0; Pr < NumPreds && !Sol.Aborted; ++Pr) {
      if (DeletedByPred[Pr].empty() || St.PredStratum[Pr] != Str)
        continue;
      for (uint32_t Row : DeletedByPred[Pr])
        Sol.rederive(Pr, Sol.Tables[Pr]->row(Row).Key);
    }

    // (b') Negation-driven evaluation: every key that net-left a
    // lower-stratum negated predicate is an insertion delta for its
    // negated occurrences — drive this stratum's rules that negate it
    // with the now-true `!P(key)` fronted. Lower strata settled before
    // their boundary ran, so the probes below read final tables.
    for (const NegUse &NU : St.NegUsesByStratum[Str]) {
      if (Sol.Aborted)
        break;
      for (Value KeyT : NegDeleted[NU.Pred])
        Sol.evalNegationDriven(NU.RuleIdx, NU.Pred, KeyT);
    }

    // (b) Seed this stratum's rounds with every row changed so far in
    // this update — the incremental replacement for round-0 full
    // evaluation. Re-firing rows already processed by lower strata is
    // sound (joins are idempotent) and cheap (deltas are small).
    for (PredId PI = 0; PI < NumPreds; ++PI)
      for (uint32_t Row : UpdateChanged[PI])
        Sol.NextDelta[PI].insert(Row);

    // (c) Semi-naive delta rounds restricted to this stratum's rules.
    const std::vector<uint32_t> &RuleIds = St.RulesByStratum[Str];
    while (!Sol.Aborted) {
      bool AnyDelta = false;
      for (size_t PI = 0; PI < NumPreds; ++PI) {
        Sol.Delta[PI].assign(Sol.NextDelta[PI].begin(),
                             Sol.NextDelta[PI].end());
        std::sort(Sol.Delta[PI].begin(), Sol.Delta[PI].end());
        for (uint32_t Row : Sol.NextDelta[PI])
          UpdateChanged[PI].insert(Row);
        Sol.NextDelta[PI].clear();
        AnyDelta |= !Sol.Delta[PI].empty();
      }
      if (!AnyDelta)
        break;
      ++Sol.Stats.Iterations;
      // Round-boundary adaptive re-plan, same contract as the batch
      // solvers: single-threaded here, and workers re-fetch plans by
      // (rule, driver) each round, so swapping them in place is safe.
      if (Opts.ReplanThreshold > 0 &&
          Sol.replanPlans(Opts.ReplanThreshold, /*CountEvents=*/true) &&
          Parallel && Opts.UseIndexes)
        prepareWorkerIndexes();
      if (RuleIds.empty())
        continue; // nothing to fire; the loop drains the delta
      if (Parallel) {
        runParallelRound(RuleIds);
        continue;
      }
      for (uint32_t RI : RuleIds) {
        const Rule &R = Sol.Prepared[RI];
        Sol.CurRuleIndex = RI;
        for (size_t BI = 0; BI < R.Body.size(); ++BI) {
          const auto *A = std::get_if<BodyAtom>(&R.Body[BI]);
          if (!A || A->Negated)
            continue;
          if (Sol.Delta[A->Pred].empty())
            continue;
          Sol.evalRule(R, static_cast<int>(BI), Sol.Delta[A->Pred]);
        }
      }
    }

    // (d) Stratum boundary: this stratum's negated predicates are now
    // final for the update (no higher-stratum rule writes them). Convert
    // their net presence changes into negation deltas: a key that left
    // the table feeds (b') of the higher strata; a key that (re)entered
    // it invalidates every head recorded under it in the negation
    // support index, which the shared over-delete machinery retracts (and
    // the head's own stratum later re-derives). Also syncs NegTombstones
    // so the next update reconstructs pre-batch presence correctly.
    std::vector<CellRef> NegSeeds;
    for (PredId Pr = 0; Pr < NumPreds && !Sol.Aborted; ++Pr) {
      if (Pr >= St.PredNegated.size() || !St.PredNegated[Pr] ||
          St.PredStratum[Pr] != Str)
        continue;
      Table &T = *Sol.Tables[Pr];
      auto &Tomb = NegTombstones[Pr];
      // Only touched rows can have flipped presence: every insertion or
      // revival goes through a changed join (-> UpdateChanged) and every
      // deletion through the over-delete reset (-> DeletedByPred).
      std::vector<uint32_t> Touched(UpdateChanged[Pr].begin(),
                                    UpdateChanged[Pr].end());
      Touched.insert(Touched.end(), DeletedByPred[Pr].begin(),
                     DeletedByPred[Pr].end());
      std::sort(Touched.begin(), Touched.end());
      Touched.erase(std::unique(Touched.begin(), Touched.end()),
                    Touched.end());
      for (uint32_t Row : Touched) {
        bool Before = Row < PreSize[Pr] && !Tomb.count(Row);
        bool Now = !T.isTombstone(Row);
        // Sync the tombstone record even when presence did not net-flip
        // (e.g. a row appended and deleted within this update).
        if (Now)
          Tomb.erase(Row);
        else
          Tomb.insert(Row);
        if (Before == Now)
          continue;
        Value KeyT = T.row(Row).Key;
        if (!Now) {
          NegDeleted[Pr].push_back(KeyT);
          continue;
        }
        // Net insert: consume the key's negation support entry. Heads
        // already tombstoned, or already deleted this update (a Phase R
        // revival carries a fact-only value until its own stratum runs,
        // and facts never depend on a negation), need no second pass.
        auto It = Sol.NegDependents[Pr].find(KeyT);
        if (It == Sol.NegDependents[Pr].end())
          continue;
        for (CellRef D : It->second)
          if (!Sol.Tables[D.Pred]->isTombstone(D.Row) &&
              markDeleted(D.Pred, D.Row))
            NegSeeds.push_back(D);
        Sol.NegDependents[Pr].erase(It);
      }
    }
    if (!NegSeeds.empty())
      overDeleteBatch(NegSeeds);
  }

  for (PredId Pr = 0; Pr < NumPreds; ++Pr)
    for (uint32_t Row : DeletedByPred[Pr])
      if (!Sol.Tables[Pr]->isTombstone(Row))
        ++U.CellsRederived;

  // Snapshot-read hook: the predicates this update touched (changed rows
  // or deletions — a tombstoned-and-not-revived cell changes the model
  // too). Everything else is untouched and snapshot readers can keep
  // sharing their copies of it.
  for (PredId Pr = 0; Pr < NumPreds; ++Pr)
    if (!UpdateChanged[Pr].empty() || !DeletedByPred[Pr].empty())
      U.ChangedPreds.push_back(Pr);

  U.St = Sol.Stats.St;
  U.Iterations = Sol.Stats.Iterations - Before.Iterations;
  U.RuleFirings = Sol.Stats.RuleFirings - Before.RuleFirings;
  U.FactsDerived = Sol.Stats.FactsDerived - Before.FactsDerived;
  U.ParallelTasks = Sol.Stats.ParallelTasks - Before.ParallelTasks;
  U.IndexFallbacks = Sol.Stats.IndexFallbacks - Before.IndexFallbacks;
  U.ReplanEvents = Sol.Stats.ReplanEvents - Before.ReplanEvents;
  U.EstimatedVsActualRows =
      Sol.Stats.EstimatedVsActualRows - Before.EstimatedVsActualRows;
  U.CostBasedPlans = Sol.Stats.CostBasedPlans; // absolute, not a delta
  U.VmCalls = Sol.Stats.VmCalls - Before.VmCalls;
  U.InterpFallbacks = Sol.Stats.InterpFallbacks - Before.InterpFallbacks;
  U.VmInlineCacheHits = P.vmIcHits() - IcHitsAtUpdateStart;
  U.VmInlinedCalls = P.vmPipelineCounters().InlinedCalls;
  U.VmSuperwordHits = P.vmPipelineCounters().SuperwordHits;
  U.VmPassesRemovedInsns = P.vmPipelineCounters().RemovedInsns;
  if (Pool)
    U.ParallelSteals = Pool->steals() - StealsBase;
}

UpdateStats IncrementalSolver::update(Deadline DL) {
  UpdateStats U;
  auto Start = std::chrono::steady_clock::now();
  if (Pool)
    StealsBase = Pool->steals();

  // Negation no longer forces a full solve: negation-touching batches
  // run stratum-local DRed inside incrementalUpdate(). Only the first
  // solve and degraded recovery rebuild from scratch.
  bool NeedFull = !SolvedOnce || Degraded;
  if (NeedFull) {
    U.FullResolve = SolvedOnce;
    if (U.FullResolve)
      ++CumDegradedRecoveries;
    fullSolve(U, DL);
    SolvedOnce = true;
  } else if (PendingAdds.empty() && PendingRetracts.empty()) {
    // Trivial update: the model is already the fixpoint.
  } else {
    incrementalUpdate(U, DL);
  }
  Degraded = !U.ok();
  U.FallbackSolves = CumNegationFallbacks + CumDegradedRecoveries;
  U.NegationFallbacks = CumNegationFallbacks;
  U.DegradedRecoveries = CumDegradedRecoveries;

  U.Seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
  // Full footprint including provenance, the support index and the memo
  // cache — the components the old tables-only sum under-reported.
  U.MemoryBytes = S->memoryFootprint();
  if (S->Plans) {
    U.PlanSteps = S->Plans->totalSteps();
    U.CostBasedPlans = S->Plans->costBasedPlans();
  }
  if (S->Memo) {
    // Cumulative over the inner solver's lifetime (the cache is shared
    // across updates), not per-update deltas.
    U.MemoHits = S->Memo->hits();
    U.MemoMisses = S->Memo->misses();
  }
  return U;
}
