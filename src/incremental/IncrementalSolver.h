//===- incremental/IncrementalSolver.h - Batch fact updates ---*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental evaluation subsystem: batch fact insertions and
/// retractions between solves, reusing the fixed-point state instead of
/// restarting (DESIGN.md §12).
///
/// Insertions are the easy direction on lattices — values only go up, so
/// newly joined cells seed ΔP directly and semi-naive iteration resumes.
/// Retractions use a Delete/Re-derive (DRed-style) pass generalized to
/// lattices: the solver maintains a support index (Solver::Dependents,
/// SolverOptions::TrackSupport) recording, for every body row, the head
/// cells it helped increase; retraction over-deletes the transitive
/// closure of the retracted cells through that index, resets the deleted
/// cells to ⊥ in place (Table::resetRow tombstones), re-joins their
/// surviving input-fact contributions, re-derives each deleted cell with
/// head-bound rule evaluation over the surviving database, and finally
/// resumes semi-naive delta rounds per stratum until the fixed point is
/// restored.
///
/// Stratified negation is handled without an escape hatch: strata are
/// processed in order, and at each stratum boundary the net presence
/// changes of that stratum's negated predicates are converted into
/// deltas for the higher-stratum rules that negate them. A key that
/// left the table drives those rules with the now-true `!P(key)`
/// fronted (Solver::evalNegationDriven); a key that (re)entered it
/// over-deletes the heads recorded in the negation support index
/// (Solver::NegDependents), which the normal Delete/Re-derive machinery
/// then restores. Stratification guarantees a negated table is final
/// for the update before any rule that negates it runs, so negated
/// probes always read current tables (see fixpoint/Plan.h). The only
/// remaining full re-solves are degraded recoveries after an aborted
/// update; SolveStats::NegationFallbacks must stay 0.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_INCREMENTAL_INCREMENTALSOLVER_H
#define FLIX_INCREMENTAL_INCREMENTALSOLVER_H

#include "fixpoint/Solver.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace flix {

class ThreadPool;

/// Per-update() outcome: the usual solve counters (covering just this
/// update's work) plus the incremental-specific ones.
struct UpdateStats : SolveStats {
  uint64_t FactsAdded = 0;     ///< fact pairs inserted (duplicates skipped)
  uint64_t FactsRetracted = 0; ///< fact pairs removed (unknown ones skipped)
  uint64_t CellsDeleted = 0;   ///< cells reset to ⊥ by over-deletion
  uint64_t CellsRederived = 0; ///< deleted cells re-derived to non-⊥
  /// Update fell back to a from-scratch solve. Post stratum-local DRed
  /// this happens only for degraded recovery (the prior update aborted);
  /// negation never causes it.
  bool FullResolve = false;
  /// Predicates whose table changed in this update (every predicate on a
  /// full solve). The snapshot-read hook: readers that maintain
  /// per-predicate immutable copies of the model (the server's query
  /// snapshots) rebuild exactly these and share the rest, so snapshot
  /// maintenance cost tracks the affected cone like the update itself.
  std::vector<PredId> ChangedPreds;
};

/// Wraps the sequential semi-naive Solver with a mutable input-fact store
/// and an update() that advances the model to the new fact set's least
/// fixed point without recomputing it from scratch.
///
/// Usage: construct over a Program (its facts seed the store), optionally
/// stage more adds/retracts, then call update() — the first call runs the
/// initial full solve (with support tracking on). After any update() the
/// query API below reflects the current model. Staged mutations are
/// buffered until the next update().
///
/// With SolverOptions::NumThreads > 0 the delta rounds of an update run
/// on a work-stealing pool: workers evaluate rule bodies read-only and
/// buffer their derivations; the coordinator joins them — and records
/// support/provenance — single-threaded between rounds, so the support
/// index write path is trivially race-free. Retraction closure and
/// re-derivation are sequential in all configurations.
///
/// SolverOptions caveats: TimeLimitSeconds/MaxIterations apply only to
/// the initial (and fallback) full solves, not to incremental updates;
/// Strategy::Naive affects only the initial solve (updates are always
/// delta-driven).
class IncrementalSolver {
public:
  explicit IncrementalSolver(const Program &P,
                             SolverOptions Opts = SolverOptions());
  IncrementalSolver(const IncrementalSolver &) = delete;
  IncrementalSolver &operator=(const IncrementalSolver &) = delete;
  ~IncrementalSolver();

  /// Stages one relational fact (full tuple).
  void addFact(PredId Pred, std::span<const Value> Tuple);
  void addFact(PredId Pred, std::initializer_list<Value> Tuple) {
    addFact(Pred, std::span<const Value>(Tuple.begin(), Tuple.size()));
  }
  /// Stages one lattice fact: cell \p Key gains the contribution
  /// \p LatVal (the cell's value is the lub of its contributions).
  void addLatFact(PredId Pred, std::span<const Value> Key, Value LatVal);
  void addLatFact(PredId Pred, std::initializer_list<Value> Key,
                  Value LatVal) {
    addLatFact(Pred, std::span<const Value>(Key.begin(), Key.size()),
               LatVal);
  }
  /// Stages removal of one relational fact. Retracting a fact that was
  /// never added is a no-op (not counted in FactsRetracted).
  void retractFact(PredId Pred, std::span<const Value> Tuple);
  void retractFact(PredId Pred, std::initializer_list<Value> Tuple) {
    retractFact(Pred, std::span<const Value>(Tuple.begin(), Tuple.size()));
  }
  /// Stages removal of one lattice fact contribution; the pair
  /// (\p Key, \p LatVal) must match an earlier addLatFact / program fact
  /// to have an effect.
  void retractLatFact(PredId Pred, std::span<const Value> Key, Value LatVal);
  void retractLatFact(PredId Pred, std::initializer_list<Value> Key,
                      Value LatVal) {
    retractLatFact(Pred, std::span<const Value>(Key.begin(), Key.size()),
                   LatVal);
  }

  /// Batch forms. Each row is a full tuple: for relational predicates all
  /// columns; for lattice predicates the key columns followed by the
  /// lattice value.
  void addFacts(PredId Pred, std::span<const std::vector<Value>> Rows);
  void retractFacts(PredId Pred, std::span<const std::vector<Value>> Rows);

  /// Applies every staged mutation and advances the model to the least
  /// fixed point of the updated fact set. The first call performs the
  /// initial full solve.
  UpdateStats update() { return update(Deadline()); }

  /// update() with a cancellation deadline. Expiry aborts the in-flight
  /// work at the next per-row check (full/fallback solves get the
  /// remaining budget as their time limit; sequential delta rounds and
  /// re-derivation check the deadline per matched row). An aborted update
  /// returns Status::Timeout and leaves the tables a sound
  /// under-approximation that is *not* a fixpoint — the solver remembers
  /// this (Degraded) and the next update() re-solves from scratch, so a
  /// cancelled batch costs recovery work but never a wrong model.
  /// Parallel delta rounds (NumThreads > 0) do not observe mid-round
  /// deadlines; only the sequential configuration supports cancellation.
  UpdateStats update(Deadline DL);

  /// Cumulative number of update() batches that fell back to a
  /// from-scratch solve, split by reason. Mirrored into the
  /// FallbackSolves / NegationFallbacks / DegradedRecoveries fields of
  /// every returned UpdateStats; exposed directly for operators polling
  /// a live solver. negationFallbacks() is a retired escape hatch and
  /// must stay 0 (tests assert it); degradedRecoveries() counts rebuilds
  /// after an aborted (deadline / iteration-limit) update.
  uint64_t fallbackSolves() const {
    return CumNegationFallbacks + CumDegradedRecoveries;
  }
  uint64_t negationFallbacks() const { return CumNegationFallbacks; }
  uint64_t degradedRecoveries() const { return CumDegradedRecoveries; }

  /// Number of staged (not yet applied) mutations.
  size_t pendingMutations() const {
    return PendingAdds.size() + PendingRetracts.size();
  }

  // -- Query API (valid after the first update()) --------------------
  const Solver &solver() const { return *S; }
  const Table &table(PredId Pred) const { return S->table(Pred); }
  bool contains(PredId Pred, std::span<const Value> Tuple) const {
    return S->contains(Pred, Tuple);
  }
  bool contains(PredId Pred, std::initializer_list<Value> Tuple) const {
    return S->contains(Pred, Tuple);
  }
  Value latValue(PredId Pred, std::span<const Value> Key) const {
    return S->latValue(Pred, Key);
  }
  Value latValue(PredId Pred, std::initializer_list<Value> Key) const {
    return S->latValue(Pred, Key);
  }
  std::vector<std::vector<Value>> tuples(PredId Pred) const {
    return S->tuples(Pred);
  }
  const Derivation *explain(PredId Pred, std::span<const Value> Key) const {
    return S->explain(Pred, Key);
  }
  const Derivation *explain(PredId Pred,
                            std::initializer_list<Value> Key) const {
    return S->explain(Pred,
                      std::span<const Value>(Key.begin(), Key.size()));
  }
  std::string explainString(PredId Pred, std::span<const Value> Key,
                            unsigned Depth = 3) const {
    return S->explainString(Pred, Key, Depth);
  }
  std::string explainString(PredId Pred, std::initializer_list<Value> Key,
                            unsigned Depth = 3) const {
    return S->explainString(
        Pred, std::span<const Value>(Key.begin(), Key.size()), Depth);
  }

  /// The current input fact set, materialized (e.g. for a from-scratch
  /// differential check). Staged mutations are not included.
  std::vector<Fact> currentFacts() const;

private:
  struct WorkerCtx;
  struct Task;

  Value keyTupleOf(const Fact &Fa) const;
  void fullSolve(UpdateStats &U, Deadline DL);
  void incrementalUpdate(UpdateStats &U, Deadline DL);
  void noteChanged(PredId Pred, uint32_t Row);
  void recordSupportEdge(CellRef Prem, CellRef Head);
  void recordNegSupportEdge(PredId Pred, Value KeyT, CellRef Head);
  void ensureParallel();
  void prepareWorkerIndexes();
  void runParallelRound(const std::vector<uint32_t> &RuleIds);
  void mergeWorkerDerivs();

  const Program &P;
  SolverOptions Opts;
  ValueFactory &F;

  std::unique_ptr<Solver> S;
  bool SolvedOnce = false;
  /// Set when the last solve did not end at a clean fixpoint (error /
  /// timeout / iteration limit): the table state is not a model, so the
  /// next update() re-solves from scratch instead of patching it.
  bool Degraded = false;

  /// The mutable input fact multiset: per predicate, key tuple → the
  /// distinct lattice contributions added for that cell (boolean(true)
  /// for relational predicates). The model is always the LFP of this
  /// store plus the rules.
  std::vector<std::unordered_map<Value, SmallVector<Value, 2>>> FactStore;

  std::vector<Fact> PendingAdds;
  std::vector<Fact> PendingRetracts;
  /// Materialization of FactStore handed to the inner Solver through
  /// Solver::FactsOverride for full solves; kept alive for its lifetime.
  std::vector<Fact> OverrideFacts;

  /// Rows of each negated predicate that are tombstoned (row id exists
  /// but the cell is logically absent) as of the end of the last
  /// update(). Combined with the table size captured at update start,
  /// this reconstructs any touched row's pre-batch presence at a stratum
  /// boundary — the inputs of the net insert/retract delta conversion
  /// for `not P`. Empty for predicates no rule negates; cleared by
  /// fullSolve() (a replaced inner solver has fresh, tombstone-free
  /// tables).
  std::vector<std::unordered_set<uint32_t>> NegTombstones;

  /// Per rule index: true iff the rule has a negated body atom. Workers
  /// consult it to decide whether a buffered derivation must capture the
  /// negated keys it matched through (WorkerCtx::Deriv::NegKeys).
  std::vector<uint8_t> RuleHasNeg;

  /// Rows changed so far in the current update(), per predicate; seeds
  /// every stratum's delta rounds (replacing full round-0 evaluation).
  std::vector<std::unordered_set<uint32_t>> UpdateChanged;

  // Parallel round machinery (lazily set up on first parallel update).
  std::unique_ptr<ThreadPool> Pool;
  std::vector<std::unique_ptr<WorkerCtx>> Workers;
  std::vector<Task> Tasks;
  std::mutex ExternMu;
  bool ParallelReady = false;
  /// Pool steal counter at the start of the current update(), for the
  /// per-update ParallelSteals delta.
  uint64_t StealsBase = 0;
  /// Lifetime counts of full-solve fallbacks taken by update(), by
  /// reason (see fallbackSolves()); they live here because fullSolve()
  /// replaces the inner solver and would lose counters kept in its
  /// stats. CumNegationFallbacks is a retired path and must stay 0.
  uint64_t CumNegationFallbacks = 0;
  uint64_t CumDegradedRecoveries = 0;
};

} // namespace flix

#endif // FLIX_INCREMENTAL_INCREMENTALSOLVER_H
