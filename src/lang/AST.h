//===- lang/AST.h - FLIX abstract syntax -----------------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax of FLIX source programs (Figure 2): a pure
/// functional sub-language (enums, defs, expressions, patterns) plus the
/// logic sub-language (rel/lat declarations, lattice bindings, rules and
/// facts).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_LANG_AST_H
#define FLIX_LANG_AST_H

#include "support/SourceManager.h"

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace flix::ast {

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

/// A syntactic type: Bool, Int, Str, Unit, an enum name, a tuple
/// `(T1, ..., Tn)`, a set `Set[T]`, or a lattice reference `Name<>`.
struct TypeExpr {
  enum class Kind {
    Named,   ///< Bool / Int / Str / Unit / enum name
    Tuple,   ///< (T1, ..., Tn)
    Set,     ///< Set[T]
    Lattice, ///< Name<> — the lattice instance associated with Name
  };
  Kind K = Kind::Named;
  std::string Name;             ///< Named / Lattice
  std::vector<TypeExpr> Elems;  ///< Tuple elements or Set element
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Expressions and patterns
//===----------------------------------------------------------------------===//

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinOp {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

enum class UnOp { Not, Neg };

/// A pattern in a match case.
struct Pattern {
  enum class Kind {
    Wildcard,
    Var,
    IntLit,
    BoolLit,
    StrLit,
    UnitLit,
    Tag,   ///< Enum.Case or Enum.Case(pat)
    Tuple, ///< (p1, ..., pn)
  };
  Kind K = Kind::Wildcard;
  SourceLoc Loc;
  std::string Name;             ///< variable name
  std::string EnumName, CaseName;
  int64_t IntVal = 0;
  bool BoolVal = false;
  std::string StrVal;
  std::vector<Pattern> Elems; ///< tuple elements; tag payload (0 or 1)
};

struct MatchCase {
  Pattern Pat;
  ExprPtr Body;
};

/// Expression node. One struct with a kind discriminator keeps the tree
/// walkers compact; only the fields relevant to the kind are populated.
struct Expr {
  enum class Kind {
    IntLit,
    BoolLit,
    StrLit,
    UnitLit,
    Var,
    Tag,    ///< Enum.Case or Enum.Case(e)
    Tuple,  ///< (e1, ..., en), n >= 2
    SetLit, ///< #{e1, ..., en}
    Call,   ///< f(e1, ..., en)
    If,     ///< if (c) t else e
    Match,  ///< match e with { case p => e ... }
    Let,    ///< let x = e1; e2
    Binary,
    Unary,
  };
  Kind K;
  SourceLoc Loc;

  int64_t IntVal = 0;
  bool BoolVal = false;
  std::string StrVal;
  std::string Name; ///< Var name, Call callee, Let binder
  std::string EnumName, CaseName;

  std::vector<ExprPtr> Args; ///< children; meaning depends on K:
                             ///<   Tag: payload (0 or 1)
                             ///<   Tuple/SetLit/Call: elements/arguments
                             ///<   If: cond, then, else
                             ///<   Match: scrutinee
                             ///<   Let: init, body
                             ///<   Binary: lhs, rhs; Unary: operand
  std::vector<MatchCase> Cases;
  BinOp BOp = BinOp::Add;
  UnOp UOp = UnOp::Not;

  explicit Expr(Kind K, SourceLoc Loc) : K(K), Loc(Loc) {}
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

struct EnumCaseDecl {
  std::string Name;
  std::optional<TypeExpr> Payload;
  SourceLoc Loc;
};

struct EnumDecl {
  std::string Name;
  std::vector<EnumCaseDecl> Cases;
  SourceLoc Loc;
};

struct Param {
  std::string Name;
  TypeExpr Type;
  SourceLoc Loc;
};

/// `def f(x: T, ...): R = e` or `ext def f(x: T, ...): R;` (native).
struct DefDecl {
  std::string Name;
  std::vector<Param> Params;
  TypeExpr RetType;
  ExprPtr Body; ///< null for ext defs
  bool IsExt = false;
  SourceLoc Loc;
};

/// `let Name<> = (bot, top, leq, lub, glb);` — associates the five lattice
/// components with a type (Figure 2, lines 28-29).
struct LatticeBindDecl {
  std::string TypeName;
  ExprPtr Bot, Top;
  std::string LeqFn, LubFn, GlbFn;
  SourceLoc Loc;
};

struct Attribute {
  std::string Name; ///< may be empty for the `Type<>` shorthand
  TypeExpr Type;
  SourceLoc Loc;
};

/// `rel Name(a: T, ...)` or `lat Name(a: T, ..., L<>)`.
struct PredDecl {
  bool IsLat = false;
  std::string Name;
  std::vector<Attribute> Attrs;
  SourceLoc Loc;
};

//===----------------------------------------------------------------------===//
// Rules
//===----------------------------------------------------------------------===//

/// An atom in a head or body: `Pred(t1, ..., tn)`. Terms are expressions;
/// Sema classifies variables vs constants vs function applications.
struct AtomAST {
  bool Negated = false;
  std::string Pred;
  std::vector<ExprPtr> Terms;
  SourceLoc Loc;
};

/// A filter application `f(args...)` in a body.
struct FilterAST {
  std::string Fn;
  std::vector<ExprPtr> Args;
  SourceLoc Loc;
};

/// A binder `x <- f(args...)` or `(x, y) <- f(args...)` in a body.
struct BinderAST {
  std::vector<std::string> Pattern;
  std::string Fn;
  std::vector<ExprPtr> Args;
  SourceLoc Loc;
};

using BodyElemAST = std::variant<AtomAST, FilterAST, BinderAST>;

/// `Head :- Body.` — a fact when the body is empty.
struct RuleAST {
  AtomAST Head;
  std::vector<BodyElemAST> Body;
  SourceLoc Loc;
};

/// `index Pred(attr1, attr2, ...)` — a hint to build the secondary hash
/// index on the named key columns eagerly (§4.5 index selection).
struct IndexHintDecl {
  std::string Pred;
  std::vector<std::string> Attrs;
  SourceLoc Loc;
};

/// A parsed compilation unit, declarations in source order.
struct Module {
  std::vector<EnumDecl> Enums;
  std::vector<DefDecl> Defs;
  std::vector<LatticeBindDecl> LatticeBinds;
  std::vector<PredDecl> Preds;
  std::vector<RuleAST> Rules;
  std::vector<IndexHintDecl> IndexHints;
};

} // namespace flix::ast

#endif // FLIX_LANG_AST_H
