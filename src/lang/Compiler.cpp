//===- lang/Compiler.cpp - FLIX compiler driver -----------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "lang/Compiler.h"

#include "lang/Lexer.h"
#include "lang/Parser.h"

#include <cassert>

using namespace flix;
using namespace flix::ast;

namespace {

/// A Lattice whose operations are interpreted FLIX functions — the lowered
/// form of `let Name<> = (bot, top, leq, lub, glb)`.
class InterpretedLattice final : public Lattice {
public:
  InterpretedLattice(std::string Name, Value Bot, Value Top, std::string Leq,
                     std::string Lub, std::string Glb, Interp &I)
      : Name(std::move(Name)), Bot(Bot), Top(Top), LeqFn(std::move(Leq)),
        LubFn(std::move(Lub)), GlbFn(std::move(Glb)), I(I) {}

  /// Routes operations whose FLIX functions compiled to bytecode through
  /// the VM (with its fused ⊥/⊤ prologues); the others stay interpreted.
  /// Called once by the lowering, before any solving.
  void attachVm(vm::Vm *V, std::optional<uint32_t> Leq,
                std::optional<uint32_t> Lub, std::optional<uint32_t> Glb) {
    Machine = V;
    LeqIx = Leq;
    LubIx = Lub;
    GlbIx = Glb;
  }

  std::string name() const override { return Name; }
  Value bot() const override { return Bot; }
  Value top() const override { return Top; }

  bool leq(Value A, Value B) const override {
    Value Args[2] = {A, B};
    if (Machine && LeqIx) {
      Value R = Machine->call(*LeqIx, Args);
      return R.isBool() && R.asBool();
    }
    Value R = I.call(LeqFn, Args);
    return R.isBool() && R.asBool();
  }
  Value lub(Value A, Value B) const override {
    Value Args[2] = {A, B};
    if (Machine && LubIx)
      return Machine->call(*LubIx, Args);
    return I.call(LubFn, Args);
  }
  Value glb(Value A, Value B) const override {
    Value Args[2] = {A, B};
    if (Machine && GlbIx)
      return Machine->call(*GlbIx, Args);
    return I.call(GlbFn, Args);
  }

private:
  std::string Name;
  Value Bot, Top;
  std::string LeqFn, LubFn, GlbFn;
  Interp &I;
  vm::Vm *Machine = nullptr;
  std::optional<uint32_t> LeqIx, LubIx, GlbIx;
};

/// Collects the free rule variables of an expression in first-occurrence
/// order ("_" is not a variable here; Sema already rejected it in
/// expression positions).
void collectFreeVars(const Expr &E, std::vector<std::string> &Out) {
  auto seen = [&](const std::string &N) {
    for (const std::string &S : Out)
      if (S == N)
        return true;
    return false;
  };
  switch (E.K) {
  case Expr::Kind::Var:
    if (E.Name != "_" && !seen(E.Name))
      Out.push_back(E.Name);
    return;
  case Expr::Kind::Let: {
    collectFreeVars(*E.Args[0], Out);
    // The let-bound name shadows; conservative: treat body vars minus the
    // binder. Rule-position expressions rarely use let, so keep it simple
    // and correct: collect body vars, the binder itself is not free.
    std::vector<std::string> BodyVars;
    collectFreeVars(*E.Args[1], BodyVars);
    for (const std::string &V : BodyVars)
      if (V != E.Name && !seen(V))
        Out.push_back(V);
    return;
  }
  case Expr::Kind::Match: {
    collectFreeVars(*E.Args[0], Out);
    for (const MatchCase &C : E.Cases) {
      // Pattern variables shadow rule variables; Sema rejects shadowing,
      // so any variable in the case body that is not pattern-bound is
      // free. Collect pattern names first.
      std::vector<std::string> PatVars;
      std::function<void(const Pattern &)> CollectPat =
          [&](const Pattern &P) {
            if (P.K == Pattern::Kind::Var)
              PatVars.push_back(P.Name);
            for (const Pattern &Sub : P.Elems)
              CollectPat(Sub);
          };
      CollectPat(C.Pat);
      std::vector<std::string> BodyVars;
      collectFreeVars(*C.Body, BodyVars);
      for (const std::string &V : BodyVars) {
        bool IsPat = false;
        for (const std::string &PV : PatVars)
          IsPat |= PV == V;
        if (!IsPat && !seen(V))
          Out.push_back(V);
      }
    }
    return;
  }
  default:
    for (const ExprPtr &A : E.Args)
      collectFreeVars(*A, Out);
    return;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Lowering
//===----------------------------------------------------------------------===//

class FlixCompiler::Lowering {
public:
  Lowering(FlixCompiler &C, DiagnosticEngine &Diags)
      : C(C), Diags(Diags), F(C.F), CM(C.CM), I(*C.Interpreter) {}

  bool run() {
    lowerLattices();
    // Defs compile after the lattice ops are marked (so leq/lub/glb get
    // their fused prologues) and before rule lowering (which compiles a
    // wrapper per filter/binder/transfer site against them).
    if (C.VmComp) {
      C.VmComp->compileDefs();
      for (const VmLatticeHook &H : VmLattices)
        H.Lat->attachVm(C.TheVm.get(), C.VmComp->functionIndex(H.Leq),
                        C.VmComp->functionIndex(H.Lub),
                        C.VmComp->functionIndex(H.Glb));
    }
    lowerPredicates();
    if (Diags.hasErrors())
      return false;
    for (const auto &[PredName, Mask] : CM.IndexHints) {
      auto It = C.PredIds.find(PredName);
      if (It != C.PredIds.end())
        C.Prog->addIndexHint(It->second, Mask);
    }
    for (size_t RI = 0; RI < CM.Ast->Rules.size(); ++RI)
      lowerRule(CM.Ast->Rules[RI]);
    return !Diags.hasErrors() && !I.hasError();
  }

private:
  /// Evaluates a constant expression at compile time.
  Value constEval(const Expr &E) {
    static const std::map<std::string, Value> Empty;
    Value V = I.eval(E, Empty);
    if (I.hasError()) {
      Diags.error(E.Loc, "constant evaluation failed: " + I.error());
      I.clearError();
    }
    return V;
  }

  void lowerLattices() {
    for (const auto &[Name, Info] : CM.LatticeBinds) {
      Value Bot = constEval(*Info.Decl->Bot);
      Value Top = constEval(*Info.Decl->Top);
      auto L = std::make_unique<InterpretedLattice>(
          Name, Bot, Top, Info.Decl->LeqFn, Info.Decl->LubFn,
          Info.Decl->GlbFn, I);
      if (C.VmComp) {
        C.VmComp->markLatticeOp(Info.Decl->LeqFn,
                                vm::VmCompiler::LatRole::Leq, Bot, Top);
        C.VmComp->markLatticeOp(Info.Decl->LubFn,
                                vm::VmCompiler::LatRole::Lub, Bot, Top);
        C.VmComp->markLatticeOp(Info.Decl->GlbFn,
                                vm::VmCompiler::LatRole::Glb, Bot, Top);
        VmLattices.push_back(VmLatticeHook{L.get(), Info.Decl->LeqFn,
                                           Info.Decl->LubFn,
                                           Info.Decl->GlbFn});
      }
      LatticeByName[Name] = L.get();
      C.Lattices.push_back(std::move(L));
    }
  }

  void lowerPredicates() {
    // Declare in source order for stable PredIds.
    for (const PredDecl &PD : CM.Ast->Preds) {
      auto It = CM.Preds.find(PD.Name);
      if (It == CM.Preds.end())
        continue;
      const PredInfo &PI = It->second;
      unsigned Arity = static_cast<unsigned>(PI.AttrTypes.size());
      PredId Id;
      if (PD.IsLat) {
        const Lattice *L = LatticeByName[PI.LatticeTypeName];
        if (!L) {
          Diags.error(PD.Loc, "internal: missing lattice for predicate '" +
                                  PD.Name + "'");
          continue;
        }
        Id = C.Prog->lattice(PD.Name, Arity, L);
      } else {
        Id = C.Prog->relation(PD.Name, Arity);
      }
      C.PredIds[PD.Name] = Id;
    }
  }

  VarId varFor(const std::string &Name) {
    if (Name == "_") {
      VarNames.push_back("_");
      return static_cast<VarId>(VarNames.size() - 1);
    }
    for (size_t I2 = 0; I2 < VarNames.size(); ++I2)
      if (VarNames[I2] == Name)
        return static_cast<VarId>(I2);
    VarNames.push_back(Name);
    return static_cast<VarId>(VarNames.size() - 1);
  }

  /// Lowers a var-or-constant term.
  Term lowerSimpleTerm(const Expr &E) {
    if (E.K == Expr::Kind::Var)
      return Term::var(varFor(E.Name));
    return Term::constant(constEval(E));
  }

  /// Creates an extern function that evaluates \p Exprs under the bindings
  /// of their free variables and combines the results via \p Combine.
  /// Returns the function id and fills \p ArgTerms with the variable terms
  /// to pass at the call site. \p VmCallee is the def the wrapper
  /// forwards to in bytecode (empty for the transfer identity form); a
  /// compiled twin is attached as the function's VmImpl, else the
  /// function is marked interpreter-only.
  template <typename CombineFn>
  FnId makeWrapper(const std::string &Name, FnRole Role,
                   std::vector<const Expr *> Exprs,
                   SmallVector<Term, 4> &ArgTerms,
                   const std::string &VmCallee, CombineFn Combine) {
    std::vector<std::string> FreeVars;
    for (const Expr *E : Exprs)
      collectFreeVars(*E, FreeVars);
    for (const std::string &V : FreeVars)
      ArgTerms.push_back(Term::var(varFor(V)));

    std::optional<uint32_t> WrapIx;
    if (C.VmComp)
      WrapIx = C.VmComp->compileWrapper(Name, FreeVars, Exprs, VmCallee);

    Interp *Ip = &I;
    auto Impl = [Ip, Exprs = std::move(Exprs), FreeVars,
                 Combine](std::span<const Value> Args) -> Value {
      std::map<std::string, Value> Env;
      for (size_t K = 0; K < FreeVars.size(); ++K)
        Env[FreeVars[K]] = Args[K];
      SmallVector<Value, 4> Vals;
      for (const Expr *E : Exprs)
        Vals.push_back(Ip->eval(*E, Env));
      return Combine(*Ip, std::span<const Value>(Vals.data(), Vals.size()));
    };
    FnId Id = C.Prog->function(Name, static_cast<unsigned>(FreeVars.size()),
                               Role, std::move(Impl));
    if (C.VmComp) {
      if (WrapIx) {
        vm::Vm *V = C.TheVm.get();
        uint32_t Ix = *WrapIx;
        C.Prog->setVmImpl(Id, [V, Ix](std::span<const Value> Args) {
          return V->call(Ix, Args);
        });
      } else {
        C.Prog->setVmImpl(Id, nullptr);
      }
    }
    return Id;
  }

  void lowerRule(const RuleAST &R) {
    VarNames.clear();
    auto PIt = C.PredIds.find(R.Head.Pred);
    if (PIt == C.PredIds.end())
      return;
    PredId HeadPred = PIt->second;
    const PredicateDecl &HeadDecl = C.Prog->predicate(HeadPred);

    // Facts.
    if (R.Body.empty()) {
      SmallVector<Value, 4> Vals;
      for (const ExprPtr &T : R.Head.Terms)
        Vals.push_back(constEval(*T));
      if (Diags.hasErrors())
        return;
      if (HeadDecl.isRelational()) {
        C.Prog->addFact(HeadPred,
                        std::span<const Value>(Vals.data(), Vals.size()));
      } else {
        C.Prog->addLatFact(
            HeadPred,
            std::span<const Value>(Vals.data(), Vals.size() - 1),
            Vals.back());
      }
      return;
    }

    Rule Out;
    Out.Loc = R.Loc;

    // Body.
    for (const BodyElemAST &BE : R.Body) {
      if (const auto *A = std::get_if<AtomAST>(&BE)) {
        auto APIt = C.PredIds.find(A->Pred);
        if (APIt == C.PredIds.end())
          return;
        BodyAtom BA;
        BA.Pred = APIt->second;
        BA.Negated = A->Negated;
        for (const ExprPtr &T : A->Terms)
          BA.Terms.push_back(lowerSimpleTerm(*T));
        Out.Body.emplace_back(std::move(BA));
        continue;
      }
      if (const auto *Fl = std::get_if<FilterAST>(&BE)) {
        BodyFilter BF;
        std::vector<const Expr *> ArgExprs;
        for (const ExprPtr &A : Fl->Args)
          ArgExprs.push_back(A.get());
        std::string FnName = Fl->Fn;
        BF.Fn = makeWrapper(
            "filter:" + FnName, FnRole::Filter, std::move(ArgExprs), BF.Args,
            FnName, [FnName](Interp &Ip, std::span<const Value> Vals) {
              return Ip.call(FnName, Vals);
            });
        Out.Body.emplace_back(std::move(BF));
        continue;
      }
      const auto &B = std::get<BinderAST>(BE);
      BodyBinder BB;
      std::vector<const Expr *> ArgExprs;
      for (const ExprPtr &A : B.Args)
        ArgExprs.push_back(A.get());
      std::string FnName = B.Fn;
      BB.Fn = makeWrapper(
          "binder:" + FnName, FnRole::Binder, std::move(ArgExprs), BB.Args,
          FnName, [FnName](Interp &Ip, std::span<const Value> Vals) {
            return Ip.call(FnName, Vals);
          });
      for (const std::string &V : B.Pattern)
        BB.Pattern.push_back(varFor(V));
      Out.Body.emplace_back(std::move(BB));
    }

    // Head.
    Out.Head.Pred = HeadPred;
    for (size_t TI = 0; TI + 1 < R.Head.Terms.size(); ++TI)
      Out.Head.KeyTerms.push_back(lowerSimpleTerm(*R.Head.Terms[TI]));
    const Expr &Last = *R.Head.Terms.back();
    if (Last.K == Expr::Kind::Var) {
      Out.Head.LastTerm = Term::var(varFor(Last.Name));
    } else {
      std::vector<std::string> FreeVars;
      collectFreeVars(Last, FreeVars);
      if (FreeVars.empty()) {
        Out.Head.LastTerm = Term::constant(constEval(Last));
      } else {
        SmallVector<Term, 4> ArgTerms;
        Out.Head.LastFn = makeWrapper(
            "transfer:" + C.Prog->predicate(HeadPred).Name,
            FnRole::Transfer, {&Last}, ArgTerms, std::string(),
            [](Interp &, std::span<const Value> Vals) { return Vals[0]; });
        Out.Head.FnArgs = std::move(ArgTerms);
      }
    }

    Out.NumVars = static_cast<uint32_t>(VarNames.size());
    Out.VarNames = VarNames;
    C.Prog->addRule(std::move(Out));
  }

  FlixCompiler &C;
  DiagnosticEngine &Diags;
  ValueFactory &F;
  const CheckedModule &CM;
  Interp &I;
  std::map<std::string, const Lattice *> LatticeByName;
  std::vector<std::string> VarNames;

  /// Lattices awaiting their VM operation indexes (known only once
  /// compileDefs() has run).
  struct VmLatticeHook {
    InterpretedLattice *Lat;
    std::string Leq, Lub, Glb;
  };
  std::vector<VmLatticeHook> VmLattices;
};

//===----------------------------------------------------------------------===//
// FlixCompiler
//===----------------------------------------------------------------------===//

FlixCompiler::FlixCompiler(ValueFactory &F) : F(F) {
  Diags = std::make_unique<DiagnosticEngine>(SM);
}

FlixCompiler::~FlixCompiler() = default;

void FlixCompiler::registerNative(const std::string &Name, NativeFn Fn) {
  if (UseVm) {
    // Before compile() the VM has no native slots yet; park a copy for
    // installation at the end of compile().
    if (TheVm)
      TheVm->registerNative(Name, Fn);
    else
      VmNatives.emplace_back(Name, Fn);
  }
  if (Interpreter) {
    Interpreter->registerNative(Name, std::move(Fn));
    return;
  }
  PendingNatives.emplace_back(Name, std::move(Fn));
}

bool FlixCompiler::compile(std::string Source, std::string BufferName) {
  assert(!Compiled && "compile() may be called once per FlixCompiler");
  Compiled = true;

  uint32_t BufId = SM.addBuffer(std::move(BufferName), std::move(Source));
  Lexer Lex(SM, BufId, *Diags);
  std::vector<Token> Tokens = Lex.lexAll();
  if (Diags->hasErrors())
    return false;

  Parser P(std::move(Tokens), *Diags);
  Mod = std::make_unique<ast::Module>(P.parseModule());
  if (Diags->hasErrors())
    return false;

  CM = checkModule(*Mod, *Diags);
  if (Diags->hasErrors())
    return false;

  Interpreter = std::make_unique<Interp>(CM, F);
  Interpreter->setSourceManager(&SM);
  for (auto &[Name, Fn] : PendingNatives)
    Interpreter->registerNative(Name, std::move(Fn));
  PendingNatives.clear();

  if (UseVm) {
    VmMod = std::make_unique<vm::VmModule>();
    VmComp = std::make_unique<vm::VmCompiler>(CM, F, &SM, *VmMod);
    VmComp->setOptLevel(VmOptLevel);
    // Faults funnel into the interpreter's first-fault slot so
    // interp().hasError() observes either engine.
    TheVm = std::make_unique<vm::Vm>(
        *VmMod, F,
        [this](const std::string &Msg) { Interpreter->recordError(Msg); });
  }

  Prog = std::make_unique<Program>(F);
  if (TheVm)
    Prog->setVmIcHitCounter([V = TheVm.get()] { return V->icHits(); });
  Lowering L(*this, *Diags);
  if (!L.run()) {
    if (Interpreter->hasError())
      Diags->error(SourceLoc::invalid(),
                   "lowering failed: " + Interpreter->error());
    return false;
  }
  // Lowering created the VM's native slots; fill them now.
  if (TheVm)
    for (auto &[Name, Fn] : VmNatives)
      TheVm->registerNative(Name, Fn);
  VmNatives.clear();
  // The optimization pipeline ran during lowering (defs and wrappers);
  // publish its final per-module counters for SolveStats.
  if (VmMod)
    Prog->setVmPipelineCounters({VmMod->Pipeline.InlinedCalls,
                                 VmMod->Pipeline.SuperwordHits,
                                 VmMod->Pipeline.RemovedInsns});
  return true;
}

std::string FlixCompiler::diagnostics() const { return Diags->render(); }

bool FlixCompiler::hasErrors() const { return Diags->hasErrors(); }

Program &FlixCompiler::program() {
  assert(Prog && "program() before successful compile()");
  return *Prog;
}

Interp &FlixCompiler::interp() {
  assert(Interpreter && "interp() before compile()");
  return *Interpreter;
}

std::optional<PredId> FlixCompiler::predicate(std::string_view Name) const {
  auto It = PredIds.find(Name);
  if (It == PredIds.end())
    return std::nullopt;
  return It->second;
}

bool FlixCompiler::addFact(std::string_view PredName,
                           std::span<const Value> Tuple) {
  auto Id = predicate(PredName);
  if (!Id || !Prog->predicate(*Id).isRelational() ||
      Prog->predicate(*Id).Arity != Tuple.size())
    return false;
  Prog->addFact(*Id, Tuple);
  return true;
}

bool FlixCompiler::addLatFact(std::string_view PredName,
                              std::span<const Value> Key, Value LatVal) {
  auto Id = predicate(PredName);
  if (!Id || Prog->predicate(*Id).isRelational() ||
      Prog->predicate(*Id).Arity != Key.size() + 1)
    return false;
  Prog->addLatFact(*Id, Key, LatVal);
  return true;
}
