//===- lang/Compiler.h - FLIX compiler driver ------------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FLIX compiler: lexes, parses, type checks and lowers FLIX source to
/// a fixpoint Program ready for the Solver. Mirrors the paper's toolchain
/// ("a parser, a type checker, an interpreter, an indexed database, and a
/// semi-naive fixed-point solver", §4).
///
/// Typical use:
/// \code
///   ValueFactory F;
///   FlixCompiler C(F);
///   if (!C.compile(Source, "analysis.flix")) {
///     errs() << C.diagnostics();
///     return;
///   }
///   Solver S(C.program());
///   S.solve();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_LANG_COMPILER_H
#define FLIX_LANG_COMPILER_H

#include "fixpoint/Program.h"
#include "lang/Interp.h"
#include "lang/Sema.h"
#include "vm/Vm.h"
#include "vm/VmCompiler.h"

#include <memory>

namespace flix {

/// Owns everything a compiled FLIX program needs: source buffers,
/// diagnostics, the AST, the interpreter, interpreted lattices and the
/// lowered fixpoint Program. Keep the compiler alive while solving.
class FlixCompiler {
public:
  explicit FlixCompiler(ValueFactory &F);
  ~FlixCompiler();
  FlixCompiler(const FlixCompiler &) = delete;
  FlixCompiler &operator=(const FlixCompiler &) = delete;

  /// Registers a native implementation for an `ext def`. May be called
  /// before or after compile(), but before solving. Natives reach both
  /// execution engines (interpreter and bytecode VM).
  void registerNative(const std::string &Name, NativeFn Fn);

  /// Enables or disables the bytecode VM (`flixc --no-vm`). Must be
  /// called before compile(); disabled, every function runs on the
  /// interpreter and no VM is constructed.
  void setUseVm(bool Enabled) { UseVm = Enabled; }

  /// Selects the VM optimization pipeline level (`flixc
  /// --vm-opt-level`): 0 = off, 1 = local passes, 2 = inlining plus
  /// local passes (the default). Must be called before compile(); has
  /// no effect when the VM is disabled.
  void setVmOptLevel(int Level) { VmOptLevel = Level; }

  /// The bytecode VM, or nullptr when disabled or before compile().
  vm::Vm *vm() { return TheVm.get(); }

  /// VM function index for def \p Name, if the VM is enabled and the
  /// function compiled (see vm::VmCompiler::functionIndex). Used by the
  /// differential tests to call the same def on both engines.
  std::optional<uint32_t> vmFunctionIndex(const std::string &Name) const {
    return VmComp ? VmComp->functionIndex(Name) : std::nullopt;
  }

  /// Compiles \p Source. Returns false (and records diagnostics) on any
  /// lex/parse/type/lowering error.
  bool compile(std::string Source, std::string BufferName = "<input>");

  /// Renders all diagnostics accumulated so far.
  std::string diagnostics() const;
  bool hasErrors() const;

  /// The lowered program; valid after a successful compile().
  Program &program();

  /// The expression interpreter (for direct function calls in tests and
  /// for checking runtime errors after solving).
  Interp &interp();

  /// Looks up a predicate id by source name.
  std::optional<PredId> predicate(std::string_view Name) const;

  /// Injects facts programmatically after compilation (used by the
  /// benchmark harness to feed generated workloads). Returns false if the
  /// predicate does not exist or arity mismatches.
  bool addFact(std::string_view PredName, std::span<const Value> Tuple);
  bool addLatFact(std::string_view PredName, std::span<const Value> Key,
                  Value LatVal);

  /// The checked module (symbol tables), for tooling.
  const CheckedModule &checkedModule() const { return CM; }

private:
  class Lowering;

  ValueFactory &F;
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<ast::Module> Mod;
  CheckedModule CM;
  std::unique_ptr<Interp> Interpreter;
  std::vector<std::pair<std::string, NativeFn>> PendingNatives;
  /// Natives awaiting VM installation: slots exist only after lowering
  /// compiles the module, so pre-compile registrations park here.
  std::vector<std::pair<std::string, NativeFn>> VmNatives;
  bool UseVm = true;
  int VmOptLevel = 2;
  std::unique_ptr<vm::VmModule> VmMod;
  std::unique_ptr<vm::VmCompiler> VmComp;
  std::unique_ptr<vm::Vm> TheVm;
  std::vector<std::unique_ptr<Lattice>> Lattices;
  std::unique_ptr<Program> Prog;
  std::map<std::string, PredId, std::less<>> PredIds;
  bool Compiled = false;
};

} // namespace flix

#endif // FLIX_LANG_COMPILER_H
