//===- lang/Interp.cpp - FLIX expression interpreter ------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "lang/Interp.h"

#include "support/SmallVector.h"

using namespace flix;
using namespace flix::ast;

thread_local unsigned Interp::CallDepth = 0;

Value Interp::fail(SourceLoc Loc, const std::string &Msg) {
  (void)Loc;
  std::lock_guard<std::mutex> Lock(ErrMu);
  if (ErrorMsg.empty())
    ErrorMsg = Msg;
  return F.unit();
}

Value Interp::makeTag(const std::string &EnumName,
                      const std::string &CaseName, Value Payload) {
  return F.tag(EnumName + "." + CaseName, Payload);
}

Value Interp::call(const std::string &Fn, std::span<const Value> Args) {
  auto It = CM.Defs.find(Fn);
  if (It == CM.Defs.end())
    return fail(SourceLoc::invalid(), "call to unknown function '" + Fn +
                                          "'");
  const DefInfo &D = It->second;
  if (Args.size() != D.ParamTypes.size())
    return fail(D.Decl->Loc, "arity mismatch calling '" + Fn + "'");

  if (D.Decl->IsExt) {
    auto NIt = Natives.find(Fn);
    if (NIt == Natives.end())
      return fail(D.Decl->Loc,
                  "no native registered for 'ext def " + Fn + "'");
    return NIt->second(F, Args);
  }

  if (CallDepth >= MaxCallDepth) {
    // Name the function and, when a SourceManager is attached, its
    // definition site — the VM renders the identical diagnostic.
    std::string Where = "'" + Fn + "'";
    if (SM && D.Decl->Loc.isValid()) {
      LineColumn LC = SM->lineColumn(D.Decl->Loc);
      Where += " at " + SM->bufferName(D.Decl->Loc.Buffer) + ":" +
               std::to_string(LC.Line) + ":" + std::to_string(LC.Column);
    }
    return fail(D.Decl->Loc, "call depth exceeded in " + Where +
                                 " (runaway recursion?)");
  }
  ++CallDepth;
  std::map<std::string, Value> Env;
  for (size_t I = 0; I < Args.size(); ++I)
    Env[D.Decl->Params[I].Name] = Args[I];
  Value Out = eval(*D.Decl->Body, Env);
  --CallDepth;
  return Out;
}

bool Interp::matchPattern(const Pattern &P, Value V,
                          std::map<std::string, Value> &Env) {
  switch (P.K) {
  case Pattern::Kind::Wildcard:
    return true;
  case Pattern::Kind::Var:
    Env[P.Name] = V;
    return true;
  case Pattern::Kind::IntLit:
    return V.isInt() && V.asInt() == P.IntVal;
  case Pattern::Kind::BoolLit:
    return V.isBool() && V.asBool() == P.BoolVal;
  case Pattern::Kind::StrLit:
    return V.isStr() && F.strings().text(V.asStr()) == P.StrVal;
  case Pattern::Kind::UnitLit:
    return V.isUnit();
  case Pattern::Kind::Tag: {
    if (!V.isTag())
      return false;
    if (F.strings().text(F.tagName(V)) != P.EnumName + "." + P.CaseName)
      return false;
    if (P.Elems.empty())
      return true;
    return matchPattern(P.Elems[0], F.tagPayload(V), Env);
  }
  case Pattern::Kind::Tuple: {
    if (!V.isTuple())
      return false;
    std::span<const Value> Elems = F.tupleElems(V);
    if (Elems.size() != P.Elems.size())
      return false;
    for (size_t I = 0; I < P.Elems.size(); ++I)
      if (!matchPattern(P.Elems[I], Elems[I], Env))
        return false;
    return true;
  }
  }
  return false;
}

Value Interp::eval(const Expr &E, const std::map<std::string, Value> &Env) {
  switch (E.K) {
  case Expr::Kind::IntLit:
    return F.integer(E.IntVal);
  case Expr::Kind::BoolLit:
    return F.boolean(E.BoolVal);
  case Expr::Kind::StrLit:
    return F.string(E.StrVal);
  case Expr::Kind::UnitLit:
    return F.unit();
  case Expr::Kind::Var: {
    auto It = Env.find(E.Name);
    if (It == Env.end())
      return fail(E.Loc, "unbound variable '" + E.Name + "' at runtime");
    return It->second;
  }
  case Expr::Kind::Tag: {
    Value Payload = E.Args.empty() ? F.unit() : eval(*E.Args[0], Env);
    return makeTag(E.EnumName, E.CaseName, Payload);
  }
  case Expr::Kind::Tuple: {
    SmallVector<Value, 4> Elems;
    for (const ExprPtr &A : E.Args)
      Elems.push_back(eval(*A, Env));
    return F.tuple(std::span<const Value>(Elems.data(), Elems.size()));
  }
  case Expr::Kind::SetLit: {
    std::vector<Value> Elems;
    for (const ExprPtr &A : E.Args)
      Elems.push_back(eval(*A, Env));
    return F.set(std::move(Elems));
  }
  case Expr::Kind::Call: {
    SmallVector<Value, 4> Args;
    for (const ExprPtr &A : E.Args)
      Args.push_back(eval(*A, Env));
    return call(E.Name, std::span<const Value>(Args.data(), Args.size()));
  }
  case Expr::Kind::If: {
    Value C = eval(*E.Args[0], Env);
    if (!C.isBool())
      return fail(E.Loc, "if condition did not evaluate to Bool");
    if (E.Args.size() < 3)
      return fail(E.Loc, "malformed if expression");
    return eval(C.asBool() ? *E.Args[1] : *E.Args[2], Env);
  }
  case Expr::Kind::Match: {
    Value Scrut = eval(*E.Args[0], Env);
    for (const MatchCase &C : E.Cases) {
      std::map<std::string, Value> CaseEnv = Env;
      if (matchPattern(C.Pat, Scrut, CaseEnv))
        return eval(*C.Body, CaseEnv);
    }
    return fail(E.Loc, "no case matched value " + F.toString(Scrut));
  }
  case Expr::Kind::Let: {
    Value Init = eval(*E.Args[0], Env);
    std::map<std::string, Value> Inner = Env;
    Inner[E.Name] = Init;
    return eval(*E.Args[1], Inner);
  }
  case Expr::Kind::Binary: {
    Value L = eval(*E.Args[0], Env);
    // Short-circuit && and ||.
    if (E.BOp == BinOp::And) {
      if (!L.isBool())
        return fail(E.Loc, "'&&' on non-Bool value");
      if (!L.asBool())
        return F.boolean(false);
      return eval(*E.Args[1], Env);
    }
    if (E.BOp == BinOp::Or) {
      if (!L.isBool())
        return fail(E.Loc, "'||' on non-Bool value");
      if (L.asBool())
        return F.boolean(true);
      return eval(*E.Args[1], Env);
    }
    Value R = eval(*E.Args[1], Env);
    switch (E.BOp) {
    case BinOp::Eq:
      return F.boolean(L == R);
    case BinOp::Ne:
      return F.boolean(L != R);
    case BinOp::Add:
    case BinOp::Sub:
    case BinOp::Mul:
    case BinOp::Div:
    case BinOp::Rem:
    case BinOp::Lt:
    case BinOp::Le:
    case BinOp::Gt:
    case BinOp::Ge: {
      if (!L.isInt() || !R.isInt())
        return fail(E.Loc, "arithmetic on non-Int values");
      int64_t A = L.asInt(), B = R.asInt();
      switch (E.BOp) {
      case BinOp::Add:
        return F.integer(A + B);
      case BinOp::Sub:
        return F.integer(A - B);
      case BinOp::Mul:
        return F.integer(A * B);
      case BinOp::Div:
        if (B == 0)
          return fail(E.Loc, "division by zero");
        return F.integer(A / B);
      case BinOp::Rem:
        if (B == 0)
          return fail(E.Loc, "remainder by zero");
        return F.integer(A % B);
      case BinOp::Lt:
        return F.boolean(A < B);
      case BinOp::Le:
        return F.boolean(A <= B);
      case BinOp::Gt:
        return F.boolean(A > B);
      case BinOp::Ge:
        return F.boolean(A >= B);
      default:
        break;
      }
      return F.unit();
    }
    case BinOp::And:
    case BinOp::Or:
      break; // handled above
    }
    return F.unit();
  }
  case Expr::Kind::Unary: {
    Value V = eval(*E.Args[0], Env);
    if (E.UOp == UnOp::Not) {
      if (!V.isBool())
        return fail(E.Loc, "'!' on non-Bool value");
      return F.boolean(!V.asBool());
    }
    if (!V.isInt())
      return fail(E.Loc, "unary '-' on non-Int value");
    return F.integer(-V.asInt());
  }
  }
  return F.unit();
}
