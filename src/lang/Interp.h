//===- lang/Interp.h - FLIX expression interpreter -------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A call-by-value AST interpreter for the pure functional sub-language of
/// FLIX, mirroring the paper's implementation ("functions ... are
/// evaluated using an AST-based interpreter", §4.5). External (`ext def`)
/// functions dispatch to natives registered from C++, the analog of the
/// paper's JVM interop (§2.3).
///
/// The interpreter does not throw: runtime faults (no matching case,
/// division by zero, missing native, call-depth overflow) record an error
/// message and return Unit; the compiler surfaces the first error after
/// solving.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_LANG_INTERP_H
#define FLIX_LANG_INTERP_H

#include "lang/Sema.h"
#include "runtime/Value.h"

#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>

namespace flix {

/// A native (C++) implementation for an `ext def`.
using NativeFn = std::function<Value(ValueFactory &, std::span<const Value>)>;

class Interp {
public:
  Interp(const CheckedModule &CM, ValueFactory &F) : CM(CM), F(F) {}

  /// Registers the native implementation of `ext def Name`.
  void registerNative(const std::string &Name, NativeFn Fn) {
    Natives[Name] = std::move(Fn);
  }

  /// Calls a top-level function by name.
  Value call(const std::string &Fn, std::span<const Value> Args);

  /// Makes call() safe to invoke from multiple threads by serializing
  /// every top-level call behind one recursive mutex (recursive because
  /// natives may call back into the interpreter). This is the single
  /// chokepoint through which all lattice operations and external
  /// functions of a compiled FLIX program flow, so locking here makes the
  /// whole compiled program safe for the parallel solver. One-way.
  void enableThreadSafe() { ThreadSafe = true; }

  /// Evaluates an expression under the given variable bindings.
  Value eval(const ast::Expr &E, const std::map<std::string, Value> &Env);

  /// Builds the runtime tag value for "Enum.Case" with a payload.
  Value makeTag(const std::string &EnumName, const std::string &CaseName,
                Value Payload);

  bool hasError() const { return !ErrorMsg.empty(); }
  const std::string &error() const { return ErrorMsg; }
  void clearError() { ErrorMsg.clear(); }

private:
  Value fail(SourceLoc Loc, const std::string &Msg);
  bool matchPattern(const ast::Pattern &P, Value V,
                    std::map<std::string, Value> &Env);

  const CheckedModule &CM;
  ValueFactory &F;
  std::map<std::string, NativeFn> Natives;
  std::string ErrorMsg;
  unsigned CallDepth = 0;
  static constexpr unsigned MaxCallDepth = 512;
  bool ThreadSafe = false;
  std::recursive_mutex CallMu;
};

} // namespace flix

#endif // FLIX_LANG_INTERP_H
