//===- lang/Interp.h - FLIX expression interpreter -------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A call-by-value AST interpreter for the pure functional sub-language of
/// FLIX, mirroring the paper's implementation ("functions ... are
/// evaluated using an AST-based interpreter", §4.5). External (`ext def`)
/// functions dispatch to natives registered from C++, the analog of the
/// paper's JVM interop (§2.3).
///
/// The interpreter does not throw: runtime faults (no matching case,
/// division by zero, missing native, call-depth overflow) record an error
/// message and return Unit; the compiler surfaces the first error after
/// solving.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_LANG_INTERP_H
#define FLIX_LANG_INTERP_H

#include "lang/Sema.h"
#include "runtime/Value.h"

#include <functional>
#include <map>
#include <mutex>
#include <span>
#include <string>

namespace flix {

/// A native (C++) implementation for an `ext def`.
using NativeFn = std::function<Value(ValueFactory &, std::span<const Value>)>;

class Interp {
public:
  Interp(const CheckedModule &CM, ValueFactory &F) : CM(CM), F(F) {}

  /// Registers the native implementation of `ext def Name`.
  void registerNative(const std::string &Name, NativeFn Fn) {
    Natives[Name] = std::move(Fn);
  }

  /// Attaches the source manager used to render source spans in runtime
  /// diagnostics (currently the call-depth overflow). Optional; without
  /// it diagnostics carry the function name only.
  void setSourceManager(const SourceManager *M) { SM = M; }

  /// Calls a top-level function by name. Thread-safe by construction
  /// once ValueFactory::enableConcurrentInterning() is on: per-call
  /// environments are stack-local, the call-depth guard is thread-local,
  /// the Defs/Natives tables are read-only after setup, and the error
  /// slot is mutex-guarded. The parallel solver's workers may therefore
  /// call into a shared Interp concurrently with no outer lock.
  Value call(const std::string &Fn, std::span<const Value> Args);

  /// Historical no-op, kept for source compatibility: call() used to need
  /// a global recursive mutex, which this switched on. The interpreter is
  /// now intrinsically thread-safe (see call()), so there is nothing to
  /// enable.
  void enableThreadSafe() {}

  /// Evaluates an expression under the given variable bindings.
  Value eval(const ast::Expr &E, const std::map<std::string, Value> &Env);

  /// Builds the runtime tag value for "Enum.Case" with a payload.
  Value makeTag(const std::string &EnumName, const std::string &CaseName,
                Value Payload);

  /// Records a runtime fault from outside the interpreter (the bytecode
  /// VM reports through here so both engines share one error slot and
  /// the compiler's first-fault-wins surfacing). Thread-safe.
  void recordError(const std::string &Msg) {
    std::lock_guard<std::mutex> Lock(ErrMu);
    if (ErrorMsg.empty())
      ErrorMsg = Msg;
  }

  bool hasError() const {
    std::lock_guard<std::mutex> Lock(ErrMu);
    return !ErrorMsg.empty();
  }
  /// First recorded fault. Call after solving (single-threaded); the
  /// reference is not stable against a concurrent fail().
  const std::string &error() const { return ErrorMsg; }
  void clearError() {
    std::lock_guard<std::mutex> Lock(ErrMu);
    ErrorMsg.clear();
  }

private:
  Value fail(SourceLoc Loc, const std::string &Msg);
  bool matchPattern(const ast::Pattern &P, Value V,
                    std::map<std::string, Value> &Env);

  const CheckedModule &CM;
  ValueFactory &F;
  const SourceManager *SM = nullptr;
  std::map<std::string, NativeFn> Natives;
  mutable std::mutex ErrMu; ///< guards ErrorMsg (first fault wins)
  std::string ErrorMsg;
  /// Runaway-recursion guard. Thread-local (shared across instances on a
  /// thread) so concurrent workers track their own stacks.
  static thread_local unsigned CallDepth;
  static constexpr unsigned MaxCallDepth = 512;
};

} // namespace flix

#endif // FLIX_LANG_INTERP_H
