//===- lang/Lexer.cpp - FLIX lexer -----------------------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "lang/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace flix;

const char *flix::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::UpperIdent:
    return "capitalized identifier";
  case TokenKind::IntLit:
    return "integer literal";
  case TokenKind::StrLit:
    return "string literal";
  case TokenKind::KwEnum:
    return "'enum'";
  case TokenKind::KwCase:
    return "'case'";
  case TokenKind::KwDef:
    return "'def'";
  case TokenKind::KwExt:
    return "'ext'";
  case TokenKind::KwMatch:
    return "'match'";
  case TokenKind::KwWith:
    return "'with'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwRel:
    return "'rel'";
  case TokenKind::KwLat:
    return "'lat'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwIndex:
    return "'index'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::ColonMinus:
    return "':-'";
  case TokenKind::Underscore:
    return "'_'";
  case TokenKind::Eq:
    return "'='";
  case TokenKind::FatArrow:
    return "'=>'";
  case TokenKind::LeftArrow:
    return "'<-'";
  case TokenKind::HashBrace:
    return "'#{'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  }
  return "token";
}

Lexer::Lexer(const SourceManager &SM, uint32_t BufferId,
             DiagnosticEngine &Diags)
    : SM(SM), BufferId(BufferId), Diags(Diags),
      Text(SM.bufferText(BufferId)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
}

char Lexer::advance() { return Text[Pos++]; }

bool Lexer::match(char C) {
  if (atEnd() || Text[Pos] != C)
    return false;
  ++Pos;
  return true;
}

Token Lexer::make(TokenKind K, uint32_t Begin) {
  Token T;
  T.Kind = K;
  T.Loc = loc(Begin);
  T.Text = Text.substr(Begin, Pos - Begin);
  return T;
}

void Lexer::skipTrivia() {
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (!atEnd() && peek() != '\n')
        ++Pos;
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      uint32_t Begin = Pos;
      Pos += 2;
      unsigned Depth = 1;
      while (!atEnd() && Depth > 0) {
        if (peek() == '/' && peek(1) == '*') {
          Depth++;
          Pos += 2;
        } else if (peek() == '*' && peek(1) == '/') {
          Depth--;
          Pos += 2;
        } else {
          ++Pos;
        }
      }
      if (Depth > 0)
        Diags.error(loc(Begin), "unterminated block comment");
      continue;
    }
    break;
  }
}

Token Lexer::lexNumber(uint32_t Begin) {
  while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
    ++Pos;
  Token T = make(TokenKind::IntLit, Begin);
  int64_t V = 0;
  bool Overflow = false;
  for (char C : T.Text) {
    if (V > (INT64_MAX - (C - '0')) / 10) {
      Overflow = true;
      break;
    }
    V = V * 10 + (C - '0');
  }
  if (Overflow) {
    Diags.error(T.Loc, "integer literal too large");
    T.Kind = TokenKind::Error;
  }
  T.IntValue = V;
  return T;
}

Token Lexer::lexString(uint32_t Begin) {
  std::string Out;
  while (!atEnd() && peek() != '"') {
    char C = advance();
    if (C == '\n') {
      Diags.error(loc(Begin), "unterminated string literal");
      Token T = make(TokenKind::Error, Begin);
      return T;
    }
    if (C == '\\') {
      if (atEnd())
        break;
      char E = advance();
      switch (E) {
      case 'n':
        Out.push_back('\n');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '"':
        Out.push_back('"');
        break;
      default:
        Diags.error(loc(Pos - 1), "unknown escape sequence");
        break;
      }
      continue;
    }
    Out.push_back(C);
  }
  if (atEnd()) {
    Diags.error(loc(Begin), "unterminated string literal");
    return make(TokenKind::Error, Begin);
  }
  ++Pos; // consume closing quote
  Token T = make(TokenKind::StrLit, Begin);
  T.StrValue = std::move(Out);
  return T;
}

Token Lexer::lexIdent(uint32_t Begin) {
  while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_'))
    ++Pos;
  Token T = make(TokenKind::Ident, Begin);
  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"enum", TokenKind::KwEnum},   {"case", TokenKind::KwCase},
      {"def", TokenKind::KwDef},     {"ext", TokenKind::KwExt},
      {"match", TokenKind::KwMatch}, {"with", TokenKind::KwWith},
      {"let", TokenKind::KwLet},     {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},   {"rel", TokenKind::KwRel},
      {"lat", TokenKind::KwLat},     {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse}, {"index", TokenKind::KwIndex},
  };
  auto It = Keywords.find(T.Text);
  if (It != Keywords.end()) {
    T.Kind = It->second;
    return T;
  }
  if (T.Text == "_") {
    T.Kind = TokenKind::Underscore;
    return T;
  }
  T.Kind = std::isupper(static_cast<unsigned char>(T.Text[0]))
               ? TokenKind::UpperIdent
               : TokenKind::Ident;
  return T;
}

Token Lexer::next() {
  skipTrivia();
  uint32_t Begin = Pos;
  if (atEnd())
    return make(TokenKind::Eof, Begin);

  char C = advance();
  switch (C) {
  case '(':
    return make(TokenKind::LParen, Begin);
  case ')':
    return make(TokenKind::RParen, Begin);
  case '{':
    return make(TokenKind::LBrace, Begin);
  case '}':
    return make(TokenKind::RBrace, Begin);
  case '[':
    return make(TokenKind::LBracket, Begin);
  case ']':
    return make(TokenKind::RBracket, Begin);
  case ',':
    return make(TokenKind::Comma, Begin);
  case ';':
    return make(TokenKind::Semi, Begin);
  case '.':
    return make(TokenKind::Dot, Begin);
  case ':':
    if (match('-'))
      return make(TokenKind::ColonMinus, Begin);
    return make(TokenKind::Colon, Begin);
  case '=':
    if (match('='))
      return make(TokenKind::EqEq, Begin);
    if (match('>'))
      return make(TokenKind::FatArrow, Begin);
    return make(TokenKind::Eq, Begin);
  case '<':
    if (match('-'))
      return make(TokenKind::LeftArrow, Begin);
    if (match('='))
      return make(TokenKind::Le, Begin);
    return make(TokenKind::Lt, Begin);
  case '>':
    if (match('='))
      return make(TokenKind::Ge, Begin);
    return make(TokenKind::Gt, Begin);
  case '!':
    if (match('='))
      return make(TokenKind::NotEq, Begin);
    return make(TokenKind::Bang, Begin);
  case '+':
    return make(TokenKind::Plus, Begin);
  case '-':
    return make(TokenKind::Minus, Begin);
  case '*':
    return make(TokenKind::Star, Begin);
  case '/':
    return make(TokenKind::Slash, Begin);
  case '%':
    return make(TokenKind::Percent, Begin);
  case '&':
    if (match('&'))
      return make(TokenKind::AmpAmp, Begin);
    break;
  case '|':
    if (match('|'))
      return make(TokenKind::PipePipe, Begin);
    break;
  case '#':
    if (match('{'))
      return make(TokenKind::HashBrace, Begin);
    break;
  case '"':
    return lexString(Begin);
  default:
    if (std::isdigit(static_cast<unsigned char>(C)))
      return lexNumber(Begin);
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
      return lexIdent(Begin);
    break;
  }
  Diags.error(loc(Begin), std::string("unexpected character '") + C + "'");
  return make(TokenKind::Error, Begin);
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Out;
  for (;;) {
    Token T = next();
    bool Done = T.is(TokenKind::Eof);
    Out.push_back(std::move(T));
    if (Done)
      return Out;
  }
}
