//===- lang/Lexer.h - FLIX lexer -------------------------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for FLIX source. Identifier case is significant, as
/// in the real Flix language: uppercase-initial identifiers name
/// predicates, enums and tags; lowercase-initial identifiers name
/// variables, attributes and functions.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_LANG_LEXER_H
#define FLIX_LANG_LEXER_H

#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <vector>

namespace flix {

/// Lexes one buffer into a token vector (ending with an Eof token).
class Lexer {
public:
  Lexer(const SourceManager &SM, uint32_t BufferId, DiagnosticEngine &Diags);

  /// Lexes the whole buffer. Errors are reported to the DiagnosticEngine;
  /// the token stream always ends with Eof.
  std::vector<Token> lexAll();

private:
  Token next();
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char C);
  bool atEnd() const { return Pos >= Text.size(); }
  SourceLoc loc(uint32_t Offset) const { return SourceLoc{BufferId, Offset}; }
  Token make(TokenKind K, uint32_t Begin);
  Token lexNumber(uint32_t Begin);
  Token lexString(uint32_t Begin);
  Token lexIdent(uint32_t Begin);
  void skipTrivia();

  const SourceManager &SM;
  uint32_t BufferId;
  DiagnosticEngine &Diags;
  std::string_view Text;
  uint32_t Pos = 0;
};

} // namespace flix

#endif // FLIX_LANG_LEXER_H
