//===- lang/Parser.cpp - FLIX parser ---------------------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"

using namespace flix;
using namespace flix::ast;

const Token &Parser::peek(unsigned Ahead) const {
  size_t I = std::min(Pos + Ahead, Tokens.size() - 1);
  return Tokens[I];
}

Token Parser::advance() {
  Token T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  error(std::string("expected ") + tokenKindName(K) + " " + Context +
        ", found " + tokenKindName(cur().Kind));
  return false;
}

void Parser::error(const std::string &Msg) { Diags.error(cur().Loc, Msg); }

/// Skips to the start of the next plausible declaration.
void Parser::syncToDecl() {
  while (!check(TokenKind::Eof)) {
    switch (cur().Kind) {
    case TokenKind::KwEnum:
    case TokenKind::KwDef:
    case TokenKind::KwExt:
    case TokenKind::KwLet:
    case TokenKind::KwRel:
    case TokenKind::KwLat:
    case TokenKind::KwIndex:
      return;
    case TokenKind::Dot:
    case TokenKind::Semi:
      advance();
      return;
    default:
      advance();
    }
  }
}

Module Parser::parseModule() {
  Module M;
  while (!check(TokenKind::Eof)) {
    size_t Before = Pos;
    switch (cur().Kind) {
    case TokenKind::KwEnum:
      parseEnum(M);
      break;
    case TokenKind::KwDef:
      parseDef(M, /*IsExt=*/false);
      break;
    case TokenKind::KwExt:
      advance();
      if (check(TokenKind::KwDef)) {
        parseDef(M, /*IsExt=*/true);
      } else {
        error("expected 'def' after 'ext'");
        syncToDecl();
      }
      break;
    case TokenKind::KwLet:
      parseLetLattice(M);
      break;
    case TokenKind::KwRel:
      parsePred(M, /*IsLat=*/false);
      break;
    case TokenKind::KwLat:
      parsePred(M, /*IsLat=*/true);
      break;
    case TokenKind::KwIndex:
      parseIndexHint(M);
      break;
    case TokenKind::UpperIdent:
      parseRuleOrFact(M);
      break;
    default:
      error(std::string("expected a declaration, found ") +
            tokenKindName(cur().Kind));
      syncToDecl();
      break;
    }
    if (Pos == Before) {
      // Defensive: guarantee forward progress on malformed input.
      advance();
    }
  }
  return M;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

void Parser::parseEnum(Module &M) {
  EnumDecl E;
  E.Loc = cur().Loc;
  advance(); // enum
  if (!check(TokenKind::UpperIdent)) {
    error("expected enum name (capitalized)");
    syncToDecl();
    return;
  }
  E.Name = std::string(advance().Text);
  if (!expect(TokenKind::LBrace, "to open enum body")) {
    syncToDecl();
    return;
  }
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    if (!check(TokenKind::KwCase)) {
      error("expected 'case' in enum body");
      syncToDecl();
      return;
    }
    EnumCaseDecl C;
    C.Loc = advance().Loc; // case
    if (!check(TokenKind::UpperIdent)) {
      error("expected case name (capitalized)");
      syncToDecl();
      return;
    }
    C.Name = std::string(advance().Text);
    if (accept(TokenKind::LParen)) {
      std::vector<TypeExpr> Payloads;
      Payloads.push_back(parseType());
      while (accept(TokenKind::Comma))
        Payloads.push_back(parseType());
      expect(TokenKind::RParen, "to close case payload");
      if (Payloads.size() == 1) {
        C.Payload = std::move(Payloads[0]);
      } else {
        TypeExpr Tup;
        Tup.K = TypeExpr::Kind::Tuple;
        Tup.Elems = std::move(Payloads);
        Tup.Loc = C.Loc;
        C.Payload = std::move(Tup);
      }
    }
    E.Cases.push_back(std::move(C));
    accept(TokenKind::Comma);
  }
  expect(TokenKind::RBrace, "to close enum body");
  M.Enums.push_back(std::move(E));
}

void Parser::parseDef(Module &M, bool IsExt) {
  DefDecl D;
  D.IsExt = IsExt;
  D.Loc = cur().Loc;
  advance(); // def
  if (!check(TokenKind::Ident)) {
    error("expected function name (lowercase)");
    syncToDecl();
    return;
  }
  D.Name = std::string(advance().Text);
  if (!expect(TokenKind::LParen, "to open parameter list")) {
    syncToDecl();
    return;
  }
  if (!check(TokenKind::RParen)) {
    do {
      Param Pm;
      Pm.Loc = cur().Loc;
      if (!check(TokenKind::Ident)) {
        error("expected parameter name");
        syncToDecl();
        return;
      }
      Pm.Name = std::string(advance().Text);
      if (!expect(TokenKind::Colon, "after parameter name")) {
        syncToDecl();
        return;
      }
      Pm.Type = parseType();
      D.Params.push_back(std::move(Pm));
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close parameter list");
  if (!expect(TokenKind::Colon, "before return type")) {
    syncToDecl();
    return;
  }
  D.RetType = parseType();
  if (IsExt) {
    accept(TokenKind::Semi);
    M.Defs.push_back(std::move(D));
    return;
  }
  if (!expect(TokenKind::Eq, "before function body")) {
    syncToDecl();
    return;
  }
  D.Body = parseExpr();
  accept(TokenKind::Semi);
  M.Defs.push_back(std::move(D));
}

void Parser::parseLetLattice(Module &M) {
  LatticeBindDecl L;
  L.Loc = cur().Loc;
  advance(); // let
  if (!check(TokenKind::UpperIdent)) {
    error("expected a type name after 'let' (lattice binding)");
    syncToDecl();
    return;
  }
  L.TypeName = std::string(advance().Text);
  if (!expect(TokenKind::Lt, "in lattice binding (Name<>)") ||
      !expect(TokenKind::Gt, "in lattice binding (Name<>)") ||
      !expect(TokenKind::Eq, "in lattice binding") ||
      !expect(TokenKind::LParen, "to open the lattice 5-tuple")) {
    syncToDecl();
    return;
  }
  L.Bot = parseExpr();
  expect(TokenKind::Comma, "after bottom element");
  L.Top = parseExpr();
  expect(TokenKind::Comma, "after top element");
  auto parseFnName = [&](std::string &Out, const char *What) {
    if (check(TokenKind::Ident)) {
      Out = std::string(advance().Text);
      return true;
    }
    error(std::string("expected ") + What + " function name");
    return false;
  };
  if (!parseFnName(L.LeqFn, "partial order") ||
      !expect(TokenKind::Comma, "after partial order") ||
      !parseFnName(L.LubFn, "least upper bound") ||
      !expect(TokenKind::Comma, "after least upper bound") ||
      !parseFnName(L.GlbFn, "greatest lower bound")) {
    syncToDecl();
    return;
  }
  expect(TokenKind::RParen, "to close the lattice 5-tuple");
  accept(TokenKind::Semi);
  M.LatticeBinds.push_back(std::move(L));
}

void Parser::parsePred(Module &M, bool IsLat) {
  PredDecl P;
  P.IsLat = IsLat;
  P.Loc = cur().Loc;
  advance(); // rel / lat
  if (!check(TokenKind::UpperIdent)) {
    error("expected predicate name (capitalized)");
    syncToDecl();
    return;
  }
  P.Name = std::string(advance().Text);
  if (!expect(TokenKind::LParen, "to open attribute list")) {
    syncToDecl();
    return;
  }
  do {
    Attribute A;
    A.Loc = cur().Loc;
    if (check(TokenKind::Ident) && peek(1).is(TokenKind::Colon)) {
      A.Name = std::string(advance().Text);
      advance(); // :
      A.Type = parseType();
    } else {
      // `Type<>` shorthand for an unnamed lattice attribute (Figure 2,
      // line 41: lat IntVar(var: Str, Parity<>)).
      A.Type = parseType();
    }
    P.Attrs.push_back(std::move(A));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::RParen, "to close attribute list");
  accept(TokenKind::Semi);
  M.Preds.push_back(std::move(P));
}

void Parser::parseIndexHint(Module &M) {
  IndexHintDecl D;
  D.Loc = cur().Loc;
  advance(); // index
  if (!check(TokenKind::UpperIdent)) {
    error("expected predicate name after 'index'");
    syncToDecl();
    return;
  }
  D.Pred = std::string(advance().Text);
  if (!expect(TokenKind::LParen, "to open index attribute list")) {
    syncToDecl();
    return;
  }
  do {
    if (!check(TokenKind::Ident)) {
      error("expected attribute name in index hint");
      syncToDecl();
      return;
    }
    D.Attrs.push_back(std::string(advance().Text));
  } while (accept(TokenKind::Comma));
  expect(TokenKind::RParen, "to close index attribute list");
  accept(TokenKind::Semi);
  M.IndexHints.push_back(std::move(D));
}

AtomAST Parser::parseAtom() {
  AtomAST A;
  A.Loc = cur().Loc;
  A.Pred = std::string(advance().Text); // UpperIdent, checked by caller
  if (!expect(TokenKind::LParen, "to open atom arguments"))
    return A;
  if (!check(TokenKind::RParen)) {
    do {
      A.Terms.push_back(parseExpr());
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close atom arguments");
  return A;
}

void Parser::parseRuleOrFact(Module &M) {
  RuleAST R;
  R.Loc = cur().Loc;
  R.Head = parseAtom();
  if (accept(TokenKind::ColonMinus)) {
    do {
      if (accept(TokenKind::Bang)) {
        if (!check(TokenKind::UpperIdent)) {
          error("expected atom after '!'");
          syncToDecl();
          return;
        }
        AtomAST A = parseAtom();
        A.Negated = true;
        R.Body.emplace_back(std::move(A));
        continue;
      }
      if (check(TokenKind::UpperIdent)) {
        R.Body.emplace_back(parseAtom());
        continue;
      }
      // Binder with a tuple pattern: (x, y) <- f(...).
      if (check(TokenKind::LParen)) {
        BinderAST B;
        B.Loc = advance().Loc;
        do {
          if (!check(TokenKind::Ident)) {
            error("expected variable in binder pattern");
            syncToDecl();
            return;
          }
          B.Pattern.push_back(std::string(advance().Text));
        } while (accept(TokenKind::Comma));
        expect(TokenKind::RParen, "to close binder pattern");
        if (!expect(TokenKind::LeftArrow, "in binder")) {
          syncToDecl();
          return;
        }
        if (!check(TokenKind::Ident)) {
          error("expected function name after '<-'");
          syncToDecl();
          return;
        }
        B.Fn = std::string(advance().Text);
        expect(TokenKind::LParen, "to open binder arguments");
        B.Args = parseArgList();
        R.Body.emplace_back(std::move(B));
        continue;
      }
      if (check(TokenKind::Ident)) {
        // Either `x <- f(...)` (binder) or `f(...)` (filter).
        if (peek(1).is(TokenKind::LeftArrow)) {
          BinderAST B;
          B.Loc = cur().Loc;
          B.Pattern.push_back(std::string(advance().Text));
          advance(); // <-
          if (!check(TokenKind::Ident)) {
            error("expected function name after '<-'");
            syncToDecl();
            return;
          }
          B.Fn = std::string(advance().Text);
          expect(TokenKind::LParen, "to open binder arguments");
          B.Args = parseArgList();
          R.Body.emplace_back(std::move(B));
          continue;
        }
        FilterAST Fl;
        Fl.Loc = cur().Loc;
        Fl.Fn = std::string(advance().Text);
        expect(TokenKind::LParen, "to open filter arguments");
        Fl.Args = parseArgList();
        R.Body.emplace_back(std::move(Fl));
        continue;
      }
      error(std::string("expected a body element, found ") +
            tokenKindName(cur().Kind));
      syncToDecl();
      return;
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::Dot, "to end the rule");
  M.Rules.push_back(std::move(R));
}

std::vector<ExprPtr> Parser::parseArgList() {
  std::vector<ExprPtr> Args;
  if (!check(TokenKind::RParen)) {
    do {
      Args.push_back(parseExpr());
    } while (accept(TokenKind::Comma));
  }
  expect(TokenKind::RParen, "to close argument list");
  return Args;
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

TypeExpr Parser::parseType() {
  TypeExpr T;
  T.Loc = cur().Loc;
  if (check(TokenKind::UpperIdent)) {
    std::string Name(advance().Text);
    // Set[T]
    if (Name == "Set" && accept(TokenKind::LBracket)) {
      T.K = TypeExpr::Kind::Set;
      T.Elems.push_back(parseType());
      expect(TokenKind::RBracket, "to close Set[...]");
      return T;
    }
    // Name<> — lattice reference.
    if (check(TokenKind::Lt) && peek(1).is(TokenKind::Gt)) {
      advance();
      advance();
      T.K = TypeExpr::Kind::Lattice;
      T.Name = std::move(Name);
      return T;
    }
    T.K = TypeExpr::Kind::Named;
    T.Name = std::move(Name);
    return T;
  }
  if (accept(TokenKind::LParen)) {
    T.K = TypeExpr::Kind::Tuple;
    T.Elems.push_back(parseType());
    while (accept(TokenKind::Comma))
      T.Elems.push_back(parseType());
    expect(TokenKind::RParen, "to close tuple type");
    if (T.Elems.size() == 1)
      return std::move(T.Elems[0]); // parenthesized type
    return T;
  }
  error(std::string("expected a type, found ") + tokenKindName(cur().Kind));
  T.K = TypeExpr::Kind::Named;
  T.Name = "Bool"; // error recovery placeholder
  return T;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpr() { return parseOr(); }

ExprPtr Parser::parseOr() {
  ExprPtr L = parseAnd();
  while (check(TokenKind::PipePipe)) {
    SourceLoc Loc = advance().Loc;
    auto E = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
    E->BOp = BinOp::Or;
    E->Args.push_back(std::move(L));
    E->Args.push_back(parseAnd());
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseAnd() {
  ExprPtr L = parseCmp();
  while (check(TokenKind::AmpAmp)) {
    SourceLoc Loc = advance().Loc;
    auto E = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
    E->BOp = BinOp::And;
    E->Args.push_back(std::move(L));
    E->Args.push_back(parseCmp());
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseCmp() {
  ExprPtr L = parseAdd();
  BinOp Op;
  switch (cur().Kind) {
  case TokenKind::EqEq:
    Op = BinOp::Eq;
    break;
  case TokenKind::NotEq:
    Op = BinOp::Ne;
    break;
  case TokenKind::Lt:
    Op = BinOp::Lt;
    break;
  case TokenKind::Le:
    Op = BinOp::Le;
    break;
  case TokenKind::Gt:
    Op = BinOp::Gt;
    break;
  case TokenKind::Ge:
    Op = BinOp::Ge;
    break;
  default:
    return L;
  }
  SourceLoc Loc = advance().Loc;
  auto E = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
  E->BOp = Op;
  E->Args.push_back(std::move(L));
  E->Args.push_back(parseAdd());
  return E;
}

ExprPtr Parser::parseAdd() {
  ExprPtr L = parseMul();
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    BinOp Op = check(TokenKind::Plus) ? BinOp::Add : BinOp::Sub;
    SourceLoc Loc = advance().Loc;
    auto E = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
    E->BOp = Op;
    E->Args.push_back(std::move(L));
    E->Args.push_back(parseMul());
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseMul() {
  ExprPtr L = parseUnary();
  while (check(TokenKind::Star) || check(TokenKind::Slash) ||
         check(TokenKind::Percent)) {
    BinOp Op = check(TokenKind::Star)
                   ? BinOp::Mul
                   : (check(TokenKind::Slash) ? BinOp::Div : BinOp::Rem);
    SourceLoc Loc = advance().Loc;
    auto E = std::make_unique<Expr>(Expr::Kind::Binary, Loc);
    E->BOp = Op;
    E->Args.push_back(std::move(L));
    E->Args.push_back(parseUnary());
    L = std::move(E);
  }
  return L;
}

ExprPtr Parser::parseUnary() {
  if (check(TokenKind::Bang)) {
    SourceLoc Loc = advance().Loc;
    auto E = std::make_unique<Expr>(Expr::Kind::Unary, Loc);
    E->UOp = UnOp::Not;
    E->Args.push_back(parseUnary());
    return E;
  }
  if (check(TokenKind::Minus)) {
    SourceLoc Loc = advance().Loc;
    auto E = std::make_unique<Expr>(Expr::Kind::Unary, Loc);
    E->UOp = UnOp::Neg;
    E->Args.push_back(parseUnary());
    return E;
  }
  return parsePrimary();
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::IntLit: {
    auto E = std::make_unique<Expr>(Expr::Kind::IntLit, Loc);
    E->IntVal = advance().IntValue;
    return E;
  }
  case TokenKind::StrLit: {
    auto E = std::make_unique<Expr>(Expr::Kind::StrLit, Loc);
    E->StrVal = advance().StrValue;
    return E;
  }
  case TokenKind::KwTrue:
  case TokenKind::KwFalse: {
    auto E = std::make_unique<Expr>(Expr::Kind::BoolLit, Loc);
    E->BoolVal = advance().Kind == TokenKind::KwTrue;
    return E;
  }
  case TokenKind::Underscore: {
    // Underscore in rule-term position stands for an anonymous variable;
    // Sema rejects it inside function bodies.
    advance();
    auto E = std::make_unique<Expr>(Expr::Kind::Var, Loc);
    E->Name = "_";
    return E;
  }
  case TokenKind::LParen: {
    advance();
    if (accept(TokenKind::RParen))
      return std::make_unique<Expr>(Expr::Kind::UnitLit, Loc);
    ExprPtr First = parseExpr();
    if (!check(TokenKind::Comma)) {
      expect(TokenKind::RParen, "to close parenthesized expression");
      return First;
    }
    auto E = std::make_unique<Expr>(Expr::Kind::Tuple, Loc);
    E->Args.push_back(std::move(First));
    while (accept(TokenKind::Comma))
      E->Args.push_back(parseExpr());
    expect(TokenKind::RParen, "to close tuple");
    return E;
  }
  case TokenKind::HashBrace: {
    advance();
    auto E = std::make_unique<Expr>(Expr::Kind::SetLit, Loc);
    if (!check(TokenKind::RBrace)) {
      do {
        E->Args.push_back(parseExpr());
      } while (accept(TokenKind::Comma));
    }
    expect(TokenKind::RBrace, "to close set literal");
    return E;
  }
  case TokenKind::KwLet: {
    advance();
    auto E = std::make_unique<Expr>(Expr::Kind::Let, Loc);
    if (!check(TokenKind::Ident)) {
      error("expected binder name after 'let'");
      return std::make_unique<Expr>(Expr::Kind::UnitLit, Loc);
    }
    E->Name = std::string(advance().Text);
    expect(TokenKind::Eq, "in let binding");
    E->Args.push_back(parseExpr());
    expect(TokenKind::Semi, "after let initializer");
    E->Args.push_back(parseExpr());
    return E;
  }
  case TokenKind::KwIf: {
    advance();
    auto E = std::make_unique<Expr>(Expr::Kind::If, Loc);
    expect(TokenKind::LParen, "after 'if'");
    E->Args.push_back(parseExpr());
    expect(TokenKind::RParen, "to close condition");
    E->Args.push_back(parseExpr());
    if (!expect(TokenKind::KwElse, "in if expression"))
      return E;
    E->Args.push_back(parseExpr());
    return E;
  }
  case TokenKind::KwMatch: {
    advance();
    auto E = std::make_unique<Expr>(Expr::Kind::Match, Loc);
    E->Args.push_back(parseExpr());
    expect(TokenKind::KwWith, "in match expression");
    expect(TokenKind::LBrace, "to open match cases");
    while (check(TokenKind::KwCase)) {
      advance();
      MatchCase C;
      C.Pat = parsePattern();
      expect(TokenKind::FatArrow, "after pattern");
      C.Body = parseExpr();
      E->Cases.push_back(std::move(C));
      accept(TokenKind::Comma);
      accept(TokenKind::Semi);
    }
    expect(TokenKind::RBrace, "to close match cases");
    if (E->Cases.empty())
      error("match expression has no cases");
    return E;
  }
  case TokenKind::Ident: {
    std::string Name(advance().Text);
    if (accept(TokenKind::LParen)) {
      auto E = std::make_unique<Expr>(Expr::Kind::Call, Loc);
      E->Name = std::move(Name);
      E->Args = parseArgList();
      return E;
    }
    auto E = std::make_unique<Expr>(Expr::Kind::Var, Loc);
    E->Name = std::move(Name);
    return E;
  }
  case TokenKind::UpperIdent: {
    std::string EnumName(advance().Text);
    if (!expect(TokenKind::Dot, "after enum name (tags are written "
                                "Enum.Case)"))
      return std::make_unique<Expr>(Expr::Kind::UnitLit, Loc);
    if (!check(TokenKind::UpperIdent)) {
      error("expected case name after '.'");
      return std::make_unique<Expr>(Expr::Kind::UnitLit, Loc);
    }
    auto E = std::make_unique<Expr>(Expr::Kind::Tag, Loc);
    E->EnumName = std::move(EnumName);
    E->CaseName = std::string(advance().Text);
    if (accept(TokenKind::LParen)) {
      std::vector<ExprPtr> Args = parseArgList();
      if (Args.size() == 1) {
        E->Args.push_back(std::move(Args[0]));
      } else if (!Args.empty()) {
        auto Tup = std::make_unique<Expr>(Expr::Kind::Tuple, Loc);
        Tup->Args = std::move(Args);
        E->Args.push_back(std::move(Tup));
      }
    }
    return E;
  }
  default:
    error(std::string("expected an expression, found ") +
          tokenKindName(cur().Kind));
    advance();
    return std::make_unique<Expr>(Expr::Kind::UnitLit, Loc);
  }
}

//===----------------------------------------------------------------------===//
// Patterns
//===----------------------------------------------------------------------===//

Pattern Parser::parsePattern() {
  Pattern P;
  P.Loc = cur().Loc;
  switch (cur().Kind) {
  case TokenKind::Underscore:
    advance();
    P.K = Pattern::Kind::Wildcard;
    return P;
  case TokenKind::Ident:
    P.K = Pattern::Kind::Var;
    P.Name = std::string(advance().Text);
    return P;
  case TokenKind::IntLit:
    P.K = Pattern::Kind::IntLit;
    P.IntVal = advance().IntValue;
    return P;
  case TokenKind::Minus:
    advance();
    if (!check(TokenKind::IntLit)) {
      error("expected integer literal after '-' in pattern");
      P.K = Pattern::Kind::Wildcard;
      return P;
    }
    P.K = Pattern::Kind::IntLit;
    P.IntVal = -advance().IntValue;
    return P;
  case TokenKind::StrLit:
    P.K = Pattern::Kind::StrLit;
    P.StrVal = advance().StrValue;
    return P;
  case TokenKind::KwTrue:
  case TokenKind::KwFalse:
    P.K = Pattern::Kind::BoolLit;
    P.BoolVal = advance().Kind == TokenKind::KwTrue;
    return P;
  case TokenKind::LParen: {
    advance();
    if (accept(TokenKind::RParen)) {
      P.K = Pattern::Kind::UnitLit;
      return P;
    }
    P.Elems.push_back(parsePattern());
    while (accept(TokenKind::Comma))
      P.Elems.push_back(parsePattern());
    expect(TokenKind::RParen, "to close tuple pattern");
    if (P.Elems.size() == 1)
      return std::move(P.Elems[0]);
    P.K = Pattern::Kind::Tuple;
    return P;
  }
  case TokenKind::UpperIdent: {
    P.EnumName = std::string(advance().Text);
    if (!expect(TokenKind::Dot, "in tag pattern (Enum.Case)")) {
      P.K = Pattern::Kind::Wildcard;
      return P;
    }
    if (!check(TokenKind::UpperIdent)) {
      error("expected case name after '.' in pattern");
      P.K = Pattern::Kind::Wildcard;
      return P;
    }
    P.K = Pattern::Kind::Tag;
    P.CaseName = std::string(advance().Text);
    if (accept(TokenKind::LParen)) {
      std::vector<Pattern> Sub;
      Sub.push_back(parsePattern());
      while (accept(TokenKind::Comma))
        Sub.push_back(parsePattern());
      expect(TokenKind::RParen, "to close tag pattern payload");
      if (Sub.size() == 1) {
        P.Elems.push_back(std::move(Sub[0]));
      } else {
        Pattern Tup;
        Tup.K = Pattern::Kind::Tuple;
        Tup.Loc = P.Loc;
        Tup.Elems = std::move(Sub);
        P.Elems.push_back(std::move(Tup));
      }
    }
    return P;
  }
  default:
    error(std::string("expected a pattern, found ") +
          tokenKindName(cur().Kind));
    advance();
    P.K = Pattern::Kind::Wildcard;
    return P;
  }
}
