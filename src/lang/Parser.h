//===- lang/Parser.h - FLIX parser -----------------------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for the FLIX surface language. Produces an
/// ast::Module; errors are reported with source locations and recovered
/// at declaration boundaries so multiple errors surface in one pass.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_LANG_PARSER_H
#define FLIX_LANG_PARSER_H

#include "lang/AST.h"
#include "lang/Token.h"
#include "support/Diagnostics.h"

#include <vector>

namespace flix {

class Parser {
public:
  Parser(std::vector<Token> Tokens, DiagnosticEngine &Diags)
      : Tokens(std::move(Tokens)), Diags(Diags) {}

  /// Parses the whole token stream. Check Diags for errors afterwards; the
  /// returned module contains whatever parsed successfully.
  ast::Module parseModule();

private:
  const Token &peek(unsigned Ahead = 0) const;
  const Token &cur() const { return peek(0); }
  Token advance();
  bool check(TokenKind K) const { return cur().Kind == K; }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void error(const std::string &Msg);
  void syncToDecl();

  // Declarations.
  void parseEnum(ast::Module &M);
  void parseDef(ast::Module &M, bool IsExt);
  void parseLetLattice(ast::Module &M);
  void parsePred(ast::Module &M, bool IsLat);
  void parseRuleOrFact(ast::Module &M);
  void parseIndexHint(ast::Module &M);

  // Types, expressions, patterns.
  ast::TypeExpr parseType();
  ast::ExprPtr parseExpr();
  ast::ExprPtr parseOr();
  ast::ExprPtr parseAnd();
  ast::ExprPtr parseCmp();
  ast::ExprPtr parseAdd();
  ast::ExprPtr parseMul();
  ast::ExprPtr parseUnary();
  ast::ExprPtr parsePrimary();
  ast::Pattern parsePattern();
  std::vector<ast::ExprPtr> parseArgList();

  // Rules.
  ast::AtomAST parseAtom();

  std::vector<Token> Tokens;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
};

} // namespace flix

#endif // FLIX_LANG_PARSER_H
