//===- lang/Sema.cpp - FLIX semantic analysis -------------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "lang/Sema.h"

using namespace flix;
using namespace flix::ast;

namespace {

class Sema {
public:
  Sema(const Module &M, DiagnosticEngine &Diags) : M(M), Diags(Diags) {
    CM.Ast = &M;
  }

  CheckedModule run() {
    collectEnums();
    collectDefs();
    checkLatticeBinds();
    collectPreds();
    checkDefBodies();
    checkRules();
    checkIndexHints();
    return std::move(CM);
  }

private:
  using Env = std::map<std::string, Type>;

  void error(SourceLoc Loc, std::string Msg) {
    Diags.error(Loc, std::move(Msg));
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  Type resolveNamedType(const std::string &Name, SourceLoc Loc) {
    if (Name == "Bool")
      return Type::boolean();
    if (Name == "Int")
      return Type::integer();
    if (Name == "Str")
      return Type::string();
    if (Name == "Unit")
      return Type::unit();
    if (CM.Enums.count(Name))
      return Type::enumeration(Name);
    error(Loc, "unknown type '" + Name + "'");
    return Type::invalid();
  }

  Type resolveType(const TypeExpr &T) {
    switch (T.K) {
    case TypeExpr::Kind::Named:
      return resolveNamedType(T.Name, T.Loc);
    case TypeExpr::Kind::Lattice:
      // `Name<>` denotes the carrier type; the lattice structure is looked
      // up separately where it matters.
      return resolveNamedType(T.Name, T.Loc);
    case TypeExpr::Kind::Tuple: {
      std::vector<Type> Elems;
      for (const TypeExpr &E : T.Elems)
        Elems.push_back(resolveType(E));
      return Type::tuple(std::move(Elems));
    }
    case TypeExpr::Kind::Set:
      return Type::set(resolveType(T.Elems[0]));
    }
    return Type::invalid();
  }

  void collectEnums() {
    for (const EnumDecl &E : M.Enums) {
      if (CM.Enums.count(E.Name)) {
        error(E.Loc, "duplicate enum '" + E.Name + "'");
        continue;
      }
      CM.Enums[E.Name] = EnumInfo{E.Name, {}};
    }
    // Payload types may reference other enums, so resolve in a second pass.
    for (const EnumDecl &E : M.Enums) {
      EnumInfo &Info = CM.Enums[E.Name];
      for (const EnumCaseDecl &C : E.Cases) {
        if (Info.Cases.count(C.Name)) {
          error(C.Loc, "duplicate case '" + C.Name + "' in enum '" + E.Name +
                           "'");
          continue;
        }
        EnumCaseInfo CI;
        CI.QualifiedName = E.Name + "." + C.Name;
        if (C.Payload)
          CI.Payload = resolveType(*C.Payload);
        Info.Cases[C.Name] = std::move(CI);
      }
    }
  }

  void collectDefs() {
    for (const DefDecl &D : M.Defs) {
      if (CM.Defs.count(D.Name)) {
        error(D.Loc, "duplicate function '" + D.Name + "'");
        continue;
      }
      DefInfo Info;
      Info.Decl = &D;
      for (const Param &P : D.Params)
        Info.ParamTypes.push_back(resolveType(P.Type));
      Info.RetType = resolveType(D.RetType);
      CM.Defs[D.Name] = std::move(Info);
    }
  }

  void checkLatticeBinds() {
    for (const LatticeBindDecl &L : M.LatticeBinds) {
      if (CM.LatticeBinds.count(L.TypeName)) {
        error(L.Loc, "duplicate lattice binding for '" + L.TypeName + "'");
        continue;
      }
      LatticeBindInfo Info;
      Info.Decl = &L;
      Info.ElemType = resolveNamedType(L.TypeName, L.Loc);
      // ⊥/⊤ must be constant expressions of the carrier type.
      Env Empty;
      Type BotT = checkExpr(*L.Bot, Empty);
      Type TopT = checkExpr(*L.Top, Empty);
      if (!BotT.equals(Info.ElemType))
        error(L.Bot->Loc, "bottom element has type " + BotT.str() +
                              ", expected " + Info.ElemType.str());
      if (!TopT.equals(Info.ElemType))
        error(L.Top->Loc, "top element has type " + TopT.str() +
                              ", expected " + Info.ElemType.str());
      checkLatticeFn(L.LeqFn, Info.ElemType, Type::boolean(), L.Loc);
      checkLatticeFn(L.LubFn, Info.ElemType, Info.ElemType, L.Loc);
      checkLatticeFn(L.GlbFn, Info.ElemType, Info.ElemType, L.Loc);
      CM.LatticeBinds[L.TypeName] = std::move(Info);
    }
  }

  void checkLatticeFn(const std::string &Name, const Type &Elem,
                      const Type &Ret, SourceLoc Loc) {
    auto It = CM.Defs.find(Name);
    if (It == CM.Defs.end()) {
      error(Loc, "unknown function '" + Name + "' in lattice binding");
      return;
    }
    const DefInfo &D = It->second;
    if (D.ParamTypes.size() != 2 || !D.ParamTypes[0].equals(Elem) ||
        !D.ParamTypes[1].equals(Elem) || !D.RetType.equals(Ret))
      error(Loc, "lattice function '" + Name + "' must have type (" +
                     Elem.str() + ", " + Elem.str() + ") -> " + Ret.str());
  }

  void collectPreds() {
    for (const PredDecl &P : M.Preds) {
      if (CM.Preds.count(P.Name)) {
        error(P.Loc, "duplicate predicate '" + P.Name + "'");
        continue;
      }
      if (P.Attrs.empty()) {
        error(P.Loc, "predicate '" + P.Name + "' needs at least one "
                     "attribute");
        continue;
      }
      PredInfo Info;
      Info.Decl = &P;
      for (size_t I = 0; I < P.Attrs.size(); ++I) {
        const Attribute &A = P.Attrs[I];
        bool IsLatticeAttr = A.Type.K == TypeExpr::Kind::Lattice;
        bool IsLast = I + 1 == P.Attrs.size();
        if (IsLatticeAttr && (!P.IsLat || !IsLast))
          error(A.Loc, "lattice attribute must be the last attribute of a "
                       "'lat' declaration");
        if (P.IsLat && IsLast) {
          if (!IsLatticeAttr) {
            error(A.Loc, "the last attribute of 'lat " + P.Name +
                             "' must be a lattice type (Name<>)");
          } else if (!CM.LatticeBinds.count(A.Type.Name)) {
            error(A.Loc, "no lattice binding 'let " + A.Type.Name +
                             "<> = ...' for this attribute");
          } else {
            Info.LatticeTypeName = A.Type.Name;
          }
        }
        Info.AttrTypes.push_back(resolveType(A.Type));
      }
      CM.Preds[P.Name] = std::move(Info);
    }
  }

  void checkIndexHints() {
    for (const IndexHintDecl &H : M.IndexHints) {
      auto PIt = CM.Preds.find(H.Pred);
      if (PIt == CM.Preds.end()) {
        error(H.Loc, "unknown predicate '" + H.Pred + "' in index hint");
        continue;
      }
      const PredInfo &PI = PIt->second;
      size_t KeyArity = PI.AttrTypes.size() - (PI.Decl->IsLat ? 1 : 0);
      uint64_t Mask = 0;
      bool Bad = false;
      for (const std::string &Attr : H.Attrs) {
        bool Found = false;
        for (size_t I = 0; I < KeyArity; ++I) {
          if (PI.Decl->Attrs[I].Name == Attr) {
            Mask |= uint64_t(1) << I;
            Found = true;
            break;
          }
        }
        if (!Found) {
          error(H.Loc, "predicate '" + H.Pred + "' has no key attribute "
                       "'" + Attr + "'");
          Bad = true;
        }
      }
      if (Bad || Mask == 0)
        continue;
      if (Mask == (KeyArity >= 64 ? ~uint64_t(0)
                                  : (uint64_t(1) << KeyArity) - 1)) {
        error(H.Loc, "index over all key columns duplicates the primary "
                     "index");
        continue;
      }
      CM.IndexHints.push_back({H.Pred, Mask});
    }
  }

  void checkDefBodies() {
    for (const DefDecl &D : M.Defs) {
      if (D.IsExt || !D.Body)
        continue;
      const DefInfo &Info = CM.Defs[D.Name];
      Env E;
      for (size_t I = 0; I < D.Params.size(); ++I)
        E[D.Params[I].Name] = Info.ParamTypes[I];
      Type BodyT = checkExpr(*D.Body, E);
      if (!BodyT.equals(Info.RetType))
        error(D.Body->Loc, "function '" + D.Name + "' returns " +
                               BodyT.str() + ", declared " +
                               Info.RetType.str());
    }
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  Type checkExpr(const Expr &E, Env &Vars) {
    switch (E.K) {
    case Expr::Kind::IntLit:
      return Type::integer();
    case Expr::Kind::BoolLit:
      return Type::boolean();
    case Expr::Kind::StrLit:
      return Type::string();
    case Expr::Kind::UnitLit:
      return Type::unit();
    case Expr::Kind::Var: {
      if (E.Name == "_") {
        error(E.Loc, "'_' is not allowed in expressions");
        return Type::invalid();
      }
      auto It = Vars.find(E.Name);
      if (It == Vars.end()) {
        error(E.Loc, "unknown variable '" + E.Name + "'");
        return Type::invalid();
      }
      return It->second;
    }
    case Expr::Kind::Tag: {
      auto EIt = CM.Enums.find(E.EnumName);
      if (EIt == CM.Enums.end()) {
        error(E.Loc, "unknown enum '" + E.EnumName + "'");
        return Type::invalid();
      }
      auto CIt = EIt->second.Cases.find(E.CaseName);
      if (CIt == EIt->second.Cases.end()) {
        error(E.Loc, "enum '" + E.EnumName + "' has no case '" + E.CaseName +
                         "'");
        return Type::invalid();
      }
      const EnumCaseInfo &CI = CIt->second;
      if (CI.Payload && E.Args.empty()) {
        error(E.Loc, "case '" + CI.QualifiedName + "' requires a payload");
      } else if (!CI.Payload && !E.Args.empty()) {
        error(E.Loc, "case '" + CI.QualifiedName + "' takes no payload");
      } else if (CI.Payload) {
        Type PT = checkExpr(*E.Args[0], Vars);
        if (!PT.equals(*CI.Payload))
          error(E.Args[0]->Loc, "payload has type " + PT.str() +
                                    ", expected " + CI.Payload->str());
      }
      return Type::enumeration(E.EnumName);
    }
    case Expr::Kind::Tuple: {
      std::vector<Type> Elems;
      for (const ExprPtr &A : E.Args)
        Elems.push_back(checkExpr(*A, Vars));
      return Type::tuple(std::move(Elems));
    }
    case Expr::Kind::SetLit: {
      Type Elem = Type::invalid();
      for (const ExprPtr &A : E.Args) {
        Type T = checkExpr(*A, Vars);
        if (Elem.isInvalid())
          Elem = T;
        else if (!Elem.equals(T))
          error(A->Loc, "set element has type " + T.str() +
                            ", expected " + Elem.str());
      }
      return Type::set(std::move(Elem));
    }
    case Expr::Kind::Call: {
      auto It = CM.Defs.find(E.Name);
      if (It == CM.Defs.end()) {
        error(E.Loc, "unknown function '" + E.Name + "'");
        for (const ExprPtr &A : E.Args)
          checkExpr(*A, Vars);
        return Type::invalid();
      }
      const DefInfo &D = It->second;
      if (E.Args.size() != D.ParamTypes.size()) {
        error(E.Loc, "function '" + E.Name + "' expects " +
                         std::to_string(D.ParamTypes.size()) +
                         " argument(s), got " +
                         std::to_string(E.Args.size()));
        return D.RetType;
      }
      for (size_t I = 0; I < E.Args.size(); ++I) {
        Type AT = checkExpr(*E.Args[I], Vars);
        if (!AT.equals(D.ParamTypes[I]))
          error(E.Args[I]->Loc, "argument " + std::to_string(I + 1) +
                                    " of '" + E.Name + "' has type " +
                                    AT.str() + ", expected " +
                                    D.ParamTypes[I].str());
      }
      return D.RetType;
    }
    case Expr::Kind::If: {
      Type CT = checkExpr(*E.Args[0], Vars);
      if (!CT.equals(Type::boolean()))
        error(E.Args[0]->Loc, "if condition has type " + CT.str() +
                                  ", expected Bool");
      Type TT = checkExpr(*E.Args[1], Vars);
      if (E.Args.size() < 3)
        return TT; // parse error recovery
      Type ET = checkExpr(*E.Args[2], Vars);
      if (!TT.equals(ET))
        error(E.Loc, "if branches have different types: " + TT.str() +
                         " vs " + ET.str());
      return TT;
    }
    case Expr::Kind::Match: {
      Type ST = checkExpr(*E.Args[0], Vars);
      Type Result = Type::invalid();
      for (const MatchCase &C : E.Cases) {
        Env CaseVars = Vars;
        checkPattern(C.Pat, ST, CaseVars);
        Type BT = checkExpr(*C.Body, CaseVars);
        if (Result.isInvalid())
          Result = BT;
        else if (!Result.equals(BT))
          error(C.Body->Loc, "match case has type " + BT.str() +
                                 ", expected " + Result.str());
      }
      checkExhaustiveness(E, ST);
      return Result;
    }
    case Expr::Kind::Let: {
      Type InitT = checkExpr(*E.Args[0], Vars);
      Env Inner = Vars;
      Inner[E.Name] = InitT;
      return checkExpr(*E.Args[1], Inner);
    }
    case Expr::Kind::Binary: {
      Type LT = checkExpr(*E.Args[0], Vars);
      Type RT = checkExpr(*E.Args[1], Vars);
      switch (E.BOp) {
      case BinOp::Add:
      case BinOp::Sub:
      case BinOp::Mul:
      case BinOp::Div:
      case BinOp::Rem:
        if (!LT.equals(Type::integer()) || !RT.equals(Type::integer()))
          error(E.Loc, "arithmetic requires Int operands, got " + LT.str() +
                           " and " + RT.str());
        return Type::integer();
      case BinOp::Lt:
      case BinOp::Le:
      case BinOp::Gt:
      case BinOp::Ge:
        if (!LT.equals(Type::integer()) || !RT.equals(Type::integer()))
          error(E.Loc, "comparison requires Int operands, got " + LT.str() +
                           " and " + RT.str());
        return Type::boolean();
      case BinOp::Eq:
      case BinOp::Ne:
        if (!LT.equals(RT))
          error(E.Loc, "cannot compare " + LT.str() + " with " + RT.str());
        return Type::boolean();
      case BinOp::And:
      case BinOp::Or:
        if (!LT.equals(Type::boolean()) || !RT.equals(Type::boolean()))
          error(E.Loc, "logical operator requires Bool operands");
        return Type::boolean();
      }
      return Type::invalid();
    }
    case Expr::Kind::Unary: {
      Type T = checkExpr(*E.Args[0], Vars);
      if (E.UOp == UnOp::Not) {
        if (!T.equals(Type::boolean()))
          error(E.Loc, "'!' requires a Bool operand, got " + T.str());
        return Type::boolean();
      }
      if (!T.equals(Type::integer()))
        error(E.Loc, "unary '-' requires an Int operand, got " + T.str());
      return Type::integer();
    }
    }
    return Type::invalid();
  }

  /// True if the pattern matches every value of its type.
  static bool isIrrefutable(const Pattern &P) {
    switch (P.K) {
    case Pattern::Kind::Wildcard:
    case Pattern::Kind::Var:
    case Pattern::Kind::UnitLit:
      return true;
    case Pattern::Kind::Tuple:
      for (const Pattern &E : P.Elems)
        if (!isIrrefutable(E))
          return false;
      return true;
    default:
      return false;
    }
  }

  /// Warns when a match over an enum or Bool scrutinee can fall through:
  /// no irrefutable case and not every constructor covered. (A miss is a
  /// runtime error in the interpreter, so this is a warning, not an
  /// error — like the paper's Scala implementation.)
  void checkExhaustiveness(const ast::Expr &E, const Type &Scrut) {
    for (const MatchCase &C : E.Cases)
      if (isIrrefutable(C.Pat))
        return;
    if (Scrut.K == Type::Kind::Bool) {
      bool SawTrue = false, SawFalse = false;
      for (const MatchCase &C : E.Cases)
        if (C.Pat.K == Pattern::Kind::BoolLit)
          (C.Pat.BoolVal ? SawTrue : SawFalse) = true;
      if (!SawTrue || !SawFalse)
        Diags.warning(E.Loc, std::string("match may not be exhaustive: "
                                         "missing case ") +
                                 (SawTrue ? "'false'" : "'true'"));
      return;
    }
    if (Scrut.K != Type::Kind::Enum)
      return; // tuples/ints/strings: no finite constructor set to check
    auto EIt = CM.Enums.find(Scrut.EnumName);
    if (EIt == CM.Enums.end())
      return;
    std::string Missing;
    unsigned NumMissing = 0;
    for (const auto &[CaseName, CI] : EIt->second.Cases) {
      bool Covered = false;
      for (const MatchCase &C : E.Cases) {
        if (C.Pat.K != Pattern::Kind::Tag || C.Pat.CaseName != CaseName)
          continue;
        if (C.Pat.Elems.empty() || isIrrefutable(C.Pat.Elems[0])) {
          Covered = true;
          break;
        }
      }
      if (!Covered) {
        if (++NumMissing <= 3) {
          if (!Missing.empty())
            Missing += ", ";
          Missing += "'" + CI.QualifiedName + "'";
        }
      }
    }
    if (NumMissing > 0)
      Diags.warning(E.Loc,
                    "match may not be exhaustive: missing " +
                        std::string(NumMissing == 1 ? "case " : "cases ") +
                        Missing +
                        (NumMissing > 3
                             ? " and " + std::to_string(NumMissing - 3) +
                                   " more"
                             : ""));
  }

  void checkPattern(const Pattern &P, const Type &Scrut, Env &Vars) {
    switch (P.K) {
    case Pattern::Kind::Wildcard:
      return;
    case Pattern::Kind::Var:
      if (Vars.count(P.Name))
        error(P.Loc, "pattern variable '" + P.Name + "' shadows an "
                     "existing binding");
      Vars[P.Name] = Scrut;
      return;
    case Pattern::Kind::IntLit:
      if (!Scrut.equals(Type::integer()))
        error(P.Loc, "integer pattern against " + Scrut.str());
      return;
    case Pattern::Kind::BoolLit:
      if (!Scrut.equals(Type::boolean()))
        error(P.Loc, "boolean pattern against " + Scrut.str());
      return;
    case Pattern::Kind::StrLit:
      if (!Scrut.equals(Type::string()))
        error(P.Loc, "string pattern against " + Scrut.str());
      return;
    case Pattern::Kind::UnitLit:
      if (!Scrut.equals(Type::unit()))
        error(P.Loc, "unit pattern against " + Scrut.str());
      return;
    case Pattern::Kind::Tag: {
      auto EIt = CM.Enums.find(P.EnumName);
      if (EIt == CM.Enums.end()) {
        error(P.Loc, "unknown enum '" + P.EnumName + "' in pattern");
        return;
      }
      if (!Scrut.equals(Type::enumeration(P.EnumName))) {
        error(P.Loc, "pattern of enum '" + P.EnumName + "' against " +
                         Scrut.str());
        return;
      }
      auto CIt = EIt->second.Cases.find(P.CaseName);
      if (CIt == EIt->second.Cases.end()) {
        error(P.Loc, "enum '" + P.EnumName + "' has no case '" + P.CaseName +
                         "'");
        return;
      }
      const EnumCaseInfo &CI = CIt->second;
      if (CI.Payload && P.Elems.empty())
        error(P.Loc, "case '" + CI.QualifiedName + "' pattern requires a "
                     "payload");
      else if (!CI.Payload && !P.Elems.empty())
        error(P.Loc, "case '" + CI.QualifiedName + "' takes no payload");
      else if (CI.Payload)
        checkPattern(P.Elems[0], *CI.Payload, Vars);
      return;
    }
    case Pattern::Kind::Tuple: {
      if (Scrut.K != Type::Kind::Tuple ||
          Scrut.Elems.size() != P.Elems.size()) {
        if (!Scrut.isInvalid())
          error(P.Loc, "tuple pattern of " + std::to_string(P.Elems.size()) +
                           " elements against " + Scrut.str());
        return;
      }
      for (size_t I = 0; I < P.Elems.size(); ++I)
        checkPattern(P.Elems[I], Scrut.Elems[I], Vars);
      return;
    }
    }
  }

  //===--------------------------------------------------------------------===//
  // Rules
  //===--------------------------------------------------------------------===//

  /// Checks a rule term in a key position: a variable, "_" or a constant
  /// expression of type \p Want.
  void checkKeyTerm(const Expr &T, const Type &Want, Env &Vars,
                    bool RequireBound, bool AllowAnonymous) {
    if (T.K == Expr::Kind::Var) {
      if (T.Name == "_") {
        if (!AllowAnonymous)
          error(T.Loc, "'_' is not allowed here");
        return;
      }
      auto It = Vars.find(T.Name);
      if (It != Vars.end()) {
        if (!It->second.equals(Want))
          error(T.Loc, "variable '" + T.Name + "' has type " +
                           It->second.str() + ", expected " + Want.str());
        return;
      }
      if (RequireBound) {
        error(T.Loc, "variable '" + T.Name + "' is not bound by an earlier "
                     "body atom");
        return;
      }
      Vars[T.Name] = Want;
      return;
    }
    // Constant expression: no rule variables may occur.
    Env Empty;
    Type Got = checkExpr(T, Empty);
    if (!Got.equals(Want))
      error(T.Loc, "term has type " + Got.str() + ", expected " +
                       Want.str());
  }

  void checkRules() {
    for (const RuleAST &R : M.Rules) {
      RuleVarInfo VI;
      Env Vars;
      bool IsFact = R.Body.empty();

      for (const BodyElemAST &BE : R.Body) {
        if (const auto *A = std::get_if<AtomAST>(&BE)) {
          auto PIt = CM.Preds.find(A->Pred);
          if (PIt == CM.Preds.end()) {
            error(A->Loc, "unknown predicate '" + A->Pred + "'");
            continue;
          }
          const PredInfo &PI = PIt->second;
          if (A->Terms.size() != PI.AttrTypes.size()) {
            error(A->Loc, "predicate '" + A->Pred + "' has " +
                              std::to_string(PI.AttrTypes.size()) +
                              " attribute(s), atom supplies " +
                              std::to_string(A->Terms.size()));
            continue;
          }
          if (A->Negated && PI.Decl->IsLat)
            error(A->Loc, "negation is only supported on relations");
          for (size_t I = 0; I < A->Terms.size(); ++I)
            checkKeyTerm(*A->Terms[I], PI.AttrTypes[I], Vars,
                         /*RequireBound=*/A->Negated,
                         /*AllowAnonymous=*/!A->Negated);
          continue;
        }
        if (const auto *Fl = std::get_if<FilterAST>(&BE)) {
          auto DIt = CM.Defs.find(Fl->Fn);
          if (DIt == CM.Defs.end()) {
            error(Fl->Loc, "unknown filter function '" + Fl->Fn + "'");
            continue;
          }
          const DefInfo &D = DIt->second;
          if (!D.RetType.equals(Type::boolean()))
            error(Fl->Loc, "filter function '" + Fl->Fn +
                               "' must return Bool, returns " +
                               D.RetType.str());
          if (Fl->Args.size() != D.ParamTypes.size()) {
            error(Fl->Loc, "filter '" + Fl->Fn + "' arity mismatch");
            continue;
          }
          for (size_t I = 0; I < Fl->Args.size(); ++I) {
            Type AT = checkExpr(*Fl->Args[I], Vars);
            if (!AT.equals(D.ParamTypes[I]))
              error(Fl->Args[I]->Loc, "filter argument has type " +
                                          AT.str() + ", expected " +
                                          D.ParamTypes[I].str());
          }
          continue;
        }
        const auto &B = std::get<BinderAST>(BE);
        auto DIt = CM.Defs.find(B.Fn);
        if (DIt == CM.Defs.end()) {
          error(B.Loc, "unknown binder function '" + B.Fn + "'");
          continue;
        }
        const DefInfo &D = DIt->second;
        if (D.RetType.K != Type::Kind::Set) {
          error(B.Loc, "binder function '" + B.Fn +
                           "' must return a Set, returns " +
                           D.RetType.str());
          continue;
        }
        if (B.Args.size() != D.ParamTypes.size()) {
          error(B.Loc, "binder '" + B.Fn + "' arity mismatch");
          continue;
        }
        for (size_t I = 0; I < B.Args.size(); ++I) {
          Type AT = checkExpr(*B.Args[I], Vars);
          if (!AT.equals(D.ParamTypes[I]))
            error(B.Args[I]->Loc, "binder argument has type " + AT.str() +
                                      ", expected " + D.ParamTypes[I].str());
        }
        const Type &Elem = D.RetType.Elems[0];
        if (B.Pattern.size() == 1) {
          bindPatternVar(B.Pattern[0], Elem, Vars, B.Loc);
        } else if (Elem.K == Type::Kind::Tuple &&
                   Elem.Elems.size() == B.Pattern.size()) {
          for (size_t I = 0; I < B.Pattern.size(); ++I)
            bindPatternVar(B.Pattern[I], Elem.Elems[I], Vars, B.Loc);
        } else {
          error(B.Loc, "binder pattern of " +
                           std::to_string(B.Pattern.size()) +
                           " variables against set elements of type " +
                           Elem.str());
        }
      }

      // Head.
      auto PIt = CM.Preds.find(R.Head.Pred);
      if (PIt == CM.Preds.end()) {
        error(R.Head.Loc, "unknown predicate '" + R.Head.Pred + "'");
        CM.RuleVars.push_back(std::move(VI));
        continue;
      }
      const PredInfo &PI = PIt->second;
      if (R.Head.Terms.size() != PI.AttrTypes.size()) {
        error(R.Head.Loc, "predicate '" + R.Head.Pred + "' has " +
                              std::to_string(PI.AttrTypes.size()) +
                              " attribute(s), head supplies " +
                              std::to_string(R.Head.Terms.size()));
        CM.RuleVars.push_back(std::move(VI));
        continue;
      }
      if (R.Head.Negated)
        error(R.Head.Loc, "the head of a rule cannot be negated");
      for (size_t I = 0; I < R.Head.Terms.size(); ++I) {
        const Expr &T = *R.Head.Terms[I];
        const Type &Want = PI.AttrTypes[I];
        bool IsLast = I + 1 == R.Head.Terms.size();
        if (IsFact) {
          // Facts: every term must be a constant expression.
          Env Empty;
          Type Got = checkExpr(T, Empty);
          if (!Got.equals(Want))
            error(T.Loc, "fact term has type " + Got.str() + ", expected " +
                             Want.str());
          continue;
        }
        if (!IsLast) {
          checkKeyTerm(T, Want, Vars, /*RequireBound=*/true,
                       /*AllowAnonymous=*/false);
          continue;
        }
        // The last head term may be an arbitrary expression over bound
        // variables (§3.3 transfer functions; Figure 4 uses a constructor
        // application, §4.4 uses `d + c`).
        Type Got = checkExpr(T, Vars);
        if (!Got.equals(Want))
          error(T.Loc, "head term has type " + Got.str() + ", expected " +
                           Want.str());
      }

      VI.VarTypes = std::move(Vars);
      CM.RuleVars.push_back(std::move(VI));
    }
  }

  void bindPatternVar(const std::string &Name, const Type &T, Env &Vars,
                      SourceLoc Loc) {
    auto It = Vars.find(Name);
    if (It != Vars.end()) {
      if (!It->second.equals(T))
        error(Loc, "binder variable '" + Name + "' has type " +
                       It->second.str() + ", expected " + T.str());
      return;
    }
    Vars[Name] = T;
  }

  const Module &M;
  DiagnosticEngine &Diags;
  CheckedModule CM;
};

} // namespace

CheckedModule flix::checkModule(const ast::Module &M,
                                DiagnosticEngine &Diags) {
  return Sema(M, Diags).run();
}
