//===- lang/Sema.h - FLIX semantic analysis --------------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name resolution and type checking for FLIX modules. Produces a
/// CheckedModule with resolved symbol tables that the interpreter and the
/// lowering pass consume. Enforces the paper's syntactic restrictions:
/// function applications only in the last term of a rule head (§3.3),
/// filters returning Bool, binder functions returning sets, and lattice
/// attributes only in the last column of `lat` declarations.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_LANG_SEMA_H
#define FLIX_LANG_SEMA_H

#include "lang/AST.h"
#include "lang/Types.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace flix {

/// Resolved information about one enum case.
struct EnumCaseInfo {
  std::string QualifiedName; ///< "Enum.Case"
  std::optional<Type> Payload;
};

struct EnumInfo {
  std::string Name;
  std::map<std::string, EnumCaseInfo> Cases;
};

struct DefInfo {
  const ast::DefDecl *Decl = nullptr;
  std::vector<Type> ParamTypes;
  Type RetType;
};

struct LatticeBindInfo {
  const ast::LatticeBindDecl *Decl = nullptr;
  Type ElemType; ///< the carrier type (e.g. the Parity enum)
};

struct PredInfo {
  const ast::PredDecl *Decl = nullptr;
  std::vector<Type> AttrTypes;
  /// For `lat` predicates: the type name whose lattice binding supplies
  /// the operations on the last column.
  std::string LatticeTypeName;
};

/// Per-rule variable typing, computed by Sema and reused by lowering.
struct RuleVarInfo {
  std::map<std::string, Type> VarTypes;
};

/// The result of semantic analysis. All pointers reference the Module that
/// was checked; keep it alive.
struct CheckedModule {
  const ast::Module *Ast = nullptr;
  std::map<std::string, EnumInfo> Enums;
  std::map<std::string, DefInfo> Defs;
  std::map<std::string, LatticeBindInfo> LatticeBinds;
  std::map<std::string, PredInfo> Preds;
  std::vector<RuleVarInfo> RuleVars; ///< parallel to Ast->Rules
  /// Validated index hints: predicate name and key-column bitmask.
  std::vector<std::pair<std::string, uint64_t>> IndexHints;
};

/// Runs name resolution and type checking. Returns the checked module;
/// inspect \p Diags for errors (the module is unusable if there are any).
CheckedModule checkModule(const ast::Module &M, DiagnosticEngine &Diags);

} // namespace flix

#endif // FLIX_LANG_SEMA_H
