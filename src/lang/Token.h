//===- lang/Token.h - FLIX tokens ------------------------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token definitions for the FLIX surface language (§2.2, Figure 2). The
/// syntax is inspired by Scala (expressions) and Datalog (rules).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_LANG_TOKEN_H
#define FLIX_LANG_TOKEN_H

#include "support/SourceManager.h"

#include <string>
#include <string_view>

namespace flix {

enum class TokenKind : uint8_t {
  Eof,
  Error,

  // Literals and identifiers.
  Ident,      ///< lowercase-initial identifier (variables, functions)
  UpperIdent, ///< uppercase-initial identifier (predicates, enums, tags)
  IntLit,
  StrLit,

  // Keywords.
  KwEnum,
  KwCase,
  KwDef,
  KwExt,
  KwMatch,
  KwWith,
  KwLet,
  KwIf,
  KwElse,
  KwRel,
  KwLat,
  KwTrue,
  KwFalse,
  KwIndex, ///< reserved for index hints

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Dot,
  Colon,
  ColonMinus, ///< :-
  Underscore,
  Eq,        ///< =
  FatArrow,  ///< =>
  LeftArrow, ///< <-
  HashBrace, ///< #{
  Bang,
  Lt,
  Gt,
  Le,
  Ge,
  EqEq,
  NotEq,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  AmpAmp,
  PipePipe,
};

/// Returns a human-readable token-kind name for diagnostics.
const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string_view Text; ///< slice of the source buffer
  int64_t IntValue = 0;  ///< for IntLit
  std::string StrValue;  ///< for StrLit (with escapes processed)

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace flix

#endif // FLIX_LANG_TOKEN_H
