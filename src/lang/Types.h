//===- lang/Types.h - FLIX semantic types ----------------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The monomorphic semantic types of the FLIX functional sub-language:
/// Bool, Int, Str, Unit, declared enums, tuples and sets.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_LANG_TYPES_H
#define FLIX_LANG_TYPES_H

#include <string>
#include <vector>

namespace flix {

struct Type {
  enum class Kind {
    Invalid, ///< produced by error recovery; compares equal to anything
    Bool,
    Int,
    Str,
    Unit,
    Enum,
    Tuple,
    Set,
  };
  Kind K = Kind::Invalid;
  std::string EnumName;
  std::vector<Type> Elems; ///< tuple elements, or the set element at [0]

  static Type invalid() { return Type{}; }
  static Type boolean() { return Type{Kind::Bool, {}, {}}; }
  static Type integer() { return Type{Kind::Int, {}, {}}; }
  static Type string() { return Type{Kind::Str, {}, {}}; }
  static Type unit() { return Type{Kind::Unit, {}, {}}; }
  static Type enumeration(std::string Name) {
    return Type{Kind::Enum, std::move(Name), {}};
  }
  static Type tuple(std::vector<Type> Elems) {
    return Type{Kind::Tuple, {}, std::move(Elems)};
  }
  static Type set(Type Elem) { return Type{Kind::Set, {}, {std::move(Elem)}}; }

  bool isInvalid() const { return K == Kind::Invalid; }

  /// Structural equality, with Invalid acting as a wildcard so that one
  /// error does not cascade.
  bool equals(const Type &O) const {
    if (isInvalid() || O.isInvalid())
      return true;
    if (K != O.K || EnumName != O.EnumName ||
        Elems.size() != O.Elems.size())
      return false;
    for (size_t I = 0; I < Elems.size(); ++I)
      if (!Elems[I].equals(O.Elems[I]))
        return false;
    return true;
  }

  std::string str() const {
    switch (K) {
    case Kind::Invalid:
      return "<error>";
    case Kind::Bool:
      return "Bool";
    case Kind::Int:
      return "Int";
    case Kind::Str:
      return "Str";
    case Kind::Unit:
      return "Unit";
    case Kind::Enum:
      return EnumName;
    case Kind::Tuple: {
      std::string Out = "(";
      for (size_t I = 0; I < Elems.size(); ++I) {
        if (I)
          Out += ", ";
        Out += Elems[I].str();
      }
      return Out + ")";
    }
    case Kind::Set:
      return "Set[" + Elems[0].str() + "]";
    }
    return "<error>";
  }
};

} // namespace flix

#endif // FLIX_LANG_TYPES_H
