//===- parallel/Dispatch.h - Sequential/parallel solver dispatch -*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One-liner dispatch between the sequential Solver and the
/// ParallelSolver, keyed on SolverOptions::NumThreads. The two classes
/// expose the same query API, so callers consume the solved instance
/// through a generic callable:
///
/// \code
///   return solveWith(P, Opts, [&](const auto &S, const SolveStats &St) {
///     IfdsResult R;
///     ...read S.table(...), S.tuples(...)...
///     return R;
///   });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_PARALLEL_DISPATCH_H
#define FLIX_PARALLEL_DISPATCH_H

#include "parallel/ParallelSolver.h"

namespace flix {

/// Solves \p P with the engine selected by \p Opts.NumThreads (0 = the
/// sequential legacy Solver, >0 = the work-stealing ParallelSolver) and
/// passes the solved instance plus its stats to \p Consume. \p Consume
/// must accept both solver types (e.g. a generic lambda) and return the
/// same type for both.
template <typename ConsumeFn>
auto solveWith(const Program &P, const SolverOptions &Opts,
               ConsumeFn &&Consume) {
  if (Opts.NumThreads > 0) {
    ParallelSolver S(P, Opts);
    SolveStats St = S.solve();
    return Consume(S, St);
  }
  Solver S(P, Opts);
  SolveStats St = S.solve();
  return Consume(S, St);
}

} // namespace flix

#endif // FLIX_PARALLEL_DISPATCH_H
