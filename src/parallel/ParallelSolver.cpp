//===- parallel/ParallelSolver.cpp - Parallel semi-naive solver -----------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "parallel/ParallelSolver.h"

#include "fixpoint/EvalUtil.h"
#include "fixpoint/Plan.h"
#include "support/Hashing.h"
#include "support/SmallVector.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>
#include <unordered_map>

using namespace flix;

//===----------------------------------------------------------------------===//
// Worker-local evaluation context
//===----------------------------------------------------------------------===//

using flix::eval::BindTrail;
using flix::eval::buildOrder;

namespace {

/// Map key for per-shard ⊔-compaction: one cell of one predicate.
struct CellKey {
  PredId Pred;
  Value Key;
  bool operator==(const CellKey &O) const {
    return Pred == O.Pred && Key == O.Key;
  }
};

struct CellKeyHash {
  size_t operator()(const CellKey &C) const {
    return hashValues(static_cast<uint64_t>(C.Pred), C.Key.hash());
  }
};

// Deque payload encoding. Payloads below SpawnPayloadBit index the
// coordinator's preloaded Tasks vector; payloads with the bit set name a
// sub-task spawned mid-phase: (spawning worker << SpawnWorkerShift) |
// arena slot.
constexpr size_t SpawnPayloadBit = size_t(1) << 63;
constexpr unsigned SpawnWorkerShift = 40;
constexpr size_t SpawnSlotMask = (size_t(1) << SpawnWorkerShift) - 1;

} // namespace

/// Per-worker evaluation state. Mirrors the sequential Solver's rule
/// evaluation (Solver.cpp) exactly, with three differences: tables are
/// read through const access paths only (the snapshot is immutable during
/// an eval phase), derived heads are buffered into per-shard vectors
/// instead of joined in place, and the abort check consults a shared
/// atomic flag so one worker's timeout stops all of them.
struct ParallelSolver::WorkerCtx {
  /// A captured continuation of one in-flight rule evaluation: re-run the
  /// scan at position Pos over row range [Begin, End) — ids from *Rows
  /// (an index bucket, immutable during the phase) or, when Rows is null,
  /// raw table ids — under the bound-env prefix (Env, Bound) that was
  /// live when the owning worker decided to split. Pos is a plan-step
  /// index when compiled plans are active, otherwise an Order position;
  /// the interpretation is uniform within a run because CompilePlans is
  /// fixed for the solve. The plan / evaluation Order is not stored: it
  /// is a pure function of (RuleIdx, Driver), so the executor re-fetches
  /// or rebuilds it exactly as runTask does.
  struct SubTask {
    uint32_t RuleIdx;
    int32_t Driver;
    uint32_t Pos;
    const std::vector<uint32_t> *Rows;
    uint32_t Begin, End;
    std::vector<Value> Env;
    std::vector<uint8_t> Bound;
  };

  /// Per-worker storage for spawned sub-tasks, published to thieves one
  /// atomic slot at a time. The owner fills a SubTask (reusing last
  /// phase's objects, so Env capacity survives), then release-stores its
  /// pointer into Slots[N] *before* pushing the payload onto the deque;
  /// an executor acquire-loads the slot, spinning past the (theoretical)
  /// window in which the deque handed over the payload but the slot store
  /// is not yet visible — the Chase–Lev buffer only synchronizes the
  /// payload value itself, not the pointee. Slots are reset by the
  /// coordinator between phases (a happens-before edge via the pool's
  /// phase mutex), so reuse across phases is race-free. alloc() returning
  /// null (capacity exhausted) makes the caller fall back to inline
  /// iteration — spilling is an optimization, never a correctness need.
  struct SpawnArena {
    static constexpr size_t Capacity = size_t(1) << 16;

    std::unique_ptr<std::atomic<SubTask *>[]> Slots; ///< lazily allocated
    std::vector<std::unique_ptr<SubTask>> Owned;     ///< owner-only
    size_t Filled = 0; ///< owner-only: slots filled this phase

    /// Owner: next sub-task object to fill, or nullptr when the arena is
    /// full. Does not publish.
    SubTask *alloc() {
      if (Filled == Capacity)
        return nullptr;
      if (!Slots) {
        Slots.reset(new std::atomic<SubTask *>[Capacity]);
        for (size_t I = 0; I < Capacity; ++I)
          Slots[I].store(nullptr, std::memory_order_relaxed);
      }
      if (Filled == Owned.size())
        Owned.push_back(std::make_unique<SubTask>());
      return Owned[Filled].get();
    }

    /// Owner: publishes the filled sub-task, returning its slot index.
    size_t publish(SubTask *T) {
      Slots[Filled].store(T, std::memory_order_release);
      return Filled++;
    }

    /// Executor (any worker): the sub-task at \p Slot.
    const SubTask &get(size_t Slot) const {
      SubTask *T;
      while (!(T = Slots[Slot].load(std::memory_order_acquire)))
        std::this_thread::yield(); // publish store racing into view
      return *T;
    }

    /// Coordinator, between phases: recycle. Only the filled prefix needs
    /// nulling, so cost tracks actual spawn volume.
    void reset() {
      for (size_t I = 0; I < Filled; ++I)
        Slots[I].store(nullptr, std::memory_order_relaxed);
      Filled = 0;
    }
  };

  ParallelSolver &S;
  unsigned Id;

  std::vector<Value> Env;
  std::vector<uint8_t> Bound;
  const Task *Cur = nullptr;
  /// Rule/driver of the evaluation in flight (set by both runTask and
  /// runSpawned), from which spawned continuations rebuild their Order.
  uint32_t CurRuleIdx = 0;
  int32_t CurDriver = -1;

  SpawnArena Arena;

  /// Buffered derivations, pre-sharded by hash(pred, key) so the merge
  /// phase can compact each shard without cross-shard synchronization.
  std::vector<std::vector<Deriv>> Buffers;

  /// Persistent per-worker plan executor (cursor storage survives across
  /// tasks, so steady-state evaluation allocates nothing).
  plan::PlanExecutor<WorkerCtx> Exec{*this};

  // Counters drained into SolveStats by the coordinator between phases.
  uint64_t RuleFirings = 0;
  uint64_t FactsDerived = 0;
  uint64_t MergeCollisions = 0;
  uint64_t SpawnedSubtasks = 0;
  uint64_t MaxFanout = 0;
  uint64_t IndexFallbacks = 0;
  uint64_t VmCalls = 0;
  uint64_t InterpFallbacks = 0;

  WorkerCtx(ParallelSolver &S, unsigned Id) : S(S), Id(Id) {
    Buffers.resize(NumMergeShards);
  }

  bool checkAbort() {
    if (S.AbortFlag.load(std::memory_order_relaxed))
      return true;
    if (S.DL.expired()) {
      S.AbortFlag.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  Value callExtern(FnId Fn, std::span<const Value> Args) {
    const ExternFn &D = S.P.functionDecl(Fn);
    const ExternImpl *Impl = &D.Impl;
    bool ViaVm = false;
    if (S.Opts.UseVm) {
      if (D.VmImpl) {
        Impl = &D.VmImpl;
        ViaVm = true;
      } else if (D.InterpOnly) {
        ++InterpFallbacks;
      }
    }
    auto Compute = [&]() -> Value {
      VmCalls += ViaVm;
      if (S.Opts.SerializeExternals) {
        std::lock_guard<std::mutex> Lock(S.ExternMu);
        return (*Impl)(Args);
      }
      return (*Impl)(Args);
    };
    // The memo shard lock never wraps the compute (Plan.h), so memoized
    // calls still honor SerializeExternals on the miss path without
    // nesting ExternMu inside a shard mutex.
    if (S.Memo)
      return S.Memo->call(Fn, Args, Compute);
    return Compute();
  }

  //===--------------------------------------------------------------------===//
  // PlanExecutor engine policy (Plan.h). WorkerCtx is its own engine: the
  // executor's hooks map 1:1 onto the worker's snapshot-read, buffered-
  // write, sub-task-spilling evaluation discipline.
  //===--------------------------------------------------------------------===//

  std::vector<Value> &env() { return Env; }
  std::vector<uint8_t> &bound() { return Bound; }
  ValueFactory &factory() { return S.F; }
  Table &table(PredId P) { return *S.Tables[P]; }
  bool checkRow() { return checkAbort(); }

  /// Buckets are immutable during an eval phase, so no copy is taken (the
  /// scratch vector stays untouched) and the returned pointer is a stable
  /// spill target. A miss means the static index analysis and the plan
  /// compiler disagreed on a mask — counted, fatal under
  /// StrictIndexCoverage, and answered with a full-scan fallback.
  const std::vector<uint32_t> *probeBucket(const plan::Step &St, Value ProjT,
                                           std::vector<uint32_t> &) {
    if (const std::vector<uint32_t> *Bucket =
            S.Tables[St.Pred]->probeExisting(St.Mask, ProjT))
      return Bucket;
    ++IndexFallbacks;
    assert(!S.Opts.StrictIndexCoverage &&
           "probeExisting miss: plan mask not pre-built by the static "
           "index analysis");
    return nullptr;
  }

  /// Intra-rule spilling: identical policy to the legacy walk, with the
  /// plan-step index in SubTask::Pos.
  uint32_t maybeSpill(const plan::RulePlan &, uint32_t StepIdx,
                      const std::vector<uint32_t> *Rows, uint32_t Begin,
                      uint32_t End) {
    return trySpill(StepIdx, Rows, Begin, End);
  }

  void onRow(PredId, uint32_t) {}
  void popRow() {}

  void onDerived(const plan::RulePlan &Pl, Value KeyT, Value LatVal) {
    ++RuleFirings;
    // Same ⊥-drop as the legacy deriveHead: x ⊔ ⊥ = x can never change a
    // cell, so don't ship it through the merge.
    if (!Pl.Head.Relational &&
        LatVal == S.P.predicate(Pl.Head.Pred).Lat->bot())
      return;
    size_t Sh = hashValues(static_cast<uint64_t>(Pl.Head.Pred),
                           KeyT.hash()) &
                (NumMergeShards - 1);
    Buffers[Sh].push_back({Pl.Head.Pred, KeyT, LatVal});
  }

  /// Driver rows of the running task (only reachable from runTask: spawned
  /// continuations never re-enter a Driver step from the top).
  const std::vector<uint32_t> *driverRows(uint32_t &Begin, uint32_t &End) {
    Begin = Cur->Begin;
    End = Cur->End;
    return Cur->Rows;
  }

  void runTask(const Task &T);
  void runSpawned(const SubTask &T);
  uint32_t trySpill(size_t Pos, const std::vector<uint32_t> *Rows,
                    uint32_t Begin, uint32_t End);
  void evalElems(const Rule &R, std::span<const BodyElem *const> Order,
                 size_t Pos);
  void evalAtom(const Rule &R, const BodyAtom &A,
                std::span<const BodyElem *const> Order, size_t Pos);
  void matchAtomRow(const Rule &R, const BodyAtom &A, uint32_t RowId,
                    std::span<const BodyElem *const> Order, size_t Pos);
  void deriveHead(const Rule &R);
  void compactShard(size_t Sh);
  void joinPred(PredId Pred);
};

void ParallelSolver::WorkerCtx::runTask(const Task &T) {
  const Rule &R = S.Prepared[T.RuleIdx];
  Env.assign(R.NumVars, Value());
  Bound.assign(R.NumVars, 0);

  Cur = &T;
  CurRuleIdx = T.RuleIdx;
  CurDriver = T.Driver;
  if (S.Plans) {
    Exec.run(S.Plans->plan(T.RuleIdx, T.Driver));
    Cur = nullptr;
    return;
  }

  SmallVector<const BodyElem *, 8> Order;
  buildOrder(R, T.Driver, Order);
  evalElems(R, std::span<const BodyElem *const>(Order.data(), Order.size()),
            0);
  Cur = nullptr;
}

// Executes a spawned continuation: restore the captured env prefix and
// resume the split scan at its Order position. Runs on whichever worker
// took or stole the payload.
void ParallelSolver::WorkerCtx::runSpawned(const SubTask &T) {
  const Rule &R = S.Prepared[T.RuleIdx];
  Env = T.Env;
  Bound = T.Bound;

  if (S.Plans) {
    // Cur stays null; plan resumption never re-enters the Driver step.
    CurRuleIdx = T.RuleIdx;
    CurDriver = T.Driver;
    Exec.runFrom(S.Plans->plan(T.RuleIdx, T.Driver), T.Pos, T.Rows, T.Begin,
                 T.End);
    return;
  }

  SmallVector<const BodyElem *, 8> Order;
  buildOrder(R, T.Driver, Order);
  std::span<const BodyElem *const> OrderView(Order.data(), Order.size());
  const auto &A = std::get<BodyAtom>(*Order[T.Pos]);

  // Cur stays null: the driver branch of evalAtom is unreachable from
  // here (continuations resume at matchAtomRow, so every deeper evalAtom
  // sees Pos > T.Pos >= 0 or a null Cur).
  CurRuleIdx = T.RuleIdx;
  CurDriver = T.Driver;
  if (T.Rows) {
    for (uint32_t I = trySpill(T.Pos, T.Rows, T.Begin, T.End); I != T.End;
         ++I) {
      if (checkAbort())
        return;
      matchAtomRow(R, A, (*T.Rows)[I], OrderView, T.Pos);
    }
  } else {
    for (uint32_t Id = trySpill(T.Pos, nullptr, T.Begin, T.End); Id != T.End;
         ++Id) {
      if (checkAbort())
        return;
      matchAtomRow(R, A, Id, OrderView, T.Pos);
    }
  }
}

// Splits the scan [Begin, End) at Order position \p Pos into spawned
// sub-tasks of SpillThreshold rows each, keeping the tail inline.
// Returns the start of the inline remainder (== Begin when the range is
// below the threshold, spilling is disabled, or the arena is full).
uint32_t ParallelSolver::WorkerCtx::trySpill(size_t Pos,
                                             const std::vector<uint32_t> *Rows,
                                             uint32_t Begin, uint32_t End) {
  uint32_t Thresh = S.Opts.SpillThreshold;
  if (Thresh == 0)
    return Begin;
  // No point fanning out work that will only observe the abort flag.
  if (S.AbortFlag.load(std::memory_order_relaxed))
    return Begin;
  uint64_t Fanout = 0;
  uint32_t B = Begin;
  while (End - B > Thresh) {
    SubTask *T = Arena.alloc();
    if (!T)
      break; // arena full; iterate the rest inline
    T->RuleIdx = CurRuleIdx;
    T->Driver = CurDriver;
    T->Pos = static_cast<uint32_t>(Pos);
    T->Rows = Rows;
    T->Begin = B;
    T->End = B + Thresh;
    T->Env = Env;
    T->Bound = Bound;
    size_t Slot = Arena.publish(T);
    S.Pool->spawn(Id, SpawnPayloadBit |
                          (size_t(Id) << SpawnWorkerShift) | Slot);
    ++SpawnedSubtasks;
    ++Fanout;
    B += Thresh;
  }
  MaxFanout = std::max(MaxFanout, Fanout);
  return B;
}

void ParallelSolver::WorkerCtx::evalElems(
    const Rule &R, std::span<const BodyElem *const> Order, size_t Pos) {
  if (S.AbortFlag.load(std::memory_order_relaxed))
    return;
  if (Pos == Order.size()) {
    deriveHead(R);
    return;
  }
  const BodyElem &E = *Order[Pos];

  auto termValue = [&](const Term &T) -> Value {
    if (!T.isVar())
      return T.Constant;
    assert(Bound[T.Variable] && "unbound variable; validation missed it");
    return Env[T.Variable];
  };

  if (const auto *Fl = std::get_if<BodyFilter>(&E)) {
    SmallVector<Value, 4> Args;
    for (const Term &T : Fl->Args)
      Args.push_back(termValue(T));
    Value Res =
        callExtern(Fl->Fn, std::span<const Value>(Args.data(), Args.size()));
    assert(Res.isBool() && "filter function must return Bool");
    if (Res.asBool())
      evalElems(R, Order, Pos + 1);
    return;
  }

  if (const auto *B = std::get_if<BodyBinder>(&E)) {
    SmallVector<Value, 4> Args;
    for (const Term &T : B->Args)
      Args.push_back(termValue(T));
    Value Res =
        callExtern(B->Fn, std::span<const Value>(Args.data(), Args.size()));
    assert(Res.isSet() && "binder function must return a Set");
    for (Value Elem : S.F.setElems(Res)) {
      if (checkAbort())
        return;
      BindTrail Trail;
      bool Ok = true;
      auto bindOne = [&](VarId V, Value Val) {
        if (Bound[V]) {
          Ok = Env[V] == Val;
          return;
        }
        Trail.save(V, false, Env[V]);
        Env[V] = Val;
        Bound[V] = 1;
      };
      if (B->Pattern.size() == 1) {
        bindOne(B->Pattern[0], Elem);
      } else {
        if (!Elem.isTuple() ||
            S.F.tupleElems(Elem).size() != B->Pattern.size()) {
          Ok = false;
        } else {
          std::span<const Value> Elems = S.F.tupleElems(Elem);
          for (size_t I = 0; I < B->Pattern.size() && Ok; ++I)
            bindOne(B->Pattern[I], Elems[I]);
        }
      }
      if (Ok)
        evalElems(R, Order, Pos + 1);
      Trail.undo(Env, Bound);
    }
    return;
  }

  evalAtom(R, std::get<BodyAtom>(E), Order, Pos);
}

void ParallelSolver::WorkerCtx::evalAtom(
    const Rule &R, const BodyAtom &A, std::span<const BodyElem *const> Order,
    size_t Pos) {
  const PredicateDecl &D = S.P.predicate(A.Pred);
  const Table &T = *S.Tables[A.Pred];
  unsigned KA = D.keyArity();

  auto termValue = [&](const Term &Tm) -> Value {
    if (!Tm.isVar())
      return Tm.Constant;
    assert(Bound[Tm.Variable] && "unbound variable in ground context");
    return Env[Tm.Variable];
  };

  if (A.Negated) {
    SmallVector<Value, 4> Key;
    for (unsigned I = 0; I < KA; ++I)
      Key.push_back(termValue(A.Terms[I]));
    Value KeyT = S.F.tuple(std::span<const Value>(Key.data(), Key.size()));
    if (!T.lookup(KeyT))
      evalElems(R, Order, Pos + 1);
    return;
  }

  // Driver atom: iterate this task's chunk of the driver rows. (Cur is
  // null in spawned continuations, which never re-enter position 0.)
  if (Pos == 0 && Cur && Cur->Driver >= 0) {
    const std::vector<uint32_t> &Rows = *Cur->Rows;
    for (uint32_t I = Cur->Begin; I != Cur->End; ++I) {
      if (checkAbort())
        return;
      matchAtomRow(R, A, Rows[I], Order, Pos);
    }
    return;
  }

  // Compute the bound-column pattern to pick an access path. Boundness is
  // static for the fixed driver-first order, so every (pred, mask) pair
  // seen here had its index pre-built by prepareStaticIndexes().
  uint64_t Mask = 0;
  SmallVector<Value, 4> Proj;
  for (unsigned I = 0; I < KA; ++I) {
    const Term &Tm = A.Terms[I];
    if (!Tm.isVar()) {
      Mask |= uint64_t(1) << I;
      Proj.push_back(Tm.Constant);
    } else if (Bound[Tm.Variable]) {
      Mask |= uint64_t(1) << I;
      Proj.push_back(Env[Tm.Variable]);
    }
  }
  uint64_t Full = KA == 0 ? 0 : (uint64_t(1) << KA) - 1;

  if (Mask == Full) {
    Value KeyT = S.F.tuple(std::span<const Value>(Proj.data(), Proj.size()));
    uint32_t Id = T.lookupRow(KeyT);
    if (Id != Table::NoRow)
      matchAtomRow(R, A, Id, Order, Pos);
    return;
  }

  if (Mask != 0 && S.Opts.UseIndexes) {
    Value ProjT = S.F.tuple(std::span<const Value>(Proj.data(), Proj.size()));
    // Unlike the sequential solver there is no need to copy the bucket:
    // tables are immutable during an eval phase, so the bucket cannot grow
    // under us — which also makes it a stable target for spawned
    // sub-tasks covering its tail.
    if (const std::vector<uint32_t> *Bucket = T.probeExisting(Mask, ProjT)) {
      uint32_t End = static_cast<uint32_t>(Bucket->size());
      for (uint32_t I = trySpill(Pos, Bucket, 0, End); I != End; ++I) {
        if (checkAbort())
          return;
        matchAtomRow(R, A, (*Bucket)[I], Order, Pos);
      }
      return;
    }
    // No index for this mask: the static analysis in
    // computeWantedIndexes() missed an access path. Count the fallback
    // (SolveStats::IndexFallbacks) and scan; StrictIndexCoverage turns
    // this into a hard failure in debug builds.
    ++IndexFallbacks;
    assert(!S.Opts.StrictIndexCoverage &&
           "probeExisting miss: (pred, mask) not pre-built by the static "
           "index analysis");
  }

  uint32_t End = static_cast<uint32_t>(T.size());
  for (uint32_t Id = trySpill(Pos, nullptr, 0, End); Id != End; ++Id) {
    if (checkAbort())
      return;
    matchAtomRow(R, A, Id, Order, Pos);
  }
}

void ParallelSolver::WorkerCtx::matchAtomRow(
    const Rule &R, const BodyAtom &A, uint32_t RowId,
    std::span<const BodyElem *const> Order, size_t Pos) {
  const PredicateDecl &D = S.P.predicate(A.Pred);
  const Table &T = *S.Tables[A.Pred];
  unsigned KA = D.keyArity();

  BindTrail Trail;
  bool Ok = true;
  {
    std::span<const Value> KeyElems = T.rowKey(RowId);
    for (unsigned I = 0; I < KA && Ok; ++I) {
      const Term &Tm = A.Terms[I];
      if (!Tm.isVar()) {
        Ok = Tm.Constant == KeyElems[I];
        continue;
      }
      if (Bound[Tm.Variable]) {
        Ok = Env[Tm.Variable] == KeyElems[I];
        continue;
      }
      Trail.save(Tm.Variable, false, Env[Tm.Variable]);
      Env[Tm.Variable] = KeyElems[I];
      Bound[Tm.Variable] = 1;
    }
  }

  if (Ok && !D.isRelational()) {
    const Term &Lt = A.Terms[KA];
    Value RowVal = T.row(RowId).Lat;
    if (!Lt.isVar()) {
      Ok = D.Lat->leq(Lt.Constant, RowVal);
    } else if (!Bound[Lt.Variable]) {
      Trail.save(Lt.Variable, false, Env[Lt.Variable]);
      Env[Lt.Variable] = RowVal;
      Bound[Lt.Variable] = 1;
    } else {
      Value G = D.Lat->glb(Env[Lt.Variable], RowVal);
      Trail.save(Lt.Variable, true, Env[Lt.Variable]);
      Env[Lt.Variable] = G;
    }
  }

  if (Ok)
    evalElems(R, Order, Pos + 1);
  Trail.undo(Env, Bound);
}

void ParallelSolver::WorkerCtx::deriveHead(const Rule &R) {
  const HeadAtom &H = R.Head;
  const PredicateDecl &D = S.P.predicate(H.Pred);

  auto termValue = [&](const Term &Tm) -> Value {
    if (!Tm.isVar())
      return Tm.Constant;
    assert(Bound[Tm.Variable] && "unbound head variable");
    return Env[Tm.Variable];
  };

  SmallVector<Value, 4> Key;
  for (const Term &Tm : H.KeyTerms)
    Key.push_back(termValue(Tm));

  Value LatVal;
  if (H.LastFn) {
    SmallVector<Value, 4> Args;
    for (const Term &Tm : H.FnArgs)
      Args.push_back(termValue(Tm));
    LatVal = callExtern(*H.LastFn,
                        std::span<const Value>(Args.data(), Args.size()));
  } else {
    LatVal = termValue(H.LastTerm);
  }

  if (D.isRelational()) {
    Key.push_back(LatVal);
    LatVal = S.F.boolean(true);
  }

  ++RuleFirings;
  // ⊥ derivations can never change a cell (x ⊔ ⊥ = x, and absent cells
  // are implicitly ⊥), so drop them here instead of shipping them through
  // the merge — the sequential Table::join does the same.
  if (!D.isRelational() && LatVal == D.Lat->bot())
    return;
  Value KeyT = S.F.tuple(std::span<const Value>(Key.data(), Key.size()));
  size_t Sh = hashValues(static_cast<uint64_t>(H.Pred), KeyT.hash()) &
              (NumMergeShards - 1);
  Buffers[Sh].push_back({H.Pred, KeyT, LatVal});
}

// Merge phase A: fold all workers' buffered derivations for shard \p Sh
// into one derivation per cell via ⊔. Shards partition the cell space, so
// tasks write disjoint CompactedShards entries.
void ParallelSolver::WorkerCtx::compactShard(size_t Sh) {
  std::vector<Deriv> &Out = S.CompactedShards[Sh];
  std::unordered_map<CellKey, size_t, CellKeyHash> Cells;
  uint64_t Seen = 0;
  for (const std::unique_ptr<WorkerCtx> &W : S.Workers) {
    for (const Deriv &D : W->Buffers[Sh]) {
      // A timed-out run's model is discarded, so aborting mid-merge is
      // safe; without this check a derivation-heavy round could overshoot
      // the deadline by the whole merge.
      if ((++Seen & 0x3FF) == 0 && checkAbort())
        return;
      auto [It, IsNew] = Cells.try_emplace(CellKey{D.Pred, D.Key},
                                           Out.size());
      if (IsNew) {
        Out.push_back(D);
        continue;
      }
      Deriv &E = Out[It->second];
      E.Lat = S.Tables[D.Pred]->lattice().lub(E.Lat, D.Lat);
      ++MergeCollisions;
    }
  }
}

// Merge phase B: join one predicate's compacted derivations into its head
// table and record the strictly-increased rows as the next delta. One
// task per predicate, so table mutation is single-writer.
void ParallelSolver::WorkerCtx::joinPred(PredId Pred) {
  Table &T = *S.Tables[Pred];
  std::vector<uint32_t> &ND = S.NextDelta[Pred];
  uint64_t Seen = 0;
  for (const Deriv &D : S.PendingByPred[Pred]) {
    if ((++Seen & 0x3FF) == 0 && checkAbort())
      break; // partial joins are fine: the run reports Timeout
    Table::JoinResult JR = T.join(D.Key, D.Lat);
    if (JR.Changed) {
      ++FactsDerived;
      ND.push_back(JR.RowId);
    }
  }
  // Compaction left at most one derivation per cell, so the ids are
  // unique; sort them so delta iteration order is deterministic.
  std::sort(ND.begin(), ND.end());
}

//===----------------------------------------------------------------------===//
// Coordinator
//===----------------------------------------------------------------------===//

ParallelSolver::ParallelSolver(const Program &P, SolverOptions Opts)
    : P(P), Opts(Opts), F(P.factory()),
      RelLattice(std::make_unique<BoolLattice>(F)),
      NumWorkers(std::max(1u, Opts.NumThreads)) {
  Tables.reserve(P.predicates().size());
  for (const PredicateDecl &D : P.predicates()) {
    // Key arity > 63 is rejected by Program::validate() at solve() start
    // (a diagnostic, not an assert), so constructing the table is fine.
    const Lattice &L = D.isRelational() ? *RelLattice : *D.Lat;
    Tables.push_back(std::make_unique<Table>(D.keyArity(), L, F));
  }
  Prepared.reserve(P.rules().size());
  for (const Rule &R : P.rules())
    Prepared.push_back(Opts.ReorderBody ? reorderRuleGreedy(R) : R);
  if (Opts.CompilePlans)
    Plans = std::make_unique<plan::PlanLibrary>(P, Prepared, Opts.UseIndexes);
  if (Opts.EnableMemo)
    Memo = std::make_unique<plan::ExternMemo>();
  Delta.resize(P.predicates().size());
  NextDelta.resize(P.predicates().size());
  AllRows.resize(P.predicates().size());
  PendingByPred.resize(P.predicates().size());
  CompactedShards.resize(NumMergeShards);
  // Static indexes are built pool-parallel inside solve(), after fact
  // loading — the tables are still empty here.
  Pool = std::make_unique<ThreadPool>(NumWorkers);
  Workers.reserve(NumWorkers);
  for (unsigned W = 0; W < NumWorkers; ++W)
    Workers.push_back(std::make_unique<WorkerCtx>(*this, W));
}

ParallelSolver::~ParallelSolver() = default;

/// Workers never create indexes (probeExisting is read-only), so every
/// index they could profit from must exist before the first eval phase.
/// With compiled plans the wanted masks are read straight off the plans'
/// Probe steps — covering whatever body order the planner chose, now or
/// after a re-plan. Without plans, the fixed driver-first body order makes
/// the set of bound variables at each atom position statically known, so
/// simulate every (rule, driver) order once and collect the resulting
/// (pred, mask) pairs. The sequential solver instead builds these same
/// indexes lazily on first probe.
std::vector<std::pair<PredId, uint64_t>>
ParallelSolver::computeWantedIndexes() const {
  if (!Opts.UseIndexes)
    return {};
  std::set<std::pair<PredId, uint64_t>> Wanted;
  if (Plans) {
    std::vector<std::vector<uint64_t>> MasksByPred(Tables.size());
    Plans->wantedIndexes(MasksByPred);
    for (PredId Pred = 0; Pred < MasksByPred.size(); ++Pred)
      for (uint64_t Mask : MasksByPred[Pred])
        Wanted.insert({Pred, Mask});
    for (auto [Pred, Mask] : P.indexHints())
      Wanted.insert({Pred, Mask});
    return {Wanted.begin(), Wanted.end()};
  }
  for (const Rule &R : Prepared) {
    SmallVector<int, 8> Drivers;
    Drivers.push_back(-1);
    for (size_t I = 0; I < R.Body.size(); ++I)
      if (const auto *A = std::get_if<BodyAtom>(&R.Body[I]);
          A && !A->Negated)
        Drivers.push_back(static_cast<int>(I));

    for (int Driver : Drivers) {
      std::vector<uint8_t> BoundVar(R.NumVars, 0);
      SmallVector<const BodyElem *, 8> Order;
      if (Driver >= 0)
        Order.push_back(&R.Body[Driver]);
      for (size_t I = 0; I < R.Body.size(); ++I)
        if (static_cast<int>(I) != Driver)
          Order.push_back(&R.Body[I]);

      for (size_t Pos = 0; Pos < Order.size(); ++Pos) {
        const BodyElem &E = *Order[Pos];
        if (const auto *A = std::get_if<BodyAtom>(&E)) {
          if (A->Negated)
            continue; // negated atoms use the primary map
          unsigned KA = P.predicate(A->Pred).keyArity();
          if (!(Pos == 0 && Driver >= 0)) {
            uint64_t Mask = 0;
            for (unsigned I = 0; I < KA; ++I) {
              const Term &Tm = A->Terms[I];
              if (!Tm.isVar() || BoundVar[Tm.Variable])
                Mask |= uint64_t(1) << I;
            }
            uint64_t Full = KA == 0 ? 0 : (uint64_t(1) << KA) - 1;
            if (Mask != 0 && Mask != Full)
              Wanted.insert({A->Pred, Mask});
          }
          for (const Term &Tm : A->Terms)
            if (Tm.isVar())
              BoundVar[Tm.Variable] = 1;
        } else if (const auto *B = std::get_if<BodyBinder>(&E)) {
          for (VarId V : B->Pattern)
            BoundVar[V] = 1;
        }
        // Filters bind nothing.
      }
    }
  }
  for (auto [Pred, Mask] : P.indexHints())
    Wanted.insert({Pred, Mask});
  return {Wanted.begin(), Wanted.end()};
}

/// Builds the wanted indexes through the pool in two phases: (1) one task
/// per (pred, row-chunk) scans its chunk once and fills per-mask partial
/// buckets; (2) one task per (pred, mask) concatenates that mask's
/// partials (ordered by row range, so buckets stay ascending) into the
/// pre-created Index slot. Distinct (pred, mask) merges touch disjoint
/// Index objects, so phase 2 needs no locking; empty tables only get
/// their (empty) slots, which Table::join then maintains incrementally as
/// rows arrive from merge phases.
void ParallelSolver::buildStaticIndexes() {
  std::vector<std::pair<PredId, uint64_t>> Wanted = computeWantedIndexes();
  // On a repeat call (after a re-plan) most indexes already exist —
  // building one twice would corrupt it, so keep only the missing masks.
  std::erase_if(Wanted, [&](const std::pair<PredId, uint64_t> &W) {
    return Tables[W.first]->hasIndex(W.second);
  });
  if (Wanted.empty())
    return;

  struct BuildJob {
    PredId Pred;
    std::vector<uint64_t> Masks;
    uint32_t NumChunks, ChunkSize;
    /// Partials[MaskIdx][Chunk]; rows [Chunk*ChunkSize, ...+ChunkSize).
    std::vector<std::vector<Table::PartialIndex>> Partials;
  };
  std::vector<BuildJob> Jobs;
  for (size_t I = 0; I < Wanted.size();) {
    PredId Pred = Wanted[I].first;
    BuildJob J{Pred, {}, 0, 0, {}};
    for (; I < Wanted.size() && Wanted[I].first == Pred; ++I)
      J.Masks.push_back(Wanted[I].second);
    Tables[Pred]->reserveIndexSlots(
        std::span<const uint64_t>(J.Masks.data(), J.Masks.size()));
    uint32_t NumRows = static_cast<uint32_t>(Tables[Pred]->size());
    if (NumRows == 0)
      continue; // slots exist; nothing to scan
    // One chunk per worker unless the table is too small to amortize the
    // per-task overhead.
    constexpr uint32_t MinChunk = 1024;
    J.NumChunks = std::min<uint32_t>(
        NumWorkers, std::max<uint32_t>(1, NumRows / MinChunk));
    J.ChunkSize = (NumRows + J.NumChunks - 1) / J.NumChunks;
    J.Partials.assign(J.Masks.size(),
                      std::vector<Table::PartialIndex>(J.NumChunks));
    Jobs.push_back(std::move(J));
  }

  // Phase 1: (job, chunk) scan tasks.
  std::vector<std::pair<uint32_t, uint32_t>> Scans;
  for (uint32_t JI = 0; JI < Jobs.size(); ++JI)
    for (uint32_t C = 0; C < Jobs[JI].NumChunks; ++C)
      Scans.push_back({JI, C});
  Pool->run(Scans.size(), [&](size_t I, unsigned) {
    auto [JI, C] = Scans[I];
    BuildJob &J = Jobs[JI];
    const Table &T = *Tables[J.Pred];
    uint32_t Begin = C * J.ChunkSize;
    uint32_t End = std::min<uint32_t>(Begin + J.ChunkSize,
                                      static_cast<uint32_t>(T.size()));
    for (size_t M = 0; M < J.Masks.size(); ++M)
      T.buildPartialIndex(J.Masks[M], Begin, End, J.Partials[M][C]);
  });

  // Phase 2: (job, mask) merge tasks.
  std::vector<std::pair<uint32_t, uint32_t>> Merges;
  for (uint32_t JI = 0; JI < Jobs.size(); ++JI)
    for (uint32_t M = 0; M < Jobs[JI].Masks.size(); ++M)
      Merges.push_back({JI, M});
  Pool->run(Merges.size(), [&](size_t I, unsigned) {
    auto [JI, M] = Merges[I];
    BuildJob &J = Jobs[JI];
    Tables[J.Pred]->buildIndexFromPartials(
        J.Masks[M],
        std::span<Table::PartialIndex>(J.Partials[M].data(),
                                       J.Partials[M].size()));
  });

  Stats.IndexBuildTasks += Scans.size() + Merges.size();
}

bool ParallelSolver::replanPlans(double Threshold, bool CountEvents) {
  if (!Plans || !Opts.CostBasedPlans)
    return false;
  plan::StatsVec St;
  plan::gatherStats({Tables.data(), Tables.size()}, St);
  plan::PlanLibrary::ReplanResult R = Plans->replanFromStats(St, Threshold);
  if (CountEvents) {
    Stats.ReplanEvents += R.Replanned;
    Stats.EstimatedVsActualRows += R.RowsDivergence;
  }
  Stats.CostBasedPlans = Plans->costBasedPlans();
  return R.Replanned != 0;
}

void ParallelSolver::buildRound0Tasks(const std::vector<uint32_t> &RuleIds) {
  Tasks.clear();
  for (uint32_t RI : RuleIds) {
    const Rule &R = Prepared[RI];
    const BodyAtom *A =
        R.Body.empty() ? nullptr : std::get_if<BodyAtom>(&R.Body[0]);
    if (A && !A->Negated) {
      // Leading positive atom: drive it over all current rows, chunked.
      // Driver-first with the first atom is exactly left-to-right order.
      std::vector<uint32_t> &Rows = AllRows[A->Pred];
      Rows.resize(Tables[A->Pred]->size());
      std::iota(Rows.begin(), Rows.end(), 0u);
      addChunkedTasks(RI, 0, Rows);
    } else {
      Tasks.push_back({RI, -1, 0, 0, nullptr});
    }
  }
}

void ParallelSolver::buildDeltaTasks(const std::vector<uint32_t> &RuleIds) {
  Tasks.clear();
  for (uint32_t RI : RuleIds) {
    const Rule &R = Prepared[RI];
    for (size_t BI = 0; BI < R.Body.size(); ++BI) {
      const auto *A = std::get_if<BodyAtom>(&R.Body[BI]);
      if (!A || A->Negated)
        continue;
      if (Delta[A->Pred].empty())
        continue;
      addChunkedTasks(RI, static_cast<int32_t>(BI), Delta[A->Pred]);
    }
  }
}

void ParallelSolver::addChunkedTasks(uint32_t RuleIdx, int32_t Driver,
                                     const std::vector<uint32_t> &Rows) {
  size_t N = Rows.size();
  if (N == 0)
    return;
  // ~8 chunks per worker balances steal granularity against per-task
  // overhead; small drivers stay in one task.
  size_t ChunkSize =
      std::max<size_t>(16, (N + NumWorkers * 8 - 1) / (NumWorkers * 8));
  for (size_t B = 0; B < N; B += ChunkSize)
    Tasks.push_back({RuleIdx, Driver, static_cast<uint32_t>(B),
                     static_cast<uint32_t>(std::min(B + ChunkSize, N)),
                     &Rows});
}

void ParallelSolver::runEvalPhase() {
  Stats.ParallelTasks += Tasks.size();
  // Recycle the spawn arenas (coordinator-only; the pool's phase mutex
  // publishes the reset to the workers).
  for (const std::unique_ptr<WorkerCtx> &W : Workers)
    W->Arena.reset();
  Pool->run(Tasks.size(), [this](size_t Payload, unsigned W) {
    if (Payload & SpawnPayloadBit) {
      unsigned Owner =
          static_cast<unsigned>((Payload & ~SpawnPayloadBit) >>
                                SpawnWorkerShift);
      Workers[W]->runSpawned(
          Workers[Owner]->Arena.get(Payload & SpawnSlotMask));
    } else {
      Workers[W]->runTask(Tasks[Payload]);
    }
  });
}

void ParallelSolver::runMergePhase() {
  // Phase A: per-shard ⊔-compaction of the workers' buffers.
  Pool->run(NumMergeShards,
            [this](size_t Sh, unsigned W) { Workers[W]->compactShard(Sh); });
  for (const std::unique_ptr<WorkerCtx> &W : Workers)
    for (std::vector<Deriv> &B : W->Buffers)
      B.clear();

  // Regroup the shard outputs by head predicate (cheap: one move per
  // derivation), then phase B: one parallel join task per predicate.
  SmallVector<PredId, 16> MergePreds;
  for (std::vector<Deriv> &Shard : CompactedShards) {
    for (const Deriv &D : Shard) {
      if (PendingByPred[D.Pred].empty())
        MergePreds.push_back(D.Pred);
      PendingByPred[D.Pred].push_back(D);
    }
    Shard.clear();
  }
  Pool->run(MergePreds.size(), [this, &MergePreds](size_t I, unsigned W) {
    Workers[W]->joinPred(MergePreds[I]);
  });
  for (PredId Pred : MergePreds)
    PendingByPred[Pred].clear();
}

SolveStats ParallelSolver::solve() {
  assert(!Solved && "solve() may be called once");
  Solved = true;

  auto Start = std::chrono::steady_clock::now();
  DL = Deadline::after(Opts.TimeLimitSeconds);
  uint64_t IcHitsAtStart = P.vmIcHits();

  auto finish = [&]() -> SolveStats & {
    Stats.VmInlineCacheHits = P.vmIcHits() - IcHitsAtStart;
    Stats.VmInlinedCalls = P.vmPipelineCounters().InlinedCalls;
    Stats.VmSuperwordHits = P.vmPipelineCounters().SuperwordHits;
    Stats.VmPassesRemovedInsns = P.vmPipelineCounters().RemovedInsns;
    for (const std::unique_ptr<WorkerCtx> &W : Workers) {
      Stats.RuleFirings += W->RuleFirings;
      Stats.FactsDerived += W->FactsDerived;
      Stats.MergeCollisions += W->MergeCollisions;
      Stats.SpawnedSubtasks += W->SpawnedSubtasks;
      Stats.MaxFanout = std::max(Stats.MaxFanout, W->MaxFanout);
      Stats.IndexFallbacks += W->IndexFallbacks;
      Stats.VmCalls += W->VmCalls;
      Stats.InterpFallbacks += W->InterpFallbacks;
      W->RuleFirings = W->FactsDerived = W->MergeCollisions = 0;
      W->SpawnedSubtasks = W->MaxFanout = W->IndexFallbacks = 0;
      W->VmCalls = W->InterpFallbacks = 0;
    }
    Stats.ParallelSteals = Pool->steals();
    Stats.Seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      Start)
            .count();
    Stats.MemoryBytes = F.memoryBytes();
    for (const std::unique_ptr<Table> &T : Tables)
      Stats.MemoryBytes += T->memoryBytes();
    if (Plans)
      Stats.PlanSteps = Plans->totalSteps();
    if (Memo) {
      Stats.MemoHits = Memo->hits();
      Stats.MemoMisses = Memo->misses();
      Stats.MemoryBytes += Memo->memoryBytes();
    }
    return Stats;
  };

  if (Opts.TrackProvenance) {
    Stats.St = SolveStats::Status::Error;
    Stats.Error = "provenance tracking is not supported by the parallel "
                  "solver; use the sequential Solver";
    return finish();
  }

  if (std::optional<std::string> Err = P.validate()) {
    Stats.St = SolveStats::Status::Error;
    Stats.Error = *Err;
    return finish();
  }

  StratifyResult SR = stratify(P);
  if (!SR.ok()) {
    Stats.St = SolveStats::Status::Error;
    Stats.Error = SR.Error;
    return finish();
  }
  const Stratification &St = *SR.Strat;

  // From here on values are interned from worker threads; flip the
  // factory into lock-sharded mode (a one-way latch, so concurrent
  // solvers sharing this factory may race to set it).
  F.enableConcurrentInterning();

  for (const Fact &Fa : P.facts()) {
    Value KeyT =
        F.tuple(std::span<const Value>(Fa.Key.data(), Fa.Key.size()));
    Tables[Fa.Pred]->join(KeyT, Fa.LatValue);
  }

  // Initial cost-based order choice: plans were compiled against empty
  // tables, so the first useful statistics (fact counts) exist only now.
  // Must precede buildStaticIndexes so the wanted masks reflect the
  // chosen orders. Threshold 1.0 adopts any strict improvement; not
  // counted as an adaptive replan.
  replanPlans(1.0, /*CountEvents=*/false);

  // Fact loading above ran with no secondary indexes to maintain; build
  // them all now, in parallel through the pool.
  buildStaticIndexes();

  // Note: Strategy::Naive is answered with semi-naive evaluation — the
  // minimal model is identical (the naive strategy exists only as a
  // sequential ablation baseline).
  bool Aborted = false;
  for (uint32_t S = 0; S < St.numStrata() && !Aborted; ++S) {
    const std::vector<uint32_t> &RuleIds = St.RulesByStratum[S];
    if (RuleIds.empty())
      continue;

    // Round 0: evaluate every rule of the stratum against the snapshot.
    for (std::vector<uint32_t> &ND : NextDelta)
      ND.clear();
    buildRound0Tasks(RuleIds);
    runEvalPhase();
    runMergePhase();
    ++Stats.Iterations;

    // Delta rounds: drive each rule through each positive body atom whose
    // predicate changed last round (§3.7).
    while (!(Aborted = AbortFlag.load(std::memory_order_relaxed))) {
      bool AnyDelta = false;
      for (size_t PI = 0; PI < NextDelta.size(); ++PI) {
        Delta[PI] = std::move(NextDelta[PI]);
        NextDelta[PI].clear();
        AnyDelta |= !Delta[PI].empty();
      }
      if (!AnyDelta)
        break;
      if (Opts.MaxIterations && Stats.Iterations >= Opts.MaxIterations) {
        Stats.St = SolveStats::Status::IterationLimit;
        return finish();
      }
      // Adaptive re-plan at the round boundary: the coordinator runs this
      // between phases, when no worker holds a plan pointer (SubTask
      // continuations store only (rule, driver, pos) and spawn arenas are
      // reset after each eval phase). Workers probe via probeExisting, so
      // any newly wanted mask must be built before the next phase.
      if (Opts.ReplanThreshold > 0 &&
          replanPlans(Opts.ReplanThreshold, /*CountEvents=*/true))
        buildStaticIndexes();
      buildDeltaTasks(RuleIds);
      runEvalPhase();
      runMergePhase();
      ++Stats.Iterations;
    }
  }

  if (Aborted || AbortFlag.load(std::memory_order_relaxed))
    Stats.St = SolveStats::Status::Timeout;
  return finish();
}

//===----------------------------------------------------------------------===//
// Query API (mirrors Solver)
//===----------------------------------------------------------------------===//

bool ParallelSolver::contains(PredId Pred,
                              std::span<const Value> Tuple) const {
  assert(P.predicate(Pred).isRelational() && "contains() is for relations");
  Value KeyT = F.tuple(Tuple);
  return Tables[Pred]->lookup(KeyT) != nullptr;
}

Value ParallelSolver::latValue(PredId Pred,
                               std::span<const Value> Key) const {
  const PredicateDecl &D = P.predicate(Pred);
  assert(!D.isRelational() && "latValue() is for lattice predicates");
  Value KeyT = F.tuple(Key);
  const Value *V = Tables[Pred]->lookup(KeyT);
  return V ? *V : D.Lat->bot();
}

std::vector<std::vector<Value>> ParallelSolver::tuples(PredId Pred) const {
  const PredicateDecl &D = P.predicate(Pred);
  std::vector<std::vector<Value>> Out;
  const Table &T = *Tables[Pred];
  Out.reserve(T.size());
  for (const Table::Row &R : T.rows()) {
    std::span<const Value> Key = F.tupleElems(R.Key);
    std::vector<Value> Tup(Key.begin(), Key.end());
    if (!D.isRelational())
      Tup.push_back(R.Lat);
    Out.push_back(std::move(Tup));
  }
  return Out;
}
