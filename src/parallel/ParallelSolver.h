//===- parallel/ParallelSolver.h - Parallel semi-naive solver -*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A parallel fixed-point solver computing the same minimal model as the
/// sequential Solver (§3). Parallelism exploits the paper's central
/// soundness argument directly: ⊔ is commutative and associative, so the
/// immediate-consequence operator is confluent and rule instances may fire
/// in any order — including simultaneously — without changing the least
/// fixed point (§3.4).
///
/// Evaluation proceeds in semi-naive rounds (§3.7). Each round:
///
///   1. *Eval phase.* The round's work is partitioned into
///      (rule, driver atom, delta-row chunk) tasks distributed over a
///      work-stealing ThreadPool. Workers evaluate rule bodies against the
///      tables as an immutable snapshot (read-only probes, no in-place
///      update) and accumulate derivations (PredId, key, lattice value)
///      in thread-local buffers, pre-sharded by hash(pred, key). When one
///      atom's index bucket or full scan exceeds
///      SolverOptions::SpillThreshold rows, the worker captures its
///      bound-env prefix into a *sub-task* continuation and spawns the
///      tail onto its deque, so a single hot driver row's fan-out is
///      itself stolen and split across workers (intra-rule parallelism;
///      counted in SolveStats::SpawnedSubtasks / MaxFanout).
///   2. *Merge phase.* A barrier, then two parallel sub-phases: per-shard
///      ⊔-compaction of same-cell derivations (counted as MergeCollisions),
///      followed by per-predicate joins into the head tables, producing
///      the next delta.
///
/// Unlike the sequential solver's in-place immediate update, derivations
/// made during a round become visible only at the round barrier; by
/// confluence both schedules converge to the identical minimal model, and
/// because values are hash-consed in one shared factory the final model is
/// *value-identical* (same handles) for any thread count.
///
/// Limits: provenance tracking is not supported (solve() reports an
/// error), and Strategy::Naive falls back to semi-naive — same model,
/// different iteration counts.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_PARALLEL_PARALLELSOLVER_H
#define FLIX_PARALLEL_PARALLELSOLVER_H

#include "fixpoint/Solver.h"
#include "parallel/ThreadPool.h"

namespace flix {

/// Parallel counterpart of Solver. Query API mirrors Solver so callers can
/// be generic over the two. SolverOptions::NumThreads picks the worker
/// count (0 is treated as 1 here; callers normally dispatch 0 to the
/// sequential Solver instead). SolverOptions::SerializeExternals guards
/// non-thread-safe external functions.
class ParallelSolver {
public:
  explicit ParallelSolver(const Program &P,
                          SolverOptions Opts = SolverOptions());
  ParallelSolver(const ParallelSolver &) = delete;
  ParallelSolver &operator=(const ParallelSolver &) = delete;
  ~ParallelSolver();

  /// Runs to fixpoint (or to a limit). May be called once.
  SolveStats solve();

  unsigned numWorkers() const { return NumWorkers; }

  /// The table of predicate \p P (valid after solve()).
  const Table &table(PredId P) const { return *Tables[P]; }

  /// True if the relational tuple is in the minimal model.
  bool contains(PredId P, std::span<const Value> Tuple) const;
  bool contains(PredId P, std::initializer_list<Value> Tuple) const {
    return contains(P, std::span<const Value>(Tuple.begin(), Tuple.size()));
  }

  /// The lattice element of cell (P, Key); ⊥ if the cell is absent.
  Value latValue(PredId P, std::span<const Value> Key) const;
  Value latValue(PredId P, std::initializer_list<Value> Key) const {
    return latValue(P, std::span<const Value>(Key.begin(), Key.size()));
  }

  /// Materializes all rows of \p P as (key..., latValue) tuples, in
  /// insertion order. For relational predicates the Bool value is omitted.
  std::vector<std::vector<Value>> tuples(PredId P) const;

private:
  /// One buffered derivation: cell (Pred, Key) gains lattice value Lat.
  struct Deriv {
    PredId Pred;
    Value Key; ///< interned key tuple
    Value Lat;
  };

  /// One unit of eval-phase work: evaluate rule RuleIdx with body element
  /// Driver instantiated from Rows[Begin, End) (Driver < 0: plain
  /// left-to-right evaluation, Rows unused).
  struct Task {
    uint32_t RuleIdx;
    int32_t Driver;
    uint32_t Begin, End;
    const std::vector<uint32_t> *Rows;
  };

  struct WorkerCtx;

  /// Collects the (pred, mask) access paths the workers will probe (plus
  /// index hints). With compiled plans the masks are read off the plans'
  /// own Probe steps — order-independent by construction, so any body
  /// order the cost-based planner picks is covered. Without plans, falls
  /// back to simulating every (rule, driver) driver-first order.
  std::vector<std::pair<PredId, uint64_t>> computeWantedIndexes() const;
  /// Pre-builds those indexes through the pool: per-(pred, row-chunk)
  /// partial scans, then per-(pred, mask) merges via
  /// Table::buildIndexFromPartials. Runs in solve() after fact loading
  /// (the tables are empty before that), replacing the old sequential
  /// constructor-time build. Safe to call again after a re-plan: indexes
  /// that already exist are skipped, only newly wanted masks are built.
  void buildStaticIndexes();
  /// Re-chooses join orders from current table statistics (no-op unless
  /// CostBasedPlans). Coordinator-only: must run between phases, when no
  /// worker holds a plan pointer. Returns true if any plan changed, in
  /// which case the caller must re-run buildStaticIndexes() so workers'
  /// probeExisting finds every newly wanted mask.
  bool replanPlans(double Threshold, bool CountEvents);
  void buildRound0Tasks(const std::vector<uint32_t> &RuleIds);
  void buildDeltaTasks(const std::vector<uint32_t> &RuleIds);
  void addChunkedTasks(uint32_t RuleIdx, int32_t Driver,
                       const std::vector<uint32_t> &Rows);
  void runEvalPhase();
  void runMergePhase();

  const Program &P;
  SolverOptions Opts;
  ValueFactory &F;
  std::unique_ptr<BoolLattice> RelLattice;
  std::vector<std::unique_ptr<Table>> Tables;
  std::vector<Rule> Prepared; ///< rules, possibly reordered

  /// Compiled join plans (SolverOptions::CompilePlans): workers run the
  /// shared non-recursive PlanExecutor instead of the recursive
  /// evalElems/evalAtom walk, with sub-task spilling mapped onto the
  /// executor's maybeSpill hook. Null when plans are disabled.
  std::unique_ptr<plan::PlanLibrary> Plans;
  /// Shared memo cache for pure external functions
  /// (SolverOptions::EnableMemo); all workers' extern calls route through
  /// it. Null when memoization is disabled.
  std::unique_ptr<plan::ExternMemo> Memo;

  unsigned NumWorkers;
  /// Merge shards: cell (pred, key) is owned by shard
  /// hash(pred, key) mod NumMergeShards. A multiple of plausible worker
  /// counts so compaction load-balances.
  static constexpr size_t NumMergeShards = 64;

  std::unique_ptr<ThreadPool> Pool;
  std::vector<std::unique_ptr<WorkerCtx>> Workers;

  // Phase staging (coordinator-owned; immutable during phases).
  std::vector<Task> Tasks;
  std::vector<std::vector<uint32_t>> AllRows; ///< per-pred [0, size) ids
  std::vector<std::vector<Deriv>> CompactedShards; ///< merge phase A out
  std::vector<std::vector<Deriv>> PendingByPred;   ///< merge phase B in

  // Delta bookkeeping (per predicate, sorted row ids).
  std::vector<std::vector<uint32_t>> Delta;
  std::vector<std::vector<uint32_t>> NextDelta;

  // Run state.
  SolveStats Stats;
  bool Solved = false;
  std::atomic<bool> AbortFlag{false};
  Deadline DL;
  std::mutex ExternMu; ///< serializes externals when SerializeExternals
};

} // namespace flix

#endif // FLIX_PARALLEL_PARALLELSOLVER_H
