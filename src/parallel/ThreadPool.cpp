//===- parallel/ThreadPool.cpp - Work-stealing thread pool ----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "parallel/ThreadPool.h"

#include <cassert>

using namespace flix;

// Owner side of the Chase–Lev protocol: pop one task index from the
// bottom of the deque. The seq_cst fence between the Bottom store and the
// Top load resolves the race with thieves on the last element: either the
// thief's CAS or the owner's reservation wins, never both.
size_t ThreadPool::Deque::take() {
  int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
  Bottom.store(B, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  int64_t T = Top.load(std::memory_order_relaxed);
  if (T > B) {
    // Deque was already empty; undo the reservation.
    Bottom.store(B + 1, std::memory_order_relaxed);
    return Empty;
  }
  size_t Task = Tasks[static_cast<size_t>(B)];
  if (T == B) {
    // Last element: race the thieves for it.
    if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      Task = Empty; // a thief got it
    Bottom.store(B + 1, std::memory_order_relaxed);
  }
  return Task;
}

// Thief side: claim the task at the top with a CAS. The acquire load of
// Bottom pairs with the owner's relaxed stores via the seq_cst fence in
// take(); Tasks itself is immutable during a phase.
size_t ThreadPool::Deque::steal() {
  int64_t T = Top.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  int64_t B = Bottom.load(std::memory_order_acquire);
  if (T >= B)
    return Empty;
  size_t Task = Tasks[static_cast<size_t>(T)];
  if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                   std::memory_order_relaxed))
    return Empty; // lost the race; caller retries elsewhere
  return Task;
}

ThreadPool::ThreadPool(unsigned NumWorkers) : Deques(NumWorkers) {
  assert(NumWorkers > 0 && "a pool needs at least one worker");
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::run(size_t NumTasks,
                     const std::function<void(size_t, unsigned)> &Fn) {
  if (NumTasks == 0)
    return;
  // Preload each deque with a contiguous slice of [0, NumTasks). Slices
  // keep adjacent tasks (often adjacent delta rows) on one worker, which
  // preserves locality until stealing kicks in.
  unsigned W = numWorkers();
  size_t Per = NumTasks / W, Extra = NumTasks % W;
  size_t Next = 0;
  for (unsigned I = 0; I < W; ++I) {
    Deque &D = Deques[I];
    size_t Len = Per + (I < Extra ? 1 : 0);
    D.Tasks.resize(Len);
    for (size_t J = 0; J < Len; ++J)
      D.Tasks[J] = Next++;
    D.Top.store(0, std::memory_order_relaxed);
    D.Bottom.store(static_cast<int64_t>(Len), std::memory_order_relaxed);
  }
  assert(Next == NumTasks);
  Remaining.store(NumTasks, std::memory_order_relaxed);

  std::unique_lock<std::mutex> Lock(Mu);
  PhaseFn = &Fn;
  Active = W;
  ++Generation; // publishes the deque/task state to workers (via Mu)
  WakeWorkers.notify_all();
  PhaseDone.wait(Lock, [this] { return Active == 0; });
  PhaseFn = nullptr;
}

void ThreadPool::workerMain(unsigned Me) {
  uint64_t SeenGeneration = 0;
  Deque &Mine = Deques[Me];
  unsigned W = numWorkers();
  for (;;) {
    const std::function<void(size_t, unsigned)> *Fn;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WakeWorkers.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      Fn = PhaseFn;
    }

    // Drain own deque, then cycle over victims until no tasks remain
    // anywhere. Remaining is decremented after each task completes, so
    // reaching zero implies all task effects are visible (release) to
    // whoever observes it (acquire).
    for (;;) {
      size_t Task = Mine.take();
      if (Task == Deque::Empty) {
        for (unsigned Off = 1; Off < W && Task == Deque::Empty; ++Off)
          Task = Deques[(Me + Off) % W].steal();
        if (Task == Deque::Empty) {
          if (Remaining.load(std::memory_order_acquire) == 0)
            break;
          std::this_thread::yield();
          continue;
        }
        ++Mine.Steals;
      }
      (*Fn)(Task, Me);
      Remaining.fetch_sub(1, std::memory_order_acq_rel);
    }

    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (--Active == 0)
        PhaseDone.notify_one();
    }
  }
}

uint64_t ThreadPool::steals() const {
  // Quiescent-state read: called between phases by the coordinator.
  uint64_t N = 0;
  for (const Deque &D : Deques)
    N += D.Steals;
  return N;
}
