//===- parallel/ThreadPool.cpp - Work-stealing thread pool ----------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "parallel/ThreadPool.h"

#include <cassert>

using namespace flix;

// Owner side of the Chase–Lev protocol: pop one task payload from the
// bottom of the deque. The seq_cst fence between the Bottom store and the
// Top load resolves the race with thieves on the last element: either the
// thief's CAS or the owner's reservation wins, never both.
size_t ThreadPool::Deque::take() {
  int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
  Buffer *A = Buf.load(std::memory_order_relaxed);
  Bottom.store(B, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  int64_t T = Top.load(std::memory_order_relaxed);
  if (T > B) {
    // Deque was already empty; undo the reservation.
    Bottom.store(B + 1, std::memory_order_relaxed);
    return Empty;
  }
  size_t Task = A->get(B);
  if (T == B) {
    // Last element: race the thieves for it.
    if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      Task = Empty; // a thief got it
    Bottom.store(B + 1, std::memory_order_relaxed);
  }
  return Task;
}

// Thief side: claim the task at the top with a CAS. The acquire load of
// Bottom pairs with the owner's release store in push() (and, for
// preloaded tasks, with the phase-start mutex), so the slot and any
// spawned-task state written before the push are visible. The buffer
// pointer is loaded after the emptiness check; a concurrent grow() keeps
// the old buffer alive until the phase barrier, and slot Top is never
// overwritten in it (the owner only writes at Bottom), so the read is
// safe even if the CAS then loses.
size_t ThreadPool::Deque::steal() {
  int64_t T = Top.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  int64_t B = Bottom.load(std::memory_order_acquire);
  if (T >= B)
    return Empty;
  Buffer *A = Buf.load(std::memory_order_acquire);
  size_t Task = A->get(T);
  if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                   std::memory_order_relaxed))
    return Empty; // lost the race; caller retries elsewhere
  return Task;
}

// Owner side: push a payload at the bottom, growing the circular buffer
// if [Top, Bottom) already fills it. Only the owning worker (or the
// coordinator between phases) calls this.
void ThreadPool::Deque::push(size_t Payload) {
  int64_t B = Bottom.load(std::memory_order_relaxed);
  int64_t T = Top.load(std::memory_order_acquire);
  Buffer *A = Buf.load(std::memory_order_relaxed);
  if (B - T >= static_cast<int64_t>(A->Capacity))
    A = grow(A, T, B);
  A->put(B, Payload);
  // Publishes the slot (and the spawned task state the caller wrote
  // before push) to thieves that acquire-load Bottom.
  Bottom.store(B + 1, std::memory_order_release);
}

ThreadPool::Deque::Buffer *ThreadPool::Deque::grow(Buffer *Old, int64_t T,
                                                   int64_t B) {
  auto NewBuf = std::make_unique<Buffer>(Old->Capacity * 2);
  for (int64_t I = T; I < B; ++I)
    NewBuf->put(I, Old->get(I));
  Buffer *Raw = NewBuf.get();
  // Old stays alive in Buffers until the coordinator trims between
  // phases; a thief that loaded it pre-grow reads valid (identical)
  // slots in [Top, Bottom) there.
  Buffers.push_back(std::move(NewBuf));
  Buf.store(Raw, std::memory_order_release);
  return Raw;
}

ThreadPool::ThreadPool(unsigned NumWorkers) : Deques(NumWorkers) {
  assert(NumWorkers > 0 && "a pool needs at least one worker");
  for (Deque &D : Deques) {
    D.Buffers.push_back(std::make_unique<Deque::Buffer>(256));
    D.Buf.store(D.Buffers.back().get(), std::memory_order_relaxed);
  }
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::run(size_t NumTasks,
                     const std::function<void(size_t, unsigned)> &Fn) {
  if (NumTasks == 0)
    return;
  // Preload each deque with a contiguous slice of [0, NumTasks). Slices
  // keep adjacent tasks (often adjacent delta rows) on one worker, which
  // preserves locality until stealing kicks in. No worker is running, so
  // plain pushes are safe, and buffers retired by last phase's growth can
  // be freed now (no thief can still hold one across the phase barrier).
  unsigned W = numWorkers();
  size_t Per = NumTasks / W, Extra = NumTasks % W;
  size_t Next = 0;
  for (unsigned I = 0; I < W; ++I) {
    Deque &D = Deques[I];
    if (D.Buffers.size() > 1)
      D.Buffers.erase(D.Buffers.begin(), D.Buffers.end() - 1);
    D.Top.store(0, std::memory_order_relaxed);
    D.Bottom.store(0, std::memory_order_relaxed);
    size_t Len = Per + (I < Extra ? 1 : 0);
    for (size_t J = 0; J < Len; ++J)
      D.push(Next++);
  }
  assert(Next == NumTasks);
  Remaining.store(NumTasks, std::memory_order_relaxed);

  std::unique_lock<std::mutex> Lock(Mu);
  PhaseFn = &Fn;
  Active = W;
  ++Generation; // publishes the deque/task state to workers (via Mu)
  WakeWorkers.notify_all();
  PhaseDone.wait(Lock, [this] { return Active == 0; });
  PhaseFn = nullptr;
}

void ThreadPool::spawn(unsigned Me, size_t Payload) {
  // The increment must precede the push: the spawner is inside a task
  // whose own decrement has not happened yet, so Remaining cannot touch
  // zero while the spawned payload is in flight, and no worker exits the
  // phase before picking it up.
  Remaining.fetch_add(1, std::memory_order_relaxed);
  Deques[Me].push(Payload);
}

void ThreadPool::workerMain(unsigned Me) {
  uint64_t SeenGeneration = 0;
  Deque &Mine = Deques[Me];
  unsigned W = numWorkers();
  for (;;) {
    const std::function<void(size_t, unsigned)> *Fn;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      WakeWorkers.wait(Lock, [&] {
        return ShuttingDown || Generation != SeenGeneration;
      });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      Fn = PhaseFn;
    }

    // Drain own deque, then cycle over victims until no tasks remain
    // anywhere. Remaining is decremented after each task completes, so
    // reaching zero implies all task effects are visible (release) to
    // whoever observes it (acquire); spawned tasks bump Remaining before
    // they become stealable, so the count never drops to zero early.
    for (;;) {
      size_t Task = Mine.take();
      if (Task == Deque::Empty) {
        for (unsigned Off = 1; Off < W && Task == Deque::Empty; ++Off)
          Task = Deques[(Me + Off) % W].steal();
        if (Task == Deque::Empty) {
          if (Remaining.load(std::memory_order_acquire) == 0)
            break;
          std::this_thread::yield();
          continue;
        }
        ++Mine.Steals;
      }
      (*Fn)(Task, Me);
      Remaining.fetch_sub(1, std::memory_order_acq_rel);
    }

    {
      std::lock_guard<std::mutex> Lock(Mu);
      if (--Active == 0)
        PhaseDone.notify_one();
    }
  }
}

uint64_t ThreadPool::steals() const {
  // Quiescent-state read: called between phases by the coordinator.
  uint64_t N = 0;
  for (const Deque &D : Deques)
    N += D.Steals;
  return N;
}
