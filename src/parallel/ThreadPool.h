//===- parallel/ThreadPool.h - Work-stealing thread pool ------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size pool of worker threads executing *phases* of tasks with
/// Chase–Lev work-stealing deques. The coordinator preloads each worker's
/// deque with a contiguous slice of the phase's task payloads and releases
/// the workers; each worker pops from the bottom of its own deque (LIFO)
/// and, when empty, steals from the top of a victim's deque (FIFO) with a
/// CAS on the top cursor — the Chase–Lev protocol.
///
/// Tasks may spawn further tasks mid-phase through spawn(): the executing
/// worker pushes the new payload onto the bottom of its own deque, where
/// idle workers can steal it. This is what lets the fixpoint engine split
/// a single hot join fan-out across workers (intra-rule parallelism)
/// instead of serializing it on one worker. Because the owner can now push
/// during a phase, the deque uses the full Chase–Lev circular-array
/// discipline: a power-of-two ring of relaxed-atomic slots that is grown
/// by publishing a copied, doubled buffer; retired buffers are kept alive
/// until the next phase so a racing thief never reads freed memory. Top
/// still never wraps within a phase (it is reset between phases), so there
/// is no ABA hazard, and the owner's hot path never executes an atomic
/// RMW except on the last element.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_PARALLEL_THREADPOOL_H
#define FLIX_PARALLEL_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace flix {

/// A persistent pool of \p NumWorkers threads executing one phase of
/// tasks at a time. Not itself thread-safe: one coordinator thread calls
/// run(); the pool may be reused for any number of phases. spawn() is the
/// one member that worker threads may call, and only from inside the
/// phase function on their own worker index.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumWorkers);
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;
  ~ThreadPool();

  /// Reads Deques (fully built before any worker thread starts), not
  /// Workers — workers call this while the constructor is still pushing
  /// into the Workers vector.
  unsigned numWorkers() const { return static_cast<unsigned>(Deques.size()); }

  /// Executes Fn(Payload, WorkerIndex) for every payload in [0, NumTasks),
  /// plus any payloads spawned mid-phase, distributed over the workers
  /// with work stealing. Blocks the calling thread until every task
  /// (including spawned ones) has finished; the happens-before edges run
  /// through the phase start/finish latches, so non-atomic state written
  /// by tasks is visible to the coordinator (and to all tasks of
  /// subsequent phases) without further synchronization.
  void run(size_t NumTasks, const std::function<void(size_t, unsigned)> &Fn);

  /// Enqueues a dynamically spawned task payload onto worker \p Me's own
  /// deque. May only be called from inside the phase function, by the
  /// worker currently executing as index \p Me; the payload is passed to
  /// the same phase function when it runs (possibly on another worker).
  void spawn(unsigned Me, size_t Payload);

  /// Total tasks obtained by stealing (rather than from the thief's own
  /// deque) since construction.
  uint64_t steals() const;

private:
  /// Chase–Lev deque over task payloads. The owner works [Top, Bottom)
  /// from the bottom and may push at the bottom mid-phase; thieves CAS
  /// Top upward. Slots are relaxed atomics inside a circular buffer that
  /// the owner grows by publishing a doubled copy (Le et al., "Correct
  /// and Efficient Work-Stealing for Weak Memory Models").
  struct alignas(64) Deque {
    struct Buffer {
      explicit Buffer(size_t Cap)
          : Capacity(Cap), Slots(new std::atomic<size_t>[Cap]) {}
      size_t get(int64_t I) const {
        return Slots[static_cast<size_t>(I) & (Capacity - 1)].load(
            std::memory_order_relaxed);
      }
      void put(int64_t I, size_t V) {
        Slots[static_cast<size_t>(I) & (Capacity - 1)].store(
            V, std::memory_order_relaxed);
      }
      const size_t Capacity; ///< power of two
      std::unique_ptr<std::atomic<size_t>[]> Slots;
    };

    std::atomic<int64_t> Top{0};
    std::atomic<int64_t> Bottom{0};
    /// Current buffer, loaded by thieves; Buffers owns it plus any
    /// buffers retired by mid-phase growth (freed between phases, when
    /// no thief can hold a stale pointer).
    std::atomic<Buffer *> Buf{nullptr};
    std::vector<std::unique_ptr<Buffer>> Buffers;
    uint64_t Steals = 0; ///< owner-private steal counter

    static constexpr size_t Empty = SIZE_MAX;
    size_t take();
    size_t steal();
    void push(size_t Payload);
    Buffer *grow(Buffer *Old, int64_t T, int64_t B);
  };

  void workerMain(unsigned Me);

  std::vector<Deque> Deques;
  std::vector<std::thread> Workers;

  // Phase control. Generation is bumped (under Mu) to release workers;
  // Remaining counts unexecuted tasks (including spawned ones); Active
  // counts workers still inside the phase. The coordinator waits for
  // Active == 0.
  std::mutex Mu;
  std::condition_variable WakeWorkers;
  std::condition_variable PhaseDone;
  uint64_t Generation = 0;
  bool ShuttingDown = false;
  const std::function<void(size_t, unsigned)> *PhaseFn = nullptr;
  std::atomic<size_t> Remaining{0};
  unsigned Active = 0;
};

} // namespace flix

#endif // FLIX_PARALLEL_THREADPOOL_H
