//===- parallel/ThreadPool.h - Work-stealing thread pool ------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size pool of worker threads executing *phases* of tasks with
/// Chase–Lev-style work-stealing deques. The coordinator preloads each
/// worker's deque with a contiguous slice of the phase's task indices and
/// releases the workers; each worker pops from the bottom of its own
/// deque (LIFO) and, when empty, steals from the top of a victim's deque
/// (FIFO) with a CAS on the top cursor — the Chase–Lev protocol.
///
/// Two simplifications relative to the full Chase–Lev deque, both enabled
/// by the fixpoint engine's round structure (all of a round's tasks are
/// known before the round starts and no task spawns further tasks):
/// the buffer never grows concurrently, so there is no circular-array
/// republication, and top never wraps, so there is no ABA hazard. What
/// remains is the owner-bottom / thief-top discipline with its seq_cst
/// fence race resolution, which is the part that matters for scalability:
/// the owner's hot path never executes an atomic RMW.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_PARALLEL_THREADPOOL_H
#define FLIX_PARALLEL_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace flix {

/// A persistent pool of \p NumWorkers threads executing one phase of
/// tasks at a time. Not itself thread-safe: one coordinator thread calls
/// run(); the pool may be reused for any number of phases.
class ThreadPool {
public:
  explicit ThreadPool(unsigned NumWorkers);
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;
  ~ThreadPool();

  /// Reads Deques (fully built before any worker thread starts), not
  /// Workers — workers call this while the constructor is still pushing
  /// into the Workers vector.
  unsigned numWorkers() const { return static_cast<unsigned>(Deques.size()); }

  /// Executes Fn(TaskIndex, WorkerIndex) for every TaskIndex in
  /// [0, NumTasks), distributed over the workers with work stealing.
  /// Blocks the calling thread until every task has finished; the
  /// happens-before edges run through the phase start/finish latches, so
  /// non-atomic state written by tasks is visible to the coordinator (and
  /// to all tasks of subsequent phases) without further synchronization.
  void run(size_t NumTasks, const std::function<void(size_t, unsigned)> &Fn);

  /// Total tasks obtained by stealing (rather than from the thief's own
  /// deque) since construction.
  uint64_t steals() const;

private:
  /// Chase–Lev-style deque over the phase's task indices. The owner works
  /// [Top, Bottom) from the bottom; thieves CAS Top upward. Tasks holds
  /// the phase-global task indices and is written only between phases.
  struct alignas(64) Deque {
    std::atomic<int64_t> Top{0};
    std::atomic<int64_t> Bottom{0};
    std::vector<size_t> Tasks;
    uint64_t Steals = 0; ///< owner-private steal counter

    static constexpr size_t Empty = SIZE_MAX;
    size_t take();
    size_t steal();
  };

  void workerMain(unsigned Me);

  std::vector<Deque> Deques;
  std::vector<std::thread> Workers;

  // Phase control. Generation is bumped (under Mu) to release workers;
  // Remaining counts unexecuted tasks; Active counts workers still inside
  // the phase. The coordinator waits for Active == 0.
  std::mutex Mu;
  std::condition_variable WakeWorkers;
  std::condition_variable PhaseDone;
  uint64_t Generation = 0;
  bool ShuttingDown = false;
  const std::function<void(size_t, unsigned)> *PhaseFn = nullptr;
  std::atomic<size_t> Remaining{0};
  unsigned Active = 0;
};

} // namespace flix

#endif // FLIX_PARALLEL_THREADPOOL_H
