//===- runtime/Lattice.h - Complete-lattice interface ---------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete-lattice interface used by lattice (`lat`) predicates. A
/// lattice is the 6-tuple (E, ⊥, ⊤, ⊑, ⊔, ⊓) of §3.2; elements are runtime
/// Values. Implementations include the built-in lattices (Lattices.h) and
/// lattices interpreted from FLIX source (lang/Lowering.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_RUNTIME_LATTICE_H
#define FLIX_RUNTIME_LATTICE_H

#include "runtime/Value.h"

#include <string>

namespace flix {

/// Abstract complete lattice over runtime Values.
///
/// The engine assumes (and the LatticeChecker can verify) that
/// implementations satisfy the complete-lattice laws and have finite
/// height; the paper makes the same assumption (§3.2, §7 "Safety").
class Lattice {
public:
  virtual ~Lattice();

  /// Human-readable lattice name, e.g. "Parity".
  virtual std::string name() const = 0;

  /// The least element ⊥.
  virtual Value bot() const = 0;

  /// The greatest element ⊤.
  virtual Value top() const = 0;

  /// The partial order: returns true iff \p A ⊑ \p B.
  virtual bool leq(Value A, Value B) const = 0;

  /// The least upper bound \p A ⊔ \p B.
  virtual Value lub(Value A, Value B) const = 0;

  /// The greatest lower bound \p A ⊓ \p B.
  virtual Value glb(Value A, Value B) const = 0;

  /// True iff \p A is strictly below \p B.
  bool lt(Value A, Value B) const { return A != B && leq(A, B); }
};

/// The two-point boolean lattice false ⊑ true. Relational (`rel`)
/// predicates are lattice predicates over this lattice: a tuple is either
/// absent (false) or present (true). See DESIGN.md §7.
class BoolLattice final : public Lattice {
public:
  explicit BoolLattice(const ValueFactory &F)
      : False(F.boolean(false)), True(F.boolean(true)) {}

  std::string name() const override { return "Bool"; }
  Value bot() const override { return False; }
  Value top() const override { return True; }
  bool leq(Value A, Value B) const override {
    return !A.asBool() || B.asBool();
  }
  Value lub(Value A, Value B) const override {
    return (A.asBool() || B.asBool()) ? True : False;
  }
  Value glb(Value A, Value B) const override {
    return (A.asBool() && B.asBool()) ? True : False;
  }

private:
  Value False, True;
};

} // namespace flix

#endif // FLIX_RUNTIME_LATTICE_H
