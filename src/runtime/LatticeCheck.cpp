//===- runtime/LatticeCheck.cpp - Lattice-law checking --------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "runtime/LatticeCheck.h"

#include <algorithm>
#include <sstream>

using namespace flix;

std::string LatticeCheckResult::summary() const {
  if (ok())
    return "all sampled lattice laws hold";
  std::ostringstream OS;
  OS << Violations.size() << " violation(s):\n";
  for (const std::string &V : Violations)
    OS << "  " << V << "\n";
  return OS.str();
}

namespace {

/// Collects the sample plus ⊥ and ⊤, deduplicated.
std::vector<Value> closeSample(const Lattice &L, std::span<const Value> S) {
  std::vector<Value> Out(S.begin(), S.end());
  Out.push_back(L.bot());
  Out.push_back(L.top());
  std::sort(Out.begin(), Out.end());
  Out.erase(std::unique(Out.begin(), Out.end()), Out.end());
  return Out;
}

class Checker {
public:
  Checker(const Lattice &L, const ValueFactory &F, LatticeCheckResult &R)
      : L(L), F(F), R(R) {}

  void require(bool Cond, const std::string &Msg) {
    if (!Cond && R.Violations.size() < MaxViolations)
      R.Violations.push_back(Msg);
  }

  std::string str(Value V) const { return F.toString(V); }

  const Lattice &L;
  const ValueFactory &F;
  LatticeCheckResult &R;
  static constexpr size_t MaxViolations = 20;
};

} // namespace

LatticeCheckResult flix::checkLatticeLaws(const Lattice &L,
                                          const ValueFactory &F,
                                          std::span<const Value> Sample) {
  LatticeCheckResult R;
  Checker C(L, F, R);
  std::vector<Value> S = closeSample(L, Sample);

  for (Value X : S) {
    C.require(L.leq(X, X), "reflexivity fails at " + C.str(X));
    C.require(L.leq(L.bot(), X), "bot not below " + C.str(X));
    C.require(L.leq(X, L.top()), C.str(X) + " not below top");
    C.require(L.lub(X, X) == X, "lub not idempotent at " + C.str(X));
    C.require(L.glb(X, X) == X, "glb not idempotent at " + C.str(X));
  }

  for (Value X : S) {
    for (Value Y : S) {
      if (L.leq(X, Y) && L.leq(Y, X))
        C.require(X == Y, "antisymmetry fails at " + C.str(X) + " vs " +
                              C.str(Y));
      Value J = L.lub(X, Y);
      C.require(J == L.lub(Y, X), "lub not commutative at " + C.str(X) +
                                      ", " + C.str(Y));
      C.require(L.leq(X, J) && L.leq(Y, J),
                "lub " + C.str(J) + " not an upper bound of " + C.str(X) +
                    ", " + C.str(Y));
      Value M = L.glb(X, Y);
      C.require(M == L.glb(Y, X), "glb not commutative at " + C.str(X) +
                                      ", " + C.str(Y));
      C.require(L.leq(M, X) && L.leq(M, Y),
                "glb " + C.str(M) + " not a lower bound of " + C.str(X) +
                    ", " + C.str(Y));
    }
  }

  for (Value X : S) {
    for (Value Y : S) {
      Value J = L.lub(X, Y);
      Value M = L.glb(X, Y);
      for (Value Z : S) {
        if (L.leq(X, Y) && L.leq(Y, Z))
          C.require(L.leq(X, Z), "transitivity fails: " + C.str(X) + " ⊑ " +
                                     C.str(Y) + " ⊑ " + C.str(Z));
        // Leastness of lub / greatestness of glb among sampled bounds.
        if (L.leq(X, Z) && L.leq(Y, Z))
          C.require(L.leq(J, Z), "lub of " + C.str(X) + ", " + C.str(Y) +
                                     " not least (bound " + C.str(Z) + ")");
        if (L.leq(Z, X) && L.leq(Z, Y))
          C.require(L.leq(Z, M), "glb of " + C.str(X) + ", " + C.str(Y) +
                                     " not greatest (bound " + C.str(Z) +
                                     ")");
      }
    }
  }
  return R;
}

LatticeCheckResult flix::checkMonotone(
    const Lattice &ArgLattice, const Lattice &ResultLattice,
    const ValueFactory &F, unsigned Arity,
    const std::function<Value(std::span<const Value>)> &Fn,
    std::span<const Value> Sample, bool RequireStrict,
    const std::string &FnName) {
  LatticeCheckResult R;
  Checker C(ResultLattice, F, R);
  std::vector<Value> S = closeSample(ArgLattice, Sample);

  // Enumerate all argument tuples over the sample (bounded to keep this
  // tractable for higher arities).
  std::vector<Value> Args(Arity, ArgLattice.bot());
  size_t Total = 1;
  for (unsigned I = 0; I < Arity; ++I) {
    Total *= S.size();
    if (Total > 100000)
      Total = 100000;
  }
  for (size_t Idx = 0; Idx < Total; ++Idx) {
    size_t T = Idx;
    bool HasBot = false;
    for (unsigned I = 0; I < Arity; ++I) {
      Args[I] = S[T % S.size()];
      T /= S.size();
      HasBot |= Args[I] == ArgLattice.bot();
    }
    Value Out = Fn(Args);
    if (RequireStrict && HasBot)
      C.require(Out == ResultLattice.bot(),
                FnName + " not strict: non-bot result on bot argument");
    // Monotonicity: bump each argument to every sampled Y ⊒ Args[I].
    for (unsigned I = 0; I < Arity; ++I) {
      Value Saved = Args[I];
      for (Value Y : S) {
        if (!ArgLattice.leq(Saved, Y))
          continue;
        Args[I] = Y;
        Value Out2 = Fn(Args);
        C.require(ResultLattice.leq(Out, Out2),
                  FnName + " not monotone in argument " + std::to_string(I));
      }
      Args[I] = Saved;
    }
  }
  return R;
}

LatticeCheckResult flix::checkMonotoneFilter(
    const Lattice &ArgLattice, const ValueFactory &F, unsigned Arity,
    const std::function<bool(std::span<const Value>)> &Fn,
    std::span<const Value> Sample, const std::string &FnName) {
  BoolLattice BoolL(F);
  auto Wrapped = [&](std::span<const Value> Args) {
    return F.boolean(Fn(Args));
  };
  return checkMonotone(ArgLattice, BoolL, F, Arity, Wrapped, Sample,
                       /*RequireStrict=*/false, FnName);
}
