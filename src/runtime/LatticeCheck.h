//===- runtime/LatticeCheck.h - Lattice-law checking ----------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based verification of the complete-lattice laws and of
/// monotonicity/strictness of transfer functions. This implements the §7
/// "Safety" future-work direction: a FLIX programmer may inadvertently
/// supply a malformed lattice, and the semantics is then undefined; this
/// checker catches such mistakes on a sample of elements.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_RUNTIME_LATTICECHECK_H
#define FLIX_RUNTIME_LATTICECHECK_H

#include "runtime/Lattice.h"

#include <functional>
#include <span>
#include <string>
#include <vector>

namespace flix {

/// Result of a lattice-law check: empty Violations means all sampled laws
/// hold.
struct LatticeCheckResult {
  std::vector<std::string> Violations;

  bool ok() const { return Violations.empty(); }
  std::string summary() const;
};

/// Checks the complete-lattice laws on every pair/triple drawn from
/// \p Sample (⊥/⊤ are added automatically): reflexivity, antisymmetry,
/// transitivity, ⊔/⊓ being least upper / greatest lower bounds, and
/// ⊥ ⊑ x ⊑ ⊤. O(n^3) in the sample size; intended for tests and for the
/// engine's debug mode, not hot paths.
LatticeCheckResult checkLatticeLaws(const Lattice &L,
                                    const ValueFactory &F,
                                    std::span<const Value> Sample);

/// Checks that \p Fn (an n-ary function on lattice elements) is monotone in
/// every argument over the sampled elements, and — when \p RequireStrict —
/// strict (maps any ⊥ argument to ⊥).
LatticeCheckResult checkMonotone(
    const Lattice &ArgLattice, const Lattice &ResultLattice,
    const ValueFactory &F, unsigned Arity,
    const std::function<Value(std::span<const Value>)> &Fn,
    std::span<const Value> Sample, bool RequireStrict,
    const std::string &FnName);

/// Checks that a boolean filter function is monotone (false < true) over
/// the sampled elements in every argument.
LatticeCheckResult checkMonotoneFilter(
    const Lattice &ArgLattice, const ValueFactory &F, unsigned Arity,
    const std::function<bool(std::span<const Value>)> &Fn,
    std::span<const Value> Sample, const std::string &FnName);

} // namespace flix

#endif // FLIX_RUNTIME_LATTICECHECK_H
