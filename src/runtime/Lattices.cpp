//===- runtime/Lattices.cpp - Built-in lattices ---------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "runtime/Lattices.h"

#include <algorithm>

using namespace flix;

Lattice::~Lattice() = default;

//===----------------------------------------------------------------------===//
// ParityLattice
//===----------------------------------------------------------------------===//

ParityLattice::ParityLattice(ValueFactory &F)
    : Bot(F.tag("Parity.Bot")), Odd(F.tag("Parity.Odd")),
      Even(F.tag("Parity.Even")), Top(F.tag("Parity.Top")) {}

bool ParityLattice::leq(Value A, Value B) const {
  return A == Bot || B == Top || A == B;
}

Value ParityLattice::lub(Value A, Value B) const {
  if (A == Bot)
    return B;
  if (B == Bot)
    return A;
  return A == B ? A : Top;
}

Value ParityLattice::glb(Value A, Value B) const {
  if (A == Top)
    return B;
  if (B == Top)
    return A;
  return A == B ? A : Bot;
}

Value ParityLattice::sum(Value A, Value B) const {
  if (A == Bot || B == Bot)
    return Bot;
  if (A == Top || B == Top)
    return Top;
  // odd+odd = even, even+even = even, odd+even = odd.
  return A == B ? Even : Odd;
}

Value ParityLattice::product(Value A, Value B) const {
  if (A == Bot || B == Bot)
    return Bot;
  // even * anything (non-bot, non-top) = even.
  if (A == Even || B == Even)
    return Even;
  if (A == Top || B == Top)
    return Top;
  return Odd;
}

//===----------------------------------------------------------------------===//
// SignLattice
//===----------------------------------------------------------------------===//

SignLattice::SignLattice(ValueFactory &F)
    : Bot(F.tag("Sign.Bot")), Neg(F.tag("Sign.Neg")), Zer(F.tag("Sign.Zer")),
      Pos(F.tag("Sign.Pos")), Top(F.tag("Sign.Top")) {}

bool SignLattice::leq(Value A, Value B) const {
  return A == Bot || B == Top || A == B;
}

Value SignLattice::lub(Value A, Value B) const {
  if (A == Bot)
    return B;
  if (B == Bot)
    return A;
  return A == B ? A : Top;
}

Value SignLattice::glb(Value A, Value B) const {
  if (A == Top)
    return B;
  if (B == Top)
    return A;
  return A == B ? A : Bot;
}

Value SignLattice::sum(Value A, Value B) const {
  if (A == Bot || B == Bot)
    return Bot;
  if (A == Top || B == Top)
    return Top;
  if (A == Zer)
    return B;
  if (B == Zer)
    return A;
  // pos+pos = pos, neg+neg = neg, pos+neg = unknown.
  return A == B ? A : Top;
}

//===----------------------------------------------------------------------===//
// ConstantLattice
//===----------------------------------------------------------------------===//

ConstantLattice::ConstantLattice(ValueFactory &F)
    : F(F), CstSym(F.strings().intern("Constant.Cst")),
      Bot(F.tag("Constant.Bot")), Top(F.tag("Constant.Top")) {}

Value ConstantLattice::constant(int64_t K) const {
  return F.tag(CstSym, F.integer(K));
}

bool ConstantLattice::isConstant(Value A) const {
  return A.isTag() && F.tagName(A) == CstSym;
}

int64_t ConstantLattice::constantValue(Value A) const {
  assert(isConstant(A) && "not a Cst value");
  return F.tagPayload(A).asInt();
}

bool ConstantLattice::leq(Value A, Value B) const {
  return A == Bot || B == Top || A == B;
}

Value ConstantLattice::lub(Value A, Value B) const {
  if (A == Bot)
    return B;
  if (B == Bot)
    return A;
  return A == B ? A : Top;
}

Value ConstantLattice::glb(Value A, Value B) const {
  if (A == Top)
    return B;
  if (B == Top)
    return A;
  return A == B ? A : Bot;
}

Value ConstantLattice::sum(Value A, Value B) const {
  if (A == Bot || B == Bot)
    return Bot;
  if (A == Top || B == Top)
    return Top;
  return constant(constantValue(A) + constantValue(B));
}

Value ConstantLattice::product(Value A, Value B) const {
  if (A == Bot || B == Bot)
    return Bot;
  // 0 * x = 0 even for unknown x (only when the other side is a known 0).
  if (isConstant(A) && constantValue(A) == 0)
    return A;
  if (isConstant(B) && constantValue(B) == 0)
    return B;
  if (A == Top || B == Top)
    return Top;
  return constant(constantValue(A) * constantValue(B));
}

bool ConstantLattice::isMaybeZero(Value A) const {
  if (A == Bot)
    return false;
  if (A == Top)
    return true;
  return constantValue(A) == 0;
}

//===----------------------------------------------------------------------===//
// IntervalLattice
//===----------------------------------------------------------------------===//

IntervalLattice::IntervalLattice(ValueFactory &F, int64_t Bound)
    : F(F), Bound(Bound), RangeSym(F.strings().intern("Interval.Range")),
      Bot(F.tag("Interval.Bot")), Top(range(-Bound, Bound)) {
  assert(Bound > 0 && "interval bound must be positive");
}

int64_t IntervalLattice::clamp(int64_t X) const {
  return std::min(std::max(X, -Bound), Bound);
}

Value IntervalLattice::range(int64_t Lo, int64_t Hi) const {
  assert(Lo <= Hi && "malformed interval");
  return F.tag(RangeSym, F.tuple({F.integer(clamp(Lo)), F.integer(clamp(Hi))}));
}

int64_t IntervalLattice::lo(Value A) const {
  assert(A != Bot && "no endpoints on Bot");
  return F.tupleElems(F.tagPayload(A))[0].asInt();
}

int64_t IntervalLattice::hi(Value A) const {
  assert(A != Bot && "no endpoints on Bot");
  return F.tupleElems(F.tagPayload(A))[1].asInt();
}

bool IntervalLattice::leq(Value A, Value B) const {
  if (A == Bot)
    return true;
  if (B == Bot)
    return false;
  return lo(B) <= lo(A) && hi(A) <= hi(B);
}

Value IntervalLattice::lub(Value A, Value B) const {
  if (A == Bot)
    return B;
  if (B == Bot)
    return A;
  return range(std::min(lo(A), lo(B)), std::max(hi(A), hi(B)));
}

Value IntervalLattice::glb(Value A, Value B) const {
  if (A == Bot || B == Bot)
    return Bot;
  int64_t Lo = std::max(lo(A), lo(B));
  int64_t Hi = std::min(hi(A), hi(B));
  return Lo <= Hi ? range(Lo, Hi) : Bot;
}

Value IntervalLattice::sum(Value A, Value B) const {
  if (A == Bot || B == Bot)
    return Bot;
  return range(clamp(lo(A) + lo(B)), clamp(hi(A) + hi(B)));
}

bool IntervalLattice::isMaybeZero(Value A) const {
  return A != Bot && lo(A) <= 0 && 0 <= hi(A);
}

//===----------------------------------------------------------------------===//
// SULattice
//===----------------------------------------------------------------------===//

SULattice::SULattice(ValueFactory &F)
    : F(F), SingleSym(F.strings().intern("SU.Single")), Bot(F.tag("SU.Bottom")),
      Top(F.tag("SU.Top")) {}

Value SULattice::single(Value P) const { return F.tag(SingleSym, P); }

bool SULattice::isSingle(Value A) const {
  return A.isTag() && F.tagName(A) == SingleSym;
}

Value SULattice::singleObject(Value A) const {
  assert(isSingle(A) && "not a Single value");
  return F.tagPayload(A);
}

bool SULattice::leq(Value A, Value B) const {
  return A == Bot || B == Top || A == B;
}

Value SULattice::lub(Value A, Value B) const {
  if (A == Bot)
    return B;
  if (B == Bot)
    return A;
  return A == B ? A : Top;
}

Value SULattice::glb(Value A, Value B) const {
  if (A == Top)
    return B;
  if (B == Top)
    return A;
  return A == B ? A : Bot;
}

bool SULattice::filter(Value T, Value B) const {
  // Figure 4: Bottom => false, Single(p) => b == p, Top => true.
  if (T == Bot)
    return false;
  if (T == Top)
    return true;
  return singleObject(T) == B;
}

//===----------------------------------------------------------------------===//
// MinCostLattice
//===----------------------------------------------------------------------===//

MinCostLattice::MinCostLattice(ValueFactory &F)
    : F(F), Inf(F.tag("Cost.Inf")), Zero(F.integer(0)) {}

Value MinCostLattice::cost(int64_t C) const {
  assert(C >= 0 && "costs are naturals");
  return F.integer(C);
}

int64_t MinCostLattice::costValue(Value A) const {
  assert(!isInfinity(A) && "infinite cost");
  return A.asInt();
}

bool MinCostLattice::leq(Value A, Value B) const {
  // Reversed order: A ⊑ B iff cost(A) >= cost(B); ∞ is the least element.
  if (A == Inf)
    return true;
  if (B == Inf)
    return false;
  return A.asInt() >= B.asInt();
}

Value MinCostLattice::lub(Value A, Value B) const {
  if (A == Inf)
    return B;
  if (B == Inf)
    return A;
  return A.asInt() <= B.asInt() ? A : B;
}

Value MinCostLattice::glb(Value A, Value B) const {
  if (A == Inf || B == Inf)
    return Inf;
  return A.asInt() >= B.asInt() ? A : B;
}

Value MinCostLattice::addCost(Value A, int64_t W) const {
  assert(W >= 0 && "edge weights are naturals");
  if (A == Inf)
    return Inf;
  return F.integer(A.asInt() + W);
}

//===----------------------------------------------------------------------===//
// PowersetLattice
//===----------------------------------------------------------------------===//

PowersetLattice::PowersetLattice(ValueFactory &F, std::vector<Value> Universe)
    : F(F), Empty(F.emptySet()), Univ(F.set(std::move(Universe))) {}

//===----------------------------------------------------------------------===//
// TransformerLattice
//===----------------------------------------------------------------------===//

TransformerLattice::TransformerLattice(ValueFactory &F,
                                       const ConstantLattice &CL)
    : F(F), CL(CL), NonBotSym(F.strings().intern("Transformer.NonBot")),
      Bot(F.tag("Transformer.Bot")), Top(nonBot(0, 0, CL.top())),
      Identity(nonBot(1, 0, CL.bot())) {}

Value TransformerLattice::nonBot(int64_t A, int64_t B, Value C) const {
  auto raw = [&](int64_t RA, int64_t RB, Value RC) {
    return F.tag(NonBotSym, F.tuple({F.integer(RA), F.integer(RB), RC}));
  };
  // Canonicalize semantically equal representations so that equality of
  // handles coincides with pointwise equality of micro-functions:
  //   λl.(a·l + b) ⊔ ⊤   ==  λl.⊤                 (any a, b)
  //   λl.(0·l + b) ⊔ c   ==  λl.Cst(b) ⊔ c        (a constant function)
  if (C == CL.top())
    return raw(0, 0, CL.top());
  if (A == 0) {
    Value V = CL.lub(CL.constant(B), C);
    if (V == CL.top())
      return raw(0, 0, CL.top());
    // V is Cst(m); Figure 7 writes constant functions as NonBot(0,m,Cst(m)).
    return raw(0, CL.constantValue(V), V);
  }
  return raw(A, B, C);
}

TransformerLattice::NonBotParts TransformerLattice::parts(Value T) const {
  assert(T != Bot && "BotTransformer has no parts");
  std::span<const Value> E = F.tupleElems(F.tagPayload(T));
  return NonBotParts{E[0].asInt(), E[1].asInt(), E[2]};
}

bool TransformerLattice::leq(Value A, Value B) const {
  return lub(A, B) == B;
}

Value TransformerLattice::lub(Value A, Value B) const {
  if (A == Bot)
    return B;
  if (B == Bot)
    return A;
  if (A == B)
    return A;
  NonBotParts PA = parts(A), PB = parts(B);
  if (PA.A == PB.A && PA.B == PB.B)
    return nonBot(PA.A, PA.B, CL.lub(PA.C, PB.C));
  // Distinct linear parts: collapse to the constant-⊤ function, exactly as
  // Figure 7's comp does for the (Bot, NonBot(_, _, Top)) case.
  return Top;
}

Value TransformerLattice::glb(Value A, Value B) const {
  if (A == Top)
    return B;
  if (B == Top)
    return A;
  if (A == Bot || B == Bot)
    return Bot;
  if (A == B)
    return A;
  NonBotParts PA = parts(A), PB = parts(B);
  if (PA.A == PB.A && PA.B == PB.B)
    return nonBot(PA.A, PA.B, CL.glb(PA.C, PB.C));
  return Bot;
}

Value TransformerLattice::comp(Value T1, Value T2) const {
  // Figure 7, with (T1, T2) matching the paper's (t1, t2): T1 runs first.
  if (T2 == Bot)
    return Bot;
  NonBotParts P2 = parts(T2);
  if (T1 == Bot) {
    if (P2.C == CL.bot())
      return Bot;
    if (CL.isConstant(P2.C))
      return nonBot(0, CL.constantValue(P2.C), P2.C);
    return Top; // NonBot(0, 0, Top)
  }
  NonBotParts P1 = parts(T1);
  // (NonBot(a2,b2,c2), NonBot(a1,b1,c1)) in the paper's naming:
  //   a2,b2,c2 = P1 (first function), a1,b1,c1 = P2 (second function).
  int64_t A = P2.A * P1.A;
  int64_t B = P2.A * P1.B + P2.B;
  Value C = CL.lub(CL.sum(CL.product(P1.C, CL.constant(P2.A)),
                          CL.constant(P2.B)),
                   P2.C);
  return nonBot(A, B, C);
}

Value TransformerLattice::apply(Value T, Value V) const {
  if (T == Bot)
    return CL.bot();
  NonBotParts P = parts(T);
  Value Linear;
  if (P.A == 0) {
    Linear = CL.constant(P.B);
  } else {
    Linear = CL.sum(CL.product(V, CL.constant(P.A)), CL.constant(P.B));
  }
  return CL.lub(Linear, P.C);
}
