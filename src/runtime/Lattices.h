//===- runtime/Lattices.h - Built-in lattices -----------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in lattices used by the paper's analyses:
///   * Parity      — §2.2, Figure 2 (odd/even dataflow)
///   * Sign        — §3.2 second worked example
///   * Constant    — constant propagation (§1, §4.3)
///   * Interval    — bounded intervals, finite height via clamping
///   * SULattice   — Strong Update analysis (§4.1, Figure 4)
///   * MinCost     — all-pairs shortest paths (§4.4): (N, ∞, 0, ≥, min, max)
///   * Powerset    — finite powerset over an explicit universe
///   * Transformer — IDE micro-functions λl.(a·l+b) ⊔ c (§4.3, Figure 7)
///
/// Each lattice also exposes the monotone transfer/filter functions the
/// paper's examples use (e.g. Parity::sum, Parity::isMaybeZero).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_RUNTIME_LATTICES_H
#define FLIX_RUNTIME_LATTICES_H

#include "runtime/Lattice.h"

#include <vector>

namespace flix {

/// The parity lattice: Bot ⊑ {Odd, Even} ⊑ Top.
class ParityLattice final : public Lattice {
public:
  explicit ParityLattice(ValueFactory &F);

  std::string name() const override { return "Parity"; }
  Value bot() const override { return Bot; }
  Value top() const override { return Top; }
  bool leq(Value A, Value B) const override;
  Value lub(Value A, Value B) const override;
  Value glb(Value A, Value B) const override;

  Value odd() const { return Odd; }
  Value even() const { return Even; }

  /// Abstracts a concrete integer.
  Value alpha(int64_t N) const { return (N % 2 == 0) ? Even : Odd; }

  /// Monotone abstract addition (strict in both arguments).
  Value sum(Value A, Value B) const;
  /// Monotone abstract multiplication (strict in both arguments).
  Value product(Value A, Value B) const;
  /// Monotone filter: may the abstracted number be zero?
  bool isMaybeZero(Value A) const { return A == Even || A == Top; }

private:
  Value Bot, Odd, Even, Top;
};

/// The sign lattice: Bot ⊑ {Neg, Zer, Pos} ⊑ Top.
class SignLattice final : public Lattice {
public:
  explicit SignLattice(ValueFactory &F);

  std::string name() const override { return "Sign"; }
  Value bot() const override { return Bot; }
  Value top() const override { return Top; }
  bool leq(Value A, Value B) const override;
  Value lub(Value A, Value B) const override;
  Value glb(Value A, Value B) const override;

  Value neg() const { return Neg; }
  Value zer() const { return Zer; }
  Value pos() const { return Pos; }
  Value alpha(int64_t N) const { return N < 0 ? Neg : (N == 0 ? Zer : Pos); }

  /// Monotone abstract addition.
  Value sum(Value A, Value B) const;

private:
  Value Bot, Neg, Zer, Pos, Top;
};

/// The (flat) constant-propagation lattice over 64-bit integers:
/// Bot ⊑ Cst(k) ⊑ Top. Infinite width but height 3, so ascending chains
/// are finite as the paper requires.
class ConstantLattice final : public Lattice {
public:
  explicit ConstantLattice(ValueFactory &F);

  std::string name() const override { return "Constant"; }
  Value bot() const override { return Bot; }
  Value top() const override { return Top; }
  bool leq(Value A, Value B) const override;
  Value lub(Value A, Value B) const override;
  Value glb(Value A, Value B) const override;

  /// Builds Cst(k).
  Value constant(int64_t K) const;
  bool isConstant(Value A) const;
  /// Extracts k from Cst(k); asserts otherwise.
  int64_t constantValue(Value A) const;

  /// Strict monotone abstract arithmetic.
  Value sum(Value A, Value B) const;
  Value product(Value A, Value B) const;
  /// Monotone filter: may the value be zero?
  bool isMaybeZero(Value A) const;

private:
  ValueFactory &F;
  Symbol CstSym;
  Value Bot, Top;
};

/// Bounded interval lattice. Endpoints are clamped to [-Bound, Bound], and
/// anything escaping the clamp widens to the bound, giving the finite
/// height the paper's termination argument requires (§3.2).
class IntervalLattice final : public Lattice {
public:
  IntervalLattice(ValueFactory &F, int64_t Bound = 128);

  std::string name() const override { return "Interval"; }
  Value bot() const override { return Bot; }
  Value top() const override { return Top; }
  bool leq(Value A, Value B) const override;
  Value lub(Value A, Value B) const override;
  Value glb(Value A, Value B) const override;

  /// Builds the interval [Lo, Hi] (clamped). Asserts Lo <= Hi.
  Value range(int64_t Lo, int64_t Hi) const;
  Value singleton(int64_t K) const { return range(K, K); }
  int64_t lo(Value A) const;
  int64_t hi(Value A) const;

  /// Strict monotone abstract addition.
  Value sum(Value A, Value B) const;
  /// Monotone filter: may the value be zero?
  bool isMaybeZero(Value A) const;

private:
  int64_t clamp(int64_t X) const;

  ValueFactory &F;
  int64_t Bound;
  Symbol RangeSym;
  Value Bot, Top;
};

/// The Strong Update lattice of Lhoták & Chung (POPL'11), Figure 4 of the
/// FLIX paper: Bottom ⊑ Single(p) ⊑ Top.
class SULattice final : public Lattice {
public:
  explicit SULattice(ValueFactory &F);

  std::string name() const override { return "SU"; }
  Value bot() const override { return Bot; }
  Value top() const override { return Top; }
  bool leq(Value A, Value B) const override;
  Value lub(Value A, Value B) const override;
  Value glb(Value A, Value B) const override;

  /// Builds Single(p) for abstract object \p P.
  Value single(Value P) const;
  bool isSingle(Value A) const;
  Value singleObject(Value A) const;

  /// The paper's `filter` function: does points-to target \p B survive the
  /// strong-update information \p T? (Figure 4.)
  bool filter(Value T, Value B) const;

private:
  ValueFactory &F;
  Symbol SingleSym;
  Value Bot, Top;
};

/// Shortest-path cost lattice (N ∪ {∞}, ∞, 0, ≥, min, max) from §4.4.
/// Note the order is reversed: larger costs are *lower* in the lattice, so
/// the least fixed point is the minimal distance.
class MinCostLattice final : public Lattice {
public:
  explicit MinCostLattice(ValueFactory &F);

  std::string name() const override { return "MinCost"; }
  Value bot() const override { return Inf; }
  Value top() const override { return Zero; }
  bool leq(Value A, Value B) const override;
  Value lub(Value A, Value B) const override;
  Value glb(Value A, Value B) const override;

  Value infinity() const { return Inf; }
  Value cost(int64_t C) const;
  bool isInfinity(Value A) const { return A == Inf; }
  int64_t costValue(Value A) const;

  /// Monotone transfer: adds edge weight \p W (saturating at ∞).
  Value addCost(Value A, int64_t W) const;

private:
  ValueFactory &F;
  Value Inf, Zero;
};

/// Finite powerset lattice over an explicit universe, ordered by ⊆.
class PowersetLattice final : public Lattice {
public:
  PowersetLattice(ValueFactory &F, std::vector<Value> Universe);

  std::string name() const override { return "Powerset"; }
  Value bot() const override { return Empty; }
  Value top() const override { return Univ; }
  bool leq(Value A, Value B) const override { return F.setSubsetOf(A, B); }
  Value lub(Value A, Value B) const override { return F.setUnion(A, B); }
  Value glb(Value A, Value B) const override { return F.setIntersect(A, B); }

private:
  ValueFactory &F;
  Value Empty, Univ;
};

/// The IDE micro-function lattice (§4.3, Figure 7): λl.⊥ and functions
/// λl.(a·l + b) ⊔ c over the Constant lattice. Join of functions with
/// different linear parts conservatively widens to the constant-⊤ function
/// NonBot(0, 0, ⊤) — the same collapse Figure 7's `comp` uses.
class TransformerLattice final : public Lattice {
public:
  TransformerLattice(ValueFactory &F, const ConstantLattice &CL);

  std::string name() const override { return "Transformer"; }
  Value bot() const override { return Bot; }
  Value top() const override { return Top; }
  bool leq(Value A, Value B) const override;
  Value lub(Value A, Value B) const override;
  Value glb(Value A, Value B) const override;

  /// Builds NonBot(a, b, c); \p C must be a Constant-lattice element.
  Value nonBot(int64_t A, int64_t B, Value C) const;
  /// The identity micro-function λl.l, used by the IDE JumpFn seed rule.
  Value identity() const { return Identity; }
  bool isBotTransformer(Value T) const { return T == Bot; }

  /// Micro-function composition — the FLIX function of Figure 7, verbatim.
  /// `comp(T1, T2)` applies \p T1 first, then \p T2 (i.e. T2 ∘ T1), which
  /// is the order the IDE rules of Figure 6 rely on.
  Value comp(Value T1, Value T2) const;

  /// Applies micro-function \p T to constant-lattice element \p V.
  Value apply(Value T, Value V) const;

  /// The value lattice V the micro-functions transform.
  const ConstantLattice &constants() const { return CL; }

private:
  struct NonBotParts {
    int64_t A, B;
    Value C;
  };
  NonBotParts parts(Value T) const;

  ValueFactory &F;
  const ConstantLattice &CL;
  Symbol NonBotSym;
  Value Bot, Top, Identity;
};

} // namespace flix

#endif // FLIX_RUNTIME_LATTICES_H
