//===- runtime/Value.cpp - Hash-consed runtime values ---------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "runtime/Value.h"

#include <algorithm>
#include <sstream>

using namespace flix;

static_assert(sizeof(void *) >= 8, "Value handles assume a 64-bit host");

template <typename EqFn, typename MakeFn>
uint32_t ValueFactory::internIn(FlatIndex &Ix, uint64_t H, EqFn Eq,
                                MakeFn MakeNew) {
  // Grow at 70% load (including initial allocation).
  if (Ix.Count * 10 >= Ix.capacity() * 7) {
    size_t NewCap = std::max<size_t>(64, Ix.capacity() * 2);
    FlatIndex NewIx;
    NewIx.Hashes.assign(NewCap, 0);
    NewIx.Ids.assign(NewCap, FlatIndex::Empty);
    NewIx.Count = Ix.Count;
    size_t Mask = NewCap - 1;
    for (size_t I = 0; I < Ix.capacity(); ++I) {
      if (Ix.Ids[I] == FlatIndex::Empty)
        continue;
      size_t Slot = Ix.Hashes[I] & Mask;
      while (NewIx.Ids[Slot] != FlatIndex::Empty)
        Slot = (Slot + 1) & Mask;
      NewIx.Hashes[Slot] = Ix.Hashes[I];
      NewIx.Ids[Slot] = Ix.Ids[I];
    }
    Ix = std::move(NewIx);
  }

  size_t Mask = Ix.capacity() - 1;
  size_t Slot = H & Mask;
  while (Ix.Ids[Slot] != FlatIndex::Empty) {
    if (Ix.Hashes[Slot] == H && Eq(Ix.Ids[Slot]))
      return Ix.Ids[Slot];
    Slot = (Slot + 1) & Mask;
  }
  uint32_t Id = MakeNew();
  Ix.Hashes[Slot] = H;
  Ix.Ids[Slot] = Id;
  ++Ix.Count;
  return Id;
}

Value ValueFactory::tag(Symbol TagName, Value Payload) {
  uint64_t H = hashValues(static_cast<uint64_t>(TagName.Id), Payload.hash());
  unsigned ShardId = shardOfHash(H);
  Shard &S = Shards[ShardId];
  auto Lock = lockShard(S);
  uint32_t Id = internIn(
      S.TagIx, H,
      [&](uint32_t Enc) {
        const TagRecord &R = S.Tags[localOfId(Enc)];
        return R.Name == TagName && R.Payload == Payload;
      },
      [&] {
        S.PayloadBytes += sizeof(TagRecord);
        return static_cast<uint32_t>(
            encodeId(ShardId, S.Tags.push_back({TagName, Payload})));
      });
  return Value(ValueKind::Tag, Id);
}

Value ValueFactory::internSeq(std::span<const Value> Elems, ValueKind K) {
  uint64_t H = 0x7c0fa1d2b3e4f596ULL;
  for (const Value &V : Elems)
    H = hashCombine(H, V.hash());
  unsigned ShardId = shardOfHash(H);
  Shard &S = Shards[ShardId];
  auto Lock = lockShard(S);
  uint32_t Id = internIn(
      S.SeqIx, H,
      [&](uint32_t Enc) {
        const std::vector<Value> &Sq = S.Seqs[localOfId(Enc)];
        return Sq.size() == Elems.size() &&
               std::equal(Sq.begin(), Sq.end(), Elems.begin());
      },
      [&] {
        S.PayloadBytes += Elems.size() * sizeof(Value) +
                          sizeof(std::vector<Value>);
        return static_cast<uint32_t>(encodeId(
            ShardId,
            S.Seqs.push_back(std::vector<Value>(Elems.begin(), Elems.end()))));
      });
  return Value(K, Id);
}

Value ValueFactory::tuple(std::span<const Value> Elems) {
  return internSeq(Elems, ValueKind::Tuple);
}

Value ValueFactory::set(std::vector<Value> Elems) {
  std::sort(Elems.begin(), Elems.end());
  Elems.erase(std::unique(Elems.begin(), Elems.end()), Elems.end());
  return internSeq(Elems, ValueKind::Set);
}

Symbol ValueFactory::tagName(Value V) const {
  assert(V.isTag() && "not a Tag value");
  const Shard &S = Shards[shardOfId(V.rawBits())];
  return S.Tags[localOfId(V.rawBits())].Name;
}

Value ValueFactory::tagPayload(Value V) const {
  assert(V.isTag() && "not a Tag value");
  const Shard &S = Shards[shardOfId(V.rawBits())];
  return S.Tags[localOfId(V.rawBits())].Payload;
}

std::span<const Value> ValueFactory::tupleElems(Value V) const {
  assert(V.isTuple() && "not a Tuple value");
  return seq(V);
}

std::span<const Value> ValueFactory::setElems(Value V) const {
  assert(V.isSet() && "not a Set value");
  return seq(V);
}

Value ValueFactory::setInsert(Value SetV, Value Elem) {
  std::span<const Value> Old = setElems(SetV);
  if (std::binary_search(Old.begin(), Old.end(), Elem))
    return SetV;
  std::vector<Value> Elems(Old.begin(), Old.end());
  Elems.insert(std::upper_bound(Elems.begin(), Elems.end(), Elem), Elem);
  return internSeq(Elems, ValueKind::Set);
}

Value ValueFactory::setUnion(Value A, Value B) {
  std::span<const Value> EA = setElems(A), EB = setElems(B);
  std::vector<Value> Out;
  Out.reserve(EA.size() + EB.size());
  std::set_union(EA.begin(), EA.end(), EB.begin(), EB.end(),
                 std::back_inserter(Out));
  return internSeq(Out, ValueKind::Set);
}

Value ValueFactory::setIntersect(Value A, Value B) {
  std::span<const Value> EA = setElems(A), EB = setElems(B);
  std::vector<Value> Out;
  std::set_intersection(EA.begin(), EA.end(), EB.begin(), EB.end(),
                        std::back_inserter(Out));
  return internSeq(Out, ValueKind::Set);
}

bool ValueFactory::setContains(Value SetV, Value Elem) const {
  std::span<const Value> E = setElems(SetV);
  return std::binary_search(E.begin(), E.end(), Elem);
}

bool ValueFactory::setSubsetOf(Value A, Value B) const {
  std::span<const Value> EA = setElems(A), EB = setElems(B);
  return std::includes(EB.begin(), EB.end(), EA.begin(), EA.end());
}

std::string ValueFactory::toString(Value V) const {
  std::ostringstream OS;
  switch (V.kind()) {
  case ValueKind::Unit:
    OS << "()";
    break;
  case ValueKind::Bool:
    OS << (V.asBool() ? "true" : "false");
    break;
  case ValueKind::Int:
    OS << V.asInt();
    break;
  case ValueKind::Str:
    OS << '"' << Strings.text(V.asStr()) << '"';
    break;
  case ValueKind::Tag: {
    OS << Strings.text(tagName(V));
    Value P = tagPayload(V);
    if (!P.isUnit())
      OS << '(' << toString(P) << ')';
    break;
  }
  case ValueKind::Tuple: {
    OS << '(';
    bool First = true;
    for (const Value &E : tupleElems(V)) {
      if (!First)
        OS << ", ";
      First = false;
      OS << toString(E);
    }
    OS << ')';
    break;
  }
  case ValueKind::Set: {
    OS << '{';
    bool First = true;
    for (const Value &E : setElems(V)) {
      if (!First)
        OS << ", ";
      First = false;
      OS << toString(E);
    }
    OS << '}';
    break;
  }
  }
  return OS.str();
}

size_t ValueFactory::memoryBytes() const {
  size_t Bytes = 0;
  for (const Shard &S : Shards) {
    // Lock so a concurrently interning solver cannot race this read (the
    // stress path: several solvers sharing one factory).
    auto Lock = lockShard(S);
    Bytes += S.PayloadBytes +
             S.TagIx.capacity() * (sizeof(uint64_t) + sizeof(uint32_t)) +
             S.SeqIx.capacity() * (sizeof(uint64_t) + sizeof(uint32_t));
  }
  return Bytes;
}
