//===- runtime/Value.h - Hash-consed runtime values -----------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value representation shared by the fixpoint engine and the
/// FLIX interpreter. A Value is a 1+8 byte immutable handle; compound
/// values (strings, tags, tuples, sets) are hash-consed in a ValueFactory,
/// so structural equality and hashing are O(1) handle operations. This is
/// the C++ answer to the boxed-objects inefficiency the paper reports for
/// its Scala implementation (§4.5).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_RUNTIME_VALUE_H
#define FLIX_RUNTIME_VALUE_H

#include "support/Hashing.h"
#include "support/SegmentedVector.h"
#include "support/StringInterner.h"

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace flix {

/// Discriminator for Value.
enum class ValueKind : uint8_t {
  Unit,  ///< the unit value
  Bool,  ///< true / false
  Int,   ///< 64-bit signed integer
  Str,   ///< interned string (payload: Symbol id)
  Tag,   ///< enum constructor applied to a payload (payload: factory index)
  Tuple, ///< fixed-arity tuple (payload: factory index)
  Set,   ///< finite set of values (payload: factory index)
};

/// An immutable runtime value. Values are meaningful only relative to the
/// ValueFactory that created them; two values from the same factory are
/// structurally equal iff their handles are equal.
class Value {
public:
  Value() : Kind(ValueKind::Unit), Bits(0) {}

  ValueKind kind() const { return Kind; }

  bool isUnit() const { return Kind == ValueKind::Unit; }
  bool isBool() const { return Kind == ValueKind::Bool; }
  bool isInt() const { return Kind == ValueKind::Int; }
  bool isStr() const { return Kind == ValueKind::Str; }
  bool isTag() const { return Kind == ValueKind::Tag; }
  bool isTuple() const { return Kind == ValueKind::Tuple; }
  bool isSet() const { return Kind == ValueKind::Set; }

  bool asBool() const {
    assert(isBool() && "not a Bool value");
    return Bits != 0;
  }
  int64_t asInt() const {
    assert(isInt() && "not an Int value");
    return static_cast<int64_t>(Bits);
  }
  Symbol asStr() const {
    assert(isStr() && "not a Str value");
    return Symbol{static_cast<uint32_t>(Bits)};
  }

  bool operator==(const Value &O) const {
    return Kind == O.Kind && Bits == O.Bits;
  }
  bool operator!=(const Value &O) const { return !(*this == O); }

  /// Arbitrary-but-deterministic total order within one factory; used to
  /// canonicalize set elements and as a map key order.
  bool operator<(const Value &O) const {
    if (Kind != O.Kind)
      return Kind < O.Kind;
    return Bits < O.Bits;
  }

  uint64_t hash() const {
    return hashValues(static_cast<uint64_t>(Kind), Bits);
  }

  /// Raw payload bits, exposed for the ValueFactory and hashing only.
  uint64_t rawBits() const { return Bits; }

private:
  friend class ValueFactory;
  Value(ValueKind K, uint64_t B) : Kind(K), Bits(B) {}

  ValueKind Kind;
  uint64_t Bits;
};

/// Creates and interns values. All compound values are hash-consed: building
/// the same tag/tuple/set twice yields the identical handle.
///
/// By default a ValueFactory is single-threaded. Calling
/// enableConcurrentInterning() switches it to *lock-sharded* operation for
/// the parallel solver: the hash-consing tables are split into power-of-two
/// shards keyed by the structural hash, interning takes only the owning
/// shard's mutex, and read accessors (tupleElems, setElems, tagName, ...)
/// stay entirely lock-free — payload storage is a SegmentedVector, so any
/// handle a thread can legitimately hold refers to memory written before
/// the handle escaped its shard lock (see DESIGN.md §S11 for the tradeoff
/// against per-worker scratch factories).
class ValueFactory {
public:
  ValueFactory() = default;
  ValueFactory(const ValueFactory &) = delete;
  ValueFactory &operator=(const ValueFactory &) = delete;

  Value unit() const { return Value(ValueKind::Unit, 0); }
  Value boolean(bool B) const { return Value(ValueKind::Bool, B ? 1 : 0); }
  Value integer(int64_t I) const {
    return Value(ValueKind::Int, static_cast<uint64_t>(I));
  }

  /// Interns \p Text and returns the corresponding Str value.
  Value string(std::string_view Text) {
    return Value(ValueKind::Str, Strings.intern(Text).Id);
  }
  Value string(Symbol Sym) const { return Value(ValueKind::Str, Sym.Id); }

  /// Builds `TagName(Payload)`. Nullary enum cases use a Unit payload.
  Value tag(Symbol TagName, Value Payload);
  Value tag(std::string_view TagName, Value Payload) {
    return tag(Strings.intern(TagName), Payload);
  }
  Value tag(std::string_view TagName) { return tag(TagName, unit()); }

  /// Builds an n-ary tuple.
  Value tuple(std::span<const Value> Elems);
  Value tuple(std::initializer_list<Value> Elems) {
    return tuple(std::span<const Value>(Elems.begin(), Elems.size()));
  }

  /// Builds a set; duplicates are removed and the representation is
  /// canonically ordered so equal sets have equal handles.
  Value set(std::vector<Value> Elems);
  Value emptySet() { return set({}); }

  Symbol tagName(Value V) const;
  Value tagPayload(Value V) const;
  std::span<const Value> tupleElems(Value V) const;
  std::span<const Value> setElems(Value V) const;

  /// Returns a set with \p Elem inserted.
  Value setInsert(Value SetV, Value Elem);
  /// Returns the union of two set values.
  Value setUnion(Value A, Value B);
  /// Returns the intersection of two set values.
  Value setIntersect(Value A, Value B);
  /// True if \p Elem is a member of set \p SetV.
  bool setContains(Value SetV, Value Elem) const;
  /// True if set \p A is a subset of set \p B.
  bool setSubsetOf(Value A, Value B) const;

  /// The interner backing Str values and tag names.
  StringInterner &strings() { return Strings; }
  const StringInterner &strings() const { return Strings; }

  /// Renders \p V for debugging and test assertions, e.g.
  /// `Parity.Odd`, `("x", 3)`, `{1, 2}`.
  std::string toString(Value V) const;

  /// Approximate heap footprint of all interned compound values, used by
  /// the benchmark harness as a deterministic memory metric.
  size_t memoryBytes() const;

  /// Switches interning to lock-sharded concurrent operation (see class
  /// comment). One-way: once enabled it stays enabled, so concurrent
  /// solvers sharing this factory cannot race on the mode itself.
  void enableConcurrentInterning() {
    Strings.enableConcurrent();
    Concurrent.store(true, std::memory_order_release);
  }
  bool concurrentInterning() const {
    return Concurrent.load(std::memory_order_relaxed);
  }

private:
  struct TagRecord {
    Symbol Name;
    Value Payload;
  };

  /// Open-addressing hash index (hash, id) with linear probing — the
  /// hash-consing tables are the hottest structures in the solver, and a
  /// flat layout beats node-based maps by a wide margin.
  struct FlatIndex {
    std::vector<uint64_t> Hashes;
    std::vector<uint32_t> Ids; ///< Empty = UINT32_MAX
    size_t Count = 0;

    static constexpr uint32_t Empty = UINT32_MAX;
    size_t capacity() const { return Ids.size(); }
  };

  /// Compound-value ids are sharded by structural hash: handle payload
  /// bits encode (shard, per-shard index) as Local·NumShards + Shard.
  /// Structurally equal values hash equal, so consing stays canonical;
  /// interning locks only the owning shard (and only in concurrent mode).
  static constexpr uint64_t NumShards = 8;
  static unsigned shardOfHash(uint64_t H) {
    // High bits: the FlatIndex slot uses the low bits, and reusing them
    // for shard selection would leave 7/8 of each shard's slots unused.
    return static_cast<unsigned>(H >> 61);
  }
  static uint64_t encodeId(unsigned Shard, size_t Local) {
    return static_cast<uint64_t>(Local) * NumShards + Shard;
  }
  static unsigned shardOfId(uint64_t Bits) {
    return static_cast<unsigned>(Bits & (NumShards - 1));
  }
  static size_t localOfId(uint64_t Bits) { return Bits / NumShards; }

  struct Shard {
    mutable std::mutex Mu;
    FlatIndex TagIx;
    FlatIndex SeqIx;
    SegmentedVector<TagRecord> Tags;
    // Tuples and sets share the element-vector storage; sets are stored
    // in canonical (sorted, unique) order.
    SegmentedVector<std::vector<Value>> Seqs;
    /// Incrementally maintained heap estimate of Tags/Seqs payloads.
    size_t PayloadBytes = 0;
  };

  std::unique_lock<std::mutex> lockShard(const Shard &S) const {
    if (Concurrent.load(std::memory_order_relaxed))
      return std::unique_lock<std::mutex>(S.Mu);
    return {};
  }

  /// Finds the id interned under \p H for which \p Eq(id) holds, or
  /// inserts the id produced by \p MakeNew. Caller holds the shard lock.
  template <typename EqFn, typename MakeFn>
  static uint32_t internIn(FlatIndex &Ix, uint64_t H, EqFn Eq,
                           MakeFn MakeNew);

  Value internSeq(std::span<const Value> Elems, ValueKind K);

  const std::vector<Value> &seq(Value V) const {
    const Shard &S = Shards[shardOfId(V.rawBits())];
    return S.Seqs[localOfId(V.rawBits())];
  }

  StringInterner Strings;
  std::array<Shard, NumShards> Shards;
  std::atomic<bool> Concurrent{false};
};

} // namespace flix

namespace std {
template <> struct hash<flix::Value> {
  size_t operator()(const flix::Value &V) const noexcept { return V.hash(); }
};
} // namespace std

#endif // FLIX_RUNTIME_VALUE_H
