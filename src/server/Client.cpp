//===- server/Client.cpp - Blocking flixd client --------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "server/Client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace flix;
using namespace flix::server;

bool Client::connectTcp(const std::string &Host, uint16_t Port,
                        std::string &Err) {
  close();
  int S = ::socket(AF_INET, SOCK_STREAM, 0);
  if (S < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    Err = "bad address '" + Host + "'";
    ::close(S);
    return false;
  }
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Err = std::string("connect(") + Host + ":" + std::to_string(Port) +
          "): " + std::strerror(errno);
    ::close(S);
    return false;
  }
  int One = 1;
  ::setsockopt(S, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
  Fd = S;
  return true;
}

bool Client::connectUnix(const std::string &Path, std::string &Err) {
  close();
  sockaddr_un Addr{};
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "unix socket path too long";
    return false;
  }
  int S = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (S < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  if (::connect(S, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    Err = std::string("connect(") + Path + "): " + std::strerror(errno);
    ::close(S);
    return false;
  }
  Fd = S;
  return true;
}

void Client::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Buf.clear();
}

bool Client::sendAll(const char *Data, size_t Len, std::string &Err) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Data += N;
    Len -= size_t(N);
  }
  return true;
}

bool Client::readLine(std::string &Line, std::string &Err) {
  char Chunk[64 * 1024];
  while (true) {
    size_t Nl = Buf.find('\n');
    if (Nl != std::string::npos) {
      Line.assign(Buf, 0, Nl);
      Buf.erase(0, Nl + 1);
      if (!Line.empty() && Line.back() == '\r')
        Line.pop_back();
      return true;
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N < 0) {
      Err = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Err = "connection closed by server";
      return false;
    }
    Buf.append(Chunk, size_t(N));
  }
}

bool Client::call(const Json &Request, Json &Reply, std::string &Err) {
  return callRaw(writeJson(Request), Reply, Err);
}

bool Client::callRaw(const std::string &Line, Json &Reply,
                     std::string &Err) {
  if (Fd < 0) {
    Err = "not connected";
    return false;
  }
  std::string Out = Line;
  Out.push_back('\n');
  if (!sendAll(Out.data(), Out.size(), Err))
    return false;
  std::string ReplyLine;
  if (!readLine(ReplyLine, Err))
    return false;
  if (!parseJson(ReplyLine, Reply, Err)) {
    Err = "bad reply: " + Err;
    return false;
  }
  return true;
}
