//===- server/Client.h - Blocking flixd client ----------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal blocking client for the flixd wire protocol: connect over
/// TCP or a Unix-domain socket, send one JSON request per line, read one
/// JSON reply per line. Used by the protocol tests, the flixbench_client
/// load driver and scripts; it is intentionally synchronous — one
/// outstanding request per connection — because the server pipelines
/// across connections, not within one.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SERVER_CLIENT_H
#define FLIX_SERVER_CLIENT_H

#include "server/Json.h"

#include <string>

namespace flix {
namespace server {

class Client {
public:
  Client() = default;
  ~Client() { close(); }
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  Client(Client &&O) noexcept : Fd(O.Fd), Buf(std::move(O.Buf)) {
    O.Fd = -1;
  }

  /// Connects to a TCP endpoint (e.g. "127.0.0.1", 7643).
  bool connectTcp(const std::string &Host, uint16_t Port,
                  std::string &Err);
  /// Connects to a Unix-domain socket path.
  bool connectUnix(const std::string &Path, std::string &Err);

  bool connected() const { return Fd >= 0; }
  void close();

  /// Sends \p Request as one line and reads one reply line into
  /// \p Reply. Returns false on transport or reply-parse failure.
  bool call(const Json &Request, Json &Reply, std::string &Err);

  /// Raw-line variant for malformed-input tests: sends \p Line verbatim
  /// (a newline is appended) and reads one reply line.
  bool callRaw(const std::string &Line, Json &Reply, std::string &Err);

private:
  bool sendAll(const char *Data, size_t Len, std::string &Err);
  bool readLine(std::string &Line, std::string &Err);

  int Fd = -1;
  std::string Buf; ///< read-ahead buffer for line framing
};

} // namespace server
} // namespace flix

#endif // FLIX_SERVER_CLIENT_H
