//===- server/Json.cpp - Minimal JSON parser and writer -------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "server/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace flix;
using namespace flix::server;

namespace {

/// Strict recursive-descent parser over a string_view. Depth-limited:
/// request lines come from untrusted clients and a deeply nested array
/// must not overflow the native stack.
class Parser {
public:
  Parser(std::string_view Text, std::string &Err) : Text(Text), Err(Err) {}

  bool run(Json &Out) {
    skipWs();
    if (!value(Out, 0))
      return false;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing garbage after JSON value");
    return true;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  std::string_view Text;
  std::string &Err;
  size_t Pos = 0;

  bool fail(const char *Msg) {
    Err = std::string(Msg) + " at offset " + std::to_string(Pos);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\r' && C != '\n')
        break;
      ++Pos;
    }
  }

  bool literal(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  bool value(Json &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      if (!literal("null"))
        return fail("invalid literal");
      Out = Json::null();
      return true;
    case 't':
      if (!literal("true"))
        return fail("invalid literal");
      Out = Json::boolean(true);
      return true;
    case 'f':
      if (!literal("false"))
        return fail("invalid literal");
      Out = Json::boolean(false);
      return true;
    case '"':
      Out = Json::str("");
      return string(Out.Str);
    case '[':
      return array(Out, Depth);
    case '{':
      return object(Out, Depth);
    default:
      return number(Out);
    }
  }

  bool number(Json &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
      return fail("invalid number");
    while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
      ++Pos;
    bool IsInt = true;
    if (Pos < Text.size() && Text[Pos] == '.') {
      IsInt = false;
      ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digits required after decimal point");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      IsInt = false;
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (Pos >= Text.size() || Text[Pos] < '0' || Text[Pos] > '9')
        return fail("digits required in exponent");
      while (Pos < Text.size() && Text[Pos] >= '0' && Text[Pos] <= '9')
        ++Pos;
    }
    std::string Num(Text.substr(Start, Pos - Start));
    if (IsInt) {
      errno = 0;
      char *End = nullptr;
      long long V = std::strtoll(Num.c_str(), &End, 10);
      // Integers too wide for int64 degrade to double (still a valid
      // JSON number; fact columns reject non-Int values downstream).
      if (errno == 0 && End && *End == '\0') {
        Out = Json::integer(V);
        return true;
      }
    }
    Out = Json::number(std::strtod(Num.c_str(), nullptr));
    return true;
  }

  bool hexDigit(char C, unsigned &V) {
    if (C >= '0' && C <= '9')
      V = unsigned(C - '0');
    else if (C >= 'a' && C <= 'f')
      V = unsigned(C - 'a') + 10;
    else if (C >= 'A' && C <= 'F')
      V = unsigned(C - 'A') + 10;
    else
      return false;
    return true;
  }

  bool string(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out.push_back('"');
        break;
      case '\\':
        Out.push_back('\\');
        break;
      case '/':
        Out.push_back('/');
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          unsigned D;
          if (!hexDigit(Text[Pos++], D))
            return fail("invalid hex digit in \\u escape");
          Code = Code * 16 + D;
        }
        // Encode the code point as UTF-8. Surrogate pairs are passed
        // through as two 3-byte sequences (WTF-8-ish) — fact strings are
        // opaque bytes to the engine, exact pairing is not worth the
        // code here.
        if (Code < 0x80) {
          Out.push_back(static_cast<char>(Code));
        } else if (Code < 0x800) {
          Out.push_back(static_cast<char>(0xC0 | (Code >> 6)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        } else {
          Out.push_back(static_cast<char>(0xE0 | (Code >> 12)));
          Out.push_back(static_cast<char>(0x80 | ((Code >> 6) & 0x3F)));
          Out.push_back(static_cast<char>(0x80 | (Code & 0x3F)));
        }
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool array(Json &Out, unsigned Depth) {
    ++Pos; // '['
    Out = Json::array();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Json Elem;
      skipWs();
      if (!value(Elem, Depth + 1))
        return false;
      Out.Arr.push_back(std::move(Elem));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated array");
      char C = Text[Pos];
      if (C == ',') {
        ++Pos;
        continue;
      }
      if (C == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool object(Json &Out, unsigned Depth) {
    ++Pos; // '{'
    Out = Json::object();
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected string key in object");
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':' after object key");
      ++Pos;
      Json Val;
      skipWs();
      if (!value(Val, Depth + 1))
        return false;
      Out.Obj.emplace_back(std::move(Key), std::move(Val));
      skipWs();
      if (Pos >= Text.size())
        return fail("unterminated object");
      char C = Text[Pos];
      if (C == ',') {
        ++Pos;
        continue;
      }
      if (C == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }
};

void writeString(std::string &Out, const std::string &S) {
  Out.push_back('"');
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C & 0xFF);
        Out += Buf;
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
}

void write(std::string &Out, const Json &J) {
  switch (J.K) {
  case Json::Kind::Null:
    Out += "null";
    break;
  case Json::Kind::Bool:
    Out += J.B ? "true" : "false";
    break;
  case Json::Kind::Int:
    Out += std::to_string(J.Int);
    break;
  case Json::Kind::Double: {
    if (!std::isfinite(J.Dbl)) {
      Out += "null";
      break;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.17g", J.Dbl);
    Out += Buf;
    break;
  }
  case Json::Kind::Str:
    writeString(Out, J.Str);
    break;
  case Json::Kind::Arr: {
    Out.push_back('[');
    bool First = true;
    for (const Json &E : J.Arr) {
      if (!First)
        Out.push_back(',');
      First = false;
      write(Out, E);
    }
    Out.push_back(']');
    break;
  }
  case Json::Kind::Obj: {
    Out.push_back('{');
    bool First = true;
    for (const auto &[Key, Val] : J.Obj) {
      if (!First)
        Out.push_back(',');
      First = false;
      writeString(Out, Key);
      Out.push_back(':');
      write(Out, Val);
    }
    Out.push_back('}');
    break;
  }
  }
}

} // namespace

bool flix::server::parseJson(std::string_view Text, Json &Out,
                             std::string &Err) {
  return Parser(Text, Err).run(Out);
}

std::string flix::server::writeJson(const Json &J) {
  std::string Out;
  Out.reserve(64);
  write(Out, J);
  return Out;
}
