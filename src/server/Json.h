//===- server/Json.h - Minimal JSON value, parser, writer -----*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire format of the flixd daemon is newline-delimited JSON
/// (DESIGN.md S14). This is a deliberately small, dependency-free JSON
/// value type with a strict recursive-descent parser and a writer:
///
///   * Integers are kept exact (int64) — fact columns are Int values and
///     must round-trip without floating-point loss; numbers written with
///     a fraction or exponent parse as doubles.
///   * Objects preserve member order and use linear lookup (protocol
///     objects are small, a hash map per request would cost more than it
///     saves).
///   * The parser enforces a nesting-depth limit so a hostile request
///     line cannot overflow the stack, and reports offset-carrying
///     errors for the protocol's parse_error replies.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SERVER_JSON_H
#define FLIX_SERVER_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace flix {
namespace server {

/// One JSON value. A plain tagged struct rather than a variant: protocol
/// code reads much better with `J.isStr()` / `J.Str` than with
/// std::get_if chains, and the duplicated storage is irrelevant at
/// request sizes.
struct Json {
  enum class Kind : uint8_t { Null, Bool, Int, Double, Str, Arr, Obj };

  Kind K = Kind::Null;
  bool B = false;
  int64_t Int = 0;
  double Dbl = 0;
  std::string Str;
  std::vector<Json> Arr;
  std::vector<std::pair<std::string, Json>> Obj;

  Json() = default;

  static Json null() { return Json(); }
  static Json boolean(bool V) {
    Json J;
    J.K = Kind::Bool;
    J.B = V;
    return J;
  }
  static Json integer(int64_t V) {
    Json J;
    J.K = Kind::Int;
    J.Int = V;
    return J;
  }
  static Json number(double V) {
    Json J;
    J.K = Kind::Double;
    J.Dbl = V;
    return J;
  }
  static Json str(std::string V) {
    Json J;
    J.K = Kind::Str;
    J.Str = std::move(V);
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Arr;
    return J;
  }
  static Json object() {
    Json J;
    J.K = Kind::Obj;
    return J;
  }

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isInt() const { return K == Kind::Int; }
  bool isNum() const { return K == Kind::Int || K == Kind::Double; }
  bool isStr() const { return K == Kind::Str; }
  bool isArr() const { return K == Kind::Arr; }
  bool isObj() const { return K == Kind::Obj; }

  /// Numeric value as a double regardless of Int/Double storage.
  double num() const { return K == Kind::Int ? double(Int) : Dbl; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json *get(std::string_view Key) const {
    if (K != Kind::Obj)
      return nullptr;
    for (const auto &[Name, Val] : Obj)
      if (Name == Key)
        return &Val;
    return nullptr;
  }

  /// Appends an object member (no duplicate check; encoders control the
  /// key set).
  Json &set(std::string Key, Json Val) {
    Obj.emplace_back(std::move(Key), std::move(Val));
    return *this;
  }
};

/// Parses exactly one JSON value spanning all of \p Text (trailing
/// whitespace allowed, trailing garbage is an error). On failure returns
/// false and fills \p Err with a message carrying the byte offset.
bool parseJson(std::string_view Text, Json &Out, std::string &Err);

/// Serializes \p J on one line (no newline appended; the wire framing
/// adds it). Non-finite doubles are written as null per JSON rules.
std::string writeJson(const Json &J);

} // namespace server
} // namespace flix

#endif // FLIX_SERVER_JSON_H
