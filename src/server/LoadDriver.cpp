//===- server/LoadDriver.cpp - Concurrent flixd load driver ---------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "server/LoadDriver.h"

#include "server/Client.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

using namespace flix;
using namespace flix::server;

const char *flix::server::benchProgramSource() {
  return R"flix(
def leq(e1: Int, e2: Int): Bool = e1 >= e2
def lub(e1: Int, e2: Int): Int = if (e1 <= e2) e1 else e2
def glb(e1: Int, e2: Int): Int = if (e1 >= e2) e1 else e2
let Int<> = (99999999, 0, leq, lub, glb);

rel Edge(x: Int, y: Int, c: Int);
lat Dist(x: Int, Int<>);

Dist(0, 0).
Dist(y, d + c) :- Dist(x, d), Edge(x, y, c).
)flix";
}

namespace {

/// xorshift64* — deterministic, cheap, and good enough to spread keys.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 0x9e3779b97f4a7c15ULL) {}
  uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545F4914F6CDD1DULL;
  }
  uint64_t below(uint64_t N) { return next() % N; }
};

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - T0)
      .count();
}

struct WorkerStats {
  uint64_t Mutations = 0;
  uint64_t Queries = 0;
  uint64_t Rows = 0;
  uint64_t Errors = 0;
  uint64_t DeadlineExceeded = 0;
  uint64_t Overloaded = 0;
  std::vector<double> MutationMs;
  std::vector<double> QueryMs;
  std::string FirstError;
};

bool connectClient(const LoadOptions &O, Client &C, std::string &Err) {
  if (!O.UnixPath.empty())
    return C.connectUnix(O.UnixPath, Err);
  return C.connectTcp(O.Host, O.Port, Err);
}

/// One edge row within the bounded random graph. Edges always point
/// "forward" (x < y) with node 0 as the source, so every added edge can
/// extend shortest paths and every retract can shrink them.
Json edgeRow(Rng &R, unsigned KeySpace) {
  uint64_t X = R.below(KeySpace - 1);
  uint64_t Y = X + 1 + R.below(KeySpace - X - 1);
  uint64_t C = 1 + R.below(9);
  Json Row = Json::array();
  Row.Arr.push_back(Json::integer(int64_t(X)));
  Row.Arr.push_back(Json::integer(int64_t(Y)));
  Row.Arr.push_back(Json::integer(int64_t(C)));
  return Row;
}

void workerMain(const LoadOptions &O, unsigned Id,
                std::atomic<bool> &StopFlag, WorkerStats &WS) {
  Client C;
  std::string Err;
  if (!connectClient(O, C, Err)) {
    WS.FirstError = Err;
    ++WS.Errors;
    return;
  }
  // Distinct streams per worker; the retract stream replays the add
  // stream one step behind, so every retracted row was added earlier by
  // this same worker and the graph stays bounded.
  Rng AddRng(O.Seed * 1000003 + Id);
  Rng RetractRng(O.Seed * 1000003 + Id);
  Rng MixRng(O.Seed * 7919 + Id + 1);
  uint64_t PendingAdds = 0;

  while (!StopFlag.load(std::memory_order_acquire)) {
    bool DoQuery =
        double(MixRng.below(1u << 20)) / double(1u << 20) < O.QueryRatio;
    Json Req = Json::object();
    if (O.DeadlineMs > 0)
      Req.set("deadline_ms", Json::number(O.DeadlineMs));
    bool IsMutation = !DoQuery;
    if (DoQuery) {
      Req.set("op", Json::str("query"));
      Req.set("db", Json::str(O.Db));
      Req.set("pred", Json::str("Dist"));
      Json Key = Json::array();
      Key.Arr.push_back(Json::integer(int64_t(MixRng.below(O.KeySpace))));
      Req.set("key", std::move(Key));
    } else {
      // Alternate adds and retracts once enough adds are in flight;
      // the retract stream lags the add stream, keeping total edges
      // roughly KeySpace-proportional.
      bool Retract = PendingAdds > O.KeySpace && MixRng.below(2) == 0;
      Rng &Stream = Retract ? RetractRng : AddRng;
      Json Rows = Json::array();
      for (unsigned I = 0; I < O.RowsPerRequest; ++I)
        Rows.Arr.push_back(edgeRow(Stream, O.KeySpace));
      if (Retract)
        PendingAdds -= O.RowsPerRequest;
      else
        PendingAdds += O.RowsPerRequest;
      Req.set("op",
              Json::str(Retract ? "retract_facts" : "add_facts"));
      Req.set("db", Json::str(O.Db));
      Req.set("pred", Json::str("Edge"));
      Req.set("rows", std::move(Rows));
    }

    Clock::time_point T0 = Clock::now();
    Json Reply;
    if (!C.call(Req, Reply, Err)) {
      if (WS.FirstError.empty())
        WS.FirstError = Err;
      ++WS.Errors;
      return; // transport broken; stop this worker
    }
    double Ms = msSince(T0);
    const Json *Ok = Reply.get("ok");
    if (!Ok || !Ok->isBool() || !Ok->B) {
      const Json *CodeJ = Reply.get("code");
      std::string Code = CodeJ && CodeJ->isStr() ? CodeJ->Str : "";
      if (Code == "deadline_exceeded")
        ++WS.DeadlineExceeded;
      else if (Code == "overloaded")
        ++WS.Overloaded;
      else {
        ++WS.Errors;
        if (WS.FirstError.empty()) {
          const Json *ErrJ = Reply.get("error");
          WS.FirstError =
              Code + ": " +
              (ErrJ && ErrJ->isStr() ? ErrJ->Str : std::string("?"));
        }
      }
      continue;
    }
    if (IsMutation) {
      ++WS.Mutations;
      WS.Rows += O.RowsPerRequest;
      WS.MutationMs.push_back(Ms);
    } else {
      ++WS.Queries;
      WS.QueryMs.push_back(Ms);
    }
  }
}

double percentile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0;
  size_t Idx = size_t(P * double(V.size() - 1));
  std::nth_element(V.begin(), V.begin() + Idx, V.end());
  return V[Idx];
}

} // namespace

Json LoadReport::toJson() const {
  Json J = Json::object();
  J.set("ok", Json::boolean(Ok));
  if (!Ok)
    J.set("error", Json::str(Error));
  J.set("clients", Json::integer(int64_t(Clients)));
  J.set("seconds", Json::number(Seconds));
  J.set("mutation_requests", Json::integer(int64_t(MutationRequests)));
  J.set("query_requests", Json::integer(int64_t(QueryRequests)));
  J.set("rows_sent", Json::integer(int64_t(RowsSent)));
  J.set("errors", Json::integer(int64_t(Errors)));
  J.set("deadline_exceeded", Json::integer(int64_t(DeadlineExceeded)));
  J.set("overloaded", Json::integer(int64_t(Overloaded)));
  J.set("update_batches", Json::integer(int64_t(UpdateBatches)));
  J.set("coalesced_requests",
        Json::integer(int64_t(CoalescedRequests)));
  J.set("fallback_solves", Json::integer(int64_t(FallbackSolves)));
  J.set("negation_fallbacks", Json::integer(int64_t(NegationFallbacks)));
  J.set("degraded_recoveries",
        Json::integer(int64_t(DegradedRecoveries)));
  J.set("final_generation", Json::integer(int64_t(FinalGeneration)));
  J.set("mutations_per_sec", Json::number(MutationsPerSec));
  J.set("rows_per_sec", Json::number(RowsPerSec));
  J.set("queries_per_sec", Json::number(QueriesPerSec));
  J.set("mutation_p50_ms", Json::number(MutationP50Ms));
  J.set("mutation_p99_ms", Json::number(MutationP99Ms));
  J.set("query_p50_ms", Json::number(QueryP50Ms));
  J.set("query_p99_ms", Json::number(QueryP99Ms));
  return J;
}

LoadReport flix::server::runLoad(const LoadOptions &O) {
  LoadReport Rep;
  Rep.Clients = O.Clients;

  Client Ctl;
  std::string Err;
  if (!connectClient(O, Ctl, Err)) {
    Rep.Error = "control connection: " + Err;
    return Rep;
  }
  if (O.LoadProgram) {
    Json Req = Json::object();
    Req.set("op", Json::str("load_program"));
    Req.set("db", Json::str(O.Db));
    Req.set("source", Json::str(benchProgramSource()));
    Req.set("replace", Json::boolean(true));
    Json Reply;
    if (!Ctl.call(Req, Reply, Err)) {
      Rep.Error = "load_program: " + Err;
      return Rep;
    }
    const Json *Ok = Reply.get("ok");
    if (!Ok || !Ok->isBool() || !Ok->B) {
      const Json *ErrJ = Reply.get("error");
      Rep.Error = "load_program rejected: " +
                  (ErrJ && ErrJ->isStr() ? ErrJ->Str : std::string("?"));
      return Rep;
    }
  }

  std::atomic<bool> StopFlag{false};
  std::vector<WorkerStats> Stats(O.Clients);
  std::vector<std::thread> Threads;
  Threads.reserve(O.Clients);
  Clock::time_point T0 = Clock::now();
  for (unsigned I = 0; I < O.Clients; ++I)
    Threads.emplace_back(workerMain, std::cref(O), I, std::ref(StopFlag),
                         std::ref(Stats[I]));
  std::this_thread::sleep_for(std::chrono::duration<double>(O.Seconds));
  StopFlag.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  Rep.Seconds =
      std::chrono::duration<double>(Clock::now() - T0).count();

  std::vector<double> MutMs, QryMs;
  for (WorkerStats &WS : Stats) {
    Rep.MutationRequests += WS.Mutations;
    Rep.QueryRequests += WS.Queries;
    Rep.RowsSent += WS.Rows;
    Rep.Errors += WS.Errors;
    Rep.DeadlineExceeded += WS.DeadlineExceeded;
    Rep.Overloaded += WS.Overloaded;
    MutMs.insert(MutMs.end(), WS.MutationMs.begin(), WS.MutationMs.end());
    QryMs.insert(QryMs.end(), WS.QueryMs.begin(), WS.QueryMs.end());
    if (Rep.Error.empty() && !WS.FirstError.empty())
      Rep.Error = WS.FirstError;
  }
  if (Rep.Seconds > 0) {
    Rep.MutationsPerSec = double(Rep.MutationRequests) / Rep.Seconds;
    Rep.RowsPerSec = double(Rep.RowsSent) / Rep.Seconds;
    Rep.QueriesPerSec = double(Rep.QueryRequests) / Rep.Seconds;
  }
  Rep.MutationP50Ms = percentile(MutMs, 0.50);
  Rep.MutationP99Ms = percentile(MutMs, 0.99);
  Rep.QueryP50Ms = percentile(QryMs, 0.50);
  Rep.QueryP99Ms = percentile(QryMs, 0.99);

  // Final server-side stats for coalescing and fallback counters.
  {
    Json Req = Json::object();
    Req.set("op", Json::str("stats"));
    Req.set("db", Json::str(O.Db));
    Json Reply;
    if (Ctl.call(Req, Reply, Err)) {
      if (const Json *DbJ = Reply.get("db")) {
        auto getInt = [&](const char *Name) -> uint64_t {
          const Json *J = DbJ->get(Name);
          return J && J->isInt() && J->Int >= 0 ? uint64_t(J->Int) : 0;
        };
        Rep.UpdateBatches = getInt("update_batches");
        Rep.CoalescedRequests = getInt("coalesced_requests");
        Rep.FallbackSolves = getInt("fallback_solves");
        Rep.NegationFallbacks = getInt("negation_fallbacks");
        Rep.DegradedRecoveries = getInt("degraded_recoveries");
        Rep.FinalGeneration = getInt("generation");
      }
    }
  }

  Rep.Ok = Rep.Error.empty();
  return Rep;
}
