//===- server/LoadDriver.h - Concurrent flixd load driver -----*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A load driver for flixd, shared by the flixbench_client tool and the
/// bench/server_throughput target: N client threads (each with its own
/// connection) hammer one database with a deterministic mix of add_facts
/// / retract_facts / query requests over a bounded shortest-paths graph,
/// then the driver reports sustained throughput and tail latency — the
/// numbers BENCH_server.json records. The workload keeps the key space
/// bounded so the solve cost per batch stays roughly constant and the
/// measurement converges; mutations touch random Edge rows, queries hit
/// random Dist cells, so write coalescing and snapshot isolation are
/// both on the measured path.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SERVER_LOADDRIVER_H
#define FLIX_SERVER_LOADDRIVER_H

#include "server/Json.h"

#include <cstdint>
#include <string>

namespace flix {
namespace server {

struct LoadOptions {
  std::string Host = "127.0.0.1";
  uint16_t Port = 0;
  std::string UnixPath; ///< non-empty: connect over AF_UNIX instead
  std::string Db = "bench";
  unsigned Clients = 8;
  double Seconds = 5.0;
  unsigned RowsPerRequest = 16;
  /// Fraction of requests that are queries (the rest are mutations,
  /// alternating add and retract so the database stays bounded).
  double QueryRatio = 0.5;
  /// Node-id bound of the random graph; mutation keys stay inside it.
  unsigned KeySpace = 512;
  uint64_t Seed = 1;
  double DeadlineMs = 0; ///< per-request deadline (0 = none)
  bool LoadProgram = true; ///< issue load_program for Db first
};

struct LoadReport {
  bool Ok = false;
  std::string Error;

  unsigned Clients = 0;
  double Seconds = 0; ///< measured wall time of the drive phase

  uint64_t MutationRequests = 0;
  uint64_t QueryRequests = 0;
  uint64_t RowsSent = 0;
  uint64_t Errors = 0;
  uint64_t DeadlineExceeded = 0;
  uint64_t Overloaded = 0;

  // From the server's final per-db stats. FallbackSolves is the sum of
  // the two reason counters; NegationFallbacks must stay 0 now that
  // negation batches are patched in place.
  uint64_t UpdateBatches = 0;
  uint64_t CoalescedRequests = 0;
  uint64_t FallbackSolves = 0;
  uint64_t NegationFallbacks = 0;
  uint64_t DegradedRecoveries = 0;
  uint64_t FinalGeneration = 0;

  double MutationsPerSec = 0;
  double RowsPerSec = 0;
  double QueriesPerSec = 0;
  double MutationP50Ms = 0, MutationP99Ms = 0;
  double QueryP50Ms = 0, QueryP99Ms = 0;

  Json toJson() const;
};

/// The embedded benchmark program: an Int-keyed single-source
/// shortest-paths instance (rel Edge, lat Dist over the min lattice).
const char *benchProgramSource();

/// Runs the load against a listening flixd. Blocking; spawns
/// Options.Clients threads internally.
LoadReport runLoad(const LoadOptions &O);

} // namespace server
} // namespace flix

#endif // FLIX_SERVER_LOADDRIVER_H
