//===- server/Protocol.cpp - flixd wire protocol ---------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "server/Protocol.h"

using namespace flix;
using namespace flix::server;

const char *flix::server::errCodeName(ErrCode C) {
  switch (C) {
  case ErrCode::ParseError:
    return "parse_error";
  case ErrCode::BadRequest:
    return "bad_request";
  case ErrCode::UnknownOp:
    return "unknown_op";
  case ErrCode::LineTooLong:
    return "line_too_long";
  case ErrCode::NoSuchDb:
    return "no_such_db";
  case ErrCode::DbExists:
    return "db_exists";
  case ErrCode::NoSuchPred:
    return "no_such_pred";
  case ErrCode::BadFact:
    return "bad_fact";
  case ErrCode::CompileError:
    return "compile_error";
  case ErrCode::SolveError:
    return "solve_error";
  case ErrCode::Overloaded:
    return "overloaded";
  case ErrCode::DeadlineExceeded:
    return "deadline_exceeded";
  case ErrCode::ShuttingDown:
    return "shutting_down";
  }
  return "unknown";
}

std::optional<Request>
flix::server::decodeRequest(std::string_view Line, ErrCode &Code,
                            std::string &Err) {
  Request R;
  if (!parseJson(Line, R.Raw, Err)) {
    Code = ErrCode::ParseError;
    return std::nullopt;
  }
  if (!R.Raw.isObj()) {
    Code = ErrCode::BadRequest;
    Err = "request must be a JSON object";
    return std::nullopt;
  }
  if (const Json *Id = R.Raw.get("id"))
    R.Id = *Id;

  const Json *OpJ = R.Raw.get("op");
  if (!OpJ || !OpJ->isStr()) {
    Code = ErrCode::BadRequest;
    Err = "missing string field 'op'";
    return std::nullopt;
  }
  const std::string &Name = OpJ->Str;
  if (Name == "load_program")
    R.Operation = Op::LoadProgram;
  else if (Name == "add_facts")
    R.Operation = Op::AddFacts;
  else if (Name == "retract_facts")
    R.Operation = Op::RetractFacts;
  else if (Name == "query")
    R.Operation = Op::Query;
  else if (Name == "stats")
    R.Operation = Op::Stats;
  else if (Name == "list_dbs")
    R.Operation = Op::ListDbs;
  else if (Name == "drop_db")
    R.Operation = Op::DropDb;
  else if (Name == "ping")
    R.Operation = Op::Ping;
  else if (Name == "shutdown")
    R.Operation = Op::Shutdown;
  else {
    Code = ErrCode::UnknownOp;
    Err = "unknown op '" + Name + "'";
    return std::nullopt;
  }

  if (const Json *DlJ = R.Raw.get("deadline_ms")) {
    if (!DlJ->isNum()) {
      Code = ErrCode::BadRequest;
      Err = "'deadline_ms' must be a number";
      return std::nullopt;
    }
    // Non-positive deadlines are expired on arrival; Deadline::after
    // treats them as "no deadline", so clamp to an immediately-expired
    // one instead.
    double Ms = DlJ->num();
    R.DL = Deadline::after(Ms > 0 ? Ms / 1000.0 : 1e-9);
  }
  return R;
}

Json flix::server::okReply(const Json &Id) {
  Json Reply = Json::object();
  if (!Id.isNull())
    Reply.set("id", Id);
  Reply.set("ok", Json::boolean(true));
  return Reply;
}

Json flix::server::errorReply(const Json &Id, ErrCode Code,
                              std::string Message) {
  Json Reply = Json::object();
  if (!Id.isNull())
    Reply.set("id", Id);
  Reply.set("ok", Json::boolean(false));
  Reply.set("code", Json::str(errCodeName(Code)));
  Reply.set("error", Json::str(std::move(Message)));
  return Reply;
}
