//===- server/Protocol.h - flixd wire protocol ----------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flixd wire protocol (DESIGN.md S14): one JSON object per line in
/// each direction. Requests name an operation; replies carry `"ok"` plus
/// either the result fields or a structured `{"code", "error"}` pair —
/// the daemon never answers a well-framed request with anything but a
/// reply line, and never crashes on a malformed one.
///
/// Request shape (fields beyond "op" depend on the operation):
///
///   {"op": "load_program", "db": "g", "source": "...", "replace": true?}
///   {"op": "add_facts",     "db": "g", "pred": "Edge",
///    "rows": [[1, 2, 5], ...]}
///   {"op": "retract_facts", "db": "g", "pred": "Edge", "rows": [...]}
///   {"op": "query", "db": "g", "pred": "Dist",
///    "key": [1]?, "limit": 100?}
///   {"op": "stats", "db": "g"?}
///   {"op": "list_dbs"} / {"op": "drop_db", "db": "g"}
///   {"op": "ping"} / {"op": "shutdown"}
///
/// Every request may carry `"id"` (echoed verbatim in the reply, any
/// JSON value) and `"deadline_ms"` (per-request deadline in milliseconds
/// from arrival; expiry yields a `deadline_exceeded` error reply).
///
/// Fact columns are typed by the predicate declaration: Int columns take
/// JSON integers, Str columns JSON strings, Bool columns JSON booleans,
/// and enum columns strings written `"Enum.Case"`. For lattice
/// predicates the last column of each row is the lattice value.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SERVER_PROTOCOL_H
#define FLIX_SERVER_PROTOCOL_H

#include "server/Json.h"
#include "support/Deadline.h"

#include <optional>

namespace flix {
namespace server {

/// Protocol operations. Decoded once at the edge; handlers switch on it.
enum class Op {
  LoadProgram,
  AddFacts,
  RetractFacts,
  Query,
  Stats,
  ListDbs,
  DropDb,
  Ping,
  Shutdown,
};

/// Structured error codes carried in `"code"` of an error reply. Stable
/// strings — clients branch on them, messages are for humans.
enum class ErrCode {
  ParseError,       ///< line is not valid JSON
  BadRequest,       ///< JSON is valid but violates the request shape
  UnknownOp,        ///< "op" names no operation
  LineTooLong,      ///< request line exceeded the configured max bytes
  NoSuchDb,         ///< "db" names no loaded database
  DbExists,         ///< load_program without replace onto a live name
  NoSuchPred,       ///< "pred" names no predicate of the db's program
  BadFact,          ///< a row's shape or column type is wrong
  CompileError,     ///< FLIX source failed to compile
  SolveError,       ///< the solve reported an error (e.g. runtime fault)
  Overloaded,       ///< admission control rejected the request
  DeadlineExceeded, ///< per-request deadline expired
  ShuttingDown,     ///< server is stopping
};

const char *errCodeName(ErrCode C);

/// A decoded request: the operation, the common fields every handler
/// needs, and the raw object for operation-specific members.
struct Request {
  Op Operation = Op::Ping;
  Json Raw;    ///< full request object
  Json Id;     ///< "id" member, Null when absent (echoed in replies)
  Deadline DL; ///< from "deadline_ms"; inactive when absent
};

/// Decodes one request line. On failure returns nullopt and fills
/// \p Code / \p Err for the error reply.
std::optional<Request> decodeRequest(std::string_view Line, ErrCode &Code,
                                     std::string &Err);

/// An `{"id": ..., "ok": true}` reply skeleton for handlers to extend.
Json okReply(const Json &Id);

/// An `{"id": ..., "ok": false, "code": ..., "error": ...}` reply.
Json errorReply(const Json &Id, ErrCode Code, std::string Message);

} // namespace server
} // namespace flix

#endif // FLIX_SERVER_PROTOCOL_H
