//===- server/Server.cpp - The flixd daemon core --------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "server/Server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace flix;
using namespace flix::server;

namespace {

/// RAII in-flight slot: counts the request against MaxInflight and
/// releases on every return path.
class InflightSlot {
public:
  InflightSlot(std::atomic<unsigned> &Ctr, unsigned Max)
      : Ctr(Ctr),
        Admitted(Ctr.fetch_add(1, std::memory_order_acq_rel) < Max) {}
  ~InflightSlot() { Ctr.fetch_sub(1, std::memory_order_acq_rel); }
  bool admitted() const { return Admitted; }

private:
  std::atomic<unsigned> &Ctr;
  bool Admitted;
};

const Json *strField(const Json &Obj, const char *Name) {
  const Json *J = Obj.get(Name);
  return J && J->isStr() ? J : nullptr;
}

bool writeAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= size_t(N);
  }
  return true;
}

} // namespace

Server::Server(ServerOptions O) : Opt(std::move(O)) {}

Server::~Server() {
  stop();
  wait();
}

std::shared_ptr<Session> Server::findDb(const std::string &Name) {
  std::lock_guard<std::mutex> Lk(RegMu);
  auto It = Dbs.find(Name);
  return It == Dbs.end() ? nullptr : It->second;
}

std::string Server::handleLine(std::string_view Line) {
  RequestsTotal.fetch_add(1, std::memory_order_relaxed);
  auto Reply = [this](Json J) {
    const Json *Ok = J.get("ok");
    if (Ok && Ok->isBool() && !Ok->B)
      ErrorsTotal.fetch_add(1, std::memory_order_relaxed);
    return writeJson(J);
  };

  if (Line.size() > Opt.MaxLineBytes)
    return Reply(errorReply(Json::null(), ErrCode::LineTooLong,
                            "request line exceeds " +
                                std::to_string(Opt.MaxLineBytes) +
                                " bytes"));
  ErrCode Code = ErrCode::BadRequest;
  std::string Err;
  std::optional<Request> R = decodeRequest(Line, Code, Err);
  if (!R) {
    // Best-effort id echo: when the line parsed but the request shape
    // was bad (unknown op, missing fields), clients still get their
    // correlation id back.
    Json Id;
    if (Code != ErrCode::ParseError) {
      Json Raw;
      std::string Ignore;
      if (parseJson(Line, Raw, Ignore))
        if (const Json *IdJ = Raw.get("id"))
          Id = *IdJ;
    }
    return Reply(errorReply(Id, Code, Err));
  }
  return Reply(handleRequest(*R));
}

Json Server::handleRequest(const Request &R) {
  if (R.Operation == Op::Ping) {
    Json Ok = okReply(R.Id);
    Ok.set("server", Json::str("flixd"));
    return Ok;
  }
  if (R.Operation == Op::Shutdown) {
    // Reply first; the connection loop writes the reply and then
    // initiates the stop (stopping() turned true here).
    Stopping.store(true, std::memory_order_release);
    StopCV.notify_all();
    return okReply(R.Id);
  }
  if (stopping())
    return errorReply(R.Id, ErrCode::ShuttingDown, "server is stopping");
  if (R.DL.active() && R.DL.expired())
    return errorReply(R.Id, ErrCode::DeadlineExceeded,
                      "deadline expired before dispatch");

  InflightSlot Slot(Inflight, Opt.MaxInflight);
  if (!Slot.admitted()) {
    OverloadRejections.fetch_add(1, std::memory_order_relaxed);
    return errorReply(R.Id, ErrCode::Overloaded,
                      "in-flight request limit (" +
                          std::to_string(Opt.MaxInflight) + ") reached");
  }

  switch (R.Operation) {
  case Op::LoadProgram:
    return handleLoad(R);
  case Op::AddFacts:
    return handleMutate(R, /*Retract=*/false);
  case Op::RetractFacts:
    return handleMutate(R, /*Retract=*/true);
  case Op::Query:
    return handleQuery(R);
  case Op::Stats:
    return handleStats(R);
  case Op::ListDbs: {
    Json Names = Json::array();
    {
      std::lock_guard<std::mutex> Lk(RegMu);
      for (const auto &[Name, S] : Dbs) {
        (void)S;
        Names.Arr.push_back(Json::str(Name));
      }
    }
    Json Ok = okReply(R.Id);
    Ok.set("dbs", std::move(Names));
    return Ok;
  }
  case Op::DropDb: {
    const Json *DbJ = strField(R.Raw, "db");
    if (!DbJ)
      return errorReply(R.Id, ErrCode::BadRequest,
                        "missing string field 'db'");
    std::shared_ptr<Session> Victim; // destroyed outside RegMu
    {
      std::lock_guard<std::mutex> Lk(RegMu);
      auto It = Dbs.find(DbJ->Str);
      if (It == Dbs.end())
        return errorReply(R.Id, ErrCode::NoSuchDb,
                          "no database named '" + DbJ->Str + "'");
      Victim = std::move(It->second);
      Dbs.erase(It);
    }
    return okReply(R.Id);
  }
  case Op::Ping:
  case Op::Shutdown:
    break; // handled above
  }
  return errorReply(R.Id, ErrCode::BadRequest, "unreachable op");
}

Json Server::handleLoad(const Request &R) {
  const Json *DbJ = strField(R.Raw, "db");
  const Json *SrcJ = strField(R.Raw, "source");
  if (!DbJ || !SrcJ)
    return errorReply(R.Id, ErrCode::BadRequest,
                      "load_program needs string fields 'db' and 'source'");
  const Json *RepJ = R.Raw.get("replace");
  bool Replace = RepJ && RepJ->isBool() && RepJ->B;
  const std::string &Name = DbJ->Str;

  {
    std::lock_guard<std::mutex> Lk(RegMu);
    if (!Replace && Dbs.count(Name))
      return errorReply(R.Id, ErrCode::DbExists,
                        "database '" + Name +
                            "' already exists (pass \"replace\": true)");
    if (!LoadingNames.insert(Name).second)
      return errorReply(R.Id, ErrCode::DbExists,
                        "database '" + Name + "' is being loaded");
  }

  Session::Options SO;
  SO.Solve = Opt.Solve;
  SO.MaxPendingFacts = Opt.MaxPendingFactsPerDb;
  SO.UpdateTimeLimitSeconds = Opt.UpdateTimeLimitSeconds;
  auto S = std::make_shared<Session>(Name, SO);
  ErrCode Code = ErrCode::CompileError;
  std::string Err;
  bool Loaded = S->load(SrcJ->Str, R.DL, Code, Err);

  std::shared_ptr<Session> Replaced; // destroyed outside RegMu
  {
    std::lock_guard<std::mutex> Lk(RegMu);
    LoadingNames.erase(Name);
    if (Loaded) {
      auto It = Dbs.find(Name);
      if (It != Dbs.end()) {
        Replaced = std::move(It->second);
        It->second = std::move(S);
      } else {
        Dbs.emplace(Name, std::move(S));
      }
    }
  }
  if (!Loaded)
    return errorReply(R.Id, Code, Err);
  Json Ok = okReply(R.Id);
  Ok.set("db", Json::str(Name));
  Ok.set("generation", Json::integer(1));
  return Ok;
}

Json Server::handleMutate(const Request &R, bool Retract) {
  const Json *DbJ = strField(R.Raw, "db");
  const Json *PredJ = strField(R.Raw, "pred");
  const Json *RowsJ = R.Raw.get("rows");
  if (!DbJ || !PredJ || !RowsJ)
    return errorReply(R.Id, ErrCode::BadRequest,
                      "mutation needs string fields 'db' and 'pred' and "
                      "an array field 'rows'");
  std::shared_ptr<Session> S = findDb(DbJ->Str);
  if (!S)
    return errorReply(R.Id, ErrCode::NoSuchDb,
                      "no database named '" + DbJ->Str + "'");
  Session::ApplyResult Res =
      S->applyFacts(PredJ->Str, *RowsJ, Retract, R.DL);
  if (!Res.Ok)
    return errorReply(R.Id, Res.Code, Res.Error);
  Json Ok = okReply(R.Id);
  Ok.set("generation", Json::integer(int64_t(Res.Generation)));
  Ok.set("rows", Json::integer(int64_t(Res.StagedRows)));
  Ok.set("batch_seconds", Json::number(Res.BatchSeconds));
  Ok.set("full_resolve", Json::boolean(Res.FullResolve));
  Ok.set("coalesced", Json::boolean(Res.Coalesced));
  return Ok;
}

Json Server::handleQuery(const Request &R) {
  const Json *DbJ = strField(R.Raw, "db");
  const Json *PredJ = strField(R.Raw, "pred");
  if (!DbJ || !PredJ)
    return errorReply(R.Id, ErrCode::BadRequest,
                      "query needs string fields 'db' and 'pred'");
  std::shared_ptr<Session> S = findDb(DbJ->Str);
  if (!S)
    return errorReply(R.Id, ErrCode::NoSuchDb,
                      "no database named '" + DbJ->Str + "'");
  const Json *KeyJ = R.Raw.get("key");
  int64_t Limit = 0;
  if (const Json *LimJ = R.Raw.get("limit")) {
    if (!LimJ->isInt() || LimJ->Int < 0)
      return errorReply(R.Id, ErrCode::BadRequest,
                        "'limit' must be a non-negative integer");
    Limit = LimJ->Int;
  }
  Session::QueryReply Q = S->query(PredJ->Str, KeyJ, Limit);
  if (!Q.Ok)
    return errorReply(R.Id, Q.Code, Q.Error);
  Json Ok = okReply(R.Id);
  for (auto &[Key, Val] : Q.Fields.Obj)
    Ok.set(Key, std::move(Val));
  return Ok;
}

Json Server::handleStats(const Request &R) {
  Json Ok = okReply(R.Id);
  if (const Json *DbJ = strField(R.Raw, "db")) {
    std::shared_ptr<Session> S = findDb(DbJ->Str);
    if (!S)
      return errorReply(R.Id, ErrCode::NoSuchDb,
                        "no database named '" + DbJ->Str + "'");
    Ok.set("db", S->statsJson());
    return Ok;
  }
  Json Srv = Json::object();
  Srv.set("requests_total",
          Json::integer(int64_t(RequestsTotal.load())));
  Srv.set("errors_total", Json::integer(int64_t(ErrorsTotal.load())));
  Srv.set("overload_rejections",
          Json::integer(int64_t(OverloadRejections.load())));
  Srv.set("connections_total",
          Json::integer(int64_t(ConnectionsTotal.load())));
  Srv.set("active_connections",
          Json::integer(int64_t(ActiveConns.load())));
  Srv.set("inflight", Json::integer(int64_t(Inflight.load())));
  Ok.set("server", std::move(Srv));

  std::vector<std::shared_ptr<Session>> All;
  {
    std::lock_guard<std::mutex> Lk(RegMu);
    for (const auto &[Name, S] : Dbs) {
      (void)Name;
      All.push_back(S);
    }
  }
  Json DbsJ = Json::array();
  for (const auto &S : All)
    DbsJ.Arr.push_back(S->statsJson());
  Ok.set("dbs", std::move(DbsJ));
  return Ok;
}

//===----------------------------------------------------------------------===//
// Socket layer
//===----------------------------------------------------------------------===//

bool Server::start(std::string &Err) {
  int Fd = -1;
  if (!Opt.UnixPath.empty()) {
    sockaddr_un Addr{};
    if (Opt.UnixPath.size() >= sizeof(Addr.sun_path)) {
      Err = "unix socket path too long";
      return false;
    }
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    Addr.sun_family = AF_UNIX;
    std::strncpy(Addr.sun_path, Opt.UnixPath.c_str(),
                 sizeof(Addr.sun_path) - 1);
    ::unlink(Opt.UnixPath.c_str());
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0) {
      Err = std::string("bind(") + Opt.UnixPath +
            "): " + std::strerror(errno);
      ::close(Fd);
      return false;
    }
  } else {
    Fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (Fd < 0) {
      Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    int One = 1;
    ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_port = htons(Opt.Port);
    if (::inet_pton(AF_INET, Opt.Host.c_str(), &Addr.sin_addr) != 1) {
      Err = "bad listen address '" + Opt.Host + "'";
      ::close(Fd);
      return false;
    }
    if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
        0) {
      Err = std::string("bind(") + Opt.Host + ":" +
            std::to_string(Opt.Port) + "): " + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    sockaddr_in Bound{};
    socklen_t Len = sizeof(Bound);
    if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Bound), &Len) ==
        0)
      BoundPort = ntohs(Bound.sin_port);
  }
  if (::listen(Fd, 64) < 0) {
    Err = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  ListenFd.store(Fd, std::memory_order_release);
  AcceptThread = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  while (!stopping()) {
    int LFd = ListenFd.load(std::memory_order_acquire);
    if (LFd < 0)
      break;
    int Fd = ::accept(LFd, nullptr, nullptr);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      break; // listener closed by stop()
    }
    ConnectionsTotal.fetch_add(1, std::memory_order_relaxed);
    if (ActiveConns.load(std::memory_order_acquire) >=
        Opt.MaxConnections) {
      OverloadRejections.fetch_add(1, std::memory_order_relaxed);
      std::string Line =
          writeJson(errorReply(Json::null(), ErrCode::Overloaded,
                               "connection limit (" +
                                   std::to_string(Opt.MaxConnections) +
                                   ") reached")) +
          "\n";
      writeAll(Fd, Line.data(), Line.size());
      ::close(Fd);
      continue;
    }
    ActiveConns.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> Lk(ConnMu);
    if (stopping()) {
      ActiveConns.fetch_sub(1, std::memory_order_acq_rel);
      ::close(Fd);
      break;
    }
    ConnFds.push_back(Fd);
    ConnThreads.emplace_back([this, Fd] { connectionLoop(Fd); });
  }
}

void Server::connectionLoop(int Fd) {
  std::string Buf;
  char Chunk[64 * 1024];
  bool Close = false;
  while (!Close) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0 && errno == EINTR)
      continue;
    if (N <= 0)
      break; // peer closed, or stop() shut us down
    Buf.append(Chunk, size_t(N));

    size_t Start = 0;
    while (true) {
      size_t Nl = Buf.find('\n', Start);
      if (Nl == std::string::npos)
        break;
      std::string_view Line(Buf.data() + Start, Nl - Start);
      if (!Line.empty() && Line.back() == '\r')
        Line.remove_suffix(1);
      Start = Nl + 1;
      if (Line.empty())
        continue;
      // Oversized-but-framed lines still get their line_too_long reply
      // from handleLine, but the connection is closed afterwards: a
      // client ignoring the size bound cannot be trusted to frame the
      // rest of the stream.
      bool TooLong = Line.size() > Opt.MaxLineBytes;
      std::string Reply = handleLine(Line);
      Reply.push_back('\n');
      if (!writeAll(Fd, Reply.data(), Reply.size()) || TooLong) {
        Close = true;
        break;
      }
      if (stopping()) {
        // A shutdown request was served (possibly on this very
        // connection, whose reply is already written) — tear the
        // socket layer down.
        stop();
        Close = true;
        break;
      }
    }
    if (Start > 0)
      Buf.erase(0, Start);
    if (!Close && Buf.size() > Opt.MaxLineBytes) {
      // Oversized line: no newline within the bound. Reply and close —
      // framing cannot resync.
      std::string Reply =
          writeJson(errorReply(Json::null(), ErrCode::LineTooLong,
                               "request line exceeds " +
                                   std::to_string(Opt.MaxLineBytes) +
                                   " bytes")) +
          "\n";
      writeAll(Fd, Reply.data(), Reply.size());
      Close = true;
    }
  }
  {
    // Deregister before closing: once closed the fd number can be
    // reused, and stop() must never shut down a recycled descriptor.
    std::lock_guard<std::mutex> Lk(ConnMu);
    for (size_t I = 0; I < ConnFds.size(); ++I) {
      if (ConnFds[I] == Fd) {
        ConnFds.erase(ConnFds.begin() + I);
        break;
      }
    }
  }
  ::shutdown(Fd, SHUT_RDWR);
  ::close(Fd);
  ActiveConns.fetch_sub(1, std::memory_order_acq_rel);
}

void Server::closeListener() {
  int Fd = ListenFd.exchange(-1, std::memory_order_acq_rel);
  if (Fd >= 0) {
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }
}

void Server::stop() {
  Stopping.store(true, std::memory_order_release);
  closeListener();
  {
    // Shut down (do not close — reader threads own the close) every
    // live connection so blocked recv()s return.
    std::lock_guard<std::mutex> Lk(ConnMu);
    for (int Fd : ConnFds)
      ::shutdown(Fd, SHUT_RDWR);
  }
  StopCV.notify_all();
}

void Server::wait() {
  {
    std::unique_lock<std::mutex> Lk(StopMu);
    StopCV.wait(Lk, [this] { return stopping(); });
  }
  closeListener();
  if (AcceptThread.joinable())
    AcceptThread.join();
  // After the accept thread exits no new connection threads appear;
  // join the existing ones (they unblock via stop()'s fd shutdown or
  // their own exit).
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lk(ConnMu);
    Threads.swap(ConnThreads);
  }
  for (std::thread &T : Threads)
    if (T.joinable())
      T.join();
  if (!Opt.UnixPath.empty())
    ::unlink(Opt.UnixPath.c_str());
}
