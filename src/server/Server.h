//===- server/Server.h - The flixd daemon core ----------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flixd daemon: a registry of named Sessions behind a
/// newline-delimited JSON socket protocol (DESIGN.md S14). The class
/// splits into two layers so the protocol logic is testable without
/// sockets:
///
///   * handleLine(): the complete request core — decode, admission
///     control, dispatch to the owning Session, encode the reply. One
///     call per request line, callable from any thread.
///   * start()/wait()/stop(): the socket layer — a listener (TCP
///     loopback or Unix-domain), one thread per connection, line
///     framing with a hard per-line byte bound. `shutdown` requests and
///     stop() both close the listener and shut down every connection
///     fd, which unblocks the reader threads; wait() joins them.
///
/// Overload behavior is explicit at every layer: connections beyond
/// MaxConnections are greeted with an `overloaded` error line and
/// closed, requests beyond MaxInflight (or staging more rows than a
/// db's bound) get `overloaded` replies, and oversized request lines
/// get `line_too_long` followed by connection close (framing cannot
/// resync after an oversized line).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SERVER_SERVER_H
#define FLIX_SERVER_SERVER_H

#include "server/Session.h"

#include <map>
#include <set>
#include <thread>

namespace flix {
namespace server {

struct ServerOptions {
  /// TCP listen address; loopback by default — flixd is a local daemon,
  /// exposing it wider is an explicit operator decision.
  std::string Host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (see Server::port()).
  uint16_t Port = 0;
  /// Non-empty: listen on this Unix-domain socket path instead of TCP.
  std::string UnixPath;

  unsigned MaxConnections = 64;
  /// Bound on concurrently executing requests (loads, mutations,
  /// queries; ping and shutdown are exempt so health checks and
  /// operator stops work under load).
  unsigned MaxInflight = 256;
  /// Hard per-request-line byte bound; framing closes the connection
  /// after an oversized line.
  size_t MaxLineBytes = size_t(4) << 20;
  /// Per-database admission bound on staged-but-uncommitted fact rows.
  uint64_t MaxPendingFactsPerDb = uint64_t(1) << 20;

  /// Solver options for every database's IncrementalSolver.
  SolverOptions Solve;
  /// Per-update-batch solve budget in seconds (0 = unbounded).
  double UpdateTimeLimitSeconds = 0;
};

class Server {
public:
  explicit Server(ServerOptions Opt);
  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// The request core: handles one request line, returns the serialized
  /// reply (no trailing newline). Never throws; malformed input yields
  /// an error reply. Thread-safe.
  std::string handleLine(std::string_view Line);

  /// Binds, listens and starts the accept thread. Returns false with
  /// \p Err on socket errors.
  bool start(std::string &Err);

  /// The bound TCP port (after start(); meaningful when UnixPath is
  /// empty). With Options.Port == 0 this is the kernel-assigned port.
  uint16_t port() const { return BoundPort; }

  /// Blocks until the server stops (shutdown request or stop()), then
  /// joins all threads. Call from the owning thread.
  void wait();

  /// Requests a stop: unblocks the accept and connection threads. Safe
  /// to call from any thread, including connection threads; idempotent.
  void stop();

  bool stopping() const {
    return Stopping.load(std::memory_order_acquire);
  }

private:
  std::shared_ptr<Session> findDb(const std::string &Name);
  Json handleRequest(const Request &R);
  Json handleLoad(const Request &R);
  Json handleMutate(const Request &R, bool Retract);
  Json handleQuery(const Request &R);
  Json handleStats(const Request &R);
  void acceptLoop();
  void connectionLoop(int Fd);
  void closeListener();

  ServerOptions Opt;
  uint16_t BoundPort = 0;

  // Database registry. Loading holds the name in LoadingNames so two
  // concurrent loads of one name cannot both win.
  std::mutex RegMu;
  std::map<std::string, std::shared_ptr<Session>> Dbs;
  std::set<std::string> LoadingNames;

  // Socket state.
  std::atomic<int> ListenFd{-1};
  std::thread AcceptThread;
  std::mutex ConnMu; ///< guards ConnFds and ConnThreads
  std::vector<int> ConnFds;
  std::vector<std::thread> ConnThreads;

  std::atomic<bool> Stopping{false};
  std::mutex StopMu; ///< with StopCV: wakes wait()
  std::condition_variable StopCV;

  // Admission + observability counters.
  std::atomic<unsigned> ActiveConns{0};
  std::atomic<unsigned> Inflight{0};
  std::atomic<uint64_t> RequestsTotal{0};
  std::atomic<uint64_t> ErrorsTotal{0};
  std::atomic<uint64_t> OverloadRejections{0};
  std::atomic<uint64_t> ConnectionsTotal{0};
};

} // namespace server
} // namespace flix

#endif // FLIX_SERVER_SERVER_H
