//===- server/Session.cpp - One named database of the daemon --------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "server/Session.h"

#include <chrono>

using namespace flix;
using namespace flix::server;

namespace {

/// Serializes one runtime Value for a query reply. Scalar kinds map to
/// their JSON counterparts; compound values (tags, tuples, sets) use the
/// factory's canonical rendering, which round-trips for enum tags (the
/// fact-column format is the rendered `Enum.Case`).
Json valueToJson(const ValueFactory &F, Value V) {
  switch (V.kind()) {
  case ValueKind::Int:
    return Json::integer(V.asInt());
  case ValueKind::Bool:
    return Json::boolean(V.asBool());
  case ValueKind::Str:
    return Json::str(F.strings().text(V.asStr()));
  default:
    return Json::str(F.toString(V));
  }
}

/// Parses one typed fact column from its JSON wire form. Mirrors flixc's
/// text fact-file column format: Int/Str/Bool as the native JSON type,
/// enums as `"Enum.Case"` strings.
bool jsonToColumn(ValueFactory &F, const Type &T, const Json &J, Value &Out,
                  std::string &Err) {
  switch (T.K) {
  case Type::Kind::Int:
    if (!J.isInt()) {
      Err = "expected a JSON integer";
      return false;
    }
    Out = F.integer(J.Int);
    return true;
  case Type::Kind::Str:
    if (!J.isStr()) {
      Err = "expected a JSON string";
      return false;
    }
    Out = F.string(J.Str);
    return true;
  case Type::Kind::Bool:
    if (!J.isBool()) {
      Err = "expected a JSON boolean";
      return false;
    }
    Out = F.boolean(J.B);
    return true;
  case Type::Kind::Enum:
    if (!J.isStr() || J.Str.rfind(T.EnumName + ".", 0) != 0) {
      Err = "expected a " + T.EnumName + " tag string (\"Enum.Case\")";
      return false;
    }
    Out = F.tag(J.Str);
    return true;
  default:
    Err = "unsupported column type " + T.str() + " on the wire";
    return false;
  }
}

} // namespace

Session::Session(std::string Name, Options O)
    : DbName(std::move(Name)), Opt(std::move(O)) {}

Session::~Session() = default;

bool Session::load(const std::string &Source, Deadline DL, ErrCode &Code,
                   std::string &Err) {
  Compiler = std::make_unique<FlixCompiler>(F);
  // Honor the daemon's engine flags (flixd --no-vm / --vm-opt-level) in
  // every database this server compiles.
  Compiler->setUseVm(Opt.Solve.UseVm);
  Compiler->setVmOptLevel(Opt.Solve.VmOptLevel);
  if (!Compiler->compile(Source, DbName + ".flix")) {
    Code = ErrCode::CompileError;
    Err = Compiler->diagnostics();
    return false;
  }
  IS = std::make_unique<IncrementalSolver>(Compiler->program(), Opt.Solve);
  // Queries intern key tuples while the leader solves; flip the factory
  // to lock-sharded interning before the session is ever shared.
  F.enableConcurrentInterning();

  // The initial solve is exclusive (the session is unpublished), so the
  // request deadline can directly bound it — take the tighter of it and
  // the configured per-batch budget.
  Deadline UDL = DL;
  if (Opt.UpdateTimeLimitSeconds > 0 &&
      (!DL.active() || DL.remainingSeconds() > Opt.UpdateTimeLimitSeconds))
    UDL = Deadline::after(Opt.UpdateTimeLimitSeconds);
  UpdateStats U = IS->update(UDL);
  if (!U.ok()) {
    Code = U.St == SolveStats::Status::Timeout ? ErrCode::DeadlineExceeded
                                               : ErrCode::SolveError;
    Err = U.Error.empty() ? "initial solve did not reach a fixpoint"
                          : U.Error;
    return false;
  }
  if (Compiler->interp().hasError()) {
    Code = ErrCode::SolveError;
    Err = Compiler->interp().error();
    return false;
  }
  publishSnapshot(U, 1);
  std::lock_guard<std::mutex> Lk(Mu);
  AppliedGen = 1;
  NextGen = 2;
  UpdateBatches = 1;
  TotalUpdateSeconds += U.Seconds;
  LastUpdate = std::move(U);
  return true;
}

bool Session::parseRows(const std::string &PredName, const Json &Rows,
                        std::vector<Fact> &Out, ErrCode &Code,
                        std::string &Err) {
  auto Pid = Compiler->predicate(PredName);
  if (!Pid) {
    Code = ErrCode::NoSuchPred;
    Err = "no predicate named '" + PredName + "'";
    return false;
  }
  const auto &Preds = Compiler->checkedModule().Preds;
  auto InfoIt = Preds.find(PredName);
  if (InfoIt == Preds.end()) {
    Code = ErrCode::NoSuchPred;
    Err = "no predicate named '" + PredName + "'";
    return false;
  }
  const PredInfo &Info = InfoIt->second;
  bool IsLat = Info.Decl && Info.Decl->IsLat;
  size_t Arity = Info.AttrTypes.size();
  size_t KeyArity = IsLat ? Arity - 1 : Arity;

  if (!Rows.isArr()) {
    Code = ErrCode::BadRequest;
    Err = "'rows' must be an array of row arrays";
    return false;
  }
  Out.reserve(Rows.Arr.size());
  for (size_t RI = 0; RI < Rows.Arr.size(); ++RI) {
    const Json &RowJ = Rows.Arr[RI];
    if (!RowJ.isArr() || RowJ.Arr.size() != Arity) {
      Code = ErrCode::BadFact;
      Err = "row " + std::to_string(RI) + ": expected an array of " +
            std::to_string(Arity) + " columns";
      return false;
    }
    Fact Fa;
    Fa.Pred = *Pid;
    Fa.LatValue = F.boolean(true);
    for (size_t CI = 0; CI < Arity; ++CI) {
      Value V;
      std::string ColErr;
      if (!jsonToColumn(F, Info.AttrTypes[CI], RowJ.Arr[CI], V, ColErr)) {
        Code = ErrCode::BadFact;
        Err = "row " + std::to_string(RI) + ", column " +
              std::to_string(CI + 1) + " of " + PredName + ": " + ColErr;
        return false;
      }
      if (CI < KeyArity)
        Fa.Key.push_back(V);
      else
        Fa.LatValue = V;
    }
    Out.push_back(std::move(Fa));
  }
  return true;
}

Session::GenOutcome Session::commitBatch(const std::vector<Fact> &Adds,
                                         const std::vector<Fact> &Rets,
                                         uint64_t Gen, UpdateStats &UOut) {
  GenOutcome O;
  const Program &Prog = Compiler->program();
  for (const Fact &Fa : Rets) {
    std::span<const Value> Key(Fa.Key.data(), Fa.Key.size());
    if (Prog.predicate(Fa.Pred).isRelational())
      IS->retractFact(Fa.Pred, Key);
    else
      IS->retractLatFact(Fa.Pred, Key, Fa.LatValue);
  }
  for (const Fact &Fa : Adds) {
    std::span<const Value> Key(Fa.Key.data(), Fa.Key.size());
    if (Prog.predicate(Fa.Pred).isRelational())
      IS->addFact(Fa.Pred, Key);
    else
      IS->addLatFact(Fa.Pred, Key, Fa.LatValue);
  }

  Deadline UDL = Opt.UpdateTimeLimitSeconds > 0
                     ? Deadline::after(Opt.UpdateTimeLimitSeconds)
                     : Deadline();
  UOut = IS->update(UDL);
  O.Seconds = UOut.Seconds;
  O.FullResolve = UOut.FullResolve;
  if (!UOut.ok()) {
    O.Ok = false;
    O.Code = UOut.St == SolveStats::Status::Timeout
                 ? ErrCode::DeadlineExceeded
                 : ErrCode::SolveError;
    O.Error = UOut.Error.empty()
                  ? std::string(UOut.St == SolveStats::Status::Timeout
                                    ? "update cancelled by the per-batch "
                                      "time limit; the next batch will "
                                      "recover with a full solve"
                                    : "update did not reach a fixpoint")
                  : UOut.Error;
  } else if (Compiler->interp().hasError()) {
    O.Ok = false;
    O.Code = ErrCode::SolveError;
    O.Error = Compiler->interp().error();
  }
  // Publish even for failed batches: a cancelled update leaves a sound
  // under-approximation, and keeping Generation monotone with AppliedGen
  // is what lets waiters and queries reason about time.
  publishSnapshot(UOut, Gen);
  return O;
}

void Session::publishSnapshot(const UpdateStats &U, uint64_t Gen) {
  std::shared_ptr<const DbSnapshot> Old = snapshot();
  auto NewSnap = std::make_shared<DbSnapshot>();
  NewSnap->Generation = Gen;
  size_t NumPreds = Compiler->program().predicates().size();
  NewSnap->Preds.resize(NumPreds);
  std::vector<uint8_t> Changed(NumPreds, Old ? 0 : 1);
  for (PredId Pr : U.ChangedPreds)
    if (Pr < NumPreds)
      Changed[Pr] = 1;
  for (size_t I = 0; I < NumPreds; ++I)
    NewSnap->Preds[I] = Changed[I]
                            ? PredSnapshot::capture(IS->table(PredId(I)))
                            : Old->Preds[I];
  std::lock_guard<std::mutex> Lk(SnapMu);
  Snap = std::move(NewSnap);
}

std::shared_ptr<const DbSnapshot> Session::snapshot() const {
  std::lock_guard<std::mutex> Lk(SnapMu);
  return Snap;
}

Session::ApplyResult Session::applyFacts(const std::string &PredName,
                                         const Json &Rows, bool Retract,
                                         Deadline DL) {
  ApplyResult Res;
  std::vector<Fact> Parsed;
  {
    ErrCode Code = ErrCode::BadRequest;
    std::string Err;
    if (!parseRows(PredName, Rows, Parsed, Code, Err)) {
      Res.Ok = false;
      Res.Code = Code;
      Res.Error = std::move(Err);
      return Res;
    }
  }
  Res.StagedRows = Parsed.size();

  std::unique_lock<std::mutex> Lk(Mu);
  if (StagedRows + Parsed.size() > Opt.MaxPendingFacts) {
    ++OverloadRejections;
    Res.Ok = false;
    Res.Code = ErrCode::Overloaded;
    Res.Error = "staged rows (" + std::to_string(StagedRows) + " + " +
                std::to_string(Parsed.size()) +
                ") would exceed max_pending_facts (" +
                std::to_string(Opt.MaxPendingFacts) + ")";
    return Res;
  }
  ++MutationRequests;
  RowsStagedTotal += Parsed.size();
  StagedRows += Parsed.size();
  ++StagedRequests;
  std::vector<Fact> &Dest = Retract ? StagedRetracts : StagedAdds;
  Dest.insert(Dest.end(), std::make_move_iterator(Parsed.begin()),
              std::make_move_iterator(Parsed.end()));
  const uint64_t MyGen = NextGen;
  Res.Generation = MyGen;

  if (!LeaderActive) {
    // Group-commit leader: drain every staged batch, including work that
    // arrives while an update runs. Leadership hand-off happens entirely
    // under Mu, so exactly one thread ever touches the solver.
    LeaderActive = true;
    while (!StagedAdds.empty() || !StagedRetracts.empty()) {
      std::vector<Fact> Adds, Rets;
      Adds.swap(StagedAdds);
      Rets.swap(StagedRetracts);
      uint64_t BatchRequests = StagedRequests;
      StagedRequests = 0;
      StagedRows = 0;
      uint64_t Gen = NextGen++;
      Lk.unlock();
      UpdateStats U;
      GenOutcome O = commitBatch(Adds, Rets, Gen, U);
      O.Requests = BatchRequests;
      Lk.lock();
      AppliedGen = Gen;
      ++UpdateBatches;
      TotalUpdateSeconds += O.Seconds;
      LastUpdate = std::move(U);
      Outcomes[Gen] = std::move(O);
      if (Outcomes.size() > 2048) {
        for (auto It = Outcomes.begin(); It != Outcomes.end();)
          It = It->first + 1024 < Gen ? Outcomes.erase(It) : std::next(It);
      }
      CV.notify_all();
    }
    LeaderActive = false;
  } else {
    // Follower: wait for the leader to commit our generation, bounded by
    // the request deadline. On expiry the rows STAY staged — they will
    // commit with the in-flight or next batch; only the wait gives up.
    while (AppliedGen < MyGen) {
      if (!DL.active()) {
        CV.wait(Lk);
        continue;
      }
      double Rem = DL.remainingSeconds();
      if (Rem <= 0) {
        ++DeadlineExpiredWaits;
        Res.Ok = false;
        Res.Code = ErrCode::DeadlineExceeded;
        Res.Error = "deadline expired waiting for generation " +
                    std::to_string(MyGen) +
                    " to commit; the staged rows will still be applied";
        return Res;
      }
      CV.wait_for(Lk, std::chrono::duration<double>(Rem));
    }
  }

  auto It = Outcomes.find(MyGen);
  if (It != Outcomes.end()) {
    const GenOutcome &O = It->second;
    Res.BatchSeconds = O.Seconds;
    Res.FullResolve = O.FullResolve;
    Res.Coalesced = O.Requests > 1;
    if (!O.Ok) {
      Res.Ok = false;
      Res.Code = O.Code;
      Res.Error = O.Error;
    }
  }
  return Res;
}

Session::QueryReply Session::query(const std::string &PredName,
                                   const Json *Key, int64_t Limit) {
  QueryReply R;
  auto Pid = Compiler->predicate(PredName);
  if (!Pid) {
    R.Ok = false;
    R.Code = ErrCode::NoSuchPred;
    R.Error = "no predicate named '" + PredName + "'";
    return R;
  }
  const PredicateDecl &Decl = Compiler->program().predicate(*Pid);
  Queries.fetch_add(1, std::memory_order_relaxed);

  std::shared_ptr<const DbSnapshot> S = snapshot();
  const PredSnapshot &PS = *S->Preds[*Pid];
  Json Fields = Json::object();
  Fields.set("pred", Json::str(PredName));
  Fields.set("generation", Json::integer(int64_t(S->Generation)));

  if (Key) {
    if (!Key->isArr() || Key->Arr.size() != Decl.keyArity()) {
      R.Ok = false;
      R.Code = ErrCode::BadRequest;
      R.Error = "'key' must be an array of " +
                std::to_string(Decl.keyArity()) + " key column values";
      return R;
    }
    const PredInfo &Info = Compiler->checkedModule().Preds.at(PredName);
    SmallVector<Value, 4> KeyVals;
    for (size_t I = 0; I < Key->Arr.size(); ++I) {
      Value V;
      std::string ColErr;
      if (!jsonToColumn(F, Info.AttrTypes[I], Key->Arr[I], V, ColErr)) {
        R.Ok = false;
        R.Code = ErrCode::BadFact;
        R.Error = "key column " + std::to_string(I + 1) + " of " +
                  PredName + ": " + ColErr;
        return R;
      }
      KeyVals.push_back(V);
    }
    Value KeyT = F.tuple(std::span<const Value>(KeyVals.data(),
                                                KeyVals.size()));
    auto It = PS.ByKey.find(KeyT);
    bool Found = It != PS.ByKey.end();
    Fields.set("found", Json::boolean(Found));
    if (Found && !Decl.isRelational())
      Fields.set("value", valueToJson(F, It->second));
  } else {
    Json RowsJ = Json::array();
    for (const Table::Row &Row : PS.Rows) {
      if (Limit > 0 && int64_t(RowsJ.Arr.size()) >= Limit)
        break;
      Json RowJ = Json::array();
      for (Value K : F.tupleElems(Row.Key))
        RowJ.Arr.push_back(valueToJson(F, K));
      if (!Decl.isRelational())
        RowJ.Arr.push_back(valueToJson(F, Row.Lat));
      RowsJ.Arr.push_back(std::move(RowJ));
    }
    Fields.set("count", Json::integer(int64_t(PS.Rows.size())));
    Fields.set("rows", std::move(RowsJ));
  }
  R.Fields = std::move(Fields);
  return R;
}

Json Session::statsJson() {
  std::lock_guard<std::mutex> Lk(Mu);
  Json S = Json::object();
  S.set("db", Json::str(DbName));
  S.set("generation", Json::integer(int64_t(AppliedGen)));
  S.set("mutation_requests", Json::integer(int64_t(MutationRequests)));
  S.set("update_batches", Json::integer(int64_t(UpdateBatches)));
  S.set("coalesced_requests",
        Json::integer(int64_t(MutationRequests > UpdateBatches
                                  ? MutationRequests - UpdateBatches
                                  : 0)));
  S.set("rows_staged_total", Json::integer(int64_t(RowsStagedTotal)));
  S.set("pending_rows", Json::integer(int64_t(StagedRows)));
  S.set("queries",
        Json::integer(int64_t(Queries.load(std::memory_order_relaxed))));
  S.set("overload_rejections", Json::integer(int64_t(OverloadRejections)));
  S.set("deadline_expired_waits",
        Json::integer(int64_t(DeadlineExpiredWaits)));
  S.set("update_seconds_total", Json::number(TotalUpdateSeconds));
  S.set("fallback_solves",
        Json::integer(int64_t(LastUpdate.FallbackSolves)));
  S.set("negation_fallbacks",
        Json::integer(int64_t(LastUpdate.NegationFallbacks)));
  S.set("degraded_recoveries",
        Json::integer(int64_t(LastUpdate.DegradedRecoveries)));
  S.set("vm_calls", Json::integer(int64_t(LastUpdate.VmCalls)));
  S.set("vm_inline_cache_hits",
        Json::integer(int64_t(LastUpdate.VmInlineCacheHits)));
  S.set("interp_fallbacks",
        Json::integer(int64_t(LastUpdate.InterpFallbacks)));
  S.set("vm_inlined_calls",
        Json::integer(int64_t(LastUpdate.VmInlinedCalls)));
  S.set("vm_superword_hits",
        Json::integer(int64_t(LastUpdate.VmSuperwordHits)));
  S.set("vm_passes_removed_insns",
        Json::integer(int64_t(LastUpdate.VmPassesRemovedInsns)));
  S.set("cost_based_plans",
        Json::integer(int64_t(LastUpdate.CostBasedPlans)));
  S.set("memory_bytes", Json::integer(int64_t(LastUpdate.MemoryBytes)));

  Json Last = Json::object();
  Last.set("seconds", Json::number(LastUpdate.Seconds));
  Last.set("replan_events",
           Json::integer(int64_t(LastUpdate.ReplanEvents)));
  Last.set("iterations", Json::integer(int64_t(LastUpdate.Iterations)));
  Last.set("rule_firings", Json::integer(int64_t(LastUpdate.RuleFirings)));
  Last.set("facts_derived",
           Json::integer(int64_t(LastUpdate.FactsDerived)));
  Last.set("facts_added", Json::integer(int64_t(LastUpdate.FactsAdded)));
  Last.set("facts_retracted",
           Json::integer(int64_t(LastUpdate.FactsRetracted)));
  Last.set("cells_deleted",
           Json::integer(int64_t(LastUpdate.CellsDeleted)));
  Last.set("cells_rederived",
           Json::integer(int64_t(LastUpdate.CellsRederived)));
  Last.set("full_resolve", Json::boolean(LastUpdate.FullResolve));
  S.set("last_update", std::move(Last));
  return S;
}
