//===- server/Session.h - One named database of the daemon ----*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Session is one named, long-lived database inside flixd: a compiled
/// FLIX Program plus an IncrementalSolver that absorbs fact batches, and
/// the machinery that makes both safe and fast under many concurrent
/// clients (DESIGN.md S14):
///
///   * Write coalescing (group commit). Mutations stage into a queue
///     under the session mutex; the first thread to find no leader
///     becomes the leader, repeatedly swapping out everything staged and
///     applying it as ONE IncrementalSolver::update() while followers
///     wait for their generation to commit. While an update runs, new
///     arrivals keep staging — so under load, batch size grows and
///     per-request update cost amortizes toward zero. Batching is the
///     throughput lever: update() cost tracks the affected cone
///     (BENCH_incremental.json), so N coalesced requests cost one cone,
///     not N.
///   * Snapshot isolation. After each commit the leader publishes an
///     immutable DbSnapshot, rebuilding only the predicates the update
///     touched (UpdateStats::ChangedPreds). Queries resolve the current
///     snapshot and never block on — or are blocked by — a running
///     solve.
///   * Admission control. Staged rows are bounded
///     (Options::MaxPendingFacts); beyond the bound mutations are
///     rejected with `overloaded` instead of queueing unboundedly.
///   * Deadlines. A follower stops waiting when its request deadline
///     expires (`deadline_exceeded`; its rows still commit with the
///     batch). Options::UpdateTimeLimitSeconds bounds each update()
///     itself through the solver's cancellation deadline; a cancelled
///     batch leaves the session degraded and the next batch recovers
///     via a full solve.
///
/// The leader protocol means the IncrementalSolver is only ever touched
/// by one thread at a time, with leadership handoff through the mutex —
/// no lock is held while solving, and the solver itself needs no
/// internal synchronization for server use.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SERVER_SESSION_H
#define FLIX_SERVER_SESSION_H

#include "incremental/IncrementalSolver.h"
#include "lang/Compiler.h"
#include "server/Protocol.h"
#include "server/Snapshot.h"

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace flix {
namespace server {

class Session {
public:
  struct Options {
    /// Solver options for the inner IncrementalSolver (NumThreads > 0
    /// parallelizes delta rounds inside one update; requests are still
    /// serialized through the leader).
    SolverOptions Solve;
    /// Admission bound: maximum staged-but-uncommitted fact rows.
    uint64_t MaxPendingFacts = uint64_t(1) << 20;
    /// Per-batch solve budget (0 = unbounded); see the file comment.
    double UpdateTimeLimitSeconds = 0;
  };

  Session(std::string Name, Options Opt);
  ~Session();
  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  const std::string &name() const { return DbName; }

  /// Compiles \p Source and runs the initial solve (generation 1). Must
  /// complete before the session is shared with other threads; the
  /// registry only publishes sessions whose load succeeded.
  bool load(const std::string &Source, Deadline DL, ErrCode &Code,
            std::string &Err);

  /// Outcome of one mutation request (add_facts / retract_facts).
  struct ApplyResult {
    bool Ok = true;
    ErrCode Code = ErrCode::BadRequest;
    std::string Error;
    uint64_t Generation = 0; ///< generation the rows committed in
    uint64_t StagedRows = 0; ///< rows this request contributed
    double BatchSeconds = 0; ///< wall time of the covering update()
    bool FullResolve = false;
    bool Coalesced = false; ///< batch carried other requests' rows too
  };

  /// Stages \p Rows (JSON array of row arrays) for \p PredName and
  /// blocks until the covering update commits, the deadline expires, or
  /// admission rejects the request.
  ApplyResult applyFacts(const std::string &PredName, const Json &Rows,
                         bool Retract, Deadline DL);

  /// Result of a query; Fields are merged into the ok reply.
  struct QueryReply {
    bool Ok = true;
    ErrCode Code = ErrCode::BadRequest;
    std::string Error;
    Json Fields = Json::object();
  };

  /// Point lookup (\p Key non-null: JSON array of key column values) or
  /// scan (\p Key null; \p Limit caps returned rows, 0 = all). Reads the
  /// current snapshot; never blocks on a running solve.
  QueryReply query(const std::string &PredName, const Json *Key,
                   int64_t Limit);

  /// Per-db stats object for the wire `stats` reply.
  Json statsJson();

private:
  struct GenOutcome {
    bool Ok = true;
    ErrCode Code = ErrCode::SolveError;
    std::string Error;
    double Seconds = 0;
    bool FullResolve = false;
    uint64_t Requests = 1; ///< mutation requests coalesced into the batch
  };

  std::shared_ptr<const DbSnapshot> snapshot() const;
  /// Leader-only: applies one swapped-out batch and publishes the new
  /// snapshot. Called with the session mutex released.
  GenOutcome commitBatch(const std::vector<Fact> &Adds,
                         const std::vector<Fact> &Rets, uint64_t Gen,
                         UpdateStats &UOut);
  void publishSnapshot(const UpdateStats &U, uint64_t Gen);
  /// Parses one JSON rows array into Facts; fails with BadFact detail.
  /// (Non-const: column parsing interns Values into the session factory.)
  bool parseRows(const std::string &PredName, const Json &Rows,
                 std::vector<Fact> &Out, ErrCode &Code, std::string &Err);

  std::string DbName;
  Options Opt;
  ValueFactory F;
  std::unique_ptr<FlixCompiler> Compiler;
  std::unique_ptr<IncrementalSolver> IS;

  // Group-commit state, all under Mu.
  std::mutex Mu;
  std::condition_variable CV;
  std::vector<Fact> StagedAdds, StagedRetracts;
  uint64_t StagedRows = 0;
  uint64_t StagedRequests = 0; ///< requests contributing to the staged batch
  uint64_t NextGen = 1;        ///< generation the staged batch will commit as
  uint64_t AppliedGen = 0;
  bool LeaderActive = false;
  std::unordered_map<uint64_t, GenOutcome> Outcomes;

  // Cumulative stats (under Mu unless atomic).
  uint64_t MutationRequests = 0;
  uint64_t UpdateBatches = 0;
  uint64_t RowsStagedTotal = 0;
  uint64_t DeadlineExpiredWaits = 0;
  uint64_t OverloadRejections = 0;
  double TotalUpdateSeconds = 0;
  UpdateStats LastUpdate; ///< leader's copy; safe to read under Mu
  std::atomic<uint64_t> Queries{0};

  // Published snapshot (SnapMu orders the shared_ptr swap/copy).
  mutable std::mutex SnapMu;
  std::shared_ptr<const DbSnapshot> Snap;
};

} // namespace server
} // namespace flix

#endif // FLIX_SERVER_SESSION_H
