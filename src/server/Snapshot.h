//===- server/Snapshot.h - Immutable per-db query snapshots ---*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Snapshot isolation for the daemon's query path (DESIGN.md S14):
/// readers never touch the live solver tables — they read an immutable
/// DbSnapshot published after each committed update batch. A snapshot
/// shares per-predicate sub-snapshots with its predecessor for every
/// predicate the batch did not touch (UpdateStats::ChangedPreds), so
/// maintaining it costs O(changed predicates' rows), tracking the
/// affected cone like the incremental update itself, not the database.
///
/// Readers resolve a snapshot with one mutex-protected shared_ptr copy
/// and then run lock-free: point lookups through the per-predicate hash
/// map, scans over the dense row vector. The Value handles inside are
/// interned in the session's ValueFactory (concurrent-interning mode),
/// so dereferencing them while a solve runs is safe.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SERVER_SNAPSHOT_H
#define FLIX_SERVER_SNAPSHOT_H

#include "fixpoint/Table.h"

#include <memory>
#include <unordered_map>
#include <vector>

namespace flix {
namespace server {

/// One predicate's live rows at some generation. Both representations
/// are kept: ByKey answers point queries in O(1), Rows preserves the
/// table's insertion order for scans.
struct PredSnapshot {
  std::vector<Table::Row> Rows;          ///< live (non-tombstone) cells
  std::unordered_map<Value, Value> ByKey; ///< key tuple -> lattice value

  static std::shared_ptr<const PredSnapshot> capture(const Table &T) {
    auto S = std::make_shared<PredSnapshot>();
    S->Rows.reserve(T.liveSize());
    S->ByKey.reserve(T.liveSize());
    for (const Table::Row &R : T.rows()) {
      if (R.Lat == T.botValue())
        continue; // tombstoned or never-present
      S->Rows.push_back(R);
      S->ByKey.emplace(R.Key, R.Lat);
    }
    return S;
  }
};

/// The whole database at one committed generation: one PredSnapshot per
/// predicate, shared with earlier generations where unchanged.
struct DbSnapshot {
  uint64_t Generation = 0;
  std::vector<std::shared_ptr<const PredSnapshot>> Preds;
};

} // namespace server
} // namespace flix

#endif // FLIX_SERVER_SNAPSHOT_H
