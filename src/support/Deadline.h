//===- support/Deadline.h - Wall-clock deadline helper --------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small wall-clock deadline shared by the sequential and parallel
/// fixpoint solvers. The solvers check expiry once per driver row, so a
/// single oversized join can overshoot the requested time limit by at
/// most one row's worth of work (previously the sequential solver sampled
/// the clock only every 4096 operations, which let huge joins overshoot
/// badly). steady_clock::now() is a vDSO call on the platforms we target,
/// so a per-row check is affordable.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SUPPORT_DEADLINE_H
#define FLIX_SUPPORT_DEADLINE_H

#include <chrono>

namespace flix {

/// An optional point in time after which work should stop. A default
/// constructed Deadline is inactive and never expires.
class Deadline {
public:
  Deadline() = default;

  /// A deadline \p Seconds from now; non-positive means "no deadline".
  static Deadline after(double Seconds) {
    Deadline D;
    if (Seconds > 0) {
      D.Active = true;
      D.TP = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<
                 std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(Seconds));
    }
    return D;
  }

  bool active() const { return Active; }

  /// True iff the deadline is active and has passed.
  bool expired() const {
    return Active && std::chrono::steady_clock::now() >= TP;
  }

private:
  bool Active = false;
  std::chrono::steady_clock::time_point TP;
};

} // namespace flix

#endif // FLIX_SUPPORT_DEADLINE_H
