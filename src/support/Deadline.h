//===- support/Deadline.h - Wall-clock deadline helper --------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small wall-clock deadline shared by the sequential and parallel
/// fixpoint solvers. Both solvers check expiry once per *matched row*
/// inside every scan and probe loop — driver iteration, index-bucket
/// walks, full scans, and the parallel solver's spawned sub-task loops —
/// so even a single driver row with a huge join fan-out stops within one
/// row's worth of work of the limit (previously checks ran only once per
/// driver row, which let one hot row's fan-out overshoot badly). The
/// parallel merge phases check on a 1024-derivation stride, bounding the
/// post-eval overshoot too. steady_clock::now() is a vDSO call on the
/// platforms we target, so a per-row check is affordable.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SUPPORT_DEADLINE_H
#define FLIX_SUPPORT_DEADLINE_H

#include <chrono>
#include <limits>

namespace flix {

/// An optional point in time after which work should stop. A default
/// constructed Deadline is inactive and never expires.
class Deadline {
public:
  Deadline() = default;

  /// A deadline \p Seconds from now; non-positive means "no deadline".
  static Deadline after(double Seconds) {
    Deadline D;
    if (Seconds > 0) {
      D.Active = true;
      D.TP = std::chrono::steady_clock::now() +
             std::chrono::duration_cast<
                 std::chrono::steady_clock::duration>(
                 std::chrono::duration<double>(Seconds));
    }
    return D;
  }

  bool active() const { return Active; }

  /// True iff the deadline is active and has passed.
  bool expired() const {
    return Active && std::chrono::steady_clock::now() >= TP;
  }

  /// Seconds until expiry: 0 if active and already passed, a positive
  /// count if pending, and +infinity when inactive. Lets callers convert
  /// a request deadline into a budget for APIs that take
  /// TimeLimitSeconds-style durations (the server hands the remainder of
  /// a per-request deadline to the solver this way).
  double remainingSeconds() const {
    if (!Active)
      return std::numeric_limits<double>::infinity();
    double R = std::chrono::duration<double>(
                   TP - std::chrono::steady_clock::now())
                   .count();
    return R > 0 ? R : 0;
  }

private:
  bool Active = false;
  std::chrono::steady_clock::time_point TP;
};

} // namespace flix

#endif // FLIX_SUPPORT_DEADLINE_H
