//===- support/Diagnostics.cpp - Compiler diagnostics ---------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace flix;

static const char *severityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

std::string DiagnosticEngine::render() const {
  std::ostringstream OS;
  for (const Diagnostic &D : Diags) {
    if (!D.Loc.isValid()) {
      OS << severityName(D.Severity) << ": " << D.Message << "\n";
      continue;
    }
    LineColumn LC = SM.lineColumn(D.Loc);
    OS << SM.bufferName(D.Loc.Buffer) << ":" << LC.Line << ":" << LC.Column
       << ": " << severityName(D.Severity) << ": " << D.Message << "\n";
    std::string_view Line = SM.lineText(D.Loc);
    OS << "  " << Line << "\n  ";
    for (uint32_t I = 1; I < LC.Column; ++I)
      OS << (I - 1 < Line.size() && Line[I - 1] == '\t' ? '\t' : ' ');
    OS << "^\n";
  }
  return OS.str();
}
