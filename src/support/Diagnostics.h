//===- support/Diagnostics.h - Compiler diagnostics -----------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic reporting for the FLIX frontend. The core engine never throws;
/// errors are accumulated here with source locations and rendered with a
/// caret snippet, clang-style.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SUPPORT_DIAGNOSTICS_H
#define FLIX_SUPPORT_DIAGNOSTICS_H

#include "support/SourceManager.h"

#include <string>
#include <vector>

namespace flix {

enum class DiagSeverity { Note, Warning, Error };

/// One reported problem: severity, location and message. Messages follow the
/// LLVM style: lowercase first letter, no trailing period.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics produced while compiling a FLIX program.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager &SM) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }

  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }

  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  size_t numErrors() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "<file>:<line>:<col>: error: <msg>" with a
  /// source snippet and caret underneath.
  std::string render() const;

private:
  const SourceManager &SM;
  std::vector<Diagnostic> Diags;
  size_t NumErrors = 0;
};

} // namespace flix

#endif // FLIX_SUPPORT_DIAGNOSTICS_H
