//===- support/Hashing.h - Hash combinators -------------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small hashing utilities used throughout the project: a 64-bit mixing
/// function and a variadic hash combinator for composite keys.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SUPPORT_HASHING_H
#define FLIX_SUPPORT_HASHING_H

#include <cstddef>
#include <cstdint>
#include <functional>

namespace flix {

/// Finalizing 64-bit mixer (splitmix64 finalizer). Spreads entropy of \p X
/// across all output bits; suitable for hashing small integers.
inline uint64_t hashMix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Combines an existing \p Seed with the hash of one more value.
inline uint64_t hashCombine(uint64_t Seed, uint64_t Next) {
  return hashMix(Seed ^ (Next + 0x9e3779b97f4a7c15ULL + (Seed << 6) +
                         (Seed >> 2)));
}

/// Hashes an arbitrary sequence of integral values into one 64-bit hash.
template <typename... Ts> uint64_t hashValues(Ts... Vals) {
  uint64_t Seed = 0x51ed270b35a8f7afULL;
  ((Seed = hashCombine(Seed, static_cast<uint64_t>(Vals))), ...);
  return Seed;
}

/// Hashes a contiguous range of integral values.
template <typename It> uint64_t hashRange(It First, It Last) {
  uint64_t Seed = 0x51ed270b35a8f7afULL;
  for (; First != Last; ++First)
    Seed = hashCombine(Seed, static_cast<uint64_t>(*First));
  return Seed;
}

} // namespace flix

#endif // FLIX_SUPPORT_HASHING_H
