//===- support/SegmentedVector.h - Stable-reference vector ----*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A growable sequence with *stable element references*: unlike
/// std::vector, growing a SegmentedVector never moves existing elements,
/// and unlike std::deque, reading an existing element never touches any
/// bookkeeping structure that an append mutates.
///
/// Storage is a fixed array of geometrically growing segments (segment k
/// holds BaseSize·2^k elements), so the per-element address computation is
/// two shifts and the segment-pointer array never reallocates. This is
/// what makes the concurrent hash-consing mode of ValueFactory sound:
/// appends are serialized by the caller (a shard mutex), while readers
/// dereference previously published indexes entirely lock-free — every
/// read is of memory written before the index escaped the shard lock, so
/// there is a happens-before edge and no data race.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SUPPORT_SEGMENTEDVECTOR_H
#define FLIX_SUPPORT_SEGMENTEDVECTOR_H

#include <array>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace flix {

/// Append-only segmented vector with stable references. Appends must be
/// externally synchronized; reads of already-published elements need no
/// synchronization (see file comment).
template <typename T> class SegmentedVector {
  static constexpr size_t BaseBits = 10; ///< first segment: 1024 elements
  static constexpr size_t NumSegments = 40;

  /// Element I lives in segment K at offset I - (2^K - 1)·Base, where
  /// K = floor(log2(I/Base + 1)).
  static std::pair<size_t, size_t> locate(size_t I) {
    size_t J = (I >> BaseBits) + 1;
    size_t K = std::bit_width(J) - 1;
    size_t Start = ((size_t(1) << K) - 1) << BaseBits;
    return {K, I - Start};
  }
  static size_t segmentCapacity(size_t K) { return size_t(1) << (BaseBits + K); }

public:
  SegmentedVector() = default;
  SegmentedVector(SegmentedVector &&O)
      : Segments(std::move(O.Segments)),
        Count(O.Count.load(std::memory_order_relaxed)) {}

  // Count is release-published / acquire-read so size() is well-defined
  // even while another thread appends (the appends themselves must still
  // be serialized by the caller).
  size_t size() const { return Count.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  const T &operator[](size_t I) const {
    assert(I < size() && "SegmentedVector index out of range");
    auto [K, Off] = locate(I);
    return Segments[K][Off];
  }
  T &operator[](size_t I) {
    assert(I < size() && "SegmentedVector index out of range");
    auto [K, Off] = locate(I);
    return Segments[K][Off];
  }

  const T &back() const { return (*this)[size() - 1]; }

  /// Appends \p V and returns its index. Single writer at a time; callers
  /// that share the vector must serialize appends.
  size_t push_back(T V) {
    size_t I = Count.load(std::memory_order_relaxed);
    auto [K, Off] = locate(I);
    if (Off == 0 && !Segments[K])
      Segments[K] = std::make_unique<T[]>(segmentCapacity(K));
    Segments[K][Off] = std::move(V);
    Count.store(I + 1, std::memory_order_release);
    return I;
  }

  /// Approximate heap bytes of the allocated segments (excluding any
  /// heap memory owned by the elements themselves).
  size_t memoryBytes() const {
    size_t Bytes = 0;
    for (size_t K = 0; K < NumSegments; ++K)
      if (Segments[K])
        Bytes += segmentCapacity(K) * sizeof(T);
    return Bytes;
  }

private:
  std::array<std::unique_ptr<T[]>, NumSegments> Segments;
  std::atomic<size_t> Count{0};
};

} // namespace flix

#endif // FLIX_SUPPORT_SEGMENTEDVECTOR_H
