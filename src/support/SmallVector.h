//===- support/SmallVector.h - Vector with inline storage -----*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simplified SmallVector in the spirit of llvm::SmallVector: a dynamic
/// array that stores up to N elements inline before spilling to the heap.
/// Hot paths of the fixpoint engine (tuples, variable environments, join
/// keys) are dominated by short sequences, so avoiding a heap allocation
/// for them matters.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SUPPORT_SMALLVECTOR_H
#define FLIX_SUPPORT_SMALLVECTOR_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace flix {

/// Dynamic array with inline storage for up to \p N elements.
///
/// Supports the subset of the std::vector interface the project uses.
/// Unlike std::vector, growing from the inline buffer moves elements, so
/// iterators and references are invalidated by any growth.
template <typename T, unsigned N = 8> class SmallVector {
public:
  using value_type = T;
  using iterator = T *;
  using const_iterator = const T *;
  using size_type = size_t;

  SmallVector() : Data(inlineBuffer()), Size(0), Capacity(N) {}

  explicit SmallVector(size_t Count, const T &Val = T()) : SmallVector() {
    reserve(Count);
    for (size_t I = 0; I < Count; ++I)
      push_back(Val);
  }

  SmallVector(std::initializer_list<T> Init) : SmallVector() {
    reserve(Init.size());
    for (const T &V : Init)
      push_back(V);
  }

  template <typename It> SmallVector(It First, It Last) : SmallVector() {
    for (; First != Last; ++First)
      push_back(*First);
  }

  SmallVector(const SmallVector &Other) : SmallVector() {
    reserve(Other.Size);
    for (const T &V : Other)
      push_back(V);
  }

  SmallVector(SmallVector &&Other) noexcept : SmallVector() {
    moveFrom(std::move(Other));
  }

  SmallVector &operator=(const SmallVector &Other) {
    if (this == &Other)
      return *this;
    clear();
    reserve(Other.Size);
    for (const T &V : Other)
      push_back(V);
    return *this;
  }

  SmallVector &operator=(SmallVector &&Other) noexcept {
    if (this == &Other)
      return *this;
    destroyAll();
    moveFrom(std::move(Other));
    return *this;
  }

  SmallVector &operator=(std::initializer_list<T> Init) {
    clear();
    reserve(Init.size());
    for (const T &V : Init)
      push_back(V);
    return *this;
  }

  ~SmallVector() { destroyAll(); }

  iterator begin() { return Data; }
  iterator end() { return Data + Size; }
  const_iterator begin() const { return Data; }
  const_iterator end() const { return Data + Size; }

  size_t size() const { return Size; }
  bool empty() const { return Size == 0; }
  size_t capacity() const { return Capacity; }

  T &operator[](size_t I) {
    assert(I < Size && "SmallVector index out of range");
    return Data[I];
  }
  const T &operator[](size_t I) const {
    assert(I < Size && "SmallVector index out of range");
    return Data[I];
  }

  T &front() {
    assert(!empty() && "front() on empty SmallVector");
    return Data[0];
  }
  const T &front() const {
    assert(!empty() && "front() on empty SmallVector");
    return Data[0];
  }
  T &back() {
    assert(!empty() && "back() on empty SmallVector");
    return Data[Size - 1];
  }
  const T &back() const {
    assert(!empty() && "back() on empty SmallVector");
    return Data[Size - 1];
  }

  T *data() { return Data; }
  const T *data() const { return Data; }

  void push_back(const T &Val) { emplace_back(Val); }
  void push_back(T &&Val) { emplace_back(std::move(Val)); }

  template <typename... Args> T &emplace_back(Args &&...A) {
    if (Size == Capacity)
      grow(Capacity * 2);
    ::new (static_cast<void *>(Data + Size)) T(std::forward<Args>(A)...);
    return Data[Size++];
  }

  void pop_back() {
    assert(!empty() && "pop_back() on empty SmallVector");
    Data[--Size].~T();
  }

  void clear() {
    for (size_t I = 0; I < Size; ++I)
      Data[I].~T();
    Size = 0;
  }

  void reserve(size_t NewCap) {
    if (NewCap > Capacity)
      grow(NewCap);
  }

  void resize(size_t NewSize, const T &Fill = T()) {
    if (NewSize < Size) {
      for (size_t I = NewSize; I < Size; ++I)
        Data[I].~T();
      Size = NewSize;
      return;
    }
    reserve(NewSize);
    while (Size < NewSize)
      push_back(Fill);
  }

  /// Appends the range [First, Last).
  template <typename It> void append(It First, It Last) {
    for (; First != Last; ++First)
      push_back(*First);
  }

  /// Removes the element at \p Pos, shifting later elements left.
  iterator erase(iterator Pos) {
    assert(Pos >= begin() && Pos < end() && "erase position out of range");
    std::move(Pos + 1, end(), Pos);
    pop_back();
    return Pos;
  }

  bool operator==(const SmallVector &Other) const {
    return Size == Other.Size && std::equal(begin(), end(), Other.begin());
  }
  bool operator!=(const SmallVector &Other) const { return !(*this == Other); }
  bool operator<(const SmallVector &Other) const {
    return std::lexicographical_compare(begin(), end(), Other.begin(),
                                        Other.end());
  }

private:
  T *inlineBuffer() { return reinterpret_cast<T *>(InlineStorage); }
  bool isInline() const {
    return Data == reinterpret_cast<const T *>(InlineStorage);
  }

  // GCC 12 emits spurious -Warray-bounds / -Wmaybe-uninitialized warnings
  // for placement-new into allocator storage here; the code is well
  // defined (indices are always < Size <= Capacity).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
  void grow(size_t NewCap) {
    NewCap = std::max<size_t>(NewCap, Capacity * 2);
    T *NewData = std::allocator<T>().allocate(NewCap);
    for (size_t I = 0; I < Size; ++I) {
      ::new (static_cast<void *>(NewData + I)) T(std::move(Data[I]));
      Data[I].~T();
    }
    if (!isInline())
      std::allocator<T>().deallocate(Data, Capacity);
    Data = NewData;
    Capacity = NewCap;
  }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

  void destroyAll() {
    clear();
    if (!isInline())
      std::allocator<T>().deallocate(Data, Capacity);
    Data = inlineBuffer();
    Capacity = N;
  }

  void moveFrom(SmallVector &&Other) {
    if (Other.isInline()) {
      Data = inlineBuffer();
      Capacity = N;
      Size = Other.Size;
      for (size_t I = 0; I < Size; ++I) {
        ::new (static_cast<void *>(Data + I)) T(std::move(Other.Data[I]));
        Other.Data[I].~T();
      }
      Other.Size = 0;
      return;
    }
    // Steal the heap buffer.
    Data = Other.Data;
    Size = Other.Size;
    Capacity = Other.Capacity;
    Other.Data = Other.inlineBuffer();
    Other.Size = 0;
    Other.Capacity = N;
  }

  // Zero-initialized to keep GCC's -Wmaybe-uninitialized quiet at use
  // sites; the bytes are semantically dead until placement-new.
  alignas(T) unsigned char InlineStorage[N * sizeof(T)] = {};
  T *Data;
  size_t Size;
  size_t Capacity;
};

} // namespace flix

#endif // FLIX_SUPPORT_SMALLVECTOR_H
