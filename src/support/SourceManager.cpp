//===- support/SourceManager.cpp - Source buffers and locations -----------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cassert>

using namespace flix;

uint32_t SourceManager::addBuffer(std::string Name, std::string Contents) {
  Buffer B;
  B.Name = std::move(Name);
  B.Contents = std::move(Contents);
  B.LineStarts.push_back(0);
  for (uint32_t I = 0, E = static_cast<uint32_t>(B.Contents.size()); I != E;
       ++I)
    if (B.Contents[I] == '\n')
      B.LineStarts.push_back(I + 1);
  Buffers.push_back(std::move(B));
  return static_cast<uint32_t>(Buffers.size());
}

const SourceManager::Buffer &SourceManager::buffer(uint32_t Id) const {
  assert(Id >= 1 && Id <= Buffers.size() && "invalid buffer id");
  return Buffers[Id - 1];
}

std::string_view SourceManager::bufferText(uint32_t Id) const {
  return buffer(Id).Contents;
}

const std::string &SourceManager::bufferName(uint32_t Id) const {
  return buffer(Id).Name;
}

LineColumn SourceManager::lineColumn(SourceLoc Loc) const {
  const Buffer &B = buffer(Loc.Buffer);
  auto It = std::upper_bound(B.LineStarts.begin(), B.LineStarts.end(),
                             Loc.Offset);
  uint32_t Line = static_cast<uint32_t>(It - B.LineStarts.begin());
  uint32_t LineStart = B.LineStarts[Line - 1];
  return LineColumn{Line, Loc.Offset - LineStart + 1};
}

std::string_view SourceManager::lineText(SourceLoc Loc) const {
  const Buffer &B = buffer(Loc.Buffer);
  LineColumn LC = lineColumn(Loc);
  uint32_t Start = B.LineStarts[LC.Line - 1];
  uint32_t End = LC.Line < B.LineStarts.size()
                     ? B.LineStarts[LC.Line] - 1
                     : static_cast<uint32_t>(B.Contents.size());
  return std::string_view(B.Contents).substr(Start, End - Start);
}
