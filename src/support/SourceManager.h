//===- support/SourceManager.h - Source buffers and locations -*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns the text of FLIX source files and maps byte offsets to
/// human-readable line/column positions for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SUPPORT_SOURCEMANAGER_H
#define FLIX_SUPPORT_SOURCEMANAGER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace flix {

/// A position in some source buffer: buffer id plus byte offset.
struct SourceLoc {
  uint32_t Buffer = 0;
  uint32_t Offset = 0;

  bool isValid() const { return Buffer != 0; }
  static SourceLoc invalid() { return SourceLoc{}; }
};

/// A half-open byte range [Begin, End) within one buffer.
struct SourceRange {
  SourceLoc Begin;
  uint32_t End = 0;

  bool isValid() const { return Begin.isValid(); }
};

/// 1-based line/column pair resolved from a SourceLoc.
struct LineColumn {
  uint32_t Line = 0;
  uint32_t Column = 0;
};

/// Owns source buffers and resolves locations.
class SourceManager {
public:
  /// Registers a buffer and returns its id (>= 1). The name is used in
  /// diagnostics (typically a file path or "<input>").
  uint32_t addBuffer(std::string Name, std::string Contents);

  /// Returns the full text of buffer \p Id.
  std::string_view bufferText(uint32_t Id) const;

  /// Returns the display name of buffer \p Id.
  const std::string &bufferName(uint32_t Id) const;

  /// Resolves \p Loc to a 1-based line/column pair.
  LineColumn lineColumn(SourceLoc Loc) const;

  /// Returns the full text of the line containing \p Loc (without the
  /// trailing newline), for diagnostic snippets.
  std::string_view lineText(SourceLoc Loc) const;

  size_t numBuffers() const { return Buffers.size(); }

private:
  struct Buffer {
    std::string Name;
    std::string Contents;
    /// Byte offsets of the first character of every line.
    std::vector<uint32_t> LineStarts;
  };

  const Buffer &buffer(uint32_t Id) const;

  std::vector<Buffer> Buffers;
};

} // namespace flix

#endif // FLIX_SUPPORT_SOURCEMANAGER_H
