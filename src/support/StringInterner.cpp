//===- support/StringInterner.cpp - String interning ----------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "support/StringInterner.h"

#include <cassert>

using namespace flix;

Symbol StringInterner::intern(std::string_view Str) {
  std::unique_lock<std::mutex> Lock;
  if (Concurrent.load(std::memory_order_relaxed))
    Lock = std::unique_lock<std::mutex>(Mu);
  auto It = Map.find(Str);
  if (It != Map.end())
    return Symbol{It->second};
  uint32_t Id = static_cast<uint32_t>(Strings.size());
  Strings.push_back(std::string(Str));
  Map.emplace(std::string_view(Strings[Id]), Id);
  return Symbol{Id};
}

const std::string &StringInterner::text(Symbol Sym) const {
  assert(Sym.Id < Strings.size() && "symbol from a different interner");
  return Strings[Sym.Id];
}

uint32_t StringInterner::lookup(std::string_view Str) const {
  std::unique_lock<std::mutex> Lock;
  if (Concurrent.load(std::memory_order_relaxed))
    Lock = std::unique_lock<std::mutex>(Mu);
  auto It = Map.find(Str);
  return It == Map.end() ? NotInterned : It->second;
}
