//===- support/StringInterner.h - String interning ------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns strings into dense 32-bit symbols. Identifiers, string constants
/// and predicate names are interned once so the rest of the system can
/// compare and hash them as integers.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_SUPPORT_STRINGINTERNER_H
#define FLIX_SUPPORT_STRINGINTERNER_H

#include "support/SegmentedVector.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace flix {

/// A handle to an interned string. Symbols are only meaningful relative to
/// the StringInterner that produced them.
struct Symbol {
  uint32_t Id = 0;

  bool operator==(const Symbol &O) const { return Id == O.Id; }
  bool operator!=(const Symbol &O) const { return Id != O.Id; }
  bool operator<(const Symbol &O) const { return Id < O.Id; }
};

/// Interns strings and hands out stable Symbol handles.
///
/// Symbol 0 is always the empty string, so a default-constructed Symbol is
/// valid and denotes "".
///
/// By default the interner is single-threaded. After enableConcurrent()
/// intern() and lookup() serialize on an internal mutex while text()
/// remains lock-free: storage is a SegmentedVector, so a published Symbol
/// always refers to memory written before the symbol escaped the mutex.
class StringInterner {
public:
  StringInterner() { intern(""); }

  /// Returns the symbol for \p Str, interning it on first use.
  Symbol intern(std::string_view Str);

  /// Returns the text of \p Sym. The reference stays valid for the lifetime
  /// of the interner.
  const std::string &text(Symbol Sym) const;

  /// Number of distinct strings interned so far.
  size_t size() const { return Strings.size(); }

  /// Returns the symbol for \p Str if already interned, otherwise nullopt
  /// encoded as Symbol{UINT32_MAX}.
  static constexpr uint32_t NotInterned = UINT32_MAX;
  uint32_t lookup(std::string_view Str) const;

  /// Switches intern()/lookup() to mutex-serialized operation so multiple
  /// threads may intern concurrently. One-way: there is no way back, so a
  /// solver that finished does not yank thread safety from another solver
  /// still running on the same interner.
  void enableConcurrent() { Concurrent.store(true, std::memory_order_relaxed); }

private:
  // SegmentedVector keeps element addresses (and thus the string_view keys
  // below, which point into the stored strings) stable as it grows, and
  // makes text() safe against concurrent intern() in concurrent mode.
  SegmentedVector<std::string> Strings;
  std::unordered_map<std::string_view, uint32_t> Map;
  std::atomic<bool> Concurrent{false};
  mutable std::mutex Mu;
};

} // namespace flix

namespace std {
template <> struct hash<flix::Symbol> {
  size_t operator()(const flix::Symbol &S) const noexcept {
    return std::hash<uint32_t>()(S.Id);
  }
};
} // namespace std

#endif // FLIX_SUPPORT_STRINGINTERNER_H
