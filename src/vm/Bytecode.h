//===- vm/Bytecode.h - Register bytecode for FLIX functions ---*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode representation executed by the dispatch-loop VM (vm/Vm.h):
/// a register machine over hash-consed runtime Values. Each compiled
/// function owns a flat instruction array, a constants pool, and the
/// static side tables of its tag-dispatch sites; call frames are slices
/// of a per-thread register stack, so execution allocates nothing on the
/// hot path.
///
/// The instruction set mirrors the functional sub-language one-to-one
/// (ints, bools, strings, tags, tuples, sets, calls, matches) plus two
/// kinds of fused fast path:
///
///   * Lattice prologues (LeqPrologue/LubPrologue/GlbPrologue) emitted at
///     the entry of compiled lattice operations. They decide the common
///     cases — equal handles, ⊥/⊤ operands — from the universal lattice
///     identities (x ⊑ x, ⊥ ⊑ x, x ⊑ ⊤, x ⊔ ⊥ = x, ...) with a handful
///     of handle compares, so builtin lattices usually never reach the
///     general compiled body.
///
///   * Inline caches. A TagDispatch site caches (tag symbol → target pc)
///     in a single packed atomic word; TupleGet/TupleCheck sites cache
///     the raw bits of the last matching tuple handle. Caches are shared
///     across threads with relaxed atomics: a stale read is just a miss,
///     a torn value is impossible (one 64-bit word), and the cached
///     fact is immutable (values are hash-consed, so a handle's tag or
///     arity never changes) — no invalidation is ever required.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_VM_BYTECODE_H
#define FLIX_VM_BYTECODE_H

#include "runtime/Value.h"
#include "support/SourceManager.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace flix::vm {

enum class Op : uint8_t {
  // -- data movement -------------------------------------------------
  LoadConst, ///< R[A] = Consts[Imm]
  Move,      ///< R[A] = R[B]

  // -- integer arithmetic (operands proven Int by the type checker) ---
  AddInt, ///< R[A] = R[B] + R[C]
  SubInt, ///< R[A] = R[B] - R[C]
  MulInt, ///< R[A] = R[B] * R[C]
  DivInt, ///< R[A] = R[B] / R[C]; faults on zero divisor
  RemInt, ///< R[A] = R[B] % R[C]; faults on zero divisor
  NegInt, ///< R[A] = -R[B]

  // -- immediate-operand forms (constant folded into Imm; spares a
  // -- LoadConst and a register on the very common reg-op-const shape) -
  AddImm,   ///< R[A] = R[B] + Imm
  SubImm,   ///< R[A] = R[B] - Imm
  MulImm,   ///< R[A] = R[B] * Imm
  DivImm,   ///< R[A] = R[B] / Imm; faults when Imm == 0
  RemImm,   ///< R[A] = R[B] % Imm; faults when Imm == 0
  CmpLtImm, ///< R[A] = R[B] < Imm   (Int)
  CmpLeImm, ///< R[A] = R[B] <= Imm  (Int)
  CmpGtImm, ///< R[A] = R[B] > Imm   (Int)
  CmpGeImm, ///< R[A] = R[B] >= Imm  (Int)
  CmpEqImm, ///< R[A] = R[B] is the Int Imm (Int == is never a fault)
  CmpNeImm, ///< R[A] = R[B] is not the Int Imm

  // -- comparisons ----------------------------------------------------
  CmpLt,   ///< R[A] = R[B] < R[C]   (Int)
  CmpLe,   ///< R[A] = R[B] <= R[C]  (Int)
  CmpGt,   ///< R[A] = R[B] > R[C]   (Int)
  CmpGe,   ///< R[A] = R[B] >= R[C]  (Int)
  CmpEq,   ///< R[A] = R[B] == R[C]  (any kind; handle equality)
  CmpNe,   ///< R[A] = R[B] != R[C]
  NotBool, ///< R[A] = !R[B]

  // -- control flow ---------------------------------------------------
  Jump,        ///< pc = Imm
  JumpIfFalse, ///< if (!R[A]) pc = Imm; faults if R[A] is not Bool
  JumpIfTrue,  ///< if (R[A]) pc = Imm; faults if R[A] is not Bool
  Ret,         ///< return R[A]

  // -- pattern tests (jump to Imm when the test fails) ----------------
  JumpIfNeConst,   ///< if (R[A] != Consts[B]) pc = Imm
  JumpIfNotTag,    ///< if (R[A] is not a tag named symbol B) pc = Imm
  JumpIfNotTuple,  ///< if (R[A] is not a B-tuple) pc = Imm; C = cache id
  TagDispatch,     ///< indirect jump through tag table B (cache id C);
                   ///< pc = Imm when the scrutinee's tag is absent
  GetPayload,      ///< R[A] = payload of tag R[B]
  GetTupleElem,    ///< R[A] = element C of tuple R[B]

  // -- construction ---------------------------------------------------
  MakeTag,   ///< R[A] = tag(symbol B, payload R[C])
  MakeTuple, ///< R[A] = tuple(R[B] ... R[B+C-1])
  MakeSet,   ///< R[A] = set(R[B] ... R[B+C-1])

  // -- calls ----------------------------------------------------------
  CallFn,     ///< R[A] = Functions[Imm](R[B] ... R[B+C-1])
  CallNative, ///< R[A] = Natives[Imm](R[B] ... R[B+C-1])

  // -- faults ---------------------------------------------------------
  FailNoMatch, ///< no match case accepted R[A]; record the fault

  // -- fused lattice fast paths (entry of leq/lub/glb bodies) ---------
  // Operate on the two parameter registers r0, r1; B/C index the ⊥/⊤
  // constants in the pool. Each either returns directly or falls
  // through to the general compiled body.
  LeqPrologue, ///< r0==r1 | r0==⊥ | r1==⊤ → return true
  LubPrologue, ///< r0==r1→r0; ⊥ is identity; ⊤ absorbs
  GlbPrologue, ///< r0==r1→r0; ⊤ is identity; ⊥ absorbs

  // -- superwords (vm/Passes.cpp peephole; see FusedCmp helpers below) -
  FusedCmpJump,    ///< if ((R[A] cmp R[B]) == sense) pc = Imm; C packs
                   ///< the comparison kind and jump sense. Faults like
                   ///< the original compare on non-Int operands.
  FusedCmpImmJump, ///< same with the Int immediate bit_cast into B

  // -- inline frames (vm/Passes.cpp bytecode inliner) -----------------
  // Bracket an inlined callee body so the call-depth accounting — and
  // therefore the depth-overflow diagnostic — stays byte-identical to
  // the interpreter even though no frame is pushed.
  EnterInline, ///< fault "call depth exceeded in Functions[B]..." when
               ///< the depth limit is hit, else ++depth
  LeaveInline, ///< --depth

  // -- pipeline scratch -----------------------------------------------
  Nop, ///< pass-deleted slot; removed by compaction, executes as no-op
};

/// X-macro listing every opcode exactly once, in enum order. The
/// threaded dispatch core (vm/Vm.cpp) builds its computed-goto table
/// from this list, and a static_assert there proves the list order
/// matches the enum — adding an opcode without a handler is a compile
/// error in the threaded build, not a silent misdispatch.
#define FLIX_VM_OPLIST(X)                                                      \
  X(LoadConst) X(Move)                                                         \
  X(AddInt) X(SubInt) X(MulInt) X(DivInt) X(RemInt) X(NegInt)                  \
  X(AddImm) X(SubImm) X(MulImm) X(DivImm) X(RemImm)                            \
  X(CmpLtImm) X(CmpLeImm) X(CmpGtImm) X(CmpGeImm) X(CmpEqImm) X(CmpNeImm)      \
  X(CmpLt) X(CmpLe) X(CmpGt) X(CmpGe) X(CmpEq) X(CmpNe) X(NotBool)             \
  X(Jump) X(JumpIfFalse) X(JumpIfTrue) X(Ret)                                  \
  X(JumpIfNeConst) X(JumpIfNotTag) X(JumpIfNotTuple) X(TagDispatch)            \
  X(GetPayload) X(GetTupleElem)                                                \
  X(MakeTag) X(MakeTuple) X(MakeSet)                                           \
  X(CallFn) X(CallNative) X(FailNoMatch)                                       \
  X(LeqPrologue) X(LubPrologue) X(GlbPrologue)                                 \
  X(FusedCmpJump) X(FusedCmpImmJump) X(EnterInline) X(LeaveInline) X(Nop)

/// Comparison kind packed into the C operand of the fused
/// compare+branch superwords, together with the jump sense.
enum class CmpKind : uint16_t { Lt, Le, Gt, Ge, Eq, Ne };

/// C operand encoding for FusedCmpJump/FusedCmpImmJump: bit 3 is the
/// jump sense (1 = jump when the comparison holds, 0 = jump when it
/// does not), bits 0..2 the CmpKind.
inline uint16_t packFusedCmp(CmpKind Kind, bool JumpIfHolds) {
  return uint16_t((JumpIfHolds ? 8u : 0u) | uint16_t(Kind));
}
inline CmpKind fusedCmpKind(uint16_t C) { return CmpKind(C & 7u); }
inline bool fusedJumpIfHolds(uint16_t C) { return (C & 8u) != 0; }

/// One fixed-width instruction. A/B/C are register numbers, counts,
/// constant-pool slots or symbol ids depending on the opcode; Imm is a
/// jump target, constant index or function index.
struct Instr {
  Op K;
  uint16_t A = 0;
  uint32_t B = 0;
  uint16_t C = 0;
  int32_t Imm = 0;
};

/// One entry of a TagDispatch site's symbol → pc table.
struct TagTableEntry {
  uint32_t Symbol; ///< interned tag name ("Enum.Case")
  int32_t Target;  ///< pc of the first case testing this tag
};

/// A compiled function: parameters arrive in registers 0..NumParams-1.
struct VmFunction {
  std::string Name;
  uint32_t NumParams = 0;
  uint32_t NumRegs = 0; ///< frame size, parameters included
  std::vector<Instr> Code;
  std::vector<Value> Consts;
  /// Tag-dispatch side tables, indexed by Instr::B of TagDispatch.
  std::vector<std::vector<TagTableEntry>> TagTables;
  /// Pre-rendered "name at file:line:col" for the call-depth diagnostic,
  /// identical to the interpreter's (satellite of ISSUE 8; the source
  /// span is static, so it is cheaper to render once at compile time).
  std::string DepthErrWhere;
  /// False when compilation failed or a callee is unusable; the caller
  /// keeps the interpreter implementation instead.
  bool Ok = false;
  /// Function indexes this body calls via CallFn, for the usability
  /// closure computed after all bodies are compiled.
  std::vector<uint32_t> Callees;
};

/// What the optimization pipeline (vm/Passes.cpp) did to a module.
/// Static per compiled module — the passes run once, at compile time —
/// so every solve over the module reports the same numbers.
struct VmPipelineStats {
  uint64_t InlinedCalls = 0;   ///< CallFn sites replaced by inline bodies
  uint64_t SuperwordHits = 0;  ///< compare+branch pairs fused
  uint64_t RemovedInsns = 0;   ///< instructions removed by SCCP/CSE/DCE/
                               ///< jump threading
};

/// A compiled module: every def of a CheckedModule plus one anonymous
/// function per rule wrapper (filter/binder/transfer). Immutable after
/// compilation except the inline-cache words, which are monotone
/// single-word caches (see file comment).
struct VmModule {
  std::vector<VmFunction> Functions;
  /// Native (ext def) slots referenced by CallNative, by registration
  /// name. Implementations are filled in by the host before solving;
  /// calling an empty slot faults like the interpreter does.
  std::vector<std::string> NativeNames;
  std::vector<std::function<Value(ValueFactory &, std::span<const Value>)>>
      Natives;
  /// Inline-cache words, shared by all executions. TagDispatch packs
  /// (tag symbol id << 32 | target pc); JumpIfNotTuple stores the raw
  /// bits of the last tuple handle that passed the site's check. A
  /// deque so cache words allocated during compilation never move —
  /// executing threads hold stable references.
  std::deque<std::atomic<uint64_t>> Caches;

  /// Filled by vm/Passes.cpp when the pipeline runs (opt level > 0).
  VmPipelineStats Pipeline;

  static constexpr uint64_t EmptyCache = ~uint64_t{0};
};

} // namespace flix::vm

#endif // FLIX_VM_BYTECODE_H
