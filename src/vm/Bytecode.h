//===- vm/Bytecode.h - Register bytecode for FLIX functions ---*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bytecode representation executed by the dispatch-loop VM (vm/Vm.h):
/// a register machine over hash-consed runtime Values. Each compiled
/// function owns a flat instruction array, a constants pool, and the
/// static side tables of its tag-dispatch sites; call frames are slices
/// of a per-thread register stack, so execution allocates nothing on the
/// hot path.
///
/// The instruction set mirrors the functional sub-language one-to-one
/// (ints, bools, strings, tags, tuples, sets, calls, matches) plus two
/// kinds of fused fast path:
///
///   * Lattice prologues (LeqPrologue/LubPrologue/GlbPrologue) emitted at
///     the entry of compiled lattice operations. They decide the common
///     cases — equal handles, ⊥/⊤ operands — from the universal lattice
///     identities (x ⊑ x, ⊥ ⊑ x, x ⊑ ⊤, x ⊔ ⊥ = x, ...) with a handful
///     of handle compares, so builtin lattices usually never reach the
///     general compiled body.
///
///   * Inline caches. A TagDispatch site caches (tag symbol → target pc)
///     in a single packed atomic word; TupleGet/TupleCheck sites cache
///     the raw bits of the last matching tuple handle. Caches are shared
///     across threads with relaxed atomics: a stale read is just a miss,
///     a torn value is impossible (one 64-bit word), and the cached
///     fact is immutable (values are hash-consed, so a handle's tag or
///     arity never changes) — no invalidation is ever required.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_VM_BYTECODE_H
#define FLIX_VM_BYTECODE_H

#include "runtime/Value.h"
#include "support/SourceManager.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace flix::vm {

enum class Op : uint8_t {
  // -- data movement -------------------------------------------------
  LoadConst, ///< R[A] = Consts[Imm]
  Move,      ///< R[A] = R[B]

  // -- integer arithmetic (operands proven Int by the type checker) ---
  AddInt, ///< R[A] = R[B] + R[C]
  SubInt, ///< R[A] = R[B] - R[C]
  MulInt, ///< R[A] = R[B] * R[C]
  DivInt, ///< R[A] = R[B] / R[C]; faults on zero divisor
  RemInt, ///< R[A] = R[B] % R[C]; faults on zero divisor
  NegInt, ///< R[A] = -R[B]

  // -- immediate-operand forms (constant folded into Imm; spares a
  // -- LoadConst and a register on the very common reg-op-const shape) -
  AddImm,   ///< R[A] = R[B] + Imm
  SubImm,   ///< R[A] = R[B] - Imm
  MulImm,   ///< R[A] = R[B] * Imm
  DivImm,   ///< R[A] = R[B] / Imm; faults when Imm == 0
  RemImm,   ///< R[A] = R[B] % Imm; faults when Imm == 0
  CmpLtImm, ///< R[A] = R[B] < Imm   (Int)
  CmpLeImm, ///< R[A] = R[B] <= Imm  (Int)
  CmpGtImm, ///< R[A] = R[B] > Imm   (Int)
  CmpGeImm, ///< R[A] = R[B] >= Imm  (Int)
  CmpEqImm, ///< R[A] = R[B] is the Int Imm (Int == is never a fault)
  CmpNeImm, ///< R[A] = R[B] is not the Int Imm

  // -- comparisons ----------------------------------------------------
  CmpLt,   ///< R[A] = R[B] < R[C]   (Int)
  CmpLe,   ///< R[A] = R[B] <= R[C]  (Int)
  CmpGt,   ///< R[A] = R[B] > R[C]   (Int)
  CmpGe,   ///< R[A] = R[B] >= R[C]  (Int)
  CmpEq,   ///< R[A] = R[B] == R[C]  (any kind; handle equality)
  CmpNe,   ///< R[A] = R[B] != R[C]
  NotBool, ///< R[A] = !R[B]

  // -- control flow ---------------------------------------------------
  Jump,        ///< pc = Imm
  JumpIfFalse, ///< if (!R[A]) pc = Imm; faults if R[A] is not Bool
  JumpIfTrue,  ///< if (R[A]) pc = Imm; faults if R[A] is not Bool
  Ret,         ///< return R[A]

  // -- pattern tests (jump to Imm when the test fails) ----------------
  JumpIfNeConst,   ///< if (R[A] != Consts[B]) pc = Imm
  JumpIfNotTag,    ///< if (R[A] is not a tag named symbol B) pc = Imm
  JumpIfNotTuple,  ///< if (R[A] is not a B-tuple) pc = Imm; C = cache id
  TagDispatch,     ///< indirect jump through tag table B (cache id C);
                   ///< pc = Imm when the scrutinee's tag is absent
  GetPayload,      ///< R[A] = payload of tag R[B]
  GetTupleElem,    ///< R[A] = element C of tuple R[B]

  // -- construction ---------------------------------------------------
  MakeTag,   ///< R[A] = tag(symbol B, payload R[C])
  MakeTuple, ///< R[A] = tuple(R[B] ... R[B+C-1])
  MakeSet,   ///< R[A] = set(R[B] ... R[B+C-1])

  // -- calls ----------------------------------------------------------
  CallFn,     ///< R[A] = Functions[Imm](R[B] ... R[B+C-1])
  CallNative, ///< R[A] = Natives[Imm](R[B] ... R[B+C-1])

  // -- faults ---------------------------------------------------------
  FailNoMatch, ///< no match case accepted R[A]; record the fault

  // -- fused lattice fast paths (entry of leq/lub/glb bodies) ---------
  // Operate on the two parameter registers r0, r1; B/C index the ⊥/⊤
  // constants in the pool. Each either returns directly or falls
  // through to the general compiled body.
  LeqPrologue, ///< r0==r1 | r0==⊥ | r1==⊤ → return true
  LubPrologue, ///< r0==r1→r0; ⊥ is identity; ⊤ absorbs
  GlbPrologue, ///< r0==r1→r0; ⊤ is identity; ⊥ absorbs
};

/// One fixed-width instruction. A/B/C are register numbers, counts,
/// constant-pool slots or symbol ids depending on the opcode; Imm is a
/// jump target, constant index or function index.
struct Instr {
  Op K;
  uint16_t A = 0;
  uint32_t B = 0;
  uint16_t C = 0;
  int32_t Imm = 0;
};

/// One entry of a TagDispatch site's symbol → pc table.
struct TagTableEntry {
  uint32_t Symbol; ///< interned tag name ("Enum.Case")
  int32_t Target;  ///< pc of the first case testing this tag
};

/// A compiled function: parameters arrive in registers 0..NumParams-1.
struct VmFunction {
  std::string Name;
  uint32_t NumParams = 0;
  uint32_t NumRegs = 0; ///< frame size, parameters included
  std::vector<Instr> Code;
  std::vector<Value> Consts;
  /// Tag-dispatch side tables, indexed by Instr::B of TagDispatch.
  std::vector<std::vector<TagTableEntry>> TagTables;
  /// Pre-rendered "name at file:line:col" for the call-depth diagnostic,
  /// identical to the interpreter's (satellite of ISSUE 8; the source
  /// span is static, so it is cheaper to render once at compile time).
  std::string DepthErrWhere;
  /// False when compilation failed or a callee is unusable; the caller
  /// keeps the interpreter implementation instead.
  bool Ok = false;
  /// Function indexes this body calls via CallFn, for the usability
  /// closure computed after all bodies are compiled.
  std::vector<uint32_t> Callees;
};

/// A compiled module: every def of a CheckedModule plus one anonymous
/// function per rule wrapper (filter/binder/transfer). Immutable after
/// compilation except the inline-cache words, which are monotone
/// single-word caches (see file comment).
struct VmModule {
  std::vector<VmFunction> Functions;
  /// Native (ext def) slots referenced by CallNative, by registration
  /// name. Implementations are filled in by the host before solving;
  /// calling an empty slot faults like the interpreter does.
  std::vector<std::string> NativeNames;
  std::vector<std::function<Value(ValueFactory &, std::span<const Value>)>>
      Natives;
  /// Inline-cache words, shared by all executions. TagDispatch packs
  /// (tag symbol id << 32 | target pc); JumpIfNotTuple stores the raw
  /// bits of the last tuple handle that passed the site's check. A
  /// deque so cache words allocated during compilation never move —
  /// executing threads hold stable references.
  std::deque<std::atomic<uint64_t>> Caches;

  static constexpr uint64_t EmptyCache = ~uint64_t{0};
};

} // namespace flix::vm

#endif // FLIX_VM_BYTECODE_H
