//===- vm/Passes.cpp - Bytecode optimization pipeline ----------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// See Passes.h for the pipeline overview. Safety rules the passes obey:
//
//  * Fault preservation. Faults are observable (first-fault callback +
//    Unit result), so a potentially-faulting instruction is never
//    removed, folded, or reordered. Folding only happens when the
//    static operands prove the instruction cannot fault (e.g. both
//    operands known Int and the divisor known nonzero); CSE may reuse a
//    faulting op's result because identical operands fault identically
//    — if the first occurrence faulted, the second never executes.
//
//  * No back edges. The compiler only emits forward jumps (loops exist
//    only via calls), so pc order is a topological order: one forward
//    sweep gives exact constant states at every merge point, and one
//    backward sweep gives exact liveness. The inliner preserves this —
//    spliced bodies keep all their jumps forward.
//
//  * Depth parity. Inlined bodies are bracketed by EnterInline (depth
//    check + increment, faulting with the callee's pre-rendered
//    "'name' at file:line:col" exactly like CallFn) and LeaveInline, so
//    the call-depth-overflow diagnostic stays byte-identical to the
//    interpreter at any opt level.
//
//===----------------------------------------------------------------------===//

#include "vm/Passes.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <tuple>
#include <vector>

using namespace flix;
using namespace flix::vm;

namespace {

// Mirrors VmCompiler's frame cap; uniform-offset inlining allocates the
// callee's whole frame above the caller's.
constexpr uint32_t MaxRegs = 1024;
// A callee larger than this never inlines (frame setup it would save is
// noise against a body this long), and a caller never grows past the
// code cap however many eligible sites it has. 48 admits moderate
// straight-line bodies (a let/if/match chain lands in the 30s) while
// still refusing anything whose run time dwarfs the call overhead.
constexpr size_t InlineCalleeBudget = 48;
constexpr size_t InlineCallerCap = 768;
// Bound on nested EnterInline markers a callee may already carry.
constexpr int InlineNestBudget = 3;
// LoadConst indexes the pool via Imm but JumpIfNeConst via the 32-bit B;
// stay under the narrower uint16_t the prologues use for headroom.
constexpr size_t MaxConsts = 60000;

/// Which fields of an instruction are register reads/writes and whether
/// Imm is a jump target — the single source of truth for every rewrite
/// walk below.
struct Roles {
  bool DstA = false;   ///< A is a written register
  bool SrcA = false;   ///< A is a read register
  bool SrcB = false;   ///< B is a read register
  bool SrcC = false;   ///< C is a read register
  bool RangeBC = false; ///< B..B+C-1 is a read register range
  bool JumpImm = false; ///< Imm is a jump target
};

Roles roles(Op K) {
  Roles R;
  switch (K) {
  case Op::LoadConst:
    R.DstA = true;
    break;
  case Op::Move:
  case Op::NegInt:
  case Op::NotBool:
  case Op::GetPayload:
  case Op::GetTupleElem:
  case Op::AddImm:
  case Op::SubImm:
  case Op::MulImm:
  case Op::DivImm:
  case Op::RemImm:
  case Op::CmpLtImm:
  case Op::CmpLeImm:
  case Op::CmpGtImm:
  case Op::CmpGeImm:
  case Op::CmpEqImm:
  case Op::CmpNeImm:
    R.DstA = R.SrcB = true;
    break;
  case Op::AddInt:
  case Op::SubInt:
  case Op::MulInt:
  case Op::DivInt:
  case Op::RemInt:
  case Op::CmpLt:
  case Op::CmpLe:
  case Op::CmpGt:
  case Op::CmpGe:
  case Op::CmpEq:
  case Op::CmpNe:
    R.DstA = R.SrcB = R.SrcC = true;
    break;
  case Op::Jump:
    R.JumpImm = true;
    break;
  case Op::JumpIfFalse:
  case Op::JumpIfTrue:
  case Op::JumpIfNeConst:
  case Op::JumpIfNotTag:
  case Op::JumpIfNotTuple:
  case Op::TagDispatch:
    R.SrcA = R.JumpImm = true;
    break;
  case Op::Ret:
  case Op::FailNoMatch:
    R.SrcA = true;
    break;
  case Op::MakeTag:
    R.DstA = R.SrcC = true;
    break;
  case Op::MakeTuple:
  case Op::MakeSet:
    R.DstA = R.RangeBC = true;
    break;
  case Op::CallFn:
  case Op::CallNative:
    R.DstA = R.RangeBC = true;
    break;
  case Op::LeqPrologue:
  case Op::LubPrologue:
  case Op::GlbPrologue:
    // Read the two parameter registers implicitly; may return directly.
    break;
  case Op::FusedCmpJump:
    R.SrcA = R.SrcB = R.JumpImm = true;
    break;
  case Op::FusedCmpImmJump:
    R.SrcA = R.JumpImm = true;
    break;
  case Op::EnterInline:
  case Op::LeaveInline:
  case Op::Nop:
    break;
  }
  return R;
}

/// Ops whose execution has no effect other than writing Dst and can
/// never fault — the only ops DCE may delete and CSE may Nop when the
/// value is already in place. Arithmetic and ordered compares are
/// excluded: they fault on non-Int operands, and deleting one could
/// hide a fault the interpreter reports.
bool isRemovablePure(Op K) {
  switch (K) {
  case Op::LoadConst:
  case Op::Move:
  case Op::CmpEq:
  case Op::CmpNe:
  case Op::CmpEqImm:
  case Op::CmpNeImm:
  case Op::MakeTag:
  case Op::MakeTuple:
  case Op::MakeSet:
  case Op::GetPayload:
  case Op::GetTupleElem:
    return true;
  default:
    return false;
  }
}

/// Ops CSE may reuse: deterministic functions of their register
/// operands (and static fields) with no effect beyond the Dst write.
/// Faulting ops qualify — identical operands fault identically, and if
/// the first occurrence faulted the second never runs.
bool isCseable(Op K) {
  switch (K) {
  case Op::Move:
  case Op::AddInt:
  case Op::SubInt:
  case Op::MulInt:
  case Op::DivInt:
  case Op::RemInt:
  case Op::NegInt:
  case Op::AddImm:
  case Op::SubImm:
  case Op::MulImm:
  case Op::DivImm:
  case Op::RemImm:
  case Op::CmpLtImm:
  case Op::CmpLeImm:
  case Op::CmpGtImm:
  case Op::CmpGeImm:
  case Op::CmpEqImm:
  case Op::CmpNeImm:
  case Op::CmpLt:
  case Op::CmpLe:
  case Op::CmpGt:
  case Op::CmpGe:
  case Op::CmpEq:
  case Op::CmpNe:
  case Op::NotBool:
  case Op::GetPayload:
  case Op::GetTupleElem:
  case Op::MakeTag:
    return true;
  default:
    return false;
  }
}

/// Is control transferred unconditionally (never falls through)?
bool isTerminator(Op K) {
  return K == Op::Jump || K == Op::Ret || K == Op::FailNoMatch;
}

/// Collects every pc that some jump or tag-table entry targets.
std::vector<uint8_t> jumpTargets(const VmFunction &Fn) {
  std::vector<uint8_t> IsTarget(Fn.Code.size() + 1, 0);
  auto Mark = [&](int32_t T) {
    if (T >= 0 && static_cast<size_t>(T) <= Fn.Code.size())
      IsTarget[T] = 1;
  };
  for (const Instr &I : Fn.Code)
    if (roles(I.K).JumpImm)
      Mark(I.Imm);
  for (const auto &Table : Fn.TagTables)
    for (const TagTableEntry &TE : Table)
      Mark(TE.Target);
  return IsTarget;
}

int32_t addConst(VmFunction &Fn, Value V) {
  for (size_t I = 0; I < Fn.Consts.size(); ++I)
    if (Fn.Consts[I] == V)
      return static_cast<int32_t>(I);
  if (Fn.Consts.size() >= MaxConsts)
    return -1;
  Fn.Consts.push_back(V);
  return static_cast<int32_t>(Fn.Consts.size() - 1);
}

//===----------------------------------------------------------------------===//
// FunctionOptimizer
//===----------------------------------------------------------------------===//

class FunctionOptimizer {
public:
  FunctionOptimizer(VmModule &M, VmFunction &Fn, ValueFactory &F)
      : M(M), Fn(Fn), F(F) {}

  void localPasses() {
    sccp();
    cse();
    dce();
    fuseSuperwords();
    threadJumps();
    compact();
  }

  /// Splices eligible call sites; \p Recursive flags functions on a
  /// call-graph cycle (by module function index). Returns true when at
  /// least one site was inlined.
  bool inlineCalls(const std::vector<uint8_t> &Recursive);

  uint64_t Removed = 0;
  uint64_t Fused = 0;
  uint64_t Inlined = 0;

private:
  void sccp();
  void cse();
  void dce();
  void fuseSuperwords();
  void threadJumps();
  void compact();
  bool inlineSite(size_t Pc, const std::vector<uint8_t> &Recursive);

  void nop(size_t Pc) {
    if (Fn.Code[Pc].K != Op::Nop) {
      Fn.Code[Pc] = Instr{Op::Nop, 0, 0, 0, 0};
      ++Removed;
    }
  }

  VmModule &M;
  VmFunction &Fn;
  ValueFactory &F;
};

//===----------------------------------------------------------------------===//
// SCCP: one forward sweep (pc order is topological), exact meet at every
// merge point, branch folding, unreachable-code elimination.
//===----------------------------------------------------------------------===//

namespace {
/// Per-register constant state: Known[r] → Val[r] holds r's value on
/// every path reaching here.
struct ConstState {
  std::vector<uint8_t> Known;
  std::vector<Value> Val;

  explicit ConstState(size_t NumRegs, ValueFactory &F)
      : Known(NumRegs, 0), Val(NumRegs, F.unit()) {}

  void set(uint16_t R, Value V) {
    Known[R] = 1;
    Val[R] = V;
  }
  void kill(uint16_t R) { Known[R] = 0; }

  void meet(const ConstState &O) {
    for (size_t R = 0; R < Known.size(); ++R)
      if (Known[R] && !(O.Known[R] && O.Val[R] == Val[R]))
        Known[R] = 0;
  }
};
} // namespace

void FunctionOptimizer::sccp() {
  size_t N = Fn.Code.size();
  std::vector<uint8_t> IsTarget = jumpTargets(Fn);
  // Merged state arriving at each jump target via explicit edges.
  std::vector<std::unique_ptr<ConstState>> AtTarget(N + 1);

  auto Flow = [&](int32_t T, const ConstState &S) {
    if (T < 0 || static_cast<size_t>(T) > N)
      return;
    if (!AtTarget[T])
      AtTarget[T] = std::make_unique<ConstState>(S);
    else
      AtTarget[T]->meet(S);
  };

  ConstState Cur(Fn.NumRegs, F);
  bool CurLive = true; // entry falls into pc 0

  for (size_t Pc = 0; Pc < N; ++Pc) {
    if (IsTarget[Pc]) {
      if (AtTarget[Pc]) {
        if (CurLive)
          AtTarget[Pc]->meet(Cur);
        Cur = *AtTarget[Pc];
        CurLive = true;
      }
      // else: only the fallthrough edge (live or not) reaches here.
    }
    Instr &I = Fn.Code[Pc];
    if (!CurLive) {
      nop(Pc);
      continue;
    }

    auto FoldTo = [&](uint16_t Dst, Value V) {
      int32_t Ix = addConst(Fn, V);
      if (Ix >= 0)
        I = Instr{Op::LoadConst, Dst, 0, 0, Ix};
      Cur.set(Dst, V);
    };
    auto Have = [&](uint32_t R) { return Cur.Known[R] != 0; };
    auto Get = [&](uint32_t R) { return Cur.Val[R]; };
    // Rewrites a decided pattern test / branch into Jump or Nop.
    auto Decide = [&](bool Taken) {
      if (Taken) {
        int32_t T = I.Imm;
        I = Instr{Op::Jump, 0, 0, 0, T};
        Flow(T, Cur);
        CurLive = false;
      } else {
        nop(Pc);
      }
    };

    switch (I.K) {
    case Op::LoadConst:
      Cur.set(I.A, Fn.Consts[I.Imm]);
      break;
    case Op::Move:
      if (Have(I.B))
        Cur.set(I.A, Get(I.B));
      else
        Cur.kill(I.A);
      break;

    case Op::AddInt:
    case Op::SubInt:
    case Op::MulInt:
    case Op::DivInt:
    case Op::RemInt:
    case Op::CmpLt:
    case Op::CmpLe:
    case Op::CmpGt:
    case Op::CmpGe: {
      if (Have(I.B) && Have(I.C) && Get(I.B).isInt() && Get(I.C).isInt()) {
        int64_t A = Get(I.B).asInt(), B = Get(I.C).asInt();
        bool CanFold = true;
        Value V = F.unit();
        switch (I.K) {
        case Op::AddInt:
          V = F.integer(A + B);
          break;
        case Op::SubInt:
          V = F.integer(A - B);
          break;
        case Op::MulInt:
          V = F.integer(A * B);
          break;
        case Op::DivInt:
          CanFold = B != 0; // a zero divisor must fault at runtime
          if (CanFold)
            V = F.integer(A / B);
          break;
        case Op::RemInt:
          CanFold = B != 0;
          if (CanFold)
            V = F.integer(A % B);
          break;
        case Op::CmpLt:
          V = F.boolean(A < B);
          break;
        case Op::CmpLe:
          V = F.boolean(A <= B);
          break;
        case Op::CmpGt:
          V = F.boolean(A > B);
          break;
        default:
          V = F.boolean(A >= B);
          break;
        }
        if (CanFold) {
          FoldTo(I.A, V);
          break;
        }
      }
      Cur.kill(I.A);
      break;
    }

    case Op::AddImm:
    case Op::SubImm:
    case Op::MulImm:
    case Op::DivImm:
    case Op::RemImm:
    case Op::CmpLtImm:
    case Op::CmpLeImm:
    case Op::CmpGtImm:
    case Op::CmpGeImm: {
      if (Have(I.B) && Get(I.B).isInt()) {
        int64_t A = Get(I.B).asInt(), B = I.Imm;
        bool CanFold = true;
        Value V = F.unit();
        switch (I.K) {
        case Op::AddImm:
          V = F.integer(A + B);
          break;
        case Op::SubImm:
          V = F.integer(A - B);
          break;
        case Op::MulImm:
          V = F.integer(A * B);
          break;
        case Op::DivImm:
          CanFold = B != 0;
          if (CanFold)
            V = F.integer(A / B);
          break;
        case Op::RemImm:
          CanFold = B != 0;
          if (CanFold)
            V = F.integer(A % B);
          break;
        case Op::CmpLtImm:
          V = F.boolean(A < B);
          break;
        case Op::CmpLeImm:
          V = F.boolean(A <= B);
          break;
        case Op::CmpGtImm:
          V = F.boolean(A > B);
          break;
        default:
          V = F.boolean(A >= B);
          break;
        }
        if (CanFold) {
          FoldTo(I.A, V);
          break;
        }
      }
      Cur.kill(I.A);
      break;
    }

    case Op::CmpEqImm:
      if (Have(I.B)) {
        Value V = Get(I.B);
        FoldTo(I.A, F.boolean(V.isInt() && V.asInt() == I.Imm));
      } else
        Cur.kill(I.A);
      break;
    case Op::CmpNeImm:
      if (Have(I.B)) {
        Value V = Get(I.B);
        FoldTo(I.A, F.boolean(!V.isInt() || V.asInt() != I.Imm));
      } else
        Cur.kill(I.A);
      break;
    case Op::NegInt:
      if (Have(I.B) && Get(I.B).isInt())
        FoldTo(I.A, F.integer(-Get(I.B).asInt()));
      else
        Cur.kill(I.A);
      break;
    case Op::CmpEq:
      if (Have(I.B) && Have(I.C))
        FoldTo(I.A, F.boolean(Get(I.B) == Get(I.C)));
      else
        Cur.kill(I.A);
      break;
    case Op::CmpNe:
      if (Have(I.B) && Have(I.C))
        FoldTo(I.A, F.boolean(Get(I.B) != Get(I.C)));
      else
        Cur.kill(I.A);
      break;
    case Op::NotBool:
      if (Have(I.B) && Get(I.B).isBool())
        FoldTo(I.A, F.boolean(!Get(I.B).asBool()));
      else
        Cur.kill(I.A);
      break;

    case Op::Jump:
      Flow(I.Imm, Cur);
      CurLive = false;
      break;
    case Op::JumpIfFalse:
      if (Have(I.A) && Get(I.A).isBool()) {
        Decide(!Get(I.A).asBool());
      } else {
        Flow(I.Imm, Cur);
      }
      break;
    case Op::JumpIfTrue:
      if (Have(I.A) && Get(I.A).isBool()) {
        Decide(Get(I.A).asBool());
      } else {
        Flow(I.Imm, Cur);
      }
      break;
    case Op::Ret:
    case Op::FailNoMatch:
      CurLive = false;
      break;

    case Op::JumpIfNeConst:
      if (Have(I.A))
        Decide(Get(I.A) != Fn.Consts[I.B]);
      else
        Flow(I.Imm, Cur);
      break;
    case Op::JumpIfNotTag:
      if (Have(I.A)) {
        Value V = Get(I.A);
        Decide(!V.isTag() || F.tagName(V).Id != I.B);
      } else
        Flow(I.Imm, Cur);
      break;
    case Op::JumpIfNotTuple:
      if (Have(I.A)) {
        Value V = Get(I.A);
        Decide(!V.isTuple() || F.tupleElems(V).size() != I.B);
      } else
        Flow(I.Imm, Cur);
      break;
    case Op::TagDispatch:
      if (Have(I.A)) {
        Value V = Get(I.A);
        int32_t T = I.Imm;
        if (V.isTag()) {
          uint32_t Sym = F.tagName(V).Id;
          for (const TagTableEntry &TE : Fn.TagTables[I.B])
            if (TE.Symbol == Sym) {
              T = TE.Target;
              break;
            }
        }
        I = Instr{Op::Jump, 0, 0, 0, T};
        Flow(T, Cur);
        CurLive = false;
      } else {
        Flow(I.Imm, Cur);
        for (const TagTableEntry &TE : Fn.TagTables[I.B])
          Flow(TE.Target, Cur);
      }
      break;

    case Op::GetPayload:
      if (Have(I.B) && Get(I.B).isTag())
        FoldTo(I.A, F.tagPayload(Get(I.B)));
      else
        Cur.kill(I.A);
      break;
    case Op::GetTupleElem:
      if (Have(I.B) && Get(I.B).isTuple() &&
          I.C < F.tupleElems(Get(I.B)).size())
        FoldTo(I.A, F.tupleElems(Get(I.B))[I.C]);
      else
        Cur.kill(I.A);
      break;

    case Op::MakeTag:
      if (Have(I.C))
        FoldTo(I.A, F.tag(Symbol{I.B}, Get(I.C)));
      else
        Cur.kill(I.A);
      break;
    case Op::MakeTuple:
    case Op::MakeSet: {
      bool AllKnown = true;
      for (uint32_t R = I.B; R < I.B + I.C; ++R)
        AllKnown &= Have(R);
      if (AllKnown) {
        std::vector<Value> Elems;
        for (uint32_t R = I.B; R < I.B + I.C; ++R)
          Elems.push_back(Get(R));
        FoldTo(I.A, I.K == Op::MakeTuple
                        ? F.tuple(std::span<const Value>(Elems))
                        : F.set(std::move(Elems)));
      } else
        Cur.kill(I.A);
      break;
    }

    case Op::CallFn:
    case Op::CallNative:
      Cur.kill(I.A);
      break;

    case Op::FusedCmpJump: {
      if (Have(I.A) && Have(I.B) && Get(I.A).isInt() && Get(I.B).isInt()) {
        int64_t A = Get(I.A).asInt(), B = Get(I.B).asInt();
        CmpKind Kind = fusedCmpKind(I.C);
        bool Holds = Kind == CmpKind::Lt   ? A < B
                     : Kind == CmpKind::Le ? A <= B
                     : Kind == CmpKind::Gt ? A > B
                     : Kind == CmpKind::Ge ? A >= B
                     : Kind == CmpKind::Eq ? Get(I.A) == Get(I.B)
                                           : Get(I.A) != Get(I.B);
        Decide(Holds == fusedJumpIfHolds(I.C));
      } else
        Flow(I.Imm, Cur);
      break;
    }
    case Op::FusedCmpImmJump: {
      if (Have(I.A) && Get(I.A).isInt()) {
        int64_t A = Get(I.A).asInt(), B = static_cast<int32_t>(I.B);
        CmpKind Kind = fusedCmpKind(I.C);
        bool Holds = Kind == CmpKind::Lt   ? A < B
                     : Kind == CmpKind::Le ? A <= B
                     : Kind == CmpKind::Gt ? A > B
                     : Kind == CmpKind::Ge ? A >= B
                     : Kind == CmpKind::Eq ? A == B
                                           : A != B;
        Decide(Holds == fusedJumpIfHolds(I.C));
      } else
        Flow(I.Imm, Cur);
      break;
    }

    case Op::LeqPrologue:
    case Op::LubPrologue:
    case Op::GlbPrologue:
    case Op::EnterInline:
    case Op::LeaveInline:
    case Op::Nop:
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Local CSE: per-block availability of pure register computations.
//===----------------------------------------------------------------------===//

void FunctionOptimizer::cse() {
  size_t N = Fn.Code.size();
  std::vector<uint8_t> IsTarget = jumpTargets(Fn);
  std::vector<uint32_t> Ver(Fn.NumRegs, 0);

  // (op, B, C, Imm, verB, verC) → (dst, verDst at record time).
  using Key = std::tuple<uint8_t, uint32_t, uint16_t, int32_t, uint32_t,
                         uint32_t>;
  std::map<Key, std::pair<uint16_t, uint32_t>> Avail;

  for (size_t Pc = 0; Pc < N; ++Pc) {
    if (IsTarget[Pc])
      Avail.clear(); // merge point: other paths may differ
    Instr &I = Fn.Code[Pc];
    Roles R = roles(I.K);
    if (!isCseable(I.K) || !R.DstA) {
      if (R.DstA)
        ++Ver[I.A];
      continue;
    }
    uint32_t VerB = R.SrcB ? Ver[I.B] : 0;
    uint32_t VerC = R.SrcC ? Ver[I.C] : 0;
    Key K{static_cast<uint8_t>(I.K), I.B, I.C, I.Imm, VerB, VerC};
    auto It = Avail.find(K);
    if (It != Avail.end() && Ver[It->second.first] == It->second.second) {
      uint16_t Prev = It->second.first;
      uint16_t Dst = I.A;
      if (Prev == Dst) {
        nop(Pc); // value already in place
      } else {
        I = Instr{Op::Move, Dst, Prev, 0, 0};
        ++Ver[Dst];
        Avail[K] = {Prev, Ver[Prev]}; // Prev is still canonical
      }
      continue;
    }
    ++Ver[I.A];
    Avail[K] = {I.A, Ver[I.A]};
  }
}

//===----------------------------------------------------------------------===//
// Dead-register elimination: one exact backward sweep (successor pcs are
// always greater, so their live-in sets are already final).
//===----------------------------------------------------------------------===//

void FunctionOptimizer::dce() {
  size_t N = Fn.Code.size();
  if (N == 0)
    return;
  size_t Words = (Fn.NumRegs + 63) / 64;
  std::vector<uint64_t> LiveIn(N * Words, 0);
  std::vector<uint64_t> Out(Words, 0);
  auto BitSet = [&](std::vector<uint64_t> &B, size_t Base, uint32_t R) {
    B[Base + R / 64] |= uint64_t(1) << (R % 64);
  };
  auto BitClear = [&](std::vector<uint64_t> &B, size_t Base, uint32_t R) {
    B[Base + R / 64] &= ~(uint64_t(1) << (R % 64));
  };
  auto BitTest = [&](const std::vector<uint64_t> &B, size_t Base,
                     uint32_t R) {
    return (B[Base + R / 64] >> (R % 64)) & 1;
  };

  for (size_t Ip = N; Ip-- > 0;) {
    Instr &I = Fn.Code[Ip];
    Roles R = roles(I.K);

    // Out = union of successors' live-in.
    std::fill(Out.begin(), Out.end(), 0);
    auto Join = [&](int32_t S) {
      if (S >= 0 && static_cast<size_t>(S) < N)
        for (size_t W = 0; W < Words; ++W)
          Out[W] |= LiveIn[S * Words + W];
    };
    if (!isTerminator(I.K))
      Join(static_cast<int32_t>(Ip) + 1);
    if (R.JumpImm)
      Join(I.Imm);
    if (I.K == Op::TagDispatch)
      for (const TagTableEntry &TE : Fn.TagTables[I.B])
        Join(TE.Target);

    if (R.DstA && isRemovablePure(I.K) && !BitTest(Out, 0, I.A)) {
      nop(Ip);
      std::memcpy(&LiveIn[Ip * Words], Out.data(), Words * sizeof(uint64_t));
      continue;
    }

    // LiveIn = (Out - defs) ∪ uses.
    if (R.DstA)
      BitClear(Out, 0, I.A);
    if (R.SrcA)
      BitSet(Out, 0, I.A);
    if (R.SrcB)
      BitSet(Out, 0, I.B);
    if (R.SrcC)
      BitSet(Out, 0, I.C);
    if (R.RangeBC)
      for (uint32_t Reg = I.B; Reg < I.B + I.C; ++Reg)
        BitSet(Out, 0, Reg);
    if (I.K == Op::LeqPrologue || I.K == Op::LubPrologue ||
        I.K == Op::GlbPrologue) {
      BitSet(Out, 0, 0);
      BitSet(Out, 0, 1);
    }
    std::memcpy(&LiveIn[Ip * Words], Out.data(), Words * sizeof(uint64_t));
  }
}

//===----------------------------------------------------------------------===//
// Superword fusion: compare + adjacent branch → one FusedCmp*Jump.
//===----------------------------------------------------------------------===//

void FunctionOptimizer::fuseSuperwords() {
  size_t N = Fn.Code.size();
  if (N < 2)
    return;
  std::vector<uint8_t> IsTarget = jumpTargets(Fn);

  // Global read counts: fusing drops the compare's register write, so
  // the branch must be that register's only reader anywhere.
  std::vector<uint32_t> Reads(Fn.NumRegs, 0);
  for (const Instr &I : Fn.Code) {
    Roles R = roles(I.K);
    if (R.SrcA)
      ++Reads[I.A];
    if (R.SrcB)
      ++Reads[I.B];
    if (R.SrcC)
      ++Reads[I.C];
    if (R.RangeBC)
      for (uint32_t Reg = I.B; Reg < I.B + I.C; ++Reg)
        ++Reads[Reg];
    if (I.K == Op::LeqPrologue || I.K == Op::LubPrologue ||
        I.K == Op::GlbPrologue) {
      ++Reads[0];
      ++Reads[1];
    }
  }

  auto RegCmpKind = [](Op K) -> std::optional<CmpKind> {
    switch (K) {
    case Op::CmpLt:
      return CmpKind::Lt;
    case Op::CmpLe:
      return CmpKind::Le;
    case Op::CmpGt:
      return CmpKind::Gt;
    case Op::CmpGe:
      return CmpKind::Ge;
    case Op::CmpEq:
      return CmpKind::Eq;
    case Op::CmpNe:
      return CmpKind::Ne;
    default:
      return std::nullopt;
    }
  };
  auto ImmCmpKind = [](Op K) -> std::optional<CmpKind> {
    switch (K) {
    case Op::CmpLtImm:
      return CmpKind::Lt;
    case Op::CmpLeImm:
      return CmpKind::Le;
    case Op::CmpGtImm:
      return CmpKind::Gt;
    case Op::CmpGeImm:
      return CmpKind::Ge;
    case Op::CmpEqImm:
      return CmpKind::Eq;
    case Op::CmpNeImm:
      return CmpKind::Ne;
    default:
      return std::nullopt;
    }
  };

  for (size_t Pc = 0; Pc + 1 < N; ++Pc) {
    Instr &Cmp = Fn.Code[Pc];
    Instr &Br = Fn.Code[Pc + 1];
    // Only the plain if-condition form (B == 0): the '&&'/'||' variants
    // keep their result live and carry distinct fault messages.
    if ((Br.K != Op::JumpIfFalse && Br.K != Op::JumpIfTrue) || Br.B != 0)
      continue;
    // A jump landing on the branch would bypass the compare; the
    // register could hold anything there.
    if (IsTarget[Pc + 1])
      continue;
    bool JumpIfHolds = Br.K == Op::JumpIfTrue;
    if (auto Kind = RegCmpKind(Cmp.K);
        Kind && Cmp.A == Br.A && Reads[Cmp.A] == 1) {
      Br = Instr{Op::FusedCmpJump, static_cast<uint16_t>(Cmp.B), Cmp.C,
                 packFusedCmp(*Kind, JumpIfHolds), Br.Imm};
      Fn.Code[Pc] = Instr{Op::Nop, 0, 0, 0, 0};
      ++Fused;
    } else if (auto IKind = ImmCmpKind(Cmp.K);
               IKind && Cmp.A == Br.A && Reads[Cmp.A] == 1) {
      Br = Instr{Op::FusedCmpImmJump, static_cast<uint16_t>(Cmp.B),
                 static_cast<uint32_t>(Cmp.Imm),
                 packFusedCmp(*IKind, JumpIfHolds), Br.Imm};
      Fn.Code[Pc] = Instr{Op::Nop, 0, 0, 0, 0};
      ++Fused;
    }
  }
}

//===----------------------------------------------------------------------===//
// Jump threading + Nop compaction.
//===----------------------------------------------------------------------===//

void FunctionOptimizer::threadJumps() {
  size_t N = Fn.Code.size();
  // First executable pc at or after t (targets may point at Nops).
  auto SkipNops = [&](int32_t T) {
    while (T >= 0 && static_cast<size_t>(T) < N &&
           Fn.Code[T].K == Op::Nop)
      ++T;
    return T;
  };
  // Resolve t through Nops and Jump chains. Forward-only jumps make the
  // chase strictly increasing, so it terminates.
  auto Resolve = [&](int32_t T) {
    for (;;) {
      T = SkipNops(T);
      if (T < 0 || static_cast<size_t>(T) >= N || Fn.Code[T].K != Op::Jump)
        return T;
      T = Fn.Code[T].Imm;
    }
  };

  for (size_t Pc = 0; Pc < N; ++Pc) {
    Instr &I = Fn.Code[Pc];
    if (roles(I.K).JumpImm)
      I.Imm = Resolve(I.Imm);
    if (I.K == Op::TagDispatch)
      for (TagTableEntry &TE : Fn.TagTables[I.B])
        TE.Target = Resolve(TE.Target);
  }
  // A Jump to the next executable instruction is a fallthrough.
  for (size_t Pc = 0; Pc < N; ++Pc) {
    Instr &I = Fn.Code[Pc];
    if (I.K == Op::Jump && I.Imm == SkipNops(static_cast<int32_t>(Pc) + 1))
      nop(Pc);
  }
}

void FunctionOptimizer::compact() {
  size_t N = Fn.Code.size();
  // MapFwd[t] = new pc of the first surviving instruction at ≥ t.
  std::vector<int32_t> MapFwd(N + 1, 0);
  int32_t NewPc = 0;
  for (size_t Pc = 0; Pc < N; ++Pc) {
    MapFwd[Pc] = NewPc;
    if (Fn.Code[Pc].K != Op::Nop)
      ++NewPc;
  }
  MapFwd[N] = NewPc;
  if (static_cast<size_t>(NewPc) == N)
    return; // nothing to squeeze

  std::vector<Instr> NewCode;
  NewCode.reserve(NewPc);
  for (size_t Pc = 0; Pc < N; ++Pc) {
    Instr I = Fn.Code[Pc];
    if (I.K == Op::Nop)
      continue;
    if (roles(I.K).JumpImm)
      I.Imm = MapFwd[std::min<size_t>(std::max(I.Imm, 0), N)];
    NewCode.push_back(I);
  }
  for (auto &Table : Fn.TagTables)
    for (TagTableEntry &TE : Table)
      TE.Target = MapFwd[std::min<size_t>(std::max(TE.Target, 0), N)];
  Fn.Code = std::move(NewCode);
}

//===----------------------------------------------------------------------===//
// Bytecode inlining.
//===----------------------------------------------------------------------===//

namespace {
bool hasPrologue(const VmFunction &Fn) {
  for (const Instr &I : Fn.Code)
    if (I.K == Op::LeqPrologue || I.K == Op::LubPrologue ||
        I.K == Op::GlbPrologue)
      return true;
  return false;
}

/// Max nesting of EnterInline markers already present in \p Fn.
int inlineNest(const VmFunction &Fn) {
  int Cur = 0, Max = 0;
  for (const Instr &I : Fn.Code) {
    if (I.K == Op::EnterInline)
      Max = std::max(Max, ++Cur);
    else if (I.K == Op::LeaveInline)
      --Cur;
  }
  return Max;
}
} // namespace

bool FunctionOptimizer::inlineSite(size_t Pc,
                                   const std::vector<uint8_t> &Recursive) {
  const Instr Call = Fn.Code[Pc];
  uint32_t CalleeIx = static_cast<uint32_t>(Call.Imm);
  const VmFunction &C = M.Functions[CalleeIx];
  if (!C.Ok || Recursive[CalleeIx] || C.Code.size() > InlineCalleeBudget ||
      hasPrologue(C) || inlineNest(C) >= InlineNestBudget)
    return false;
  uint32_t NewBase = Fn.NumRegs;
  if (NewBase + C.NumRegs > MaxRegs)
    return false;
  assert(Call.C == C.NumParams && "call arity mismatch");

  // Per-callee-instr emitted length (Ret expands to Move + Jump) and
  // cumulative offsets for jump-target remapping.
  std::vector<int32_t> Off(C.Code.size() + 1, 0);
  for (size_t Ip = 0; Ip < C.Code.size(); ++Ip)
    Off[Ip + 1] = Off[Ip] + (C.Code[Ip].K == Op::Ret ? 2 : 1);
  size_t BodyLen = Off[C.Code.size()];
  size_t InlineLen = 1 + C.NumParams + BodyLen + 1; // Enter + moves + Leave
  if (Fn.Code.size() - 1 + InlineLen > InlineCallerCap)
    return false;

  // Fresh inline-cache words for every copied cache site: cached target
  // pcs (and tuple handles) are site-specific.
  size_t CachesNeeded = 0;
  for (const Instr &I : C.Code)
    if (I.K == Op::JumpIfNotTuple || I.K == Op::TagDispatch)
      ++CachesNeeded;
  if (M.Caches.size() + CachesNeeded > UINT16_MAX)
    return false;

  // Remap the callee's constants into the caller's pool up front so a
  // pool overflow aborts cleanly before any mutation.
  std::vector<int32_t> ConstMap(C.Consts.size());
  for (size_t Ci = 0; Ci < C.Consts.size(); ++Ci) {
    ConstMap[Ci] = addConst(Fn, C.Consts[Ci]);
    if (ConstMap[Ci] < 0)
      return false;
  }

  int32_t Delta = static_cast<int32_t>(InlineLen) - 1;
  int32_t At = static_cast<int32_t>(Pc);
  auto Shift = [&](int32_t T) { return T > At ? T + Delta : T; };

  // Shift every existing target past the splice point.
  for (Instr &I : Fn.Code)
    if (roles(I.K).JumpImm)
      I.Imm = Shift(I.Imm);
  for (auto &Table : Fn.TagTables)
    for (TagTableEntry &TE : Table)
      TE.Target = Shift(TE.Target);

  // Build the inline sequence.
  std::vector<Instr> Seq;
  Seq.reserve(InlineLen);
  Seq.push_back(Instr{Op::EnterInline, 0, CalleeIx, 0, 0});
  for (uint32_t P = 0; P < C.NumParams; ++P)
    Seq.push_back(Instr{Op::Move, static_cast<uint16_t>(NewBase + P),
                        Call.B + P, 0, 0});
  int32_t BodyStart = At + 1 + static_cast<int32_t>(C.NumParams);
  int32_t EndPc = BodyStart + static_cast<int32_t>(BodyLen); // LeaveInline
  for (size_t Ip = 0; Ip < C.Code.size(); ++Ip) {
    Instr I = C.Code[Ip];
    Roles R = roles(I.K);
    if (I.K == Op::Ret) {
      Seq.push_back(Instr{Op::Move, Call.A,
                          static_cast<uint32_t>(NewBase + I.A), 0, 0});
      Seq.push_back(Instr{Op::Jump, 0, 0, 0, EndPc});
      continue;
    }
    // Uniform register offset: params were moved into NewBase+0.., so
    // every register operand (including range bases) just shifts.
    if (R.DstA || R.SrcA)
      I.A = static_cast<uint16_t>(I.A + NewBase);
    if (R.SrcB || R.RangeBC)
      I.B += NewBase;
    if (R.SrcC)
      I.C = static_cast<uint16_t>(I.C + NewBase);
    if (R.JumpImm)
      I.Imm = BodyStart + Off[I.Imm];
    switch (I.K) {
    case Op::LoadConst:
      I.Imm = ConstMap[I.Imm];
      break;
    case Op::JumpIfNeConst:
      I.B = static_cast<uint32_t>(ConstMap[I.B]);
      break;
    case Op::JumpIfNotTuple:
      M.Caches.emplace_back(VmModule::EmptyCache);
      I.C = static_cast<uint16_t>(M.Caches.size() - 1);
      break;
    case Op::TagDispatch: {
      M.Caches.emplace_back(VmModule::EmptyCache);
      I.C = static_cast<uint16_t>(M.Caches.size() - 1);
      std::vector<TagTableEntry> Table = C.TagTables[I.B];
      for (TagTableEntry &TE : Table)
        TE.Target = BodyStart + Off[TE.Target];
      Fn.TagTables.push_back(std::move(Table));
      I.B = static_cast<uint32_t>(Fn.TagTables.size() - 1);
      break;
    }
    case Op::CallFn:
      if (std::find(Fn.Callees.begin(), Fn.Callees.end(),
                    static_cast<uint32_t>(I.Imm)) == Fn.Callees.end())
        Fn.Callees.push_back(static_cast<uint32_t>(I.Imm));
      break;
    default:
      break;
    }
    Seq.push_back(I);
  }
  Seq.push_back(Instr{Op::LeaveInline, 0, 0, 0, 0});
  assert(Seq.size() == InlineLen && "inline length bookkeeping drifted");

  Fn.Code.erase(Fn.Code.begin() + At);
  Fn.Code.insert(Fn.Code.begin() + At, Seq.begin(), Seq.end());
  Fn.NumRegs = NewBase + C.NumRegs;
  ++Inlined;
  return true;
}

bool FunctionOptimizer::inlineCalls(const std::vector<uint8_t> &Recursive) {
  bool Any = false;
  // Newly spliced bodies may expose further CallFn sites; the caller
  // code cap and callee budget bound the growth, the rounds cap bounds
  // the work.
  for (int Round = 0; Round < InlineNestBudget; ++Round) {
    bool Changed = false;
    for (size_t Pc = 0; Pc < Fn.Code.size(); ++Pc)
      if (Fn.Code[Pc].K == Op::CallFn && inlineSite(Pc, Recursive)) {
        Changed = Any = true;
        // Re-scan from the splice point: the spliced body's own calls
        // sit right here, but they are guarded by the budgets.
      }
    if (!Changed)
      break;
  }
  return Any;
}

//===----------------------------------------------------------------------===//
// Module driver
//===----------------------------------------------------------------------===//

/// Flags every function that sits on a call-graph cycle (including
/// self-recursion), from the current CallFn edges.
std::vector<uint8_t> findRecursive(const VmModule &M) {
  size_t N = M.Functions.size();
  std::vector<std::vector<uint32_t>> Adj(N);
  for (size_t Ix = 0; Ix < N; ++Ix)
    for (const Instr &I : M.Functions[Ix].Code)
      if (I.K == Op::CallFn)
        Adj[Ix].push_back(static_cast<uint32_t>(I.Imm));
  std::vector<uint8_t> Recursive(N, 0);
  std::vector<uint8_t> Seen(N);
  for (size_t S = 0; S < N; ++S) {
    // BFS: S is recursive iff S is reachable from its successors.
    std::fill(Seen.begin(), Seen.end(), 0);
    std::vector<uint32_t> Work(Adj[S].begin(), Adj[S].end());
    while (!Work.empty()) {
      uint32_t V = Work.back();
      Work.pop_back();
      if (V >= N || Seen[V])
        continue;
      Seen[V] = 1;
      if (V == S) {
        Recursive[S] = 1;
        break;
      }
      Work.insert(Work.end(), Adj[V].begin(), Adj[V].end());
    }
  }
  return Recursive;
}

void optimizeOne(VmModule &M, uint32_t FnIx, ValueFactory &F, int OptLevel,
                 const std::vector<uint8_t> *Recursive) {
  VmFunction &Fn = M.Functions[FnIx];
  if (!Fn.Ok || OptLevel <= 0)
    return;
  FunctionOptimizer FO(M, Fn, F);
  FO.localPasses();
  if (OptLevel >= 2 && Recursive && FO.inlineCalls(*Recursive))
    FO.localPasses(); // simplify the spliced bodies
  M.Pipeline.InlinedCalls += FO.Inlined;
  M.Pipeline.SuperwordHits += FO.Fused;
  M.Pipeline.RemovedInsns += FO.Removed;
}

} // namespace

void flix::vm::optimizeModule(VmModule &M, ValueFactory &F, int OptLevel) {
  if (OptLevel <= 0)
    return;
  // Stage A: local passes everywhere, so inlining splices already-clean
  // bodies. Stage B: inlining + cleanup.
  for (uint32_t Ix = 0; Ix < M.Functions.size(); ++Ix) {
    VmFunction &Fn = M.Functions[Ix];
    if (!Fn.Ok)
      continue;
    FunctionOptimizer FO(M, Fn, F);
    FO.localPasses();
    M.Pipeline.SuperwordHits += FO.Fused;
    M.Pipeline.RemovedInsns += FO.Removed;
  }
  if (OptLevel < 2)
    return;
  std::vector<uint8_t> Recursive = findRecursive(M);
  for (uint32_t Ix = 0; Ix < M.Functions.size(); ++Ix) {
    VmFunction &Fn = M.Functions[Ix];
    if (!Fn.Ok)
      continue;
    FunctionOptimizer FO(M, Fn, F);
    if (FO.inlineCalls(Recursive))
      FO.localPasses();
    M.Pipeline.InlinedCalls += FO.Inlined;
    M.Pipeline.SuperwordHits += FO.Fused;
    M.Pipeline.RemovedInsns += FO.Removed;
  }
}

void flix::vm::optimizeFunction(VmModule &M, uint32_t FnIx, ValueFactory &F,
                                int OptLevel) {
  if (OptLevel <= 0)
    return;
  std::vector<uint8_t> Recursive;
  if (OptLevel >= 2)
    Recursive = findRecursive(M);
  optimizeOne(M, FnIx, F, OptLevel,
              OptLevel >= 2 ? &Recursive : nullptr);
}
