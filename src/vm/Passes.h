//===- vm/Passes.h - Bytecode optimization pipeline -----------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-code optimization pipeline that runs between VmCompiler
/// and Vm (DESIGN.md S15). FLIX bytecode has no back edges — every jump
/// is forward, loops exist only through calls — so pc order is a
/// topological order of the control-flow graph and each pass is a
/// single exact linear sweep, no iteration to a fixed point:
///
///   * Inlining (opt level 2): small non-recursive callees are spliced
///     into their call sites under a size/nesting budget.
///     EnterInline/LeaveInline markers keep the call-depth accounting —
///     and therefore the depth-overflow diagnostic — byte-identical to
///     the un-inlined program, and every inlined tag-dispatch or
///     tuple-check site gets a fresh inline-cache word (cached target
///     pcs are site-specific).
///
///   * SCCP: forward constant propagation with branch folding and
///     unreachable-code elimination. Only never-faulting computations
///     fold; a division that could trap at runtime stays put so fault
///     order is preserved.
///
///   * Local CSE: per-block reuse of pure register computations, keyed
///     by operand versions.
///
///   * Dead-register elimination: backward liveness; removes only
///     never-faulting pure writes whose destination is dead.
///
///   * Superword fusion: an Int compare whose result feeds only the
///     immediately-following branch fuses into one FusedCmp*Jump
///     instruction (one dispatch instead of two on the hottest shape
///     the compiler emits).
///
///   * Jump threading + compaction: jump-to-jump chains collapse,
///     jumps to the next instruction drop, and Nop slots left by the
///     passes are squeezed out with all targets remapped.
///
/// Opt levels: 0 = pipeline off (PR 7 bytecode, bit for bit), 1 = local
/// passes only, 2 = inlining + local passes (the default engine).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_VM_PASSES_H
#define FLIX_VM_PASSES_H

#include "vm/Bytecode.h"

namespace flix::vm {

/// Runs the pipeline over every usable function of \p M at \p OptLevel,
/// accumulating into M.Pipeline. Call once, after compileDefs()'s
/// usability closure and before any execution.
void optimizeModule(VmModule &M, ValueFactory &F, int OptLevel);

/// Runs the pipeline over the single function \p FnIx (used for rule
/// wrappers, which compile after the defs are already optimized — their
/// callees are final, so inlining into them is sound).
void optimizeFunction(VmModule &M, uint32_t FnIx, ValueFactory &F,
                      int OptLevel);

} // namespace flix::vm

#endif // FLIX_VM_PASSES_H
