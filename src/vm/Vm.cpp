//===- vm/Vm.cpp - Bytecode dispatch-loop VM --------------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "support/SmallVector.h"

#include <cassert>

using namespace flix;
using namespace flix::vm;

/// Per-top-level-call execution state, threaded through nested frames.
/// Inline-cache hits accumulate locally and flush to the shared atomic
/// once per top-level call, so the hot loop never touches contended
/// cache lines.
struct Vm::ExecState {
  unsigned Depth = 0;
  uint64_t IcHitsLocal = 0;
  bool Faulted = false;
};

void Vm::registerNative(
    const std::string &Name,
    std::function<Value(ValueFactory &, std::span<const Value>)> Fn) {
  for (size_t I = 0; I < M.NativeNames.size(); ++I)
    if (M.NativeNames[I] == Name) {
      M.Natives[I] = std::move(Fn);
      return;
    }
}

Value Vm::fault(ExecState &St, std::string Msg) {
  if (!St.Faulted) {
    St.Faulted = true;
    std::lock_guard<std::mutex> Lock(ErrMu);
    if (OnError)
      OnError(Msg);
  }
  return F.unit();
}

Value Vm::call(uint32_t FnIx, std::span<const Value> Args) {
  Calls.fetch_add(1, std::memory_order_relaxed);
  const VmFunction &Fn = M.Functions[FnIx];
  assert(Fn.Ok && Args.size() == Fn.NumParams && "bad VM entry");

  ExecState St;
  St.Depth = 1;
  SmallVector<Value, 32> Regs(Fn.NumRegs);
  for (size_t I = 0; I < Args.size(); ++I)
    Regs[I] = Args[I];
  Value Out = run(Fn, Regs.data(), St);
  if (St.IcHitsLocal)
    IcHits.fetch_add(St.IcHitsLocal, std::memory_order_relaxed);
  return St.Faulted ? F.unit() : Out;
}

Value Vm::run(const VmFunction &Fn, Value *R, ExecState &St) {
  const Instr *Code = Fn.Code.data();
  const Value *K = Fn.Consts.data();
  int32_t Pc = 0;

  for (;;) {
    const Instr &I = Code[Pc++];
    switch (I.K) {
    case Op::LoadConst:
      R[I.A] = K[I.Imm];
      break;
    case Op::Move:
      R[I.A] = R[I.B];
      break;

    case Op::AddInt:
    case Op::SubInt:
    case Op::MulInt:
    case Op::DivInt:
    case Op::RemInt:
    case Op::CmpLt:
    case Op::CmpLe:
    case Op::CmpGt:
    case Op::CmpGe: {
      Value L = R[I.B], Rv = R[I.C];
      if (!L.isInt() || !Rv.isInt())
        return fault(St, "arithmetic on non-Int values");
      int64_t A = L.asInt(), B = Rv.asInt();
      switch (I.K) {
      case Op::AddInt:
        R[I.A] = F.integer(A + B);
        break;
      case Op::SubInt:
        R[I.A] = F.integer(A - B);
        break;
      case Op::MulInt:
        R[I.A] = F.integer(A * B);
        break;
      case Op::DivInt:
        if (B == 0)
          return fault(St, "division by zero");
        R[I.A] = F.integer(A / B);
        break;
      case Op::RemInt:
        if (B == 0)
          return fault(St, "remainder by zero");
        R[I.A] = F.integer(A % B);
        break;
      case Op::CmpLt:
        R[I.A] = F.boolean(A < B);
        break;
      case Op::CmpLe:
        R[I.A] = F.boolean(A <= B);
        break;
      case Op::CmpGt:
        R[I.A] = F.boolean(A > B);
        break;
      default:
        R[I.A] = F.boolean(A >= B);
        break;
      }
      break;
    }
    case Op::AddImm:
    case Op::SubImm:
    case Op::MulImm:
    case Op::DivImm:
    case Op::RemImm:
    case Op::CmpLtImm:
    case Op::CmpLeImm:
    case Op::CmpGtImm:
    case Op::CmpGeImm: {
      Value V = R[I.B];
      if (!V.isInt())
        return fault(St, "arithmetic on non-Int values");
      int64_t A = V.asInt(), B = I.Imm;
      switch (I.K) {
      case Op::AddImm:
        R[I.A] = F.integer(A + B);
        break;
      case Op::SubImm:
        R[I.A] = F.integer(A - B);
        break;
      case Op::MulImm:
        R[I.A] = F.integer(A * B);
        break;
      case Op::DivImm:
        if (B == 0)
          return fault(St, "division by zero");
        R[I.A] = F.integer(A / B);
        break;
      case Op::RemImm:
        if (B == 0)
          return fault(St, "remainder by zero");
        R[I.A] = F.integer(A % B);
        break;
      case Op::CmpLtImm:
        R[I.A] = F.boolean(A < B);
        break;
      case Op::CmpLeImm:
        R[I.A] = F.boolean(A <= B);
        break;
      case Op::CmpGtImm:
        R[I.A] = F.boolean(A > B);
        break;
      default:
        R[I.A] = F.boolean(A >= B);
        break;
      }
      break;
    }
    case Op::CmpEqImm: {
      Value V = R[I.B];
      R[I.A] = F.boolean(V.isInt() && V.asInt() == I.Imm);
      break;
    }
    case Op::CmpNeImm: {
      Value V = R[I.B];
      R[I.A] = F.boolean(!V.isInt() || V.asInt() != I.Imm);
      break;
    }
    case Op::NegInt: {
      Value V = R[I.B];
      if (!V.isInt())
        return fault(St, "unary '-' on non-Int value");
      R[I.A] = F.integer(-V.asInt());
      break;
    }
    case Op::CmpEq:
      R[I.A] = F.boolean(R[I.B] == R[I.C]);
      break;
    case Op::CmpNe:
      R[I.A] = F.boolean(R[I.B] != R[I.C]);
      break;
    case Op::NotBool: {
      Value V = R[I.B];
      if (!V.isBool())
        return fault(St, "'!' on non-Bool value");
      R[I.A] = F.boolean(!V.asBool());
      break;
    }

    case Op::Jump:
      Pc = I.Imm;
      break;
    // B selects the non-Bool fault message: 0 = if condition,
    // 1 = '&&' operand, 2 = '||' operand (interpreter parity).
    case Op::JumpIfFalse: {
      Value V = R[I.A];
      if (!V.isBool())
        return fault(St, I.B == 1 ? "'&&' on non-Bool value"
                                  : "if condition did not evaluate to Bool");
      if (!V.asBool())
        Pc = I.Imm;
      break;
    }
    case Op::JumpIfTrue: {
      Value V = R[I.A];
      if (!V.isBool())
        return fault(St, I.B == 2 ? "'||' on non-Bool value"
                                  : "if condition did not evaluate to Bool");
      if (V.asBool())
        Pc = I.Imm;
      break;
    }
    case Op::Ret:
      return R[I.A];

    case Op::JumpIfNeConst:
      if (R[I.A] != K[I.B])
        Pc = I.Imm;
      break;
    case Op::JumpIfNotTag: {
      Value V = R[I.A];
      if (!V.isTag() || F.tagName(V).Id != I.B)
        Pc = I.Imm;
      break;
    }
    case Op::JumpIfNotTuple: {
      Value V = R[I.A];
      std::atomic<uint64_t> &Cache = M.Caches[I.C];
      if (V.isTuple() &&
          V.rawBits() == Cache.load(std::memory_order_relaxed)) {
        ++St.IcHitsLocal; // size check skipped: handle seen here before
        break;
      }
      if (!V.isTuple() || F.tupleElems(V).size() != I.B) {
        Pc = I.Imm;
        break;
      }
      Cache.store(V.rawBits(), std::memory_order_relaxed);
      break;
    }
    case Op::TagDispatch: {
      Value V = R[I.A];
      if (!V.isTag()) {
        Pc = I.Imm;
        break;
      }
      uint32_t Sym = F.tagName(V).Id;
      std::atomic<uint64_t> &Cache = M.Caches[I.C];
      uint64_t W = Cache.load(std::memory_order_relaxed);
      if (static_cast<uint32_t>(W >> 32) == Sym) {
        Pc = static_cast<int32_t>(static_cast<uint32_t>(W));
        ++St.IcHitsLocal;
        break;
      }
      int32_t Target = I.Imm;
      for (const TagTableEntry &TE : Fn.TagTables[I.B])
        if (TE.Symbol == Sym) {
          Target = TE.Target;
          break;
        }
      if (Target != I.Imm)
        Cache.store(static_cast<uint64_t>(Sym) << 32 |
                        static_cast<uint32_t>(Target),
                    std::memory_order_relaxed);
      Pc = Target;
      break;
    }
    case Op::GetPayload:
      R[I.A] = F.tagPayload(R[I.B]);
      break;
    case Op::GetTupleElem:
      R[I.A] = F.tupleElems(R[I.B])[I.C];
      break;

    case Op::MakeTag:
      R[I.A] = F.tag(Symbol{I.B}, R[I.C]);
      break;
    case Op::MakeTuple:
      R[I.A] = F.tuple(std::span<const Value>(&R[I.B], I.C));
      break;
    case Op::MakeSet: {
      std::vector<Value> Elems(&R[I.B], &R[I.B] + I.C);
      R[I.A] = F.set(std::move(Elems));
      break;
    }

    case Op::CallFn: {
      const VmFunction &Callee = M.Functions[I.Imm];
      if (St.Depth >= MaxCallDepth)
        return fault(St, "call depth exceeded in " + Callee.DepthErrWhere +
                             " (runaway recursion?)");
      SmallVector<Value, 24> CalleeRegs(Callee.NumRegs);
      for (uint16_t A = 0; A < I.C; ++A)
        CalleeRegs[A] = R[I.B + A];
      ++St.Depth;
      Value Out = run(Callee, CalleeRegs.data(), St);
      --St.Depth;
      if (St.Faulted)
        return F.unit();
      R[I.A] = Out;
      break;
    }
    case Op::CallNative: {
      const auto &Native = M.Natives[I.Imm];
      if (!Native)
        return fault(St, "no native registered for 'ext def " +
                             M.NativeNames[I.Imm] + "'");
      R[I.A] =
          Native(F, std::span<const Value>(&R[I.B], I.C));
      break;
    }

    case Op::FailNoMatch:
      return fault(St, "no case matched value " + F.toString(R[I.A]));

    // Fused lattice fast paths: universal identities over the bound
    // ⊥/⊤ constants; fall through to the general body otherwise.
    case Op::LeqPrologue: {
      Value A = R[0], B = R[1];
      if (A == B || A == K[I.B] || B == K[I.C])
        return F.boolean(true);
      break;
    }
    case Op::LubPrologue: {
      Value A = R[0], B = R[1];
      Value Bot = K[I.B], Top = K[I.C];
      if (A == B || B == Bot)
        return A;
      if (A == Bot)
        return B;
      if (A == Top || B == Top)
        return Top;
      break;
    }
    case Op::GlbPrologue: {
      Value A = R[0], B = R[1];
      Value Bot = K[I.B], Top = K[I.C];
      if (A == B || B == Top)
        return A;
      if (A == Top)
        return B;
      if (A == Bot || B == Bot)
        return Bot;
      break;
    }
    }
  }
}
