//===- vm/Vm.cpp - Bytecode dispatch-loop VM --------------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
//
// The dispatch core compiles in one of two modes:
//
//   * FLIX_VM_THREADED (CMake option, default ON) on a GNU-compatible
//     compiler: classic computed-goto threaded dispatch. Every handler
//     ends by loading the next instruction and jumping through a static
//     label table, so each opcode gets its own indirect-branch site and
//     the branch predictor learns per-opcode successor patterns — the
//     single shared branch of a switch loop is the main dispatch cost
//     the BENCH_vm poly row isolates.
//
//   * Otherwise: the portable for(;;)/switch loop.
//
// Both modes expand the SAME handler text: VM_CASE()/VM_NEXT() are the
// only mode-dependent macros, so the handlers cannot drift apart. The
// label table is built from FLIX_VM_OPLIST (vm/Bytecode.h) and a
// static_assert proves that list matches the Op enum order; a handler
// missing from the threaded build is an undefined-label compile error.
//
// Call frames are carved from a per-thread register stack by offset:
// pushing a frame is a bounds check plus a bump, not a per-call
// SmallVector (whose value-initialization of NumRegs slots dominated
// the BENCH_vm fib row). Growth reallocates the slab, so handlers that
// can run nested frames (CallFn) or reenter the VM (CallNative) refresh
// their frame pointer afterwards.
//
//===----------------------------------------------------------------------===//

#include "vm/Vm.h"

#include "support/SmallVector.h"

#include <cassert>
#include <vector>

using namespace flix;
using namespace flix::vm;

#if defined(FLIX_VM_THREADED) && FLIX_VM_THREADED &&                           \
    (defined(__GNUC__) || defined(__clang__))
#define FLIX_VM_USE_THREADED 1
#else
#define FLIX_VM_USE_THREADED 0
#endif

namespace {

// Compile-time proof that FLIX_VM_OPLIST enumerates every opcode in
// enum order — the threaded dispatch table indexes by Op value.
constexpr Op OpOrder[] = {
#define FLIX_VM_OP_ENUM(N) Op::N,
    FLIX_VM_OPLIST(FLIX_VM_OP_ENUM)
#undef FLIX_VM_OP_ENUM
};
constexpr size_t NumOps = sizeof(OpOrder) / sizeof(OpOrder[0]);
constexpr bool opListMatchesEnum() {
  for (size_t Ix = 0; Ix < NumOps; ++Ix)
    if (OpOrder[Ix] != static_cast<Op>(Ix))
      return false;
  return true;
}
static_assert(opListMatchesEnum() &&
                  static_cast<size_t>(Op::Nop) + 1 == NumOps,
              "FLIX_VM_OPLIST must list every opcode in enum order");

/// Per-thread register stack. Frames are slices [Base, Base+NumRegs);
/// callers remember their Base offset because growth reallocates Slab.
/// Thread-local (not per-Vm) so reentrant top-level calls — an extern
/// memo miss evaluating a compiled def, say — nest LIFO naturally.
struct RegStack {
  std::vector<Value> Slab;
  size_t Top = 0;

  Value *ensure(size_t Base, size_t NumRegs) {
    if (Slab.size() < Base + NumRegs)
      Slab.resize(std::max(Slab.size() * 2, Base + NumRegs));
    return Slab.data() + Base;
  }
};
thread_local RegStack TlRegStack;

} // namespace

/// Per-top-level-call execution state, threaded through nested frames.
/// Inline-cache hits accumulate locally and flush to the shared atomic
/// once per top-level call, so the hot loop never touches contended
/// cache lines.
struct Vm::ExecState {
  RegStack *Stack = nullptr;
  unsigned Depth = 0;
  uint64_t IcHitsLocal = 0;
  bool Faulted = false;
};

bool Vm::threadedDispatch() { return FLIX_VM_USE_THREADED != 0; }

void Vm::registerNative(
    const std::string &Name,
    std::function<Value(ValueFactory &, std::span<const Value>)> Fn) {
  for (size_t I = 0; I < M.NativeNames.size(); ++I)
    if (M.NativeNames[I] == Name) {
      M.Natives[I] = std::move(Fn);
      return;
    }
}

Value Vm::fault(ExecState &St, std::string Msg) {
  if (!St.Faulted) {
    St.Faulted = true;
    std::lock_guard<std::mutex> Lock(ErrMu);
    if (OnError)
      OnError(Msg);
  }
  return F.unit();
}

Value Vm::call(uint32_t FnIx, std::span<const Value> Args) {
  Calls.fetch_add(1, std::memory_order_relaxed);
  const VmFunction &Fn = M.Functions[FnIx];
  assert(Fn.Ok && Args.size() == Fn.NumParams && "bad VM entry");

  RegStack &S = TlRegStack;
  size_t Base = S.Top;
  Value *R;
  if (S.Slab.size() < Base + Fn.NumRegs) {
    // Args may alias the slab when a native reenters the VM; growth
    // would invalidate them, so stage a copy on this cold path.
    std::vector<Value> Staged(Args.begin(), Args.end());
    R = S.ensure(Base, Fn.NumRegs);
    for (size_t I = 0; I < Staged.size(); ++I)
      R[I] = Staged[I];
  } else {
    R = S.Slab.data() + Base;
    for (size_t I = 0; I < Args.size(); ++I)
      R[I] = Args[I];
  }
  S.Top = Base + Fn.NumRegs;

  ExecState St;
  St.Stack = &S;
  St.Depth = 1;
  Value Out = run(Fn, Base, St);
  S.Top = Base;
  if (St.IcHitsLocal)
    IcHits.fetch_add(St.IcHitsLocal, std::memory_order_relaxed);
  return St.Faulted ? F.unit() : Out;
}

// Shared handler-body helpers. Each opcode's body is written exactly
// once below; VM_CASE/VM_NEXT select the dispatch mode around it.
#define VM_INT_BINOP(NAME, STORE)                                              \
  VM_CASE(NAME) {                                                              \
    Value L = R[I->B], Rv = R[I->C];                                           \
    if (!L.isInt() || !Rv.isInt())                                             \
      return fault(St, "arithmetic on non-Int values");                        \
    int64_t A = L.asInt(), B = Rv.asInt();                                     \
    STORE;                                                                     \
  }                                                                            \
  VM_NEXT()

#define VM_INT_IMMOP(NAME, STORE)                                              \
  VM_CASE(NAME) {                                                              \
    Value V = R[I->B];                                                         \
    if (!V.isInt())                                                            \
      return fault(St, "arithmetic on non-Int values");                        \
    int64_t A = V.asInt(), B = I->Imm;                                         \
    STORE;                                                                     \
  }                                                                            \
  VM_NEXT()

Value Vm::run(const VmFunction &Fn, size_t FrameBase, ExecState &St) {
  const Instr *Code = Fn.Code.data();
  const Value *K = Fn.Consts.data();
  RegStack &S = *St.Stack;
  Value *R = S.Slab.data() + FrameBase;
  int32_t Pc = 0;
  const Instr *I;

#if FLIX_VM_USE_THREADED

  static const void *const Table[NumOps] = {
#define FLIX_VM_LABEL_ADDR(N) &&Lbl_##N,
      FLIX_VM_OPLIST(FLIX_VM_LABEL_ADDR)
#undef FLIX_VM_LABEL_ADDR
  };
#define VM_CASE(N) Lbl_##N:
#define VM_NEXT()                                                              \
  do {                                                                         \
    I = &Code[Pc++];                                                           \
    goto *Table[static_cast<size_t>(I->K)];                                    \
  } while (0)
  VM_NEXT();

#else // portable switch dispatch

#define VM_CASE(N) case Op::N:
#define VM_NEXT() continue
  for (;;) {
    I = &Code[Pc++];
    switch (I->K) {

#endif

      VM_CASE(LoadConst) { R[I->A] = K[I->Imm]; }
      VM_NEXT();
      VM_CASE(Move) { R[I->A] = R[I->B]; }
      VM_NEXT();

      VM_INT_BINOP(AddInt, R[I->A] = F.integer(A + B));
      VM_INT_BINOP(SubInt, R[I->A] = F.integer(A - B));
      VM_INT_BINOP(MulInt, R[I->A] = F.integer(A * B));
      VM_INT_BINOP(DivInt, if (B == 0) return fault(St, "division by zero");
                   R[I->A] = F.integer(A / B));
      VM_INT_BINOP(RemInt, if (B == 0) return fault(St, "remainder by zero");
                   R[I->A] = F.integer(A % B));
      VM_CASE(NegInt) {
        Value V = R[I->B];
        if (!V.isInt())
          return fault(St, "unary '-' on non-Int value");
        R[I->A] = F.integer(-V.asInt());
      }
      VM_NEXT();

      VM_INT_IMMOP(AddImm, R[I->A] = F.integer(A + B));
      VM_INT_IMMOP(SubImm, R[I->A] = F.integer(A - B));
      VM_INT_IMMOP(MulImm, R[I->A] = F.integer(A * B));
      VM_INT_IMMOP(DivImm, if (B == 0) return fault(St, "division by zero");
                   R[I->A] = F.integer(A / B));
      VM_INT_IMMOP(RemImm, if (B == 0) return fault(St, "remainder by zero");
                   R[I->A] = F.integer(A % B));
      VM_INT_IMMOP(CmpLtImm, R[I->A] = F.boolean(A < B));
      VM_INT_IMMOP(CmpLeImm, R[I->A] = F.boolean(A <= B));
      VM_INT_IMMOP(CmpGtImm, R[I->A] = F.boolean(A > B));
      VM_INT_IMMOP(CmpGeImm, R[I->A] = F.boolean(A >= B));
      VM_CASE(CmpEqImm) {
        Value V = R[I->B];
        R[I->A] = F.boolean(V.isInt() && V.asInt() == I->Imm);
      }
      VM_NEXT();
      VM_CASE(CmpNeImm) {
        Value V = R[I->B];
        R[I->A] = F.boolean(!V.isInt() || V.asInt() != I->Imm);
      }
      VM_NEXT();

      VM_INT_BINOP(CmpLt, R[I->A] = F.boolean(A < B));
      VM_INT_BINOP(CmpLe, R[I->A] = F.boolean(A <= B));
      VM_INT_BINOP(CmpGt, R[I->A] = F.boolean(A > B));
      VM_INT_BINOP(CmpGe, R[I->A] = F.boolean(A >= B));
      VM_CASE(CmpEq) { R[I->A] = F.boolean(R[I->B] == R[I->C]); }
      VM_NEXT();
      VM_CASE(CmpNe) { R[I->A] = F.boolean(R[I->B] != R[I->C]); }
      VM_NEXT();
      VM_CASE(NotBool) {
        Value V = R[I->B];
        if (!V.isBool())
          return fault(St, "'!' on non-Bool value");
        R[I->A] = F.boolean(!V.asBool());
      }
      VM_NEXT();

      VM_CASE(Jump) { Pc = I->Imm; }
      VM_NEXT();
      // B selects the non-Bool fault message: 0 = if condition,
      // 1 = '&&' operand, 2 = '||' operand (interpreter parity).
      VM_CASE(JumpIfFalse) {
        Value V = R[I->A];
        if (!V.isBool())
          return fault(St, I->B == 1
                               ? "'&&' on non-Bool value"
                               : "if condition did not evaluate to Bool");
        if (!V.asBool())
          Pc = I->Imm;
      }
      VM_NEXT();
      VM_CASE(JumpIfTrue) {
        Value V = R[I->A];
        if (!V.isBool())
          return fault(St, I->B == 2
                               ? "'||' on non-Bool value"
                               : "if condition did not evaluate to Bool");
        if (V.asBool())
          Pc = I->Imm;
      }
      VM_NEXT();
      VM_CASE(Ret) { return R[I->A]; }
      VM_NEXT();

      VM_CASE(JumpIfNeConst) {
        if (R[I->A] != K[I->B])
          Pc = I->Imm;
      }
      VM_NEXT();
      VM_CASE(JumpIfNotTag) {
        Value V = R[I->A];
        if (!V.isTag() || F.tagName(V).Id != I->B)
          Pc = I->Imm;
      }
      VM_NEXT();
      VM_CASE(JumpIfNotTuple) {
        Value V = R[I->A];
        std::atomic<uint64_t> &Cache = M.Caches[I->C];
        if (V.isTuple() &&
            V.rawBits() == Cache.load(std::memory_order_relaxed)) {
          ++St.IcHitsLocal; // size check skipped: handle seen here before
        } else if (!V.isTuple() || F.tupleElems(V).size() != I->B) {
          Pc = I->Imm;
        } else {
          Cache.store(V.rawBits(), std::memory_order_relaxed);
        }
      }
      VM_NEXT();
      VM_CASE(TagDispatch) {
        Value V = R[I->A];
        if (!V.isTag()) {
          Pc = I->Imm;
        } else {
          uint32_t Sym = F.tagName(V).Id;
          std::atomic<uint64_t> &Cache = M.Caches[I->C];
          uint64_t W = Cache.load(std::memory_order_relaxed);
          if (static_cast<uint32_t>(W >> 32) == Sym) {
            Pc = static_cast<int32_t>(static_cast<uint32_t>(W));
            ++St.IcHitsLocal;
          } else {
            int32_t Target = I->Imm;
            for (const TagTableEntry &TE : Fn.TagTables[I->B])
              if (TE.Symbol == Sym) {
                Target = TE.Target;
                break;
              }
            if (Target != I->Imm)
              Cache.store(static_cast<uint64_t>(Sym) << 32 |
                              static_cast<uint32_t>(Target),
                          std::memory_order_relaxed);
            Pc = Target;
          }
        }
      }
      VM_NEXT();
      VM_CASE(GetPayload) { R[I->A] = F.tagPayload(R[I->B]); }
      VM_NEXT();
      VM_CASE(GetTupleElem) { R[I->A] = F.tupleElems(R[I->B])[I->C]; }
      VM_NEXT();

      VM_CASE(MakeTag) { R[I->A] = F.tag(Symbol{I->B}, R[I->C]); }
      VM_NEXT();
      VM_CASE(MakeTuple) {
        R[I->A] = F.tuple(std::span<const Value>(&R[I->B], I->C));
      }
      VM_NEXT();
      VM_CASE(MakeSet) {
        std::vector<Value> Elems(&R[I->B], &R[I->B] + I->C);
        R[I->A] = F.set(std::move(Elems));
      }
      VM_NEXT();

      VM_CASE(CallFn) {
        const VmFunction &Callee = M.Functions[I->Imm];
        if (St.Depth >= MaxCallDepth)
          return fault(St, "call depth exceeded in " + Callee.DepthErrWhere +
                               " (runaway recursion?)");
        size_t CalleeBase = S.Top;
        if (S.Slab.size() < CalleeBase + Callee.NumRegs) {
          S.ensure(CalleeBase, Callee.NumRegs);
          R = S.Slab.data() + FrameBase; // growth moved the slab
        }
        Value *CR = S.Slab.data() + CalleeBase;
        for (uint16_t A = 0; A < I->C; ++A)
          CR[A] = R[I->B + A];
        S.Top = CalleeBase + Callee.NumRegs;
        ++St.Depth;
        Value Out = run(Callee, CalleeBase, St);
        --St.Depth;
        S.Top = CalleeBase;
        R = S.Slab.data() + FrameBase; // nested frames may have regrown it
        if (St.Faulted)
          return F.unit();
        R[I->A] = Out;
      }
      VM_NEXT();
      VM_CASE(CallNative) {
        const auto &Native = M.Natives[I->Imm];
        if (!Native)
          return fault(St, "no native registered for 'ext def " +
                               M.NativeNames[I->Imm] + "'");
        // Stage the args: a native may reenter the VM on this thread,
        // growing the slab and invalidating a span into it.
        SmallVector<Value, 8> NArgs(&R[I->B], &R[I->B] + I->C);
        Value Out = Native(F, std::span<const Value>(NArgs.data(),
                                                     NArgs.size()));
        R = S.Slab.data() + FrameBase;
        R[I->A] = Out;
      }
      VM_NEXT();

      VM_CASE(FailNoMatch) {
        return fault(St, "no case matched value " + F.toString(R[I->A]));
      }
      VM_NEXT();

      // Fused lattice fast paths: universal identities over the bound
      // ⊥/⊤ constants; fall through to the general body otherwise.
      VM_CASE(LeqPrologue) {
        Value A = R[0], B = R[1];
        if (A == B || A == K[I->B] || B == K[I->C])
          return F.boolean(true);
      }
      VM_NEXT();
      VM_CASE(LubPrologue) {
        Value A = R[0], B = R[1];
        Value Bot = K[I->B], Top = K[I->C];
        if (A == B || B == Bot)
          return A;
        if (A == Bot)
          return B;
        if (A == Top || B == Top)
          return Top;
      }
      VM_NEXT();
      VM_CASE(GlbPrologue) {
        Value A = R[0], B = R[1];
        Value Bot = K[I->B], Top = K[I->C];
        if (A == B || B == Top)
          return A;
        if (A == Top)
          return B;
        if (A == Bot || B == Bot)
          return Bot;
      }
      VM_NEXT();

      VM_CASE(FusedCmpJump) {
        Value L = R[I->A], Rv = R[I->B];
        CmpKind Kind = fusedCmpKind(I->C);
        bool Holds;
        if (Kind == CmpKind::Eq) {
          Holds = L == Rv;
        } else if (Kind == CmpKind::Ne) {
          Holds = L != Rv;
        } else {
          if (!L.isInt() || !Rv.isInt())
            return fault(St, "arithmetic on non-Int values");
          int64_t A = L.asInt(), B = Rv.asInt();
          switch (Kind) {
          case CmpKind::Lt:
            Holds = A < B;
            break;
          case CmpKind::Le:
            Holds = A <= B;
            break;
          case CmpKind::Gt:
            Holds = A > B;
            break;
          default:
            Holds = A >= B;
            break;
          }
        }
        if (Holds == fusedJumpIfHolds(I->C))
          Pc = I->Imm;
      }
      VM_NEXT();
      VM_CASE(FusedCmpImmJump) {
        Value V = R[I->A];
        int64_t Imm = static_cast<int32_t>(I->B);
        CmpKind Kind = fusedCmpKind(I->C);
        bool Holds;
        if (Kind == CmpKind::Eq) {
          Holds = V.isInt() && V.asInt() == Imm;
        } else if (Kind == CmpKind::Ne) {
          Holds = !V.isInt() || V.asInt() != Imm;
        } else {
          if (!V.isInt())
            return fault(St, "arithmetic on non-Int values");
          int64_t A = V.asInt();
          switch (Kind) {
          case CmpKind::Lt:
            Holds = A < Imm;
            break;
          case CmpKind::Le:
            Holds = A <= Imm;
            break;
          case CmpKind::Gt:
            Holds = A > Imm;
            break;
          default:
            Holds = A >= Imm;
            break;
          }
        }
        if (Holds == fusedJumpIfHolds(I->C))
          Pc = I->Imm;
      }
      VM_NEXT();

      // Inline-frame markers: keep the depth accounting — and so the
      // overflow diagnostic — byte-identical to a real call without
      // pushing a frame. A fault inside the inlined body unwinds the
      // whole top-level call, so a skipped LeaveInline is harmless.
      VM_CASE(EnterInline) {
        if (St.Depth >= MaxCallDepth)
          return fault(St, "call depth exceeded in " +
                               M.Functions[I->B].DepthErrWhere +
                               " (runaway recursion?)");
        ++St.Depth;
      }
      VM_NEXT();
      VM_CASE(LeaveInline) { --St.Depth; }
      VM_NEXT();

      VM_CASE(Nop) {}
      VM_NEXT();

#if !FLIX_VM_USE_THREADED
    } // switch: every case ends in VM_NEXT() or a return
  }
#endif
}
