//===- vm/Vm.h - Bytecode dispatch-loop VM ---------------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The execution engine for vm/Bytecode.h: a direct-threaded dispatch
/// loop over register frames carved from a per-thread value stack. One
/// Vm instance is shared by every solver thread — the module is
/// immutable after compilation, inline caches are single-word atomics,
/// frames and the call-depth guard are thread-local, and faults funnel
/// into a mutex-guarded first-fault callback — so the parallel solver's
/// workers call in concurrently with no outer lock, exactly like the
/// tree-walking interpreter it replaces.
///
/// Fault behavior matches the interpreter bit-for-bit: the VM never
/// throws, runtime faults (no matching case, division by zero, missing
/// native, call-depth overflow) report the interpreter's exact message
/// through the error callback and return Unit, and the call-depth limit
/// is the same constant, so the differential suites can compare the two
/// engines on both values and failure text.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_VM_VM_H
#define FLIX_VM_VM_H

#include "vm/Bytecode.h"

#include <atomic>
#include <mutex>

namespace flix::vm {

class Vm {
public:
  /// \p OnError receives each fault message; the host wires it to the
  /// interpreter's first-fault slot so FlixCompiler::interp().hasError()
  /// observes faults from either engine. May be invoked concurrently.
  Vm(VmModule &M, ValueFactory &F,
     std::function<void(const std::string &)> OnError)
      : M(M), F(F), OnError(std::move(OnError)) {}
  Vm(const Vm &) = delete;
  Vm &operator=(const Vm &) = delete;

  /// Calls compiled function \p FnIx. Thread-safe; returns Unit after
  /// reporting a fault, like Interp::call.
  Value call(uint32_t FnIx, std::span<const Value> Args);

  /// Fills the native slot registered under \p Name, if the compiled
  /// module references it. Call before solving (not thread-safe against
  /// concurrent call()).
  void registerNative(const std::string &Name,
                      std::function<Value(ValueFactory &,
                                          std::span<const Value>)>
                          Fn);

  /// Cumulative top-level VM invocations (not inner CallFn frames).
  uint64_t calls() const { return Calls.load(std::memory_order_relaxed); }
  /// Cumulative inline-cache hits across tag-dispatch and tuple-check
  /// sites.
  uint64_t icHits() const { return IcHits.load(std::memory_order_relaxed); }

  /// True when this binary dispatches through the computed-goto threaded
  /// core (FLIX_VM_THREADED and a GNU-compatible compiler), false when
  /// it runs the portable switch loop. Benches record it per row.
  static bool threadedDispatch();

  /// Same recursion budget as the interpreter, so the two engines
  /// overflow on identical inputs with identical diagnostics.
  static constexpr unsigned MaxCallDepth = 512;

private:
  struct ExecState;

  /// Executes \p Fn over the frame at offset \p FrameBase of the calling
  /// thread's register stack. Frames are addressed by offset, not
  /// pointer, because nested calls may grow (and so reallocate) the
  /// stack slab.
  Value run(const VmFunction &Fn, size_t FrameBase, ExecState &St);
  Value fault(ExecState &St, std::string Msg);

  /// The module is structurally immutable during execution; only the
  /// inline-cache words and native slots mutate, hence the non-const
  /// reference.
  VmModule &M;
  ValueFactory &F;
  std::function<void(const std::string &)> OnError;
  mutable std::mutex ErrMu; ///< serializes OnError (first fault wins)

  std::atomic<uint64_t> Calls{0};
  std::atomic<uint64_t> IcHits{0};
};

} // namespace flix::vm

#endif // FLIX_VM_VM_H
