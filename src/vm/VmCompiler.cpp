//===- vm/VmCompiler.cpp - Typed AST → bytecode lowering --------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "vm/VmCompiler.h"

#include "support/SmallVector.h"
#include "vm/Passes.h"

#include <cassert>

using namespace flix;
using namespace flix::ast;
using namespace flix::vm;

namespace {

/// Frames larger than this fail compilation (and fall back to the
/// interpreter) — far above anything realistic, it only guards the
/// uint16_t register encoding.
constexpr uint32_t MaxRegs = 1024;

} // namespace

//===----------------------------------------------------------------------===//
// FnBuilder — per-function compile state
//===----------------------------------------------------------------------===//

struct VmCompiler::FnBuilder {
  VmCompiler &VC;
  VmFunction &Fn;
  /// Lexical environment: name → register holding the binding.
  std::vector<std::pair<std::string, uint16_t>> Scope;
  uint32_t NextReg = 0;
  bool Failed = false;

  FnBuilder(VmCompiler &VC, VmFunction &Fn) : VC(VC), Fn(Fn) {}

  uint16_t fresh() {
    if (NextReg >= MaxRegs) {
      Failed = true;
      return 0;
    }
    uint16_t R = static_cast<uint16_t>(NextReg++);
    Fn.NumRegs = std::max(Fn.NumRegs, NextReg);
    return R;
  }

  int lookup(const std::string &Name) const {
    for (auto It = Scope.rbegin(); It != Scope.rend(); ++It)
      if (It->first == Name)
        return It->second;
    return -1;
  }

  size_t emit(Op K, uint16_t A = 0, uint32_t B = 0, uint16_t C = 0,
              int32_t Imm = 0) {
    Fn.Code.push_back(Instr{K, A, B, C, Imm});
    return Fn.Code.size() - 1;
  }

  int32_t here() const { return static_cast<int32_t>(Fn.Code.size()); }
  void patch(size_t At, int32_t Target) { Fn.Code[At].Imm = Target; }
  void patchAll(const std::vector<size_t> &Ats, int32_t Target) {
    for (size_t At : Ats)
      Fn.Code[At].Imm = Target;
  }

  uint16_t addConst(Value V) {
    for (size_t I = 0; I < Fn.Consts.size(); ++I)
      if (Fn.Consts[I] == V)
        return static_cast<uint16_t>(I);
    Fn.Consts.push_back(V);
    if (Fn.Consts.size() > UINT16_MAX)
      Failed = true;
    return static_cast<uint16_t>(Fn.Consts.size() - 1);
  }

  void loadConst(Value V, uint16_t Dst) {
    emit(Op::LoadConst, Dst, 0, 0, addConst(V));
  }

  /// Constant folding over the pure literal fragment. Folding never
  /// changes observable behavior: short-circuit operators fold exactly
  /// when the unevaluated side is legitimately skipped, and faulting
  /// operations (division by a zero constant) are left to the runtime.
  std::optional<Value> fold(const Expr &E) {
    ValueFactory &F = VC.F;
    switch (E.K) {
    case Expr::Kind::IntLit:
      return F.integer(E.IntVal);
    case Expr::Kind::BoolLit:
      return F.boolean(E.BoolVal);
    case Expr::Kind::StrLit:
      return F.string(E.StrVal);
    case Expr::Kind::UnitLit:
      return F.unit();
    case Expr::Kind::Tag: {
      Value Payload = F.unit();
      if (!E.Args.empty()) {
        std::optional<Value> P = fold(*E.Args[0]);
        if (!P)
          return std::nullopt;
        Payload = *P;
      }
      return F.tag(E.EnumName + "." + E.CaseName, Payload);
    }
    case Expr::Kind::Tuple: {
      SmallVector<Value, 4> Elems;
      for (const ExprPtr &A : E.Args) {
        std::optional<Value> V = fold(*A);
        if (!V)
          return std::nullopt;
        Elems.push_back(*V);
      }
      return F.tuple(std::span<const Value>(Elems.data(), Elems.size()));
    }
    case Expr::Kind::SetLit: {
      std::vector<Value> Elems;
      for (const ExprPtr &A : E.Args) {
        std::optional<Value> V = fold(*A);
        if (!V)
          return std::nullopt;
        Elems.push_back(*V);
      }
      return F.set(std::move(Elems));
    }
    case Expr::Kind::If: {
      std::optional<Value> C = fold(*E.Args[0]);
      if (!C || !C->isBool() || E.Args.size() < 3)
        return std::nullopt;
      return fold(C->asBool() ? *E.Args[1] : *E.Args[2]);
    }
    case Expr::Kind::Unary: {
      std::optional<Value> V = fold(*E.Args[0]);
      if (!V)
        return std::nullopt;
      if (E.UOp == UnOp::Not)
        return V->isBool() ? std::optional<Value>(F.boolean(!V->asBool()))
                           : std::nullopt;
      return V->isInt() ? std::optional<Value>(F.integer(-V->asInt()))
                        : std::nullopt;
    }
    case Expr::Kind::Binary: {
      std::optional<Value> L = fold(*E.Args[0]);
      if (!L)
        return std::nullopt;
      // Short-circuit folds mirror evaluation order: a decided lhs
      // folds without looking at (= evaluating) the rhs.
      if (E.BOp == BinOp::And) {
        if (!L->isBool())
          return std::nullopt;
        if (!L->asBool())
          return F.boolean(false);
        std::optional<Value> R = fold(*E.Args[1]);
        return R && R->isBool() ? R : std::nullopt;
      }
      if (E.BOp == BinOp::Or) {
        if (!L->isBool())
          return std::nullopt;
        if (L->asBool())
          return F.boolean(true);
        std::optional<Value> R = fold(*E.Args[1]);
        return R && R->isBool() ? R : std::nullopt;
      }
      std::optional<Value> R = fold(*E.Args[1]);
      if (!R)
        return std::nullopt;
      if (E.BOp == BinOp::Eq)
        return F.boolean(*L == *R);
      if (E.BOp == BinOp::Ne)
        return F.boolean(*L != *R);
      if (!L->isInt() || !R->isInt())
        return std::nullopt;
      int64_t A = L->asInt(), B = R->asInt();
      switch (E.BOp) {
      case BinOp::Add:
        return F.integer(A + B);
      case BinOp::Sub:
        return F.integer(A - B);
      case BinOp::Mul:
        return F.integer(A * B);
      case BinOp::Div:
        return B == 0 ? std::nullopt : std::optional<Value>(F.integer(A / B));
      case BinOp::Rem:
        return B == 0 ? std::nullopt : std::optional<Value>(F.integer(A % B));
      case BinOp::Lt:
        return F.boolean(A < B);
      case BinOp::Le:
        return F.boolean(A <= B);
      case BinOp::Gt:
        return F.boolean(A > B);
      case BinOp::Ge:
        return F.boolean(A >= B);
      default:
        return std::nullopt;
      }
    }
    default:
      return std::nullopt;
    }
  }

  uint32_t tagSymbol(const std::string &EnumName, const std::string &Case) {
    return VC.F.strings().intern(EnumName + "." + Case).Id;
  }

  uint16_t newCache() {
    VC.M.Caches.emplace_back(VmModule::EmptyCache);
    if (VC.M.Caches.size() > UINT16_MAX)
      Failed = true;
    return static_cast<uint16_t>(VC.M.Caches.size() - 1);
  }

  //===--------------------------------------------------------------------===//
  // Patterns. Emits the test for \p P against register \p Scrut; on
  // mismatch control jumps to the (to-be-patched) fail label collected
  // in \p FailJumps. Pattern variables bind fresh registers pushed onto
  // Scope (caller rewinds).
  //===--------------------------------------------------------------------===//

  void compilePattern(const Pattern &P, uint16_t Scrut,
                      std::vector<size_t> &FailJumps) {
    switch (P.K) {
    case Pattern::Kind::Wildcard:
      return;
    case Pattern::Kind::Var:
      Scope.emplace_back(P.Name, Scrut);
      return;
    case Pattern::Kind::IntLit:
      FailJumps.push_back(
          emit(Op::JumpIfNeConst, Scrut, addConst(VC.F.integer(P.IntVal))));
      return;
    case Pattern::Kind::BoolLit:
      FailJumps.push_back(
          emit(Op::JumpIfNeConst, Scrut, addConst(VC.F.boolean(P.BoolVal))));
      return;
    case Pattern::Kind::StrLit:
      FailJumps.push_back(
          emit(Op::JumpIfNeConst, Scrut, addConst(VC.F.string(P.StrVal))));
      return;
    case Pattern::Kind::UnitLit:
      FailJumps.push_back(
          emit(Op::JumpIfNeConst, Scrut, addConst(VC.F.unit())));
      return;
    case Pattern::Kind::Tag: {
      FailJumps.push_back(emit(Op::JumpIfNotTag, Scrut,
                               tagSymbol(P.EnumName, P.CaseName)));
      if (!P.Elems.empty()) {
        uint16_t Payload = fresh();
        emit(Op::GetPayload, Payload, Scrut);
        compilePattern(P.Elems[0], Payload, FailJumps);
      }
      return;
    }
    case Pattern::Kind::Tuple: {
      FailJumps.push_back(
          emit(Op::JumpIfNotTuple, Scrut,
               static_cast<uint32_t>(P.Elems.size()), newCache()));
      for (size_t I = 0; I < P.Elems.size(); ++I) {
        uint16_t Elem = fresh();
        emit(Op::GetTupleElem, Elem, Scrut, static_cast<uint16_t>(I));
        compilePattern(P.Elems[I], Elem, FailJumps);
      }
      return;
    }
    }
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  void compileExpr(const Expr &E, uint16_t Dst) {
    if (Failed)
      return;
    if (std::optional<Value> V = fold(E)) {
      loadConst(*V, Dst);
      return;
    }
    switch (E.K) {
    case Expr::Kind::IntLit:
    case Expr::Kind::BoolLit:
    case Expr::Kind::StrLit:
    case Expr::Kind::UnitLit:
      // Literals always fold.
      Failed = true;
      return;
    case Expr::Kind::Var: {
      int Reg = lookup(E.Name);
      if (Reg < 0) {
        Failed = true; // Sema guarantees boundness; be safe anyway
        return;
      }
      if (Reg != Dst)
        emit(Op::Move, Dst, static_cast<uint32_t>(Reg));
      return;
    }
    case Expr::Kind::Tag: {
      uint16_t Payload;
      if (E.Args.empty()) {
        Payload = fresh();
        loadConst(VC.F.unit(), Payload);
      } else {
        Payload = fresh();
        compileExpr(*E.Args[0], Payload);
      }
      emit(Op::MakeTag, Dst, tagSymbol(E.EnumName, E.CaseName), Payload);
      return;
    }
    case Expr::Kind::Tuple:
    case Expr::Kind::SetLit: {
      uint16_t First = compileArgBlock(E.Args);
      emit(E.K == Expr::Kind::Tuple ? Op::MakeTuple : Op::MakeSet, Dst,
           First, static_cast<uint16_t>(E.Args.size()));
      return;
    }
    case Expr::Kind::Call: {
      uint16_t First = compileArgBlock(E.Args);
      emitCall(E.Name, Dst, First, static_cast<uint16_t>(E.Args.size()));
      return;
    }
    case Expr::Kind::If: {
      if (E.Args.size() < 3) {
        Failed = true;
        return;
      }
      uint16_t Cond = fresh();
      compileExpr(*E.Args[0], Cond);
      size_t ToElse = emit(Op::JumpIfFalse, Cond);
      compileExpr(*E.Args[1], Dst);
      size_t ToEnd = emit(Op::Jump);
      patch(ToElse, here());
      compileExpr(*E.Args[2], Dst);
      patch(ToEnd, here());
      return;
    }
    case Expr::Kind::Match:
      compileMatch(E, Dst);
      return;
    case Expr::Kind::Let: {
      uint16_t Init = fresh();
      compileExpr(*E.Args[0], Init);
      Scope.emplace_back(E.Name, Init);
      compileExpr(*E.Args[1], Dst);
      Scope.pop_back();
      return;
    }
    case Expr::Kind::Binary:
      compileBinary(E, Dst);
      return;
    case Expr::Kind::Unary: {
      uint16_t Operand = fresh();
      compileExpr(*E.Args[0], Operand);
      emit(E.UOp == UnOp::Not ? Op::NotBool : Op::NegInt, Dst, Operand);
      return;
    }
    }
  }

  /// Reserves one register per argument *before* compiling any of them,
  /// so the block stays contiguous even though each argument's
  /// compilation allocates its own temporaries above the block.
  uint16_t compileArgBlock(const std::vector<ExprPtr> &Args) {
    uint16_t First = static_cast<uint16_t>(NextReg);
    SmallVector<uint16_t, 8> Regs;
    for (size_t I = 0; I < Args.size(); ++I)
      Regs.push_back(fresh());
    for (size_t I = 0; I < Args.size(); ++I)
      compileExpr(*Args[I], Regs[I]);
    return First;
  }

  void emitCall(const std::string &Callee, uint16_t Dst, uint16_t First,
                uint16_t N) {
    auto DIt = VC.CM.Defs.find(Callee);
    if (DIt == VC.CM.Defs.end()) {
      Failed = true;
      return;
    }
    if (DIt->second.Decl->IsExt) {
      emit(Op::CallNative, Dst, First, N,
           static_cast<int32_t>(VC.nativeSlot(Callee)));
      return;
    }
    auto FIt = VC.FnIndex.find(Callee);
    if (FIt == VC.FnIndex.end()) {
      Failed = true;
      return;
    }
    Fn.Callees.push_back(FIt->second);
    emit(Op::CallFn, Dst, First, N, static_cast<int32_t>(FIt->second));
  }

  /// Maps a BinOp to its reg-op-Imm opcode, or nullopt when there is
  /// none (short-circuit ops never reach here).
  static std::optional<Op> immOp(BinOp B) {
    switch (B) {
    case BinOp::Add:
      return Op::AddImm;
    case BinOp::Sub:
      return Op::SubImm;
    case BinOp::Mul:
      return Op::MulImm;
    case BinOp::Div:
      return Op::DivImm;
    case BinOp::Rem:
      return Op::RemImm;
    case BinOp::Eq:
      return Op::CmpEqImm;
    case BinOp::Ne:
      return Op::CmpNeImm;
    case BinOp::Lt:
      return Op::CmpLtImm;
    case BinOp::Le:
      return Op::CmpLeImm;
    case BinOp::Gt:
      return Op::CmpGtImm;
    case BinOp::Ge:
      return Op::CmpGeImm;
    default:
      return std::nullopt;
    }
  }

  /// The mirrored opcode for const-op-reg: c OP x == x OP' c. Ops
  /// without a mirror (Sub/Div/Rem) return nullopt and take the
  /// two-register path.
  static std::optional<Op> mirroredImmOp(BinOp B) {
    switch (B) {
    case BinOp::Add:
      return Op::AddImm;
    case BinOp::Mul:
      return Op::MulImm;
    case BinOp::Eq:
      return Op::CmpEqImm;
    case BinOp::Ne:
      return Op::CmpNeImm;
    case BinOp::Lt:
      return Op::CmpGtImm;
    case BinOp::Le:
      return Op::CmpGeImm;
    case BinOp::Gt:
      return Op::CmpLtImm;
    case BinOp::Ge:
      return Op::CmpLeImm;
    default:
      return std::nullopt;
    }
  }

  /// An int32-range Int constant, when \p E folds to one. Eq/Ne Imm
  /// forms compare as Int, so non-Int constants are excluded for every
  /// operator.
  std::optional<int32_t> foldedImm(const Expr &E) {
    std::optional<Value> V = fold(E);
    if (!V || !V->isInt())
      return std::nullopt;
    int64_t I = V->asInt();
    if (I < INT32_MIN || I > INT32_MAX)
      return std::nullopt;
    return static_cast<int32_t>(I);
  }

  bool tryCompileImmBinary(const Expr &E, uint16_t Dst) {
    if (std::optional<int32_t> Imm = foldedImm(*E.Args[1])) {
      if (std::optional<Op> K = immOp(E.BOp)) {
        uint16_t L = fresh();
        compileExpr(*E.Args[0], L);
        emit(*K, Dst, L, 0, *Imm);
        return true;
      }
    }
    if (std::optional<int32_t> Imm = foldedImm(*E.Args[0])) {
      if (std::optional<Op> K = mirroredImmOp(E.BOp)) {
        uint16_t R = fresh();
        compileExpr(*E.Args[1], R);
        emit(*K, Dst, R, 0, *Imm);
        return true;
      }
    }
    return false;
  }

  void compileBinary(const Expr &E, uint16_t Dst) {
    // Short-circuit && / || compile to control flow, like the
    // interpreter's early returns.
    if (E.BOp == BinOp::And || E.BOp == BinOp::Or) {
      compileExpr(*E.Args[0], Dst);
      // B selects the non-Bool fault message (1 = '&&', 2 = '||'),
      // matching the interpreter's distinct diagnostics.
      size_t Skip = emit(E.BOp == BinOp::And ? Op::JumpIfFalse
                                             : Op::JumpIfTrue,
                         Dst, E.BOp == BinOp::And ? 1 : 2);
      compileExpr(*E.Args[1], Dst);
      patch(Skip, here());
      return;
    }
    // Reg-op-const (and const-op-reg, for operators with a mirrored
    // form): fold the constant side into the instruction's Imm field.
    // Only a *folded* operand is elided, so evaluation effects and fault
    // order are preserved — fold() refuses anything that could fault
    // (e.g. a constant division by zero stays a runtime DivImm fault).
    if (tryCompileImmBinary(E, Dst))
      return;
    uint16_t L = fresh();
    compileExpr(*E.Args[0], L);
    uint16_t R = fresh();
    compileExpr(*E.Args[1], R);
    Op K;
    switch (E.BOp) {
    case BinOp::Add:
      K = Op::AddInt;
      break;
    case BinOp::Sub:
      K = Op::SubInt;
      break;
    case BinOp::Mul:
      K = Op::MulInt;
      break;
    case BinOp::Div:
      K = Op::DivInt;
      break;
    case BinOp::Rem:
      K = Op::RemInt;
      break;
    case BinOp::Eq:
      K = Op::CmpEq;
      break;
    case BinOp::Ne:
      K = Op::CmpNe;
      break;
    case BinOp::Lt:
      K = Op::CmpLt;
      break;
    case BinOp::Le:
      K = Op::CmpLe;
      break;
    case BinOp::Gt:
      K = Op::CmpGt;
      break;
    case BinOp::Ge:
      K = Op::CmpGe;
      break;
    default:
      Failed = true;
      return;
    }
    emit(K, Dst, L, R);
  }

  /// True when the leading run of cases are all Tag patterns and no Tag
  /// case appears after the first non-Tag case — the shape a
  /// tag-dispatch table handles (an interleaved wildcard would have to
  /// match before later tags, which a table jump would skip).
  static size_t leadingTagCases(const Expr &E) {
    size_t N = 0;
    while (N < E.Cases.size() && E.Cases[N].Pat.K == Pattern::Kind::Tag)
      ++N;
    for (size_t I = N; I < E.Cases.size(); ++I)
      if (E.Cases[I].Pat.K == Pattern::Kind::Tag)
        return 0;
    return N >= 2 ? N : 0;
  }

  /// True when a match over a syntactic N-tuple can skip materializing
  /// it: every case is an N-tuple pattern or a wildcard (a Var pattern
  /// would need the tuple value itself).
  static bool destructurable(const Expr &E, size_t N) {
    for (const MatchCase &C : E.Cases) {
      if (C.Pat.K == Pattern::Kind::Wildcard)
        continue;
      if (C.Pat.K == Pattern::Kind::Tuple && C.Pat.Elems.size() == N)
        continue;
      return false;
    }
    return true;
  }

  /// `match (e1, ..., en) with { case (p1, ..., pn) => ... }` — the
  /// shape of every lattice operation — compiled component-wise: the
  /// elements are evaluated into registers (same order as tuple
  /// construction) and each case tests sub-patterns directly against
  /// them. This skips the per-call tuple hash-consing, the tuple-shape
  /// test and the element extraction; the tuple is only built on the
  /// cold no-case-matched path, where the fault message renders it.
  void compileMatchDestructured(const Expr &E, uint16_t Dst) {
    const Expr &Scrut = *E.Args[0];
    size_t N = Scrut.Args.size();
    // Component registers: a component that is already a bound variable
    // reuses its register (cases only read components, and every write
    // a case body performs lands in Dst or in registers above RegMark).
    SmallVector<uint16_t, 4> Comp;
    for (size_t I = 0; I < N; ++I) {
      const Expr &El = *Scrut.Args[I];
      if (El.K == Expr::Kind::Var) {
        int Reg = lookup(El.Name);
        if (Reg >= 0) {
          Comp.push_back(static_cast<uint16_t>(Reg));
          continue;
        }
      }
      uint16_t R = fresh();
      compileExpr(El, R);
      Comp.push_back(R);
    }

    std::vector<size_t> EndJumps;
    std::vector<size_t> FailJumps;
    for (const MatchCase &C : E.Cases) {
      patchAll(FailJumps, here());
      FailJumps.clear();
      size_t ScopeMark = Scope.size();
      uint32_t RegMark = NextReg;
      if (C.Pat.K == Pattern::Kind::Tuple)
        for (size_t I = 0; I < N; ++I)
          compilePattern(C.Pat.Elems[I], Comp[I], FailJumps);
      compileExpr(*C.Body, Dst);
      EndJumps.push_back(emit(Op::Jump));
      Scope.resize(ScopeMark);
      NextReg = RegMark;
    }

    // No case matched: build the tuple the interpreter would render.
    patchAll(FailJumps, here());
    uint16_t First = static_cast<uint16_t>(NextReg);
    for (size_t I = 0; I < N; ++I)
      emit(Op::Move, fresh(), Comp[I]);
    uint16_t Tup = fresh();
    emit(Op::MakeTuple, Tup, First, static_cast<uint16_t>(N));
    emit(Op::FailNoMatch, Tup);
    patchAll(EndJumps, here());
  }

  void compileMatch(const Expr &E, uint16_t Dst) {
    if (E.Args[0]->K == Expr::Kind::Tuple && !E.Args[0]->Args.empty() &&
        !fold(*E.Args[0]) && destructurable(E, E.Args[0]->Args.size())) {
      compileMatchDestructured(E, Dst);
      return;
    }
    uint16_t Scrut = fresh();
    compileExpr(*E.Args[0], Scrut);

    size_t NumTagCases = leadingTagCases(E);
    size_t DispatchAt = 0;
    uint32_t TableIx = 0;
    if (NumTagCases > 0) {
      TableIx = static_cast<uint32_t>(Fn.TagTables.size());
      Fn.TagTables.emplace_back();
      DispatchAt = emit(Op::TagDispatch, Scrut, TableIx, newCache());
    }

    std::vector<size_t> EndJumps;
    std::vector<size_t> FailJumps; // pending jumps to the next case
    int32_t MissEntry = -1;        // pc of the first non-tag case
    for (size_t CI = 0; CI < E.Cases.size(); ++CI) {
      const MatchCase &C = E.Cases[CI];
      patchAll(FailJumps, here());
      FailJumps.clear();
      if (CI == NumTagCases && NumTagCases > 0)
        MissEntry = here();

      size_t ScopeMark = Scope.size();
      uint32_t RegMark = NextReg;
      if (CI < NumTagCases) {
        // The tag test doubles as the linear-path test; the dispatch
        // table enters just past it.
        FailJumps.push_back(emit(Op::JumpIfNotTag, Scrut,
                                 tagSymbol(C.Pat.EnumName, C.Pat.CaseName)));
        std::vector<TagTableEntry> &Table = Fn.TagTables[TableIx];
        uint32_t Sym = tagSymbol(C.Pat.EnumName, C.Pat.CaseName);
        bool Seen = false;
        for (const TagTableEntry &TE : Table)
          Seen |= TE.Symbol == Sym;
        if (!Seen)
          Table.push_back(TagTableEntry{Sym, here()});
        if (!C.Pat.Elems.empty()) {
          uint16_t Payload = fresh();
          emit(Op::GetPayload, Payload, Scrut);
          compilePattern(C.Pat.Elems[0], Payload, FailJumps);
        }
      } else {
        compilePattern(C.Pat, Scrut, FailJumps);
      }
      compileExpr(*C.Body, Dst);
      EndJumps.push_back(emit(Op::Jump));
      Scope.resize(ScopeMark);
      NextReg = RegMark;
    }

    // No case matched: fault like the interpreter. A dispatch miss
    // (tag absent from the table, or a non-tag scrutinee) resumes at
    // the first non-tag case, or faults directly if there is none.
    patchAll(FailJumps, here());
    if (NumTagCases > 0)
      patch(DispatchAt, MissEntry >= 0 ? MissEntry : here());
    emit(Op::FailNoMatch, Scrut);
    patchAll(EndJumps, here());
  }
};

//===----------------------------------------------------------------------===//
// VmCompiler
//===----------------------------------------------------------------------===//

void VmCompiler::markLatticeOp(const std::string &Fn, LatRole Role, Value Bot,
                               Value Top) {
  LatticeOps[Fn] = LatInfo{Role, Bot, Top};
}

uint32_t VmCompiler::nativeSlot(const std::string &Name) {
  auto It = NativeIndex.find(Name);
  if (It != NativeIndex.end())
    return It->second;
  uint32_t Slot = static_cast<uint32_t>(M.NativeNames.size());
  M.NativeNames.push_back(Name);
  M.Natives.emplace_back();
  NativeIndex[Name] = Slot;
  return Slot;
}

std::optional<uint32_t>
VmCompiler::functionIndex(const std::string &Name) const {
  auto It = FnIndex.find(Name);
  if (It == FnIndex.end() || !M.Functions[It->second].Ok)
    return std::nullopt;
  return It->second;
}

bool VmCompiler::usable(uint32_t FnIx) const {
  return FnIx < M.Functions.size() && M.Functions[FnIx].Ok;
}

size_t VmCompiler::compileDefs() {
  assert(!DefsDone && "compileDefs() runs once");
  DefsDone = true;

  // Pass 1: assign indexes so bodies can resolve mutual recursion.
  for (const auto &[Name, DI] : CM.Defs) {
    if (DI.Decl->IsExt)
      continue;
    FnIndex[Name] = static_cast<uint32_t>(M.Functions.size());
    M.Functions.emplace_back();
  }

  // Pass 2: compile bodies.
  for (const auto &[Name, DI] : CM.Defs) {
    if (DI.Decl->IsExt)
      continue;
    VmFunction &Fn = M.Functions[FnIndex[Name]];
    Fn.Name = Name;
    Fn.NumParams = static_cast<uint32_t>(DI.Decl->Params.size());
    Fn.DepthErrWhere = renderWhere(Name, DI.Decl->Loc);

    FnBuilder B(*this, Fn);
    for (const ast::Param &P : DI.Decl->Params)
      B.Scope.emplace_back(P.Name, B.fresh());

    if (auto It = LatticeOps.find(Name);
        It != LatticeOps.end() && Fn.NumParams == 2) {
      Op K = It->second.Role == LatRole::Leq   ? Op::LeqPrologue
             : It->second.Role == LatRole::Lub ? Op::LubPrologue
                                               : Op::GlbPrologue;
      B.emit(K, 0, B.addConst(It->second.Bot), B.addConst(It->second.Top));
    }

    uint16_t Ret = B.fresh();
    B.compileExpr(*DI.Decl->Body, Ret);
    B.emit(Op::Ret, Ret);
    Fn.Ok = !B.Failed;
  }

  // Usability closure: a function calling an unusable function is
  // itself unusable (the interpreter takes over the whole call tree so
  // the two engines' call-depth accounting stays aligned).
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (VmFunction &Fn : M.Functions) {
      if (!Fn.Ok)
        continue;
      for (uint32_t Callee : Fn.Callees)
        if (!M.Functions[Callee].Ok) {
          Fn.Ok = false;
          Changed = true;
          break;
        }
    }
  }

  size_t NumOk = 0;
  for (const VmFunction &Fn : M.Functions)
    NumOk += Fn.Ok;

  // The optimization pipeline runs after the closure so the inliner
  // only ever splices bodies whose whole call tree compiled.
  optimizeModule(M, F, OptLevel);
  return NumOk;
}

std::optional<uint32_t>
VmCompiler::compileWrapper(const std::string &Name,
                           std::span<const std::string> Params,
                           std::span<const ast::Expr *const> Exprs,
                           const std::string &Callee) {
  assert(DefsDone && "wrappers compile after the defs");
  uint32_t Ix = static_cast<uint32_t>(M.Functions.size());
  M.Functions.emplace_back();
  VmFunction &Fn = M.Functions.back();
  Fn.Name = Name;
  Fn.NumParams = static_cast<uint32_t>(Params.size());
  Fn.DepthErrWhere = "'" + Name + "'";

  FnBuilder B(*this, Fn);
  for (const std::string &P : Params)
    B.Scope.emplace_back(P, B.fresh());

  uint16_t First = static_cast<uint16_t>(B.NextReg);
  SmallVector<uint16_t, 8> Regs;
  for (size_t I = 0; I < Exprs.size(); ++I)
    Regs.push_back(B.fresh());
  for (size_t I = 0; I < Exprs.size(); ++I)
    B.compileExpr(*Exprs[I], Regs[I]);
  if (Callee.empty()) {
    // Transfer form: a single expression's value is the result.
    assert(Exprs.size() == 1 && "transfer wrappers carry one expression");
    B.emit(Op::Ret, First);
  } else {
    uint16_t Ret = B.fresh();
    B.emitCall(Callee, Ret, First, static_cast<uint16_t>(Exprs.size()));
    B.emit(Op::Ret, Ret);
  }
  Fn.Ok = !B.Failed;
  for (uint32_t C : Fn.Callees)
    Fn.Ok &= usable(C);
  if (!Fn.Ok)
    return std::nullopt;
  // Defs are already optimized, so the wrapper's callees are final and
  // it can be piped through the same passes on its own.
  optimizeFunction(M, Ix, F, OptLevel);
  return Ix;
}

std::string VmCompiler::renderWhere(const std::string &Name,
                                    SourceLoc Loc) const {
  std::string Out = "'" + Name + "'";
  if (SM && Loc.isValid()) {
    LineColumn LC = SM->lineColumn(Loc);
    Out += " at " + SM->bufferName(Loc.Buffer) + ":" +
           std::to_string(LC.Line) + ":" + std::to_string(LC.Column);
  }
  return Out;
}
