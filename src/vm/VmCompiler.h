//===- vm/VmCompiler.h - Typed AST → bytecode lowering --------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the type-checked functional sub-language to the register
/// bytecode of vm/Bytecode.h. Compilation is per function: every named
/// def becomes a VmFunction (ext defs become CallNative thunks), and the
/// rule-lowering pass adds one anonymous wrapper function per
/// filter/binder/transfer site. The compiler performs constant folding
/// (literal subtrees collapse to one LoadConst of a pre-interned value —
/// in particular constant tags and tuples are hash-consed at compile
/// time, where the interpreter re-interns per evaluation), emits
/// tag-dispatch jump tables with inline caches for matches over enum
/// constructors, and prepends fused lattice prologues to the functions a
/// lattice binding names as leq/lub/glb.
///
/// Compilation never fails a build: an expression the compiler cannot
/// place (register pressure past the frame cap) just leaves that
/// function without a VM body, and the engines fall back to the
/// interpreter for it (counted in SolveStats::InterpFallbacks).
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_VM_VMCOMPILER_H
#define FLIX_VM_VMCOMPILER_H

#include "lang/Sema.h"
#include "vm/Bytecode.h"

#include <optional>

namespace flix::vm {

class VmCompiler {
public:
  VmCompiler(const CheckedModule &CM, ValueFactory &F,
             const SourceManager *SM, VmModule &M)
      : CM(CM), F(F), SM(SM), M(M) {}

  /// Declares that \p Fn is a lattice operation with the given ⊥/⊤
  /// constants; its compiled body gets the matching fused prologue.
  /// Call before compileDefs().
  enum class LatRole { Leq, Lub, Glb };
  void markLatticeOp(const std::string &Fn, LatRole Role, Value Bot,
                     Value Top);

  /// Selects the vm/Passes.h pipeline level applied to compiled code:
  /// 0 = off, 1 = local passes, 2 = inlining + local passes (default).
  /// Call before compileDefs().
  void setOptLevel(int Level) { OptLevel = Level; }

  /// Compiles every def of the checked module and resolves the
  /// usability closure (a function is usable iff its body and all its
  /// CallFn callees compiled). Returns the number of usable functions.
  size_t compileDefs();

  /// Compiles an anonymous wrapper evaluating \p Exprs under parameters
  /// \p Params (the free rule variables, in order). When \p Callee is
  /// non-empty the wrapper returns Callee(e1, ..., en); otherwise it
  /// returns e1 (the transfer-function identity form). Returns the
  /// function index, or nullopt when the wrapper (or anything it calls)
  /// is not compilable.
  std::optional<uint32_t>
  compileWrapper(const std::string &Name, std::span<const std::string> Params,
                 std::span<const ast::Expr *const> Exprs,
                 const std::string &Callee);

  /// Index of the compiled function for def \p Name, if usable.
  std::optional<uint32_t> functionIndex(const std::string &Name) const;

private:
  struct FnBuilder;
  friend struct FnBuilder;

  uint32_t nativeSlot(const std::string &Name);
  bool usable(uint32_t FnIx) const;
  std::string renderWhere(const std::string &Name, SourceLoc Loc) const;

  const CheckedModule &CM;
  ValueFactory &F;
  const SourceManager *SM;
  VmModule &M;

  struct LatInfo {
    LatRole Role;
    Value Bot, Top;
  };
  std::map<std::string, LatInfo> LatticeOps;
  std::map<std::string, uint32_t> FnIndex;     ///< def name → function ix
  std::map<std::string, uint32_t> NativeIndex; ///< ext name → native slot
  bool DefsDone = false;
  int OptLevel = 2;
};

} // namespace flix::vm

#endif // FLIX_VM_VMCOMPILER_H
