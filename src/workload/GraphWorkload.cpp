//===- workload/GraphWorkload.cpp - Random graphs ---------------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "workload/GraphWorkload.h"

#include <random>

using namespace flix;

WeightedGraph flix::generateGraph(uint64_t Seed, int NumNodes,
                                  double AvgDegree, int MaxWeight) {
  std::mt19937_64 Rng(Seed);
  WeightedGraph G;
  G.NumNodes = NumNodes;
  auto weight = [&]() {
    return 1 + static_cast<int>(Rng() % static_cast<uint64_t>(MaxWeight));
  };
  // Chain for reachability.
  for (int V = 0; V + 1 < NumNodes; ++V)
    G.Edges.push_back({V, V + 1, weight()});
  // Random extra edges up to the requested average degree.
  int64_t Extra = static_cast<int64_t>(AvgDegree * NumNodes) -
                  static_cast<int64_t>(G.Edges.size());
  for (int64_t K = 0; K < Extra; ++K) {
    int A = static_cast<int>(Rng() % NumNodes);
    int B = static_cast<int>(Rng() % NumNodes);
    if (A != B)
      G.Edges.push_back({A, B, weight()});
  }
  return G;
}
