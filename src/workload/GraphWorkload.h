//===- workload/GraphWorkload.h - Random graphs ----------------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random weighted digraphs for the shortest-paths experiments
/// (§4.4) and plain edge lists for transitive-closure ablations.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_WORKLOAD_GRAPHWORKLOAD_H
#define FLIX_WORKLOAD_GRAPHWORKLOAD_H

#include "analyses/ShortestPaths.h"

#include <cstdint>

namespace flix {

/// Random digraph with \p NumNodes nodes, average out-degree \p AvgDegree
/// and weights uniform in [1, MaxWeight]. Always includes a Hamiltonian-
/// ish chain so most nodes are reachable from node 0.
WeightedGraph generateGraph(uint64_t Seed, int NumNodes, double AvgDegree,
                            int MaxWeight);

} // namespace flix

#endif // FLIX_WORKLOAD_GRAPHWORKLOAD_H
