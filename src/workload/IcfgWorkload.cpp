//===- workload/IcfgWorkload.cpp - Synthetic ICFGs for IFDS/IDE ------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "workload/IcfgWorkload.h"

#include "support/Hashing.h"

#include <algorithm>
#include <random>

using namespace flix;

namespace {

/// Burns ~2ns × Iters to simulate the cost of a real transfer function
/// (see IcfgProgram::TransferWork).
void simulateTransferCost(int Iters) {
  if (Iters <= 0)
    return;
  uint64_t H = 0x9e3779b97f4a7c15ULL;
  for (int I = 0; I < Iters; ++I)
    H = hashMix(H + static_cast<uint64_t>(I));
  [[maybe_unused]] static volatile uint64_t Sink;
  Sink = H;
}

/// Applies the gen/kill/move transfer of \p Flow to fact \p D.
void applyFlow(const IcfgProgram::NodeFlow &Flow, int D,
               std::vector<int> &Out) {
  if (D == 0) {
    Out.push_back(0);
    for (int G : Flow.Gen)
      Out.push_back(G);
    return;
  }
  bool Killed =
      std::find(Flow.Kill.begin(), Flow.Kill.end(), D) != Flow.Kill.end();
  for (const auto &[Src, Dst] : Flow.Move) {
    if (Dst == D)
      Killed = true; // dst is overwritten by the move
    if (Src == D)
      Out.push_back(Dst);
  }
  if (!Killed)
    Out.push_back(D);
}

void applyMap(const std::vector<std::pair<int, int>> &Map, int D,
              std::vector<int> &Out) {
  if (D == 0) {
    Out.push_back(0);
    return;
  }
  for (const auto &[Src, Dst] : Map)
    if (Src == D)
      Out.push_back(Dst);
}

} // namespace

IfdsProblem IcfgProgram::toIfdsProblem() const {
  IfdsProblem P;
  P.NumNodes = NumNodes;
  P.NumProcs = NumProcs;
  P.NumFacts = NumFacts;
  P.CfgEdges = CfgEdges;
  P.CallEdges = CallEdges;
  P.StartNodes = StartNodes;
  P.EndNodes = EndNodes;
  P.Seeds = {{StartNodes[MainProc], 0}};

  const IcfgProgram *Self = this;
  P.EshIntra = [Self](int N, int D, std::vector<int> &Out) {
    simulateTransferCost(Self->TransferWork);
    applyFlow(Self->Flows[N], D, Out);
  };
  P.EshCallStart = [Self](int Call, int D, int Target,
                          std::vector<int> &Out) {
    simulateTransferCost(Self->TransferWork);
    auto It = Self->CallMap.find({Call, Target});
    if (It != Self->CallMap.end())
      applyMap(It->second, D, Out);
    else if (D == 0)
      Out.push_back(0);
  };
  P.EshEndReturn = [Self](int Target, int D, int Call,
                          std::vector<int> &Out) {
    simulateTransferCost(Self->TransferWork);
    auto It = Self->RetMap.find({Target, Call});
    if (It != Self->RetMap.end())
      applyMap(It->second, D, Out);
    else if (D == 0)
      Out.push_back(0);
  };
  return P;
}

IdeProblem IcfgProgram::toIdeProblem() const {
  IdeProblem P;
  P.NumNodes = NumNodes;
  P.NumProcs = NumProcs;
  P.NumFacts = NumFacts;
  P.CfgEdges = CfgEdges;
  P.CallEdges = CallEdges;
  P.StartNodes = StartNodes;
  P.EndNodes = EndNodes;
  P.MainProc = MainProc;
  P.MainFacts = {0};
  P.Seeds = {{MainProc, 0, IdeProblem::Seed::Kind::Top, 0}};

  const IcfgProgram *Self = this;

  // Deterministic small linear coefficients per (node, fact) pair, so the
  // micro-functions exercise composition and join without exploding.
  auto genFn = [](const TransformerLattice &T, int N, int G) {
    int64_t K = static_cast<int64_t>(hashValues(N, G) % 17);
    return T.nonBot(0, K, T.constants().bot()); // λl.Cst(K)
  };
  auto moveFn = [](const TransformerLattice &T, int N, int Src, int Dst) {
    uint64_t H = hashValues(N, Src, Dst);
    int64_t A = 1 + static_cast<int64_t>(H % 2);       // 1 or 2
    int64_t B = static_cast<int64_t>((H >> 8) % 5);    // 0..4
    return T.nonBot(A, B, T.constants().bot());        // λl.A·l+B
  };

  P.EshIntra = [Self, genFn, moveFn](int N, int D,
                                     const TransformerLattice &T,
                                     IdeProblem::Out &Out) {
    simulateTransferCost(Self->TransferWork);
    const NodeFlow &Flow = Self->Flows[N];
    if (D == 0) {
      Out.push_back({0, T.identity()});
      for (int G : Flow.Gen)
        Out.push_back({G, genFn(T, N, G)});
      return;
    }
    bool Killed =
        std::find(Flow.Kill.begin(), Flow.Kill.end(), D) != Flow.Kill.end();
    for (const auto &[Src, Dst] : Flow.Move) {
      if (Dst == D)
        Killed = true;
      if (Src == D)
        Out.push_back({Dst, moveFn(T, N, Src, Dst)});
    }
    if (!Killed)
      Out.push_back({D, T.identity()});
  };
  P.EshCallStart = [Self](int Call, int D, int Target,
                          const TransformerLattice &T,
                          IdeProblem::Out &Out) {
    simulateTransferCost(Self->TransferWork);
    if (D == 0) {
      Out.push_back({0, T.identity()});
      return;
    }
    auto It = Self->CallMap.find({Call, Target});
    if (It == Self->CallMap.end())
      return;
    for (const auto &[Src, Dst] : It->second)
      if (Src == D)
        Out.push_back({Dst, T.identity()});
  };
  P.EshEndReturn = [Self](int Target, int D, int Call,
                          const TransformerLattice &T,
                          IdeProblem::Out &Out) {
    simulateTransferCost(Self->TransferWork);
    if (D == 0) {
      Out.push_back({0, T.identity()});
      return;
    }
    auto It = Self->RetMap.find({Target, Call});
    if (It == Self->RetMap.end())
      return;
    for (const auto &[Src, Dst] : It->second)
      if (Src == D)
        Out.push_back({Dst, T.identity()});
  };
  return P;
}

IcfgProgram flix::generateIcfg(uint64_t Seed, int NumProcs,
                               int NodesPerProc, int FactsTotal,
                               int CallsPerProc) {
  std::mt19937_64 Rng(Seed);
  IcfgProgram P;
  P.NumProcs = NumProcs;
  P.NumFacts = std::max(2, FactsTotal);
  P.MainProc = 0;

  // Facts 1..NumFacts-1 are distributed among procedures as "locals".
  std::vector<std::pair<int, int>> ProcFacts(NumProcs); // [first, count)
  {
    int PerProc = std::max(1, (P.NumFacts - 1) / NumProcs);
    int Next = 1;
    for (int Proc = 0; Proc < NumProcs; ++Proc) {
      int Count = std::min(PerProc, P.NumFacts - Next);
      if (Count <= 0) {
        Next = 1;
        Count = std::min(PerProc, P.NumFacts - 1);
      }
      ProcFacts[Proc] = {Next, std::max(1, Count)};
      Next += Count;
    }
  }
  auto localFact = [&](int Proc) {
    auto [First, Count] = ProcFacts[Proc];
    return First + static_cast<int>(Rng() % Count);
  };
  auto chance = [&](double Prob) {
    return std::uniform_real_distribution<double>(0, 1)(Rng) < Prob;
  };

  P.Flows.clear();
  for (int Proc = 0; Proc < NumProcs; ++Proc) {
    int First = P.NumNodes;
    P.NumNodes += NodesPerProc;
    P.StartNodes.push_back(First);
    P.EndNodes.push_back(First + NodesPerProc - 1);
    P.Flows.resize(P.NumNodes);

    // Chain plus some branch edges.
    for (int N = First; N + 1 < First + NodesPerProc; ++N)
      P.CfgEdges.push_back({N, N + 1});
    for (int K = 0; K < NodesPerProc / 8; ++K) {
      int A = First + static_cast<int>(Rng() % NodesPerProc);
      int B = First + static_cast<int>(Rng() % NodesPerProc);
      if (A != B)
        P.CfgEdges.push_back({A, B});
    }

    // Statements.
    for (int N = First; N < First + NodesPerProc; ++N) {
      if (chance(0.20))
        P.Flows[N].Gen.push_back(localFact(Proc));
      if (chance(0.10))
        P.Flows[N].Kill.push_back(localFact(Proc));
      if (chance(0.20)) {
        int Src = localFact(Proc), Dst = localFact(Proc);
        if (Src != Dst)
          P.Flows[N].Move.push_back({Src, Dst});
      }
    }

    // Calls from interior nodes (never the start/end nodes).
    for (int K = 0; K < CallsPerProc && NodesPerProc > 3; ++K) {
      int Call = First + 1 + static_cast<int>(Rng() % (NodesPerProc - 2));
      int Target = static_cast<int>(Rng() % NumProcs);
      P.CallEdges.push_back({Call, Target});
    }
  }

  // Parameter and return mappings for every call edge.
  std::sort(P.CallEdges.begin(), P.CallEdges.end());
  P.CallEdges.erase(std::unique(P.CallEdges.begin(), P.CallEdges.end()),
                    P.CallEdges.end());
  auto procOfNode = [&](int Node) {
    for (int Proc = 0; Proc < NumProcs; ++Proc)
      if (Node >= P.StartNodes[Proc] && Node <= P.EndNodes[Proc])
        return Proc;
    return 0;
  };
  for (auto [Call, Target] : P.CallEdges) {
    int Caller = procOfNode(Call);
    auto &Params = P.CallMap[{Call, Target}];
    Params.push_back({0, 0});
    int NumParams = 1 + static_cast<int>(Rng() % 3);
    for (int K = 0; K < NumParams; ++K)
      Params.push_back({localFact(Caller), localFact(Target)});
    auto &Rets = P.RetMap[{Target, Call}];
    Rets.push_back({0, 0});
    int NumRets = 1 + static_cast<int>(Rng() % 2);
    for (int K = 0; K < NumRets; ++K)
      Rets.push_back({localFact(Target), localFact(Caller)});
  }

  return P;
}

std::vector<DacapoPreset> flix::dacapoPresets() {
  // Shapes ordered like Table 2: luindex < antlr < hsqldb < bloat < pmd,
  // with jython an order of magnitude bigger.
  return {
      {"luindex", 40, 30, 240, 3}, {"antlr", 52, 32, 300, 3},
      {"hsqldb", 56, 34, 320, 3},  {"bloat", 64, 36, 360, 4},
      {"pmd", 76, 38, 420, 4},     {"jython", 150, 42, 800, 4},
  };
}
