//===- workload/IcfgWorkload.h - Synthetic ICFGs for IFDS/IDE -*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of interprocedural control-flow graphs with
/// gen/kill/move distributive flow functions — the workload for the
/// Table 2 reproduction. We do not have the DaCapo benchmarks or the
/// object-abstraction typestate instance (the paper plugged its Scala
/// transfer functions into both solvers); the generator produces ICFGs
/// whose exploded-supergraph density is the cost driver for both the
/// imperative and the declarative IFDS solver, at six DaCapo-shaped
/// scales.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_WORKLOAD_ICFGWORKLOAD_H
#define FLIX_WORKLOAD_ICFGWORKLOAD_H

#include "analyses/Ide.h"
#include "analyses/Ifds.h"

#include <cstdint>
#include <map>
#include <string>

namespace flix {

/// A generated interprocedural program with distributive flow functions
/// in gen/kill/move form (an uninitialized-variables-style analysis):
///   * fact 0 is Λ; facts 1..NumFacts-1 are "variables";
///   * Gen at a node creates facts from Λ;
///   * Kill stops a fact;
///   * Move (src → dst) copies a fact (dst additionally killed unless
///     moved onto).
struct IcfgProgram {
  int NumNodes = 0;
  int NumProcs = 0;
  int NumFacts = 0;
  int MainProc = 0;

  std::vector<std::pair<int, int>> CfgEdges;
  std::vector<std::pair<int, int>> CallEdges;
  std::vector<int> StartNodes;
  std::vector<int> EndNodes;

  struct NodeFlow {
    std::vector<int> Gen;
    std::vector<int> Kill;
    std::vector<std::pair<int, int>> Move; ///< (src, dst)
  };
  std::vector<NodeFlow> Flows;

  /// Parameter passing per (call, target): caller fact -> callee fact.
  std::map<std::pair<int, int>, std::vector<std::pair<int, int>>> CallMap;
  /// Return mapping per (target, call): callee fact -> caller fact.
  std::map<std::pair<int, int>, std::vector<std::pair<int, int>>> RetMap;

  /// Simulated per-call cost of the flow functions, in busy-work hash
  /// iterations (0 = free). The paper's Table 2 instantiates both solvers
  /// with the *same* nontrivial Scala transfer functions (the typestate
  /// object abstraction), whose cost dominates both columns; setting this
  /// to a few thousand iterations (~µs) reproduces that regime, while 0
  /// isolates pure engine overhead.
  int TransferWork = 0;

  /// Wires the flow functions into an IfdsProblem. The IcfgProgram must
  /// outlive the returned problem.
  IfdsProblem toIfdsProblem() const;

  /// Wires micro-function-decorated flow functions into an IdeProblem
  /// (linear-constant-propagation style: gens produce λl.Cst(k),
  /// moves λl.(a·l + b) with small deterministic coefficients). The
  /// IcfgProgram must outlive the returned problem; the seeds use
  /// \p SeedValue for Λ at main.
  IdeProblem toIdeProblem() const;
};

/// Generates an ICFG with the given shape parameters.
IcfgProgram generateIcfg(uint64_t Seed, int NumProcs, int NodesPerProc,
                         int FactsTotal, int CallsPerProc);

/// One Table 2 row: the DaCapo benchmark name and generator parameters
/// sized so the exploded supergraph grows in the paper's order
/// (luindex < antlr < hsqldb < bloat < pmd << jython).
struct DacapoPreset {
  std::string Name;
  int NumProcs;
  int NodesPerProc;
  int FactsTotal;
  int CallsPerProc;
};

std::vector<DacapoPreset> dacapoPresets();

} // namespace flix

#endif // FLIX_WORKLOAD_ICFGWORKLOAD_H
