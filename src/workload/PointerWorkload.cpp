//===- workload/PointerWorkload.cpp - Synthetic pointer programs -----------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "workload/PointerWorkload.h"

#include <algorithm>
#include <random>

using namespace flix;

namespace {

/// Per-function generation bookkeeping.
struct FunctionPlan {
  int FirstVar, NumVars;
  int FirstObj, NumObjs;
  int FirstLabel, NumLabels;
};

} // namespace

PointerProgram flix::generatePointerProgram(uint64_t Seed,
                                            size_t TargetFacts) {
  std::mt19937_64 Rng(Seed);
  PointerProgram P;

  // A function of size (V vars, O objs, L labels) contributes roughly
  // V*1.5 (addr-of) + V*0.5 (copies) + L*1.12 (cfg) + L*0.5 (load/store)
  // + L*0.1 (kills) + O*0.2 (init-top) facts with the proportions below.
  // Solve for the function count. The densities are chosen so that the
  // points-to amplification (derived/input facts) stays in the range of
  // real C programs (tens, not thousands).
  const int VarsPerFn = 14;
  const int ObjsPerFn = 10;
  const int LabelsPerFn = 16;
  const double FactsPerFn = 1.5 * VarsPerFn + 0.5 * VarsPerFn +
                            1.12 * LabelsPerFn + 0.5 * LabelsPerFn +
                            0.1 * LabelsPerFn + 0.2 * ObjsPerFn;
  size_t NumFns = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(TargetFacts) / FactsPerFn));

  // A few "hub" heap objects shared by the whole program (globals, I/O
  // buffers). Many functions store into them, so their PtH sets — and
  // with them the ⊤-valued strong-update cells — grow with program size.
  // This is the asymmetry §4.5 calls out: the lattice engine stores one ⊤
  // per cell, the powerset embedding keeps every element flowing, and the
  // hand-written C++ analyzer keeps ⊤ implicit.
  const int NumHubs = 8;
  P.NumObjs = NumHubs;   // objects [0, NumHubs) are the hubs
  P.NumVars = NumHubs;   // variable h points to hub h (aliased: no kills)
  std::vector<FunctionPlan> Fns;
  for (size_t I = 0; I < NumFns; ++I) {
    FunctionPlan F;
    F.FirstVar = P.NumVars;
    F.NumVars = VarsPerFn;
    P.NumVars += F.NumVars;
    F.FirstObj = P.NumObjs;
    F.NumObjs = ObjsPerFn;
    P.NumObjs += F.NumObjs;
    F.FirstLabel = P.NumLabels;
    F.NumLabels = LabelsPerFn;
    P.NumLabels += F.NumLabels;
    Fns.push_back(F);
  }

  auto pick = [&](int First, int Num) {
    return First + static_cast<int>(Rng() % Num);
  };
  auto chance = [&](double Prob) {
    return std::uniform_real_distribution<double>(0, 1)(Rng) < Prob;
  };

  // Track, per variable, its address-taken objects and whether anything
  // else flows into it — a store through an unaliased single-target
  // pointer is a strong update (Kill).
  std::vector<std::vector<int>> VarAddrs(P.NumVars);
  std::vector<char> VarHasCopyIn(P.NumVars, 0);

  // Hub variables: each points at its hub object, marked aliased so no
  // store through them is ever a strong update.
  for (int H = 0; H < NumHubs; ++H) {
    P.AddrOf.push_back({H, H});
    VarAddrs[H].push_back(H);
    VarHasCopyIn[H] = 1;
  }

  for (const FunctionPlan &F : Fns) {
    // Address-of: most vars are unaliased (single target), like locals in
    // real C code; unaliased stores are strong-update candidates.
    for (int V = F.FirstVar; V < F.FirstVar + F.NumVars; ++V) {
      int Count = chance(0.6) ? 1 : (chance(0.75) ? 2 : 3);
      for (int K = 0; K < Count; ++K) {
        int Obj = pick(F.FirstObj, F.NumObjs);
        P.AddrOf.push_back({V, Obj});
        VarAddrs[V].push_back(Obj);
      }
    }
    // Copies: mostly local chains, a few cross-function to couple the
    // analysis globally (the paper's benchmarks are whole programs).
    int NumCopies = static_cast<int>(0.5 * F.NumVars);
    for (int K = 0; K < NumCopies; ++K) {
      int To = pick(F.FirstVar, F.NumVars);
      int From;
      if (chance(0.04) && Fns.size() > 1) {
        const FunctionPlan &Other = Fns[Rng() % Fns.size()];
        From = pick(Other.FirstVar, Other.NumVars);
      } else {
        From = pick(F.FirstVar, F.NumVars);
      }
      if (To == From)
        continue;
      P.Copy.push_back({To, From});
      VarHasCopyIn[To] = 1;
    }
    // CFG: a chain plus ~12% extra forward/back edges.
    for (int L = F.FirstLabel; L + 1 < F.FirstLabel + F.NumLabels; ++L)
      P.Cfg.push_back({L, L + 1});
    int Extra = std::max(1, F.NumLabels / 8);
    for (int K = 0; K < Extra; ++K) {
      int A = pick(F.FirstLabel, F.NumLabels);
      int B = pick(F.FirstLabel, F.NumLabels);
      if (A != B)
        P.Cfg.push_back({A, B});
    }
    // Statements at labels: ~25% stores, ~25% loads.
    for (int L = F.FirstLabel; L < F.FirstLabel + F.NumLabels; ++L) {
      double Roll = std::uniform_real_distribution<double>(0, 1)(Rng);
      if (Roll < 0.25) {
        int Pv = pick(F.FirstVar, F.NumVars);
        int Qv = pick(F.FirstVar, F.NumVars);
        P.Store.push_back({L, Pv, Qv});
        // Strong update when the generator knows Pv is unaliased with a
        // single target.
        if (VarAddrs[Pv].size() == 1 && !VarHasCopyIn[Pv])
          P.Kill.push_back({L, VarAddrs[Pv][0]});
      } else if (Roll < 0.50) {
        int Pv = pick(F.FirstVar, F.NumVars);
        int Qv = pick(F.FirstVar, F.NumVars);
        P.Load.push_back({L, Pv, Qv});
      }
    }
    // Entry state: ~20% of local objects start with unknown contents.
    for (int O = F.FirstObj; O < F.FirstObj + F.NumObjs; ++O)
      if (chance(0.2))
        P.InitTop.push_back({F.FirstLabel, O});

    // Hub traffic: some functions store a local into a hub or read one
    // back. A hub a function touches is unknown (⊤) at its entry, so its
    // whole CFG carries a ⊤-valued cell whose underlying points-to set
    // grows linearly with the program — the §4.5 asymmetry.
    int TouchedHub = -1;
    if (chance(0.10)) {
      int Hub = static_cast<int>(Rng() % NumHubs);
      int L = pick(F.FirstLabel, F.NumLabels);
      P.Store.push_back({L, Hub, pick(F.FirstVar, F.NumVars)});
      TouchedHub = Hub;
    }
    if (chance(0.12)) {
      int Hub = static_cast<int>(Rng() % NumHubs);
      int L = pick(F.FirstLabel, F.NumLabels);
      P.Load.push_back({L, pick(F.FirstVar, F.NumVars), Hub});
      P.InitTop.push_back({F.FirstLabel, Hub});
      if (TouchedHub == Hub)
        TouchedHub = -1;
    }
    if (TouchedHub >= 0)
      P.InitTop.push_back({F.FirstLabel, TouchedHub});
  }

  return P;
}

std::vector<SpecPreset> flix::spec2006Presets() {
  // Table 1's benchmark programs with their kSLOC and input fact counts.
  return {
      {"470.lbm", 1.2, 1205},        {"181.mcf", 2.5, 3377},
      {"429.mcf", 2.7, 3392},        {"256.bzip2", 4.7, 5017},
      {"462.libquantum", 4.4, 6196}, {"164.gzip", 8.6, 9259},
      {"401.bzip2", 8.3, 11844},     {"458.sjeng", 13.9, 20154},
      {"433.milc", 15.0, 22147},     {"175.vpr", 17.8, 25977},
      {"186.crafty", 21.2, 32189},   {"197.parser", 11.4, 32606},
      {"482.sphinx3", 25.1, 42736},  {"300.twolf", 20.5, 44041},
      {"456.hmmer", 36.0, 68384},    {"464.h264ref", 51.6, 89898},
  };
}
