//===- workload/PointerWorkload.h - Synthetic pointer programs -*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of synthetic C-like pointer programs in the Strong
/// Update input format, used to reproduce Table 1. We do not have the
/// SPEC CPU benchmarks (the paper extracted facts from their LLVM
/// bitcode), so the generator produces programs whose *input fact counts*
/// match the paper's second column; fact count and pointer-graph shape
/// are what drive the cost of all three implementations (see DESIGN.md
/// §3, substitutions).
///
/// Programs are built from "functions": clusters of variables, abstract
/// objects and a label CFG (a chain with extra forward/back edges), with
/// address-of/copy/load/store statements, occasional cross-function
/// copies, strong-update kills where the generator knows a pointer is
/// unaliased, and ⊤-initialized objects at entries.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_WORKLOAD_POINTERWORKLOAD_H
#define FLIX_WORKLOAD_POINTERWORKLOAD_H

#include "analyses/StrongUpdate.h"

#include <cstdint>
#include <string>
#include <vector>

namespace flix {

/// Generates a pointer program with approximately \p TargetFacts input
/// facts (within a few percent).
PointerProgram generatePointerProgram(uint64_t Seed, size_t TargetFacts);

/// One Table 1 row: the benchmark name, the source size the paper reports
/// (for display), and the input-fact count we match.
struct SpecPreset {
  std::string Name;
  double KSloc;
  size_t InputFacts;
};

/// The benchmark list of Table 1, in the paper's order.
std::vector<SpecPreset> spec2006Presets();

} // namespace flix

#endif // FLIX_WORKLOAD_POINTERWORKLOAD_H
