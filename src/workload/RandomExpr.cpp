//===- workload/RandomExpr.cpp - Random functional FLIX modules ----------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "workload/RandomExpr.h"

namespace flix {
namespace {

using Type = RandomExprType;

/// xorshift64*: deterministic across platforms, unlike <random>
/// distributions.
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    S ^= S >> 12;
    S ^= S << 25;
    S ^= S >> 27;
    return S * 0x2545f4914f6cdd1dull;
  }
  /// Uniform in [0, N).
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }
  bool chance(uint32_t Percent) { return below(100) < Percent; }
};

struct Var {
  std::string Name;
  Type T;
};

class Gen {
public:
  Gen(uint64_t Seed, int MaxDepth) : R(Seed), MaxDepth(MaxDepth) {}

  RandomExprModule run(int NumFns) {
    RandomExprModule M;
    M.Source = "enum Shape { case Dot, case Box(Int), "
               "case Pair((Int, Bool)) }\n\n";
    emitHelpers(M);
    emitRecursive(M);
    emitChain(M);
    for (int I = 0; I < NumFns; ++I) {
      RandomExprFn Fn;
      Fn.Name = "f" + std::to_string(I);
      int NumParams = 1 + R.below(3);
      Env.clear();
      std::string Sig;
      for (int P = 0; P < NumParams; ++P) {
        Type T = anyType();
        std::string Name = "p" + std::to_string(P);
        Fn.Params.push_back(T);
        Env.push_back({Name, T});
        if (P)
          Sig += ", ";
        Sig += Name + ": " + typeName(T);
      }
      Fn.Ret = anyType();
      M.Source += "def " + Fn.Name + "(" + Sig +
                  "): " + typeName(Fn.Ret) + " =\n  " +
                  gen(Fn.Ret, MaxDepth) + "\n\n";
      M.Fns.push_back(std::move(Fn));
      Done.push_back(M.Fns.back());
    }
    return M;
  }

private:
  /// Appends a finished Int→Int def to the module and makes it callable
  /// from every later body (pickFn draws from Done).
  void addIntDef(RandomExprModule &M, const std::string &Name,
                 const std::string &Body) {
    RandomExprFn Fn;
    Fn.Name = Name;
    Fn.Params.push_back(Type::Int);
    Fn.Ret = Type::Int;
    M.Source += "def " + Name + "(p0: Int): Int =\n  " + Body + "\n\n";
    M.Fns.push_back(Fn);
    Done.push_back(std::move(Fn));
  }

  /// Small single-parameter helpers (h0..h3). Each body is one
  /// compare-against-literal branch — the canonical CmpXxImm +
  /// JumpIfFalse pair the superword pass fuses — and stays far under
  /// the inliner's callee budget, so every call site of these is an
  /// inlining candidate.
  void emitHelpers(RandomExprModule &M) {
    static const char *const Cmps[] = {"<", "<=", ">", ">=", "==", "!="};
    for (int H = 0; H < 4; ++H) {
      std::string Body = "(if (p0 " + std::string(Cmps[R.below(6)]) + " " +
                         std::to_string(static_cast<int>(R.below(5))) +
                         ") (p0 + " +
                         std::to_string(1 + static_cast<int>(R.below(3))) +
                         ") else (p0 - " +
                         std::to_string(1 + static_cast<int>(R.below(3))) +
                         "))";
      addIntDef(M, "r" + std::to_string(H), Body);
    }
  }

  /// One controlled self-recursive def, terminating on the small
  /// argument magnitudes the grammar produces. The inliner must refuse
  /// it (recursion exclusion), and calls that do run deep exercise the
  /// call-depth diagnostic on both engines identically.
  void emitRecursive(RandomExprModule &M) {
    addIntDef(M, "rec0", "(if (p0 <= 0) 0 else (rec0(p0 - 1) + 1))");
  }

  /// A deep non-recursive call chain c0 → c1 → ... → c7: calling the
  /// last link traverses eight frames, and under optimization the
  /// inliner splices links until its nesting budget stops it — the
  /// differential harness then checks identity across that boundary.
  void emitChain(RandomExprModule &M) {
    addIntDef(M, "c0", "(if (p0 <= 0) 0 else (p0 + 1))");
    for (int K = 1; K < 8; ++K)
      addIntDef(M, "c" + std::to_string(K),
                "(c" + std::to_string(K - 1) + "((p0 % 5) - 1) + r" +
                    std::to_string(K % 4) + "(p0))");
  }

  static const char *typeName(Type T) {
    switch (T) {
    case Type::Int:
      return "Int";
    case Type::Bool:
      return "Bool";
    case Type::Shape:
      return "Shape";
    }
    return "Int";
  }

  Type anyType() { return static_cast<Type>(R.below(3)); }

  std::string fresh() { return "v" + std::to_string(NextVar++); }

  /// A variable of type T from the environment, if any.
  const Var *pickVar(Type T) {
    uint32_t N = 0;
    for (const Var &V : Env)
      N += V.T == T;
    if (!N)
      return nullptr;
    uint32_t K = R.below(N);
    for (const Var &V : Env)
      if (V.T == T && !K--)
        return &V;
    return nullptr;
  }

  /// An earlier def returning T, if any (backwards calls only — never
  /// recursive).
  const RandomExprFn *pickFn(Type T) {
    uint32_t N = 0;
    for (const RandomExprFn &F : Done)
      N += F.Ret == T;
    if (!N)
      return nullptr;
    uint32_t K = R.below(N);
    for (const RandomExprFn &F : Done)
      if (F.Ret == T && !K--)
        return &F;
    return nullptr;
  }

  std::string leaf(Type T) {
    switch (T) {
    case Type::Int:
      if (const Var *V = R.chance(50) ? pickVar(T) : nullptr)
        return V->Name;
      // Small magnitudes so arithmetic chains stay far from overflow,
      // but 0 stays frequent enough to hit / and % faults.
      return std::to_string(static_cast<int>(R.below(5)));
    case Type::Bool:
      if (const Var *V = R.chance(50) ? pickVar(T) : nullptr)
        return V->Name;
      return R.chance(50) ? "true" : "false";
    case Type::Shape:
      if (const Var *V = R.chance(50) ? pickVar(T) : nullptr)
        return V->Name;
      switch (R.below(3)) {
      case 0:
        return "Shape.Dot";
      case 1:
        return "Shape.Box(" + leaf(Type::Int) + ")";
      default:
        return "Shape.Pair((" + leaf(Type::Int) + ", " + leaf(Type::Bool) +
               "))";
      }
    }
    return "0";
  }

  std::string call(const RandomExprFn &F, int D) {
    std::string Out = F.Name + "(";
    for (size_t I = 0; I < F.Params.size(); ++I) {
      if (I)
        Out += ", ";
      Out += gen(F.Params[I], D - 1);
    }
    return Out + ")";
  }

  std::string genLet(Type T, int D) {
    Type VT = anyType();
    std::string Name = fresh();
    std::string Init = gen(VT, D - 1);
    Env.push_back({Name, VT});
    std::string Body = gen(T, D - 1);
    Env.pop_back();
    return "(let " + Name + " = " + Init + "; " + Body + ")";
  }

  std::string genIf(Type T, int D) {
    return "(if (" + gen(Type::Bool, D - 1) + ") " + gen(T, D - 1) +
           " else " + gen(T, D - 1) + ")";
  }

  /// Match over a Shape scrutinee: tag cases with payload patterns, a
  /// wildcard arm most of the time (dropping it exercises the engines'
  /// identical "no case matched" fault).
  std::string genMatchShape(Type T, int D) {
    std::string Out = "(match " + gen(Type::Shape, D - 1) + " with {";
    Out += " case Shape.Dot => " + gen(T, D - 1);
    if (R.chance(80)) {
      std::string V = fresh();
      Env.push_back({V, Type::Int});
      Out += " case Shape.Box(" + V + ") => " + gen(T, D - 1);
      Env.pop_back();
    }
    if (R.chance(80)) {
      std::string A = fresh(), B = fresh();
      Env.push_back({A, Type::Int});
      Env.push_back({B, Type::Bool});
      Out += " case Shape.Pair((" + A + ", " + B + ")) => " + gen(T, D - 1);
      Env.pop_back();
      Env.pop_back();
    }
    if (R.chance(85))
      Out += " case _ => " + gen(T, D - 1);
    return Out + " })";
  }

  /// Match over an Int scrutinee with literal cases; sometimes
  /// non-exhaustive on purpose.
  std::string genMatchInt(Type T, int D) {
    std::string Out = "(match " + gen(Type::Int, D - 1) + " with {";
    int Cases = 1 + R.below(3);
    for (int I = 0; I < Cases; ++I)
      Out += " case " + std::to_string(R.below(5)) + " => " + gen(T, D - 1);
    if (R.chance(70)) {
      if (R.chance(50)) {
        std::string V = fresh();
        Env.push_back({V, Type::Int});
        Out += " case " + V + " => " + gen(T, D - 1);
        Env.pop_back();
      } else {
        Out += " case _ => " + gen(T, D - 1);
      }
    }
    return Out + " })";
  }

  /// Match over a fresh 2-tuple, destructured by a tuple pattern.
  std::string genMatchTuple(Type T, int D) {
    std::string A = fresh(), B = fresh();
    std::string Out = "(match (" + gen(Type::Int, D - 1) + ", " +
                      gen(Type::Bool, D - 1) + ") with { case (" + A + ", " +
                      B + ") => ";
    Env.push_back({A, Type::Int});
    Env.push_back({B, Type::Bool});
    Out += gen(T, D - 1);
    Env.pop_back();
    Env.pop_back();
    return Out + " })";
  }

  std::string genInt(int D) {
    switch (R.below(10)) {
    case 0:
    case 1:
    case 2: {
      static const char *const Ops[] = {"+", "-", "*", "/", "%"};
      const char *Op = Ops[R.below(5)];
      return "(" + gen(Type::Int, D - 1) + " " + Op + " " +
             gen(Type::Int, D - 1) + ")";
    }
    case 3:
      return "(-(" + gen(Type::Int, D - 1) + "))";
    case 4:
      return genIf(Type::Int, D);
    case 5:
      return genLet(Type::Int, D);
    case 6:
      return genMatchShape(Type::Int, D);
    case 7:
      return R.chance(50) ? genMatchInt(Type::Int, D)
                          : genMatchTuple(Type::Int, D);
    default:
      if (const RandomExprFn *F = pickFn(Type::Int))
        return call(*F, D);
      return leaf(Type::Int);
    }
  }

  std::string genBool(int D) {
    switch (R.below(10)) {
    case 0:
    case 1: {
      static const char *const Ops[] = {"==", "!=", "<", "<=", ">", ">="};
      const char *Op = Ops[R.below(6)];
      return "(" + gen(Type::Int, D - 1) + " " + Op + " " +
             gen(Type::Int, D - 1) + ")";
    }
    case 2:
      // Handle equality on tags/tuples — both engines compare interned
      // handles.
      return "(" + gen(Type::Shape, D - 1) +
             (R.chance(50) ? " == " : " != ") + gen(Type::Shape, D - 1) +
             ")";
    case 3:
      return "(" + gen(Type::Bool, D - 1) +
             (R.chance(50) ? " && " : " || ") + gen(Type::Bool, D - 1) + ")";
    case 4:
      return "(!(" + gen(Type::Bool, D - 1) + "))";
    case 5:
      return genIf(Type::Bool, D);
    case 6:
      return genLet(Type::Bool, D);
    case 7:
      return genMatchShape(Type::Bool, D);
    default:
      if (const RandomExprFn *F = pickFn(Type::Bool))
        return call(*F, D);
      return leaf(Type::Bool);
    }
  }

  std::string genShape(int D) {
    switch (R.below(8)) {
    case 0:
      return "Shape.Box(" + gen(Type::Int, D - 1) + ")";
    case 1:
      return "Shape.Pair((" + gen(Type::Int, D - 1) + ", " +
             gen(Type::Bool, D - 1) + "))";
    case 2:
      return genIf(Type::Shape, D);
    case 3:
      return genLet(Type::Shape, D);
    case 4:
      return genMatchShape(Type::Shape, D);
    default:
      if (const RandomExprFn *F = pickFn(Type::Shape))
        return call(*F, D);
      return leaf(Type::Shape);
    }
  }

  std::string gen(Type T, int D) {
    if (D <= 0)
      return leaf(T);
    switch (T) {
    case Type::Int:
      return genInt(D);
    case Type::Bool:
      return genBool(D);
    case Type::Shape:
      return genShape(D);
    }
    return leaf(T);
  }

  Rng R;
  int MaxDepth;
  int NextVar = 0;
  std::vector<Var> Env;
  std::vector<RandomExprFn> Done;
};

} // namespace

RandomExprModule generateRandomExprModule(uint64_t Seed, int NumFns,
                                          int MaxDepth) {
  return Gen(Seed, MaxDepth).run(NumFns);
}

} // namespace flix
