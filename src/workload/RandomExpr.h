//===- workload/RandomExpr.h - Random functional FLIX modules -*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of random *functional* FLIX modules, the expression
/// counterpart of RandomProgram.h's random fixpoint programs. Each module
/// is a payload enum plus a list of defs whose bodies draw from the whole
/// expression grammar: literals, arithmetic (including / and % so runtime
/// faults are reachable), comparisons, boolean connectives with
/// short-circuit, unary operators, if/let, matches over enum tags, tuples
/// and integer literals (sometimes deliberately non-exhaustive), and
/// calls to earlier defs. Every module also leads with a fixed cast of
/// optimizer-relevant shapes whose constants the seed varies: four tiny
/// compare-and-branch helpers (superword-fusion and inlining targets),
/// one controlled self-recursive def (the inliner must refuse it; deep
/// calls reach the call-depth diagnostic), and an eight-link call chain
/// (inline-nesting budget boundary). Random calls only ever point
/// backwards, so the reachable faults are division or remainder by
/// zero, a missed match case, and call-depth overflow through the
/// recursive def — each checked for message identity by the
/// VM-vs-interpreter differential harness.
///
/// Determinism: the generator uses its own xorshift RNG, so a seed means
/// the same module on every platform and standard library.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_WORKLOAD_RANDOMEXPR_H
#define FLIX_WORKLOAD_RANDOMEXPR_H

#include <cstdint>
#include <string>
#include <vector>

namespace flix {

/// The three types random expressions range over. `Shape` is the
/// module-local payload enum:
///   enum Shape { case Dot, case Box(Int), case Pair((Int, Bool)) }
enum class RandomExprType { Int, Bool, Shape };

/// Signature of one generated def, so a harness can build matching
/// argument vectors and call it on any engine.
struct RandomExprFn {
  std::string Name;
  std::vector<RandomExprType> Params;
  RandomExprType Ret;
};

struct RandomExprModule {
  std::string Source; ///< complete FLIX module text
  std::vector<RandomExprFn> Fns;
};

/// Generates a deterministic random module of \p NumFns defs with bodies
/// of nesting depth at most \p MaxDepth.
RandomExprModule generateRandomExprModule(uint64_t Seed, int NumFns = 6,
                                          int MaxDepth = 4);

} // namespace flix

#endif // FLIX_WORKLOAD_RANDOMEXPR_H
