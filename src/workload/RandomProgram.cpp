//===- workload/RandomProgram.cpp - Random FLIX programs --------------------===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//

#include "workload/RandomProgram.h"

#include <random>

using namespace flix;

RandomProgramBundle flix::generateRandomProgram(uint64_t Seed,
                                                RandomProgramOptions Opts) {
  std::mt19937_64 Rng(Seed);
  RandomProgramBundle B;
  B.Factory = std::make_unique<ValueFactory>();
  ValueFactory &F = *B.Factory;
  B.Parity = std::make_unique<ParityLattice>(F);
  ParityLattice &L = *B.Parity;
  B.Prog = std::make_unique<Program>(F);
  Program &P = *B.Prog;

  auto chance = [&](double Prob) {
    return std::uniform_real_distribution<double>(0, 1)(Rng) < Prob;
  };

  // Predicates. Key columns are Int; lattice columns are Parity.
  struct PredShape {
    PredId Id;
    unsigned KeyArity;
    bool IsLat;
  };
  std::vector<PredShape> Preds;
  for (unsigned I = 0; I < Opts.NumRelations; ++I) {
    unsigned Arity = 1 + static_cast<unsigned>(Rng() % 2);
    PredId Id = P.relation("R" + std::to_string(I), Arity);
    Preds.push_back({Id, Arity, false});
  }
  for (unsigned I = 0; I < Opts.NumLatPredicates; ++I) {
    unsigned Arity = 1 + static_cast<unsigned>(Rng() % 2);
    PredId Id = P.lattice("L" + std::to_string(I), Arity, &L);
    Preds.push_back({Id, Arity - 1, true});
  }

  std::vector<Value> Constants;
  for (unsigned I = 0; I < Opts.NumConstants; ++I)
    Constants.push_back(F.integer(I));
  std::vector<Value> Elems = {L.bot(), L.odd(), L.even(), L.top()};
  auto randConst = [&]() { return Constants[Rng() % Constants.size()]; };
  auto randElem = [&]() {
    // Bias away from ⊥ facts (they are no-ops) but keep them possible.
    return chance(0.1) ? L.bot() : Elems[1 + Rng() % 3];
  };

  // Facts.
  for (unsigned I = 0; I < Opts.NumFacts; ++I) {
    const PredShape &PS = Preds[Rng() % Preds.size()];
    SmallVector<Value, 4> Key;
    for (unsigned K = 0; K < PS.KeyArity; ++K)
      Key.push_back(randConst());
    if (PS.IsLat)
      P.addLatFact(PS.Id, std::span<const Value>(Key.data(), Key.size()),
                   randElem());
    else
      P.addFact(PS.Id, std::span<const Value>(Key.data(), Key.size()));
  }

  // Rules. Variables are typed: k0..k3 range over key constants, v0..v3
  // over lattice elements; only variables bound by the body appear in the
  // head.
  static const char *KeyVars[] = {"k0", "k1", "k2", "k3"};
  static const char *LatVars[] = {"v0", "v1", "v2", "v3"};
  for (unsigned RI = 0; RI < Opts.NumRules; ++RI) {
    RuleBuilder RB;
    std::vector<std::string> BoundKey, BoundLat;

    unsigned NumAtoms =
        1 + static_cast<unsigned>(Rng() % Opts.MaxBodyAtoms);
    // Body first (the builder is order independent; we call head() last
    // via a staged construction below).
    struct PlannedAtom {
      PredId Id;
      std::vector<RuleBuilder::Spec> Terms;
    };
    std::vector<PlannedAtom> Body;
    for (unsigned AI = 0; AI < NumAtoms; ++AI) {
      const PredShape &PS = Preds[Rng() % Preds.size()];
      PlannedAtom A{PS.Id, {}};
      for (unsigned K = 0; K < PS.KeyArity; ++K) {
        if (chance(0.7)) {
          const char *V = KeyVars[Rng() % 4];
          A.Terms.push_back(std::string(V));
          BoundKey.push_back(V);
        } else {
          A.Terms.push_back(randConst());
        }
      }
      if (PS.IsLat) {
        if (chance(0.85)) {
          const char *V = LatVars[Rng() % 4];
          A.Terms.push_back(std::string(V));
          BoundLat.push_back(V);
        } else {
          // Ground lattice term in a body atom: matched by ⊑.
          A.Terms.push_back(Elems[1 + Rng() % 3]);
        }
      }
      Body.push_back(std::move(A));
    }

    // Head over bound variables (or constants when nothing suitable).
    const PredShape &HS = Preds[Rng() % Preds.size()];
    std::vector<RuleBuilder::Spec> HeadTerms;
    for (unsigned K = 0; K < HS.KeyArity; ++K) {
      if (!BoundKey.empty() && chance(0.8))
        HeadTerms.push_back(BoundKey[Rng() % BoundKey.size()]);
      else
        HeadTerms.push_back(randConst());
    }
    if (HS.IsLat) {
      if (!BoundLat.empty() && chance(0.8))
        HeadTerms.push_back(BoundLat[Rng() % BoundLat.size()]);
      else
        HeadTerms.push_back(Elems[1 + Rng() % 3]);
    }

    RB.head(HS.Id, std::move(HeadTerms));
    for (PlannedAtom &A : Body)
      RB.atom(A.Id, std::move(A.Terms));
    RB.addTo(P);
  }

  // Herbrand spec for the model-theory comparison.
  B.Herbrand.Terms = Constants;
  B.Herbrand.LatticeElems[&L] = Elems;

  // Brute-force budget: product over cells of (choices + 1).
  double Space = 1;
  for (const PredShape &PS : Preds) {
    double Cells = 1;
    for (unsigned K = 0; K < PS.KeyArity; ++K)
      Cells *= Constants.size();
    double Choices = PS.IsLat ? Elems.size() + 1 : 2;
    for (double C = 0; C < Cells && Space < 1e9; ++C)
      Space *= Choices;
  }
  B.BruteForceable = Space <= 300000;
  return B;
}
