//===- workload/RandomProgram.h - Random FLIX programs ---------*- C++ -*-===//
//
// Part of flix-cpp, a C++ reproduction of "From Datalog to FLIX" (PLDI'16).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded generator of small random fixpoint programs in the §3.2 core
/// fragment (relations + lattice predicates, positive atoms only), used
/// for differential testing: naive vs semi-naive vs the brute-force
/// model-theoretic semantics must all agree on every generated program.
///
//===----------------------------------------------------------------------===//

#ifndef FLIX_WORKLOAD_RANDOMPROGRAM_H
#define FLIX_WORKLOAD_RANDOMPROGRAM_H

#include "fixpoint/ModelTheory.h"
#include "runtime/Lattices.h"

#include <cstdint>
#include <memory>

namespace flix {

/// A generated program together with everything it borrows.
struct RandomProgramBundle {
  std::unique_ptr<ValueFactory> Factory;
  std::unique_ptr<ParityLattice> Parity;
  std::unique_ptr<Program> Prog;
  HerbrandSpec Herbrand;

  /// True when the program is small enough for bruteForceMinimalModel
  /// (cells × elements budget).
  bool BruteForceable = false;
};

/// Shape knobs for the generator.
struct RandomProgramOptions {
  unsigned NumRelations = 2;     ///< relational predicates (arity 1-2)
  unsigned NumLatPredicates = 2; ///< parity-lattice predicates (arity 1-2)
  unsigned NumRules = 4;
  unsigned NumFacts = 4;
  unsigned NumConstants = 2; ///< size of the key-term universe
  unsigned MaxBodyAtoms = 3;
  bool ForBruteForce = false; ///< keep the Herbrand space tiny
};

RandomProgramBundle generateRandomProgram(uint64_t Seed,
                                          RandomProgramOptions Opts);

} // namespace flix

#endif // FLIX_WORKLOAD_RANDOMPROGRAM_H
